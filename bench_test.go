package ecochip

// Benchmark harness: one testing.B per table/figure of the paper's
// evaluation. Each benchmark regenerates the figure's full data series
// through the experiment registry, so
//
//	go test -bench=. -benchmem
//
// is the Go equivalent of the artifact's run_all.sh. On the first
// iteration of each benchmark the table is printed once under -v via
// b.Log, so benchmark runs double as a raw-data dump.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ecochip/internal/floorplan"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	db := DefaultDB()
	tbl, err := Experiments(id, db)
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + tbl.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Experiments(id, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2a regenerates Fig. 2(a): manufacturing CFP vs die area.
func BenchmarkFig2a(b *testing.B) { benchExperiment(b, "fig2a") }

// BenchmarkFig2b regenerates Fig. 2(b): monolithic vs 4-chiplet GA102.
func BenchmarkFig2b(b *testing.B) { benchExperiment(b, "fig2b") }

// BenchmarkFig3b regenerates Fig. 3(b): wafer-periphery wastage effect.
func BenchmarkFig3b(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig6a regenerates Fig. 6(a): defect density vs node.
func BenchmarkFig6a(b *testing.B) { benchExperiment(b, "fig6a") }

// BenchmarkFig6b regenerates Fig. 6(b): total CFP vs defect density.
func BenchmarkFig6b(b *testing.B) { benchExperiment(b, "fig6b") }

// BenchmarkFig7a regenerates Fig. 7(a): C_mfg + C_HI per node tuple.
func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7a") }

// BenchmarkFig7b regenerates Fig. 7(b): single-SP&R design CFP per tuple.
func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7b") }

// BenchmarkFig7c regenerates Fig. 7(c): embodied CFP vs the ACT baseline.
func BenchmarkFig7c(b *testing.B) { benchExperiment(b, "fig7c") }

// BenchmarkFig7d regenerates Fig. 7(d): total CFP split per tuple.
func BenchmarkFig7d(b *testing.B) { benchExperiment(b, "fig7d") }

// BenchmarkFig8a regenerates Fig. 8(a): EMR vs its monolith.
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }

// BenchmarkFig8b regenerates Fig. 8(b): A15 vs its monolith.
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }

// BenchmarkFig9 regenerates Fig. 9: C_HI of five packaging architectures.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Fig. 10: C_mfg vs C_HI across chiplet counts.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11a regenerates Fig. 11(a): C_HI vs RDL layer count.
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }

// BenchmarkFig11b regenerates Fig. 11(b): C_HI vs EMIB bridge range.
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }

// BenchmarkFig11c regenerates Fig. 11(c): C_HI vs interposer node.
func BenchmarkFig11c(b *testing.B) { benchExperiment(b, "fig11c") }

// BenchmarkFig11d regenerates Fig. 11(d): C_HI vs TSV pitch.
func BenchmarkFig11d(b *testing.B) { benchExperiment(b, "fig11d") }

// BenchmarkFig12a regenerates Fig. 12(a): design CFP vs reuse ratio.
func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a") }

// BenchmarkFig12b regenerates Fig. 12(b): GA102 C_tot vs ratio x lifetime.
func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b") }

// BenchmarkFig12c regenerates Fig. 12(c): A15 C_tot vs ratio x lifetime.
func BenchmarkFig12c(b *testing.B) { benchExperiment(b, "fig12c") }

// BenchmarkFig12d regenerates Fig. 12(d): EMR C_tot vs ratio x lifetime.
func BenchmarkFig12d(b *testing.B) { benchExperiment(b, "fig12d") }

// BenchmarkFig13 regenerates Fig. 13: AR/VR carbon-delay/power/area.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Fig. 14: GA102 carbon-power/area products.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15a regenerates Fig. 15(a): dollar cost per node tuple.
func BenchmarkFig15a(b *testing.B) { benchExperiment(b, "fig15a") }

// BenchmarkFig15b regenerates Fig. 15(b): dollar cost vs chiplet count.
func BenchmarkFig15b(b *testing.B) { benchExperiment(b, "fig15b") }

// BenchmarkTableI regenerates Table I: the input-parameter database.
func BenchmarkTableI(b *testing.B) { benchExperiment(b, "tbl1") }

// BenchmarkExtTornado regenerates the extension sensitivity study.
func BenchmarkExtTornado(b *testing.B) { benchExperiment(b, "ext-tornado") }

// BenchmarkExtPareto regenerates the carbon-cost Pareto front.
func BenchmarkExtPareto(b *testing.B) { benchExperiment(b, "ext-pareto") }

// BenchmarkExtNoC regenerates the NoC scaling table.
func BenchmarkExtNoC(b *testing.B) { benchExperiment(b, "ext-noc") }

// BenchmarkExtNRE regenerates the mask-carbon amortization table.
func BenchmarkExtNRE(b *testing.B) { benchExperiment(b, "ext-nre") }

// BenchmarkExtValidation regenerates the Section VII sanity check.
func BenchmarkExtValidation(b *testing.B) { benchExperiment(b, "ext-validation") }

// BenchmarkExtUncertainty regenerates the Monte Carlo uncertainty study.
func BenchmarkExtUncertainty(b *testing.B) { benchExperiment(b, "ext-uncertainty") }

// BenchmarkEvaluateGA102 measures a single full-system evaluation — the
// unit of work inside every experiment.
func BenchmarkEvaluateGA102(b *testing.B) {
	db := DefaultDB()
	s := GA102(db, 7, 14, 10, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNodeExploration measures the 27-combination design-space sweep
// the ecochip CLI performs for a 3-chiplet system.
func BenchmarkNodeExploration(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	nodes := []int{7, 10, 14}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range nodes {
			for _, m := range nodes {
				for _, a := range nodes {
					s, err := base.WithNodes(d, m, a)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.Evaluate(db); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// sweepBenchNodes is the node-candidate list of the NodeSweep benchmark
// pair: 5 nodes over the 3-chiplet GA102 = 125 design points.
var sweepBenchNodes = []int{7, 10, 14, 22, 28}

// BenchmarkNodeSweepSerial measures the pre-engine reference path: the
// serial one-point-at-a-time walk the seed's explore.NodeSweep ran, with
// the dollar-cost model re-evaluating each system (the historical
// behavior of System.CostUSD).
func BenchmarkNodeSweepSerial(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	cp := DefaultCostParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var points []DesignPoint
		var walk func(assign []int, depth int) error
		walk = func(assign []int, depth int) error {
			if depth == len(base.Chiplets) {
				picked := append([]int(nil), assign...)
				s, err := base.WithNodes(picked...)
				if err != nil {
					return err
				}
				rep, err := s.Evaluate(db)
				if err != nil {
					return err
				}
				c, err := s.CostUSD(db, cp)
				if err != nil {
					return err
				}
				points = append(points, DesignPoint{
					Nodes: picked, EmbodiedKg: rep.EmbodiedKg(), TotalKg: rep.TotalKg(),
					CostUSD: c.TotalUSD(),
				})
				return nil
			}
			for _, nm := range sweepBenchNodes {
				assign[depth] = nm
				if err := walk(assign, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(make([]int, len(base.Chiplets)), 0); err != nil {
			b.Fatal(err)
		}
		if len(points) != 125 {
			b.Fatalf("expected 125 points, got %d", len(points))
		}
	}
}

// BenchmarkNodeSweepParallel measures the same 125-point sweep through
// the uncompiled batch-engine path: worker-pool fan-out plus the shared
// per-die memo cache and single-evaluation cost pricing (the PR 1
// baseline the compiled plan is measured against).
func BenchmarkNodeSweepParallel(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	cp := DefaultCostParams()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := NodeSweepReference(ctx, base, db, sweepBenchNodes, cp)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 125 {
			b.Fatalf("expected 125 points, got %d", len(points))
		}
	}
}

// BenchmarkNodeSweepCompiled measures the 125-point sweep through the
// compiled plan — the NodeSweepCtx production path — including the
// per-call Compile cost, at the same worker count as the parallel
// baseline.
func BenchmarkNodeSweepCompiled(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	cp := DefaultCostParams()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := NodeSweepCtx(ctx, base, db, sweepBenchNodes, cp)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 125 {
			b.Fatalf("expected 125 points, got %d", len(points))
		}
	}
}

// BenchmarkNodeSweepCompiledReuse measures sweep re-execution on an
// already-compiled plan (the repeated-run shape of interactive tools and
// servers: compile once, run per request).
func BenchmarkNodeSweepCompiledReuse(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	plan, err := CompileNodeSweep(base, db, sweepBenchNodes, DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := plan.RunCtx(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 125 {
			b.Fatalf("expected 125 points, got %d", len(points))
		}
	}
}

// BenchmarkShardLoopback measures the same 125-point sweep through the
// fault-tolerant shard coordinator over three in-process loopback
// replicas (lease grants, per-block streaming, mixed-radix
// reassembly): the lease-protocol overhead on top of
// BenchmarkNodeSweepCompiledReuse.
func BenchmarkShardLoopback(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	cat := NewShardCatalog()
	key, err := cat.RegisterSweep(base, db, sweepBenchNodes, DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := cat.Plan(key)
	if err != nil {
		b.Fatal(err)
	}
	transports := []ShardTransport{NewShardReplica(cat), NewShardReplica(cat), NewShardReplica(cat)}
	ctx := context.Background()
	// LeaseBlocks 8 lets one lease span the sweep's 8 blocks, so the
	// TCP twin below (same config) measures framing cost rather than
	// lease round-trip count.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co := NewShardCoordinator(plan, key, transports, ShardConfig{BlockSize: 16, LeaseBlocks: 8})
		points, err := co.Sweep(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 125 {
			b.Fatalf("expected 125 points, got %d", len(points))
		}
	}
}

// BenchmarkShardTCPLoopback measures the same 125-point sweep through
// the shard coordinator over three replica servers on real TCP sockets
// (binary frames, content-keyed plan registration, per-block result
// streaming): the network-transport overhead on top of
// BenchmarkShardLoopback. The servers and clients persist across
// iterations — the steady serving state — so per-iteration cost is
// frames, not dials.
func BenchmarkShardTCPLoopback(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	cat := NewShardCatalog()
	key, err := cat.RegisterSweep(base, db, sweepBenchNodes, DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := cat.Plan(key)
	if err != nil {
		b.Fatal(err)
	}
	reg := NewShardNetRegistry()
	if _, err := reg.AddSweep(base, db, sweepBenchNodes, DefaultCostParams()); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	transports := make([]ShardTransport, 3)
	for i := range transports {
		ready := make(chan string, 1)
		go func() {
			err := ListenAndServeShard(ctx, "127.0.0.1:0", NewShardCatalog(), db, ShardNetOptions{}, func(addr string) { ready <- addr })
			if err != nil {
				b.Error(err)
			}
		}()
		cl := DialShardTransport(<-ready, reg, ShardNetOptions{})
		defer cl.Close()
		transports[i] = cl
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co := NewShardCoordinator(plan, key, transports, ShardConfig{BlockSize: 16, LeaseBlocks: 8})
		points, err := co.Sweep(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 125 {
			b.Fatalf("expected 125 points, got %d", len(points))
		}
	}
}

// BenchmarkShardHedgedSweep measures the 125-point sweep through the
// shard coordinator with the health fabric fully armed over a healthy
// replica pool: per-replica breaker tracking, lease-latency EWMA
// updates, and a hedge timer on every grant — none of which fires,
// because no one straggles. The delta against BenchmarkShardLoopback
// is the price of arming straggler mitigation when it is not needed
// (it should be ~free; the 20% CI gate pins that).
func BenchmarkShardHedgedSweep(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	cat := NewShardCatalog()
	key, err := cat.RegisterSweep(base, db, sweepBenchNodes, DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := cat.Plan(key)
	if err != nil {
		b.Fatal(err)
	}
	transports := []ShardTransport{NewShardReplica(cat), NewShardReplica(cat), NewShardReplica(cat)}
	// LeaseBlocks 1 arms one hedge timer per block — the worst case for
	// the hedging machinery's bookkeeping.
	cfg := ShardConfig{BlockSize: 16, LeaseBlocks: 1, HedgeMin: time.Millisecond, Seed: 1}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co := NewShardCoordinator(plan, key, transports, cfg)
		points, err := co.Sweep(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 125 {
			b.Fatalf("expected 125 points, got %d", len(points))
		}
	}
}

// BenchmarkNodeSweepWalkFront measures the streaming-front path on an
// already-compiled plan: the 125-point sweep folded to its carbon-cost
// Pareto front inside the walk, never materializing the point slice (the
// serving shape of front-only queries).
func BenchmarkNodeSweepWalkFront(b *testing.B) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	plan, err := CompileNodeSweep(base, db, sweepBenchNodes, DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front, total, err := plan.ParetoFrontCtx(ctx, []SweepMetric{SweepByEmbodied, SweepByCost})
		if err != nil {
			b.Fatal(err)
		}
		if total != 125 || len(front) == 0 {
			b.Fatalf("unexpected front: %d of %d", len(front), total)
		}
	}
}

// BenchmarkNodeSweepIncremental measures the full streaming walk of an
// already-compiled plan (no front reduction, no point slice): the raw
// per-point cost of the incremental evaluation stack — Gray odometer,
// retained-tree floorplan delta, communication slot cache — on the
// 4-chiplet × 5-node (625-point) GA102 split.
func BenchmarkNodeSweepIncremental(b *testing.B) {
	db := DefaultDB()
	base, err := GA102Split(db, 2, RDLFanout)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := CompileNodeSweep(base, db, sweepBenchNodes, DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := 0
		err := plan.Walk(ctx, func(idx int, pt *DesignPoint) error {
			points++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if points != 625 {
			b.Fatalf("expected 625 points, got %d", points)
		}
	}
	b.StopTimer()
	s := plan.Stats()
	if s.Floorplan.FastPath+s.Floorplan.Unchanged == 0 {
		b.Fatal("incremental sweep never hit the retained-tree fast path")
	}
}

// BenchmarkFloorplanIncremental measures the retained slicing tree's
// single-area update against re-planning from scratch, at the EPYC
// chiplet count (9 dies): the per-Gray-step floorplan cost a compiled
// sweep pays after this PR versus before it.
func BenchmarkFloorplanIncremental(b *testing.B) {
	areas := []float64{512, 300, 200, 140, 100, 70, 50, 35, 25}
	blocks := make([]floorplan.Block, len(areas))
	for i, a := range areas {
		blocks[i] = floorplan.Block{Name: fmt.Sprintf("d%d", i), AreaMM2: a}
	}
	var tr floorplan.Tree
	if _, err := tr.PlanNoAdjacencies(blocks, 0.5); err != nil {
		b.Fatal(err)
	}
	// Perturbing the smallest block keeps the sorted order and every
	// partition decision provably stable (it is last in each decision
	// sequence), so each iteration measures the incremental relayout.
	last := len(areas) - 1
	base := areas[last]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Update(last, base+float64(i&1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := tr.Stats(); s.Fallbacks > 0 {
		b.Fatalf("update benchmark fell back to rebuilds: %+v", s)
	}
}

// benchDisaggSystem builds the EPYC-scale (10-die) fine-grained system
// of the Disaggregate benchmark pair: 8 mergeable logic slivers around
// a memory and an analog die, a multi-step greedy trajectory.
func benchDisaggSystem(db *TechDB) *System {
	ref := db.MustGet(7)
	var chiplets []Chiplet
	for i := 0; i < 8; i++ {
		chiplets = append(chiplets, BlockFromArea(
			fmt.Sprintf("logic%c", 'a'+i), Logic, 3, ref, 7))
	}
	chiplets = append(chiplets,
		BlockFromArea("memory", Memory, 60, db.MustGet(14), 14),
		BlockFromArea("analog", Analog, 30, db.MustGet(10), 10),
	)
	return &System{
		Name:      "disagg-bench",
		Chiplets:  chiplets,
		Packaging: DefaultPackaging(RDLFanout),
		Mfg:       DefaultMfgParams(),
		Design:    DefaultDesignParams(),
	}
}

// BenchmarkDisaggregate measures the compiled greedy block-to-chiplet
// disaggregation search at EPYC scale (10 dies): every greedy step's
// candidate merges evaluated on the step-spanning state — memoized
// merged-die cells, pooled worker scratches, and merge-candidate
// floorplan forks against the pinned base tree.
func BenchmarkDisaggregate(b *testing.B) {
	db := DefaultDB()
	base := benchDisaggSystem(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := Disaggregate(base, db)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Steps == 0 {
			b.Fatal("expected a multi-step search")
		}
	}
	b.StopTimer()
}

// BenchmarkDisaggregateReference measures the evaluate-per-candidate
// oracle on the same search — the bit-identity baseline every compiled
// trajectory is pinned against.
func BenchmarkDisaggregateReference(b *testing.B) {
	db := DefaultDB()
	base := benchDisaggSystem(db)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DisaggregateReference(ctx, base, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanFlexibleIncremental measures the retained shape-curve
// tree's single-area update at the EPYC chiplet count — the per-step
// floorplan cost of a compiled sweep over a flexible-floorplan system —
// against the from-scratch PlanFlexible it replaces (the
// BenchmarkFloorplanIncremental counterpart for shape curves).
func BenchmarkPlanFlexibleIncremental(b *testing.B) {
	areas := []float64{512, 300, 200, 140, 100, 70, 50, 35, 25}
	blocks := make([]floorplan.Block, len(areas))
	for i, a := range areas {
		blocks[i] = floorplan.Block{Name: fmt.Sprintf("d%d", i), AreaMM2: a}
	}
	var ft floorplan.FlexTree
	if _, err := ft.Plan(blocks, 0.5, nil); err != nil {
		b.Fatal(err)
	}
	last := len(areas) - 1
	base := areas[last]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ft.Update(last, base+float64(i&1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := ft.Stats(); s.Fallbacks > 0 {
		b.Fatalf("flexible update benchmark fell back to rebuilds: %+v", s)
	}
}

// benchServerSystem builds the 9-die EPYC-class server testcase the
// tornado / Monte Carlo benchmark pairs analyze — the multi-chiplet
// shape where sensitivity and uncertainty studies are actually run, and
// where the per-evaluation floorplan the compiled plans avoid dominates
// the uncompiled cost.
func benchServerSystem(b *testing.B, db *TechDB) *System {
	b.Helper()
	s, err := EPYC(db, 8)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTornadoUncompiled measures the tornado sensitivity analysis
// through the PR 1 memo-cache path: a full evaluation per perturbed
// point (the baseline the compiled parameter plan is measured against).
func BenchmarkTornadoUncompiled(b *testing.B) {
	db := DefaultDB()
	base := benchServerSystem(b, db)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := TornadoReference(ctx, base, db, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 7 {
			b.Fatalf("expected 7 factors, got %d", len(results))
		}
	}
}

// BenchmarkTornadoCompiled measures the same analysis on a compiled
// parameter plan — the TornadoCtx production path — including the
// per-call compile cost, at the same worker count.
func BenchmarkTornadoCompiled(b *testing.B) {
	db := DefaultDB()
	base := benchServerSystem(b, db)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := TornadoCtx(ctx, base, db, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 7 {
			b.Fatalf("expected 7 factors, got %d", len(results))
		}
	}
}

// mcBenchSamples sizes the Monte Carlo benchmark pair: enough samples
// that per-sample costs dominate the fixed setup.
const mcBenchSamples = 200

// BenchmarkMonteCarloUncompiled measures the uncertainty analysis
// through the PR 1 memo-cache path: every sample clones the technology
// database and runs a full evaluation (the cache cannot help across
// samples — cloned nodes never repeat as keys).
func BenchmarkMonteCarloUncompiled(b *testing.B) {
	db := DefaultDB()
	base := benchServerSystem(b, db)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := UncertaintyReference(ctx, base, db, mcBenchSamples, 2024)
		if err != nil {
			b.Fatal(err)
		}
		if d.Samples != mcBenchSamples {
			b.Fatalf("expected %d samples, got %d", mcBenchSamples, d.Samples)
		}
	}
}

// BenchmarkMonteCarloCompiled measures the same sampling on a compiled
// parameter plan — the UncertaintyCtx production path — including the
// per-call compile cost, at the same worker count.
func BenchmarkMonteCarloCompiled(b *testing.B) {
	db := DefaultDB()
	base := benchServerSystem(b, db)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := UncertaintyCtx(ctx, base, db, mcBenchSamples, 2024)
		if err != nil {
			b.Fatal(err)
		}
		if d.Samples != mcBenchSamples {
			b.Fatalf("expected %d samples, got %d", mcBenchSamples, d.Samples)
		}
	}
}

// BenchmarkEvaluateBatch measures raw batch evaluation (no cost model)
// of the 625-system 4-chiplet x 5-node full factorial.
func BenchmarkEvaluateBatch(b *testing.B) {
	db := DefaultDB()
	base, err := GA102Split(db, 2, RDLFanout)
	if err != nil {
		b.Fatal(err)
	}
	var systems []*System
	for _, n0 := range sweepBenchNodes {
		for _, n1 := range sweepBenchNodes {
			for _, n2 := range sweepBenchNodes {
				for _, n3 := range sweepBenchNodes {
					s, err := base.WithNodes(n0, n1, n2, n3)
					if err != nil {
						b.Fatal(err)
					}
					systems = append(systems, s)
				}
			}
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateBatch(ctx, db, systems); err != nil {
			b.Fatal(err)
		}
	}
}

// serveBenchSetup builds the EPYC-scale what-if workload: the full
// 8-CCD system and a 3-node candidate list (3^9 = 19683 combos), plus
// the swap request the serve benchmarks answer.
func serveBenchSetup(b *testing.B) (*TechDB, *ServeSweepRequest, *ServeWhatIfRequest) {
	b.Helper()
	db := DefaultDB()
	sys, err := EPYC(db, 8)
	if err != nil {
		b.Fatal(err)
	}
	nodes := []int{7, 10, 14}
	sweep := &ServeSweepRequest{System: sys, Nodes: nodes}
	whatIf := &ServeWhatIfRequest{
		System: sys,
		Nodes:  nodes,
		Swap:   map[string]int{"iod": 10, "ccd0": 10},
	}
	return db, sweep, whatIf
}

// BenchmarkServeWarmWhatIf measures one node-swap what-if against a
// warm server: plan-cache hit, Gray-code point inversion, single-point
// evaluation off the compiled tables. This is the steady-state
// per-request cost of the serving layer.
func BenchmarkServeWarmWhatIf(b *testing.B) {
	db, _, whatIf := serveBenchSetup(b)
	srv := NewCarbonServer(db, ServeConfig{})
	ctx := context.Background()
	if _, err := srv.WhatIf(ctx, whatIf); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.WhatIf(ctx, whatIf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeColdWhatIf measures the same what-if against a cold
// server every iteration: content hash, plan compile, then the
// single-point evaluation — what every request would cost without the
// plan cache.
func BenchmarkServeColdWhatIf(b *testing.B) {
	db, _, whatIf := serveBenchSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := NewCarbonServer(db, ServeConfig{})
		if _, err := srv.WhatIf(ctx, whatIf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogEviction measures a capacity-bounded shard catalog
// thrashing: four registered sweeps cycling through two resident slots,
// so every Plan call past the warmup is an eviction plus a deterministic
// recompile.
func BenchmarkCatalogEviction(b *testing.B) {
	db := DefaultDB()
	cat := NewShardCatalogCap(2)
	keys := make([]string, 4)
	for i := range keys {
		base := GA102(db, 7, 14, 10, false)
		base.Chiplets = append([]Chiplet(nil), base.Chiplets...)
		base.Chiplets[0].Transistors *= 1 + 0.01*float64(i)
		key, err := cat.RegisterSweep(base, db, sweepBenchNodes, DefaultCostParams())
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = key
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Plan(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

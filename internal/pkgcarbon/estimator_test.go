package pkgcarbon

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ecochip/internal/tech"
)

// randChiplets builds a random chiplet set over the default node DB.
func randChiplets(rng *rand.Rand, db *tech.DB) []Chiplet {
	sizes := db.Sizes()
	n := 1 + rng.Intn(5)
	out := make([]Chiplet, n)
	for i := range out {
		out[i] = Chiplet{
			Name:    fmt.Sprintf("c%d", i),
			AreaMM2: 5 + rng.Float64()*300,
			Node:    db.MustGet(sizes[rng.Intn(len(sizes))]),
		}
	}
	return out
}

func resultsBitIdentical(a, b *Result) bool {
	return a.Arch == b.Arch &&
		math.Float64bits(a.PackageAreaMM2) == math.Float64bits(b.PackageAreaMM2) &&
		math.Float64bits(a.WhitespaceMM2) == math.Float64bits(b.WhitespaceMM2) &&
		a.NumBridges == b.NumBridges &&
		math.Float64bits(a.NumBonds) == math.Float64bits(b.NumBonds) &&
		math.Float64bits(a.AssemblyYield) == math.Float64bits(b.AssemblyYield) &&
		math.Float64bits(a.PackageKg) == math.Float64bits(b.PackageKg) &&
		math.Float64bits(a.RoutingKg) == math.Float64bits(b.RoutingKg) &&
		math.Float64bits(a.RouterAreaPerChipletMM2) == math.Float64bits(b.RouterAreaPerChipletMM2) &&
		math.Float64bits(a.RouterTotalPowerW) == math.Float64bits(b.RouterTotalPowerW)
}

// The scratch-backed Estimator must reproduce Estimate bit for bit for
// every architecture, including across repeated reuse of one scratch.
func TestEstimatorMatchesEstimate(t *testing.T) {
	db := tech.Default()
	rng := rand.New(rand.NewSource(7))
	for _, arch := range Architectures {
		p := DefaultParams(arch)
		est, err := NewEstimator(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			chiplets := randChiplets(rng, db)
			want, wantErr := Estimate(chiplets, p)
			got, gotErr := est.Estimate(chiplets)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%v trial %d: error mismatch: %v vs %v", arch, trial, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !resultsBitIdentical(want, got) {
				t.Fatalf("%v trial %d: results differ\nwant %+v\ngot  %+v", arch, trial, want, got)
			}
		}
	}
}

// EstimateDelta must reproduce a full Estimate bit for bit across long
// single-changed-chiplet walks — area changes, node changes, both at
// once — for every architecture, including the EMIB path whose
// adjacency rescan is restricted to moved rectangles.
func TestEstimateDeltaMatchesEstimate(t *testing.T) {
	db := tech.Default()
	sizes := db.Sizes()
	rng := rand.New(rand.NewSource(41))
	for _, arch := range Architectures {
		p := DefaultParams(arch)
		est, err := NewEstimator(p)
		if err != nil {
			t.Fatal(err)
		}
		chiplets := randChiplets(rng, db)
		// Seed the retained state; a delta before any estimate must also
		// work (it falls back to the full path internally).
		if _, err := est.EstimateDelta(chiplets, 0); err != nil {
			t.Fatalf("%v: first delta: %v", arch, err)
		}
		for step := 0; step < 200; step++ {
			i := rng.Intn(len(chiplets))
			if rng.Intn(3) > 0 {
				chiplets[i].AreaMM2 = 5 + rng.Float64()*300
			}
			if rng.Intn(2) == 0 {
				chiplets[i].Node = db.MustGet(sizes[rng.Intn(len(sizes))])
			}
			want, err := Estimate(chiplets, p)
			if err != nil {
				t.Fatalf("%v step %d: %v", arch, step, err)
			}
			got, err := est.EstimateDelta(chiplets, i)
			if err != nil {
				t.Fatalf("%v step %d: delta: %v", arch, step, err)
			}
			if !resultsBitIdentical(want, got) {
				t.Fatalf("%v step %d: delta diverges\nwant %+v\ngot  %+v", arch, step, want, got)
			}
		}
	}
}

// A delta whose preconditions do not hold (different chiplet count or
// names) must fall back to the full path, never serve a stale tree.
func TestEstimateDeltaFallsBackOnShapeChange(t *testing.T) {
	p := DefaultParams(SiliconBridge)
	est, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	a := chipletsOf(7, 120, 60, 30)
	if _, err := est.Estimate(a); err != nil {
		t.Fatal(err)
	}
	b := chipletsOf(7, 100, 50, 25, 10) // different count
	want, err := Estimate(b, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.EstimateDelta(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsBitIdentical(want, got) {
		t.Fatalf("count-changed delta diverges:\nwant %+v\ngot  %+v", want, got)
	}
	c := chipletsOf(7, 100, 50, 25, 10)
	c[2].Name = "other"
	want, err = Estimate(c, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err = est.EstimateDelta(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsBitIdentical(want, got) {
		t.Fatalf("name-changed delta diverges:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestEstimateDeltaValidatesChangedChiplet(t *testing.T) {
	db := tech.Default()
	est, err := NewEstimator(DefaultParams(RDLFanout))
	if err != nil {
		t.Fatal(err)
	}
	chips := []Chiplet{
		{Name: "a", AreaMM2: 100, Node: db.MustGet(7)},
		{Name: "b", AreaMM2: 50, Node: db.MustGet(14)},
	}
	if _, err := est.Estimate(chips); err != nil {
		t.Fatal(err)
	}
	chips[1].AreaMM2 = -4
	if _, err := est.EstimateDelta(chips, 1); err == nil {
		t.Error("non-positive area should fail")
	}
	chips[1].AreaMM2 = 50
	chips[1].Node = nil
	if _, err := est.EstimateDelta(chips, 1); err == nil {
		t.Error("nil node should fail")
	}
}

// EstimateOnFloorplan must reproduce a full Estimate bit for bit when
// handed the floorplan that estimate would compute — the seam compiled
// parameter plans use for packaging-dirty evaluations whose geometry
// inputs are untouched.
func TestEstimateOnFloorplanMatchesEstimate(t *testing.T) {
	db := tech.Default()
	rng := rand.New(rand.NewSource(59))
	for _, arch := range Architectures {
		base := DefaultParams(arch)
		for trial := 0; trial < 20; trial++ {
			chiplets := randChiplets(rng, db)
			full, err := Estimate(chiplets, base)
			if err != nil {
				continue // e.g. single-chiplet EMIB has no adjacency
			}
			// Perturb a geometry-free parameter, as a DirtyPackaging
			// evaluation would.
			p := base
			p.CarbonIntensity = 0.030 + 0.6*rng.Float64()
			want, err := Estimate(chiplets, p)
			if err != nil {
				t.Fatalf("%v trial %d: %v", arch, trial, err)
			}
			got, err := EstimateOnFloorplan(chiplets, p, full.Floorplan)
			if err != nil {
				t.Fatalf("%v trial %d: EstimateOnFloorplan: %v", arch, trial, err)
			}
			if !resultsBitIdentical(want, got) {
				t.Fatalf("%v trial %d: floorplan-reuse estimate diverges\nwant %+v\ngot  %+v", arch, trial, want, got)
			}
		}
	}
}

func TestEstimateOnFloorplanValidates(t *testing.T) {
	db := tech.Default()
	p := DefaultParams(RDLFanout)
	chips := []Chiplet{{Name: "a", AreaMM2: 100, Node: db.MustGet(7)}}
	if _, err := EstimateOnFloorplan(chips, p, nil); err == nil {
		t.Error("nil floorplan should fail for a 2D architecture")
	}
	if _, err := EstimateOnFloorplan(nil, p, nil); err == nil {
		t.Error("empty chiplet set should fail")
	}
	// ThreeD ignores the floorplan entirely.
	want, err := Estimate(chips, DefaultParams(ThreeD))
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimateOnFloorplan(chips, DefaultParams(ThreeD), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsBitIdentical(want, got) {
		t.Error("3D floorplan-reuse estimate diverges from the full path")
	}
}

func TestNewEstimatorValidates(t *testing.T) {
	p := DefaultParams(RDLFanout)
	p.RDLLayers = 99
	if _, err := NewEstimator(p); err == nil {
		t.Error("invalid params should fail at construction")
	}
}

func TestEstimatorResultIsReused(t *testing.T) {
	db := tech.Default()
	p := DefaultParams(RDLFanout)
	est, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := est.Estimate([]Chiplet{{Name: "a", AreaMM2: 100, Node: db.MustGet(7)}, {Name: "b", AreaMM2: 50, Node: db.MustGet(14)}})
	if err != nil {
		t.Fatal(err)
	}
	first := *a
	b, err := est.Estimate([]Chiplet{{Name: "a", AreaMM2: 10, Node: db.MustGet(7)}, {Name: "b", AreaMM2: 5, Node: db.MustGet(14)}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("estimator should return its scratch Result on every call")
	}
	if math.Float64bits(first.PackageKg) == math.Float64bits(b.PackageKg) {
		t.Error("second call should have overwritten the scratch result")
	}
}

// EstimateRouting must reproduce the communication fields of a full
// Estimate bit-for-bit for every architecture — it is the seam compiled
// parameter plans use to refresh the node-dependent slice of a tabulated
// packaging result.
func TestEstimateRoutingMatchesEstimate(t *testing.T) {
	db := tech.Default()
	chiplets := []Chiplet{
		{Name: "a", AreaMM2: 120, Node: db.MustGet(7)},
		{Name: "b", AreaMM2: 60, Node: db.MustGet(14)},
		{Name: "c", AreaMM2: 30, Node: db.MustGet(10)},
	}
	for _, arch := range Architectures {
		p := DefaultParams(arch)
		full, err := Estimate(chiplets, p)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		r, err := EstimateRouting(chiplets, p)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if math.Float64bits(r.RoutingKg) != math.Float64bits(full.RoutingKg) ||
			math.Float64bits(r.RouterAreaPerChipletMM2) != math.Float64bits(full.RouterAreaPerChipletMM2) ||
			math.Float64bits(r.RouterTotalPowerW) != math.Float64bits(full.RouterTotalPowerW) {
			t.Errorf("%v: routing slice diverges from full estimate:\nfull %+v\ngot  %+v", arch, full, r)
		}
	}
	if _, err := EstimateRouting(nil, DefaultParams(RDLFanout)); err == nil {
		t.Error("empty chiplet set should fail")
	}
}

package floorplan

import (
	"fmt"
	"testing"
)

func benchBlocks(n int) []Block {
	blocks := make([]Block, n)
	for i := range blocks {
		blocks[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: float64(20 + 13*i%200)}
	}
	return blocks
}

func BenchmarkPlan8(b *testing.B) {
	blocks := benchBlocks(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(blocks, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlan32(b *testing.B) {
	blocks := benchBlocks(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(blocks, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanFlexible8(b *testing.B) {
	blocks := benchBlocks(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanFlexible(blocks, 0.5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

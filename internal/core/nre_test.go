package core

import (
	"testing"

	"ecochip/internal/mfg"
)

func TestNREExtensionRaisesEmbodied(t *testing.T) {
	base := threeChiplet(7, 14, 10)
	plain, err := base.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if plain.NREKg != 0 {
		t.Fatal("NRE term should be zero when the extension is off")
	}
	withNRE := threeChiplet(7, 14, 10)
	withNRE.IncludeNRE = true
	rep, err := withNRE.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NREKg <= 0 {
		t.Fatal("NRE term should be positive when enabled")
	}
	if rep.EmbodiedKg() <= plain.EmbodiedKg() {
		t.Error("enabling NRE should raise embodied carbon")
	}
	if rep.MfgKg != plain.MfgKg {
		t.Error("NRE must not change the per-die manufacturing term")
	}
}

// The paper's Section V-C claim: splitting out NRE "will only improve
// CFP savings" for reused chiplets — higher per-chiplet volume shrinks
// the NRE share.
func TestNREAmortizesWithReuse(t *testing.T) {
	lowReuse := threeChiplet(7, 14, 10)
	lowReuse.IncludeNRE = true
	highReuse := threeChiplet(7, 14, 10)
	highReuse.IncludeNRE = true
	for i := range highReuse.Chiplets {
		highReuse.Chiplets[i].ManufacturedParts = 10 * DefaultVolume
	}
	lo, err := lowReuse.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := highReuse.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if hi.NREKg >= lo.NREKg {
		t.Errorf("10x reuse should cut the NRE share: %g vs %g", hi.NREKg, lo.NREKg)
	}
}

func TestNREMonolith(t *testing.T) {
	mono := monolith(7)
	mono.IncludeNRE = true
	rep, err := mono.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	// One 7nm mask set over the default volume.
	want, err := mfg.AmortizedNREKg(db().MustGet(7), DefaultVolume, mfg.DefaultNREParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.NREKg != want {
		t.Errorf("monolith NRE = %g, want %g", rep.NREKg, want)
	}
}

func TestNRECustomParams(t *testing.T) {
	s := monolith(7)
	s.IncludeNRE = true
	s.NRE = mfg.NREParams{EnergyPerMaskKWh: 1000, MaterialKgPerMask: 20, CarbonIntensity: 0.7}
	custom, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	s.NRE = mfg.NREParams{}
	def, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if custom.NREKg <= def.NREKg {
		t.Error("doubled mask energy should raise the NRE term")
	}
	bad := monolith(7)
	bad.IncludeNRE = true
	bad.NRE = mfg.NREParams{EnergyPerMaskKWh: -1, MaterialKgPerMask: 1, CarbonIntensity: 0.7}
	if _, err := bad.Evaluate(db()); err == nil {
		t.Error("invalid NRE params should fail evaluation")
	}
}

// Package engine is the shared parallel batch-evaluation backend of the
// Section VI analysis workflows. Every sweep, sensitivity study, Monte
// Carlo run and figure runner reduces to the same shape of work — "apply
// a pure evaluation to N independent design points" — and this package
// runs that shape across a worker pool with:
//
//   - index-addressed results: point i's result lands in slot i
//     regardless of worker scheduling, so parallel output is
//     byte-identical to the serial walk,
//   - a concurrency-safe memo cache for the expensive pure sub-models
//     (mfg.Die, descarbon.ChipletKg) that full-factorial sweeps would
//     otherwise recompute thousands of times,
//   - context cancellation with fail-fast error collection (the lowest
//     observed failing index wins), and
//   - an optional progress callback for long-running CLI sweeps.
//
// Compiled plans (internal/kernel, internal/explore) run on top of this
// pool: RunScratch carries their per-worker scratch arenas (packaging
// estimators, sandbox databases, operational-term memos) and RunBlocks
// hands Gray-code walkers the contiguous index ranges their incremental
// evaluation depends on.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"ecochip/internal/core"
	"ecochip/internal/tech"
)

// Options configures a batch run; build one from Option values.
type Options struct {
	workers  int
	cache    *Cache
	noCache  bool
	progress func(done, total int)
}

// Option mutates Options.
type Option func(*Options)

// WithWorkers sets the worker count. Zero or negative selects
// GOMAXPROCS; one gives a serial run (useful as a reference in tests).
func WithWorkers(n int) Option { return func(o *Options) { o.workers = n } }

// WithCache shares a memo cache across batch calls — e.g. the steps of a
// greedy search, or the generations of a roadmap, which revisit the same
// dies. A nil cache is ignored.
func WithCache(c *Cache) Option { return func(o *Options) { o.cache = c } }

// WithoutCache disables memoization entirely, making every task compute
// its sub-models directly. Used to produce the uncached serial reference
// path in equivalence tests and benchmarks.
func WithoutCache() Option { return func(o *Options) { o.noCache = true } }

// WithProgress registers a callback invoked after every completed point
// with (completed, total). Calls are serialized; done is monotonically
// increasing.
func WithProgress(fn func(done, total int)) Option { return func(o *Options) { o.progress = fn } }

func buildOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func (o *Options) workerCount(n int) int {
	w := o.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// hooks resolves the memoization hooks for this run: the shared cache if
// one was provided, a fresh private cache by default, or nil direct
// calls under WithoutCache.
func (o *Options) hooks() *core.Hooks {
	if o.noCache {
		return nil
	}
	c := o.cache
	if c == nil {
		c = NewCache()
	}
	return c.Hooks()
}

// indexedErr pairs a task error with its point index so fail-fast error
// reporting prefers the earliest failure observed: among the errors
// that actually surfaced before cancellation stopped the batch, the
// lowest index wins.
type indexedErr struct {
	index int
	err   error
}

// Run evaluates fn(ctx, i, hooks) for i in [0, n) across the worker
// pool and returns the results index-addressed. On the first task error
// the context handed to the tasks is cancelled and the batch fails
// fast, returning the lowest-index error observed (cancellation may
// skip a lower-index point that would also have failed, so which error
// surfaces can depend on scheduling — only successful results are
// guaranteed scheduling-independent); a cancelled parent context
// returns ctx.Err(). A panic inside a task is recovered into a
// *PanicError (point index + stack) and fails the batch like any task
// error, so one poisoned evaluation cannot take down a long-lived
// serving process. The hooks argument carries the run's memo cache
// (nil when caching is disabled) for forwarding to
// core.System.EvaluateWith.
func Run[T any](ctx context.Context, n int, fn func(ctx context.Context, i int, h *core.Hooks) (T, error), opts ...Option) ([]T, error) {
	return RunScratch(ctx, n,
		func(h *core.Hooks) (*core.Hooks, error) { return h, nil },
		func(ctx context.Context, i int, h *core.Hooks) (T, error) { return fn(ctx, i, h) },
		opts...)
}

// RunScratch is Run for evaluators that carry per-worker scratch state —
// reusable report buffers, packaging estimators, floorplan arenas — that
// is too expensive to rebuild per point and must not be shared across
// goroutines. newScratch runs once on each worker goroutine before it
// claims work, receiving the run's memo hooks (nil when caching is
// disabled) so the scratch can capture them; fn then receives the
// worker's scratch for every point it evaluates.
func RunScratch[T, S any](ctx context.Context, n int, newScratch func(h *core.Hooks) (S, error), fn func(ctx context.Context, i int, scratch S) (T, error), opts ...Option) ([]T, error) {
	return RunScratchRelease(ctx, n, newScratch, nil, fn, opts...)
}

// RunScratchRelease is RunScratch with a release hook: each worker's
// scratch is handed to release when the worker finishes (whether the
// batch succeeded, failed or was cancelled), so scratches drawn from a
// step-spanning pool (kernel.ScratchPool) can be returned to it and
// keep their retained state warm for the next batch. A nil release is
// ignored.
func RunScratchRelease[T, S any](ctx context.Context, n int, newScratch func(h *core.Hooks) (S, error), release func(S), fn func(ctx context.Context, i int, scratch S) (T, error), opts ...Option) ([]T, error) {
	o := buildOptions(opts)
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	h := o.hooks()
	workers := o.workerCount(n)

	if workers == 1 {
		// Serial runs stay on the caller's goroutine: no spawn, no
		// derived context, and — decisive for searches that issue many
		// small batches — no per-batch stack regrowth for recursive
		// evaluators. Results and error selection are trivially
		// identical to the one-worker pool.
		scratch, err := safeScratch(h, newScratch)
		if err != nil {
			return nil, err
		}
		if release != nil {
			defer release(scratch)
		}
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := safeCall(ctx, i, scratch, fn)
			if err != nil {
				return nil, err
			}
			results[i] = res
			if o.progress != nil {
				o.progress(i+1, n)
			}
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	pool := newPool(cancel, o.progress, n)
	var next atomic.Int64 // next unclaimed index

	pool.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer pool.wg.Done()
			scratch, err := safeScratch(h, newScratch)
			if err != nil {
				// A scratch failure poisons the whole run: report it
				// ahead of any task error.
				pool.fail(-1, err)
				return
			}
			if release != nil {
				defer release(scratch)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					return
				}
				res, err := safeCall(ctx, i, scratch, fn)
				if err != nil {
					pool.fail(i, err)
					return
				}
				results[i] = res
				pool.step()
			}
		}()
	}
	pool.wg.Wait()

	if err := pool.err(ctx); err != nil {
		return nil, err
	}
	return results, nil
}

// RunBlocks partitions [0, n) into one contiguous block per worker and
// invokes fn once per block. It exists for evaluators whose cost
// structure rewards locality — a Gray-code sweep walk is cheap only
// while successive indices stay adjacent, which per-index work stealing
// would destroy. fn must call tick() once per completed point (it feeds
// the WithProgress callback) and should poll ctx between points. A
// block error cancels the run; the error of the lowest-starting failed
// block wins, and fn returns of the cancellation cause itself (the
// derived ctx's Err) are not recorded as failures. A panic inside fn is
// recovered into a *PanicError carrying the block range and stack.
func RunBlocks(ctx context.Context, n int, fn func(ctx context.Context, lo, hi int, tick func()) error, opts ...Option) error {
	o := buildOptions(opts)
	if n == 0 {
		return ctx.Err()
	}
	workers := o.workerCount(n)

	if workers == 1 {
		// Serial walks stay on the caller's goroutine (see the
		// RunScratchRelease serial path for the rationale).
		done := 0
		tick := func() {
			if o.progress != nil {
				done++
				o.progress(done, n)
			}
		}
		return safeBlock(ctx, 0, n, tick, fn)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	pool := newPool(cancel, o.progress, n)
	pool.wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		go func() {
			defer pool.wg.Done()
			if err := safeBlock(ctx, lo, hi, pool.step, fn); err != nil {
				// Only this run's own cancellation is benign to swallow
				// (another block already failed, or the parent was
				// cancelled — pool.err reports the cause). An error that
				// merely wraps a context sentinel from elsewhere (e.g. an
				// evaluator's inner timeout) must still fail the run, or
				// it would return success with unfilled result slots.
				if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
					return
				}
				pool.fail(lo, err)
			}
		}()
	}
	pool.wg.Wait()
	return pool.err(ctx)
}

// pool is the shared bookkeeping of one batch run: fail-fast error
// selection and serialized progress.
type pool struct {
	cancel   context.CancelFunc
	progress func(done, total int)
	total    int

	mu       sync.Mutex // guards firstErr and done
	firstErr *indexedErr
	done     int
	wg       sync.WaitGroup
}

func newPool(cancel context.CancelFunc, progress func(done, total int), total int) *pool {
	return &pool{cancel: cancel, progress: progress, total: total}
}

func (p *pool) fail(i int, err error) {
	p.mu.Lock()
	if p.firstErr == nil || i < p.firstErr.index {
		p.firstErr = &indexedErr{i, err}
	}
	p.mu.Unlock()
	p.cancel()
}

func (p *pool) step() {
	if p.progress == nil {
		return
	}
	// The callback runs under the mutex so invocations are serialized
	// and done is strictly increasing, as WithProgress promises.
	p.mu.Lock()
	p.done++
	p.progress(p.done, p.total)
	p.mu.Unlock()
}

func (p *pool) err(ctx context.Context) error {
	if p.firstErr != nil {
		return p.firstErr.err
	}
	return ctx.Err()
}

// EvaluateBatch evaluates every system against the database across the
// worker pool, sharing one memo cache so identical per-die sub-results
// (the bulk of a full-factorial sweep) are computed once. results[i] is
// systems[i]'s report; the output is byte-identical to calling
// systems[i].Evaluate(db) in order.
func EvaluateBatch(ctx context.Context, db *tech.DB, systems []*core.System, opts ...Option) ([]*core.Report, error) {
	return Run(ctx, len(systems), func(ctx context.Context, i int, h *core.Hooks) (*core.Report, error) {
		return systems[i].EvaluateWith(db, h)
	}, opts...)
}

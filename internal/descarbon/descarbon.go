// Package descarbon implements the design-carbon model of Section III-E
// of the ECO-CHIP paper (Eqs. (12) and (13)):
//
//	C_des   = sum_i C_des,i / N_Mi  +  C_des,comm / N_S
//	C_des,i = t_des,i * P_des * C_des,src
//	t_des,i = t_verif,i + (t_SP&R,i + t_analyze,i) * N_des / eta_EDA
//
// The model is calibrated to the paper's measurement: one synthesis,
// place & route (SP&R) pass of a 700,000-gate design in a commercial 7 nm
// node takes 24 CPU-hours. Design compute time scales linearly with gate
// count, analysis adds a fixed fraction per pass, verification dominates
// 80% of product development time, and the whole effort shrinks on older
// nodes through the EDA-productivity derate eta_EDA.
package descarbon

import (
	"fmt"

	"ecochip/internal/tech"
)

// Calibration constants from Section V-A(2) of the paper.
const (
	// calibGates and calibHours: 700k gates take 24 CPU-hours of SP&R
	// in 7 nm.
	calibGates = 700_000.0
	calibHours = 24.0
	// calibEDA is eta_EDA of the 7 nm calibration node in the built-in
	// database; the per-gate base rate is normalized so the calibration
	// point reproduces exactly.
	calibEDA = 0.55
	// TransistorsPerGate converts transistor counts to logic-gate
	// counts (a NAND2-equivalent gate is 4 transistors).
	TransistorsPerGate = 4.0
)

// Params bundles the design-effort knobs (Table I defaults).
type Params struct {
	// PowerW is P_des, the per-CPU design-compute power (Table I: 10 W).
	PowerW float64
	// Iterations is N_des, the number of SP&R design iterations
	// (Table I: 100).
	Iterations int
	// CarbonIntensity is C_des,src in kg CO2/kWh.
	CarbonIntensity float64
	// VerifShare is the fraction of total product development time spent
	// in verification (the paper: 80%).
	VerifShare float64
	// AnalyzeFactor is t_analyze as a fraction of t_SP&R per pass.
	AnalyzeFactor float64
}

// DefaultParams matches the paper's experiments: 10 W design CPUs, 100
// iterations, coal-sourced compute energy, verification at 80% of the
// schedule and analysis at 25% of an SP&R pass.
func DefaultParams() Params {
	return Params{
		PowerW:          10,
		Iterations:      100,
		CarbonIntensity: 0.700,
		VerifShare:      0.8,
		AnalyzeFactor:   0.25,
	}
}

// Validate enforces sane ranges.
func (p Params) Validate() error {
	if p.PowerW <= 0 {
		return fmt.Errorf("descarbon: design power must be positive, got %g", p.PowerW)
	}
	if p.Iterations < 1 {
		return fmt.Errorf("descarbon: iterations must be >= 1, got %d", p.Iterations)
	}
	if p.CarbonIntensity < 0.030 || p.CarbonIntensity > 0.700 {
		return fmt.Errorf("descarbon: carbon intensity %g outside [0.030, 0.700]", p.CarbonIntensity)
	}
	if p.VerifShare < 0 || p.VerifShare >= 1 {
		return fmt.Errorf("descarbon: verification share %g outside [0, 1)", p.VerifShare)
	}
	if p.AnalyzeFactor < 0 {
		return fmt.Errorf("descarbon: analyze factor must be non-negative, got %g", p.AnalyzeFactor)
	}
	return nil
}

// SPRHours returns t_SP&R,i: the CPU-hours of a single SP&R pass for a
// design with the given gate count in the given node. The 7 nm
// calibration point (700k gates -> 24 h) anchors the scale; other nodes
// scale inversely with their EDA productivity.
func SPRHours(gates float64, n *tech.Node) float64 {
	if gates < 0 {
		panic(fmt.Sprintf("descarbon: negative gate count %g", gates))
	}
	basePerGate := calibHours / calibGates * calibEDA // hours/gate normalized to eta_EDA = 1
	return gates * basePerGate / n.EDAProductivity
}

// SinglePassKg returns the carbon of one SP&R pass (the Fig. 7(b)
// quantity): t_SP&R * P_des * C_des,src.
func SinglePassKg(gates float64, n *tech.Node, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	hours := SPRHours(gates, n)
	return hours * p.PowerW / 1000 * p.CarbonIntensity, nil
}

// TotalHours returns t_des,i per Eq. (13): N_des iterations of SP&R plus
// analysis, plus verification time derived from the verification share of
// the overall schedule (verif = share/(1-share) of the implementation
// time).
func TotalHours(gates float64, n *tech.Node, p Params) float64 {
	spr := SPRHours(gates, n)
	impl := (spr + p.AnalyzeFactor*spr) * float64(p.Iterations)
	verif := impl * p.VerifShare / (1 - p.VerifShare)
	return verif + impl
}

// ChipletKg returns C_des,i: the full (unamortized) design carbon of one
// chiplet with the given gate count in the given node.
func ChipletKg(gates float64, n *tech.Node, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return TotalHours(gates, n, p) * p.PowerW / 1000 * p.CarbonIntensity, nil
}

// AmortizedKg returns the per-part design carbon: C_des,i / N_Mi for a
// chiplet manufactured N_Mi times. Reusing a chiplet across designs and
// generations grows N_Mi and shrinks this share — the "reuse" lever of
// the paper.
func AmortizedKg(chipletKg float64, manufacturedParts int) (float64, error) {
	if manufacturedParts < 1 {
		return 0, fmt.Errorf("descarbon: manufactured parts must be >= 1, got %d", manufacturedParts)
	}
	return chipletKg / float64(manufacturedParts), nil
}

// SystemKg evaluates Eq. (12) for a set of chiplets: each chiplet's design
// carbon is amortized over its manufacturing volume N_Mi, and the
// communication-fabric design carbon is amortized over the system volume
// N_S.
func SystemKg(chipletKg []float64, nMi []int, commKg float64, nS int) (float64, error) {
	if len(chipletKg) != len(nMi) {
		return 0, fmt.Errorf("descarbon: %d chiplet carbons but %d volumes", len(chipletKg), len(nMi))
	}
	if nS < 1 {
		return 0, fmt.Errorf("descarbon: system volume must be >= 1, got %d", nS)
	}
	var total float64
	for i, kg := range chipletKg {
		a, err := AmortizedKg(kg, nMi[i])
		if err != nil {
			return 0, err
		}
		total += a
	}
	return total + commKg/float64(nS), nil
}

// GatesFromTransistors converts a transistor budget into the
// NAND2-equivalent gate count the timing model consumes.
func GatesFromTransistors(transistors float64) float64 {
	return transistors / TransistorsPerGate
}

package explore

import (
	"encoding/json"
	"fmt"
	"sync"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/tech"
)

// fnv64a is an FNV-64a accumulator whose state is the hash itself —
// which is what lets a Keyer snapshot the state after the database
// prefix and resume per request. (hash/fnv computes the same function
// but cannot be seeded mid-stream.)
type fnv64a uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (h *fnv64a) Write(p []byte) (int, error) {
	s := uint64(*h)
	for _, b := range p {
		s ^= uint64(b)
		s *= fnvPrime64
	}
	*h = fnv64a(s)
	return len(p), nil
}

// keyHash accumulates canonical JSON encodings of the values that make
// up a plan identity into an FNV-64a fingerprint. encoding/json sorts
// map keys and follows pointers, so each write is deterministic in the
// value's content alone.
type keyHash struct {
	h   *fnv64a
	enc *json.Encoder
}

func newKeyHash(state uint64) keyHash {
	h := fnv64a(state)
	return keyHash{h: &h, enc: json.NewEncoder(&h)}
}

func (k keyHash) write(what string, v any) error {
	if err := k.enc.Encode(v); err != nil {
		return fmt.Errorf("explore: plan key %s encoding: %w", what, err)
	}
	return nil
}

// writeDB folds the full database — the node list and every node record
// in sorted order, so map iteration can never perturb it — into the
// fingerprint. Honest version skew (a changed defect density, a
// re-calibrated mask cost) reliably changes every key derived over it.
func (k keyHash) writeDB(db *tech.DB) error {
	sizes := db.Sizes()
	if err := k.write("db-sizes", sizes); err != nil {
		return err
	}
	for _, nm := range sizes {
		n, err := db.Get(nm)
		if err != nil {
			return err
		}
		if err := k.write(fmt.Sprintf("node %dnm", nm), n); err != nil {
			return err
		}
	}
	return nil
}

// Keyer derives plan keys over one pinned database. The database is by
// far the largest key ingredient (every node record), and a serving
// process keys hundreds of requests against the same db version — so
// the Keyer folds the db into the hash state once, lazily, and each key
// derivation resumes from that snapshot and encodes only the
// request-specific suffix. Safe for concurrent use.
type Keyer struct {
	db      *tech.DB
	once    sync.Once
	dbState uint64
	dbErr   error
}

// NewKeyer pins a database for key derivation. The db must not be
// mutated afterwards (the same contract every compiled plan already
// imposes).
func NewKeyer(db *tech.DB) *Keyer { return &Keyer{db: db} }

// start returns a keyHash seeded with the db prefix state.
func (ky *Keyer) start() (keyHash, error) {
	ky.once.Do(func() {
		k := newKeyHash(fnvOffset64)
		if err := k.writeDB(ky.db); err != nil {
			ky.dbErr = err
			return
		}
		ky.dbState = uint64(*k.h)
	})
	if ky.dbErr != nil {
		return keyHash{}, ky.dbErr
	}
	return newKeyHash(ky.dbState), nil
}

func (ky *Keyer) key(prefix string, write func(keyHash) error) (string, error) {
	k, err := ky.start()
	if err != nil {
		return "", err
	}
	if err := write(k); err != nil {
		return "", err
	}
	return fmt.Sprintf("%s-%016x", prefix, uint64(*k.h)), nil
}

// SweepKey derives the stable identity of the compiled sweep of (base,
// db, nodes, cp): two parties that agree on the key are guaranteed to
// compile bit-identical plans, which is what lets a distributed shard
// replica — or a plan-cache lookup in the serving layer — compile
// locally from the key instead of receiving the plan over the wire. The
// key hashes a canonical JSON encoding of every node record of the
// database, the system description, the candidate node list and the
// cost parameters. It is a content fingerprint, not a cryptographic
// commitment: collisions between adversarially crafted systems are out
// of scope.
func (ky *Keyer) SweepKey(base *core.System, nodes []int, cp cost.Params) (string, error) {
	return ky.key("sweep", func(k keyHash) error {
		if err := k.write("system", base); err != nil {
			return err
		}
		if err := k.write("node-list", nodes); err != nil {
			return err
		}
		return k.write("cost-params", cp)
	})
}

// ParamKey derives the stable identity of the compiled parameter plan
// of (base, db) — the what-if cache key for perturbation requests. Same
// contract as SweepKey: equal keys compile bit-identical ParamPlans.
// The prefix keeps the three plan families in one cache namespace
// without cross-family collisions.
func (ky *Keyer) ParamKey(base *core.System) (string, error) {
	return ky.key("param", func(k keyHash) error {
		return k.write("system", base)
	})
}

// DisaggregateKey derives the stable identity of the compiled
// disaggregation search of (base, db). Equal keys produce searches with
// identical (deterministic) greedy trajectories, so warm re-runs are
// bit-identical to the first.
func (ky *Keyer) DisaggregateKey(base *core.System) (string, error) {
	return ky.key("disagg", func(k keyHash) error {
		return k.write("system", base)
	})
}

// PlanKey is the one-shot form of Keyer.SweepKey.
func PlanKey(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (string, error) {
	return NewKeyer(db).SweepKey(base, nodes, cp)
}

// ParamKey is the one-shot form of Keyer.ParamKey.
func ParamKey(base *core.System, db *tech.DB) (string, error) {
	return NewKeyer(db).ParamKey(base)
}

// DisaggregateKey is the one-shot form of Keyer.DisaggregateKey.
func DisaggregateKey(base *core.System, db *tech.DB) (string, error) {
	return NewKeyer(db).DisaggregateKey(base)
}

package core

import (
	"math"
	"testing"
	"testing/quick"

	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// randomSystem builds a valid HI system from fuzz inputs: 2-6 chiplets
// with bounded transistor budgets, node assignments from the supported
// set, and one of the 2D packaging architectures.
func randomSystem(seed []uint16) *System {
	if len(seed) < 3 {
		return nil
	}
	sizes := []int{7, 10, 14, 22, 28, 40, 65}
	archs := []pkgcarbon.Architecture{
		pkgcarbon.RDLFanout, pkgcarbon.SiliconBridge,
		pkgcarbon.PassiveInterposer, pkgcarbon.ActiveInterposer,
	}
	n := 2 + int(seed[0])%5
	chiplets := make([]Chiplet, 0, n)
	for i := 0; i < n; i++ {
		v := seed[i%len(seed)]
		chiplets = append(chiplets, Chiplet{
			Name:        string(rune('a' + i)),
			Type:        tech.DesignTypes[int(v)%3],
			Transistors: float64(v%5000+100) * 1e6,
			NodeNm:      sizes[int(v>>3)%len(sizes)],
		})
	}
	return &System{
		Name:      "fuzz",
		Chiplets:  chiplets,
		Packaging: pkgcarbon.DefaultParams(archs[int(seed[1])%len(archs)]),
		Mfg:       mfg.DefaultParams(),
		Design:    descarbon.DefaultParams(),
	}
}

// Property: every valid random system evaluates without error, all
// carbon components are positive, additivity holds, and every chiplet
// yield is in (0, 1].
func TestEvaluatePropertyRandomSystems(t *testing.T) {
	f := func(seed []uint16) bool {
		s := randomSystem(seed)
		if s == nil {
			return true
		}
		rep, err := s.Evaluate(db())
		if err != nil {
			// Random systems only fail when a huge analog block in an
			// old node physically does not fit the wafer; that is a
			// correct rejection, not a model bug.
			return true
		}
		if rep.MfgKg <= 0 || rep.DesignKg <= 0 || rep.HIKg <= 0 {
			return false
		}
		if math.Abs(rep.EmbodiedKg()-(rep.MfgKg+rep.DesignKg+rep.HIKg+rep.NREKg)) > 1e-9 {
			return false
		}
		for _, c := range rep.Chiplets {
			if c.Yield <= 0 || c.Yield > 1 || c.AreaMM2 <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: re-targeting every chiplet to its own node (identity
// WithNodes) reproduces the identical report.
func TestWithNodesIdentity(t *testing.T) {
	f := func(seed []uint16) bool {
		s := randomSystem(seed)
		if s == nil {
			return true
		}
		nodes := make([]int, len(s.Chiplets))
		for i, c := range s.Chiplets {
			nodes[i] = c.NodeNm
		}
		s2, err := s.WithNodes(nodes...)
		if err != nil {
			return false
		}
		r1, err1 := s.Evaluate(db())
		r2, err2 := s2.Evaluate(db())
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return math.Abs(r1.TotalKg()-r2.TotalKg()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: doubling every chiplet's manufacturing volume never raises
// the amortized design carbon.
func TestVolumeMonotonicityProperty(t *testing.T) {
	f := func(seed []uint16) bool {
		s := randomSystem(seed)
		if s == nil {
			return true
		}
		s2 := *s
		s2.Chiplets = make([]Chiplet, len(s.Chiplets))
		copy(s2.Chiplets, s.Chiplets)
		for i := range s2.Chiplets {
			s2.Chiplets[i].ManufacturedParts = 2 * DefaultVolume
		}
		s2.SystemVolume = 2 * DefaultVolume
		r1, err1 := s.Evaluate(db())
		r2, err2 := s2.Evaluate(db())
		if err1 != nil || err2 != nil {
			return true
		}
		return r2.DesignKg <= r1.DesignKg+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

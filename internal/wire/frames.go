package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Writer frames and writes messages to one stream. It is safe for
// concurrent use: lease goroutines encode their payloads into pooled
// scratch (GetBuffer) and WriteFrame serializes header+body emission
// under one mutexless contract — callers synchronize via their own
// connection lock — so Writer itself stays lock-free and allocation-
// free on the steady state. (netx guards each connection's Writer with
// the connection mutex; keeping the lock out of Writer keeps the codec
// benchmarkable in isolation.)
type Writer struct {
	bw     *bufio.Writer
	hdr    [binary.MaxVarintLen64 + 1 + binary.MaxVarintLen64]byte
	frames uint64
	bytes  uint64
}

// NewWriter wraps a stream. The bufio layer merges the header and body
// into one syscall: WriteFrame always flushes, so a frame is on the
// wire when the call returns, while BufferFrame defers the flush so a
// burst of frames (a lease's block-result stream) coalesces into few
// syscalls.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 32<<10)}
}

// WriteFrame emits one frame: uvarint(len(body)) || type || uvarint(id)
// || payload, flushed to the wire before returning. The payload must
// already be encoded (Append* into a pooled buffer); WriteFrame never
// retains it.
func (w *Writer) WriteFrame(m Msg, id uint64, payload []byte) error {
	if err := w.BufferFrame(m, id, payload); err != nil {
		return err
	}
	return w.bw.Flush()
}

// BufferFrame encodes one frame into the write buffer without flushing
// (the buffer still drains to the wire whenever it fills). A burst
// must end with a WriteFrame or Flush, or its tail never leaves the
// buffer.
func (w *Writer) BufferFrame(m Msg, id uint64, payload []byte) error {
	n := binary.PutUvarint(w.hdr[binary.MaxVarintLen64:], id)
	body := w.hdr[binary.MaxVarintLen64 : binary.MaxVarintLen64+n]
	bodyLen := 1 + n + len(payload)
	if bodyLen > MaxFrame {
		return fmt.Errorf("wire: frame body %d exceeds MaxFrame", bodyLen)
	}
	pfx := binary.PutUvarint(w.hdr[:], uint64(bodyLen))
	if _, err := w.bw.Write(w.hdr[:pfx]); err != nil {
		return err
	}
	if err := w.bw.WriteByte(byte(m)); err != nil {
		return err
	}
	if _, err := w.bw.Write(body); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.frames++
	w.bytes += uint64(pfx + bodyLen)
	return nil
}

// Flush drains any buffered frames to the wire.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Counters reports frames and bytes written.
func (w *Writer) Counters() (frames, bytes uint64) { return w.frames, w.bytes }

// Reader reads frames from one stream. The payload returned by
// ReadFrame aliases an internal buffer valid until the next call —
// decode (or copy) before reading again. Not safe for concurrent use;
// each connection owns one read loop.
type Reader struct {
	br     *bufio.Reader
	buf    []byte
	max    int
	frames uint64
	bytes  uint64
}

// NewReader wraps a stream with the given frame cap (0 selects
// MaxFrame).
func NewReader(r io.Reader, max int) *Reader {
	if max <= 0 || max > MaxFrame {
		max = MaxFrame
	}
	return &Reader{br: bufio.NewReaderSize(r, 32<<10), max: max}
}

// ReadFrame reads one frame and splits its body into type, lease id
// and payload.
func (r *Reader) ReadFrame() (Msg, uint64, []byte, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, 0, nil, err
	}
	if n == 0 || n > uint64(r.max) {
		return 0, 0, nil, fmt.Errorf("%w: frame body length %d", ErrCorrupt, n)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	body := r.buf[:n]
	if _, err := io.ReadFull(r.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, 0, nil, err
	}
	m := Msg(body[0])
	id, sz := binary.Uvarint(body[1:])
	if sz <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: frame lease id", ErrCorrupt)
	}
	r.frames++
	r.bytes += n + uint64(uvarintLen(n))
	return m, id, body[1+sz:], nil
}

// uvarintLen is the encoded size of v, without encoding it.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Counters reports frames and bytes read.
func (r *Reader) Counters() (frames, bytes uint64) { return r.frames, r.bytes }

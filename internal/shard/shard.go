// Package shard is the fault-tolerant distributed execution layer for
// compiled sweeps: a coordinator partitions a plan's Gray-code sequence
// space into fixed-size blocks and hands out *leased block ranges*
// (lease = contiguous block span + sequence number + deadline) to
// stateless replicas, which compile the plan locally from its
// (system, db-version) key — see explore.PlanKey — and stream per-block
// results back.
//
// Robustness is the design center, and it rests on one invariant the
// rest of the repository already guarantees: blocks are deterministic.
// A block's points are a pure function of the plan key and the block
// id (explore.CompiledPlan.WalkRange is bit-identical wherever and
// whenever it runs), which collapses the classic distributed-failure
// taxonomy into bookkeeping:
//
//   - Lost or dropped results, crashed replicas, expired leases: the
//     coordinator re-leases the missing blocks to surviving replicas
//     (with exponential backoff + jitter between retries of a failing
//     replica). Recomputation cannot diverge from the lost result.
//   - Duplicate deliveries and straggler leases that complete after
//     being re-leased: first write wins, keyed by block id and recorded
//     with the winning lease's sequence number. Both writes carry the
//     same bits, so dedup order is unobservable in the output.
//   - Total replica loss: the coordinator degrades to walking the
//     remaining blocks itself on the single-process path (a logged
//     fallback, not an error), unless Config.DisableFallback asks for
//     a typed *ExhaustedError instead.
//
// The result is reassembled in exact mixed-radix order (every point is
// addressed by its output slot), or reduced to a Pareto front by
// merging per-block skyline survivors at the barrier the same way
// explore.ParetoFrontCtx merges per-worker fronts. Either way the
// output is bit-identical to running the plan locally — the chaos
// suite drives random fault schedules through the fault-injection
// Transport wrapper (Fault) to hold that line.
package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ecochip/internal/explore"
)

// BlockRange is a contiguous half-open span of block ids.
type BlockRange struct {
	Lo, Hi int
}

// Len returns the number of blocks in the span.
func (r BlockRange) Len() int { return r.Hi - r.Lo }

// Mode selects what a replica ships per block: every point of the
// block, or only the block's skyline-front survivors.
type Mode uint8

const (
	// ModePoints streams every point of each block (the reassembling
	// sweep shape).
	ModePoints Mode = iota
	// ModeFront streams only each block's Pareto-front survivors under
	// the lease's objectives (the reduced wire-traffic front shape).
	ModeFront
)

// Objective names a standard sweep metric in wire-encodable form, so a
// lease can carry front objectives without shipping function values.
type Objective uint8

const (
	// ObjEmbodied minimizes embodied carbon (explore.ByEmbodied).
	ObjEmbodied Objective = iota
	// ObjTotal minimizes total lifetime carbon (explore.ByTotal).
	ObjTotal
	// ObjCost minimizes dollar cost (explore.ByCost).
	ObjCost
	// ObjArea minimizes package footprint (explore.ByArea).
	ObjArea
)

// Metric resolves the objective to its explore metric.
func (o Objective) Metric() (explore.Metric, error) {
	switch o {
	case ObjEmbodied:
		return explore.ByEmbodied, nil
	case ObjTotal:
		return explore.ByTotal, nil
	case ObjCost:
		return explore.ByCost, nil
	case ObjArea:
		return explore.ByArea, nil
	}
	return nil, fmt.Errorf("shard: unknown objective %d", o)
}

// ObjectiveMetrics resolves a lease's objective list.
func ObjectiveMetrics(objs []Objective) ([]explore.Metric, error) {
	ms := make([]explore.Metric, len(objs))
	for i, o := range objs {
		m, err := o.Metric()
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

// Lease grants one replica a block span of one plan. Seq is the
// coordinator's monotone grant number (recorded with each completed
// block, so the winning computation of a re-leased block is
// identifiable); Deadline is advisory for the replica — the
// coordinator's own watchdog is the authoritative expiry, after which
// the span's incomplete blocks are re-leased and late results
// deduplicate harmlessly.
type Lease struct {
	// Key identifies the plan; replicas compile it locally (PlanSource).
	Key string
	// Seq is the grant sequence number.
	Seq uint64
	// Blocks is the leased block span.
	Blocks BlockRange
	// BlockSize is the plan-wide points-per-block quantum.
	BlockSize int
	// PlanPoints is the plan's total point count — a cheap integrity
	// check that both sides compiled the same space.
	PlanPoints int
	// Mode selects point streaming or per-block front reduction.
	Mode Mode
	// Objectives are the front objectives (ModeFront only).
	Objectives []Objective
	// Deadline is the advisory lease expiry instant.
	Deadline time.Time
}

// BlockResult is one completed block streamed back to the coordinator:
// the block's points (all of them in ModePoints, the front survivors in
// ModeFront) with each point's mixed-radix output slot in the parallel
// Slots array. A Gray-walked block covers a scattered-but-deterministic
// slot set, so slots are always explicit.
type BlockResult struct {
	// Seq echoes the executing lease's sequence number.
	Seq uint64
	// Block is the completed block id.
	Block int
	// Slots are the points' output slots (ascending within a block).
	Slots []int
	// Points are the evaluated points, parallel to Slots; Nodes slices
	// are owned by the result (deep-copied from the walk's scratch).
	Points []explore.Point
}

// Transport carries leases to one replica endpoint and streams its
// per-block results back. Execute runs one lease to completion,
// invoking emit once per completed block (from a single goroutine, in
// any block order); it returns nil when every block of the span was
// emitted, or the error that stopped it. Implementations must honor
// ctx cancellation between blocks — the coordinator cancels the
// context of expired leases and of completed runs.
type Transport interface {
	Execute(ctx context.Context, lease Lease, emit func(BlockResult) error) error
}

// DrainingTransport is optionally implemented by transports that learn
// (from liveness pongs or refused leases) that their replica is in
// graceful drain. The coordinator stops granting leases to a draining
// transport instead of paying one refused round-trip per attempt.
type DrainingTransport interface {
	Draining() bool
}

// Typed failure classes of the shard layer.
var (
	// ErrPlanUnknown reports a replica that cannot resolve a lease's
	// plan key (catalog skew between coordinator and replica).
	ErrPlanUnknown = errors.New("shard: plan key not in the replica catalog")
	// ErrReplicaDown reports a permanently failed replica; the
	// coordinator retires it immediately instead of retrying.
	ErrReplicaDown = errors.New("shard: replica down")
	// ErrLeaseMismatch reports a lease whose geometry (point count,
	// block size) disagrees with the replica's locally compiled plan.
	ErrLeaseMismatch = errors.New("shard: lease geometry does not match the compiled plan")
	// ErrBadResult reports a structurally malformed block result
	// (wrong point count, out-of-range slots); the delivering lease
	// fails and the block is re-leased.
	ErrBadResult = errors.New("shard: malformed block result")
	// ErrAuthFailed reports a replica that rejected the coordinator's
	// shared-secret credentials — a configuration failure (distinct
	// from the db-skew key mismatch of ErrPlanUnknown) that retries
	// cannot heal, so the coordinator retires the transport for the run.
	ErrAuthFailed = errors.New("shard: replica rejected credentials")
)

// ExhaustedError is returned (only under Config.DisableFallback) when
// every replica was lost or retired before the sweep completed.
type ExhaustedError struct {
	// Remaining is the number of blocks never completed.
	Remaining int
	// ReplicasLost is the number of replicas retired during the run.
	ReplicasLost int
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("shard: %d blocks unassigned after losing %d replicas (local fallback disabled)",
		e.Remaining, e.ReplicasLost)
}

// blockSpan returns the point span [lo, hi) of block b in a plan of
// `points` points at the given block size.
func blockSpan(b, blockSize, points int) (int, int) {
	lo := b * blockSize
	hi := lo + blockSize
	if hi > points {
		hi = points
	}
	return lo, hi
}

// blockCount returns the number of blocks covering `points` points.
func blockCount(points, blockSize int) int {
	return (points + blockSize - 1) / blockSize
}

// ComputeBlock evaluates one block of the plan on the calling
// goroutine: the shared execution seam of replicas and the
// coordinator's local fallback, so every path produces byte-identical
// BlockResults. In ModeFront the block's points are folded through a
// skyline front over the given objectives and only the survivors are
// returned, sorted by slot.
func ComputeBlock(plan *explore.CompiledPlan, mode Mode, objectives []explore.Metric, block, blockSize int) (BlockResult, error) {
	return computeBlock(context.Background(), plan, mode, objectives, block, blockSize)
}

func computeBlock(ctx context.Context, plan *explore.CompiledPlan, mode Mode, objectives []explore.Metric, block, blockSize int) (BlockResult, error) {
	lo, hi := blockSpan(block, blockSize, plan.Combos())
	res := BlockResult{Block: block}
	switch mode {
	case ModePoints:
		res.Slots = make([]int, 0, hi-lo)
		res.Points = make([]explore.Point, 0, hi-lo)
		err := plan.WalkRange(ctx, lo, hi, func(idx int, pt *explore.Point) error {
			cp := *pt
			cp.Nodes = append([]int(nil), pt.Nodes...)
			res.Slots = append(res.Slots, idx)
			res.Points = append(res.Points, cp)
			return nil
		})
		if err != nil {
			return BlockResult{}, err
		}
	case ModeFront:
		if len(objectives) == 0 {
			return BlockResult{}, fmt.Errorf("shard: ModeFront block with no objectives")
		}
		fold := newFrontFold(len(objectives))
		err := plan.WalkRange(ctx, lo, hi, func(idx int, pt *explore.Point) error {
			fold.add(idx, pt, objectives)
			return nil
		})
		if err != nil {
			return BlockResult{}, err
		}
		res.Slots, res.Points = fold.sorted()
	default:
		return BlockResult{}, fmt.Errorf("shard: unknown mode %d", mode)
	}
	return res, nil
}

package explore

import (
	"math/rand"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// The plan key must be a pure content fingerprint: identical inputs
// agree across independent derivations, and any input a compiled plan
// depends on — system shape, node list, cost table, database parameters
// — perturbs it.
func TestPlanKeyStableAndSensitive(t *testing.T) {
	db := tech.Default()
	rng := rand.New(rand.NewSource(11))
	sys := testcases.Random(rng, db)
	nodes := []int{7, 10, 14}
	cp := cost.DefaultParams()

	key := func(s *core.System, d *tech.DB, ns []int, c cost.Params) string {
		t.Helper()
		k, err := PlanKey(s, d, ns, c)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	base := key(sys, db, nodes, cp)
	if again := key(sys, db, nodes, cp); again != base {
		t.Fatalf("same inputs, different keys: %s vs %s", base, again)
	}

	// System perturbation: one chiplet's transistor budget.
	mut := *sys
	mut.Chiplets = append([]core.Chiplet(nil), sys.Chiplets...)
	mut.Chiplets[0].Transistors *= 1.01
	if key(&mut, db, nodes, cp) == base {
		t.Error("chiplet perturbation did not change the key")
	}

	// Node-list perturbation: order matters (it is the sweep's radix
	// assignment, not a set).
	if key(sys, db, []int{10, 7, 14}, cp) == base {
		t.Error("node-order perturbation did not change the key")
	}

	// Cost-table perturbation.
	cp2 := cost.DefaultParams()
	cp2.BondUSDPerChiplet += 0.5
	if key(sys, db, nodes, cp2) == base {
		t.Error("cost perturbation did not change the key")
	}

	// Database version skew: clone with one defect density nudged.
	db2, err := db.Clone(func(n *tech.Node) {
		if n.Nm == 7 {
			n.DefectDensity *= 1.1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if key(sys, db2, nodes, cp) == base {
		t.Error("database perturbation did not change the key")
	}
	// An untouched clone is the same version: same key.
	db3, err := db.Clone(nil)
	if err != nil {
		t.Fatal(err)
	}
	if key(sys, db3, nodes, cp) != base {
		t.Error("identical database clone changed the key")
	}
}

// The param and disaggregate keys share PlanKey's contract — stable
// across derivations, sensitive to system and database content — and
// the three families must never collide with each other (distinct
// prefixes, since a param plan and a disaggregation of the same system
// hash the same inputs).
func TestParamAndDisaggregateKeys(t *testing.T) {
	db := tech.Default()
	rng := rand.New(rand.NewSource(12))
	sys := testcases.Random(rng, db)

	pk, err := ParamKey(sys, db)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := DisaggregateKey(sys, db)
	if err != nil {
		t.Fatal(err)
	}
	if pk2, _ := ParamKey(sys, db); pk2 != pk {
		t.Fatalf("ParamKey unstable: %s vs %s", pk, pk2)
	}
	if dk2, _ := DisaggregateKey(sys, db); dk2 != dk {
		t.Fatalf("DisaggregateKey unstable: %s vs %s", dk, dk2)
	}
	if pk == dk {
		t.Fatalf("param and disaggregate keys collide: %s", pk)
	}

	mut := *sys
	mut.Chiplets = append([]core.Chiplet(nil), sys.Chiplets...)
	mut.Chiplets[0].Transistors *= 1.01
	if mk, _ := ParamKey(&mut, db); mk == pk {
		t.Error("system perturbation did not change ParamKey")
	}
	if mk, _ := DisaggregateKey(&mut, db); mk == dk {
		t.Error("system perturbation did not change DisaggregateKey")
	}

	db2, err := db.Clone(func(n *tech.Node) {
		if n.Nm == 7 {
			n.DefectDensity *= 1.1
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mk, _ := ParamKey(sys, db2); mk == pk {
		t.Error("database perturbation did not change ParamKey")
	}
	if mk, _ := DisaggregateKey(sys, db2); mk == dk {
		t.Error("database perturbation did not change DisaggregateKey")
	}
}

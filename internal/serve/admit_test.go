package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"ecochip/internal/shard"
	"ecochip/internal/tech"
)

// A saturated family sheds: with one stream slot held open by a
// blocked consumer, the next stream request queues out and fails with
// the typed overload error, while the held request still completes.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	srv := NewServer(db, Config{MaxInflight: 1, QueueTimeout: 10 * time.Millisecond})
	req := &SweepRequest{System: sys, Nodes: ga102Nodes, Objectives: []string{"embodied", "cost"}}

	unblock := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := srv.StreamFront(context.Background(), req, func(shard.FrontSnapshot) error {
			<-unblock
			return nil
		})
		done <- err
	}()

	// Wait for the stream to actually hold its slot (the first snapshot
	// blocks inside emit).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Admission.Streams.Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream request never occupied its admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := srv.StreamFront(context.Background(), req, func(shard.FrontSnapshot) error { return nil })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated stream = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("saturated stream error %T, want *OverloadError", err)
	}
	if oe.Family != "stream" || oe.Limit != 1 || oe.RetryAfter < time.Second {
		t.Errorf("overload error = %+v, want family stream, limit 1, retry >= 1s", oe)
	}

	// Families are independent: the sweep gate is untouched.
	if _, err := srv.Sweep(context.Background(), &SweepRequest{System: sys, Nodes: ga102Nodes}); err != nil {
		t.Fatalf("sweep during stream saturation: %v", err)
	}

	close(unblock)
	if err := <-done; err != nil {
		t.Fatalf("held stream: %v", err)
	}
	st := srv.Stats().Admission
	if st.Streams.Shed != 1 || st.Streams.Admitted != 1 {
		t.Errorf("stream gate stats = %+v, want 1 admitted / 1 shed", st.Streams)
	}
	if st.Streams.Inflight != 0 {
		t.Errorf("%d in flight after completion, want 0", st.Streams.Inflight)
	}
}

// A caller that gives up while queued gets its own context error, not
// an overload verdict — and is not counted as shed.
func TestAdmissionQueuedCallerCancel(t *testing.T) {
	g := newGate("sweep", 1, time.Hour)
	release, err := g.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := g.acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled queue wait = %v, want DeadlineExceeded", err)
	}
	if st := g.stats(); st.Shed != 0 {
		t.Errorf("stats = %+v, want no shed for a caller-side cancel", st)
	}
}

// Negative MaxInflight disables admission entirely.
func TestAdmissionDisabled(t *testing.T) {
	g := newGate("sweep", -1, 0)
	for i := 0; i < 200; i++ {
		release, err := g.acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer release()
	}
	if st := g.stats(); st.Shed != 0 || st.Admitted != 0 {
		t.Errorf("disabled gate stats = %+v, want all zero", st)
	}
}

func TestRetryAfterRounding(t *testing.T) {
	for _, tc := range []struct {
		timeout time.Duration
		want    time.Duration
	}{
		{0, time.Second},
		{100 * time.Millisecond, time.Second},
		{time.Second, time.Second},
		{1500 * time.Millisecond, 2 * time.Second},
	} {
		if got := retryAfter(tc.timeout); got != tc.want {
			t.Errorf("retryAfter(%v) = %v, want %v", tc.timeout, got, tc.want)
		}
	}
}

// The HTTP mapping: a shed request is a 429 carrying Retry-After in
// whole seconds, and saturation of one family leaves the others
// serving.
func TestHandlerOverloadIs429(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	srv := NewServer(db, Config{MaxInflight: 1, QueueTimeout: 5 * time.Millisecond})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	// Saturate the sweep family directly (white-box: same gate the
	// handler consults) so the HTTP arrival finds no slot.
	release, err := srv.admit.sweep.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", &SweepRequest{System: sys, Nodes: ga102Nodes})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// The what-if family is unaffected (its own gate): a validation
	// error, not a shed.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/whatif", &WhatIfRequest{System: sys})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("what-if during sweep saturation = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	release()
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/sweep", &SweepRequest{System: sys, Nodes: ga102Nodes})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release sweep status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	if st := srv.Stats().Admission; st.Sweeps.Shed != 1 {
		t.Errorf("sweep gate stats = %+v, want exactly the one shed", st.Sweeps)
	}
}

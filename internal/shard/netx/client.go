package netx

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/shard"
	"ecochip/internal/tech"
	"ecochip/internal/wire"

	"encoding/json"
)

// Registry holds the shippable content of registered sweeps, keyed by
// plan content key: what a Client sends a replica (once per connection
// per plan) so the replica can compile the identical plan locally.
type Registry struct {
	mu sync.RWMutex
	m  map[string]wire.Registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]wire.Registration)}
}

// AddSweep records a sweep's shippable content and returns its plan
// content key — the same key Catalog.RegisterSweep derives, so the
// coordinator side registers with its local catalog and the registry
// in lockstep.
func (r *Registry) AddSweep(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (string, error) {
	key, err := explore.PlanKey(base, db, nodes, cp)
	if err != nil {
		return "", err
	}
	sysJSON, err := json.Marshal(base)
	if err != nil {
		return "", fmt.Errorf("netx: encode system: %w", err)
	}
	cpJSON, err := json.Marshal(cp)
	if err != nil {
		return "", fmt.Errorf("netx: encode cost params: %w", err)
	}
	r.mu.Lock()
	r.m[key] = wire.Registration{
		Key:    key,
		System: sysJSON,
		Nodes:  append([]int(nil), nodes...),
		Cost:   cpJSON,
	}
	r.mu.Unlock()
	return key, nil
}

func (r *Registry) lookup(key string) (wire.Registration, bool) {
	r.mu.RLock()
	reg, ok := r.m[key]
	r.mu.RUnlock()
	return reg, ok
}

// Client is a shard.Transport over one persistent connection to a
// replica server. Execute is safe for concurrent use: concurrent
// leases multiplex over the single connection by lease id, which is
// the pipelining idiom — hand the same *Client to the coordinator
// multiple times and that many leases stay in flight on one socket.
//
// A broken connection fails the leases in flight on it (the
// coordinator's backoff and re-lease machinery owns retries) and the
// next Execute dials afresh.
type Client struct {
	addr string
	reg  *Registry
	opts Options

	mu     sync.Mutex
	cc     *clientConn
	nextID atomic.Uint64

	// draining mirrors the replica's last announced drain state (from a
	// liveness pong flag or a refused lease); the coordinator reads it
	// through shard.DrainingTransport and stops granting leases here.
	draining atomic.Bool

	dials, reconnects   atomic.Uint64
	framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut   atomic.Uint64
	maxPipeline         atomic.Uint64
}

var (
	_ shard.Transport         = (*Client)(nil)
	_ shard.CountedTransport  = (*Client)(nil)
	_ shard.DrainingTransport = (*Client)(nil)
)

// Draining reports whether the replica announced a graceful drain on
// the current connection. A successful redial clears it — a restarted
// replica is a fresh one.
func (c *Client) Draining() bool { return c.draining.Load() }

// DialTransport returns a Client for addr. Dialing is lazy — the first
// Execute connects — so construction succeeds even while the replica
// is still coming up, and the coordinator's backoff paces the attempts.
func DialTransport(addr string, reg *Registry, opts Options) *Client {
	return &Client{addr: addr, reg: reg, opts: opts.withDefaults()}
}

// TransportCounters snapshots the client-side wire counters.
func (c *Client) TransportCounters() shard.TransportCounters {
	return shard.TransportCounters{
		Dials:       c.dials.Load(),
		Reconnects:  c.reconnects.Load(),
		FramesOut:   c.framesOut.Load(),
		FramesIn:    c.framesIn.Load(),
		BytesOut:    c.bytesOut.Load(),
		BytesIn:     c.bytesIn.Load(),
		MaxPipeline: c.maxPipeline.Load(),
	}
}

// Close tears down the current connection, failing in-flight leases.
func (c *Client) Close() error {
	c.mu.Lock()
	cc := c.cc
	c.mu.Unlock()
	if cc != nil {
		cc.fail(fmt.Errorf("netx: client closed"))
	}
	return nil
}

// resultPool recycles decode destinations for block-result frames.
// The coordinator's sinks copy Point values out synchronously during
// emit, retaining only each point's Nodes slice — so a result can go
// back in the pool once emit returns, provided the Nodes references
// are scrubbed (putResult does; the decoder then carves fresh node
// arenas instead of reusing retained memory).
var resultPool = sync.Pool{New: func() any { return new(shard.BlockResult) }}

func putResult(r *shard.BlockResult) {
	for i := range r.Points {
		r.Points[i].Nodes = nil
	}
	resultPool.Put(r)
}

// event is one routed frame outcome for a pending request.
type event struct {
	m     wire.Msg
	res   *shard.BlockResult // MsgBlockResult
	code  wire.ErrCode       // MsgLeaseError
	msg   string             // MsgLeaseError
	key   string             // MsgRegistered
	flags uint64             // MsgPong
}

// pend is one in-flight request (lease or registration) awaiting
// frames from the read loop.
type pend struct {
	ch       chan event
	gone     chan struct{} // closed when the waiter abandons the id
	deadline time.Time
}

// clientConn is one live connection: a locked frame writer, the id→pend
// routing table, and a read loop that owns the socket's read half.
type clientConn struct {
	cl *Client
	c  net.Conn
	w  *wire.Writer

	wmu sync.Mutex

	mu         sync.Mutex
	pending    map[uint64]*pend
	registered map[string]bool
	err        error

	done chan struct{} // closed when the read loop exits
}

// ensure returns the live connection, dialing and handshaking a new one
// if needed. Serialized under c.mu so concurrent Executes share one
// dial.
func (c *Client) ensure(ctx context.Context) (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cc != nil {
		select {
		case <-c.cc.done:
			c.cc = nil // broken; fall through to redial
		default:
			return c.cc, nil
		}
	}
	dctx, cancel := context.WithTimeout(ctx, c.opts.DialTimeout)
	defer cancel()
	var d net.Dialer
	nc, err := d.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("netx: dial %s: %w", c.addr, err)
	}
	conn := countConn{Conn: nc, in: &c.bytesIn, out: &c.bytesOut}
	cc := &clientConn{
		cl:         c,
		c:          conn,
		w:          wire.NewWriter(conn),
		pending:    make(map[uint64]*pend),
		registered: make(map[string]bool),
		done:       make(chan struct{}),
	}
	// Handshake synchronously before the read loop exists: one hello
	// out, a version-matched hello back.
	hd := time.Now().Add(c.opts.Slack)
	conn.SetWriteDeadline(hd)
	if err := cc.w.WriteFrame(wire.MsgHello, 0, wire.AppendUvarint(nil, wire.ProtoVersion)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("netx: handshake %s: %w", c.addr, err)
	}
	c.framesOut.Add(1)
	conn.SetReadDeadline(hd)
	r := wire.NewReader(conn, c.opts.MaxFrame)
	m, _, p, err := r.ReadFrame()
	if err != nil || m != wire.MsgHello {
		nc.Close()
		return nil, fmt.Errorf("netx: handshake %s: bad hello (%v)", c.addr, err)
	}
	if v, err := wire.DecodeUvarint(p); err != nil || v != wire.ProtoVersion {
		nc.Close()
		return nil, fmt.Errorf("netx: handshake %s: protocol version mismatch (%d vs %d)", c.addr, v, wire.ProtoVersion)
	}
	c.framesIn.Add(1)
	if c.dials.Add(1) > 1 {
		c.reconnects.Add(1)
	}
	c.draining.Store(false)
	c.cc = cc
	go cc.readLoop(r)
	if c.opts.IdleProbe > 0 {
		go cc.probeLoop(c.opts.IdleProbe)
	}
	return cc, nil
}

// probeLoop pings the connection whenever it has sat idle for a probe
// interval: lease traffic is its own liveness signal, so probes only
// fire when nothing is pending. A failed or silent probe declares the
// connection dead (the read-deadline machinery turns a missing pong
// into a read error); a pong refreshes the replica's drain state.
func (cc *clientConn) probeLoop(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-cc.done:
			return
		case <-tick.C:
		}
		cc.mu.Lock()
		idle := len(cc.pending) == 0
		cc.mu.Unlock()
		if !idle {
			continue
		}
		if err := cc.ping(); err != nil {
			cc.fail(fmt.Errorf("netx: %s: liveness probe: %w", cc.cl.addr, err))
			return
		}
	}
}

// ping sends one MsgPing and waits for the pong, folding its drain
// flag into the client's state.
func (cc *clientConn) ping() error {
	id := cc.cl.nextID.Add(1)
	deadline := time.Now().Add(cc.cl.opts.Slack)
	pd := &pend{ch: make(chan event, 1), gone: make(chan struct{}), deadline: deadline}
	cc.add(id, pd)
	defer func() {
		cc.remove(id)
		close(pd.gone)
	}()
	if err := cc.write(wire.MsgPing, id, nil, deadline); err != nil {
		return err
	}
	select {
	case <-cc.done:
		return cc.cause()
	case ev := <-pd.ch:
		if ev.m != wire.MsgPong {
			return fmt.Errorf("unexpected probe reply %d", ev.m)
		}
		cc.cl.draining.Store(ev.flags&wire.PongDraining != 0)
		return nil
	}
}

// fail tears the connection down once: records the cause, closes the
// socket (unblocking the read loop), and wakes every pending waiter
// via done.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err == nil {
		cc.err = err
		cc.c.Close()
		close(cc.done)
	}
	cc.mu.Unlock()
	cc.cl.mu.Lock()
	if cc.cl.cc == cc {
		cc.cl.cc = nil
	}
	cc.cl.mu.Unlock()
}

func (cc *clientConn) cause() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err
}

// add installs a pend and reports the pipeline depth it created. It
// re-arms the socket read deadline so a read loop already parked in a
// deadline-free read (nothing was pending when it blocked) becomes
// bounded by the new request rather than waiting forever on a
// silently-dead connection.
func (cc *clientConn) add(id uint64, p *pend) int {
	cc.mu.Lock()
	cc.pending[id] = p
	depth := len(cc.pending)
	cc.armReadDeadlineLocked()
	cc.mu.Unlock()
	for {
		max := cc.cl.maxPipeline.Load()
		if uint64(depth) <= max || cc.cl.maxPipeline.CompareAndSwap(max, uint64(depth)) {
			break
		}
	}
	return depth
}

func (cc *clientConn) remove(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	// Clear or shorten the parked read's bound so a deadline that only
	// the departed pend justified cannot time out an idle connection.
	cc.armReadDeadlineLocked()
	cc.mu.Unlock()
}

// armReadDeadlineLocked derives the socket read deadline from the
// outstanding requests — the latest pend deadline plus slack — and
// applies it. With nothing pending the read blocks without a deadline:
// frames only ever arrive in response to our requests, so silence is
// then legitimate. Caller holds cc.mu; computing and setting under the
// lock keeps a stale derivation from overwriting a fresher one.
func (cc *clientConn) armReadDeadlineLocked() {
	var max time.Time
	for _, p := range cc.pending {
		if p.deadline.After(max) {
			max = p.deadline
		}
	}
	if !max.IsZero() {
		max = max.Add(cc.cl.opts.Slack)
	}
	cc.c.SetReadDeadline(max)
}

// readLoop owns the read half: it routes each frame to the pend that
// asked for it and declares the connection dead when a read fails —
// including a deadline miss, the transport analogue of lease expiry.
func (cc *clientConn) readLoop(r *wire.Reader) {
	// Defense in depth behind wire's no-panic decode contract: a panic
	// here must cost one connection (failing its in-flight leases into
	// the coordinator's retry machinery), never the whole process.
	defer func() {
		if rec := recover(); rec != nil {
			cc.fail(fmt.Errorf("netx: %s: read loop panic: %v", cc.cl.addr, rec))
		}
	}()
	for {
		cc.mu.Lock()
		cc.armReadDeadlineLocked()
		cc.mu.Unlock()
		m, id, p, err := r.ReadFrame()
		if err != nil {
			cc.fail(fmt.Errorf("netx: %s: %w", cc.cl.addr, err))
			return
		}
		cc.cl.framesIn.Add(1)
		ev := event{m: m}
		switch m {
		case wire.MsgBlockResult:
			// Decode into a pooled result; Execute returns it to the
			// pool after the coordinator's sink has copied it out.
			ev.res = resultPool.Get().(*shard.BlockResult)
			if err := wire.DecodeBlockResult(p, ev.res); err != nil {
				cc.fail(fmt.Errorf("netx: %s: corrupt block result: %w", cc.cl.addr, err))
				return
			}
		case wire.MsgLeaseDone:
		case wire.MsgLeaseError:
			code, msg, err := wire.DecodeError(p)
			if err != nil {
				cc.fail(fmt.Errorf("netx: %s: corrupt error frame: %w", cc.cl.addr, err))
				return
			}
			ev.code, ev.msg = code, msg
		case wire.MsgRegistered:
			key, err := wire.DecodeString(p)
			if err != nil {
				cc.fail(fmt.Errorf("netx: %s: corrupt registration echo: %w", cc.cl.addr, err))
				return
			}
			ev.key = key
		case wire.MsgPong:
			flags, err := wire.DecodePong(p)
			if err != nil {
				cc.fail(fmt.Errorf("netx: %s: corrupt pong: %w", cc.cl.addr, err))
				return
			}
			ev.flags = flags
		default:
			cc.fail(fmt.Errorf("netx: %s: unexpected frame type %d", cc.cl.addr, m))
			return
		}
		cc.mu.Lock()
		pd := cc.pending[id]
		cc.mu.Unlock()
		if pd == nil {
			continue // late frame for an abandoned lease; drop
		}
		select {
		case pd.ch <- ev:
		case <-pd.gone:
		}
	}
}

// write emits one frame under the write lock.
func (cc *clientConn) write(m wire.Msg, id uint64, payload []byte, deadline time.Time) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.c.SetWriteDeadline(deadline)
	if err := cc.w.WriteFrame(m, id, payload); err != nil {
		return err
	}
	cc.cl.framesOut.Add(1)
	return nil
}

// register ships the plan content for key if this connection has not
// yet, and verifies the replica derives the identical content key —
// the db-skew tripwire.
func (c *Client) register(ctx context.Context, cc *clientConn, key string) error {
	cc.mu.Lock()
	done := cc.registered[key]
	cc.mu.Unlock()
	if done {
		return nil
	}
	reg, ok := c.reg.lookup(key)
	if !ok {
		return fmt.Errorf("netx: no registration for plan %s: %w", key, shard.ErrPlanUnknown)
	}
	// The token rides the registration frame as connection metadata; it
	// is injected here (not stored in the registry) so one registry can
	// serve clients with different credentials.
	reg.Token = c.opts.AuthToken
	id := c.nextID.Add(1)
	deadline := time.Now().Add(c.opts.Slack)
	pd := &pend{ch: make(chan event, 1), gone: make(chan struct{}), deadline: deadline}
	cc.add(id, pd)
	defer func() {
		cc.remove(id)
		close(pd.gone)
	}()
	buf := wire.GetBuffer()
	*buf = wire.AppendRegistration((*buf)[:0], &reg)
	err := cc.write(wire.MsgRegister, id, *buf, deadline)
	wire.PutBuffer(buf)
	if err != nil {
		cc.fail(err)
		return fmt.Errorf("netx: register on %s: %w", c.addr, err)
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-cc.done:
		return fmt.Errorf("netx: register on %s: %w", c.addr, cc.cause())
	case ev := <-pd.ch:
		switch ev.m {
		case wire.MsgRegistered:
			if ev.key != key {
				return fmt.Errorf("netx: replica %s derived key %s for plan %s (catalog/db skew): %w",
					c.addr, ev.key, key, shard.ErrPlanUnknown)
			}
			cc.mu.Lock()
			cc.registered[key] = true
			cc.mu.Unlock()
			return nil
		case wire.MsgLeaseError:
			if ev.code == wire.CodeShuttingDown {
				c.draining.Store(true)
			}
			return remoteError(c.addr, ev.code, ev.msg)
		default:
			return fmt.Errorf("netx: register on %s: unexpected reply %d", c.addr, ev.m)
		}
	}
}

// Execute implements shard.Transport: connect if needed, ship the plan
// content once per connection, stream the lease's block results to
// emit, and map remote failures back to the shard layer's typed
// errors so the coordinator's retry/retire policy applies unchanged.
func (c *Client) Execute(ctx context.Context, lease shard.Lease, emit func(shard.BlockResult) error) error {
	cc, err := c.ensure(ctx)
	if err != nil {
		return err
	}
	if err := c.register(ctx, cc, lease.Key); err != nil {
		return err
	}

	id := c.nextID.Add(1)
	deadline := lease.Deadline
	if deadline.IsZero() {
		deadline = time.Now().Add(c.opts.Slack)
	}
	// The buffer covers a typical lease's whole burst (LeaseBlocks
	// block frames + done) so the read loop enqueues it without
	// blocking on the Execute goroutine — one wakeup per burst, not
	// per frame, which matters on small machines.
	pd := &pend{ch: make(chan event, 16), gone: make(chan struct{}), deadline: deadline}
	cc.add(id, pd)
	defer func() {
		cc.remove(id)
		close(pd.gone)
	}()

	buf := wire.GetBuffer()
	*buf = wire.AppendLease((*buf)[:0], &lease)
	err = cc.write(wire.MsgLease, id, *buf, deadline.Add(c.opts.Slack))
	wire.PutBuffer(buf)
	if err != nil {
		cc.fail(err)
		return fmt.Errorf("netx: send lease to %s: %w", c.addr, err)
	}

	cancelRemote := func() {
		// Best-effort: a lost cancel only costs the replica wasted
		// work; the coordinator dedups late results by block id.
		cc.write(wire.MsgCancel, id, nil, time.Now().Add(c.opts.Slack))
	}
	for {
		select {
		case <-ctx.Done():
			cancelRemote()
			return ctx.Err()
		case <-cc.done:
			return fmt.Errorf("netx: lease on %s: %w", c.addr, cc.cause())
		case ev := <-pd.ch:
			switch ev.m {
			case wire.MsgBlockResult:
				err := emit(*ev.res)
				putResult(ev.res)
				if err != nil {
					cancelRemote()
					return err
				}
			case wire.MsgLeaseDone:
				return nil
			case wire.MsgLeaseError:
				if ev.code == wire.CodeShuttingDown {
					c.draining.Store(true)
				}
				return remoteError(c.addr, ev.code, ev.msg)
			default:
				cancelRemote()
				return fmt.Errorf("netx: lease on %s: unexpected reply %d", c.addr, ev.m)
			}
		}
	}
}

// remoteError maps a wire error code back onto the shard layer's typed
// errors: plan-unknown and lease-mismatch keep their identities,
// replica-down marks the transport retirable, and everything else is a
// transient error the coordinator retries with backoff.
func remoteError(addr string, code wire.ErrCode, msg string) error {
	switch code {
	case wire.CodePlanUnknown:
		return fmt.Errorf("netx: %s: %s: %w", addr, msg, shard.ErrPlanUnknown)
	case wire.CodeLeaseMismatch:
		return fmt.Errorf("netx: %s: %s: %w", addr, msg, shard.ErrLeaseMismatch)
	case wire.CodeReplicaDown:
		return fmt.Errorf("netx: %s: %s: %w", addr, msg, shard.ErrReplicaDown)
	case wire.CodeAuthFailed:
		return fmt.Errorf("netx: %s: %s: %w", addr, msg, shard.ErrAuthFailed)
	case wire.CodeShuttingDown:
		return fmt.Errorf("netx: %s draining: %s", addr, msg)
	default:
		return fmt.Errorf("netx: %s: %s", addr, msg)
	}
}

package shard

import "fmt"

// TransportCounters is the wire-level counter snapshot of a networked
// transport: connection churn, frame and byte traffic, and the deepest
// lease pipeline observed on one socket. The loopback Replica reports
// nothing (there is no wire); Coordinator.Stats sums these across its
// counted transports so -progress can show what the network actually
// cost.
type TransportCounters struct {
	// Dials counts successful connection establishments; Reconnects the
	// subset that replaced a broken connection (Dials - first-connects).
	Dials, Reconnects uint64
	// FramesOut/FramesIn and BytesOut/BytesIn are the frame and byte
	// traffic from this end's perspective.
	FramesOut, FramesIn uint64
	// BytesOut, BytesIn count framed bytes (headers included).
	BytesOut, BytesIn uint64
	// MaxPipeline is the most leases ever in flight concurrently over
	// one connection.
	MaxPipeline uint64
}

// add folds o into t (MaxPipeline folds by max, everything else sums).
func (t *TransportCounters) add(o TransportCounters) {
	t.Dials += o.Dials
	t.Reconnects += o.Reconnects
	t.FramesOut += o.FramesOut
	t.FramesIn += o.FramesIn
	t.BytesOut += o.BytesOut
	t.BytesIn += o.BytesIn
	if o.MaxPipeline > t.MaxPipeline {
		t.MaxPipeline = o.MaxPipeline
	}
}

// IsZero reports a counter set with no activity at all.
func (t TransportCounters) IsZero() bool { return t == TransportCounters{} }

func (t TransportCounters) String() string {
	return fmt.Sprintf("wire: %d dials (%d reconnects), %d frames / %d B out, %d frames / %d B in, max pipeline %d",
		t.Dials, t.Reconnects, t.FramesOut, t.BytesOut, t.FramesIn, t.BytesIn, t.MaxPipeline)
}

// CountedTransport is the optional Transport extension a networked
// implementation provides; Coordinator.Stats folds the counters of
// every distinct counted transport it drives (the same transport value
// passed twice — the lease-pipelining idiom — is counted once).
type CountedTransport interface {
	TransportCounters() TransportCounters
}

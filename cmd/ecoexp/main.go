// Command ecoexp regenerates the data behind every figure of the
// ECO-CHIP paper's evaluation (the Go equivalent of the artifact's
// run_all.sh):
//
//	ecoexp                  # print every experiment table
//	ecoexp -exp fig7a       # one experiment
//	ecoexp -csv results/    # also write one CSV per experiment
//
// Analysis-backed experiments (ext-tornado, ext-uncertainty) run on
// compiled parameter plans; -uncompiled forces their per-evaluation
// reference path, and -progress reports evaluation ticks and
// compiled-plan statistics to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ecochip/internal/experiments"
	"ecochip/internal/report"
	"ecochip/internal/tech"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment id (default: all)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	list := flag.Bool("list", false, "list experiment ids and exit")
	uncompiled := flag.Bool("uncompiled", false, "analysis experiments: force the per-evaluation reference path instead of compiled parameter plans")
	progress := flag.Bool("progress", false, "print analysis progress and compiled-plan statistics to stderr")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opt := experiments.Options{Uncompiled: *uncompiled}
	if *progress {
		opt.StatsTo = os.Stderr
		opt.Progress = func(done, total int) {
			if done%100 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d evaluations", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	if err := run(*exp, *csvDir, opt, os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes one or all experiments, printing tables to w and
// optionally writing CSVs into csvDir. A zero Options runs every
// experiment exactly as experiments.Run would; analysis knobs
// (uncompiled path, progress) are honored by the experiments that
// support them, which also forces the run-all fan-out serial so the
// progress stream stays readable.
func run(exp, csvDir string, opt experiments.Options, w io.Writer) error {
	db := tech.Default()
	var tables []*report.Table
	if exp != "" {
		t, err := experiments.RunWith(exp, db, opt)
		if err != nil {
			return err
		}
		tables = []*report.Table{t}
	} else if opt.Uncompiled || opt.Progress != nil || opt.StatsTo != nil {
		for _, id := range experiments.IDs() {
			t, err := experiments.RunWith(id, db, opt)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			tables = append(tables, t)
		}
	} else {
		var err error
		tables, err = experiments.RunAll(db)
		if err != nil {
			return err
		}
	}

	for _, t := range tables {
		if err := t.Fprint(w); err != nil {
			return err
		}
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		for _, t := range tables {
			f, err := os.Create(filepath.Join(csvDir, t.Title+".csv"))
			if err != nil {
				return err
			}
			err = t.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(tables), csvDir)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecoexp:", err)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ecochip
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNodeSweepSerial        	      20	    622767 ns/op	  534032 B/op	    5009 allocs/op
BenchmarkNodeSweepParallel-8    	      20	    367330 ns/op	  316616 B/op	    2779 allocs/op
BenchmarkNodeSweepCompiled-8    	      20	     39974 ns/op	   14675 B/op	     159 allocs/op
BenchmarkNodeSweepCompiled-8    	      20	     40111 ns/op	   14680 B/op	     159 allocs/op
BenchmarkNoMem-4                	     100	      1234 ns/op
PASS
ok  	ecochip	0.026s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "ecochip" {
		t.Errorf("header mismatch: %+v", rep)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkNodeSweepSerial" || b.Procs != 1 || b.Runs != 20 || b.NsPerOp != 622767 {
		t.Errorf("serial line mismatch: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 534032 || b.AllocsPerOp == nil || *b.AllocsPerOp != 5009 {
		t.Errorf("benchmem fields mismatch: %+v", b)
	}
	p := rep.Benchmarks[1]
	if p.Name != "BenchmarkNodeSweepParallel" || p.Procs != 8 {
		t.Errorf("procs suffix not split: %+v", p)
	}
	// -count repetitions stay separate entries.
	if rep.Benchmarks[2].Name != rep.Benchmarks[3].Name {
		t.Error("repeated runs should keep the same name")
	}
	nm := rep.Benchmarks[4]
	if nm.BytesPerOp != nil || nm.AllocsPerOp != nil {
		t.Errorf("line without -benchmem should omit memory fields: %+v", nm)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("input without benchmark lines should fail")
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX-y", "BenchmarkX-y", 1},
		{"Benchmark-Sub-16", "Benchmark-Sub", 16},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

func reportOf(entries ...Result) *Report { return &Report{Benchmarks: entries} }

func TestCompareGate(t *testing.T) {
	base := reportOf(
		Result{Name: "BenchmarkNodeSweepCompiled", Procs: 8, Runs: 100, NsPerOp: 1000},
		Result{Name: "BenchmarkNodeSweepCompiled", Procs: 8, Runs: 100, NsPerOp: 1100}, // -count repeat, min wins
		Result{Name: "BenchmarkNodeSweepParallel", Procs: 8, Runs: 100, NsPerOp: 5000},
		Result{Name: "BenchmarkOther", Procs: 8, Runs: 100, NsPerOp: 10},
	)
	fam := regexp.MustCompile("NodeSweep")

	// Within threshold: +15% on the min aggregate passes at 20%.
	head := reportOf(
		Result{Name: "BenchmarkNodeSweepCompiled", Procs: 8, Runs: 100, NsPerOp: 1150},
		Result{Name: "BenchmarkNodeSweepParallel", Procs: 8, Runs: 100, NsPerOp: 5100},
		Result{Name: "BenchmarkOther", Procs: 8, Runs: 100, NsPerOp: 1000}, // outside family: ignored
	)
	var out strings.Builder
	if code := compare(&out, base, head, fam, 0.20); code != 0 {
		t.Fatalf("within-threshold head failed the gate:\n%s", out.String())
	}

	// Beyond threshold: +30% fails.
	head = reportOf(
		Result{Name: "BenchmarkNodeSweepCompiled", Procs: 8, Runs: 100, NsPerOp: 1300},
		Result{Name: "BenchmarkNodeSweepParallel", Procs: 8, Runs: 100, NsPerOp: 5000},
	)
	out.Reset()
	if code := compare(&out, base, head, fam, 0.20); code != 1 {
		t.Fatalf("+30%% regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("gate output missing REGRESSION marker:\n%s", out.String())
	}

	// A family benchmark deleted from head must fail, not silently pass.
	head = reportOf(Result{Name: "BenchmarkNodeSweepCompiled", Procs: 8, Runs: 100, NsPerOp: 1000})
	out.Reset()
	if code := compare(&out, base, head, fam, 0.20); code != 1 {
		t.Fatalf("missing family benchmark passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("gate output missing MISSING marker:\n%s", out.String())
	}

	// Benchmarks new in head have no baseline and pass.
	head = reportOf(
		Result{Name: "BenchmarkNodeSweepCompiled", Procs: 8, Runs: 100, NsPerOp: 900},
		Result{Name: "BenchmarkNodeSweepParallel", Procs: 8, Runs: 100, NsPerOp: 4000},
		Result{Name: "BenchmarkNodeSweepWalkFront", Procs: 8, Runs: 100, NsPerOp: 1},
	)
	out.Reset()
	if code := compare(&out, base, head, fam, 0.20); code != 0 {
		t.Fatalf("new head benchmark failed the gate:\n%s", out.String())
	}

	// A family matching nothing in base is a vacuous gate and must fail.
	out.Reset()
	if code := compare(&out, base, head, regexp.MustCompile("NoSuchFamily"), 0.20); code != 1 {
		t.Fatalf("vacuous comparison passed the gate:\n%s", out.String())
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep *Report) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", reportOf(Result{Name: "BenchmarkNodeSweepCompiled", Procs: 8, Runs: 1, NsPerOp: 1000}))
	head := write("head.json", reportOf(Result{Name: "BenchmarkNodeSweepCompiled", Procs: 8, Runs: 1, NsPerOp: 1500}))

	var out strings.Builder
	code, err := runCompare([]string{"-threshold", "0.20", "-family", "NodeSweep", base, head}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("50%% regression returned code %d, want 1:\n%s", code, out.String())
	}
	if _, err := runCompare([]string{base}, &out); err == nil {
		t.Error("one-file usage should error")
	}
	if _, err := runCompare([]string{"-family", "(", base, head}, &out); err == nil {
		t.Error("bad family regexp should error")
	}
}

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ecochip/internal/tech"
)

func postJSON(t *testing.T, client *http.Client, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) *T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// The HTTP surface must round-trip every request family with the exact
// float bits of the direct Server calls.
func TestHandlerEndpoints(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	srv := NewServer(db, Config{StreamBlockSize: 4})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	sweepReq := &SweepRequest{System: sys, Nodes: ga102Nodes}
	want, err := srv.Sweep(context.Background(), sweepReq)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/sweep", sweepReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d", resp.StatusCode)
	}
	got := decodeBody[SweepResponse](t, resp)
	if got.Key != want.Key || got.Total != want.Total {
		t.Fatalf("sweep envelope = %+v, want %+v", got, want)
	}
	assertSamePoints(t, want.Points, got.Points, "HTTP sweep")

	// What-if swap over HTTP.
	whatIf := &WhatIfRequest{System: sys, Nodes: ga102Nodes, Swap: map[string]int{sys.Chiplets[0].Name: 10}}
	wantWI, err := srv.WhatIf(context.Background(), whatIf)
	if err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/whatif", whatIf)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif: status %d", resp.StatusCode)
	}
	gotWI := decodeBody[WhatIfResponse](t, resp)
	if gotWI.Source != "sweep" || gotWI.Point == nil || !samePoint(*wantWI.Point, *gotWI.Point) {
		t.Fatalf("whatif = %+v, want %+v", gotWI, wantWI)
	}

	// Perturbation what-if over HTTP.
	perturb := &WhatIfRequest{System: sys, VolumeScale: 2}
	wantP, err := srv.WhatIf(context.Background(), perturb)
	if err != nil {
		t.Fatal(err)
	}
	gotP := decodeBody[WhatIfResponse](t, postJSON(t, ts.Client(), ts.URL+"/v1/whatif", perturb))
	if gotP.Totals == nil ||
		math.Float64bits(gotP.Totals.MfgKg) != math.Float64bits(wantP.Totals.MfgKg) ||
		math.Float64bits(gotP.Totals.OperationalKg) != math.Float64bits(wantP.Totals.OperationalKg) {
		t.Fatalf("perturb = %+v, want %+v", gotP, wantP)
	}

	// Stats endpoint reflects the traffic.
	statsResp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decodeBody[Stats](t, statsResp)
	if stats.Sweeps.Builds != 1 || stats.Params.Builds != 1 {
		t.Fatalf("stats = %+v, want 1 sweep build / 1 param build", stats)
	}
}

// The stream endpoint must emit NDJSON snapshots and a terminal result
// whose front carries the barrier bits.
func TestHandlerStream(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	srv := NewServer(db, Config{StreamBlockSize: 4})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	req := &SweepRequest{System: sys, Nodes: ga102Nodes, Objectives: []string{"embodied", "cost"}}
	want, err := srv.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/sweep/stream", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	var snapshots int
	var result *SweepResponse
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		case line.Result != nil:
			result = line.Result
		case line.Snapshot != nil:
			snapshots++
			if result != nil {
				t.Fatal("snapshot after terminal result")
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if snapshots == 0 || result == nil {
		t.Fatalf("stream shape: %d snapshots, result %v", snapshots, result != nil)
	}
	assertSamePoints(t, want.Points, result.Points, "HTTP streamed front")
}

func TestHandlerErrors(t *testing.T) {
	db := tech.Default()
	srv := NewServer(db, Config{})
	ts := httptest.NewServer(Handler(srv))
	defer ts.Close()

	// Malformed body.
	resp, err := ts.Client().Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown field (DisallowUnknownFields).
	resp, err = ts.Client().Post(ts.URL+"/v1/whatif", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Validation failure surfaces as a 400 with an error body.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/whatif", &WhatIfRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty what-if: status %d", resp.StatusCode)
	}
	e := decodeBody[map[string]string](t, resp)
	if (*e)["error"] == "" {
		t.Fatal("error body missing")
	}

	// Wrong method.
	resp, err = ts.Client().Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sweep: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// Package floorplan implements the whitespace / system-area estimation
// algorithm of Section III-D(3) of the ECO-CHIP paper.
//
// The algorithm performs recursive bi-partitioning to build a slicing
// floorplan of the chiplets on the package substrate or interposer:
//
//  1. Chiplets are sorted in decreasing order of area and assigned one by
//     one to the partition with the lesser total area (area-balanced
//     two-way partition).
//  2. Each partition is recursively bi-partitioned until it holds a single
//     chiplet, forming a full binary tree whose leaves are chiplets.
//  3. The floorplan is derived bottom-up: a leaf is the chiplet's bounding
//     box; an internal node places its two sub-partitions side by side
//     (choosing the orientation that minimizes the bounding-box area),
//     separated by the chiplet-spacing constraint.
//
// Whitespace arises from (i) the spacing between sub-partitions and
// (ii) bounding-box slack when the two sub-partitions have mismatched
// dimensions. The resulting placement also yields the pairwise chiplet
// interfaces (shared-edge overlaps) used to place silicon bridges and NoC
// routers.
package floorplan

import (
	"fmt"
	"math"
)

// DefaultSpacingMM is the default chiplet-to-chiplet spacing constraint
// (Table I: 0.1 - 1 mm).
const DefaultSpacingMM = 0.5

// Block is one chiplet to be placed. Width and Height are optional; when
// zero the block is treated as a square of the given area.
type Block struct {
	Name    string
	AreaMM2 float64
	// AspectRatio is width/height; 0 means square.
	AspectRatio float64
}

func (b Block) dims() (w, h float64) {
	ar := b.AspectRatio
	if ar <= 0 {
		ar = 1
	}
	// w*h = area, w/h = ar  =>  h = sqrt(area/ar), w = ar*h.
	h = math.Sqrt(b.AreaMM2 / ar)
	return ar * h, h
}

// Placement is the placed location of one chiplet in package coordinates
// (mm), with the origin at the lower-left of the package.
type Placement struct {
	Name          string
	X, Y          float64
	Width, Height float64
}

// Adjacency records a pair of placed chiplets whose edges face each other
// across exactly the spacing gap, along with the length of the shared
// (overlapping) edge in mm. Silicon bridges and inter-die routers are
// provisioned per adjacency.
type Adjacency struct {
	A, B      string
	OverlapMM float64
}

// Result is the outcome of floorplanning a set of chiplets.
type Result struct {
	// WidthMM and HeightMM are the package bounding-box dimensions.
	WidthMM, HeightMM float64
	// Placements lists every chiplet's placed rectangle.
	Placements []Placement
	// Adjacencies lists pairs of chiplets with facing edges.
	Adjacencies []Adjacency
	// ChipletAreaMM2 is the sum of chiplet areas.
	ChipletAreaMM2 float64
}

// AreaMM2 returns the package (substrate/interposer) bounding-box area.
func (r *Result) AreaMM2() float64 { return r.WidthMM * r.HeightMM }

// WhitespaceMM2 returns the package area not covered by chiplets.
func (r *Result) WhitespaceMM2() float64 { return r.AreaMM2() - r.ChipletAreaMM2 }

// WhitespaceFraction returns whitespace as a fraction of package area.
func (r *Result) WhitespaceFraction() float64 {
	if r.AreaMM2() == 0 {
		return 0
	}
	return r.WhitespaceMM2() / r.AreaMM2()
}

type node struct {
	block       *Block // leaf
	left, right *node  // internal
}

// Plan floorplans the blocks with the given chiplet spacing (mm). It
// returns an error for an empty block list, non-positive areas, or a
// spacing outside the Table I range [0.1, 1] mm (0 selects the default).
func Plan(blocks []Block, spacingMM float64) (*Result, error) {
	// A fresh scratch per call keeps the returned Result independent;
	// hot loops use Scratch.Plan to amortize the buffers.
	var sc Scratch
	res, err := sc.Plan(blocks, spacingMM)
	if err != nil {
		return nil, err
	}
	out := *res
	return &out, nil
}

func errNoBlocks() error {
	return fmt.Errorf("floorplan: no blocks to place")
}

func errSpacing(spacingMM float64) error {
	return fmt.Errorf("floorplan: spacing %g mm outside Table I range [0.1, 1]", spacingMM)
}

func errBlockArea(b Block) error {
	return fmt.Errorf("floorplan: block %q has non-positive area %g", b.Name, b.AreaMM2)
}

// buildTree performs the recursive area-balanced bi-partition. blocks must
// already be sorted by decreasing area.
func buildTree(blocks []Block) *node {
	if len(blocks) == 1 {
		b := blocks[0]
		return &node{block: &b}
	}
	var partA, partB []Block
	var areaA, areaB float64
	for _, b := range blocks {
		if areaA <= areaB {
			partA = append(partA, b)
			areaA += b.AreaMM2
		} else {
			partB = append(partB, b)
			areaB += b.AreaMM2
		}
	}
	return &node{left: buildTree(partA), right: buildTree(partB)}
}

// findAdjacencies scans placed rectangles pairwise for facing edges
// separated by at most the spacing gap (with slack for bounding-box
// whitespace up to one spacing unit) and a positive overlap.
func findAdjacencies(ps []Placement, spacing float64) []Adjacency {
	return appendAdjacencies(nil, ps, spacing)
}

func facing(a, b Placement, maxGap float64) (Adjacency, bool) {
	// Horizontal neighbours (a left of b or b left of a).
	gapX := math.Max(b.X-(a.X+a.Width), a.X-(b.X+b.Width))
	overlapY := math.Min(a.Y+a.Height, b.Y+b.Height) - math.Max(a.Y, b.Y)
	if gapX >= -1e-9 && gapX <= maxGap && overlapY > 1e-9 {
		return Adjacency{A: a.Name, B: b.Name, OverlapMM: overlapY}, true
	}
	// Vertical neighbours.
	gapY := math.Max(b.Y-(a.Y+a.Height), a.Y-(b.Y+b.Height))
	overlapX := math.Min(a.X+a.Width, b.X+b.Width) - math.Max(a.X, b.X)
	if gapY >= -1e-9 && gapY <= maxGap && overlapX > 1e-9 {
		return Adjacency{A: a.Name, B: b.Name, OverlapMM: overlapX}, true
	}
	return Adjacency{}, false
}

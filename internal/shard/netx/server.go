// Package netx is the real network transport behind the shard layer's
// Transport seam: the lease protocol of internal/shard carried over
// persistent TCP connections in the binary frame format of
// internal/wire.
//
// The split of responsibilities follows the loopback design exactly —
// which is what keeps the failure model and the bit-identity contract
// intact across the network hop:
//
//   - A replica server (Server / ListenAndServe) owns a shard.Catalog
//     and executes leases against plans it compiled locally. Plans are
//     never shipped: a client registers a plan's *content* (canonical
//     JSON of the system, node list and cost parameters) once per
//     connection, the server re-derives the content key with its own
//     tech database, and echoes it back — so coordinator/replica skew
//     (a different db version, a drifted encoding) surfaces as a typed
//     key mismatch instead of silently divergent results.
//   - A client (Client / DialTransport) implements shard.Transport
//     over one persistent connection per replica address. Leases are
//     multiplexed by id, so several in-flight leases pipeline over one
//     socket (pass the same *Client to the coordinator several times
//     to exploit it); a broken connection fails the in-flight leases
//     — the coordinator's existing backoff/re-lease machinery owns the
//     retry policy — and the next Execute redials.
//
// Read and write deadlines are derived from lease deadlines plus a
// grace (Options.Slack): a socket that stays silent past every
// outstanding lease's deadline is declared dead, which is the
// transport-level analogue of the coordinator's watchdog expiry.
package netx

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/shard"
	"ecochip/internal/tech"
	"ecochip/internal/wire"
)

// Options tunes both ends of the transport. The zero value is usable.
type Options struct {
	// Slack is the grace added to lease deadlines when deriving socket
	// read/write deadlines, and the handshake/registration timeout
	// (default 2s).
	Slack time.Duration
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// DrainTimeout bounds the server's graceful shutdown: in-flight
	// leases get this long to finish streaming before connections are
	// closed (default 10s).
	DrainTimeout time.Duration
	// MaxFrame caps accepted frame sizes (default wire.MaxFrame).
	MaxFrame int
	// AuthToken is the shared secret of both ends. A server with a token
	// set rejects registrations whose token does not match
	// (constant-time compare, typed CodeAuthFailed); a client with a
	// token set ships it in every registration frame. The token is
	// connection metadata — it never enters plan content keys.
	AuthToken string
	// IdleProbe, when positive, has the client ping an idle connection
	// at this interval: a dead peer is detected (and the connection
	// failed into the coordinator's retry machinery) before the next
	// lease wastes its deadline on it, and a draining peer's pong flag
	// stops the coordinator leasing to it. Lease traffic suppresses
	// probes — an active connection proves itself. Zero disables.
	IdleProbe time.Duration
	// Logf, when set, receives transport events worth operator eyes
	// (accept errors, protocol violations, drain progress).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Slack <= 0 {
		o.Slack = 2 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// countConn counts raw socket bytes into the owner's atomics.
type countConn struct {
	net.Conn
	in, out *atomic.Uint64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// Server executes leases for remote coordinators: the network face of
// a shard replica. It is stateless between leases exactly like the
// loopback shard.Replica it wraps — all retained state is the catalog
// of compiled plans.
type Server struct {
	cat  *shard.Catalog
	db   *tech.DB
	rep  *shard.Replica
	opts Options

	mu       sync.Mutex
	conns    map[net.Conn]*srvConn
	draining bool
	leases   sync.WaitGroup

	accepted, framesIn, framesOut atomic.Uint64
	bytesIn, bytesOut             atomic.Uint64
	leasesServed, registrations   atomic.Uint64
	activeLeases, maxActive       atomic.Uint64
}

// NewServer builds a replica server over a catalog and the tech
// database new registrations compile against. The db must match the
// coordinator's — the content-key echo catches it when it does not.
func NewServer(cat *shard.Catalog, db *tech.DB, opts Options) *Server {
	return &Server{
		cat:   cat,
		db:    db,
		rep:   shard.NewReplica(cat),
		opts:  opts.withDefaults(),
		conns: make(map[net.Conn]*srvConn),
	}
}

// Counters snapshots the server-side wire counters (Dials counts
// accepted connections; MaxPipeline the deepest concurrent lease set).
func (s *Server) Counters() shard.TransportCounters {
	return shard.TransportCounters{
		Dials:       s.accepted.Load(),
		FramesIn:    s.framesIn.Load(),
		FramesOut:   s.framesOut.Load(),
		BytesIn:     s.bytesIn.Load(),
		BytesOut:    s.bytesOut.Load(),
		MaxPipeline: s.maxActive.Load(),
	}
}

// LeasesServed reports completed lease executions (any outcome).
func (s *Server) LeasesServed() uint64 { return s.leasesServed.Load() }

// Registrations reports plan registrations accepted over the wire.
func (s *Server) Registrations() uint64 { return s.registrations.Load() }

// Serve accepts connections on ln until ctx is cancelled, then drains:
// stop accepting, refuse new leases (CodeShuttingDown), let in-flight
// leases finish streaming (bounded by DrainTimeout), close
// connections, return. The error is nil on a clean drain. A fatal
// Accept error (EMFILE, a closed listener) runs the same drain before
// returning it, so Serve never exits with lease goroutines or tracked
// connections still live.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	for {
		nc, err := ln.Accept()
		if err != nil {
			derr := s.drain()
			if ctx.Err() != nil {
				return derr
			}
			return err
		}
		s.accepted.Add(1)
		go s.serveConn(countConn{Conn: nc, in: &s.bytesIn, out: &s.bytesOut})
	}
}

// ListenAndServe binds addr and serves until ctx is cancelled. ready,
// when non-nil, receives the bound address once listening (port 0
// resolution for tests and daemons).
func ListenAndServe(ctx context.Context, addr string, cat *shard.Catalog, db *tech.DB, opts Options, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	return NewServer(cat, db, opts).Serve(ctx, ln)
}

// drain is the graceful-shutdown tail of Serve.
func (s *Server) drain() error {
	s.mu.Lock()
	s.draining = true
	n := len(s.conns)
	s.mu.Unlock()
	s.opts.logf("netx: draining %d connections, %d leases in flight", n, s.activeLeases.Load())
	done := make(chan struct{})
	go func() {
		s.leases.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.opts.DrainTimeout):
		s.opts.logf("netx: drain timeout after %s, closing with leases in flight", s.opts.DrainTimeout)
		// Name every abandoned lease: the coordinator will re-lease the
		// blocks, but the operator deserves to know what was cut off.
		s.mu.Lock()
		for _, sc := range s.conns {
			sc.mu.Lock()
			for id, al := range sc.active {
				s.opts.logf("netx: abandoning lease %d: plan %s blocks [%d,%d) after %s",
					id, al.lease.Key, al.lease.Blocks.Lo, al.lease.Blocks.Hi,
					time.Since(al.started).Round(time.Millisecond))
			}
			sc.mu.Unlock()
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	for nc, sc := range s.conns {
		sc.cancelAll()
		nc.Close()
	}
	s.conns = map[net.Conn]*srvConn{}
	s.mu.Unlock()
	return nil
}

// srvConn is the per-connection server state: a locked frame writer
// shared by lease goroutines and the id→lease map of active leases.
type srvConn struct {
	c   net.Conn
	w   *wire.Writer
	wmu sync.Mutex

	mu     sync.Mutex
	active map[uint64]*activeLease
}

// activeLease is one in-flight lease execution, retained so a drain
// that abandons it can say exactly what was abandoned.
type activeLease struct {
	cancel  context.CancelFunc
	lease   shard.Lease
	started time.Time
}

func (sc *srvConn) cancelAll() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for _, al := range sc.active {
		al.cancel()
	}
}

// write emits one frame under the connection write lock with the given
// deadline.
func (s *Server) write(sc *srvConn, m wire.Msg, id uint64, payload []byte, deadline time.Time) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.c.SetWriteDeadline(deadline)
	if err := sc.w.WriteFrame(m, id, payload); err != nil {
		return err
	}
	s.framesOut.Add(1)
	return nil
}

// buffer encodes one frame under the write lock without forcing a
// flush: a lease's block-result burst coalesces into few syscalls, and
// the terminal WriteFrame (done/error, always flushing) drains the
// tail. Another goroutine's interleaved flushing write also drains it
// — buffered frames never reorder, the buffer is strictly FIFO.
func (s *Server) buffer(sc *srvConn, m wire.Msg, id uint64, payload []byte, deadline time.Time) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.c.SetWriteDeadline(deadline)
	if err := sc.w.BufferFrame(m, id, payload); err != nil {
		return err
	}
	s.framesOut.Add(1)
	return nil
}

func (s *Server) serveConn(nc net.Conn) {
	sc := &srvConn{c: nc, w: wire.NewWriter(nc), active: make(map[uint64]*activeLease)}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[nc] = sc
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		sc.cancelAll()
		nc.Close()
	}()

	r := wire.NewReader(nc, s.opts.MaxFrame)
	// Handshake: the first frame must be a version-matched hello, and
	// it must arrive promptly.
	nc.SetReadDeadline(time.Now().Add(s.opts.Slack))
	m, id, p, err := r.ReadFrame()
	if err != nil || m != wire.MsgHello {
		s.opts.logf("netx: %s: bad handshake: %v", nc.RemoteAddr(), err)
		return
	}
	if v, err := wire.DecodeUvarint(p); err != nil || v != wire.ProtoVersion {
		s.opts.logf("netx: %s: protocol version mismatch (%d vs %d)", nc.RemoteAddr(), v, wire.ProtoVersion)
		return
	}
	if err := s.write(sc, wire.MsgHello, id, wire.AppendUvarint(nil, wire.ProtoVersion), time.Now().Add(s.opts.Slack)); err != nil {
		return
	}

	for {
		// Frames arrive only when a coordinator has business with us;
		// an idle connection legitimately stays silent, so the steady
		// loop reads without a deadline and relies on conn closure (our
		// drain, or the peer) to unblock.
		nc.SetReadDeadline(time.Time{})
		m, id, p, err := r.ReadFrame()
		if err != nil {
			return
		}
		s.framesIn.Add(1)
		switch m {
		case wire.MsgRegister:
			s.handleRegister(sc, id, p)
		case wire.MsgLease:
			var lease shard.Lease
			if err := wire.DecodeLease(p, &lease); err != nil {
				s.opts.logf("netx: %s: corrupt lease: %v", nc.RemoteAddr(), err)
				return
			}
			s.startLease(sc, id, lease)
		case wire.MsgCancel:
			sc.mu.Lock()
			if al := sc.active[id]; al != nil {
				al.cancel()
			}
			sc.mu.Unlock()
		case wire.MsgPing:
			// Liveness probe. Answered even while draining — especially
			// while draining: the pong's flag is how a coordinator learns
			// to stop leasing here before burning a refused round-trip.
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			var flags uint64
			if draining {
				flags |= wire.PongDraining
			}
			if err := s.write(sc, wire.MsgPong, id, wire.AppendPong(nil, flags), time.Now().Add(s.opts.Slack)); err != nil {
				return
			}
		default:
			s.opts.logf("netx: %s: unexpected frame type %d", nc.RemoteAddr(), m)
			return
		}
	}
}

// handleRegister compiles-or-registers a plan from its shipped content
// and echoes the locally derived key. Registration is the cold path
// (once per connection per plan), so JSON and allocation are fine here.
func (s *Server) handleRegister(sc *srvConn, id uint64, p []byte) {
	wd := time.Now().Add(s.opts.Slack)
	reg, err := wire.DecodeRegistration(p)
	if err != nil {
		s.write(sc, wire.MsgLeaseError, id, wire.AppendError(nil, wire.CodeGeneric, err.Error()), wd)
		return
	}
	if s.opts.AuthToken != "" {
		if subtle.ConstantTimeCompare([]byte(reg.Token), []byte(s.opts.AuthToken)) != 1 {
			s.write(sc, wire.MsgLeaseError, id, wire.AppendError(nil, wire.CodeAuthFailed, "register: bad auth token"), wd)
			return
		}
	}
	var sys core.System
	if err := json.Unmarshal(reg.System, &sys); err != nil {
		s.write(sc, wire.MsgLeaseError, id, wire.AppendError(nil, wire.CodeGeneric, "register: system: "+err.Error()), wd)
		return
	}
	var cp cost.Params
	if err := json.Unmarshal(reg.Cost, &cp); err != nil {
		s.write(sc, wire.MsgLeaseError, id, wire.AppendError(nil, wire.CodeGeneric, "register: cost params: "+err.Error()), wd)
		return
	}
	key, err := s.cat.RegisterSweep(&sys, s.db, reg.Nodes, cp)
	if err != nil {
		s.write(sc, wire.MsgLeaseError, id, wire.AppendError(nil, wire.CodeGeneric, "register: "+err.Error()), wd)
		return
	}
	s.registrations.Add(1)
	s.write(sc, wire.MsgRegistered, id, wire.AppendString(nil, key), wd)
}

// leaseBudget converts a lease's advisory deadline — a wall-clock
// timestamp stamped by the coordinator's clock — into a replica-local
// bound. Clock skew between the two machines must not turn a fresh
// lease into an instantly-expired one, so the replica grants itself at
// least Slack of budget beyond its own now, whatever the remote
// timestamp says; the coordinator's watchdog remains the authoritative
// expiry, this bound only stops runaway work.
func (s *Server) leaseBudget(deadline time.Time) time.Time {
	if min := time.Now().Add(s.opts.Slack); deadline.Before(min) {
		deadline = min
	}
	return deadline.Add(s.opts.Slack)
}

// startLease admits one lease (or refuses it while draining) and runs
// it on its own goroutine so the read loop keeps servicing cancels and
// further leases — the multiplexing that lets leases pipeline.
func (s *Server) startLease(sc *srvConn, id uint64, lease shard.Lease) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.write(sc, wire.MsgLeaseError, id, wire.AppendError(nil, wire.CodeShuttingDown, "replica draining"), time.Now().Add(s.opts.Slack))
		return
	}
	s.leases.Add(1)
	s.mu.Unlock()

	// The replica-side lease context: cancelled by MsgCancel, and
	// deadline-bounded by the lease's advisory deadline plus slack so
	// an expired lease stops burning cycles even if the cancel frame
	// never arrives.
	lctx, cancel := context.WithCancel(context.Background())
	if !lease.Deadline.IsZero() {
		lctx, cancel = context.WithDeadline(context.Background(), s.leaseBudget(lease.Deadline))
	}
	sc.mu.Lock()
	sc.active[id] = &activeLease{cancel: cancel, lease: lease, started: time.Now()}
	sc.mu.Unlock()

	depth := s.activeLeases.Add(1)
	for {
		max := s.maxActive.Load()
		if depth <= max || s.maxActive.CompareAndSwap(max, depth) {
			break
		}
	}

	go func() {
		defer s.leases.Done()
		defer cancel()
		defer func() {
			sc.mu.Lock()
			delete(sc.active, id)
			sc.mu.Unlock()
			s.activeLeases.Add(^uint64(0))
			s.leasesServed.Add(1)
		}()
		wd := s.leaseBudget(lease.Deadline)
		buf := wire.GetBuffer()
		defer wire.PutBuffer(buf)
		err := s.rep.Execute(lctx, lease, func(res shard.BlockResult) error {
			*buf = wire.AppendBlockResult((*buf)[:0], &res)
			return s.buffer(sc, wire.MsgBlockResult, id, *buf, wd)
		})
		if err == nil {
			s.write(sc, wire.MsgLeaseDone, id, nil, wd)
			return
		}
		code := wire.CodeGeneric
		switch {
		case errors.Is(err, shard.ErrPlanUnknown):
			code = wire.CodePlanUnknown
		case errors.Is(err, shard.ErrLeaseMismatch):
			code = wire.CodeLeaseMismatch
		case errors.Is(err, shard.ErrReplicaDown):
			code = wire.CodeReplicaDown
		}
		s.write(sc, wire.MsgLeaseError, id, wire.AppendError(nil, code, err.Error()), wd)
	}()
}

package shard

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// registerN registers n distinct random sweeps in cat and returns their
// keys (systems that have no compiled fast path are skipped).
func registerN(t *testing.T, cat *Catalog, n int, seed int64) []string {
	t.Helper()
	db := tech.Default()
	cp := cost.DefaultParams()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]string, 0, n)
	seen := map[string]bool{}
	for len(keys) < n {
		sys := testcases.Random(rng, db)
		nodes := testcases.RandomNodes(rng)
		if _, err := explore.Compile(sys, db, nodes, cp); err != nil {
			continue
		}
		key, err := cat.RegisterSweep(sys, db, nodes, cp)
		if err != nil {
			t.Fatal(err)
		}
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	return keys
}

// A capacity-bounded catalog must evict LRU plans and recompile them —
// bit-identically — on demand.
func TestCatalogEvictionAndRecompile(t *testing.T) {
	cat := NewCatalogCap(2)
	keys := registerN(t, cat, 3, 17)

	p0, err := cat.Plan(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := p0.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Plan(keys[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Plan(keys[2]); err != nil { // evicts keys[0]
		t.Fatal(err)
	}
	if got := cat.Resident(); got != 2 {
		t.Fatalf("Resident = %d, want 2", got)
	}
	s := cat.Stats()
	if s.Evictions != 1 || s.Builds != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 builds", s)
	}

	// The evicted key recompiles to the same bits.
	p0again, err := cat.Plan(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if p0again == p0 {
		t.Fatal("evicted plan was not recompiled")
	}
	got, err := p0again.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "recompiled plan")
	if s := cat.Stats(); s.Builds != 4 || s.Evictions != 2 {
		t.Fatalf("stats after recompile = %+v, want 4 builds / 2 evictions", s)
	}
}

// Concurrent Plan calls for one key must share a single compile.
func TestCatalogSingleFlightCompile(t *testing.T) {
	cat := NewCatalog()
	keys := registerN(t, cat, 1, 23)
	const callers = 16
	var wg sync.WaitGroup
	plans := make([]*explore.CompiledPlan, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := cat.Plan(keys[0])
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent callers received distinct plan instances")
		}
	}
	if s := cat.Stats(); s.Builds != 1 {
		t.Fatalf("Builds = %d, want 1 (single-flight)", s.Builds)
	}
}

func TestCatalogUnknownKey(t *testing.T) {
	cat := NewCatalogCap(1)
	if _, err := cat.Plan("sweep-0000000000000000"); err == nil {
		t.Fatal("unknown key resolved")
	}
}

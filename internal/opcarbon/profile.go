package opcarbon

import "fmt"

// Phase is one operating state of a multi-state usage profile: real
// devices spend their year across active / idle / sleep states with very
// different power draws, which a single duty-cycled Eq. (14) point
// cannot capture.
type Phase struct {
	// Name labels the state ("active", "idle", "sleep").
	Name string
	// ShareOfYear is the fraction of wall time spent in this state.
	ShareOfYear float64
	// PowerW is the average power drawn in this state.
	PowerW float64
}

// Profile is a set of phases covering at most the full year; uncovered
// time is implicitly powered off.
type Profile struct {
	Phases []Phase
}

// Validate checks shares are positive and sum to at most 1.
func (p Profile) Validate() error {
	if len(p.Phases) == 0 {
		return fmt.Errorf("opcarbon: profile has no phases")
	}
	total := 0.0
	seen := map[string]bool{}
	for _, ph := range p.Phases {
		if ph.Name == "" {
			return fmt.Errorf("opcarbon: profile phase without a name")
		}
		if seen[ph.Name] {
			return fmt.Errorf("opcarbon: duplicate profile phase %q", ph.Name)
		}
		seen[ph.Name] = true
		if ph.ShareOfYear <= 0 || ph.ShareOfYear > 1 {
			return fmt.Errorf("opcarbon: phase %q share %g outside (0, 1]", ph.Name, ph.ShareOfYear)
		}
		if ph.PowerW < 0 {
			return fmt.Errorf("opcarbon: phase %q has negative power", ph.Name)
		}
		total += ph.ShareOfYear
	}
	if total > 1+1e-9 {
		return fmt.Errorf("opcarbon: profile shares sum to %g, above 1", total)
	}
	return nil
}

// AnnualKWh returns the yearly energy of the profile.
func (p Profile) AnnualKWh() float64 {
	var kwh float64
	for _, ph := range p.Phases {
		kwh += ph.PowerW * ph.ShareOfYear * HoursPerYear / 1000
	}
	return kwh
}

// ActiveShare returns the share of the year covered by any phase.
func (p Profile) ActiveShare() float64 {
	var total float64
	for _, ph := range p.Phases {
		total += ph.ShareOfYear
	}
	return total
}

// SpecFromProfile builds a Spec whose energy comes from the profile,
// with the profile's covered share as the duty cycle used to scale
// always-on overheads (e.g. NoC routers).
func SpecFromProfile(p Profile, lifetimeYears, carbonIntensity float64) (Spec, error) {
	if err := p.Validate(); err != nil {
		return Spec{}, err
	}
	s := Spec{
		DutyCycle:       p.ActiveShare(),
		LifetimeYears:   lifetimeYears,
		CarbonIntensity: carbonIntensity,
		AnnualEnergyKWh: p.AnnualKWh(),
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Generation roadmap: quantify the fleet-level carbon saving of reusing
// chiplets across product generations — the paper's introduction thesis
// ("the reuse of chiplets across several designs, not only in the
// current generation of ICs but even in the next generation, can
// massively amortize the embodied CFP").
//
//	go run ./examples/generation_roadmap
package main

import (
	"fmt"
	"log"

	"ecochip"
	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// product builds a phone SoC generation: the CPU complex is redesigned
// every generation, while the modem and IO chiplets carry over.
func product(gen int, cpuTransistors float64, includeNRE bool) *ecochip.System {
	db := ecochip.DefaultDB()
	ref := db.MustGet(7)
	return &ecochip.System{
		Name: fmt.Sprintf("phone-gen%d", gen),
		Chiplets: []core.Chiplet{
			{Name: fmt.Sprintf("cpu-v%d", gen), Type: tech.Logic,
				Transistors: cpuTransistors, NodeNm: 7},
			ecochip.BlockFromArea("modem", ecochip.Logic, 40, ref, 10),
			ecochip.BlockFromArea("sram", ecochip.Memory, 30, ref, 14),
			ecochip.BlockFromArea("io", ecochip.Analog, 20, ref, 14),
		},
		Packaging:  pkgcarbon.DefaultParams(pkgcarbon.RDLFanout),
		Mfg:        mfg.DefaultParams(),
		Design:     descarbon.DefaultParams(),
		IncludeNRE: includeNRE,
	}
}

func main() {
	db := ecochip.DefaultDB()
	for _, nre := range []bool{false, true} {
		generations := []ecochip.Generation{
			{Name: "gen1 (2026)", System: product(1, 8e9, nre), Volume: 500_000},
			{Name: "gen2 (2027)", System: product(2, 11e9, nre), Volume: 700_000},
			{Name: "gen3 (2028)", System: product(3, 15e9, nre), Volume: 900_000},
		}
		rep, err := ecochip.EvaluateRoadmap(db, generations)
		if err != nil {
			log.Fatal(err)
		}
		label := "design carbon only"
		if nre {
			label = "design + mask NRE"
		}
		fmt.Printf("== 3-generation roadmap (%s) ==\n", label)
		for _, g := range rep.Generations {
			fmt.Printf("%-14s per-part %6.2f kg (naive redesign %6.2f kg), carried over: %v\n",
				g.Name, g.PerPartKg, g.NaivePerPartKg, g.CarriedOver)
		}
		fmt.Printf("fleet total: %.0f t CO2e; reuse saves %.1f%% vs redesigning everything\n\n",
			rep.TotalFleetKg()/1000, 100*rep.SavingFraction())
	}
}

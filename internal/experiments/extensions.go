package experiments

import (
	"context"
	"fmt"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/kernel"
	"ecochip/internal/mfg"
	"ecochip/internal/noc"
	"ecochip/internal/report"
	"ecochip/internal/sensitivity"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
	"ecochip/internal/uncertainty"
)

// Extension experiments beyond the paper's figures: the sensitivity
// tornado (generalizing Fig. 6(b)), the carbon-cost Pareto front of the
// Section VI design space, the NoC scaling table behind the
// communication overheads, and the NRE mask-carbon future-work study.

func init() {
	register("ext-tornado", func(db *tech.DB) (*report.Table, error) { return ExtTornado(db, Options{}) })
	register("ext-pareto", ExtPareto)
	register("ext-noc", ExtNoC)
	register("ext-nre", ExtNRE)
	register("ext-uncertainty", func(db *tech.DB) (*report.Table, error) { return ExtUncertainty(db, Options{}) })
	registerOpt("ext-tornado", ExtTornado)
	registerOpt("ext-uncertainty", ExtUncertainty)
}

// ExtUncertainty propagates Table I input uncertainty through the model
// (Section VII discussion): embodied-carbon percentiles for the three
// main testcases under the default parameter spreads. The options select
// the evaluation path (compiled parameter plan vs per-sample reference)
// and receive progress/statistics; the table is identical either way.
func ExtUncertainty(db *tech.DB, o Options) (*report.Table, error) {
	t := report.New("ext-uncertainty",
		"embodied-carbon distribution under +/-20% input uncertainty (500 Monte Carlo samples)",
		"testcase", "p5_kg", "p50_kg", "p95_kg", "relative_spread")
	cases := []struct {
		name string
		sys  *core.System
	}{
		{"GA102(7,14,10)", testcases.GA102(db, 7, 14, 10, false)},
		{"A15(7,14,10)", testcases.A15(db, 7, 14, 10, false)},
		{"EMR(10)", testcases.EMR(db, 10, false)},
	}
	ctx := context.Background()
	for _, c := range cases {
		var d uncertainty.Distribution
		var err error
		if o.Uncompiled {
			d, err = uncertainty.RunReference(ctx, c.sys, db, uncertainty.DefaultSpread(), 500, 2024, o.engineOpts()...)
		} else {
			var plan *kernel.ParamPlan
			d, plan, err = uncertainty.RunPlanned(ctx, c.sys, db, uncertainty.DefaultSpread(), 500, 2024, o.engineOpts()...)
			if err == nil && o.StatsTo != nil {
				fmt.Fprintf(o.StatsTo, "ext-uncertainty %s: %v\n", c.name, plan.Stats())
			}
		}
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, report.F(d.P5Kg), report.F(d.P50Kg), report.F(d.P95Kg), report.F(d.RelativeSpread()))
	}
	return t, nil
}

// ExtTornado ranks the model inputs by their command over the GA102's
// total carbon under a ±25% perturbation. The options select the
// evaluation path and receive progress/statistics.
func ExtTornado(db *tech.DB, o Options) (*report.Table, error) {
	t := report.New("ext-tornado", "GA102 (7,14,10) C_tot sensitivity, +/-25% per factor",
		"factor", "low_kg", "base_kg", "high_kg", "swing_kg")
	base := testcases.GA102(db, 7, 14, 10, false)
	ctx := context.Background()
	var results []sensitivity.Result
	var err error
	if o.Uncompiled {
		results, err = sensitivity.TornadoReference(ctx, base, db, 0.25, o.engineOpts()...)
	} else {
		var plan *kernel.ParamPlan
		results, plan, err = sensitivity.TornadoPlanned(ctx, base, db, 0.25, o.engineOpts()...)
		if err == nil && o.StatsTo != nil {
			fmt.Fprintf(o.StatsTo, "ext-tornado: %v\n", plan.Stats())
		}
	}
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		t.AddRow(r.Factor, report.F(r.LowKg), report.F(r.BaseKg), report.F(r.HighKg), report.F(r.Swing()))
	}
	return t, nil
}

// ExtPareto reports the carbon-cost Pareto front of the GA102 node
// design space.
func ExtPareto(db *tech.DB) (*report.Table, error) {
	t := report.New("ext-pareto", "GA102 node-assignment Pareto front (embodied carbon vs dollar cost)",
		"nodes", "cemb_kg", "cost_usd", "area_mm2")
	base := testcases.GA102(db, 7, 14, 10, false)
	points, err := explore.NodeSweep(base, db, []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		return nil, err
	}
	front := explore.ParetoFront(points, explore.ByEmbodied, explore.ByCost)
	for _, p := range front {
		t.AddRow(p.Label(), report.F(p.EmbodiedKg), report.F(p.CostUSD), report.F(p.PackageAreaMM2))
	}
	return t, nil
}

// ExtNoC reports router area/power and network energy-per-flit across
// chiplet counts and nodes — the scaling data behind C_mfg,comm.
func ExtNoC(db *tech.DB) (*report.Table, error) {
	t := report.New("ext-noc", "NoC scaling: per-router area/power and per-flit energy (512-bit mesh)",
		"node_nm", "endpoints", "router_area_mm2", "router_power_w", "avg_hops", "energy_per_flit_nj")
	cfg := noc.DefaultConfig()
	pp := noc.DefaultPowerParams()
	for _, nm := range []int{7, 22, 65} {
		n := db.MustGet(nm)
		for _, endpoints := range []int{2, 4, 8, 16} {
			mesh, err := noc.NewMesh(endpoints, 2.0, cfg)
			if err != nil {
				return nil, err
			}
			area, err := noc.AreaMM2(cfg, n)
			if err != nil {
				return nil, err
			}
			power, err := noc.PowerW(cfg, n, pp)
			if err != nil {
				return nil, err
			}
			perFlit, err := mesh.EnergyPerFlitJ(n, pp)
			if err != nil {
				return nil, err
			}
			t.AddRow(report.I(nm), report.I(endpoints), report.F(area), report.F(power),
				report.F(mesh.AverageHops()), report.F(perFlit*1e9))
		}
	}
	return t, nil
}

// ExtNRE quantifies the future-work NRE split of Section V-C: per-part
// mask-set carbon across nodes and reuse volumes.
func ExtNRE(db *tech.DB) (*report.Table, error) {
	t := report.New("ext-nre", "amortized mask-set (NRE) carbon per part across nodes and volumes",
		"node_nm", "mask_set_kg", "per_part_at_10k", "per_part_at_100k", "per_part_at_1m")
	p := mfg.DefaultNREParams()
	for _, nm := range db.Sizes() {
		n := db.MustGet(nm)
		set, err := mfg.MaskSetKg(n, p)
		if err != nil {
			return nil, err
		}
		row := []string{report.I(nm), report.F(set)}
		for _, vol := range []int{10_000, 100_000, 1_000_000} {
			per, err := mfg.AmortizedNREKg(n, vol, p)
			if err != nil {
				return nil, err
			}
			row = append(row, report.F(per))
		}
		t.AddRow(row...)
	}
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("ext-nre: empty node database")
	}
	return t, nil
}

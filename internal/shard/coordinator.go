package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ecochip/internal/explore"
	"ecochip/internal/shard/health"
)

// Config tunes the coordinator's lease protocol. The zero value is
// usable: every field has a production default.
type Config struct {
	// BlockSize is the points-per-block quantum (default 512). Smaller
	// blocks mean finer re-lease granularity after failures at the cost
	// of more protocol traffic and more Gray-walk block inits.
	BlockSize int
	// LeaseBlocks caps the blocks per lease (default 4).
	LeaseBlocks int
	// LeaseTimeout is the watchdog deadline per lease (default 2s):
	// past it the lease's incomplete blocks are re-leased to surviving
	// replicas and its context is cancelled. Late results from the
	// original replica deduplicate harmlessly.
	LeaseTimeout time.Duration
	// RetryBackoff is the base delay before retrying a replica after a
	// transient failure (default 5ms); doubled per consecutive failure
	// up to BackoffMax (default 250ms), with uniform jitter over the
	// top half of the interval to decorrelate replica retry storms.
	RetryBackoff time.Duration
	// BackoffMax caps the exponential backoff.
	BackoffMax time.Duration
	// MaxRetries is the consecutive-failure budget per replica
	// (default 3); past it the replica's circuit breaker opens and the
	// replica is quarantined — probed and rejoined if it recovers,
	// retired for the run once its probe budget is spent too
	// (health.Config.MaxProbes).
	MaxRetries int
	// Seed seeds the backoff jitter (deterministic per replica index).
	Seed int64
	// DisableFallback turns the total-replica-loss degradation into a
	// typed *ExhaustedError instead of a local walk — for deployments
	// where the coordinator must not absorb compute.
	DisableFallback bool
	// Health tunes the per-replica circuit breakers and latency
	// trackers. Zero fields default sensibly; in particular TripAfter
	// defaults to MaxRetries+1 (the old retire threshold becomes the
	// trip threshold) and ProbeAfter to BackoffMax.
	Health health.Config
	// HedgeFactor scales the cross-replica EWMA lease latency into the
	// adaptive straggler threshold (default 3): an outstanding lease
	// older than EWMA×HedgeFactor is speculatively re-leased to a
	// healthy replica. Blocks are deterministic and delivery is
	// first-write-wins, so a hedge can change timing but never bits.
	HedgeFactor float64
	// HedgeMin floors the straggler threshold (default 25ms) so warm
	// sub-millisecond EWMAs cannot hedge every lease.
	HedgeMin time.Duration
	// DisableHedging turns speculative re-leases off.
	DisableHedging bool
	// Logf, when set, receives protocol events worth operator eyes
	// (currently: fallback activation). Default: silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 512
	}
	if c.LeaseBlocks <= 0 {
		c.LeaseBlocks = 4
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.HedgeFactor <= 0 {
		c.HedgeFactor = 3
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 25 * time.Millisecond
	}
	return c
}

// healthConfig derives the tracker config: unset breaker thresholds
// inherit the lease protocol's retry knobs so one knob set scales both.
func (c Config) healthConfig() health.Config {
	h := c.Health
	if h.TripAfter <= 0 {
		h.TripAfter = c.MaxRetries + 1
	}
	if h.ProbeAfter <= 0 {
		h.ProbeAfter = c.BackoffMax
	}
	return h
}

// Stats is a snapshot of the coordinator's protocol counters,
// cumulative across runs. Its String is the summary ecodse prints
// under -progress.
type Stats struct {
	// LeasesGranted counts leases handed to replicas; LeasesExpired the
	// subset whose watchdog fired before the span completed.
	LeasesGranted, LeasesExpired uint64
	// BlocksRequeued counts block re-leases: blocks returned to the
	// pending queue by expiry, replica failure or lost results.
	BlocksRequeued uint64
	// BlocksCompleted counts first-delivery block completions;
	// BlocksDeduped the discarded double-completions (first write wins);
	// BlocksLocal the blocks absorbed by the coordinator's fallback.
	BlocksCompleted, BlocksDeduped, BlocksLocal uint64
	// ReplicaFailures counts transient Execute errors; ReplicasLost the
	// replicas retired (crash, auth rejection, or probe budget spent).
	ReplicaFailures, ReplicasLost uint64
	// Fallbacks counts local-walk degradations (total replica loss).
	Fallbacks uint64
	// HedgesFired counts straggling leases whose remaining blocks were
	// speculatively re-leased; HedgesWon the hedged blocks that
	// completed under the hedge rather than the original; and
	// HedgesCancelled the losing leases cancelled early because every
	// block of their span completed under another lease.
	HedgesFired, HedgesWon, HedgesCancelled uint64
	// BreakerTrips / BreakerProbes / BreakerCloses count circuit-breaker
	// transitions across the replica set: openings (→ quarantined),
	// half-open probe entries, and probe successes closing the breaker.
	BreakerTrips, BreakerProbes, BreakerCloses uint64
	// DrainSkips counts lease grants withheld from draining replicas.
	DrainSkips uint64
	// Wire aggregates the wire-level counters of the coordinator's
	// counted transports (zero for pure loopback runs).
	Wire TransportCounters
}

func (s Stats) String() string {
	out := fmt.Sprintf("shard: %d leases granted (%d expired), %d blocks re-leased, %d completed (%d deduped, %d local), %d replica failures (%d replicas lost), %d fallbacks",
		s.LeasesGranted, s.LeasesExpired, s.BlocksRequeued, s.BlocksCompleted, s.BlocksDeduped, s.BlocksLocal,
		s.ReplicaFailures, s.ReplicasLost, s.Fallbacks)
	if s.HedgesFired+s.HedgesWon+s.HedgesCancelled+s.BreakerTrips+s.BreakerProbes+s.BreakerCloses+s.DrainSkips > 0 {
		out += fmt.Sprintf("\nhealth: %d hedges fired (%d blocks won, %d leases cancelled), breaker %d trips / %d probes / %d closes, %d drain skips",
			s.HedgesFired, s.HedgesWon, s.HedgesCancelled, s.BreakerTrips, s.BreakerProbes, s.BreakerCloses, s.DrainSkips)
	}
	if !s.Wire.IsZero() {
		out += "\n" + s.Wire.String()
	}
	return out
}

// Coordinator drives one compiled plan across a set of replica
// transports under the lease protocol. It is safe for sequential
// reuse (Sweep / ParetoFront any number of times); stats accumulate,
// and per-replica health state (breakers, latency EWMAs) carries
// across runs so a replica quarantined in one run is probed — not
// blindly trusted — by the next. AddTransport / RemoveTransport adjust
// the replica set at any time, including mid-run.
type Coordinator struct {
	plan      *explore.CompiledPlan
	key       string
	cfg       Config
	healthCfg health.Config
	leaseEwma *health.Ewma

	mu         sync.Mutex
	transports []Transport
	removed    map[Transport]bool
	trackers   map[Transport]*health.Tracker
	active     *runState

	driveSeq atomic.Int64

	leasesGranted, leasesExpired, blocksRequeued  atomic.Uint64
	blocksCompleted, blocksDeduped, blocksLocal   atomic.Uint64
	replicaFailures, replicasLost, fallbacksTotal atomic.Uint64
	hedgesFired, hedgesWon, hedgesCancelled       atomic.Uint64
	drainSkips                                    atomic.Uint64
}

// NewCoordinator builds a coordinator for the plan (compiled by the
// caller — the coordinator needs it for geometry, result assembly and
// the degradation path) identified by key (explore.PlanKey of the same
// inputs) over the given replica transports. An empty transport list
// is legal: every run degrades to the local walk (or use AddTransport
// before running).
func NewCoordinator(plan *explore.CompiledPlan, key string, transports []Transport, cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	return &Coordinator{
		plan:       plan,
		key:        key,
		transports: append([]Transport(nil), transports...),
		cfg:        cfg,
		healthCfg:  cfg.healthConfig(),
		leaseEwma:  health.NewEwma(cfg.Health.Alpha),
		removed:    make(map[Transport]bool),
		trackers:   make(map[Transport]*health.Tracker),
	}
}

// AddTransport adds a replica transport to the set at runtime: it
// joins the current run (if one is live) immediately, and every later
// run. Adding a transport that was removed earlier clears its removal.
func (c *Coordinator) AddTransport(t Transport) {
	c.mu.Lock()
	c.transports = append(c.transports, t)
	delete(c.removed, t)
	r := c.active
	c.mu.Unlock()
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.driversGone {
		r.spawnDriveLocked(r.ctx, t)
	}
	r.mu.Unlock()
}

// RemoveTransport removes every entry of t from the replica set (a
// pipelined transport appears once per lease slot) and stops its lease
// goroutines at their next acquire — an in-flight lease finishes or
// fails normally first, and its late results deduplicate as usual.
// Reports whether t was present.
func (c *Coordinator) RemoveTransport(t Transport) bool {
	c.mu.Lock()
	kept := c.transports[:0]
	found := false
	for _, x := range c.transports {
		if x == t {
			found = true
			continue
		}
		kept = append(kept, x)
	}
	c.transports = kept
	if found {
		c.removed[t] = true
	}
	r := c.active
	c.mu.Unlock()
	if found && r != nil {
		// Wake acquire waiters so the removed transport's parked
		// drivers observe the tombstone and exit.
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	}
	return found
}

// Transports snapshots the current replica set.
func (c *Coordinator) Transports() []Transport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Transport(nil), c.transports...)
}

func (c *Coordinator) isRemoved(t Transport) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removed[t]
}

// tracker returns t's health tracker, creating it on first use.
// Pipelined lease slots of the same transport value share one tracker,
// so a replica's health is judged per replica, not per slot.
func (c *Coordinator) tracker(t Transport) *health.Tracker {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr := c.trackers[t]
	if tr == nil {
		tr = health.New(c.healthCfg)
		c.trackers[t] = tr
	}
	return tr
}

// hedgeDelay derives the adaptive straggler threshold for a fresh
// lease: the cross-replica EWMA of lease latencies × HedgeFactor,
// floored at HedgeMin. Hedging is off until the EWMA has a sample
// (nothing to adapt to), with fewer than two transports (nobody to
// hedge to), and at or past LeaseTimeout (expiry re-leases anyway).
func (c *Coordinator) hedgeDelay() (time.Duration, bool) {
	if c.cfg.DisableHedging {
		return 0, false
	}
	c.mu.Lock()
	n := len(c.transports)
	c.mu.Unlock()
	if n < 2 {
		return 0, false
	}
	e := c.leaseEwma.Value()
	if e <= 0 {
		return 0, false
	}
	d := time.Duration(float64(e) * c.cfg.HedgeFactor)
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	if d >= c.cfg.LeaseTimeout {
		return 0, false
	}
	return d, true
}

// Stats snapshots the protocol counters, including the summed
// wire-level counters of the distinct counted transports (one entry
// per transport value: passing the same network client several times
// to pipeline leases over its socket does not double-count it) and the
// breaker-transition counters summed across replica health trackers.
func (c *Coordinator) Stats() Stats {
	var wire TransportCounters
	var hc health.Counters
	c.mu.Lock()
	seen := make(map[Transport]bool, len(c.transports))
	for _, t := range c.transports {
		ct, ok := t.(CountedTransport)
		if !ok || seen[t] {
			continue
		}
		seen[t] = true
		wire.add(ct.TransportCounters())
	}
	for _, tr := range c.trackers {
		hc.Add(tr.Counters())
	}
	c.mu.Unlock()
	return Stats{
		Wire:            wire,
		LeasesGranted:   c.leasesGranted.Load(),
		LeasesExpired:   c.leasesExpired.Load(),
		BlocksRequeued:  c.blocksRequeued.Load(),
		BlocksCompleted: c.blocksCompleted.Load(),
		BlocksDeduped:   c.blocksDeduped.Load(),
		BlocksLocal:     c.blocksLocal.Load(),
		ReplicaFailures: c.replicaFailures.Load(),
		ReplicasLost:    c.replicasLost.Load(),
		Fallbacks:       c.fallbacksTotal.Load(),
		HedgesFired:     c.hedgesFired.Load(),
		HedgesWon:       c.hedgesWon.Load(),
		HedgesCancelled: c.hedgesCancelled.Load(),
		BreakerTrips:    hc.Trips,
		BreakerProbes:   hc.Probes,
		BreakerCloses:   hc.Closes,
		DrainSkips:      c.drainSkips.Load(),
	}
}

// Sweep executes the full plan across the replicas and returns every
// point in exact mixed-radix order — bit-identical to plan.RunCtx on
// one process, whatever the failure pattern (or a typed error).
func (c *Coordinator) Sweep(ctx context.Context) ([]explore.Point, error) {
	results := make([]explore.Point, c.plan.Combos())
	sink := func(res BlockResult) {
		for i, slot := range res.Slots {
			results[slot] = res.Points[i]
		}
	}
	if err := c.run(ctx, ModePoints, nil, sink); err != nil {
		return nil, err
	}
	return results, nil
}

// ParetoFront executes the plan in front mode: replicas ship only each
// block's skyline survivors, the coordinator merges them at the
// barrier (slot order restored, one final ParetoFront pass) exactly as
// plan.ParetoFrontCtx merges its per-worker fronts. Returns the front
// and the total number of points the sweep covered.
func (c *Coordinator) ParetoFront(ctx context.Context, objectives []Objective) ([]explore.Point, int, error) {
	if len(objectives) == 0 {
		return nil, 0, fmt.Errorf("shard: ParetoFront needs at least one objective")
	}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		return nil, 0, err
	}
	type slotPoint struct {
		slot int
		pt   explore.Point
	}
	var survivors []slotPoint
	sink := func(res BlockResult) {
		for i, slot := range res.Slots {
			survivors = append(survivors, slotPoint{slot, res.Points[i]})
		}
	}
	if err := c.run(ctx, ModeFront, objectives, sink); err != nil {
		return nil, 0, err
	}
	// Restore global slot order so the final pass sees candidates
	// exactly as the single-process merge would; ties and duplicates
	// then resolve identically.
	sort.Slice(survivors, func(a, b int) bool { return survivors[a].slot < survivors[b].slot })
	points := make([]explore.Point, len(survivors))
	for i, s := range survivors {
		points[i] = s.pt
	}
	return explore.ParetoFront(points, ms...), c.plan.Combos(), nil
}

// FrontSnapshot is one incremental view of a streaming front run: the
// Pareto front over every block delivered so far, with the run's block
// progress. Front entries are owned by the receiver (points are copied
// out of the fold).
type FrontSnapshot struct {
	// Front is the skyline of all points delivered so far, in the same
	// canonical order ParetoFront returns.
	Front []explore.Point
	// BlocksDone / TotalBlocks is the run's progress; the last snapshot
	// always has BlocksDone == TotalBlocks.
	BlocksDone, TotalBlocks int
}

// ParetoFrontStream is ParetoFront without the barrier: as blocks land
// (in whatever order leases complete), the coordinator folds them into
// a running skyline and streams snapshots to emit — a serving client
// watches the front tighten monotonically instead of waiting for the
// whole sweep. Snapshots coalesce under load (emit is never called
// concurrently, and a slow consumer sees fewer, fresher snapshots, not
// a backlog); every snapshot is the exact Pareto front of the blocks
// it covers, so each front is a superset-refinement of the last: a
// point leaves only when a newly landed point dominates it. The final
// snapshot — and the returned front — carry the exact float bits of
// ParetoFront over the same plan: cross-block folding eliminates only
// points the barrier's final pass would eliminate too (dominance is
// transitive), duplicates coexist, and slot order is restored before
// the final pass. An emit error cancels the run and is returned.
func (c *Coordinator) ParetoFrontStream(ctx context.Context, objectives []Objective, emit func(FrontSnapshot) error) ([]explore.Point, int, error) {
	if len(objectives) == 0 {
		return nil, 0, fmt.Errorf("shard: ParetoFrontStream needs at least one objective")
	}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		return nil, 0, err
	}
	nb := blockCount(c.plan.Combos(), c.cfg.BlockSize)
	fold := newFrontFold(len(objectives))
	var foldMu sync.Mutex
	blocksDone := 0
	// snapshot materializes the current front; callers hold foldMu.
	snapshot := func() FrontSnapshot {
		_, pts := fold.sorted()
		return FrontSnapshot{Front: explore.ParetoFront(pts, ms...), BlocksDone: blocksDone, TotalBlocks: nb}
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	// The sink runs under the protocol lock, so it only folds and nudges
	// the notifier; the notifier goroutine does the emitting. A buffered
	// single-slot channel coalesces bursts: a queued nudge covers every
	// block folded before the notifier gets to it.
	updates := make(chan struct{}, 1)
	var emitMu sync.Mutex
	var emitErr error
	lastDone := -1
	notifierDone := make(chan struct{})
	go func() {
		defer close(notifierDone)
		for range updates {
			foldMu.Lock()
			snap := snapshot()
			foldMu.Unlock()
			if err := emit(snap); err != nil {
				emitMu.Lock()
				emitErr = err
				emitMu.Unlock()
				cancelRun()
				return
			}
			emitMu.Lock()
			lastDone = snap.BlocksDone
			emitMu.Unlock()
		}
	}()

	sink := func(res BlockResult) {
		foldMu.Lock()
		for i, slot := range res.Slots {
			fold.add(slot, &res.Points[i], ms)
		}
		blocksDone++
		foldMu.Unlock()
		select {
		case updates <- struct{}{}:
		default:
		}
	}
	runErr := c.run(runCtx, ModeFront, objectives, sink)
	close(updates)
	<-notifierDone
	if emitErr != nil {
		return nil, 0, emitErr
	}
	if runErr != nil {
		return nil, 0, runErr
	}
	foldMu.Lock()
	snap := snapshot()
	foldMu.Unlock()
	// Guarantee the consumer saw the complete front exactly once at the
	// end (the notifier may already have delivered it).
	if lastDone != snap.BlocksDone {
		if err := emit(snap); err != nil {
			return nil, 0, err
		}
	}
	return snap.Front, c.plan.Combos(), nil
}

// leaseRec is the coordinator-side state of one outstanding lease.
type leaseRec struct {
	lease     Lease
	remaining map[int]bool // blocks not yet delivered under any lease
	expired   bool
	released  bool
	// satisfied marks a lease cancelled early because every block of
	// its span completed under other leases (the losing side of a
	// hedge race) — not a replica failure.
	satisfied bool
	// hedged marks a lease whose remaining blocks were speculatively
	// re-leased after it exceeded the straggler threshold.
	hedged     bool
	cancel     context.CancelFunc
	timer      *time.Timer
	hedgeTimer *time.Timer
}

// runState is the mutable state of one coordinator run. All fields are
// guarded by mu; cond broadcasts wake acquire waiters on every state
// change that could unblock them (requeue, completion, cancellation,
// membership changes).
type runState struct {
	c          *Coordinator
	ctx        context.Context
	mode       Mode
	objectives []Objective

	mu          sync.Mutex
	cond        *sync.Cond
	pending     []int  // sorted block ids awaiting a lease
	queued      []bool // mirrors pending membership (no double-queue)
	done        []bool
	doneCount   int
	nb          int
	nextSeq     uint64
	outstanding map[*leaseRec]struct{}
	hedgeBlocks map[int]uint64    // hedged block -> straggler lease seq
	sink        func(BlockResult) // called under mu; slots pre-validated
	complete    chan struct{}

	drivers     int
	driversGone bool
	driversDone chan struct{}
}

// spawnDriveLocked starts one lease goroutine for t on this run.
// Caller holds r.mu.
func (r *runState) spawnDriveLocked(ctx context.Context, t Transport) {
	r.drivers++
	go func() {
		defer func() {
			r.mu.Lock()
			r.drivers--
			if r.drivers == 0 && !r.driversGone {
				r.driversGone = true
				close(r.driversDone)
			}
			r.mu.Unlock()
		}()
		r.drive(ctx, t)
	}()
}

func (c *Coordinator) run(ctx context.Context, mode Mode, objectives []Objective, sink func(BlockResult)) error {
	combos := c.plan.Combos()
	nb := blockCount(combos, c.cfg.BlockSize)
	r := &runState{c: c, mode: mode, objectives: objectives, nb: nb, sink: sink,
		done: make([]bool, nb), queued: make([]bool, nb), pending: make([]int, nb),
		outstanding: make(map[*leaseRec]struct{}), hedgeBlocks: make(map[int]uint64),
		complete: make(chan struct{}), driversDone: make(chan struct{})}
	r.cond = sync.NewCond(&r.mu)
	for b := range r.pending {
		r.pending[b] = b
		r.queued[b] = true
	}
	if combos == 0 {
		return ctx.Err()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.ctx = runCtx
	// cond.Wait cannot watch a context; wake every waiter when the run
	// context dies so acquire loops can observe it.
	stopWake := context.AfterFunc(runCtx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stopWake()

	c.mu.Lock()
	snapshot := append([]Transport(nil), c.transports...)
	// A fresh run grants every quarantined replica a fresh probe
	// budget: retirement is per run, rejoining is the default.
	for _, tr := range c.trackers {
		tr.Reset()
	}
	c.active = r
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		if c.active == r {
			c.active = nil
		}
		c.mu.Unlock()
	}()

	r.mu.Lock()
	for _, t := range snapshot {
		r.spawnDriveLocked(runCtx, t)
	}
	if r.drivers == 0 {
		r.driversGone = true
		close(r.driversDone)
	}
	r.mu.Unlock()

	select {
	case <-r.complete:
		cancel() // release straggler leases promptly; their late results dedup
	case <-r.driversDone:
		// Every replica retired (or the run completed and they drained).
	case <-ctx.Done():
		cancel()
		return ctx.Err()
	}

	r.mu.Lock()
	finished := r.doneCount == r.nb
	remaining := append([]int(nil), r.pending...)
	r.mu.Unlock()
	if finished {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Total replica loss: degrade to the single-process walk of the
	// remaining blocks — same ComputeBlock seam, same bits — unless the
	// deployment asked for a hard error instead.
	if c.cfg.DisableFallback {
		return &ExhaustedError{Remaining: len(remaining), ReplicasLost: int(c.replicasLost.Load())}
	}
	c.fallbacksTotal.Add(1)
	if c.cfg.Logf != nil {
		c.cfg.Logf("shard: no replicas reachable, walking %d of %d blocks on the local fallback path", len(remaining), r.nb)
	}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		return err
	}
	for _, b := range remaining {
		if r.isDone(b) {
			continue // a straggler lease beat the fallback to it
		}
		res, err := computeBlock(ctx, c.plan, mode, ms, b, c.cfg.BlockSize)
		if err != nil {
			return err
		}
		r.mu.Lock()
		if !r.done[b] {
			r.sink(res)
			r.done[b] = true
			r.doneCount++
			c.blocksLocal.Add(1)
		} else {
			c.blocksDeduped.Add(1)
		}
		r.mu.Unlock()
	}
	return nil
}

func (r *runState) isDone(b int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done[b]
}

// drive is one replica's lease loop: acquire a span, execute it,
// release it, classify the outcome. The replica's shared health
// tracker gates admission — a quarantined replica sleeps out its probe
// interval and re-enters through a single half-open probe lease — and
// absorbs every outcome: successes feed the latency EWMA (the hedging
// baseline), transient failures and expiries back off exponentially
// with jitter and push the breaker toward a trip. ErrReplicaDown, an
// auth rejection, or a spent probe budget retires the replica for the
// run.
func (r *runState) drive(ctx context.Context, t Transport) {
	cfg := r.c.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + r.c.driveSeq.Add(1)*0x9e3779b9))
	tr := r.c.tracker(t)
	for {
		if r.c.isRemoved(t) {
			return
		}
		if tr.Exhausted() {
			// The quarantine probe budget is spent: retire the replica
			// for this run (counted once however many lease slots share
			// the tracker). The next run probes it afresh.
			if tr.Retire() {
				r.c.replicasLost.Add(1)
			}
			return
		}
		if ok, wait := tr.Allow(time.Now()); !ok {
			if wait <= 0 {
				wait = cfg.RetryBackoff
			}
			if !sleepCtx(ctx, wait) {
				return
			}
			continue
		}
		if dt, ok := t.(DrainingTransport); ok && dt.Draining() {
			// The replica announced a graceful drain (liveness pong or
			// refused lease): stop leasing to it. Draining is
			// unavailability, so it feeds the breaker — a peer that
			// drains forever quarantines and eventually retires instead
			// of stalling the run. This also resolves a claimed
			// half-open probe (as a failed one).
			r.c.drainSkips.Add(1)
			tr.Failure(time.Now())
			if !sleepCtx(ctx, backoff(rng, cfg, tr.ConsecutiveFailures())) {
				return
			}
			continue
		}
		lctx, lcancel := context.WithCancel(ctx)
		lease, rec, ok := r.acquire(ctx, t, lcancel)
		if !ok {
			lcancel()
			tr.AbandonProbe(time.Now())
			return
		}
		rec.timer = time.AfterFunc(cfg.LeaseTimeout, func() { r.expire(rec) })
		granted := time.Now()
		if !cfg.DisableHedging {
			r.mu.Lock()
			rec.hedgeTimer = time.AfterFunc(cfg.HedgeMin, func() { r.hedgeCheck(rec, granted) })
			r.mu.Unlock()
		}
		start := time.Now()
		err := t.Execute(lctx, lease, func(res BlockResult) error { return r.deliver(rec, res) })
		expired, satisfied := r.release(rec, lcancel)
		if ctx.Err() != nil {
			return
		}
		switch {
		case satisfied:
			// Every block of the span completed under other leases and
			// this one was cancelled early — the losing side of a hedge
			// race, neither a replica failure nor a clean latency
			// sample.
		case err == nil && !expired:
			lat := time.Since(start)
			tr.Success(time.Now(), lat)
			r.c.leaseEwma.Observe(lat)
		case errors.Is(err, ErrReplicaDown):
			r.c.replicasLost.Add(1)
			return
		case errors.Is(err, ErrAuthFailed):
			// Credentials do not heal mid-run; retrying would hammer
			// the replica with doomed registrations.
			r.c.replicasLost.Add(1)
			return
		default:
			// Expiry (with or without an error from the cancelled lease
			// context), or a transient Execute failure.
			if !expired {
				r.c.replicaFailures.Add(1)
			}
			tr.Failure(time.Now())
			if !sleepCtx(ctx, backoff(rng, cfg, tr.ConsecutiveFailures())) {
				return
			}
		}
	}
}

// backoff returns the delay before retry number `fails`: exponential
// from RetryBackoff, capped at BackoffMax, jittered uniformly over the
// top half of the interval.
func backoff(rng *rand.Rand, cfg Config, fails int) time.Duration {
	d := cfg.RetryBackoff
	for i := 1; i < fails && d < cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > cfg.BackoffMax {
		d = cfg.BackoffMax
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)/2+1))
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// acquire blocks until a block span is available (or the run is over,
// or t was removed from the replica set) and grants a lease over it.
// Pending blocks are kept sorted; a lease takes the longest contiguous
// run from the head, capped at LeaseBlocks, so re-leased stragglers
// coalesce back into spans. The returned rec carries cancel so a
// hedge-satisfied lease can be cancelled the moment its last block
// completes elsewhere.
func (r *runState) acquire(ctx context.Context, t Transport, cancel context.CancelFunc) (Lease, *leaseRec, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.doneCount == r.nb || ctx.Err() != nil || r.c.isRemoved(t) {
			return Lease{}, nil, false
		}
		// Drop blocks a straggler completed while they sat pending.
		live := r.pending[:0]
		for _, b := range r.pending {
			if !r.done[b] {
				live = append(live, b)
			} else {
				r.queued[b] = false
			}
		}
		r.pending = live
		if len(r.pending) > 0 {
			break
		}
		r.cond.Wait()
	}
	lo := r.pending[0]
	n := 1
	for n < len(r.pending) && n < r.c.cfg.LeaseBlocks && r.pending[n] == lo+n {
		n++
	}
	r.pending = append(r.pending[:0], r.pending[n:]...)
	r.nextSeq++
	lease := Lease{
		Key:        r.c.key,
		Seq:        r.nextSeq,
		Blocks:     BlockRange{Lo: lo, Hi: lo + n},
		BlockSize:  r.c.cfg.BlockSize,
		PlanPoints: r.c.plan.Combos(),
		Mode:       r.mode,
		Objectives: append([]Objective(nil), r.objectives...),
		Deadline:   time.Now().Add(r.c.cfg.LeaseTimeout),
	}
	rec := &leaseRec{lease: lease, remaining: make(map[int]bool, n), cancel: cancel}
	for b := lo; b < lo+n; b++ {
		rec.remaining[b] = true
		r.queued[b] = false
	}
	r.outstanding[rec] = struct{}{}
	r.c.leasesGranted.Add(1)
	return lease, rec, true
}

// expire fires when a lease's watchdog lapses with blocks outstanding:
// the incomplete blocks return to the pending queue for surviving
// replicas and the lease's context is cancelled. The original replica
// may still deliver them later — first write wins.
func (r *runState) expire(rec *leaseRec) {
	r.mu.Lock()
	if rec.released || rec.expired || rec.satisfied || len(rec.remaining) == 0 {
		r.mu.Unlock()
		return
	}
	rec.expired = true
	r.c.leasesExpired.Add(1)
	r.requeueLocked(rec)
	r.mu.Unlock()
	rec.cancel()
}

// hedgeCheck re-evaluates a live lease against the adaptive straggler
// threshold. The threshold needs a warm latency EWMA and a second
// transport, neither of which is guaranteed at grant time, so the
// timer re-arms (at HedgeMin granularity, bounded by the lease's own
// lifetime) until the lease either finishes or ages past the
// threshold and hedges.
func (r *runState) hedgeCheck(rec *leaseRec, granted time.Time) {
	d, ok := r.c.hedgeDelay()
	age := time.Since(granted)
	if ok && age >= d {
		r.hedge(rec)
		return
	}
	wait := r.c.cfg.HedgeMin
	if ok && d-age > wait {
		wait = d - age
	}
	r.mu.Lock()
	if !rec.released && !rec.expired && !rec.satisfied {
		rec.hedgeTimer = time.AfterFunc(wait, func() { r.hedgeCheck(rec, granted) })
	}
	r.mu.Unlock()
}

// hedge fires when a lease outlives the adaptive straggler threshold
// with blocks outstanding: the incomplete blocks are speculatively
// re-queued so an idle healthy replica picks them up while the
// original lease keeps running. Whichever computation delivers a block
// first wins (the bits are identical by construction); the losing
// lease is cancelled by deliver once its whole span is covered.
func (r *runState) hedge(rec *leaseRec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.released || rec.expired || rec.satisfied || r.doneCount == r.nb {
		return
	}
	n := 0
	for b := range rec.remaining {
		if !r.done[b] && !r.queued[b] {
			r.pending = append(r.pending, b)
			r.queued[b] = true
			r.hedgeBlocks[b] = rec.lease.Seq
			n++
		}
	}
	if n == 0 {
		return
	}
	rec.hedged = true
	sort.Ints(r.pending)
	r.c.hedgesFired.Add(1)
	r.cond.Broadcast()
}

// release retires a lease record when its Execute returns: any blocks
// it did not deliver (failure, crash, dropped results) are re-leased
// unless expiry already did so. Reports whether the lease had expired
// and whether it was hedge-satisfied (cancelled because its span
// completed under other leases).
func (r *runState) release(rec *leaseRec, cancel context.CancelFunc) (expired, satisfied bool) {
	r.mu.Lock()
	rec.released = true
	if rec.timer != nil {
		rec.timer.Stop()
	}
	if rec.hedgeTimer != nil {
		rec.hedgeTimer.Stop()
	}
	delete(r.outstanding, rec)
	expired = rec.expired
	satisfied = rec.satisfied
	if !expired {
		r.requeueLocked(rec)
	}
	r.mu.Unlock()
	cancel()
	return expired, satisfied
}

// requeueLocked returns rec's undelivered, still-incomplete blocks to
// the pending queue in sorted order and wakes acquire waiters. Blocks
// already queued (a hedge beat the requeue to them) are not queued
// twice.
func (r *runState) requeueLocked(rec *leaseRec) {
	n := 0
	for b := range rec.remaining {
		if !r.done[b] && !r.queued[b] {
			r.pending = append(r.pending, b)
			r.queued[b] = true
			n++
		}
	}
	if n == 0 {
		return
	}
	sort.Ints(r.pending)
	r.c.blocksRequeued.Add(uint64(n))
	r.cond.Broadcast()
}

// deliver accepts one block result from a lease: structural validation,
// first-write-wins dedup, result sink, completion detection, and the
// hedge-race bookkeeping — a block completing under a lease other than
// the straggler it was hedged away from counts as a hedge win, and any
// other outstanding lease left with nothing undelivered is cancelled
// early (the losing hedge). A malformed result fails the delivering
// Execute with ErrBadResult; the block stays incomplete and is
// re-leased.
func (r *runState) deliver(rec *leaseRec, res BlockResult) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := res.Block
	if b < 0 || b >= r.nb {
		return fmt.Errorf("%w: block %d outside the %d-block plan", ErrBadResult, b, r.nb)
	}
	if r.done[b] {
		r.c.blocksDeduped.Add(1)
		return nil
	}
	if len(res.Slots) != len(res.Points) {
		return fmt.Errorf("%w: block %d carries %d slots for %d points", ErrBadResult, b, len(res.Slots), len(res.Points))
	}
	lo, hi := blockSpan(b, r.c.cfg.BlockSize, r.c.plan.Combos())
	if r.mode == ModePoints && len(res.Points) != hi-lo {
		return fmt.Errorf("%w: block %d delivered %d of %d points", ErrBadResult, b, len(res.Points), hi-lo)
	}
	for _, slot := range res.Slots {
		if slot < 0 || slot >= r.c.plan.Combos() {
			return fmt.Errorf("%w: block %d slot %d outside the %d-point plan", ErrBadResult, b, slot, r.c.plan.Combos())
		}
	}
	r.sink(res)
	r.done[b] = true
	r.doneCount++
	delete(rec.remaining, b)
	r.c.blocksCompleted.Add(1)
	if seq, ok := r.hedgeBlocks[b]; ok {
		delete(r.hedgeBlocks, b)
		if rec.lease.Seq != seq {
			r.c.hedgesWon.Add(1)
		}
	}
	// Cancel losing hedges: any other live lease whose span is now
	// fully delivered burns replica cycles on blocks that are all done.
	for other := range r.outstanding {
		if other == rec || other.released || other.expired || other.satisfied {
			continue
		}
		delete(other.remaining, b)
		if len(other.remaining) == 0 {
			other.satisfied = true
			r.c.hedgesCancelled.Add(1)
			other.cancel()
		}
	}
	if r.doneCount == r.nb {
		close(r.complete)
		r.cond.Broadcast()
	}
	return nil
}

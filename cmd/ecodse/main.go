// Command ecodse runs the Section VI design-space-exploration workflows
// on a JSON design directory:
//
//	ecodse --design_dir testcases/GA102 --mode sweep    # node sweep + Pareto front
//	ecodse --design_dir testcases/GA102 --mode tornado  # sensitivity analysis
//	ecodse --design_dir testcases/GA102 --mode group    # block-grouping optimizer
//	ecodse --design_dir testcases/GA102 --mode mc       # Monte Carlo uncertainty
//
// The sweep mode needs a node_list.txt in the design directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ecochip/internal/config"
	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/report"
	"ecochip/internal/sensitivity"
	"ecochip/internal/tech"
	"ecochip/internal/uncertainty"
)

func main() {
	designDir := flag.String("design_dir", "", "directory with architecture.json etc. (required)")
	mode := flag.String("mode", "sweep", "sweep | tornado | group | mc")
	rel := flag.Float64("rel", 0.25, "tornado: relative perturbation")
	samples := flag.Int("samples", 500, "mc: Monte Carlo sample count")
	seed := flag.Int64("seed", 2024, "mc: random seed")
	flag.Parse()
	if *designDir == "" {
		fmt.Fprintln(os.Stderr, "usage: ecodse --design_dir <dir> --mode sweep|tornado|group|mc")
		os.Exit(2)
	}
	if err := run(*designDir, *mode, *rel, *samples, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ecodse:", err)
		os.Exit(1)
	}
}

func run(designDir, mode string, rel float64, samples int, seed int64, w io.Writer) error {
	db := tech.Default()
	system, nodes, err := config.LoadSystem(designDir, db)
	if err != nil {
		return err
	}
	switch mode {
	case "sweep":
		return runSweep(w, system, db, nodes)
	case "tornado":
		return runTornado(w, system, db, rel)
	case "group":
		return runGroup(w, system, db)
	case "mc":
		return runMC(w, system, db, samples, seed)
	}
	return fmt.Errorf("unknown mode %q", mode)
}

func runSweep(w io.Writer, system *core.System, db *tech.DB, nodes []int) error {
	if len(nodes) == 0 {
		return fmt.Errorf("sweep mode needs node_list.txt in the design directory")
	}
	points, err := explore.NodeSweep(system, db, nodes, cost.DefaultParams())
	if err != nil {
		return err
	}
	front := explore.ParetoFront(points, explore.ByEmbodied, explore.ByCost)
	t := report.New(fmt.Sprintf("carbon-cost Pareto front (%d of %d candidates)", len(front), len(points)), "",
		"nodes", "cemb_kg", "ctot_kg", "cost_usd", "area_mm2")
	for _, p := range front {
		t.AddRow(p.Label, report.F(p.EmbodiedKg), report.F(p.TotalKg), report.F(p.CostUSD), report.F(p.PackageAreaMM2))
	}
	return t.Fprint(w)
}

func runTornado(w io.Writer, system *core.System, db *tech.DB, rel float64) error {
	results, err := sensitivity.Tornado(system, db, rel)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("sensitivity tornado (+/-%.0f%%)", rel*100), "",
		"factor", "low_kg", "base_kg", "high_kg", "swing_kg")
	for _, r := range results {
		t.AddRow(r.Factor, report.F(r.LowKg), report.F(r.BaseKg), report.F(r.HighKg), report.F(r.Swing()))
	}
	return t.Fprint(w)
}

func runGroup(w io.Writer, system *core.System, db *tech.DB) error {
	plan, err := explore.Disaggregate(system, db)
	if err != nil {
		return err
	}
	t := report.New("block grouping plan", "", "group", "blocks")
	for i, g := range plan.Groups {
		t.AddRow(fmt.Sprintf("chiplet%d", i), fmt.Sprint(g))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "embodied carbon: %.2f kg (from %.2f kg, %d merges)\n",
		plan.EmbodiedKg, plan.InitialKg, plan.Steps)
	return err
}

func runMC(w io.Writer, system *core.System, db *tech.DB, samples int, seed int64) error {
	d, err := uncertainty.Run(system, db, uncertainty.DefaultSpread(), samples, seed)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("embodied-carbon uncertainty (%d samples, seed %d)", samples, seed), "",
		"p5_kg", "p50_kg", "mean_kg", "p95_kg", "relative_spread")
	t.AddRow(report.F(d.P5Kg), report.F(d.P50Kg), report.F(d.MeanKg), report.F(d.P95Kg), report.F(d.RelativeSpread()))
	return t.Fprint(w)
}

package core

import (
	"testing"

	"ecochip/internal/pkgcarbon"
)

func BenchmarkEvaluateMonolith(b *testing.B) {
	s := monolith(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(db()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateThreeChiplet(b *testing.B) {
	s := threeChiplet(7, 14, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(db()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateInterposer(b *testing.B) {
	s := threeChiplet(7, 14, 10)
	s.Packaging = pkgcarbon.DefaultParams(pkgcarbon.ActiveInterposer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(db()); err != nil {
			b.Fatal(err)
		}
	}
}

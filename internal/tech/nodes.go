package tech

import "sync"

// defaultNodes is the built-in calibration of the Table I parameter ranges
// across the seven nodes the paper exercises (7 nm chiplets through 65 nm
// packaging interposers). The trends encoded here are the ones the paper's
// analysis depends on:
//
//   - defect density falls as nodes mature (Fig. 6a: 0.07-0.3 /cm^2),
//   - logic density scales steeply, SRAM density lags, analog is nearly
//     flat (Section III-C(1)),
//   - manufacturing energy per area (EPA) and gas CFP rise with advanced
//     nodes because of additional FEOL/BEOL and lithography steps,
//   - equipment-efficiency derate eta_eq is lower for mature nodes,
//   - EDA productivity eta_EDA is higher (design is faster) for mature
//     nodes,
//   - Vdd rises for older nodes,
//   - per-layer patterning energies (EPLA) fall for older packaging nodes.
//
// Wafer costs approximate published 300 mm foundry pricing and are only
// consumed by the dollar-cost model.
var defaultNodes = []Node{
	{
		Nm:            7,
		DefectDensity: 0.20,
		Density:       map[DesignType]float64{Logic: 95, Memory: 145, Analog: 9.0},
		EPA:           3.5, GasCFP: 0.40, MaterialCFP: 0.5,
		EquipEfficiency: 1.00, EDAProductivity: 0.55,
		Vdd: 0.70, EPLARDL: 0.200, EPLABridge: 0.350,
		WaferCostUSD: 9346,
	},
	{
		Nm:            10,
		DefectDensity: 0.15,
		Density:       map[DesignType]float64{Logic: 61, Memory: 125, Analog: 8.5},
		EPA:           2.75, GasCFP: 0.35, MaterialCFP: 0.5,
		EquipEfficiency: 0.95, EDAProductivity: 0.62,
		Vdd: 0.75, EPLARDL: 0.170, EPLABridge: 0.300,
		WaferCostUSD: 5992,
	},
	{
		Nm:            14,
		DefectDensity: 0.12,
		Density:       map[DesignType]float64{Logic: 44, Memory: 110, Analog: 6.5},
		EPA:           2.25, GasCFP: 0.30, MaterialCFP: 0.5,
		EquipEfficiency: 0.90, EDAProductivity: 0.70,
		Vdd: 0.80, EPLARDL: 0.150, EPLABridge: 0.260,
		WaferCostUSD: 3984,
	},
	{
		Nm:            22,
		DefectDensity: 0.10,
		Density:       map[DesignType]float64{Logic: 20, Memory: 80, Analog: 5.8},
		EPA:           1.70, GasCFP: 0.25, MaterialCFP: 0.5,
		EquipEfficiency: 0.85, EDAProductivity: 0.78,
		Vdd: 0.90, EPLARDL: 0.120, EPLABridge: 0.210,
		WaferCostUSD: 3057,
	},
	{
		Nm:            28,
		DefectDensity: 0.09,
		Density:       map[DesignType]float64{Logic: 14, Memory: 60, Analog: 5.3},
		EPA:           1.40, GasCFP: 0.20, MaterialCFP: 0.5,
		EquipEfficiency: 0.80, EDAProductivity: 0.84,
		Vdd: 1.00, EPLARDL: 0.100, EPLABridge: 0.180,
		WaferCostUSD: 2514,
	},
	{
		Nm:            40,
		DefectDensity: 0.08,
		Density:       map[DesignType]float64{Logic: 8.2, Memory: 38, Analog: 4.6},
		EPA:           1.10, GasCFP: 0.15, MaterialCFP: 0.5,
		EquipEfficiency: 0.72, EDAProductivity: 0.92,
		Vdd: 1.10, EPLARDL: 0.080, EPLABridge: 0.140,
		WaferCostUSD: 2274,
	},
	{
		Nm:            65,
		DefectDensity: 0.07,
		Density:       map[DesignType]float64{Logic: 5.1, Memory: 20, Analog: 4.0},
		EPA:           0.80, GasCFP: 0.10, MaterialCFP: 0.5,
		EquipEfficiency: 0.60, EDAProductivity: 1.00,
		Vdd: 1.20, EPLARDL: 0.050, EPLABridge: 0.100,
		WaferCostUSD: 1937,
	},
}

var (
	defaultDBOnce sync.Once
	defaultDB     *DB
)

// Default returns the built-in node database. The returned DB is shared
// and must be treated as read-only.
func Default() *DB {
	defaultDBOnce.Do(func() {
		db, err := NewDB(defaultNodes)
		if err != nil {
			panic("tech: built-in node table invalid: " + err.Error())
		}
		defaultDB = db
	})
	return defaultDB
}

// DefaultSizes returns the node sizes of the built-in database in
// ascending order.
func DefaultSizes() []int { return Default().Sizes() }

package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/floorplan"
	"ecochip/internal/kernel"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// This file implements the grouping half of SoC-to-chiplet
// disaggregation (Section VI): given a system described at fine block
// granularity, decide which blocks should share a die. Merging blocks
// saves packaging overhead and amortizes per-die waste, but grows die
// area (hurting yield) and forces every member onto the most advanced
// node in the group. The optimizer runs a deterministic greedy merge:
// starting from the fully disaggregated system, it repeatedly applies
// the pairwise merge that lowers embodied carbon the most, stopping when
// no merge helps.
//
// The search runs end-to-end on retained state — one step-spanning
// compiled plan for the whole greedy loop:
//
//   - Merged-die cells are memoized per stable GROUP-PAIR id across
//     steps: a candidate pair that survives a step unchanged re-reads
//     its cell from a plain map instead of re-entering the mutex-guarded
//     engine cache (and re-paying the merge's name concatenation).
//     Missing entries are filled serially before each step's parallel
//     fan-out, so candidate evaluation itself never touches a lock.
//   - The per-step unchanged-chiplet cells and communication design
//     shares are tabulated the same way.
//   - Worker scratches (the packaging estimator with its retained
//     floorplan tree, per-node communication memo and per-area package
//     memo) come from a kernel.ScratchPool that spans the whole search,
//     so engine.RunScratch batches no longer rebuild them per step; the
//     estimator's name-keyed floorplan diff then splices each
//     candidate's surviving subtrees instead of re-planning.
//
// The greedy trajectory stays bit-identical to the evaluate-per-candidate
// reference (DisaggregateReference) because every memoized value is a
// pure function of the same inputs the per-candidate code computed, and
// the reduction order is unchanged (guarded by the equivalence suite).

// Plan is the result of a disaggregation search.
type Plan struct {
	// System is the optimized system (chiplets are merged groups).
	System *core.System
	// Groups maps each result chiplet to the names of the original
	// blocks it absorbed.
	Groups [][]string
	// EmbodiedKg is the optimized embodied carbon.
	EmbodiedKg float64
	// InitialKg is the fully disaggregated starting point's carbon.
	InitialKg float64
	// Steps is the number of merges applied.
	Steps int
	// Stats counts the work the compiled search performed (zero for
	// DisaggregateReference runs).
	Stats DisaggregateStats
}

// DisaggregateStats counts the work of one compiled Disaggregate
// search: the greedy steps and candidate evaluations, the per-search
// merged-cell memo traffic, the pooled-scratch reuse, and the folded
// incremental-floorplan counters (whose DiffFastPath / Splices /
// DiffFallbacks report the name-keyed diff serving the candidates).
type DisaggregateStats struct {
	// Steps is the number of accepted merges; Candidates the number of
	// pairwise merge evaluations across all steps.
	Steps, Candidates uint64
	// MergedCellHits / MergedCellMisses count the per-search merged-die
	// cell memo: a hit skips the merge construction and die sub-models
	// for a candidate pair carried over from an earlier step.
	MergedCellHits, MergedCellMisses uint64
	// ScratchReuses counts engine batches served by a pooled worker
	// scratch (warm estimator memos and floorplan trees) instead of a
	// fresh build.
	ScratchReuses uint64
	// Floorplan folds the pooled estimators' retained-tree counters.
	Floorplan floorplan.TreeStats
}

// String renders the summary ecodse prints under -progress (the single
// source of the format, like floorplan.TreeStats.String).
func (s DisaggregateStats) String() string {
	return fmt.Sprintf("disaggregate plan: %d steps, %d candidates, merged-cell memo %d hits / %d misses, %d pooled-scratch reuses\n%s",
		s.Steps, s.Candidates, s.MergedCellHits, s.MergedCellMisses, s.ScratchReuses, s.Floorplan)
}

// mergeable reports whether two chiplets may share a die: same scaling
// type (a die is floorplanned per class here) and neither is a reused
// hard IP (merging would forfeit its pre-designed status).
func mergeable(a, b core.Chiplet) bool {
	return a.Type == b.Type && !a.Reused && !b.Reused
}

// merge combines two chiplets: transistor budgets add, the group settles
// on the most advanced (smallest) node so every member can be built.
func merge(a, b core.Chiplet) core.Chiplet {
	node := a.NodeNm
	if b.NodeNm < node {
		node = b.NodeNm
	}
	parts := a.ManufacturedParts
	if b.ManufacturedParts < parts || parts == 0 {
		parts = b.ManufacturedParts
	}
	return core.Chiplet{
		Name:              a.Name + "+" + b.Name,
		Type:              a.Type,
		Transistors:       a.Transistors + b.Transistors,
		NodeNm:            node,
		ManufacturedParts: parts,
	}
}

// Disaggregate runs the greedy merge search on the system's blocks and
// returns the best grouping found.
func Disaggregate(base *core.System, db *tech.DB) (*Plan, error) {
	return DisaggregateCtx(context.Background(), base, db)
}

// mergeCandidate is one (i, j) pairwise merge considered in a greedy
// step, with its evaluated embodied carbon and the step-table entries
// it reads: the memoized merged-die entry (an arena index — the arena
// may grow while the step compiles) and the communication design share
// of its survivor set.
type mergeCandidate struct {
	i, j    int
	cellIdx int32 // index+1 into disaggState.mergedEntries, 0 = none
	share   float64
}

// mergedCell is one memoized merged-die entry: the merged chiplet (its
// name string built once) and its die cell.
type mergedCell struct {
	ch   core.Chiplet
	cell core.DieCell
}

// candScratch is one worker's per-batch state: the run's memo hooks,
// the pooled kernel arena (packaging estimator + descriptor buffer) and
// whether the arena's floorplan tree has been primed with this step's
// base die set (candidates then fork against the pinned base).
type candScratch struct {
	h      *core.Hooks
	sc     *kernel.Scratch
	primed bool
}

// disaggState is the step-spanning compiled state of one search. The
// cell memos are flat arenas indexed by the dense group ids (initial
// groups take 0..nc-1, each accepted merge mints the next id, and a
// search of nc blocks can mint at most nc-1 more), not maps: candidate
// tabulation is the per-step serial section, and for the handful of
// groups a search holds, array indexing beats hashing — and keeps the
// whole search's allocation profile flat.
type disaggState struct {
	db   *tech.DB
	pool *kernel.ScratchPool

	nextID int
	maxID  int   // bound on minted ids: 2*nc
	ids    []int // current chiplet position -> stable group id

	singleCells   []core.DieCell // group id -> unchanged-die cell
	singleOK      []bool
	pairIdx       []int32 // a*maxID+b -> index+1 into mergedEntries, 0 = none
	mergedEntries []mergedCell
	commShares    map[commKey]float64 // (first survivor node, dies) -> design share
	stats         DisaggregateStats

	// mergedMfg..mergedNode are the struct-of-arrays columns of the
	// merged-cell arena's hot fields, appended in step with
	// mergedEntries: the per-candidate fold reads its merged term and
	// packaging descriptor from these instead of dragging the whole
	// mergedCell record through the cache.
	mergedMfg, mergedDes, mergedNre, mergedArea []float64
	mergedNode                                  []*tech.Node

	// Per-step buffers reused across the greedy loop. stepMfg..stepArea
	// are four dense per-position columns packed in one backing array
	// (stepCols), gathered from the unchanged-die cells by compileStep;
	// every candidate evaluation of the step folds its survivor terms
	// from them in position order — the same additions in the same order
	// as a DieCell-row walk, over contiguous memory.
	stepCols                            []float64
	stepMfg, stepDes, stepNre, stepArea []float64
	stepNode                            []*tech.Node
	pairs                               []mergeCandidate
}

// commKey keys the communication design share, which depends on the
// first surviving chiplet's node and the candidate's die count.
type commKey struct {
	nodeNm int
	dies   int
}

// DisaggregateCtx is Disaggregate with cancellation and engine options.
// Each greedy step evaluates all O(n^2) candidate merges through the
// batch engine on the search's step-spanning compiled state (see the
// file comment); one memo cache is shared across all steps because
// successive steps re-price mostly unchanged die sets. The greedy
// trajectory is bit-identical to DisaggregateReference.
func DisaggregateCtx(ctx context.Context, base *core.System, db *tech.DB, opts ...engine.Option) (*Plan, error) {
	ds, err := CompileDisaggregate(base, db)
	if err != nil {
		return nil, err
	}
	return ds.Run(ctx, opts...)
}

// DisaggregateSearch is a compiled, retained disaggregation search for
// one (base system, database) pair — DisaggregateCtx split into a
// compile and a run so the serving layer can keep the search warm in a
// plan cache (keyed by DisaggregateKey). Everything the greedy loop
// tabulates is retained across runs: the merged-die and unchanged-die
// cell memos, the communication-share memo, the engine cache behind the
// full evaluations, and the pooled worker scratches with their warm
// floorplan trees. The trajectory is deterministic in (base, db), so a
// warm re-run revisits exactly the memoized groups and pairs — it
// re-prices almost nothing — and returns a Plan bit-identical to the
// first run (and to a cold DisaggregateCtx), which the parity suite
// pins. Runs serialize on the retained state; concurrent callers queue.
type DisaggregateSearch struct {
	base  *core.System // private clone; runs clone it again to mutate
	db    *tech.DB
	cache *engine.Cache
	mu    sync.Mutex
	st    *disaggState
}

// CompileDisaggregate validates the system and builds the search's
// retained state without running it.
func CompileDisaggregate(base *core.System, db *tech.DB) (*DisaggregateSearch, error) {
	if err := base.Validate(db); err != nil {
		return nil, err
	}
	if base.Monolithic {
		return nil, fmt.Errorf("explore: disaggregation needs a chiplet-form system, not a monolith")
	}
	template := cloneSystem(base)
	nc := len(template.Chiplets)
	st := &disaggState{
		db:          db,
		nextID:      nc,
		maxID:       2 * nc,
		ids:         make([]int, nc),
		singleCells: make([]core.DieCell, 2*nc),
		singleOK:    make([]bool, 2*nc),
		pairIdx:     make([]int32, 4*nc*nc),
		commShares:  make(map[commKey]float64),
		// Presized for the common trajectory: roughly half the pair
		// space is mergeable up front plus one fresh pair per later
		// step; the arena grows past this without harm.
		mergedEntries: make([]mergedCell, 0, nc*(nc-1)/4+nc),
	}
	pkg := template.Packaging
	st.pool = kernel.NewScratchPool(func() (*kernel.Scratch, error) {
		return kernel.NewSweepScratch(&pkg, nc)
	})
	return &DisaggregateSearch{
		base: template,
		db:   db,
		// Share one cache across every step — and across runs — unless a
		// run's caller provides their own engine configuration. The cache
		// backs the full evaluations (the starting point and the final
		// 2 -> 1 merge); the per-step cell tabulation runs on the
		// search's own flat memos instead, which dedup at least as well
		// without the hashed-key layer.
		cache: engine.NewCache(),
		st:    st,
	}, nil
}

// Stats snapshots the search's work counters. They accumulate across
// runs of a retained search (Steps reflects the latest run; the memo
// and scratch counters are cumulative, so a warm re-run shows up as
// pure MergedCellHits growth).
func (ds *DisaggregateSearch) Stats() DisaggregateStats {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	s := ds.st.stats
	s.ScratchReuses = ds.st.pool.Reuses()
	s.Floorplan = ds.st.pool.FloorplanStats()
	return s
}

// Run executes the greedy search on the retained state. The group-id
// trajectory is deterministic, so the per-run reset touches only the
// position→id map and the id counter: every memo keyed by group id or
// pair stays valid because a re-run mints the same ids for the same
// groups in the same order (an aborted run leaves only a prefix of that
// same assignment behind).
func (ds *DisaggregateSearch) Run(ctx context.Context, opts ...engine.Option) (*Plan, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	st := ds.st
	current := cloneSystem(ds.base)
	nc := len(current.Chiplets)
	st.nextID = nc
	if cap(st.ids) < nc {
		st.ids = make([]int, nc)
	}
	st.ids = st.ids[:nc]
	for i := range st.ids {
		st.ids[i] = i
	}
	opts = append([]engine.Option{engine.WithCache(ds.cache)}, opts...)

	groups := make([][]string, nc)
	for i, c := range current.Chiplets {
		groups[i] = []string{c.Name}
	}
	currentKg, err := st.baseEmbodied(current)
	if err != nil {
		return nil, err
	}
	initialKg := currentKg

	steps := 0
	for len(current.Chiplets) > 1 {
		pairs, err := st.compileStep(current)
		if err != nil {
			return nil, err
		}
		evaluated, err := engine.RunScratchRelease(ctx, len(pairs),
			func(h *core.Hooks) (*candScratch, error) {
				sc, err := st.pool.Get()
				if err != nil {
					return nil, err
				}
				return &candScratch{h: h, sc: sc}, nil
			},
			func(cs *candScratch) { st.pool.Put(cs.sc) },
			func(_ context.Context, k int, cs *candScratch) (float64, error) {
				return st.evalMergeCandidate(current, &pairs[k], cs)
			}, opts...)
		if err != nil {
			return nil, err
		}
		st.stats.Candidates += uint64(len(pairs))
		// The pick is a serial scan in (i, j) order, so parallel
		// candidate evaluation reproduces the serial search exactly:
		// only a strictly lower carbon displaces the incumbent.
		bestKg := currentKg
		bestI, bestJ := -1, -1
		for k, kg := range evaluated {
			if kg < bestKg {
				bestKg, bestI, bestJ = kg, pairs[k].i, pairs[k].j
			}
		}
		if bestI < 0 {
			break // no merge improves
		}
		mergedGroup := append(append([]string{}, groups[bestI]...), groups[bestJ]...)
		var nextGroups [][]string
		for k := range groups {
			if k != bestI && k != bestJ {
				nextGroups = append(nextGroups, groups[k])
			}
		}
		groups = append(nextGroups, mergedGroup)
		st.applyMergeIDs(current, bestI, bestJ)
		// current is privately owned (cloned from base), so the accepted
		// merge mutates it in place instead of cloning per step.
		applyMergeInPlace(current, bestI, bestJ)
		currentKg = bestKg
		steps++
	}

	for _, g := range groups {
		sort.Strings(g)
	}
	sort.Slice(groups, func(i, j int) bool {
		return strings.Join(groups[i], ",") < strings.Join(groups[j], ",")
	})
	st.stats.Steps = uint64(steps)
	st.stats.ScratchReuses = st.pool.Reuses()
	st.stats.Floorplan = st.pool.FloorplanStats()
	return &Plan{
		System:     current,
		Groups:     groups,
		EmbodiedKg: currentKg,
		InitialKg:  initialKg,
		Steps:      steps,
		Stats:      st.stats,
	}, nil
}

// compileStep tabulates everything the step's parallel candidate
// evaluations read: the unchanged-die metric columns of the current
// chiplets, the merged-die cell of every mergeable pair (served from
// the search-level memo; only pairs born in the previous step's merge
// are computed), and the communication design share of every distinct
// (first-survivor node, die count) a candidate can produce. All of it
// runs serially through the run's memo hooks, so the fan-out itself
// touches no locks.
func (st *disaggState) compileStep(current *core.System) ([]mergeCandidate, error) {
	n := len(current.Chiplets)
	if cap(st.stepNode) < n {
		st.stepCols = make([]float64, 4*n)
		st.stepMfg = st.stepCols[0*n : 1*n]
		st.stepDes = st.stepCols[1*n : 2*n]
		st.stepNre = st.stepCols[2*n : 3*n]
		st.stepArea = st.stepCols[3*n : 4*n]
		st.stepNode = make([]*tech.Node, n)
	}
	stride := cap(st.stepNode)
	st.stepMfg = st.stepCols[0*stride : 0*stride+n]
	st.stepDes = st.stepCols[1*stride : 1*stride+n]
	st.stepNre = st.stepCols[2*stride : 2*stride+n]
	st.stepArea = st.stepCols[3*stride : 3*stride+n]
	st.stepNode = st.stepNode[:n]
	for i, c := range current.Chiplets {
		id := st.ids[i]
		if !st.singleOK[id] {
			cell, err := current.CellFor(st.db, c, c.NodeNm, nil)
			if err != nil {
				return nil, err
			}
			st.singleCells[id] = cell
			st.singleOK[id] = true
		}
		cell := &st.singleCells[id]
		st.stepMfg[i] = cell.MfgKg
		st.stepDes[i] = cell.DesignKgAmortized
		st.stepNre[i] = cell.NREKg
		st.stepArea[i] = cell.AreaMM2
		st.stepNode[i] = cell.Node
	}

	pairs := st.pairs[:0]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !mergeable(current.Chiplets[i], current.Chiplets[j]) {
				continue
			}
			c := mergeCandidate{i: i, j: j}
			if n > 2 {
				// The final 2 -> 1 merge evaluates down the monolith
				// reference route and never reads a merged-die cell (a
				// whole-system die can violate per-die domain checks the
				// monolith path does not apply).
				key := st.ids[i]*st.maxID + st.ids[j]
				idx := st.pairIdx[key]
				if idx > 0 {
					st.stats.MergedCellHits++
				} else {
					st.stats.MergedCellMisses++
					merged := merge(current.Chiplets[i], current.Chiplets[j])
					cell, err := current.CellFor(st.db, merged, merged.NodeNm, nil)
					if err != nil {
						return nil, err
					}
					st.mergedEntries = append(st.mergedEntries, mergedCell{ch: merged, cell: cell})
					st.mergedMfg = append(st.mergedMfg, cell.MfgKg)
					st.mergedDes = append(st.mergedDes, cell.DesignKgAmortized)
					st.mergedNre = append(st.mergedNre, cell.NREKg)
					st.mergedArea = append(st.mergedArea, cell.AreaMM2)
					st.mergedNode = append(st.mergedNode, cell.Node)
					idx = int32(len(st.mergedEntries))
					st.pairIdx[key] = idx
				}
				c.cellIdx = idx
				// The candidate's communication share depends on its
				// first surviving chiplet's node and die count.
				first := 0
				if i == 0 {
					first = 1
					if j == 1 {
						first = 2
					}
				}
				ck := commKey{nodeNm: current.Chiplets[first].NodeNm, dies: n - 1}
				share, ok := st.commShares[ck]
				if !ok {
					var err error
					share, err = current.CommDesignShareKg(st.db, ck.nodeNm, ck.dies, nil)
					if err != nil {
						return nil, err
					}
					st.commShares[ck] = share
				}
				c.share = share
			}
			pairs = append(pairs, c)
		}
	}
	st.pairs = pairs
	return pairs, nil
}

// baseEmbodied evaluates the starting point's embodied carbon on the
// same cell-reduction seam the candidates use — tabulated die cells,
// a scratch packaging estimate (which doubles as the first step's base
// prime) and the communication design share — instead of a full
// System.Evaluate. The reduction mirrors evaluateHI's accumulation
// order over the full chiplet set, so the result carries the exact
// float bits of current.Evaluate(db).EmbodiedKg() (the randomized
// equivalence suite pins InitialKg against the reference). Degenerate
// single-chiplet systems take the full evaluation.
func (st *disaggState) baseEmbodied(current *core.System) (float64, error) {
	n := len(current.Chiplets)
	if n < 2 {
		return embodied(current, st.db)
	}
	sc, err := st.pool.Get()
	if err != nil {
		return 0, err
	}
	defer st.pool.Put(sc)
	var mfgKg, desKg, nreKg float64
	ch := sc.ResizeChiplets(n)
	for i, c := range current.Chiplets {
		id := st.ids[i]
		if !st.singleOK[id] {
			cell, err := current.CellFor(st.db, c, c.NodeNm, nil)
			if err != nil {
				return 0, err
			}
			st.singleCells[id] = cell
			st.singleOK[id] = true
		}
		cell := &st.singleCells[id]
		mfgKg += cell.MfgKg
		desKg += cell.DesignKgAmortized
		nreKg += cell.NREKg
		ch[i] = pkgcarbon.Chiplet{Name: c.Name, AreaMM2: cell.AreaMM2, Node: cell.Node}
	}
	pkg, err := sc.EstimatePackage()
	if err != nil {
		return 0, err
	}
	share, err := current.CommDesignShareKg(st.db, current.Chiplets[0].NodeNm, n, nil)
	if err != nil {
		return 0, err
	}
	desKg += share
	return mfgKg + desKg + pkg.TotalKg() + nreKg, nil
}

// applyMergeIDs mirrors applyMerge's chiplet move on the stable group
// ids and seeds the merged group's unchanged-die cell for the next step
// (the memoized merged cell IS that cell: same chiplet, same node).
func (st *disaggState) applyMergeIDs(current *core.System, i, j int) {
	idx := st.pairIdx[st.ids[i]*st.maxID+st.ids[j]]
	var ids []int
	for k, id := range st.ids {
		if k != i && k != j {
			ids = append(ids, id)
		}
	}
	newID := st.nextID
	st.nextID++
	st.ids = append(ids, newID)
	if idx > 0 {
		st.singleCells[newID] = st.mergedEntries[idx-1].cell
		st.singleOK[newID] = true
	}
}

// evalMergeCandidate returns the embodied carbon of s with chiplets i
// and j merged (i < j), without materializing the candidate system. The
// candidate's chiplet order is that of applyMerge — survivors in order,
// the merged die last — and the reduction follows evaluateHI's
// accumulation order exactly, so the result is bit-identical to
// applyMerge(s, i, j).EvaluateWith(db, h).EmbodiedKg(). The survivor
// terms fold from the step's dense metric columns and the merged term
// from the arena columns: the same additions in the same order as the
// old DieCell-record walk, bit for bit.
func (st *disaggState) evalMergeCandidate(s *core.System, c *mergeCandidate, cs *candScratch) (float64, error) {
	if len(s.Chiplets) == 2 {
		// The final merge collapses to a single die, which evaluates
		// down the monolith path; take the reference route for it.
		rep, err := applyMerge(s, c.i, c.j).EvaluateWith(st.db, cs.h)
		if err != nil {
			return 0, err
		}
		return rep.EmbodiedKg(), nil
	}
	fork := cs.sc.MergeForkable()
	if fork && !cs.primed {
		// Pin the step's base die set in the estimator once; every
		// candidate of the step then forks against the warm tree,
		// never materializing its descriptor set.
		base := cs.sc.ResizeChiplets(len(s.Chiplets))
		for k := range st.stepArea {
			base[k] = pkgcarbon.Chiplet{Name: s.Chiplets[k].Name, AreaMM2: st.stepArea[k], Node: st.stepNode[k]}
		}
		if err := cs.sc.PrimeMergeBase(); err != nil {
			return 0, err
		}
		cs.primed = true
	}
	var mfgKg, desKg, nreKg float64
	var pkgCh []pkgcarbon.Chiplet
	if !fork {
		pkgCh = cs.sc.ResizeChiplets(len(s.Chiplets) - 1)
	}
	idx := 0
	stepDes := st.stepDes[:len(st.stepMfg)]
	stepNre := st.stepNre[:len(st.stepMfg)]
	for k, m := range st.stepMfg {
		if k == c.i || k == c.j {
			continue
		}
		mfgKg += m
		desKg += stepDes[k]
		nreKg += stepNre[k]
		if !fork {
			pkgCh[idx] = pkgcarbon.Chiplet{Name: s.Chiplets[k].Name, AreaMM2: st.stepArea[k], Node: st.stepNode[k]}
			idx++
		}
	}
	m := int(c.cellIdx - 1)
	mfgKg += st.mergedMfg[m]
	desKg += st.mergedDes[m]
	nreKg += st.mergedNre[m]

	var pkg *pkgcarbon.Result
	var err error
	mergedCh := pkgcarbon.Chiplet{Name: st.mergedEntries[m].ch.Name, AreaMM2: st.mergedArea[m], Node: st.mergedNode[m]}
	if fork {
		pkg, err = cs.sc.EstimatePackageMergeFork(c.i, c.j, mergedCh)
	} else {
		pkgCh[idx] = mergedCh
		pkg, err = cs.sc.EstimatePackage()
	}
	if err != nil {
		return 0, err
	}
	desKg += c.share
	return mfgKg + desKg + pkg.TotalKg() + nreKg, nil
}

// DisaggregateReference is the evaluate-per-candidate greedy search the
// compiled step plan replaced, kept as its oracle and baseline: every
// candidate merge materializes the merged system and runs a full
// evaluation. It reproduces DisaggregateCtx's trajectory bit for bit
// (pinned by the randomized equivalence suite) at far more work per
// candidate, and its Plan carries zero Stats.
func DisaggregateReference(ctx context.Context, base *core.System, db *tech.DB) (*Plan, error) {
	if err := base.Validate(db); err != nil {
		return nil, err
	}
	if base.Monolithic {
		return nil, fmt.Errorf("explore: disaggregation needs a chiplet-form system, not a monolith")
	}
	current := cloneSystem(base)
	groups := make([][]string, len(current.Chiplets))
	for i, c := range current.Chiplets {
		groups[i] = []string{c.Name}
	}
	currentKg, err := embodied(current, db)
	if err != nil {
		return nil, err
	}
	initialKg := currentKg

	steps := 0
	for len(current.Chiplets) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestKg := currentKg
		bestI, bestJ := -1, -1
		for i := 0; i < len(current.Chiplets); i++ {
			for j := i + 1; j < len(current.Chiplets); j++ {
				if !mergeable(current.Chiplets[i], current.Chiplets[j]) {
					continue
				}
				rep, err := applyMerge(current, i, j).Evaluate(db)
				if err != nil {
					return nil, err
				}
				if kg := rep.EmbodiedKg(); kg < bestKg {
					bestKg, bestI, bestJ = kg, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		mergedGroup := append(append([]string{}, groups[bestI]...), groups[bestJ]...)
		var nextGroups [][]string
		for k := range groups {
			if k != bestI && k != bestJ {
				nextGroups = append(nextGroups, groups[k])
			}
		}
		groups = append(nextGroups, mergedGroup)
		current, currentKg = applyMerge(current, bestI, bestJ), bestKg
		steps++
	}

	for _, g := range groups {
		sort.Strings(g)
	}
	sort.Slice(groups, func(i, j int) bool {
		return strings.Join(groups[i], ",") < strings.Join(groups[j], ",")
	})
	return &Plan{
		System:     current,
		Groups:     groups,
		EmbodiedKg: currentKg,
		InitialKg:  initialKg,
		Steps:      steps,
	}, nil
}

// applyMergeInPlace rewrites s's chiplet list with i and j merged
// (i < j), merged die appended — applyMerge without the clone, for a
// privately owned system.
func applyMergeInPlace(s *core.System, i, j int) {
	merged := merge(s.Chiplets[i], s.Chiplets[j])
	out := s.Chiplets[:0]
	for k, c := range s.Chiplets {
		if k != i && k != j {
			out = append(out, c)
		}
	}
	s.Chiplets = append(out, merged)
}

// applyMerge returns a copy of s with chiplets i and j merged (i < j).
// The merged chiplet is appended so group bookkeeping can mirror the
// move.
func applyMerge(s *core.System, i, j int) *core.System {
	out := cloneSystem(s)
	merged := merge(out.Chiplets[i], out.Chiplets[j])
	var chiplets []core.Chiplet
	for k, c := range out.Chiplets {
		if k != i && k != j {
			chiplets = append(chiplets, c)
		}
	}
	out.Chiplets = append(chiplets, merged)
	return out
}

func cloneSystem(s *core.System) *core.System {
	out := *s
	out.Chiplets = make([]core.Chiplet, len(s.Chiplets))
	copy(out.Chiplets, s.Chiplets)
	return &out
}

func embodied(s *core.System, db *tech.DB) (float64, error) {
	rep, err := s.Evaluate(db)
	if err != nil {
		return 0, err
	}
	return rep.EmbodiedKg(), nil
}

package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("fig-test", "a sample table", "name", "value")
	t.AddRow("alpha", F(1.5))
	t.AddRow("beta", F(12.3456))
	t.AddRow("gamma", F(1234.5))
	return t
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	tbl := New("x", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong cell count should panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5000",
		12.3456: "12.35",
		1234.5:  "1234", // strconv rounds half to even
		1234.6:  "1235",
		-2000:   "-2000",
		-15.5:   "-15.50",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%g) = %q, want %q", v, got, want)
		}
	}
	if I(42) != "42" {
		t.Error("I(42) mismatch")
	}
}

func TestFprintAligned(t *testing.T) {
	out := sample().String()
	if !strings.Contains(out, "== fig-test ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "a sample table") {
		t.Error("note missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, note, header, separator, 3 rows.
	if len(lines) != 7 {
		t.Fatalf("want 7 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "-") {
		t.Errorf("line 4 should be a separator, got %q", lines[3])
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 CSV lines, got %d", len(lines))
	}
	if lines[0] != "name,value" {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"### fig-test", "| name | value |", "| --- | --- |", "| alpha | 1.5000 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Pipes in cells must be escaped.
	tbl := New("x", "", "c")
	tbl.AddRow("a|b")
	b.Reset()
	if err := tbl.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `a\|b`) {
		t.Error("pipe not escaped in markdown cell")
	}
}

func TestColumn(t *testing.T) {
	vals, err := sample().Column("value")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || vals[0] != 1.5 {
		t.Errorf("Column(value) = %v", vals)
	}
	if _, err := sample().Column("missing"); err == nil {
		t.Error("missing column should fail")
	}
	bad := New("x", "", "v")
	bad.AddRow("not-a-number")
	if _, err := bad.Column("v"); err == nil {
		t.Error("non-numeric cell should fail")
	}
}

// Package yieldmodel implements the manufacturing-yield models ECO-CHIP
// uses for dies, package substrates/interposers and 3D assembly.
//
// The primary model is the negative-binomial distribution of Eq. (4) of
// the paper (after Cunningham [30] and Stow et al. [32]):
//
//	Y(A, D0) = (1 + A*D0/alpha)^(-alpha)
//
// with die area A in cm^2, defect density D0 in defects/cm^2 and the
// clustering parameter alpha (Table I: alpha = 3).
package yieldmodel

import (
	"fmt"
	"math"
)

// DefaultAlpha is the defect-clustering parameter from Table I.
const DefaultAlpha = 3.0

// Die returns the negative-binomial yield of a die with the given area
// (mm^2) at the given defect density (defects/cm^2) using the default
// clustering parameter. It panics on negative inputs; zero area yields 1.
func Die(areaMM2, defectDensity float64) float64 {
	return DieAlpha(areaMM2, defectDensity, DefaultAlpha)
}

// DieAlpha is Die with an explicit clustering parameter alpha.
func DieAlpha(areaMM2, defectDensity, alpha float64) float64 {
	if areaMM2 < 0 || defectDensity < 0 {
		panic(fmt.Sprintf("yieldmodel: negative area (%g) or defect density (%g)", areaMM2, defectDensity))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("yieldmodel: clustering parameter must be positive, got %g", alpha))
	}
	areaCM2 := areaMM2 / 100
	return math.Pow(1+areaCM2*defectDensity/alpha, -alpha)
}

// Layered returns the yield of a structure patterned with n independent
// metal layers, each with per-layer yield y: y^n. It models the
// compounding loss of multi-layer RDL substrates and interposer BEOL
// stacks.
func Layered(perLayer float64, layers int) float64 {
	if perLayer < 0 || perLayer > 1 {
		panic(fmt.Sprintf("yieldmodel: per-layer yield %g outside [0, 1]", perLayer))
	}
	if layers < 0 {
		panic(fmt.Sprintf("yieldmodel: negative layer count %d", layers))
	}
	return math.Pow(perLayer, float64(layers))
}

// Assembly3D returns the yield of stacking `tiers` dies where each
// die-to-die bond succeeds with probability bondYield and each tier's die
// yield is given in tierYields. Per Section V-B of the paper, "the package
// yield is the product of the yield of each tier" with an additional bond
// term per interface (tiers-1 bonds).
func Assembly3D(tierYields []float64, bondYield float64) float64 {
	if bondYield < 0 || bondYield > 1 {
		panic(fmt.Sprintf("yieldmodel: bond yield %g outside [0, 1]", bondYield))
	}
	y := 1.0
	for i, ty := range tierYields {
		if ty < 0 || ty > 1 {
			panic(fmt.Sprintf("yieldmodel: tier %d yield %g outside [0, 1]", i, ty))
		}
		y *= ty
	}
	if n := len(tierYields); n > 1 {
		y *= math.Pow(bondYield, float64(n-1))
	}
	return y
}

// BondYieldFromPitch maps a bond pitch in micrometres to a per-interface
// bonding yield. Finer pitches are harder to align, so yield falls as the
// pitch shrinks (Section III-D(1)(e): Y(3D, p) accounts for bump
// misalignment). The mapping is linear between the calibration points
// (1 um -> 0.95) and (45 um -> 0.999), clamped outside.
func BondYieldFromPitch(pitchUM float64) float64 {
	if pitchUM <= 0 {
		panic(fmt.Sprintf("yieldmodel: bond pitch must be positive, got %g", pitchUM))
	}
	const (
		loPitch, loYield = 1.0, 0.95
		hiPitch, hiYield = 45.0, 0.999
	)
	switch {
	case pitchUM <= loPitch:
		return loYield
	case pitchUM >= hiPitch:
		return hiYield
	}
	frac := (pitchUM - loPitch) / (hiPitch - loPitch)
	return loYield + frac*(hiYield-loYield)
}

// KnownGoodDies returns the expected number of good dies out of n
// candidates with yield y.
func KnownGoodDies(n int, y float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("yieldmodel: negative die count %d", n))
	}
	if y < 0 || y > 1 {
		panic(fmt.Sprintf("yieldmodel: yield %g outside [0, 1]", y))
	}
	return float64(n) * y
}

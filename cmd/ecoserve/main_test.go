package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/serve"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// startServer runs the binary's serve loop on a loopback port and
// returns its base URL; shutdown (and its error) is checked on cleanup.
func startServer(t *testing.T, cfg serve.Config) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan string, 1)
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		done <- run(ctx, "127.0.0.1:0", cfg, &out, func(addr string) { addrc <- addr })
	}()
	var addr string
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not bind")
	}
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("server did not shut down")
		}
		if !strings.Contains(out.String(), addr) {
			t.Errorf("banner %q does not announce %s", out.String(), addr)
		}
	})
	return "http://" + addr
}

func post[T any](t *testing.T, url string, body any) *T {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (%s)", url, resp.StatusCode, e["error"])
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// The served answers must carry the exact bits of the facade-level
// reference paths (compiled sweep, direct evaluation, one-shot
// disaggregation).
func TestEcoserveSmoke(t *testing.T) {
	db := tech.Default()
	sys := testcases.GA102(db, 7, 14, 10, false)
	nodes := []int{7, 10, 14}
	base := startServer(t, serve.Config{})

	// Sweep vs the compiled plan.
	plan, err := explore.Compile(sys, db, nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sweep := post[serve.SweepResponse](t, base+"/v1/sweep", &serve.SweepRequest{System: sys, Nodes: nodes})
	if len(sweep.Points) != len(want) {
		t.Fatalf("sweep: %d points, want %d", len(sweep.Points), len(want))
	}
	for i := range want {
		if math.Float64bits(sweep.Points[i].EmbodiedKg) != math.Float64bits(want[i].EmbodiedKg) ||
			math.Float64bits(sweep.Points[i].CostUSD) != math.Float64bits(want[i].CostUSD) {
			t.Fatalf("sweep point %d diverged: %+v vs %+v", i, sweep.Points[i], want[i])
		}
	}

	// What-if swap vs the matching sweep point.
	swapTo := 10
	wi := post[serve.WhatIfResponse](t, base+"/v1/whatif", &serve.WhatIfRequest{
		System: sys, Nodes: nodes, Swap: map[string]int{sys.Chiplets[0].Name: swapTo},
	})
	if wi.Point == nil {
		t.Fatalf("what-if carried no point: %+v", wi)
	}
	assignment := []int{swapTo, sys.Chiplets[1].NodeNm, sys.Chiplets[2].NodeNm}
	found := false
	for _, p := range want {
		if fmt.Sprint(p.Nodes) == fmt.Sprint(assignment) {
			found = true
			if math.Float64bits(p.TotalKg) != math.Float64bits(wi.Point.TotalKg) {
				t.Fatalf("swap point diverged: %+v vs %+v", wi.Point, p)
			}
		}
	}
	if !found {
		t.Fatalf("assignment %v absent from reference sweep", assignment)
	}

	// Disaggregation vs the one-shot explore entry point.
	epyc, err := testcases.EPYC(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantPlan, err := explore.DisaggregateCtx(context.Background(), epyc, db)
	if err != nil {
		t.Fatal(err)
	}
	dis := post[serve.DisaggregateResponse](t, base+"/v1/disaggregate", &serve.DisaggregateRequest{System: epyc})
	if math.Float64bits(dis.EmbodiedKg) != math.Float64bits(wantPlan.EmbodiedKg) || dis.Steps != wantPlan.Steps {
		t.Fatalf("disaggregate diverged: %+v vs %+v", dis, wantPlan)
	}

	// Stats reflect one compile per family.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sweeps.Builds != 1 || stats.Disaggregates.Builds != 1 {
		t.Fatalf("stats = %+v, want one sweep and one disaggregate build", stats)
	}
}

func TestEcoserveBadAddr(t *testing.T) {
	err := run(context.Background(), "256.256.256.256:99999", serve.Config{}, &bytes.Buffer{}, nil)
	if err == nil {
		t.Fatal("bad address accepted")
	}
}

package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ecochip
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNodeSweepSerial        	      20	    622767 ns/op	  534032 B/op	    5009 allocs/op
BenchmarkNodeSweepParallel-8    	      20	    367330 ns/op	  316616 B/op	    2779 allocs/op
BenchmarkNodeSweepCompiled-8    	      20	     39974 ns/op	   14675 B/op	     159 allocs/op
BenchmarkNodeSweepCompiled-8    	      20	     40111 ns/op	   14680 B/op	     159 allocs/op
BenchmarkNoMem-4                	     100	      1234 ns/op
PASS
ok  	ecochip	0.026s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "ecochip" {
		t.Errorf("header mismatch: %+v", rep)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkNodeSweepSerial" || b.Procs != 1 || b.Runs != 20 || b.NsPerOp != 622767 {
		t.Errorf("serial line mismatch: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 534032 || b.AllocsPerOp == nil || *b.AllocsPerOp != 5009 {
		t.Errorf("benchmem fields mismatch: %+v", b)
	}
	p := rep.Benchmarks[1]
	if p.Name != "BenchmarkNodeSweepParallel" || p.Procs != 8 {
		t.Errorf("procs suffix not split: %+v", p)
	}
	// -count repetitions stay separate entries.
	if rep.Benchmarks[2].Name != rep.Benchmarks[3].Name {
		t.Error("repeated runs should keep the same name")
	}
	nm := rep.Benchmarks[4]
	if nm.BytesPerOp != nil || nm.AllocsPerOp != nil {
		t.Errorf("line without -benchmem should omit memory fields: %+v", nm)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("input without benchmark lines should fail")
	}
}

func TestSplitProcs(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"BenchmarkX-8", "BenchmarkX", 8},
		{"BenchmarkX", "BenchmarkX", 1},
		{"BenchmarkX-y", "BenchmarkX-y", 1},
		{"Benchmark-Sub-16", "Benchmark-Sub", 16},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}

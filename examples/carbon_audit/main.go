// Carbon audit: a full what-if report for one system — sensitivity
// tornado, fab energy-source scenarios, NRE mask-carbon split and the
// carbon-cost Pareto front. This is the workflow a sustainability team
// would run before committing to a disaggregation plan.
//
//	go run ./examples/carbon_audit
package main

import (
	"fmt"
	"log"

	"ecochip"
	"ecochip/internal/cost"
	"ecochip/internal/energy"
	"ecochip/internal/explore"
	"ecochip/internal/sensitivity"
)

func main() {
	db := ecochip.DefaultDB()
	base := ecochip.GA102(db, 7, 14, 10, false)

	fmt.Println("== sensitivity tornado (±25% per factor) ==")
	results, err := sensitivity.Tornado(base, db, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-28s swing %7.1f kg   (%.1f / %.1f / %.1f)\n",
			r.Factor, r.Swing(), r.LowKg, r.BaseKg, r.HighKg)
	}

	fmt.Println("\n== fab energy-source scenarios ==")
	for _, src := range []string{"coal", "gas", "grid-taiwan", "solar", "wind"} {
		ci, err := energy.Intensity(src)
		if err != nil {
			log.Fatal(err)
		}
		s := ecochip.GA102(db, 7, 14, 10, false)
		s.Mfg.CarbonIntensity = ci
		s.Packaging.CarbonIntensity = ci
		rep, err := s.Evaluate(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s (%.3f kg/kWh): C_emb = %6.1f kg\n", src, ci, rep.EmbodiedKg())
	}

	fmt.Println("\n== NRE mask-carbon split (future-work extension) ==")
	withNRE := ecochip.GA102(db, 7, 14, 10, false)
	withNRE.IncludeNRE = true
	rep, err := withNRE.Evaluate(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C_emb without NRE split: %.1f kg; with: %.1f kg (mask share %.2f kg/part)\n",
		rep.EmbodiedKg()-rep.NREKg, rep.EmbodiedKg(), rep.NREKg)

	fmt.Println("\n== carbon-cost Pareto front over node assignments ==")
	points, err := explore.NodeSweep(base, db, []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	front := explore.ParetoFront(points, explore.ByEmbodied, explore.ByCost)
	fmt.Printf("%d of %d candidates survive domination:\n", len(front), len(points))
	for _, p := range front {
		fmt.Printf("  %-12s C_emb %6.1f kg   $%7.0f   %6.0f mm^2\n",
			p.Label(), p.EmbodiedKg, p.CostUSD, p.PackageAreaMM2)
	}
}

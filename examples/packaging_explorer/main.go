// Packaging explorer: compare the carbon overheads of the five advanced
// packaging architectures for a user-defined chiplet set, and sweep the
// key per-architecture parameter (RDL layers, bridge range, interposer
// node, bond pitch) the way Fig. 11 of the paper does.
//
//	go run ./examples/packaging_explorer
package main

import (
	"fmt"
	"log"

	"ecochip"
	"ecochip/internal/pkgcarbon"
)

func main() {
	db := ecochip.DefaultDB()
	n7 := db.MustGet(7)

	// A 4-chiplet compute package: two compute dies, a cache die and an
	// IO die.
	chiplets := []pkgcarbon.Chiplet{
		{Name: "compute0", AreaMM2: 150, Node: n7},
		{Name: "compute1", AreaMM2: 150, Node: n7},
		{Name: "cache", AreaMM2: 60, Node: db.MustGet(10)},
		{Name: "io", AreaMM2: 40, Node: db.MustGet(14)},
	}

	fmt.Println("== C_HI by packaging architecture ==")
	fmt.Printf("%-20s %12s %12s %12s %10s\n", "architecture", "package(kg)", "routing(kg)", "total(kg)", "asm yield")
	for _, arch := range pkgcarbon.Architectures {
		res, err := pkgcarbon.Estimate(chiplets, pkgcarbon.DefaultParams(arch))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %12.3f %12.3f %12.3f %10.3f\n",
			arch, res.PackageKg, res.RoutingKg, res.TotalKg(), res.AssemblyYield)
	}

	fmt.Println("\n== RDL layer sweep ==")
	for l := 3; l <= 9; l++ {
		p := pkgcarbon.DefaultParams(pkgcarbon.RDLFanout)
		p.RDLLayers = l
		res, err := pkgcarbon.Estimate(chiplets, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L_RDL=%d  C_HI=%.3f kg\n", l, res.TotalKg())
	}

	fmt.Println("\n== interposer node sweep (active interposer) ==")
	for _, nm := range []int{22, 28, 40, 65} {
		p := pkgcarbon.DefaultParams(pkgcarbon.ActiveInterposer)
		p.PackagingNode = db.MustGet(nm)
		res, err := pkgcarbon.Estimate(chiplets, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("interposer %2dnm  C_HI=%.3f kg\n", nm, res.TotalKg())
	}

	fmt.Println("\n== bond pitch sweep (3D microbumps) ==")
	stack := []pkgcarbon.Chiplet{
		{Name: "logic", AreaMM2: 100, Node: n7},
		{Name: "sram0", AreaMM2: 100, Node: n7},
		{Name: "sram1", AreaMM2: 100, Node: n7},
	}
	for _, pitch := range []float64{10, 20, 30, 45} {
		p := pkgcarbon.DefaultParams(pkgcarbon.ThreeD)
		p.BondPitchUM = pitch
		res, err := pkgcarbon.Estimate(stack, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pitch %2.0fum  bonds=%.0f  C_HI=%.3f kg\n", pitch, res.NumBonds, res.TotalKg())
	}

	// Show the floorplan the estimator derived for the RDL package.
	res, err := pkgcarbon.Estimate(chiplets, pkgcarbon.DefaultParams(pkgcarbon.RDLFanout))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== derived floorplan (%.1f x %.1f mm, %.1f%% whitespace) ==\n",
		res.Floorplan.WidthMM, res.Floorplan.HeightMM, 100*res.Floorplan.WhitespaceFraction())
	for _, p := range res.Floorplan.Placements {
		fmt.Printf("%-9s at (%6.2f, %6.2f)  %6.2f x %6.2f mm\n", p.Name, p.X, p.Y, p.Width, p.Height)
	}
	for _, a := range res.Floorplan.Adjacencies {
		fmt.Printf("interface %s <-> %s: %.1f mm shared edge\n", a.A, a.B, a.OverlapMM)
	}
}

package pkgcarbon

import (
	"fmt"
	"math/rand"
	"testing"

	"ecochip/internal/tech"
)

// EstimateMergeFork must reproduce a full Estimate of the candidate set
// bit for bit, for every removed pair over random primed bases, across
// every forkable architecture — and leave the pinned base undisturbed
// (a later fork against the same base must agree too).
func TestEstimateMergeForkMatchesEstimate(t *testing.T) {
	db := tech.Default()
	sizes := db.Sizes()
	rng := rand.New(rand.NewSource(83))
	for _, arch := range []Architecture{RDLFanout, PassiveInterposer, ActiveInterposer} {
		p := DefaultParams(arch)
		est, err := NewEstimator(p)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewEstimator(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			n := 3 + rng.Intn(5)
			base := make([]Chiplet, n)
			for i := range base {
				base[i] = Chiplet{
					Name:    fmt.Sprintf("c%d", i),
					AreaMM2: 5 + rng.Float64()*200,
					Node:    db.MustGet(sizes[rng.Intn(len(sizes))]),
				}
			}
			if err := est.PrimeMergeBase(base); err != nil {
				t.Fatal(err)
			}
			for r1 := 0; r1 < n; r1++ {
				for r2 := r1 + 1; r2 < n; r2++ {
					merged := Chiplet{
						Name:    base[r1].Name + "+" + base[r2].Name,
						AreaMM2: base[r1].AreaMM2 + base[r2].AreaMM2,
						Node:    base[r1].Node,
					}
					cand := make([]Chiplet, 0, n-1)
					for k, c := range base {
						if k != r1 && k != r2 {
							cand = append(cand, c)
						}
					}
					cand = append(cand, merged)
					want, err := ref.Estimate(cand)
					if err != nil {
						t.Fatal(err)
					}
					got, err := est.EstimateMergeFork(r1, r2, merged)
					if err != nil {
						t.Fatalf("%v trial %d fork (%d,%d): %v", arch, trial, r1, r2, err)
					}
					if !resultsBitIdentical(want, got) {
						t.Fatalf("%v trial %d fork (%d,%d) diverges\nwant %+v\ngot  %+v",
							arch, trial, r1, r2, want, got)
					}
				}
			}
		}
	}
}

func TestEstimateMergeForkErrors(t *testing.T) {
	db := tech.Default()
	node := db.MustGet(7)
	merged := Chiplet{Name: "m", AreaMM2: 40, Node: node}

	bridge, err := NewEstimator(DefaultParams(SiliconBridge))
	if err != nil {
		t.Fatal(err)
	}
	if bridge.MergeForkable() {
		t.Error("bridge estimators must not be merge-forkable (they need adjacencies)")
	}
	if _, err := bridge.EstimateMergeFork(0, 1, merged); err == nil {
		t.Error("fork on a bridge estimator should fail")
	}
	if err := bridge.PrimeMergeBase([]Chiplet{{Name: "a", AreaMM2: 10, Node: node}}); err == nil {
		t.Error("prime on a bridge estimator should fail")
	}

	est, err := NewEstimator(DefaultParams(RDLFanout))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.EstimateMergeFork(0, 1, merged); err == nil {
		t.Error("fork before prime should fail")
	}
	base := []Chiplet{
		{Name: "a", AreaMM2: 100, Node: node},
		{Name: "b", AreaMM2: 50, Node: node},
		{Name: "c", AreaMM2: 25, Node: node},
	}
	if err := est.PrimeMergeBase(base); err != nil {
		t.Fatal(err)
	}
	if _, err := est.EstimateMergeFork(0, 3, merged); err == nil {
		t.Error("out-of-range removed index should fail")
	}
	if _, err := est.EstimateMergeFork(1, 1, merged); err == nil {
		t.Error("equal removed indices should fail")
	}
	if _, err := est.EstimateMergeFork(0, 1, Chiplet{Name: "m", AreaMM2: -4, Node: node}); err == nil {
		t.Error("non-positive merged area should fail")
	}
	if _, err := est.EstimateMergeFork(0, 1, Chiplet{Name: "m", AreaMM2: 4}); err == nil {
		t.Error("nil merged node should fail")
	}
	if err := est.PrimeMergeBase([]Chiplet{{Name: "a", AreaMM2: -1, Node: node}}); err == nil {
		t.Error("prime with non-positive area should fail")
	}
	if err := est.PrimeMergeBase(nil); err == nil {
		t.Error("prime with no chiplets should fail")
	}
}

package shard

import (
	"context"
	"fmt"
	"sync"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/lru"
	"ecochip/internal/tech"
)

// PlanSource resolves plan keys to compiled plans — the replica-local
// "compile from the (system, db-version) key" seam. A networked
// deployment backs this with a plan cache keyed by the wire key; the
// in-process loopback uses a Catalog.
type PlanSource interface {
	// Plan returns the compiled plan for key, compiling (and caching)
	// it on first use; ErrPlanUnknown if the key is not registered.
	Plan(key string) (*explore.CompiledPlan, error)
}

// Catalog is an in-process PlanSource: sweep descriptions are
// registered under their derived plan key and compiled lazily —
// single-flight, so concurrent leases for one key share a compile — on
// the replica that first executes a lease for them. Each replica owns
// its own Catalog: compilation is local by design, the point of keying
// plans by content instead of shipping them. Compiled plans live in a
// size-bounded LRU (NewCatalogCap); builders are retained past
// eviction, so a cold key simply recompiles — deterministically, the
// same bits, because the key is a content hash over everything the
// compile reads.
type Catalog struct {
	mu    sync.Mutex
	build map[string]func() (*explore.CompiledPlan, error)
	plans *lru.Cache[*explore.CompiledPlan]
}

// NewCatalog returns an empty catalog with no residency bound.
func NewCatalog() *Catalog { return NewCatalogCap(0) }

// NewCatalogCap returns an empty catalog holding at most capacity
// compiled plans resident (capacity <= 0 means unbounded). A serving
// replica that cycles through more registered sweeps than it has memory
// for sets a bound and lets recompilation backfill on demand.
func NewCatalogCap(capacity int) *Catalog {
	return &Catalog{
		build: make(map[string]func() (*explore.CompiledPlan, error)),
		plans: lru.New[*explore.CompiledPlan](capacity),
	}
}

// RegisterSweep derives the plan key of (base, db, nodes, cp), registers
// its compile constructor under that key and returns the key.
func (c *Catalog) RegisterSweep(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (string, error) {
	key, err := explore.PlanKey(base, db, nodes, cp)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.build[key]; !dup {
		c.build[key] = func() (*explore.CompiledPlan, error) {
			return explore.Compile(base, db, nodes, cp)
		}
	}
	return key, nil
}

// Plan implements PlanSource.
func (c *Catalog) Plan(key string) (*explore.CompiledPlan, error) {
	c.mu.Lock()
	build, ok := c.build[key]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrPlanUnknown, key)
	}
	return c.plans.GetOrBuild(key, build)
}

// Stats snapshots the catalog's plan-cache counters: hits, misses,
// coalesced compiles, builds and capacity evictions.
func (c *Catalog) Stats() lru.Stats { return c.plans.Stats() }

// Resident reports the number of compiled plans currently held.
func (c *Catalog) Resident() int { return c.plans.Len() }

// Replica executes leases against locally compiled plans. It is
// stateless between leases (all retained state lives in the plan's own
// pooled scratches), so any replica can execute any lease of any plan
// its source resolves — the property re-leasing depends on. Replica
// implements Transport directly; that IS the in-process loopback.
type Replica struct {
	source PlanSource
}

// NewReplica builds a replica over a plan source. The returned value
// is also the loopback Transport for that replica.
func NewReplica(source PlanSource) *Replica {
	return &Replica{source: source}
}

// Execute implements Transport: compile-or-fetch the lease's plan,
// walk each block of the span, emit each block's result. Blocks are
// emitted in span order; ctx is polled between blocks (and inside the
// walk) so expired leases stop promptly.
func (r *Replica) Execute(ctx context.Context, lease Lease, emit func(BlockResult) error) error {
	plan, err := r.source.Plan(lease.Key)
	if err != nil {
		return err
	}
	if lease.BlockSize <= 0 || lease.PlanPoints != plan.Combos() {
		return fmt.Errorf("%w: lease (%d points, block size %d) vs plan (%d points)",
			ErrLeaseMismatch, lease.PlanPoints, lease.BlockSize, plan.Combos())
	}
	nb := blockCount(plan.Combos(), lease.BlockSize)
	if lease.Blocks.Lo < 0 || lease.Blocks.Hi > nb || lease.Blocks.Lo > lease.Blocks.Hi {
		return fmt.Errorf("%w: block span [%d,%d) outside the %d-block plan",
			ErrLeaseMismatch, lease.Blocks.Lo, lease.Blocks.Hi, nb)
	}
	var ms []explore.Metric
	if lease.Mode == ModeFront {
		if ms, err = ObjectiveMetrics(lease.Objectives); err != nil {
			return err
		}
	}
	for b := lease.Blocks.Lo; b < lease.Blocks.Hi; b++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := computeBlock(ctx, plan, lease.Mode, ms, b, lease.BlockSize)
		if err != nil {
			return err
		}
		res.Seq = lease.Seq
		if err := emit(res); err != nil {
			return err
		}
	}
	return nil
}

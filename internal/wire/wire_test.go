package wire

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"ecochip/internal/explore"
	"ecochip/internal/shard"
)

// randLease draws a structurally valid lease from rng.
func randLease(rng *rand.Rand) shard.Lease {
	l := shard.Lease{
		Key:        "sweep-0123456789abcdef",
		Seq:        rng.Uint64() >> 1,
		BlockSize:  1 + rng.Intn(512),
		PlanPoints: rng.Intn(1 << 20),
		Mode:       shard.Mode(rng.Intn(2)),
	}
	lo := rng.Intn(1 << 12)
	l.Blocks = shard.BlockRange{Lo: lo, Hi: lo + rng.Intn(8)}
	for i := rng.Intn(4); i > 0; i-- {
		l.Objectives = append(l.Objectives, shard.Objective(rng.Intn(4)))
	}
	if rng.Intn(2) == 0 {
		l.Deadline = time.Unix(0, rng.Int63())
	}
	return l
}

// randResult draws a block result with hostile float values included
// (negative zero, tiny/huge magnitudes) so bit-exactness is actually
// exercised.
func randResult(rng *rand.Rand) shard.BlockResult {
	hostile := []float64{0, math.Copysign(0, -1), 1e-308, 1e308, 1.5, -2.25, math.Pi}
	f := func() float64 {
		if rng.Intn(3) == 0 {
			return hostile[rng.Intn(len(hostile))]
		}
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
	}
	n := rng.Intn(20)
	res := shard.BlockResult{Seq: rng.Uint64() >> 1, Block: rng.Intn(1 << 16)}
	slot := rng.Intn(100)
	for i := 0; i < n; i++ {
		res.Slots = append(res.Slots, slot)
		slot += 1 + rng.Intn(5)
		pt := explore.Point{EmbodiedKg: f(), TotalKg: f(), CostUSD: f(), PackageAreaMM2: f()}
		for j := 1 + rng.Intn(6); j > 0; j-- {
			pt.Nodes = append(pt.Nodes, rng.Intn(50))
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

func leasesEqual(a, b *shard.Lease) bool {
	if a.Key != b.Key || a.Seq != b.Seq || a.Blocks != b.Blocks ||
		a.BlockSize != b.BlockSize || a.PlanPoints != b.PlanPoints || a.Mode != b.Mode ||
		len(a.Objectives) != len(b.Objectives) {
		return false
	}
	for i := range a.Objectives {
		if a.Objectives[i] != b.Objectives[i] {
			return false
		}
	}
	return a.Deadline.UnixNano() == b.Deadline.UnixNano() || (a.Deadline.IsZero() && b.Deadline.IsZero())
}

func resultsEqual(a, b *shard.BlockResult) bool {
	if a.Seq != b.Seq || a.Block != b.Block || len(a.Slots) != len(b.Slots) || len(a.Points) != len(b.Points) {
		return false
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			return false
		}
	}
	for i := range a.Points {
		p, q := &a.Points[i], &b.Points[i]
		if len(p.Nodes) != len(q.Nodes) {
			return false
		}
		for j := range p.Nodes {
			if p.Nodes[j] != q.Nodes[j] {
				return false
			}
		}
		if math.Float64bits(p.EmbodiedKg) != math.Float64bits(q.EmbodiedKg) ||
			math.Float64bits(p.TotalKg) != math.Float64bits(q.TotalKg) ||
			math.Float64bits(p.CostUSD) != math.Float64bits(q.CostUSD) ||
			math.Float64bits(p.PackageAreaMM2) != math.Float64bits(q.PackageAreaMM2) {
			return false
		}
	}
	return true
}

func TestLeaseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		l := randLease(rng)
		p := AppendLease(nil, &l)
		var got shard.Lease
		if err := DecodeLease(p, &got); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if !leasesEqual(&l, &got) {
			t.Fatalf("trial %d: %+v != %+v", i, got, l)
		}
		// Encode of the decode is byte-exact: the encoding is canonical.
		if !bytes.Equal(AppendLease(nil, &got), p) {
			t.Fatalf("trial %d: re-encode differs", i)
		}
	}
}

func TestBlockResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		r := randResult(rng)
		p := AppendBlockResult(nil, &r)
		var got shard.BlockResult
		if err := DecodeBlockResult(p, &got); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if !resultsEqual(&r, &got) {
			t.Fatalf("trial %d: decoded result differs", i)
		}
		if !bytes.Equal(AppendBlockResult(nil, &got), p) {
			t.Fatalf("trial %d: re-encode differs", i)
		}
	}
}

func TestRegistrationRoundTrip(t *testing.T) {
	reg := Registration{
		Key:    "sweep-00ff",
		System: []byte(`{"Name":"epyc"}`),
		Nodes:  []int{7, 14, 10},
		Cost:   []byte(`{"x":1}`),
		Token:  "hunter2",
	}
	p := AppendRegistration(nil, &reg)
	got, err := DecodeRegistration(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != reg.Key || string(got.System) != string(reg.System) || string(got.Cost) != string(reg.Cost) {
		t.Fatalf("got %+v, want %+v", got, reg)
	}
	if len(got.Nodes) != 3 || got.Nodes[0] != 7 || got.Nodes[2] != 10 {
		t.Fatalf("nodes %v", got.Nodes)
	}
	if got.Token != "hunter2" {
		t.Fatalf("token %q, want %q", got.Token, "hunter2")
	}
}

func TestPongRoundTrip(t *testing.T) {
	for _, flags := range []uint64{0, PongDraining, PongDraining | 1<<5} {
		p := AppendPong(nil, flags)
		got, err := DecodePong(p)
		if err != nil || got != flags {
			t.Fatalf("pong flags %#x round-tripped to (%#x, %v)", flags, got, err)
		}
	}
	if _, err := DecodePong(nil); err == nil {
		t.Fatalf("empty pong payload decoded without error")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	p := AppendError(nil, CodeLeaseMismatch, "geometry")
	code, msg, err := DecodeError(p)
	if err != nil || code != CodeLeaseMismatch || msg != "geometry" {
		t.Fatalf("got %v %q %v", code, msg, err)
	}
}

// The steady-state codec contract: encoding into a reused buffer and
// decoding into a reused destination allocates nothing per frame.
func TestCodecZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	res := randResult(rng)
	lease := randLease(rng)
	buf := make([]byte, 0, 1<<16)
	var dst shard.BlockResult
	var dstLease shard.Lease
	// Warm the destinations so capacities exist.
	buf = AppendBlockResult(buf[:0], &res)
	if err := DecodeBlockResult(buf, &dst); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = AppendBlockResult(buf[:0], &res)
		if err := DecodeBlockResult(buf, &dst); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("block result round trip: %v allocs/frame, want 0", allocs)
	}
	buf = AppendLease(buf[:0], &lease)
	if err := DecodeLease(buf, &dstLease); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = AppendLease(buf[:0], &lease)
		if err := DecodeLease(buf, &dstLease); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("lease round trip: %v allocs/frame, want 0", allocs)
	}
}

// Frames written through a Writer come back intact through a Reader,
// including interleaved types and ids.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var stream bytes.Buffer
	w := NewWriter(&stream)
	type sent struct {
		m  Msg
		id uint64
		p  []byte
	}
	var frames []sent
	for i := 0; i < 50; i++ {
		var payload []byte
		m := Msg(1 + rng.Intn(8))
		switch m {
		case MsgLease:
			l := randLease(rng)
			payload = AppendLease(nil, &l)
		case MsgBlockResult:
			r := randResult(rng)
			payload = AppendBlockResult(nil, &r)
		case MsgLeaseError:
			payload = AppendError(nil, CodeGeneric, "x")
		case MsgHello:
			payload = AppendUvarint(nil, ProtoVersion)
		default:
		}
		id := rng.Uint64() >> 1
		if err := w.WriteFrame(m, id, payload); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, sent{m, id, payload})
	}
	r := NewReader(&stream, 0)
	for i, f := range frames {
		m, id, p, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m != f.m || id != f.id || !bytes.Equal(p, f.p) {
			t.Fatalf("frame %d: got (%d,%d,%d bytes), want (%d,%d,%d bytes)", i, m, id, len(p), f.m, f.id, len(f.p))
		}
	}
	wf, wb := w.Counters()
	rf, rb := r.Counters()
	if wf != uint64(len(frames)) || rf != wf || wb != rb || wb == 0 {
		t.Errorf("counters: wrote %d/%dB, read %d/%dB", wf, wb, rf, rb)
	}
}

// Oversized and zero-length frames are refused before allocation.
func TestReaderRefusesBadFrames(t *testing.T) {
	var huge bytes.Buffer
	huge.Write(AppendUvarint(nil, MaxFrame+1))
	if _, _, _, err := NewReader(&huge, 0).ReadFrame(); err == nil {
		t.Error("oversized frame accepted")
	}
	var zero bytes.Buffer
	zero.Write(AppendUvarint(nil, 0))
	if _, _, _, err := NewReader(&zero, 0).ReadFrame(); err == nil {
		t.Error("zero-length frame accepted")
	}
	// Truncated body.
	var trunc bytes.Buffer
	trunc.Write(AppendUvarint(nil, 100))
	trunc.WriteByte(byte(MsgLease))
	if _, _, _, err := NewReader(&trunc, 0).ReadFrame(); err == nil {
		t.Error("truncated frame accepted")
	}
}

// Corrupt payloads: every truncation prefix of a valid payload decodes
// to an error, never a panic, and declared-count inflation is caught.
func TestDecodeTruncationsError(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	res := randResult(rng)
	for len(res.Points) == 0 {
		res = randResult(rng)
	}
	p := AppendBlockResult(nil, &res)
	for cut := 0; cut < len(p); cut++ {
		var dst shard.BlockResult
		if err := DecodeBlockResult(p[:cut], &dst); err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(p))
		}
	}
	l := randLease(rng)
	q := AppendLease(nil, &l)
	for cut := 0; cut < len(q); cut++ {
		var dst shard.Lease
		if err := DecodeLease(q[:cut], &dst); err == nil {
			t.Fatalf("lease truncation at %d decoded cleanly", cut)
		}
	}
	// A count field inflated beyond the remaining payload errors out
	// instead of allocating.
	bad := AppendUvarint(nil, 1)            // seq
	bad = AppendUvarint(bad, 1)             // block
	bad = AppendUvarint(bad, uint64(1)<<40) // absurd point count
	var dst shard.BlockResult
	if err := DecodeBlockResult(bad, &dst); err == nil {
		t.Error("inflated count decoded cleanly")
	}
}

func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	*b = append(*b, 1, 2, 3)
	PutBuffer(b)
	c := GetBuffer()
	if len(*c) != 0 {
		t.Errorf("pooled buffer not reset: len %d", len(*c))
	}
	PutBuffer(c)
}

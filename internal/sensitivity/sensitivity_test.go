package sensitivity

import (
	"testing"

	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func db() *tech.DB { return tech.Default() }

func TestTornadoRuns(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	results, err := Tornado(base, db(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("want 7 factors, got %d", len(results))
	}
	for _, r := range results {
		if r.BaseKg <= 0 {
			t.Errorf("%s: base carbon must be positive", r.Factor)
		}
		if r.Swing() < 0 {
			t.Errorf("%s: negative swing", r.Factor)
		}
	}
	// Sorted by descending swing.
	for i := 1; i < len(results); i++ {
		if results[i].Swing() > results[i-1].Swing() {
			t.Error("results not sorted by swing")
		}
	}
}

// For the GPU (operational-dominated), lifetime and use-phase intensity
// must rank above fab-side factors.
func TestGPUDominatedByOperationalFactors(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	results, err := Tornado(base, db(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{}
	for i, r := range results {
		rank[r.Factor] = i
	}
	if rank["lifetime"] > 1 && rank["use-phase carbon intensity"] > 1 {
		t.Errorf("for a GPU, an operational factor should rank in the top 2: %v", rank)
	}
	if rank["lifetime"] >= rank["defect density D0"] {
		t.Errorf("lifetime should out-rank defect density for a GPU: %v", rank)
	}
}

// For the mobile SoC (embodied-dominated), an embodied-side factor
// (volume, design iterations, fab intensity, defect density, EPA) must
// hold the top rank — not lifetime or the use-phase grid.
func TestMobileDominatedByEmbodiedFactors(t *testing.T) {
	base := testcases.A15(db(), 7, 14, 10, false)
	results, err := Tornado(base, db(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	top := results[0].Factor
	if top == "lifetime" || top == "use-phase carbon intensity" {
		t.Errorf("for a mobile SoC the top factor should be embodied-side, got %q", top)
	}
}

// Directionality: scaling lifetime up must increase C_tot; scaling
// defect density up must increase C_tot.
func TestDirections(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	results, err := Tornado(base, db(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		switch r.Factor {
		case "lifetime", "use-phase carbon intensity", "defect density D0",
			"manufacturing energy EPA", "fab carbon intensity", "design iterations N_des":
			if r.HighKg < r.BaseKg || r.LowKg > r.BaseKg {
				t.Errorf("%s: scaling up should not lower C_tot (low %.1f base %.1f high %.1f)",
					r.Factor, r.LowKg, r.BaseKg, r.HighKg)
			}
		case "manufacturing volume":
			// More volume amortizes design carbon: high <= base.
			if r.HighKg > r.BaseKg {
				t.Errorf("volume up should not raise C_tot (base %.1f high %.1f)", r.BaseKg, r.HighKg)
			}
		}
	}
}

func TestTornadoErrors(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	for _, rel := range []float64{0, 1, -0.5, 2} {
		if _, err := Tornado(base, db(), rel); err == nil {
			t.Errorf("rel=%g should fail", rel)
		}
	}
	bad := testcases.GA102(db(), 7, 14, 10, false)
	bad.Chiplets[0].Transistors = 0
	if _, err := Tornado(bad, db(), 0.2); err == nil {
		t.Error("invalid base system should fail")
	}
}

// The base system must not be mutated by the analysis.
func TestBaseUnchanged(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	beforeIters := base.Design.Iterations
	beforeLifetime := base.Operation.LifetimeYears
	beforeParts := base.Chiplets[0].ManufacturedParts
	if _, err := Tornado(base, db(), 0.25); err != nil {
		t.Fatal(err)
	}
	if base.Design.Iterations != beforeIters ||
		base.Operation.LifetimeYears != beforeLifetime ||
		base.Chiplets[0].ManufacturedParts != beforeParts {
		t.Error("Tornado mutated the base system")
	}
	// The shared tech DB must also be untouched.
	if db().MustGet(7).DefectDensity != 0.20 {
		t.Error("Tornado mutated the shared tech database")
	}
}

// A system without an operating spec still analyzes (operational factors
// become no-ops with zero swing).
func TestEmbodiedOnlySystem(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	base.Operation = nil
	results, err := Tornado(base, db(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Factor == "lifetime" && r.Swing() != 0 {
			t.Error("lifetime swing should be zero without an operating spec")
		}
	}
}

// Package energy catalogs the carbon intensity of electricity sources
// (Table I: C_src between 30 and 700 g CO2/kWh, "based on the source of
// energy, whether it is coal, gas, wind, etc."). The models consume plain
// kg CO2/kWh numbers; this package provides the named presets and grid
// mixes that configuration files refer to.
package energy

import (
	"fmt"
	"sort"
	"strings"
)

// Source is a named electricity source with its lifecycle carbon
// intensity in kg CO2/kWh.
type Source struct {
	Name        string
	KgPerKWh    float64
	Description string
}

// The catalog. Values follow published lifecycle-assessment figures,
// clamped into the Table I modeling range [0.030, 0.700].
var catalog = []Source{
	{"coal", 0.700, "hard-coal generation (the paper's default fab supply)"},
	{"oil", 0.650, "oil-fired generation"},
	{"gas", 0.450, "combined-cycle natural gas"},
	{"biomass", 0.230, "biomass combustion"},
	{"solar", 0.048, "utility photovoltaics"},
	{"hydro", 0.030, "run-of-river hydro (clamped to the Table I floor)"},
	{"wind", 0.030, "onshore wind (clamped to the Table I floor)"},
	{"nuclear", 0.030, "nuclear fission (clamped to the Table I floor)"},
	{"grid-world", 0.300, "world-average grid mix"},
	{"grid-us", 0.380, "United States average grid"},
	{"grid-eu", 0.280, "European Union average grid"},
	{"grid-taiwan", 0.500, "Taiwan grid (where most advanced fabs operate)"},
}

var byName = func() map[string]Source {
	m := make(map[string]Source, len(catalog))
	for _, s := range catalog {
		m[s.Name] = s
	}
	return m
}()

// Intensity resolves a source name (case-insensitive) to kg CO2/kWh.
func Intensity(name string) (float64, error) {
	s, ok := byName[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("energy: unknown source %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return s.KgPerKWh, nil
}

// Names lists the known source names in sorted order.
func Names() []string {
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sources returns the full catalog sorted by intensity (dirtiest first).
func Sources() []Source {
	out := make([]Source, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].KgPerKWh > out[j].KgPerKWh })
	return out
}

// Mix blends sources by share into one intensity; shares must be
// positive and sum to 1 within 1e-6.
func Mix(shares map[string]float64) (float64, error) {
	if len(shares) == 0 {
		return 0, fmt.Errorf("energy: empty mix")
	}
	var total, blended float64
	for name, share := range shares {
		if share <= 0 {
			return 0, fmt.Errorf("energy: share of %q must be positive, got %g", name, share)
		}
		ci, err := Intensity(name)
		if err != nil {
			return 0, err
		}
		total += share
		blended += share * ci
	}
	if total < 1-1e-6 || total > 1+1e-6 {
		return 0, fmt.Errorf("energy: mix shares sum to %g, want 1", total)
	}
	return blended, nil
}

// The memo cache of the batch engine. A full-factorial node sweep
// re-derives the same (node, design type, area) die thousands of times —
// a 5-node sweep over a 4-chiplet system evaluates 625 systems but only
// 20 distinct dies — and mfg.Die / descarbon.ChipletKg are pure, so the
// results are safely shared across workers.

package engine

import (
	"math"
	"sync"
	"sync/atomic"

	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/tech"
)

// areaQuantMask clears the low 11 bits of the float64 mantissa when
// building die-cache keys, coalescing areas within ~5e-13 relative of
// each other. Areas that are logically the same die always come out of
// the identical node.Area computation and so share exact bits; the
// quantization only guards against float jitter introduced by future
// alternative area derivations.
const areaQuantMask = ^uint64(0x7FF)

func quantize(v float64) uint64 { return math.Float64bits(v) & areaQuantMask }

// dieKey identifies one mfg.Die computation. The node is keyed by
// pointer: tech.DB hands out stable *Node values and what-if clones
// (sensitivity, Monte Carlo) allocate fresh nodes, so pointer identity
// exactly partitions "same parameters" from "perturbed parameters"
// without hashing every node field.
type dieKey struct {
	node   *tech.Node
	dt     tech.DesignType
	area   uint64
	params mfg.Params
}

// desKey identifies one descarbon.ChipletKg computation, keyed on the
// gate count (quantized like areas), node and design-effort parameters.
type desKey struct {
	node   *tech.Node
	gates  uint64
	params descarbon.Params
}

// Stats reports cache effectiveness.
type Stats struct {
	DieHits, DieMisses       uint64
	DesignHits, DesignMisses uint64
}

// HitRate is the fraction of all lookups served from the cache.
func (s Stats) HitRate() float64 {
	hits := s.DieHits + s.DesignHits
	total := hits + s.DieMisses + s.DesignMisses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Cache memoizes the pure per-die sub-models across the systems of a
// batch (and, when shared via WithCache, across batches). All methods
// are safe for concurrent use.
type Cache struct {
	mu  sync.RWMutex
	die map[dieKey]mfg.Result
	des map[desKey]float64

	dieHits, dieMisses atomic.Uint64
	desHits, desMisses atomic.Uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		die: make(map[dieKey]mfg.Result),
		des: make(map[desKey]float64),
	}
}

// Hooks adapts the cache to the core evaluation seam.
func (c *Cache) Hooks() *core.Hooks {
	return &core.Hooks{Die: c.Die, ChipletKg: c.ChipletKg}
}

// Die is a memoized mfg.Die. Errors are not cached: they are cheap
// (validation rejects before any model math) and rare.
func (c *Cache) Die(n *tech.Node, d tech.DesignType, areaMM2 float64, p mfg.Params) (mfg.Result, error) {
	key := dieKey{node: n, dt: d, area: quantize(areaMM2), params: p}
	c.mu.RLock()
	res, ok := c.die[key]
	c.mu.RUnlock()
	if ok {
		c.dieHits.Add(1)
		return res, nil
	}
	res, err := mfg.Die(n, d, areaMM2, p)
	if err != nil {
		return mfg.Result{}, err
	}
	c.dieMisses.Add(1)
	c.mu.Lock()
	c.die[key] = res
	c.mu.Unlock()
	return res, nil
}

// ChipletKg is a memoized descarbon.ChipletKg.
func (c *Cache) ChipletKg(gates float64, n *tech.Node, p descarbon.Params) (float64, error) {
	key := desKey{node: n, gates: quantize(gates), params: p}
	c.mu.RLock()
	kg, ok := c.des[key]
	c.mu.RUnlock()
	if ok {
		c.desHits.Add(1)
		return kg, nil
	}
	kg, err := descarbon.ChipletKg(gates, n, p)
	if err != nil {
		return 0, err
	}
	c.desMisses.Add(1)
	c.mu.Lock()
	c.des[key] = kg
	c.mu.Unlock()
	return kg, nil
}

// Stats snapshots the hit counters.
func (c *Cache) Stats() Stats {
	return Stats{
		DieHits:      c.dieHits.Load(),
		DieMisses:    c.dieMisses.Load(),
		DesignHits:   c.desHits.Load(),
		DesignMisses: c.desMisses.Load(),
	}
}

// Len returns the number of memoized entries (both tables).
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.die) + len(c.des)
}

package sensitivity

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ecochip/internal/engine"
	"ecochip/internal/testcases"
)

// The compiled tornado must be bit-identical — same factor order, same
// float bits in every column — to the per-evaluation reference path
// across random systems (all packaging archetypes, reuse flags, NRE,
// operational specs), perturbation magnitudes and worker counts. This
// test is the guard on the per-factor dirty-set declarations: a factor
// reaching a sub-model its dirty set does not name shows up here as a
// bit mismatch.
func TestCompiledTornadoMatchesReferenceRandomized(t *testing.T) {
	d := db()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20260726))
	rels := []float64{0.1, 0.25, 0.4}

	evaluated := 0
	for trial := 0; trial < 30; trial++ {
		base := testcases.Random(rng, d)
		rel := rels[trial%len(rels)]

		want, refErr := TornadoReference(ctx, base, d, rel, engine.WithWorkers(2))
		for _, workers := range []int{1, 3} {
			got, err := TornadoCtx(ctx, base, d, rel, engine.WithWorkers(workers))
			if refErr != nil {
				if err == nil {
					t.Fatalf("trial %d (%s): reference failed (%v) but compiled tornado succeeded", trial, base.Name, refErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d (%s, %d chiplets, arch %v, rel %g): compiled tornado failed: %v",
					trial, base.Name, len(base.Chiplets), base.Packaging.Arch, rel, err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d factors, want %d", trial, len(got), len(want))
			}
			for k := range want {
				if got[k].Factor != want[k].Factor {
					t.Fatalf("trial %d factor %d: %q, want %q (ranking diverged)", trial, k, got[k].Factor, want[k].Factor)
				}
				if math.Float64bits(got[k].BaseKg) != math.Float64bits(want[k].BaseKg) ||
					math.Float64bits(got[k].LowKg) != math.Float64bits(want[k].LowKg) ||
					math.Float64bits(got[k].HighKg) != math.Float64bits(want[k].HighKg) {
					t.Fatalf("trial %d (%d chiplets, arch %v, nre=%v, op=%v, rel %g) workers=%d factor %q differs\nwant %+v\ngot  %+v",
						trial, len(base.Chiplets), base.Packaging.Arch, base.IncludeNRE, base.Operation != nil, rel,
						workers, want[k].Factor, want[k], got[k])
				}
			}
		}
		if refErr == nil {
			evaluated++
		}
	}
	if evaluated < 15 {
		t.Fatalf("only %d of 30 random trials evaluated cleanly; generator too error-prone", evaluated)
	}
}

// The compiled path must reproduce the reference's error behavior for
// out-of-domain perturbations (a lifetime scaled past the model's bound
// fails validation on both paths).
func TestCompiledTornadoErrorParity(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	op := *base.Operation
	op.LifetimeYears = 28 // 28 * 1.25 = 35 > the model's 30-year bound
	base.Operation = &op
	ctx := context.Background()
	if _, err := TornadoReference(ctx, base, d, 0.25); err == nil {
		t.Fatal("reference accepted an out-of-domain lifetime perturbation")
	}
	if _, err := TornadoCtx(ctx, base, d, 0.25); err == nil {
		t.Fatal("compiled tornado accepted an out-of-domain lifetime perturbation")
	}
}

func TestTornadoRelBounds(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	for _, rel := range []float64{0, -0.2, 1, 1.5} {
		if _, err := Tornado(base, d, rel); err == nil {
			t.Errorf("rel=%g should fail", rel)
		}
		if _, err := TornadoReference(context.Background(), base, d, rel); err == nil {
			t.Errorf("reference rel=%g should fail", rel)
		}
	}
}

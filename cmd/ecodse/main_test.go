package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecochip/internal/config"
)

func exampleDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := config.WriteExampleDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func cfgFor(mode string) runConfig {
	return runConfig{mode: mode, rel: 0.25, samples: 50, seed: 1, workers: 1}
}

func TestRunSweepMode(t *testing.T) {
	var out, stats strings.Builder
	if err := run(exampleDir(t), cfgFor("sweep"), &out, &stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Pareto front") {
		t.Errorf("sweep output missing front:\n%s", out.String())
	}
}

// The compiled and reference sweep paths must print identical tables.
func TestRunSweepUncompiledMatchesCompiled(t *testing.T) {
	dir := exampleDir(t)
	var compiled, reference strings.Builder
	if err := run(dir, cfgFor("sweep"), &compiled, nil); err != nil {
		t.Fatal(err)
	}
	cfg := cfgFor("sweep")
	cfg.uncompiled = true
	if err := run(dir, cfg, &reference, nil); err != nil {
		t.Fatal(err)
	}
	if compiled.String() != reference.String() {
		t.Errorf("compiled and uncompiled sweeps diverge:\n%s\nvs\n%s", compiled.String(), reference.String())
	}
}

func TestRunSweepProgressStats(t *testing.T) {
	dir := exampleDir(t)
	cfg := cfgFor("sweep")
	cfg.progress = true
	var out, stats strings.Builder
	if err := run(dir, cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "compiled plan:") {
		t.Errorf("progress run missing compiled-plan statistics:\n%s", stats.String())
	}
	if !strings.Contains(stats.String(), "table layout:") ||
		!strings.Contains(stats.String(), "column folds") {
		t.Errorf("progress run missing table-layout statistics:\n%s", stats.String())
	}

	cfg.uncompiled = true
	var out2, stats2 strings.Builder
	if err := run(dir, cfg, &out2, &stats2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats2.String(), "memo cache:") {
		t.Errorf("uncompiled progress run missing cache statistics:\n%s", stats2.String())
	}
}

// The sharded sweep path (loopback replicas under the lease protocol,
// with an injected fault schedule) must print the exact table of the
// in-process engine path, and -progress must surface the shard
// protocol counters.
func TestRunSweepShardedMatchesEngine(t *testing.T) {
	dir := exampleDir(t)
	var plain strings.Builder
	if err := run(dir, cfgFor("sweep"), &plain, nil); err != nil {
		t.Fatal(err)
	}

	cfg := cfgFor("sweep")
	cfg.shardReplicas = 3
	cfg.shardFaults = "dup=0.4,err=0.2,seed=7"
	cfg.progress = true
	var out, stats strings.Builder
	if err := run(dir, cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	if out.String() != plain.String() {
		t.Errorf("sharded and engine sweeps diverge:\n%s\nvs\n%s", out.String(), plain.String())
	}
	if !strings.Contains(stats.String(), "shard:") || !strings.Contains(stats.String(), "leases granted") {
		t.Errorf("sharded progress run missing shard statistics:\n%s", stats.String())
	}
	if !strings.Contains(stats.String(), "point memo:") {
		t.Errorf("sharded progress run missing point-memo statistics:\n%s", stats.String())
	}

	cfg.uncompiled = true
	if err := run(dir, cfg, &out, &stats); err == nil || !strings.Contains(err.Error(), "-shard-replicas") {
		t.Errorf("sharded -uncompiled run: err = %v, want the flag conflict", err)
	}
}

func TestRunSweepShardFaultSpecRejected(t *testing.T) {
	cfg := cfgFor("sweep")
	cfg.shardReplicas = 1
	cfg.shardFaults = "drop=2.0"
	var out, stats strings.Builder
	if err := run(exampleDir(t), cfg, &out, &stats); err == nil {
		t.Error("out-of-range fault probability accepted")
	}
}

func TestRunTornadoMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), cfgFor("tornado"), &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "swing_kg") {
		t.Errorf("tornado output missing swing column:\n%s", out.String())
	}
}

func TestRunTornadoProgressStats(t *testing.T) {
	dir := exampleDir(t)
	cfg := cfgFor("tornado")
	cfg.progress = true
	var out, stats strings.Builder
	if err := run(dir, cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "param plan:") {
		t.Errorf("tornado progress run missing parameter-plan statistics:\n%s", stats.String())
	}

	cfg.uncompiled = true
	var out2, stats2 strings.Builder
	if err := run(dir, cfg, &out2, &stats2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats2.String(), "memo cache:") {
		t.Errorf("uncompiled tornado progress run missing cache statistics:\n%s", stats2.String())
	}
}

// The compiled and reference tornado / Monte Carlo paths must print
// identical tables (they are bit-identical underneath).
func TestRunAnalysisUncompiledMatchesCompiled(t *testing.T) {
	dir := exampleDir(t)
	for _, mode := range []string{"tornado", "mc"} {
		var compiled, reference strings.Builder
		if err := run(dir, cfgFor(mode), &compiled, nil); err != nil {
			t.Fatal(err)
		}
		cfg := cfgFor(mode)
		cfg.uncompiled = true
		if err := run(dir, cfg, &reference, nil); err != nil {
			t.Fatal(err)
		}
		if compiled.String() != reference.String() {
			t.Errorf("%s: compiled and uncompiled outputs diverge:\n%s\nvs\n%s", mode, compiled.String(), reference.String())
		}
	}
}

func TestRunMCProgressStats(t *testing.T) {
	cfg := cfgFor("mc")
	cfg.progress = true
	var out, stats strings.Builder
	if err := run(exampleDir(t), cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "param plan:") {
		t.Errorf("mc progress run missing parameter-plan statistics:\n%s", stats.String())
	}
}

func TestRunGroupMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), cfgFor("group"), &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "embodied carbon:") {
		t.Errorf("group output missing summary:\n%s", out.String())
	}
}

func TestRunMCMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), cfgFor("mc"), &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "relative_spread") {
		t.Errorf("mc output missing distribution:\n%s", out.String())
	}
}

func TestRunBadMode(t *testing.T) {
	var out strings.Builder
	if err := run(exampleDir(t), cfgFor("magic"), &out, nil); err == nil {
		t.Error("unknown mode should fail")
	}
}

func TestRunMissingDir(t *testing.T) {
	var out strings.Builder
	if err := run(t.TempDir(), cfgFor("sweep"), &out, nil); err == nil {
		t.Error("empty design dir should fail")
	}
}

func TestSweepNeedsNodeList(t *testing.T) {
	dir := exampleDir(t)
	// Remove the node list.
	if err := removeNodeList(dir); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(dir, cfgFor("sweep"), &out, nil); err == nil {
		t.Error("sweep without node_list.txt should fail")
	}
}

func TestWriteHeapProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.pprof")
	if err := writeHeapProfile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("heap profile is empty")
	}
}

// removeNodeList deletes node_list.txt from a design dir.
func removeNodeList(dir string) error {
	return os.Remove(filepath.Join(dir, "node_list.txt"))
}

package ecochip

import (
	"testing"
)

// The facade must expose a working end-to-end path: build a testcase,
// evaluate it, run an experiment.
func TestFacadeEndToEnd(t *testing.T) {
	db := DefaultDB()
	sys := GA102(db, 7, 14, 10, false)
	rep, err := sys.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EmbodiedKg() <= 0 || rep.TotalKg() <= rep.EmbodiedKg() {
		t.Errorf("implausible GA102 report: emb=%g tot=%g", rep.EmbodiedKg(), rep.TotalKg())
	}
	tbl, err := Experiments("fig7a", db)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Error("fig7a produced no rows")
	}
	if len(ExperimentIDs()) < 26 {
		t.Errorf("expected at least 26 experiments, got %d", len(ExperimentIDs()))
	}
}

func TestFacadeConstants(t *testing.T) {
	if Logic == Memory || Memory == Analog {
		t.Error("design-type constants must be distinct")
	}
	archs := []Architecture{RDLFanout, SiliconBridge, PassiveInterposer, ActiveInterposer, ThreeD}
	seen := map[Architecture]bool{}
	for _, a := range archs {
		if seen[a] {
			t.Errorf("duplicate architecture constant %v", a)
		}
		seen[a] = true
	}
}

func TestFacadeBlockFromArea(t *testing.T) {
	db := DefaultDB()
	ref := db.MustGet(7)
	c := BlockFromArea("x", Logic, 100, ref, 14)
	if c.NodeNm != 14 || c.Transistors <= 0 {
		t.Errorf("unexpected chiplet %+v", c)
	}
}

func TestFacadeTestcases(t *testing.T) {
	db := DefaultDB()
	for _, build := range []func() (*Report, error){
		func() (*Report, error) { return A15(db, 7, 14, 10, false).Evaluate(db) },
		func() (*Report, error) { return EMR(db, 10, false).Evaluate(db) },
	} {
		rep, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalKg() <= 0 {
			t.Error("testcase should evaluate to positive carbon")
		}
	}
}

func TestDefaultPackagingAndCost(t *testing.T) {
	p := DefaultPackaging(RDLFanout)
	if err := p.Validate(); err != nil {
		t.Errorf("default packaging invalid: %v", err)
	}
	cp := DefaultCostParams()
	if err := cp.Validate(); err != nil {
		t.Errorf("default cost params invalid: %v", err)
	}
}

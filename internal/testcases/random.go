package testcases

import (
	"fmt"
	"math/rand"

	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/opcarbon"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// Randomized system generation for equivalence testing. Every compiled
// fast path in this repository (sweep plans, parameter plans) carries a
// bit-identity contract against its uncompiled reference, and the suites
// guarding those contracts must draw from the same structurally-valid
// slice of the model's feature space: packaging archetypes, reuse flags,
// per-chiplet volumes, the NRE extension, operational specs. This
// generator is that shared slice; it lives here (not in a _test.go file)
// so the explore, sensitivity and uncertainty suites can all import it.

// MaskNodes are candidate nodes present in both the technology database
// and the default cost model's mask-set table, so randomized systems
// evaluate cleanly under the carbon and dollar models alike.
var MaskNodes = []int{7, 10, 14, 22, 28, 40, 65}

// Random builds a random but structurally valid multi- or single-chiplet
// system spanning the model's feature space. Callers own the rng, so a
// fixed seed reproduces the exact system sequence.
func Random(rng *rand.Rand, db *tech.DB) *core.System {
	ref := db.MustGet(7)
	nc := 1 + rng.Intn(4)
	types := []tech.DesignType{tech.Logic, tech.Memory, tech.Analog}
	chiplets := make([]core.Chiplet, nc)
	for i := range chiplets {
		c := core.BlockFromArea(
			fmt.Sprintf("blk%d", i),
			types[rng.Intn(len(types))],
			20+rng.Float64()*180, // 20 - 200 mm^2 at the reference node
			ref,
			MaskNodes[rng.Intn(len(MaskNodes))],
		)
		c.Reused = rng.Intn(4) == 0
		switch rng.Intn(3) {
		case 0:
			c.ManufacturedParts = 0 // DefaultVolume
		case 1:
			c.ManufacturedParts = 50_000
		case 2:
			c.ManufacturedParts = 250_000
		}
		chiplets[i] = c
	}
	arch := pkgcarbon.Architectures[rng.Intn(len(pkgcarbon.Architectures))]
	s := &core.System{
		Name:       fmt.Sprintf("rand-%d", rng.Int63()),
		Chiplets:   chiplets,
		Packaging:  pkgcarbon.DefaultParams(arch),
		Mfg:        mfg.DefaultParams(),
		Design:     descarbon.DefaultParams(),
		IncludeNRE: rng.Intn(2) == 0,
	}
	if rng.Intn(2) == 0 {
		s.SystemVolume = 150_000
	}
	if rng.Intn(3) > 0 {
		s.Operation = &opcarbon.Spec{
			DutyCycle:       0.15,
			LifetimeYears:   2 + float64(rng.Intn(3)),
			CarbonIntensity: 0.3 + 0.4*rng.Float64(),
			AnnualEnergyKWh: 50 + 200*rng.Float64(),
		}
	}
	return s
}

// RandomNodes returns a random 1-3 element candidate node set drawn from
// MaskNodes without repetition.
func RandomNodes(rng *rand.Rand) []int {
	n := 1 + rng.Intn(3)
	perm := rng.Perm(len(MaskNodes))
	nodes := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = MaskNodes[perm[i]]
	}
	return nodes
}

package floorplan

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func randBlocks(rng *rand.Rand) []Block {
	n := 1 + rng.Intn(7)
	out := make([]Block, n)
	for i := range out {
		out[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: 1 + rng.Float64()*200}
		if rng.Intn(4) == 0 {
			out[i].AspectRatio = 0.5 + rng.Float64()
		}
	}
	// Duplicate areas exercise the stable-sort path.
	if n > 2 && rng.Intn(2) == 0 {
		out[n-1].AreaMM2 = out[0].AreaMM2
	}
	return out
}

func placementsEqual(a, b []Placement) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name ||
			math.Float64bits(a[i].X) != math.Float64bits(b[i].X) ||
			math.Float64bits(a[i].Y) != math.Float64bits(b[i].Y) ||
			math.Float64bits(a[i].Width) != math.Float64bits(b[i].Width) ||
			math.Float64bits(a[i].Height) != math.Float64bits(b[i].Height) {
			return false
		}
	}
	return true
}

// One reused Scratch must keep producing results bit-identical to the
// allocate-fresh Plan across random block sets.
func TestScratchPlanMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc Scratch
	for trial := 0; trial < 100; trial++ {
		blocks := randBlocks(rng)
		want, err := Plan(blocks, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sc.Plan(blocks, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(want.WidthMM) != math.Float64bits(got.WidthMM) ||
			math.Float64bits(want.HeightMM) != math.Float64bits(got.HeightMM) ||
			math.Float64bits(want.ChipletAreaMM2) != math.Float64bits(got.ChipletAreaMM2) {
			t.Fatalf("trial %d: bounding box differs: %+v vs %+v", trial, want, got)
		}
		if !placementsEqual(want.Placements, got.Placements) {
			t.Fatalf("trial %d: placements differ\nwant %+v\ngot  %+v", trial, want.Placements, got.Placements)
		}
		if len(want.Adjacencies) != len(got.Adjacencies) {
			t.Fatalf("trial %d: adjacency counts differ: %d vs %d", trial, len(want.Adjacencies), len(got.Adjacencies))
		}
		for i := range want.Adjacencies {
			if want.Adjacencies[i] != got.Adjacencies[i] {
				t.Fatalf("trial %d: adjacency %d differs: %+v vs %+v", trial, i, want.Adjacencies[i], got.Adjacencies[i])
			}
		}
	}
}

func TestScratchPlanNoAdjacencies(t *testing.T) {
	var sc Scratch
	blocks := []Block{{Name: "a", AreaMM2: 100}, {Name: "b", AreaMM2: 60}, {Name: "c", AreaMM2: 30}}
	got, err := sc.PlanNoAdjacencies(blocks, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Adjacencies != nil {
		t.Error("PlanNoAdjacencies should not compute adjacencies")
	}
	want, err := Plan(blocks, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(want.AreaMM2()) != math.Float64bits(got.AreaMM2()) {
		t.Errorf("bounding box differs: %g vs %g", want.AreaMM2(), got.AreaMM2())
	}
}

func TestScratchPlanValidates(t *testing.T) {
	var sc Scratch
	if _, err := sc.Plan(nil, 0.5); err == nil {
		t.Error("empty block list should fail")
	}
	if _, err := sc.Plan([]Block{{Name: "a", AreaMM2: 10}}, 5); err == nil {
		t.Error("out-of-range spacing should fail")
	}
	if _, err := sc.Plan([]Block{{Name: "a", AreaMM2: -1}}, 0.5); err == nil {
		t.Error("non-positive area should fail")
	}
}

// Package core is the ECO-CHIP orchestrator: it composes the technology
// database, yield/wafer geometry, manufacturing, design, packaging and
// operational models into the paper's total-carbon estimate
// (Section III-B):
//
//	C_tot = C_emb + lifetime * C_op          (Eq. 1)
//	C_emb = C_mfg + C_des + C_HI             (Eq. 2)
//
// A System describes a monolithic SoC or a heterogeneous (chiplet-based)
// package; Evaluate produces a Report with the full per-chiplet and
// per-source carbon breakdown plus comparisons against the ACT baseline
// and the dollar-cost model.
package core

import (
	"fmt"

	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/noc"
	"ecochip/internal/opcarbon"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// DefaultVolume is the manufacturing volume the paper's amortization
// experiments assume (N_Mi = N_S = 100,000).
const DefaultVolume = 100_000

// Chiplet is one block of a system. The canonical size description is the
// transistor count, so the block can be re-targeted to any node during
// design-space exploration; use BlockFromArea to derive the count from a
// die-area measurement at a reference node.
type Chiplet struct {
	// Name identifies the chiplet in reports.
	Name string
	// Type selects the area-scaling class (logic / memory / analog).
	Type tech.DesignType
	// Transistors is the block's transistor budget.
	Transistors float64
	// NodeNm is the process node this chiplet is implemented in.
	NodeNm int
	// ManufacturedParts is N_Mi, the volume over which this chiplet's
	// design carbon is amortized. Zero selects DefaultVolume.
	ManufacturedParts int
	// Reused marks a pre-designed, silicon-proven chiplet whose design
	// carbon has already been paid by earlier products (the "reuse"
	// lever): its C_des contribution is zero.
	Reused bool
}

// BlockFromArea builds a Chiplet from a measured die area at a reference
// node (the form teardown data arrives in).
func BlockFromArea(name string, t tech.DesignType, areaMM2 float64, refNode *tech.Node, targetNm int) Chiplet {
	return Chiplet{
		Name:        name,
		Type:        t,
		Transistors: refNode.Transistors(t, areaMM2),
		NodeNm:      targetNm,
	}
}

// System describes one design point: a set of chiplets, the packaging
// architecture joining them, and the fab/design/operation context.
type System struct {
	// Name identifies the system in reports.
	Name string
	// Chiplets are the blocks. A Monolithic system merges them into a
	// single die.
	Chiplets []Chiplet
	// Monolithic, when true, manufactures all blocks on one die in each
	// block's own node (all must match) with no packaging overheads.
	Monolithic bool
	// Packaging configures C_HI; ignored for monolithic or
	// single-chiplet systems.
	Packaging pkgcarbon.Params
	// Mfg configures the fab context.
	Mfg mfg.Params
	// Design configures the design-carbon model.
	Design descarbon.Params
	// SystemVolume is N_S. Zero selects DefaultVolume.
	SystemVolume int
	// Operation is the operating specification; nil skips operational
	// carbon (embodied-only studies such as Fig. 2).
	Operation *opcarbon.Spec
	// IncludeNRE enables the mask-set NRE carbon extension the paper
	// leaves as future work (Section V-C): each chiplet design pays a
	// one-time mask-set carbon amortized over its manufacturing volume.
	IncludeNRE bool
	// NRE configures the mask-set model; the zero value selects
	// mfg.DefaultNREParams when IncludeNRE is set.
	NRE mfg.NREParams
}

// ChipletReport is the per-chiplet carbon breakdown.
type ChipletReport struct {
	Name              string
	Type              tech.DesignType
	NodeNm            int
	AreaMM2           float64
	Yield             float64
	MfgKg             float64
	WastageKg         float64
	DesignKgTotal     float64
	DesignKgAmortized float64
}

// Report is the full evaluation result of a system.
type Report struct {
	System string

	// Chiplets holds per-die breakdowns (one entry for a monolith).
	Chiplets []ChipletReport

	// MfgKg is C_mfg: summed manufacturing carbon of all dies.
	MfgKg float64
	// DesignKg is C_des: amortized design carbon per part (Eq. 12).
	DesignKg float64
	// HIKg is C_HI: packaging + inter-die communication carbon.
	HIKg float64
	// NREKg is the amortized mask-set carbon (zero unless the system
	// enables the NRE extension).
	NREKg float64
	// OperationalKg is lifetime * C_op (zero without an operating spec).
	OperationalKg float64

	// Packaging is the detailed C_HI result (nil for monoliths).
	Packaging *pkgcarbon.Result
	// RouterPowerW is the inter-die communication power overhead that
	// was added to the operational model.
	RouterPowerW float64
}

// EmbodiedKg returns C_emb per Eq. (2), plus the optional NRE term.
func (r *Report) EmbodiedKg() float64 { return r.MfgKg + r.DesignKg + r.HIKg + r.NREKg }

// TotalKg returns C_tot per Eq. (1).
func (r *Report) TotalKg() float64 { return r.EmbodiedKg() + r.OperationalKg }

// Validate checks the system description against the model's domains.
func (s *System) Validate(db *tech.DB) error {
	if len(s.Chiplets) == 0 {
		return fmt.Errorf("core: system %q has no chiplets", s.Name)
	}
	for i, c := range s.Chiplets {
		if c.Name == "" {
			return fmt.Errorf("core: system %q chiplet %d has no name", s.Name, i)
		}
		if c.Transistors <= 0 {
			return fmt.Errorf("core: chiplet %q has non-positive transistor count", c.Name)
		}
		if !db.Has(c.NodeNm) {
			return fmt.Errorf("core: chiplet %q uses unsupported node %dnm", c.Name, c.NodeNm)
		}
		if c.ManufacturedParts < 0 {
			return fmt.Errorf("core: chiplet %q has negative volume", c.Name)
		}
	}
	if s.Monolithic {
		for _, c := range s.Chiplets[1:] {
			if c.NodeNm != s.Chiplets[0].NodeNm {
				return fmt.Errorf("core: monolithic system %q mixes nodes %d and %d",
					s.Name, s.Chiplets[0].NodeNm, c.NodeNm)
			}
		}
	}
	if s.SystemVolume < 0 {
		return fmt.Errorf("core: system %q has negative volume", s.Name)
	}
	if err := s.Mfg.Validate(); err != nil {
		return err
	}
	if err := s.Design.Validate(); err != nil {
		return err
	}
	if !s.Monolithic && len(s.Chiplets) > 1 {
		if err := s.Packaging.Validate(); err != nil {
			return err
		}
	}
	if s.Operation != nil {
		if err := s.Operation.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Hooks lets an evaluation engine intercept the pure, expensive
// sub-models of an evaluation with alternative implementations —
// in practice the memoizing cache of internal/engine, which avoids
// recomputing identical per-die results across the thousands of
// near-duplicate systems a design-space sweep produces. A nil *Hooks or
// a nil field falls back to the direct model call, so Evaluate(db) and
// EvaluateWith(db, nil) are the same computation.
type Hooks struct {
	// Die replaces mfg.Die.
	Die func(n *tech.Node, d tech.DesignType, areaMM2 float64, p mfg.Params) (mfg.Result, error)
	// ChipletKg replaces descarbon.ChipletKg.
	ChipletKg func(gates float64, n *tech.Node, p descarbon.Params) (float64, error)
}

func (h *Hooks) die(n *tech.Node, d tech.DesignType, areaMM2 float64, p mfg.Params) (mfg.Result, error) {
	if h != nil && h.Die != nil {
		return h.Die(n, d, areaMM2, p)
	}
	return mfg.Die(n, d, areaMM2, p)
}

func (h *Hooks) chipletKg(gates float64, n *tech.Node, p descarbon.Params) (float64, error) {
	if h != nil && h.ChipletKg != nil {
		return h.ChipletKg(gates, n, p)
	}
	return descarbon.ChipletKg(gates, n, p)
}

// Evaluate runs the full ECO-CHIP carbon analysis of the system.
func (s *System) Evaluate(db *tech.DB) (*Report, error) {
	return s.EvaluateWith(db, nil)
}

// EvaluateWith is Evaluate with the sub-model hooks of a batch engine
// (nil hooks reproduce Evaluate exactly).
func (s *System) EvaluateWith(db *tech.DB, h *Hooks) (*Report, error) {
	if err := s.Validate(db); err != nil {
		return nil, err
	}
	if s.Monolithic || len(s.Chiplets) == 1 {
		return s.evaluateMonolith(db, h)
	}
	return s.evaluateHI(db, h)
}

// evaluateMonolith merges all blocks onto one die: block areas are summed
// (each block at its own density), yield applies to the merged area, and
// there is no packaging term.
func (s *System) evaluateMonolith(db *tech.DB, h *Hooks) (*Report, error) {
	cell, err := s.MonolithCell(db, s.Chiplets[0].NodeNm, h)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		System: s.Name,
		Chiplets: []ChipletReport{{
			Name:              s.Name + "-monolith",
			Type:              tech.Logic,
			NodeNm:            cell.Node.Nm,
			AreaMM2:           cell.AreaMM2,
			Yield:             cell.Yield,
			MfgKg:             cell.MfgKg,
			WastageKg:         cell.WastageKg,
			DesignKgTotal:     cell.DesignKgTotal,
			DesignKgAmortized: cell.DesignKgAmortized,
		}},
		MfgKg:    cell.MfgKg,
		DesignKg: cell.DesignKgAmortized,
		NREKg:    cell.NREKg,
	}
	return s.finish(rep)
}

func (s *System) nreParams() mfg.NREParams {
	if s.NRE == (mfg.NREParams{}) {
		return mfg.DefaultNREParams()
	}
	return s.NRE
}

// evaluateHI evaluates a multi-chiplet package: per-chiplet manufacturing
// and design carbon plus the packaging/communication overheads. The
// per-chiplet work is one DieCell each (the unit compiled sweep plans
// tabulate); this function owns only the accumulation order and the
// whole-package terms.
func (s *System) evaluateHI(db *tech.DB, h *Hooks) (*Report, error) {
	rep := &Report{System: s.Name}

	pkgChiplets := make([]pkgcarbon.Chiplet, len(s.Chiplets))
	for i, c := range s.Chiplets {
		cell, err := s.CellFor(db, c, c.NodeNm, h)
		if err != nil {
			return nil, err
		}
		rep.Chiplets = append(rep.Chiplets, ChipletReport{
			Name:              c.Name,
			Type:              c.Type,
			NodeNm:            cell.Node.Nm,
			AreaMM2:           cell.AreaMM2,
			Yield:             cell.Yield,
			MfgKg:             cell.MfgKg,
			WastageKg:         cell.WastageKg,
			DesignKgTotal:     cell.DesignKgTotal,
			DesignKgAmortized: cell.DesignKgAmortized,
		})
		rep.MfgKg += cell.MfgKg
		rep.DesignKg += cell.DesignKgAmortized
		// Reused (pre-designed, silicon-proven) chiplets already have a
		// mask set; like design carbon, their NRE share is zero in the
		// cell.
		rep.NREKg += cell.NREKg
		pkgChiplets[i] = pkgcarbon.Chiplet{Name: c.Name, AreaMM2: cell.AreaMM2, Node: cell.Node}
	}

	pkg, err := pkgcarbon.Estimate(pkgChiplets, s.Packaging)
	if err != nil {
		return nil, err
	}
	rep.Packaging = pkg
	rep.HIKg = pkg.TotalKg()
	rep.RouterPowerW = pkg.RouterTotalPowerW

	// Design carbon of the inter-die communication fabric (routers /
	// PHYs), amortized over the system volume per Eq. (12). The fabric
	// is synthesized once per system design.
	share, err := s.CommDesignShareKg(db, s.Chiplets[0].NodeNm, len(s.Chiplets), h)
	if err != nil {
		return nil, err
	}
	rep.DesignKg += share

	return s.finish(rep)
}

// finish adds the operational term.
func (s *System) finish(rep *Report) (*Report, error) {
	if s.Operation != nil {
		op, err := s.Operation.LifetimeKg(rep.RouterPowerW)
		if err != nil {
			return nil, err
		}
		rep.OperationalKg = op
	}
	return rep, nil
}

func (s *System) volume() int {
	if s.SystemVolume == 0 {
		return DefaultVolume
	}
	return s.SystemVolume
}

// routerTransistors returns the transistor count of one communication
// endpoint (router or PHY) for the packaging architecture.
func routerTransistors(p pkgcarbon.Params) (float64, error) {
	switch p.Arch {
	case pkgcarbon.RDLFanout, pkgcarbon.SiliconBridge:
		return noc.PHYTransistors(p.Router)
	default:
		return noc.Transistors(p.Router)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecochip/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run("fig7a", "", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== fig7a ==") {
		t.Errorf("output missing fig7a table:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run("fig99", "", &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunAllWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run("", dir, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range experiments.IDs() {
		path := filepath.Join(dir, id+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing CSV for %s: %v", id, err)
			continue
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Errorf("%s.csv has no data rows", id)
		}
	}
	// Every table printed.
	if got := strings.Count(out.String(), "== "); got < len(experiments.IDs()) {
		t.Errorf("printed %d tables, want %d", got, len(experiments.IDs()))
	}
}

package uncertainty

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ecochip/internal/engine"
	"ecochip/internal/testcases"
)

func distBitIdentical(a, b Distribution) bool {
	return a.Samples == b.Samples &&
		math.Float64bits(a.MeanKg) == math.Float64bits(b.MeanKg) &&
		math.Float64bits(a.P5Kg) == math.Float64bits(b.P5Kg) &&
		math.Float64bits(a.P50Kg) == math.Float64bits(b.P50Kg) &&
		math.Float64bits(a.P95Kg) == math.Float64bits(b.P95Kg) &&
		math.Float64bits(a.MinKg) == math.Float64bits(b.MinKg) &&
		math.Float64bits(a.MaxKg) == math.Float64bits(b.MaxKg)
}

// The compiled Monte Carlo must be bit-identical to the per-evaluation
// reference path — same seed-derived draws, same clamping, same float
// bits in every distribution field — across random systems, random
// spreads, seeds and worker counts. This test guards both the sandbox
// node perturbation (replacing per-sample db.Clone) and the per-sample
// dirty-set declaration (floorplan/package-carbon reuse).
func TestCompiledMonteCarloMatchesReferenceRandomized(t *testing.T) {
	d := db()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20260727))

	evaluated := 0
	for trial := 0; trial < 20; trial++ {
		base := testcases.Random(rng, d)
		spread := Spread{
			DefectDensity: 0.5 * rng.Float64(),
			EPA:           0.5 * rng.Float64(),
			FabIntensity:  0.5 * rng.Float64(),
			DesignTime:    0.5 * rng.Float64(),
		}
		if trial%5 == 0 {
			spread.EPA = 0 // exercise the draw-skipping zero-spread path
		}
		seed := rng.Int63()
		n := 40 + rng.Intn(40)

		want, refErr := RunReference(ctx, base, d, spread, n, seed, engine.WithWorkers(2))
		for _, workers := range []int{1, 4} {
			got, err := RunCtx(ctx, base, d, spread, n, seed, engine.WithWorkers(workers))
			if refErr != nil {
				if err == nil {
					t.Fatalf("trial %d: reference failed (%v) but compiled run succeeded", trial, refErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d (%s, %d chiplets, arch %v): compiled run failed: %v",
					trial, base.Name, len(base.Chiplets), base.Packaging.Arch, err)
			}
			if !distBitIdentical(got, want) {
				t.Fatalf("trial %d (%d chiplets, arch %v, nre=%v, spread %+v, seed %d, n %d) workers=%d distribution differs\nwant %+v\ngot  %+v",
					trial, len(base.Chiplets), base.Packaging.Arch, base.IncludeNRE, spread, seed, n, workers, want, got)
			}
		}
		if refErr == nil {
			evaluated++
		}
	}
	if evaluated < 10 {
		t.Fatalf("only %d of 20 random trials evaluated cleanly; generator too error-prone", evaluated)
	}
}

// The reference path pins the compiled path on the canonical testcase.
// Note this is parity between the two CURRENT paths, not with releases
// before the compiled kernel: the per-sample math/rand source was
// deliberately replaced with the splitmix64 stream in both paths at
// once, so fixed-seed distributions differ from pre-kernel versions
// (seeded reproducibility is promised within a version, not across).
func TestRunMatchesReferenceCanonical(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	want, err := RunReference(context.Background(), base, d, DefaultSpread(), 200, 2024)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(base, d, DefaultSpread(), 200, 2024)
	if err != nil {
		t.Fatal(err)
	}
	if !distBitIdentical(got, want) {
		t.Fatalf("compiled run diverges from reference:\nwant %+v\ngot  %+v", want, got)
	}
}

package opcarbon

import (
	"fmt"
)

// DesignElectrical derives the Eq. (14) inputs from a design's physical
// parameters instead of measured values: switched capacitance scales
// with transistor count and node pitch, leakage with transistor count
// and node, matching the constants used by the NoC power model so both
// paths agree.
type DesignElectrical struct {
	// Transistors is the design's device budget.
	Transistors float64
	// NodeNm is the process node.
	NodeNm int
	// Vdd is the node's supply voltage.
	Vdd float64
	// FreqHz is the average use-case clock.
	FreqHz float64
	// Activity is the average switching factor.
	Activity float64
}

// Per-transistor electrical constants (shared calibration with
// internal/noc): effective switched capacitance at 65 nm scaled by
// node/65, and leakage current at 7 nm scaled by 7/node.
const (
	capPerTransistor65F = 1.3e-16
	leakPerTransistor7A = 4e-11
)

// Electrical lowers the design description into an Eq. (14) Electrical
// operating point.
func (d DesignElectrical) Electrical() (Electrical, error) {
	if d.Transistors <= 0 {
		return Electrical{}, fmt.Errorf("opcarbon: transistor count must be positive, got %g", d.Transistors)
	}
	if d.NodeNm <= 0 {
		return Electrical{}, fmt.Errorf("opcarbon: node must be positive, got %d", d.NodeNm)
	}
	e := Electrical{
		Vdd:      d.Vdd,
		Activity: d.Activity,
		CapF:     d.Transistors * capPerTransistor65F * float64(d.NodeNm) / 65,
		LeakA:    d.Transistors * leakPerTransistor7A * 7 / float64(d.NodeNm),
		FreqHz:   d.FreqHz,
	}
	if err := e.Validate(); err != nil {
		return Electrical{}, err
	}
	return e, nil
}

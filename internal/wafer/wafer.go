// Package wafer implements the wafer-geometry model of Section III-C(3)
// of the ECO-CHIP paper: dies-per-wafer and the amortized silicon wasted
// at the wafer periphery (Eqs. (7) and (8)).
//
// The die cannot occupy the zone within half its diagonal of the wafer
// edge, so the usable radius shrinks by L_d/sqrt(2) where L_d is the die
// side length (dies are modeled as squares):
//
//	DPW      = floor( pi * (D_wafer/2 - L_d/sqrt(2))^2 / A_die )
//	A_wasted = (A_wafer - DPW * A_die) / DPW
package wafer

import (
	"fmt"
	"math"
)

// DefaultDiameterMM is the wafer diameter the paper's experiments assume
// (450 mm; Table I supports 25-450 mm).
const DefaultDiameterMM = 450.0

// Wafer describes a manufacturing wafer by its diameter in mm.
type Wafer struct {
	DiameterMM float64
}

// Default returns the 450 mm wafer used throughout the paper's evaluation.
func Default() Wafer { return Wafer{DiameterMM: DefaultDiameterMM} }

// Validate checks the Table I supported diameter range (25-450 mm).
func (w Wafer) Validate() error {
	if w.DiameterMM < 25 || w.DiameterMM > 450 {
		return fmt.Errorf("wafer: diameter %g mm outside Table I range [25, 450]", w.DiameterMM)
	}
	return nil
}

// AreaMM2 returns the full wafer area in mm^2.
func (w Wafer) AreaMM2() float64 {
	r := w.DiameterMM / 2
	return math.Pi * r * r
}

// DiesPerWafer returns DPW per Eq. (7) for a square die of the given area
// in mm^2. It returns 0 when the die is too large for the usable region.
func (w Wafer) DiesPerWafer(dieAreaMM2 float64) int {
	if dieAreaMM2 <= 0 {
		panic(fmt.Sprintf("wafer: die area must be positive, got %g", dieAreaMM2))
	}
	side := math.Sqrt(dieAreaMM2)
	usableRadius := w.DiameterMM/2 - side/math.Sqrt2
	if usableRadius <= 0 {
		return 0
	}
	return int(math.Floor(math.Pi * usableRadius * usableRadius / dieAreaMM2))
}

// WastedAreaPerDie returns A_wasted per Eq. (8): the wafer area not
// occupied by any die, amortized across the dies on the wafer, in mm^2.
// It returns an error when the die does not fit on the wafer at all.
func (w Wafer) WastedAreaPerDie(dieAreaMM2 float64) (float64, error) {
	dpw := w.DiesPerWafer(dieAreaMM2)
	if dpw == 0 {
		return 0, fmt.Errorf("wafer: die of %g mm^2 does not fit on a %g mm wafer", dieAreaMM2, w.DiameterMM)
	}
	return (w.AreaMM2() - float64(dpw)*dieAreaMM2) / float64(dpw), nil
}

// UtilizationFraction returns the fraction of the wafer area covered by
// dies: DPW * A_die / A_wafer in [0, 1). Smaller dies pack better and
// waste less periphery, which is the effect Fig. 3 of the paper builds on.
func (w Wafer) UtilizationFraction(dieAreaMM2 float64) float64 {
	dpw := w.DiesPerWafer(dieAreaMM2)
	return float64(dpw) * dieAreaMM2 / w.AreaMM2()
}

package shard

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// testSweep compiles one randomized sweep registered in a fresh catalog.
func testSweep(t *testing.T, rng *rand.Rand) (*explore.CompiledPlan, *Catalog, string) {
	t.Helper()
	db := tech.Default()
	cp := cost.DefaultParams()
	for {
		sys := testcases.Random(rng, db)
		nodes := testcases.RandomNodes(rng)
		cat := NewCatalog()
		key, err := cat.RegisterSweep(sys, db, nodes, cp)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := cat.Plan(key)
		if errors.Is(err, explore.ErrNoFastPath) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		return plan, cat, key
	}
}

func samePoint(a, b explore.Point) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return math.Float64bits(a.EmbodiedKg) == math.Float64bits(b.EmbodiedKg) &&
		math.Float64bits(a.TotalKg) == math.Float64bits(b.TotalKg) &&
		math.Float64bits(a.CostUSD) == math.Float64bits(b.CostUSD) &&
		math.Float64bits(a.PackageAreaMM2) == math.Float64bits(b.PackageAreaMM2)
}

func assertSamePoints(t *testing.T, want, got []explore.Point, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !samePoint(want[i], got[i]) {
			t.Fatalf("%s: point %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// fastCfg keeps protocol timing test-friendly.
func fastCfg() Config {
	return Config{BlockSize: 16, LeaseBlocks: 3, LeaseTimeout: 5 * time.Second,
		RetryBackoff: time.Millisecond, BackoffMax: 4 * time.Millisecond, MaxRetries: 2, Seed: 1}
}

// The healthy loopback path: several replicas, no faults, exact
// mixed-radix reassembly.
func TestSweepLoopbackParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plan, cat, key := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	transports := []Transport{NewReplica(cat), NewReplica(cat), NewReplica(cat)}
	co := NewCoordinator(plan, key, transports, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "loopback sweep")
	st := co.Stats()
	if st.BlocksCompleted != uint64(blockCount(plan.Combos(), 16)) {
		t.Errorf("completed %d blocks, want %d", st.BlocksCompleted, blockCount(plan.Combos(), 16))
	}
	if st.Fallbacks != 0 || st.LeasesExpired != 0 {
		t.Errorf("healthy run recorded faults: %+v", st)
	}
}

// Total replica loss must degrade to the local walk — logged, not an
// error — and still produce the exact result.
func TestTotalReplicaLossFallsBackLocally(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	plan, _, key := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	cfg := fastCfg()
	cfg.Logf = func(format string, args ...any) { logged = append(logged, format) }
	dead := Fault(nil, FaultSpec{})
	dead.(*faultTransport).dead = true
	co := NewCoordinator(plan, key, []Transport{dead, dead}, cfg)
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "fallback sweep")
	st := co.Stats()
	if st.Fallbacks != 1 || st.ReplicasLost != 2 {
		t.Errorf("stats = %+v, want 1 fallback after 2 lost replicas", st)
	}
	if st.BlocksLocal == 0 {
		t.Error("fallback walked no blocks locally")
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "fallback") {
		t.Errorf("fallback was not logged: %q", logged)
	}
}

// Zero transports is legal and equivalent to immediate fallback.
func TestZeroTransportsFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	plan, _, key := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(plan, key, nil, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "no-transport sweep")
	if st := co.Stats(); st.BlocksLocal != uint64(blockCount(plan.Combos(), 16)) {
		t.Errorf("stats = %+v, want every block local", st)
	}
}

// DisableFallback turns total loss into the typed error instead.
func TestDisableFallbackReturnsExhausted(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	plan, _, key := testSweep(t, rng)
	cfg := fastCfg()
	cfg.DisableFallback = true
	co := NewCoordinator(plan, key, nil, cfg)
	_, err := co.Sweep(context.Background())
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *ExhaustedError", err)
	}
	if ex.Remaining != blockCount(plan.Combos(), 16) {
		t.Errorf("Remaining = %d, want %d", ex.Remaining, blockCount(plan.Combos(), 16))
	}
}

// dupTransport delivers every block twice — the coordinator must keep
// the first write and count the second as a dedup.
type dupTransport struct{ inner Transport }

func (d *dupTransport) Execute(ctx context.Context, lease Lease, emit func(BlockResult) error) error {
	return d.inner.Execute(ctx, lease, func(res BlockResult) error {
		if err := emit(res); err != nil {
			return err
		}
		return emit(res)
	})
}

func TestDuplicateDeliveriesDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	plan, cat, key := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(plan, key, []Transport{&dupTransport{NewReplica(cat)}}, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "duplicated sweep")
	st := co.Stats()
	if st.BlocksDeduped == 0 {
		t.Errorf("stats = %+v, want deduped > 0", st)
	}
	if st.BlocksCompleted != uint64(blockCount(plan.Combos(), 16)) {
		t.Errorf("completed %d blocks, want %d", st.BlocksCompleted, blockCount(plan.Combos(), 16))
	}
}

// A stalling replica's leases must expire and requeue their blocks;
// with no other replica, the straggler burns its retry budget, is
// retired, and the local fallback still finishes the sweep exactly.
func TestLeaseExpiryReleases(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	plan, cat, key := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg()
	cfg.LeaseTimeout = 20 * time.Millisecond
	slow := Fault(NewReplica(cat), FaultSpec{Delay: 500 * time.Millisecond})
	co := NewCoordinator(plan, key, []Transport{slow}, cfg)
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "expiry sweep")
	st := co.Stats()
	if st.LeasesExpired == 0 || st.BlocksRequeued == 0 {
		t.Errorf("stats = %+v, want expired leases and requeued blocks", st)
	}
	if st.ReplicasLost != 1 || st.Fallbacks != 1 {
		t.Errorf("stats = %+v, want the straggler retired and one fallback", st)
	}
}

// badTransport mangles slots — the coordinator must reject the result,
// fail the lease, and still finish exactly via re-lease/fallback.
type badTransport struct{ inner Transport }

func (b *badTransport) Execute(ctx context.Context, lease Lease, emit func(BlockResult) error) error {
	return b.inner.Execute(ctx, lease, func(res BlockResult) error {
		res.Slots = res.Slots[:len(res.Slots)-1]
		return emit(res)
	})
}

func TestMalformedResultsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	plan, cat, key := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(plan, key, []Transport{&badTransport{NewReplica(cat)}}, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "bad-result sweep")
	st := co.Stats()
	if st.ReplicaFailures == 0 || st.BlocksCompleted != 0 {
		t.Errorf("stats = %+v, want replica failures and no accepted blocks", st)
	}
}

// Replica-side lease validation: unknown plan keys and mismatched
// geometry are typed protocol errors.
func TestReplicaRejectsBadLeases(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	plan, cat, key := testSweep(t, rng)
	rep := NewReplica(cat)
	noEmit := func(BlockResult) error { return nil }

	err := rep.Execute(context.Background(), Lease{Key: "sweep-ffffffffffffffff"}, noEmit)
	if !errors.Is(err, ErrPlanUnknown) {
		t.Errorf("unknown key: err = %v, want ErrPlanUnknown", err)
	}
	bad := Lease{Key: key, Blocks: BlockRange{0, 1}, BlockSize: 16, PlanPoints: plan.Combos() + 1}
	if err := rep.Execute(context.Background(), bad, noEmit); !errors.Is(err, ErrLeaseMismatch) {
		t.Errorf("wrong point count: err = %v, want ErrLeaseMismatch", err)
	}
	nb := blockCount(plan.Combos(), 16)
	bad = Lease{Key: key, Blocks: BlockRange{nb, nb + 1}, BlockSize: 16, PlanPoints: plan.Combos()}
	if err := rep.Execute(context.Background(), bad, noEmit); !errors.Is(err, ErrLeaseMismatch) {
		t.Errorf("span past the plan: err = %v, want ErrLeaseMismatch", err)
	}
}

func TestParseFaultSpec(t *testing.T) {
	spec, err := ParseFaultSpec("drop=0.1,dup=0.05,err=0.2,crash=0.01,crash-after=7,delay=2ms,slow=40ms,slow-prob=0.5,flap=3,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultSpec{Seed: 42, Drop: 0.1, Dup: 0.05, Err: 0.2, Crash: 0.01, CrashAfter: 7, Delay: 2 * time.Millisecond,
		Slow: 40 * time.Millisecond, SlowProb: 0.5, FlapEvery: 3}
	if spec != want {
		t.Errorf("spec = %+v, want %+v", spec, want)
	}
	if spec, err := ParseFaultSpec("  "); err != nil || spec != (FaultSpec{}) {
		t.Errorf("blank spec: %+v, %v", spec, err)
	}
	for _, bad := range []string{"drop", "drop=1.5", "nope=1", "delay=fast", "crash-after=x", "slow=never", "slow-prob=2", "flap=x"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

// Front mode: per-block skylines merged at the coordinator must match
// the single-process multi-objective front bit-for-bit.
func TestParetoFrontParity(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	plan, cat, key := testSweep(t, rng)
	objectives := []Objective{ObjEmbodied, ObjCost}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		t.Fatal(err)
	}
	want, wantTotal, err := plan.ParetoFrontCtx(context.Background(), ms)
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(plan, key, []Transport{NewReplica(cat), NewReplica(cat)}, fastCfg())
	got, gotTotal, err := co.ParetoFront(context.Background(), objectives)
	if err != nil {
		t.Fatal(err)
	}
	if gotTotal != wantTotal {
		t.Errorf("total = %d, want %d", gotTotal, wantTotal)
	}
	assertSamePoints(t, want, got, "sharded front")
}

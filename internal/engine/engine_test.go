package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func db() *tech.DB { return tech.Default() }

func TestRunIndexAddressing(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := Run(context.Background(), 100, func(_ context.Context, i int, _ *core.Hooks) (int, error) {
			return i * i, nil
		}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run(context.Background(), 0, func(_ context.Context, i int, _ *core.Hooks) (int, error) {
		t.Error("task ran for empty batch")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: got %v, %v", got, err)
	}
}

func TestRunFailFast(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), 1000, func(_ context.Context, i int, _ *core.Hooks) (int, error) {
		if i == 3 || i == 500 {
			return 0, fmt.Errorf("task %d: %w", i, boom)
		}
		return i, nil
	}, WithWorkers(4))
	if !errors.Is(err, boom) {
		t.Fatalf("want task error, got %v", err)
	}
}

func TestRunSerialErrorIsLowestIndex(t *testing.T) {
	// With one worker the walk is strictly ordered, so the error must be
	// the first failing index — same as the old serial loops.
	_, err := Run(context.Background(), 100, func(_ context.Context, i int, _ *core.Hooks) (int, error) {
		if i >= 10 {
			return 0, fmt.Errorf("task %d failed", i)
		}
		return i, nil
	}, WithWorkers(1))
	if err == nil || err.Error() != "task 10 failed" {
		t.Fatalf("serial error = %v, want task 10 failed", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ran := 0
	_, err := Run(ctx, 10000, func(_ context.Context, i int, _ *core.Hooks) (int, error) {
		mu.Lock()
		ran++
		if ran == 5 {
			cancel()
		}
		mu.Unlock()
		return i, nil
	}, WithWorkers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= 10000 {
		t.Error("cancellation did not stop the batch early")
	}
}

func TestRunProgress(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	_, err := Run(context.Background(), 50, func(_ context.Context, i int, _ *core.Hooks) (int, error) {
		return i, nil
	}, WithWorkers(4), WithProgress(func(done, total int) {
		if total != 50 {
			t.Errorf("total = %d, want 50", total)
		}
		mu.Lock()
		seen = append(seen, done)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Fatalf("progress called %d times, want 50", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress out of order at call %d: done = %d", i, d)
		}
	}
}

func TestCacheMemoizes(t *testing.T) {
	c := NewCache()
	n := db().MustGet(7)
	p := mfg.DefaultParams()
	r1, err := c.Die(n, tech.Logic, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Die(n, tech.Logic, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("cached die result differs from first computation")
	}
	direct, err := mfg.Die(n, tech.Logic, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != direct {
		t.Error("cached die result differs from the direct model call")
	}
	s := c.Stats()
	if s.DieMisses != 1 || s.DieHits != 1 {
		t.Errorf("die stats = %+v, want 1 miss / 1 hit", s)
	}

	kg1, err := c.ChipletKg(1e6, n, descarbon.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	kg2, err := c.ChipletKg(1e6, n, descarbon.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	directKg, err := descarbon.ChipletKg(1e6, n, descarbon.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if kg1 != kg2 || kg2 != directKg {
		t.Error("cached design carbon differs from the direct model call")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", hr)
	}
}

func TestCacheDistinguishesParameters(t *testing.T) {
	c := NewCache()
	d := db()
	n7, n14 := d.MustGet(7), d.MustGet(14)
	p := mfg.DefaultParams()
	greener := p
	greener.CarbonIntensity = mfg.IntensityRenewable

	r7, _ := c.Die(n7, tech.Logic, 100, p)
	r14, _ := c.Die(n14, tech.Logic, 100, p)
	rGreen, _ := c.Die(n7, tech.Logic, 100, greener)
	rSmall, _ := c.Die(n7, tech.Logic, 50, p)
	if r7 == r14 || r7 == rGreen || r7 == rSmall {
		t.Error("distinct parameters must not collide in the cache")
	}
	// A cloned DB allocates fresh nodes, so perturbed what-if nodes never
	// alias the base entries.
	d2, err := d.Clone(func(n *tech.Node) { n.DefectDensity = tech.Clamp(n.DefectDensity*1.5, 0.07, 0.3) })
	if err != nil {
		t.Fatal(err)
	}
	rClone, _ := c.Die(d2.MustGet(7), tech.Logic, 100, p)
	if rClone == r7 {
		t.Error("perturbed clone node must not share the base node's cache entry")
	}
	if c.Stats().DieMisses != 5 {
		t.Errorf("die misses = %d, want 5", c.Stats().DieMisses)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache()
	n := db().MustGet(7)
	if _, err := c.Die(n, tech.Logic, -1, mfg.DefaultParams()); err == nil {
		t.Fatal("negative area should error")
	}
	if c.Len() != 0 {
		t.Error("errors must not be cached")
	}
}

func TestEvaluateBatchMatchesSerial(t *testing.T) {
	d := db()
	systems := []*core.System{
		testcases.GA102(d, 7, 14, 10, false),
		testcases.GA102(d, 7, 7, 7, true),
		testcases.A15(d, 7, 14, 10, false),
		testcases.EMR(d, 10, false),
	}
	want := make([]*core.Report, len(systems))
	for i, s := range systems {
		rep, err := s.Evaluate(d)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := EvaluateBatch(context.Background(), d, systems, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range systems {
			assertReportsEqual(t, fmt.Sprintf("workers=%d system=%d", workers, i), want[i], got[i])
		}
	}
}

func TestEvaluateBatchError(t *testing.T) {
	d := db()
	bad := testcases.GA102(d, 7, 14, 10, false)
	bad.Chiplets[0].Transistors = -1
	_, err := EvaluateBatch(context.Background(), d,
		[]*core.System{testcases.GA102(d, 7, 14, 10, false), bad})
	if err == nil {
		t.Fatal("invalid system must fail the batch")
	}
}

// assertReportsEqual requires exact float equality on every exported
// carbon figure — the byte-identical guarantee of the engine.
func assertReportsEqual(t *testing.T, label string, want, got *core.Report) {
	t.Helper()
	if want.MfgKg != got.MfgKg || want.DesignKg != got.DesignKg ||
		want.HIKg != got.HIKg || want.NREKg != got.NREKg ||
		want.OperationalKg != got.OperationalKg {
		t.Fatalf("%s: report differs from serial path:\nwant %+v\ngot  %+v", label, want, got)
	}
	if len(want.Chiplets) != len(got.Chiplets) {
		t.Fatalf("%s: chiplet count differs", label)
	}
	for i := range want.Chiplets {
		if want.Chiplets[i] != got.Chiplets[i] {
			t.Fatalf("%s: chiplet %d differs:\nwant %+v\ngot  %+v", label, i, want.Chiplets[i], got.Chiplets[i])
		}
	}
	if (want.Packaging == nil) != (got.Packaging == nil) {
		t.Fatalf("%s: packaging presence differs", label)
	}
	if want.Packaging != nil {
		// Compare scalar packaging fields; Floorplan is a pointer to a
		// freshly allocated placement each run.
		wp, gp := *want.Packaging, *got.Packaging
		wp.Floorplan, gp.Floorplan = nil, nil
		if wp != gp {
			t.Fatalf("%s: packaging result differs:\nwant %+v\ngot  %+v", label, wp, gp)
		}
	}
}

// Package experiments contains one runner per figure of the ECO-CHIP
// paper's evaluation (Sections V and VI). Each runner regenerates the
// figure's underlying data series as a report.Table, exactly like the
// artifact scripts (fig7.py, fig9.py, ...) of the released tool print the
// raw data behind each plot.
//
// The Registry maps experiment ids ("fig2a", "fig7c", ...) to runners so
// the ecoexp CLI and the benchmark harness can enumerate them.
package experiments

import (
	"fmt"
	"sort"

	"ecochip/internal/report"
	"ecochip/internal/tech"
)

// Runner regenerates one figure's data.
type Runner func(db *tech.DB) (*report.Table, error)

var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, db *tech.DB) (*report.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(db)
}

// RunAll executes every registered experiment in id order.
func RunAll(db *tech.DB) ([]*report.Table, error) {
	var out []*report.Table
	for _, id := range IDs() {
		t, err := Run(id, db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// nodeTuples is the technology-combination sweep of Fig. 7: the first
// entry is the 7 nm monolith, the rest are (digital, memory, analog)
// chiplet node assignments.
type nodeTuple struct {
	digital, memory, analog int
	monolithic              bool
}

func (nt nodeTuple) label() string {
	if nt.monolithic {
		return fmt.Sprintf("(%d,%d,%d)-mono", nt.digital, nt.memory, nt.analog)
	}
	return fmt.Sprintf("(%d,%d,%d)", nt.digital, nt.memory, nt.analog)
}

var fig7Tuples = []nodeTuple{
	{7, 7, 7, true},
	{7, 7, 7, false},
	{7, 10, 10, false},
	{7, 10, 14, false},
	{7, 14, 10, false},
	{7, 14, 14, false},
	{10, 10, 10, false},
	{10, 14, 14, false},
	{14, 14, 14, false},
}

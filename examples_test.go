package ecochip_test

// Smoke coverage for examples/: every example program must keep
// compiling, and quickstart must run end-to-end. Without this the six
// example mains are invisible to `go build ./...`-driven refactors of
// the internal packages they import.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goTool locates the go binary; tests fail rather than skip so example
// rot cannot hide behind a missing toolchain in CI.
func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Fatalf("go tool not found: %v", err)
	}
	return path
}

func TestExamplesBuild(t *testing.T) {
	dirs, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no example programs found")
	}
	gobin := goTool(t)
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		t.Run(filepath.Base(dir), func(t *testing.T) {
			cmd := exec.Command(gobin, "build", "-o", os.DevNull, "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s does not build: %v\n%s", dir, err, out)
			}
		})
	}
}

func TestQuickstartRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example execution in -short mode")
	}
	cmd := exec.Command(goTool(t), "run", "./examples/quickstart")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("quickstart failed: %v\n%s", err, out)
	}
	got := string(out)
	for _, want := range []string{
		"edge-soc-monolith",
		"edge-soc-3chiplet",
		"embodied-carbon saving from disaggregation",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, got)
		}
	}
}

// Package explore implements the chiplet-disaggregation design-space
// exploration workflow of Section VI of the ECO-CHIP paper: enumerate
// candidate systems (technology-node assignments, chiplet counts,
// packaging choices), evaluate each on carbon, dollar cost, area and
// power, and reduce the space to a Pareto front so an architect can pick
// a design that "meets the latency, power, and area specifications while
// minimizing C_tot".
package explore

import (
	"fmt"
	"sort"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/tech"
)

// Point is one evaluated design candidate.
type Point struct {
	// Label identifies the candidate (e.g. its node tuple).
	Label string
	// Nodes is the per-chiplet node assignment.
	Nodes []int
	// EmbodiedKg, TotalKg are the carbon metrics.
	EmbodiedKg, TotalKg float64
	// CostUSD is the per-part dollar cost.
	CostUSD float64
	// PackageAreaMM2 is the substrate/die footprint.
	PackageAreaMM2 float64
}

// MaxCombinations bounds the exhaustive node sweep; beyond it NodeSweep
// returns an error rather than silently truncating the space.
const MaxCombinations = 100_000

// NodeSweep evaluates the base system under every combination of the
// candidate nodes across its chiplets (the Fig. 7 / Fig. 15(a) sweep),
// including the dollar-cost model.
func NodeSweep(base *core.System, db *tech.DB, nodes []int, cp cost.Params) ([]Point, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("explore: no candidate nodes")
	}
	nc := len(base.Chiplets)
	combos := 1
	for i := 0; i < nc; i++ {
		combos *= len(nodes)
		if combos > MaxCombinations {
			return nil, fmt.Errorf("explore: %d^%d combinations exceed the %d cap",
				len(nodes), nc, MaxCombinations)
		}
	}
	var points []Point
	assign := make([]int, nc)
	var walk func(int) error
	walk = func(i int) error {
		if i == nc {
			picked := make([]int, nc)
			copy(picked, assign)
			p, err := evaluate(base, db, picked, cp)
			if err != nil {
				return err
			}
			points = append(points, p)
			return nil
		}
		for _, nm := range nodes {
			assign[i] = nm
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return points, nil
}

func evaluate(base *core.System, db *tech.DB, picked []int, cp cost.Params) (Point, error) {
	s, err := base.WithNodes(picked...)
	if err != nil {
		return Point{}, err
	}
	rep, err := s.Evaluate(db)
	if err != nil {
		return Point{}, err
	}
	c, err := s.CostUSD(db, cp)
	if err != nil {
		return Point{}, err
	}
	area := rep.Chiplets[0].AreaMM2
	if rep.Packaging != nil {
		area = rep.Packaging.PackageAreaMM2
	}
	return Point{
		Label:          fmt.Sprint(picked),
		Nodes:          picked,
		EmbodiedKg:     rep.EmbodiedKg(),
		TotalKg:        rep.TotalKg(),
		CostUSD:        c.TotalUSD(),
		PackageAreaMM2: area,
	}, nil
}

// Metric extracts one objective value from a point; all objectives are
// minimized.
type Metric func(Point) float64

// Standard objectives.
var (
	// ByEmbodied minimizes embodied carbon.
	ByEmbodied Metric = func(p Point) float64 { return p.EmbodiedKg }
	// ByTotal minimizes total (lifetime) carbon.
	ByTotal Metric = func(p Point) float64 { return p.TotalKg }
	// ByCost minimizes dollar cost.
	ByCost Metric = func(p Point) float64 { return p.CostUSD }
	// ByArea minimizes package footprint.
	ByArea Metric = func(p Point) float64 { return p.PackageAreaMM2 }
)

// Best returns the point minimizing the metric. It panics on an empty
// slice (an authoring bug in experiment code).
func Best(points []Point, m Metric) Point {
	if len(points) == 0 {
		panic("explore: Best on empty point set")
	}
	best := points[0]
	for _, p := range points[1:] {
		if m(p) < m(best) {
			best = p
		}
	}
	return best
}

// ParetoFront returns the subset of points not dominated under the given
// objectives (all minimized): a point is dominated if some other point is
// no worse in every objective and strictly better in at least one. The
// result is sorted by the first objective.
func ParetoFront(points []Point, objectives ...Metric) []Point {
	if len(objectives) == 0 {
		panic("explore: ParetoFront needs at least one objective")
	}
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if dominates(q, p, objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(a, b int) bool {
		return objectives[0](front[a]) < objectives[0](front[b])
	})
	return front
}

// dominates reports whether q dominates p: q <= p everywhere and q < p
// somewhere.
func dominates(q, p Point, objectives []Metric) bool {
	strictly := false
	for _, m := range objectives {
		qv, pv := m(q), m(p)
		if qv > pv {
			return false
		}
		if qv < pv {
			strictly = true
		}
	}
	return strictly
}

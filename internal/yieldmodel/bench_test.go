package yieldmodel

import "testing"

func BenchmarkDie(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Die(628, 0.2)
	}
}

func BenchmarkAssembly3D(b *testing.B) {
	tiers := []float64{0.95, 0.93, 0.91, 0.89}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Assembly3D(tiers, 0.98)
	}
}

// Package engine is the shared parallel batch-evaluation backend of the
// Section VI analysis workflows. Every sweep, sensitivity study, Monte
// Carlo run and figure runner reduces to the same shape of work — "apply
// a pure evaluation to N independent design points" — and this package
// runs that shape across a worker pool with:
//
//   - index-addressed results: point i's result lands in slot i
//     regardless of worker scheduling, so parallel output is
//     byte-identical to the serial walk,
//   - a concurrency-safe memo cache for the expensive pure sub-models
//     (mfg.Die, descarbon.ChipletKg) that full-factorial sweeps would
//     otherwise recompute thousands of times,
//   - context cancellation with fail-fast error collection (the lowest
//     observed failing index wins), and
//   - an optional progress callback for long-running CLI sweeps.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"ecochip/internal/core"
	"ecochip/internal/tech"
)

// Options configures a batch run; build one from Option values.
type Options struct {
	workers  int
	cache    *Cache
	noCache  bool
	progress func(done, total int)
}

// Option mutates Options.
type Option func(*Options)

// WithWorkers sets the worker count. Zero or negative selects
// GOMAXPROCS; one gives a serial run (useful as a reference in tests).
func WithWorkers(n int) Option { return func(o *Options) { o.workers = n } }

// WithCache shares a memo cache across batch calls — e.g. the steps of a
// greedy search, or the generations of a roadmap, which revisit the same
// dies. A nil cache is ignored.
func WithCache(c *Cache) Option { return func(o *Options) { o.cache = c } }

// WithoutCache disables memoization entirely, making every task compute
// its sub-models directly. Used to produce the uncached serial reference
// path in equivalence tests and benchmarks.
func WithoutCache() Option { return func(o *Options) { o.noCache = true } }

// WithProgress registers a callback invoked after every completed point
// with (completed, total). Calls are serialized; done is monotonically
// increasing.
func WithProgress(fn func(done, total int)) Option { return func(o *Options) { o.progress = fn } }

func buildOptions(opts []Option) Options {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func (o *Options) workerCount(n int) int {
	w := o.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// hooks resolves the memoization hooks for this run: the shared cache if
// one was provided, a fresh private cache by default, or nil direct
// calls under WithoutCache.
func (o *Options) hooks() *core.Hooks {
	if o.noCache {
		return nil
	}
	c := o.cache
	if c == nil {
		c = NewCache()
	}
	return c.Hooks()
}

// indexedErr pairs a task error with its point index so fail-fast error
// reporting prefers the earliest failure observed: among the errors
// that actually surfaced before cancellation stopped the batch, the
// lowest index wins.
type indexedErr struct {
	index int
	err   error
}

// Run evaluates fn(ctx, i, hooks) for i in [0, n) across the worker
// pool and returns the results index-addressed. On the first task error
// the context handed to the tasks is cancelled and the batch fails
// fast, returning the lowest-index error observed (cancellation may
// skip a lower-index point that would also have failed, so which error
// surfaces can depend on scheduling — only successful results are
// guaranteed scheduling-independent); a cancelled parent context
// returns ctx.Err(). The hooks argument carries the run's memo cache
// (nil when caching is disabled) for forwarding to
// core.System.EvaluateWith.
func Run[T any](ctx context.Context, n int, fn func(ctx context.Context, i int, h *core.Hooks) (T, error), opts ...Option) ([]T, error) {
	o := buildOptions(opts)
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	h := o.hooks()
	workers := o.workerCount(n)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next unclaimed index
		mu       sync.Mutex   // guards firstErr and progress
		firstErr *indexedErr
		done     int
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstErr.index {
			firstErr = &indexedErr{i, err}
		}
		mu.Unlock()
		cancel()
	}
	step := func() {
		if o.progress == nil {
			return
		}
		// The callback runs under the mutex so invocations are
		// serialized and done is strictly increasing, as WithProgress
		// promises.
		mu.Lock()
		done++
		o.progress(done, n)
		mu.Unlock()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					return
				}
				res, err := fn(ctx, i, h)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = res
				step()
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// EvaluateBatch evaluates every system against the database across the
// worker pool, sharing one memo cache so identical per-die sub-results
// (the bulk of a full-factorial sweep) are computed once. results[i] is
// systems[i]'s report; the output is byte-identical to calling
// systems[i].Evaluate(db) in order.
func EvaluateBatch(ctx context.Context, db *tech.DB, systems []*core.System, opts ...Option) ([]*core.Report, error) {
	return Run(ctx, len(systems), func(ctx context.Context, i int, h *core.Hooks) (*core.Report, error) {
		return systems[i].EvaluateWith(db, h)
	}, opts...)
}

package floorplan_test

import (
	"fmt"
	"math"
	"testing"

	"ecochip/internal/floorplan"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// Fuzz target for the floorplanner's structural invariants and the
// incremental planner's parity, seeded with the chiplet areas of the
// EPYC and GA102 testcases (the external test package avoids the
// floorplan -> testcases import cycle).
//
// Invariants checked for every accepted input, on the from-scratch plan
// and again after an incremental single-area update:
//
//  1. no two placed rectangles overlap,
//  2. the bounding box contains every rectangle,
//  3. ChipletAreaMM2 is conserved (it carries the exact bits of the
//     in-order block-area sum),
//  4. Tree results are bit-identical to Scratch.Plan,
//  5. after a remove/insert delta (one block dropped, one fresh block
//     appended — the Disaggregate candidate shape), the tree's
//     name-keyed diff plan is bit-identical to a from-scratch plan and
//     the invariants still hold.

// chipletAreas extracts the per-chiplet die areas of a testcase system.
func chipletAreas(t interface{ Fatal(...any) }, ccds int) (epyc, ga102 []float64) {
	db := tech.Default()
	sys, err := testcases.EPYC(db, ccds)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sys.Chiplets {
		epyc = append(epyc, db.MustGet(c.NodeNm).Area(c.Type, c.Transistors))
	}
	ga := testcases.GA102(db, 7, 14, 10, false)
	for _, c := range ga.Chiplets {
		ga102 = append(ga102, db.MustGet(c.NodeNm).Area(c.Type, c.Transistors))
	}
	return epyc, ga102
}

func pad8(areas []float64) (out [8]float64) {
	for i := 0; i < len(areas) && i < 8; i++ {
		out[i] = areas[i]
	}
	return out
}

func FuzzFloorplanInvariants(f *testing.F) {
	epyc, ga102 := chipletAreas(f, 7)
	e := pad8(epyc)
	g := pad8(ga102)
	// The trailing (removeIdx, insertArea) pair seeds the remove/insert
	// delta: drop one block, append a fresh one — the merge shape of a
	// Disaggregate candidate.
	f.Add(uint8(len(epyc)), 0.5, e[0], e[1], e[2], e[3], e[4], e[5], e[6], e[7], uint8(0), 2*e[0], uint8(3), e[0]+e[1])
	f.Add(uint8(len(epyc)), 0.1, e[0], e[1], e[2], e[3], e[4], e[5], e[6], e[7], uint8(7), e[7]/3, uint8(0), e[6]+e[7])
	f.Add(uint8(len(ga102)), 0.5, g[0], g[1], g[2], 0.0, 0.0, 0.0, 0.0, 0.0, uint8(1), g[2], uint8(2), g[0]+g[1])
	f.Add(uint8(len(ga102)), 1.0, g[0], g[1], g[2], 0.0, 0.0, 0.0, 0.0, 0.0, uint8(2), g[0], uint8(1), g[1]/2)
	f.Add(uint8(2), 0.5, 100.0, 100.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint8(0), 100.0, uint8(1), 100.0)
	f.Add(uint8(1), 0.3, 42.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint8(0), 7.0, uint8(0), 13.0)

	f.Fuzz(func(t *testing.T, n uint8, spacing float64,
		a0, a1, a2, a3, a4, a5, a6, a7 float64, idx uint8, newArea float64,
		removeIdx uint8, insertArea float64) {
		areas := [8]float64{a0, a1, a2, a3, a4, a5, a6, a7}
		if n < 1 || n > 8 {
			return
		}
		if spacing < 0.1 || spacing > 1 || math.IsNaN(spacing) {
			return
		}
		blocks := make([]floorplan.Block, n)
		for i := range blocks {
			a := areas[i]
			if !(a > 0) || a > 1e8 || math.IsInf(a, 0) {
				return
			}
			blocks[i] = floorplan.Block{Name: fmt.Sprintf("b%d", i), AreaMM2: a}
		}

		res, err := floorplan.Plan(blocks, spacing)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		checkInvariants(t, "plan", blocks, res, spacing)

		var tr floorplan.Tree
		tres, err := tr.Plan(blocks, spacing)
		if err != nil {
			t.Fatalf("tree rejected input the planner accepted: %v", err)
		}
		comparePlans(t, "tree build", res, tres)

		// Incremental step: perturb one block and require both the
		// invariants and bit-parity with a fresh plan.
		j := int(idx) % int(n)
		if !(newArea > 0) || newArea > 1e8 || math.IsInf(newArea, 0) {
			return
		}
		blocks[j].AreaMM2 = newArea
		want, err := floorplan.Plan(blocks, spacing)
		if err != nil {
			t.Fatalf("perturbed input rejected: %v", err)
		}
		got, err := tr.Update(j, newArea)
		if err != nil {
			t.Fatalf("tree update rejected a valid perturbation: %v", err)
		}
		checkInvariants(t, "update", blocks, got, spacing)
		comparePlans(t, "tree update", want, got)

		// Remove/insert delta: drop one block and append a fresh one,
		// then require the name-keyed diff plan to match from scratch.
		if !(insertArea > 0) || insertArea > 1e8 || math.IsInf(insertArea, 0) {
			return
		}
		r := int(removeIdx) % int(n)
		edited := append(append([]floorplan.Block{}, blocks[:r]...), blocks[r+1:]...)
		edited = append(edited, floorplan.Block{Name: "inserted", AreaMM2: insertArea})
		want, err = floorplan.Plan(edited, spacing)
		if err != nil {
			t.Fatalf("edited input rejected: %v", err)
		}
		got, err = tr.Plan(edited, spacing)
		if err != nil {
			t.Fatalf("tree diff rejected a valid remove/insert delta: %v", err)
		}
		checkInvariants(t, "diff", edited, got, spacing)
		comparePlans(t, "tree diff", want, got)
	})
}

func checkInvariants(t *testing.T, label string, blocks []floorplan.Block, res *floorplan.Result, spacing float64) {
	t.Helper()
	if len(res.Placements) != len(blocks) {
		t.Fatalf("%s: placed %d of %d blocks", label, len(res.Placements), len(blocks))
	}
	// ChipletAreaMM2 conserved: the exact in-order sum.
	sum := 0.0
	for _, b := range blocks {
		sum += b.AreaMM2
	}
	if math.Float64bits(sum) != math.Float64bits(res.ChipletAreaMM2) {
		t.Fatalf("%s: ChipletAreaMM2 = %g, want in-order sum %g", label, res.ChipletAreaMM2, sum)
	}
	// Bounding box contains all rectangles.
	for _, p := range res.Placements {
		if p.X < -1e-9 || p.Y < -1e-9 ||
			p.X+p.Width > res.WidthMM+1e-9 || p.Y+p.Height > res.HeightMM+1e-9 {
			t.Fatalf("%s: placement %s (%g,%g %gx%g) escapes package %gx%g",
				label, p.Name, p.X, p.Y, p.Width, p.Height, res.WidthMM, res.HeightMM)
		}
	}
	// No overlapping placements. The spacing constraint makes the
	// no-overlap tolerance scale-free: rectangles either touch across a
	// gap >= spacing or share a bounding-box edge.
	for i := 0; i < len(res.Placements); i++ {
		for j := i + 1; j < len(res.Placements); j++ {
			a, b := res.Placements[i], res.Placements[j]
			ox := math.Min(a.X+a.Width, b.X+b.Width) - math.Max(a.X, b.X)
			oy := math.Min(a.Y+a.Height, b.Y+b.Height) - math.Max(a.Y, b.Y)
			if ox > 1e-9 && oy > 1e-9 {
				t.Fatalf("%s: placements %s and %s overlap by %g x %g", label, a.Name, b.Name, ox, oy)
			}
		}
	}
}

func comparePlans(t *testing.T, label string, want, got *floorplan.Result) {
	t.Helper()
	if math.Float64bits(want.WidthMM) != math.Float64bits(got.WidthMM) ||
		math.Float64bits(want.HeightMM) != math.Float64bits(got.HeightMM) ||
		math.Float64bits(want.ChipletAreaMM2) != math.Float64bits(got.ChipletAreaMM2) {
		t.Fatalf("%s: bounding box differs: want %+v, got %+v", label, want, got)
	}
	if len(want.Placements) != len(got.Placements) {
		t.Fatalf("%s: placement counts differ", label)
	}
	for i := range want.Placements {
		a, b := want.Placements[i], got.Placements[i]
		if a.Name != b.Name ||
			math.Float64bits(a.X) != math.Float64bits(b.X) ||
			math.Float64bits(a.Y) != math.Float64bits(b.Y) ||
			math.Float64bits(a.Width) != math.Float64bits(b.Width) ||
			math.Float64bits(a.Height) != math.Float64bits(b.Height) {
			t.Fatalf("%s: placement %d differs: %+v vs %+v", label, i, a, b)
		}
	}
	if len(want.Adjacencies) != len(got.Adjacencies) {
		t.Fatalf("%s: adjacency counts differ: %+v vs %+v", label, want.Adjacencies, got.Adjacencies)
	}
	for i := range want.Adjacencies {
		if want.Adjacencies[i] != got.Adjacencies[i] {
			t.Fatalf("%s: adjacency %d differs: %+v vs %+v", label, i, want.Adjacencies[i], got.Adjacencies[i])
		}
	}
}

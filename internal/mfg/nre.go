package mfg

import (
	"fmt"

	"ecochip/internal/tech"
)

// Section V-C of the paper notes that ECO-CHIP "does not split the C_mfg
// into its NRE and non-NRE components" and that doing so "will only
// improve CFP savings" for reused chiplets — because the carbon of
// manufacturing and designing the photolithography mask set is paid once
// per chiplet design and amortized over every part manufactured. This
// file implements that extension.

// NREParams configures the mask-set carbon model.
type NREParams struct {
	// EnergyPerMaskKWh is the e-beam write + inspection energy of one
	// mask.
	EnergyPerMaskKWh float64
	// MaterialKgPerMask is the carbon of the mask blank and processing
	// chemistry.
	MaterialKgPerMask float64
	// CarbonIntensity converts mask-shop energy to carbon (kg CO2/kWh).
	CarbonIntensity float64
}

// DefaultNREParams uses mask-shop magnitudes: multi-day e-beam writes
// (~500 kWh/mask) and ~20 kg CO2 of blank + chemistry per mask, on a
// coal-dominated grid.
func DefaultNREParams() NREParams {
	return NREParams{
		EnergyPerMaskKWh:  500,
		MaterialKgPerMask: 20,
		CarbonIntensity:   IntensityCoal,
	}
}

// Validate checks ranges.
func (p NREParams) Validate() error {
	if p.EnergyPerMaskKWh <= 0 {
		return fmt.Errorf("mfg: mask energy must be positive, got %g", p.EnergyPerMaskKWh)
	}
	if p.MaterialKgPerMask < 0 {
		return fmt.Errorf("mfg: mask material carbon must be non-negative, got %g", p.MaterialKgPerMask)
	}
	if p.CarbonIntensity < 0.030 || p.CarbonIntensity > 0.700 {
		return fmt.Errorf("mfg: mask-shop carbon intensity %g outside [0.030, 0.700]", p.CarbonIntensity)
	}
	return nil
}

// MaskCount returns the mask-set size for a node. Advanced nodes carry
// more layers (and multi-patterning); the counts follow published
// mask-set sizes from ~30 masks at 65 nm to ~80 at 7 nm.
func MaskCount(n *tech.Node) int {
	switch {
	case n.Nm <= 7:
		return 80
	case n.Nm <= 10:
		return 75
	case n.Nm <= 14:
		return 65
	case n.Nm <= 22:
		return 55
	case n.Nm <= 28:
		return 48
	case n.Nm <= 40:
		return 40
	default:
		return 30
	}
}

// MaskSetKg returns the one-time carbon of manufacturing a full mask set
// for the node.
func MaskSetKg(n *tech.Node, p NREParams) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	masks := float64(MaskCount(n))
	return masks * (p.EnergyPerMaskKWh*p.CarbonIntensity + p.MaterialKgPerMask), nil
}

// AmortizedNREKg returns the per-part share of the mask-set carbon for a
// chiplet design manufactured `parts` times. Reuse across products grows
// `parts` and shrinks this share, exactly like design carbon.
func AmortizedNREKg(n *tech.Node, parts int, p NREParams) (float64, error) {
	if parts < 1 {
		return 0, fmt.Errorf("mfg: parts must be >= 1, got %d", parts)
	}
	set, err := MaskSetKg(n, p)
	if err != nil {
		return 0, err
	}
	return set / float64(parts), nil
}

// Reuse planner: the Section V-C workflow. Given a system and a target
// embodied-carbon budget per part, find how many systems each chiplet
// design must be reused across (the N_Mi/N_S ratio of Fig. 12) for the
// amortized design carbon to fit the budget, and show the C_tot trend
// across lifetimes.
//
//	go run ./examples/reuse_planner
package main

import (
	"fmt"
	"log"

	"ecochip"
	"ecochip/internal/core"
)

func main() {
	db := ecochip.DefaultDB()

	fmt.Println("== A15: design carbon vs chiplet reuse ratio (N_S = 100k) ==")
	fmt.Printf("%-7s %14s %14s\n", "ratio", "C_des (kg)", "C_emb (kg)")
	var base float64
	for _, ratio := range []int{1, 2, 5, 10, 20, 50, 100} {
		s := ecochip.A15(db, 7, 14, 10, false)
		applyRatio(s, ratio)
		rep, err := s.Evaluate(db)
		if err != nil {
			log.Fatal(err)
		}
		if ratio == 1 {
			base = rep.DesignKg
		}
		fmt.Printf("%-7d %14.3f %14.2f\n", ratio, rep.DesignKg, rep.EmbodiedKg())
	}

	// Find the minimum reuse ratio that cuts design carbon below 20% of
	// its unamortized-per-system value.
	target := 0.2 * base
	for ratio := 1; ratio <= 1024; ratio *= 2 {
		s := ecochip.A15(db, 7, 14, 10, false)
		applyRatio(s, ratio)
		rep, err := s.Evaluate(db)
		if err != nil {
			log.Fatal(err)
		}
		if rep.DesignKg <= target {
			fmt.Printf("\nreuse each chiplet across >= %d systems to cut C_des below %.2f kg/part\n\n", ratio, target)
			break
		}
	}

	fmt.Println("== GA102: C_tot vs lifetime at reuse ratios 1 / 10 / 100 ==")
	fmt.Printf("%-9s", "lifetime")
	for _, r := range []int{1, 10, 100} {
		fmt.Printf(" %12s", fmt.Sprintf("ratio=%d", r))
	}
	fmt.Println()
	for lifetime := 1.0; lifetime <= 5; lifetime++ {
		fmt.Printf("%-9.0f", lifetime)
		for _, ratio := range []int{1, 10, 100} {
			s := ecochip.GA102(db, 7, 14, 10, false)
			applyRatio(s, ratio)
			s.Operation.LifetimeYears = lifetime
			rep, err := s.Evaluate(db)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.1f", rep.TotalKg())
		}
		fmt.Println()
	}
}

// applyRatio sets N_Mi = ratio * N_S with N_S at the default volume.
func applyRatio(s *ecochip.System, ratio int) {
	for i := range s.Chiplets {
		s.Chiplets[i].ManufacturedParts = ratio * core.DefaultVolume
	}
	s.SystemVolume = core.DefaultVolume
}

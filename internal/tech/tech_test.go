package tech

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultDBValid(t *testing.T) {
	db := Default()
	sizes := db.Sizes()
	want := []int{7, 10, 14, 22, 28, 40, 65}
	if len(sizes) != len(want) {
		t.Fatalf("Sizes() = %v, want %v", sizes, want)
	}
	for i, nm := range want {
		if sizes[i] != nm {
			t.Errorf("Sizes()[%d] = %d, want %d", i, sizes[i], nm)
		}
		if !db.Has(nm) {
			t.Errorf("Has(%d) = false, want true", nm)
		}
	}
}

func TestDefaultDBSingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default() should return the same instance")
	}
}

func TestGetUnknownNode(t *testing.T) {
	if _, err := Default().Get(3); err == nil {
		t.Fatal("Get(3) should fail: 3nm is not in the built-in table")
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet(999) should panic")
		}
	}()
	Default().MustGet(999)
}

// Defect density must decrease monotonically as nodes mature (Fig. 6a).
func TestDefectDensityMonotone(t *testing.T) {
	db := Default()
	sizes := db.Sizes()
	for i := 1; i < len(sizes); i++ {
		prev, cur := db.MustGet(sizes[i-1]), db.MustGet(sizes[i])
		if cur.DefectDensity >= prev.DefectDensity {
			t.Errorf("D0(%dnm)=%g should be < D0(%dnm)=%g",
				cur.Nm, cur.DefectDensity, prev.Nm, prev.DefectDensity)
		}
	}
}

// Logic density scales steeply, memory less so, analog barely: at every
// node memory density > logic is allowed (SRAM bitcells are denser), but
// the *scaling ratio* from 65nm to 7nm must order logic > memory > analog.
func TestScalingRatios(t *testing.T) {
	db := Default()
	n7, n65 := db.MustGet(7), db.MustGet(65)
	logicRatio := n7.Density[Logic] / n65.Density[Logic]
	memRatio := n7.Density[Memory] / n65.Density[Memory]
	anaRatio := n7.Density[Analog] / n65.Density[Analog]
	if !(logicRatio > memRatio && memRatio > anaRatio) {
		t.Errorf("scaling ratios logic=%.1f mem=%.1f analog=%.1f: want logic > mem > analog",
			logicRatio, memRatio, anaRatio)
	}
	if anaRatio > 3 {
		t.Errorf("analog scaling ratio %.1f is too aggressive; analog barely scales", anaRatio)
	}
}

// EPA, gas CFP rise with advanced nodes; equipment derate and Vdd trends.
func TestPerNodeTrends(t *testing.T) {
	db := Default()
	sizes := db.Sizes() // ascending nm = newest first
	for i := 1; i < len(sizes); i++ {
		newer, older := db.MustGet(sizes[i-1]), db.MustGet(sizes[i])
		if newer.EPA <= older.EPA {
			t.Errorf("EPA(%d)=%g should exceed EPA(%d)=%g", newer.Nm, newer.EPA, older.Nm, older.EPA)
		}
		if newer.GasCFP <= older.GasCFP {
			t.Errorf("GasCFP(%d) should exceed GasCFP(%d)", newer.Nm, older.Nm)
		}
		if newer.EquipEfficiency <= older.EquipEfficiency {
			t.Errorf("eta_eq(%d) should exceed eta_eq(%d)", newer.Nm, older.Nm)
		}
		if newer.EDAProductivity >= older.EDAProductivity {
			t.Errorf("eta_EDA(%d) should be below eta_EDA(%d)", newer.Nm, older.Nm)
		}
		if newer.Vdd >= older.Vdd {
			t.Errorf("Vdd(%d) should be below Vdd(%d)", newer.Nm, older.Nm)
		}
		if newer.EPLARDL <= older.EPLARDL {
			t.Errorf("EPLA_RDL(%d) should exceed EPLA_RDL(%d)", newer.Nm, older.Nm)
		}
		if newer.WaferCostUSD <= older.WaferCostUSD {
			t.Errorf("wafer cost(%d) should exceed wafer cost(%d)", newer.Nm, older.Nm)
		}
	}
}

func TestAreaRoundTrip(t *testing.T) {
	n := Default().MustGet(7)
	const transistors = 4.5e9
	for _, d := range DesignTypes {
		area := n.Area(d, transistors)
		if area <= 0 {
			t.Fatalf("Area(%s) = %g, want > 0", d, area)
		}
		back := n.Transistors(d, area)
		if math.Abs(back-transistors)/transistors > 1e-12 {
			t.Errorf("Transistors(Area(%g)) = %g, want round trip", transistors, back)
		}
	}
}

func TestAreaKnownValue(t *testing.T) {
	// 95 MTr/mm^2 at 7nm logic: 9.5e9 transistors => exactly 100 mm^2.
	n := Default().MustGet(7)
	got := n.Area(Logic, 9.5e9)
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("Area(Logic, 9.5e9) = %g mm^2, want 100", got)
	}
}

func TestAreaPanicsOnMissingDensity(t *testing.T) {
	n := &Node{Nm: 7, Density: map[DesignType]float64{}}
	defer func() {
		if recover() == nil {
			t.Error("Area should panic when density is missing")
		}
	}()
	n.Area(Logic, 1e9)
}

// Property: area is linear in transistor count and monotone decreasing in
// density across design types at a fixed node.
func TestAreaLinearity(t *testing.T) {
	n := Default().MustGet(14)
	f := func(raw uint32) bool {
		nt := float64(raw%1_000_000+1) * 1e4
		a1 := n.Area(Logic, nt)
		a2 := n.Area(Logic, 2*nt)
		return math.Abs(a2-2*a1) < 1e-9*a2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Area of a fixed transistor budget must grow as the node gets older.
func TestAreaGrowsWithOlderNodes(t *testing.T) {
	db := Default()
	sizes := db.Sizes()
	const nt = 1e9
	for _, d := range DesignTypes {
		for i := 1; i < len(sizes); i++ {
			newer := db.MustGet(sizes[i-1]).Area(d, nt)
			older := db.MustGet(sizes[i]).Area(d, nt)
			if older <= newer {
				t.Errorf("%s area at %dnm (%.2f) should exceed at %dnm (%.2f)",
					d, sizes[i], older, sizes[i-1], newer)
			}
		}
	}
}

func TestParseDesignType(t *testing.T) {
	cases := map[string]DesignType{
		"logic": Logic, "digital": Logic,
		"memory": Memory, "mem": Memory, "sram": Memory,
		"analog": Analog, "io": Analog, "analog_io": Analog,
	}
	for s, want := range cases {
		got, err := ParseDesignType(s)
		if err != nil || got != want {
			t.Errorf("ParseDesignType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseDesignType("fpga"); err == nil {
		t.Error("ParseDesignType(fpga) should fail")
	}
}

func TestDesignTypeString(t *testing.T) {
	if Logic.String() != "logic" || Memory.String() != "memory" || Analog.String() != "analog" {
		t.Error("DesignType.String() mismatch")
	}
	if !strings.Contains(DesignType(42).String(), "42") {
		t.Error("unknown DesignType should render its value")
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	base := defaultNodes[0] // 7nm, valid
	mutations := []struct {
		name   string
		mutate func(*Node)
	}{
		{"negative nm", func(n *Node) { n.Nm = -1 }},
		{"defect density low", func(n *Node) { n.DefectDensity = 0.01 }},
		{"defect density high", func(n *Node) { n.DefectDensity = 0.5 }},
		{"EPA high", func(n *Node) { n.EPA = 10 }},
		{"EPA low", func(n *Node) { n.EPA = 0.1 }},
		{"gas high", func(n *Node) { n.GasCFP = 0.9 }},
		{"material low", func(n *Node) { n.MaterialCFP = 0.0 }},
		{"eta_eq high", func(n *Node) { n.EquipEfficiency = 1.5 }},
		{"eta_EDA high", func(n *Node) { n.EDAProductivity = 2 }},
		{"vdd low", func(n *Node) { n.Vdd = 0.3 }},
		{"vdd high", func(n *Node) { n.Vdd = 2.5 }},
		{"EPLA RDL high", func(n *Node) { n.EPLARDL = 0.5 }},
		{"EPLA bridge low", func(n *Node) { n.EPLABridge = 0.01 }},
		{"wafer cost zero", func(n *Node) { n.WaferCostUSD = 0 }},
		{"missing logic density", func(n *Node) {
			n.Density = map[DesignType]float64{Memory: 100, Analog: 5}
		}},
		{"density out of range", func(n *Node) {
			n.Density = map[DesignType]float64{Logic: 500, Memory: 100, Analog: 5}
		}},
	}
	for _, m := range mutations {
		n := base
		n.Density = map[DesignType]float64{}
		for k, v := range base.Density {
			n.Density[k] = v
		}
		m.mutate(&n)
		if err := n.Validate(); err == nil {
			t.Errorf("Validate() should reject %s", m.name)
		}
	}
}

func TestNewDBRejectsDuplicates(t *testing.T) {
	if _, err := NewDB([]Node{defaultNodes[0], defaultNodes[0]}); err == nil {
		t.Error("NewDB should reject duplicate node sizes")
	}
}

func TestNewDBRejectsInvalid(t *testing.T) {
	bad := defaultNodes[0]
	bad.EPA = 99
	if _, err := NewDB([]Node{bad}); err == nil {
		t.Error("NewDB should propagate Validate errors")
	}
}

func TestAllNodesWithinTableI(t *testing.T) {
	for _, nm := range DefaultSizes() {
		if err := Default().MustGet(nm).Validate(); err != nil {
			t.Errorf("node %dnm fails Table I validation: %v", nm, err)
		}
	}
}

func TestSandboxResetRestoresAndMutates(t *testing.T) {
	src := Default()
	sb := src.NewSandbox()
	base := src.MustGet(7).DefectDensity

	db := sb.Reset(func(n *Node) { n.DefectDensity = 0.29 })
	if got := db.MustGet(7).DefectDensity; got != 0.29 {
		t.Fatalf("Reset mutation not applied: %g", got)
	}
	if src.MustGet(7).DefectDensity != base {
		t.Fatal("Reset mutated the source database")
	}
	// A second Reset must start from base values again, and density maps
	// must be private copies.
	db = sb.Reset(func(n *Node) {
		n.DefectDensity *= 1.0
		n.Density[Logic] = n.Density[Logic] * 2
	})
	if got := db.MustGet(7).DefectDensity; got != base {
		t.Fatalf("Reset did not restore base values: %g, want %g", got, base)
	}
	if src.MustGet(7).Density[Logic] == db.MustGet(7).Density[Logic] {
		t.Fatal("sandbox density map aliases the source database")
	}
	if db = sb.Reset(nil); db.MustGet(7).Density[Logic] != src.MustGet(7).Density[Logic] {
		t.Fatal("Reset did not restore density values")
	}
}

// Sandbox resets must reproduce Clone bit-for-bit under the same mutation.
func TestSandboxMatchesClone(t *testing.T) {
	src := Default()
	mutate := func(n *Node) {
		n.DefectDensity = Clamp(n.DefectDensity*1.17, 0.07, 0.3)
		n.EPA = Clamp(n.EPA*0.9, 0.8, 3.5)
	}
	cloned, err := src.Clone(mutate)
	if err != nil {
		t.Fatal(err)
	}
	sandboxed := src.NewSandbox().Reset(mutate)
	for _, nm := range src.Sizes() {
		c, s := cloned.MustGet(nm), sandboxed.MustGet(nm)
		if c.DefectDensity != s.DefectDensity || c.EPA != s.EPA || c.EDAProductivity != s.EDAProductivity {
			t.Fatalf("node %dnm: sandbox %+v diverges from clone %+v", nm, s, c)
		}
	}
}

// Density keys added by one Reset's mutate must not leak into later
// resets: the sandbox must hand back exactly Clone's key set each time.
func TestSandboxResetClearsAddedDensityKeys(t *testing.T) {
	src := Default()
	sb := src.NewSandbox()
	phantom := DesignType(99)
	db := sb.Reset(func(n *Node) { n.Density[phantom] = 1 })
	if _, ok := db.MustGet(7).Density[phantom]; !ok {
		t.Fatal("mutate-added density key missing from the mutated sandbox")
	}
	db = sb.Reset(nil)
	if _, ok := db.MustGet(7).Density[phantom]; ok {
		t.Fatal("density key added by a previous Reset leaked into the next sample")
	}
}

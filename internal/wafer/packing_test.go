package wafer

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPackRectErrors(t *testing.T) {
	w := Default()
	if _, err := w.PackRect(0, 10, 0.1); err == nil {
		t.Error("zero width should fail")
	}
	if _, err := w.PackRect(10, -1, 0.1); err == nil {
		t.Error("negative height should fail")
	}
	if _, err := w.PackRect(10, 10, -0.1); err == nil {
		t.Error("negative scribe should fail")
	}
	if _, err := w.PackSquare(0); err == nil {
		t.Error("zero area should fail")
	}
}

func TestPackRectTinyWafer(t *testing.T) {
	w := Wafer{DiameterMM: 25}
	// A 30x30 die cannot fit a 25mm wafer.
	n, err := w.PackRect(30, 30, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("oversized die packed %d times, want 0", n)
	}
}

func TestPackSquareMagnitude(t *testing.T) {
	// The exact packing must land close to (and typically below) the
	// Eq. (7) analytical count.
	w := Default()
	for _, area := range []float64{25, 100, 400, 900} {
		packed, err := w.PackSquare(area)
		if err != nil {
			t.Fatal(err)
		}
		analytic := w.DiesPerWafer(area)
		if packed <= 0 {
			t.Fatalf("area %g: packed 0 dies", area)
		}
		ratio := float64(analytic) / float64(packed)
		if ratio < 0.7 || ratio > 1.35 {
			t.Errorf("area %g: analytic %d vs packed %d (ratio %.2f) diverge too much",
				area, analytic, packed, ratio)
		}
	}
}

// Property: packing count is monotone non-increasing in die area and in
// scribe width.
func TestPackMonotone(t *testing.T) {
	w := Default()
	f := func(a uint16) bool {
		area := float64(a%900) + 4
		side := math.Sqrt(area)
		n1, err1 := w.PackRect(side, side, 0.1)
		n2, err2 := w.PackRect(side+1, side+1, 0.1)
		n3, err3 := w.PackRect(side, side, 0.5)
		return err1 == nil && err2 == nil && err3 == nil && n2 <= n1 && n3 <= n1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Rectangular dies of the same area pack differently from squares; an
// extreme aspect ratio must not pack better than the square.
func TestAspectRatioPenalty(t *testing.T) {
	w := Default()
	square, err := w.PackRect(20, 20, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sliver, err := w.PackRect(80, 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sliver > square {
		t.Errorf("80x5 sliver (%d) should not out-pack the 20x20 square (%d)", sliver, square)
	}
}

func TestApproximationError(t *testing.T) {
	w := Default()
	e, err := w.ApproximationError(100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e) > 0.35 {
		t.Errorf("Eq. (7) error %.2f vs exact packing is implausibly large", e)
	}
	small := Wafer{DiameterMM: 25}
	if _, err := small.ApproximationError(2500); err == nil {
		t.Error("unpackable die should fail")
	}
}

// Zero scribe packs at least as many dies as a positive scribe.
func TestScribeCost(t *testing.T) {
	w := Default()
	tight, err := w.PackRect(10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := w.PackRect(10, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if loose >= tight {
		t.Errorf("1mm scribe (%d) should pack fewer dies than no scribe (%d)", loose, tight)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecochip/internal/experiments"
)

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run("fig7a", "", experiments.Options{}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== fig7a ==") {
		t.Errorf("output missing fig7a table:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run("fig99", "", experiments.Options{}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunAllWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run("", dir, experiments.Options{}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range experiments.IDs() {
		path := filepath.Join(dir, id+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing CSV for %s: %v", id, err)
			continue
		}
		if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
			t.Errorf("%s.csv has no data rows", id)
		}
	}
	// Every table printed.
	if got := strings.Count(out.String(), "== "); got < len(experiments.IDs()) {
		t.Errorf("printed %d tables, want %d", got, len(experiments.IDs()))
	}
}

// The uncompiled path and compiled default must print identical
// analysis tables, and -progress must surface compiled-plan statistics.
func TestRunAnalysisOptions(t *testing.T) {
	var compiled, reference strings.Builder
	if err := run("ext-tornado", "", experiments.Options{}, &compiled); err != nil {
		t.Fatal(err)
	}
	if err := run("ext-tornado", "", experiments.Options{Uncompiled: true, Workers: 1}, &reference); err != nil {
		t.Fatal(err)
	}
	if compiled.String() != reference.String() {
		t.Errorf("compiled and uncompiled ext-tornado tables diverge:\n%s\nvs\n%s", compiled.String(), reference.String())
	}

	var out, stats strings.Builder
	if err := run("ext-tornado", "", experiments.Options{StatsTo: &stats}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "param plan:") {
		t.Errorf("stats output missing parameter-plan statistics:\n%s", stats.String())
	}
}

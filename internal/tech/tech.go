// Package tech provides the technology-node parameter database that every
// carbon and cost model in ECO-CHIP consumes.
//
// The database covers the parameters of Table I of the HPCA 2024 paper:
// defect density D0(p), transistor density D_T(d, p) for the three design
// types (logic, memory, analog), manufacturing energy per unit area EPA(p),
// greenhouse-gas and material CFP per unit area, the process-equipment
// energy-efficiency derate eta_eq, the EDA-productivity derate eta_EDA,
// nominal supply voltage, and per-layer patterning energies (EPLA) used by
// the packaging models.
//
// Units convention (used consistently across the repository):
//   - areas are mm^2 at package boundaries; cm^2 appears only inside
//     carbon-per-area math,
//   - energies are kWh,
//   - carbon is kg of CO2-equivalent,
//   - transistor densities are MTr/mm^2 (millions of transistors per mm^2).
package tech

import (
	"fmt"
	"sort"
)

// DesignType identifies the scaling class of a block or chiplet. The three
// classes scale very differently with process node: logic tracks the full
// density improvement, SRAM lags it, and analog barely scales at all
// (Section III-C(1) of the paper).
type DesignType int

const (
	// Logic is standard-cell digital logic.
	Logic DesignType = iota
	// Memory is SRAM-dominated area.
	Memory
	// Analog covers analog, IO and mixed-signal area.
	Analog
)

// ParseDesignType converts the JSON/CLI spellings used by the released
// ECO-CHIP tool ("logic", "memory"/"mem"/"sram", "analog"/"io") into a
// DesignType.
func ParseDesignType(s string) (DesignType, error) {
	switch s {
	case "logic", "digital":
		return Logic, nil
	case "memory", "mem", "sram":
		return Memory, nil
	case "analog", "io", "analog_io":
		return Analog, nil
	}
	return 0, fmt.Errorf("tech: unknown design type %q", s)
}

// String returns the canonical lower-case name of the design type.
func (d DesignType) String() string {
	switch d {
	case Logic:
		return "logic"
	case Memory:
		return "memory"
	case Analog:
		return "analog"
	}
	return fmt.Sprintf("DesignType(%d)", int(d))
}

// DesignTypes lists all supported design types in a stable order.
var DesignTypes = []DesignType{Logic, Memory, Analog}

// Node holds every per-process parameter the carbon and cost models need.
// The numbers are interpolations within the ranges of Table I of the paper
// (see the table in nodes.go); they are deliberately exported as plain
// fields so that a user with access to proprietary fab data can construct
// their own Node values.
type Node struct {
	// Nm is the marketing node name in nanometres (7, 10, 14, ...).
	Nm int

	// DefectDensity is D0(p) in defects/cm^2. Mature nodes have lower
	// defect densities (Table I: 0.07 - 0.3 /cm^2).
	DefectDensity float64

	// Density maps each design type to its transistor density in
	// MTr/mm^2 (Table I: 5 - 150 MTr/mm^2 across types and nodes).
	Density map[DesignType]float64

	// EPA is the manufacturing energy per unit area in kWh/cm^2
	// (Table I: 0.8 - 3.5 kWh/cm^2).
	EPA float64

	// GasCFP is the direct greenhouse-gas CFP of fabrication in
	// kg CO2/cm^2 (Table I: 0.1 - 0.5).
	GasCFP float64

	// MaterialCFP is the CFP of sourcing wafer materials in kg CO2/cm^2
	// (Table I: 0.5).
	MaterialCFP float64

	// EquipEfficiency is eta_eq(p) in (0, 1]: a derate applied to the
	// fab-energy term of CFPA. Mature nodes run on better-amortized,
	// more efficient equipment and therefore carry a lower derate.
	EquipEfficiency float64

	// EDAProductivity is eta_EDA(p) in (0, 1]: design time is divided by
	// this factor, so the *larger* values assigned to older nodes model
	// the paper's observation that the latest EDA tools finish older
	// nodes faster (Section III-E).
	EDAProductivity float64

	// Vdd is the nominal supply voltage in volts (Table I: 0.7 - 1.8 V).
	Vdd float64

	// EPLARDL is the energy per RDL metal layer per unit area in
	// kWh/cm^2 when this node is used as the packaging/RDL node
	// (Table I: 0.05 - 0.2).
	EPLARDL float64

	// EPLABridge is the energy per silicon-bridge metal layer per unit
	// area in kWh/cm^2; bridges use ultra-fine L/S lower-metal patterning
	// and are therefore more energy-intensive than RDL
	// (Table I: 0.1 - 0.35).
	EPLABridge float64

	// WaferCostUSD is the dollar cost of a 300 mm-equivalent processed
	// wafer in this node, used only by the dollar-cost model (Section VI).
	WaferCostUSD float64
}

// Area returns the silicon area in mm^2 of a block of the given design
// type with the given transistor count, implemented in this node:
//
//	A_die(d, p) = N_T / D_T(d, p)
//
// (Section III-C(1); the paper's inline formula is dimensionally inverted,
// the released tool divides as we do here.) transistors is an absolute
// count, not millions.
func (n *Node) Area(d DesignType, transistors float64) float64 {
	density, ok := n.Density[d]
	if !ok || density <= 0 {
		panic(fmt.Sprintf("tech: node %dnm has no density for design type %s", n.Nm, d))
	}
	return transistors / (density * 1e6)
}

// Transistors is the inverse of Area: the transistor count that fills the
// given area (mm^2) for the design type at this node.
func (n *Node) Transistors(d DesignType, areaMM2 float64) float64 {
	density, ok := n.Density[d]
	if !ok || density <= 0 {
		panic(fmt.Sprintf("tech: node %dnm has no density for design type %s", n.Nm, d))
	}
	return areaMM2 * density * 1e6
}

// Validate checks that the node's parameters sit inside the ranges of
// Table I of the paper. It is used by the config front-end to reject
// out-of-model inputs early.
func (n *Node) Validate() error {
	check := func(name string, v, lo, hi float64) error {
		if v < lo || v > hi {
			return fmt.Errorf("tech: node %dnm: %s = %g outside Table I range [%g, %g]", n.Nm, name, v, lo, hi)
		}
		return nil
	}
	if n.Nm <= 0 {
		return fmt.Errorf("tech: node size must be positive, got %d", n.Nm)
	}
	if err := check("defect density", n.DefectDensity, 0.07, 0.3); err != nil {
		return err
	}
	for _, d := range DesignTypes {
		density, ok := n.Density[d]
		if !ok {
			return fmt.Errorf("tech: node %dnm: missing density for %s", n.Nm, d)
		}
		// Analog density sits below the headline logic range; allow
		// down to 1 MTr/mm^2 for it.
		lo := 5.0
		if d == Analog {
			lo = 1.0
		}
		if err := check(d.String()+" density", density, lo, 150); err != nil {
			return err
		}
	}
	if err := check("EPA", n.EPA, 0.8, 3.5); err != nil {
		return err
	}
	if err := check("gas CFP", n.GasCFP, 0.1, 0.5); err != nil {
		return err
	}
	if err := check("material CFP", n.MaterialCFP, 0.1, 0.5); err != nil {
		return err
	}
	if err := check("equipment efficiency", n.EquipEfficiency, 0, 1); err != nil {
		return err
	}
	if err := check("EDA productivity", n.EDAProductivity, 0, 1); err != nil {
		return err
	}
	if err := check("Vdd", n.Vdd, 0.7, 1.8); err != nil {
		return err
	}
	if err := check("EPLA RDL", n.EPLARDL, 0.05, 0.2); err != nil {
		return err
	}
	if err := check("EPLA bridge", n.EPLABridge, 0.1, 0.35); err != nil {
		return err
	}
	if n.WaferCostUSD <= 0 {
		return fmt.Errorf("tech: node %dnm: wafer cost must be positive", n.Nm)
	}
	return nil
}

// DB is an immutable set of technology nodes keyed by node size.
// The zero value is unusable; construct with NewDB or use Default().
type DB struct {
	nodes map[int]*Node
}

// NewDB builds a database from the given nodes, validating each one.
func NewDB(nodes []Node) (*DB, error) {
	db := &DB{nodes: make(map[int]*Node, len(nodes))}
	for i := range nodes {
		n := nodes[i]
		if err := n.Validate(); err != nil {
			return nil, err
		}
		if _, dup := db.nodes[n.Nm]; dup {
			return nil, fmt.Errorf("tech: duplicate node %dnm", n.Nm)
		}
		db.nodes[n.Nm] = &n
	}
	return db, nil
}

// Get returns the node with the given size in nm.
func (db *DB) Get(nm int) (*Node, error) {
	n, ok := db.nodes[nm]
	if !ok {
		return nil, fmt.Errorf("tech: unsupported node %dnm (supported: %v)", nm, db.Sizes())
	}
	return n, nil
}

// MustGet is Get that panics on unknown nodes. It is intended for
// experiment code whose node lists are compile-time constants.
func (db *DB) MustGet(nm int) *Node {
	n, err := db.Get(nm)
	if err != nil {
		panic(err)
	}
	return n
}

// Sizes returns the supported node sizes in ascending order.
func (db *DB) Sizes() []int {
	sizes := make([]int, 0, len(db.nodes))
	for nm := range db.nodes {
		sizes = append(sizes, nm)
	}
	sort.Ints(sizes)
	return sizes
}

// Has reports whether the database contains the node.
func (db *DB) Has(nm int) bool {
	_, ok := db.nodes[nm]
	return ok
}

// Clone returns a deep copy of the database with the mutate function
// applied to every node. Mutated values are clamped back into the
// Table I ranges by the caller's mutate function or rejected here by
// re-validation — Clone never lets an out-of-model database escape.
// It is the supported way to run what-if analyses (e.g. sensitivity
// sweeps) without touching the shared Default() database.
func (db *DB) Clone(mutate func(*Node)) (*DB, error) {
	nodes := make([]Node, 0, len(db.nodes))
	for _, nm := range db.Sizes() {
		n := *db.nodes[nm]
		density := make(map[DesignType]float64, len(n.Density))
		for k, v := range n.Density {
			density[k] = v
		}
		n.Density = density
		if mutate != nil {
			mutate(&n)
		}
		nodes = append(nodes, n)
	}
	return NewDB(nodes)
}

// Sandbox is a private, reusable deep copy of a database for repeated
// what-if perturbation. Clone allocates a fresh database (and re-validates
// every node) per call, which is fine for a handful of tornado factors but
// dominates the per-sample cost of a compiled Monte Carlo run; a Sandbox
// is cloned once and then Reset per sample.
//
// A Sandbox is NOT safe for concurrent use; give each worker its own.
type Sandbox struct {
	src *DB
	db  *DB
}

// NewSandbox returns a sandbox over a deep copy of the database.
func (db *DB) NewSandbox() *Sandbox {
	clone, err := db.Clone(nil)
	if err != nil {
		// A database that validated at construction re-validates cleanly
		// under the identity mutation.
		panic(err)
	}
	return &Sandbox{src: db, db: clone}
}

// Reset restores every node to the source database's parameters, applies
// mutate to each (exactly as Clone would), and returns the sandbox
// database. Unlike Clone it allocates nothing and skips re-validation —
// it is the per-sample hot path of compiled Monte Carlo evaluation — so
// the caller's mutate owns keeping parameters in range (see Clamp). The
// returned DB aliases the sandbox's private nodes and is only valid
// until the next Reset.
func (sb *Sandbox) Reset(mutate func(*Node)) *DB {
	for nm, dst := range sb.db.nodes {
		src := sb.src.nodes[nm]
		density := dst.Density
		*dst = *src
		// Density keys a previous mutate added must not leak into this
		// sample: restore the map to exactly the source's key set.
		for k := range density {
			if _, ok := src.Density[k]; !ok {
				delete(density, k)
			}
		}
		for k, v := range src.Density {
			density[k] = v
		}
		dst.Density = density
		if mutate != nil {
			mutate(dst)
		}
	}
	return sb.db
}

// Clamp bounds v into [lo, hi]; a convenience for Clone mutate functions
// that scale Table I parameters.
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package experiments

import (
	"fmt"

	"ecochip/internal/mfg"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/report"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func init() {
	register("fig2a", Fig2a)
	register("fig2b", Fig2b)
	register("fig3b", Fig3b)
	register("fig6a", Fig6a)
	register("fig6b", Fig6b)
}

// Fig2a sweeps the area of a monolithic 10 nm logic die up to 200 mm^2
// and reports the manufacturing CFP, exposing the exponential growth from
// yield loss (Fig. 2(a)).
func Fig2a(db *tech.DB) (*report.Table, error) {
	t := report.New("fig2a", "manufacturing CFP vs area, monolithic 10nm logic die",
		"area_mm2", "yield", "cmfg_kg")
	n := db.MustGet(10)
	p := mfg.DefaultParams()
	for area := 10.0; area <= 200.0; area += 10 {
		r, err := mfg.Die(n, tech.Logic, area, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.F(area), report.F(r.Yield), report.F(r.TotalKg()))
	}
	return t, nil
}

// Fig2b compares the manufacturing CFP (C_mfg + C_HI) of the monolithic
// GA102 against a 4-chiplet version (digital split in two, memory and
// analog on their own dies) across technology nodes, normalized to the
// monolith (Fig. 2(b)).
func Fig2b(db *tech.DB) (*report.Table, error) {
	t := report.New("fig2b", "GA102 monolith vs 4-chiplet, normalized manufacturing CFP per node",
		"node_nm", "mono_kg", "chiplet_kg", "chiplet_over_mono")
	for _, nm := range []int{7, 10, 14} {
		mono, err := testcases.GA102(db, nm, nm, nm, true).Evaluate(db)
		if err != nil {
			return nil, err
		}
		split, err := testcases.GA102Split(db, 2, pkgcarbon.RDLFanout)
		if err != nil {
			return nil, err
		}
		// Retarget every chiplet of the split system to the same node.
		nodes := make([]int, len(split.Chiplets))
		for i := range nodes {
			nodes[i] = nm
		}
		split, err = split.WithNodes(nodes...)
		if err != nil {
			return nil, err
		}
		srep, err := split.Evaluate(db)
		if err != nil {
			return nil, err
		}
		monoMfg := mono.MfgKg
		chipletMfg := srep.MfgKg + srep.HIKg
		t.AddRow(report.I(nm), report.F(monoMfg), report.F(chipletMfg), report.F(chipletMfg/monoMfg))
	}
	return t, nil
}

// Fig3b compares manufacturing CFP with and without modeling the silicon
// wasted at the wafer periphery for the monolithic and 4-chiplet GA102 on
// a 450 mm wafer (Fig. 3(b)).
func Fig3b(db *tech.DB) (*report.Table, error) {
	t := report.New("fig3b", "wafer-periphery wastage effect, GA102 on 450mm wafer",
		"config", "with_wastage_kg", "without_wastage_kg", "wastage_share")
	rows := []struct {
		label string
		mk    func(wastage bool) (float64, error)
	}{
		{"GA102-monolith", func(w bool) (float64, error) {
			s := testcases.GA102(db, 7, 7, 7, true)
			s.Mfg.IncludeWastage = w
			rep, err := s.Evaluate(db)
			if err != nil {
				return 0, err
			}
			return rep.MfgKg + rep.HIKg, nil
		}},
		{"GA102-4chiplet", func(w bool) (float64, error) {
			s, err := testcases.GA102Split(db, 2, pkgcarbon.RDLFanout)
			if err != nil {
				return 0, err
			}
			s.Mfg.IncludeWastage = w
			rep, err := s.Evaluate(db)
			if err != nil {
				return 0, err
			}
			return rep.MfgKg + rep.HIKg, nil
		}},
	}
	for _, r := range rows {
		with, err := r.mk(true)
		if err != nil {
			return nil, err
		}
		without, err := r.mk(false)
		if err != nil {
			return nil, err
		}
		t.AddRow(r.label, report.F(with), report.F(without), report.F((with-without)/with))
	}
	return t, nil
}

// Fig6a reports the defect-density trend across nodes, normalized to the
// most advanced node (Fig. 6(a)).
func Fig6a(db *tech.DB) (*report.Table, error) {
	t := report.New("fig6a", "defect density vs technology node",
		"node_nm", "d0_per_cm2", "normalized")
	ref := db.MustGet(7).DefectDensity
	for _, nm := range db.Sizes() {
		d0 := db.MustGet(nm).DefectDensity
		t.AddRow(report.I(nm), report.F(d0), report.F(d0/ref))
	}
	return t, nil
}

// Fig6b sweeps the defect density (Table I range) for the GA102
// 3-chiplet system and reports total CFP (Fig. 6(b)).
func Fig6b(db *tech.DB) (*report.Table, error) {
	t := report.New("fig6b", "total CFP vs defect density, GA102 (7,14,10) RDL",
		"d0_per_cm2", "ctot_kg")
	for _, d0 := range []float64{0.07, 0.10, 0.15, 0.20, 0.25, 0.30} {
		s := testcases.GA102(db, 7, 14, 10, false)
		s.Mfg.DefectDensityOverride = d0
		rep, err := s.Evaluate(db)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", d0), report.F(rep.TotalKg()))
	}
	return t, nil
}

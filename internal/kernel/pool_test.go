package kernel

import (
	"testing"

	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

func TestScratchPoolReuseAndStatsFolding(t *testing.T) {
	db := tech.Default()
	pkg := pkgcarbon.DefaultParams(pkgcarbon.RDLFanout)
	pool := NewScratchPool(func() (*Scratch, error) {
		return NewSweepScratch(&pkg, 2)
	})

	sc, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if pool.Reuses() != 0 {
		t.Fatalf("first Get should build fresh, reuses = %d", pool.Reuses())
	}
	ch := sc.Chiplets()
	ch[0] = pkgcarbon.Chiplet{Name: "a", AreaMM2: 100, Node: db.MustGet(7)}
	ch[1] = pkgcarbon.Chiplet{Name: "b", AreaMM2: 50, Node: db.MustGet(14)}
	if _, err := sc.EstimatePackage(); err != nil {
		t.Fatal(err)
	}
	pool.Put(sc)
	if got := pool.FloorplanStats(); got.Plans() == 0 {
		t.Fatalf("Put should fold the scratch's floorplan work: %+v", got)
	}
	first := pool.FloorplanStats()

	// A second Get must return the same warm scratch (the free list
	// guarantees retention, unlike a sync.Pool); Put folds only the
	// increment (no double counting).
	sc2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if sc2 != sc {
		t.Fatal("pool did not reuse the returned scratch")
	}
	if pool.Reuses() != 1 {
		t.Fatalf("reuses = %d, want 1", pool.Reuses())
	}
	pool.Put(sc2)
	if got := pool.FloorplanStats(); got != first {
		t.Fatalf("idle scratch changed the folded stats: %+v vs %+v", got, first)
	}

	sc3, _ := pool.Get()
	ch = sc3.ResizeChiplets(1)
	if len(ch) != 1 {
		t.Fatalf("ResizeChiplets(1) returned %d slots", len(ch))
	}
	ch[0] = pkgcarbon.Chiplet{Name: "solo", AreaMM2: 80, Node: db.MustGet(7)}
	if _, err := sc3.EstimatePackage(); err != nil {
		t.Fatal(err)
	}
	pool.Put(sc3)
	if got := pool.FloorplanStats(); got.Plans() != first.Plans()+1 {
		t.Fatalf("resized estimate should fold exactly one more plan: %+v vs %+v", got, first)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("ResizeChiplets beyond capacity should panic")
			}
		}()
		sc3.ResizeChiplets(3)
	}()
}

// Command ecoexp regenerates the data behind every figure of the
// ECO-CHIP paper's evaluation (the Go equivalent of the artifact's
// run_all.sh):
//
//	ecoexp                  # print every experiment table
//	ecoexp -exp fig7a       # one experiment
//	ecoexp -csv results/    # also write one CSV per experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ecochip/internal/experiments"
	"ecochip/internal/report"
	"ecochip/internal/tech"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment id (default: all)")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSV files")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if err := run(*exp, *csvDir, os.Stdout); err != nil {
		fatal(err)
	}
}

// run executes one or all experiments, printing tables to w and
// optionally writing CSVs into csvDir.
func run(exp, csvDir string, w io.Writer) error {
	db := tech.Default()
	var tables []*report.Table
	if exp != "" {
		t, err := experiments.Run(exp, db)
		if err != nil {
			return err
		}
		tables = []*report.Table{t}
	} else {
		var err error
		tables, err = experiments.RunAll(db)
		if err != nil {
			return err
		}
	}

	for _, t := range tables {
		if err := t.Fprint(w); err != nil {
			return err
		}
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		for _, t := range tables {
			f, err := os.Create(filepath.Join(csvDir, t.Title+".csv"))
			if err != nil {
				return err
			}
			err = t.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d CSV files to %s\n", len(tables), csvDir)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecoexp:", err)
	os.Exit(1)
}

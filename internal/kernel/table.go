package kernel

import (
	"fmt"
	"unsafe"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/tech"
)

// Table is the dense per-(chiplet, node) invariant table of a compiled
// node sweep: every sub-result that depends only on which node one
// chiplet sits in — area, manufacturing carbon, design carbon, NRE
// share, die dollar cost — plus the single-row per-node invariants (NRE
// dollar cost, communication design share) and the fixed assembly
// pricer. BuildTable computes each entry through the same core seam
// (CellFor / MonolithCell) that System.Evaluate uses, so a point
// assembled from the table carries the exact float bits of a one-off
// evaluation. A Table is immutable after BuildTable and safe for
// concurrent use.
type Table struct {
	// Base and DB are the compiled system and database.
	Base *core.System
	DB   *tech.DB
	// Nodes is the candidate node list (the column order of every row).
	Nodes []int
	// Monolith selects the single-die evaluation path (single-chiplet or
	// monolithic bases): no packaging, no communication fabric.
	Monolith bool
	// HasOp reports whether the base carries an operating spec.
	HasOp bool

	// Cells and DieUSD are indexed [chiplet][node]; monolith tables hold
	// one row of merged-die cells. NREUSD and CommShare depend only on
	// the node (and, for CommShare, the fixed chiplet count), so they are
	// single rows; CommShare is nil for monolith tables.
	Cells     [][]core.DieCell
	DieUSD    [][]float64
	NREUSD    []float64
	CommShare []float64

	// cols is the struct-of-arrays view of the hot metric columns,
	// copied bit-for-bit out of Cells/DieUSD by BuildTable (see Cols).
	cols Cols

	// Names are the chiplet names for packaging descriptors (nil for
	// monolith tables).
	Names []string
	// Asm prices assembly for the fixed (architecture, die count) pair.
	Asm cost.Assembler
}

// Cols is the struct-of-arrays view of a table's hot metric columns:
// one flat row-major float64 slice per metric, indexed [i*Stride+j] for
// chiplet row i and node column j. The values are the exact float bits
// of the corresponding Cells/DieUSD entries — BuildTable copies them out
// of the cells it just computed — so a fold over the columns in chiplet
// order reproduces the AoS fold bit for bit while touching only the
// bytes it sums (a DieCell row drags eight fields through the cache to
// add four). Sweep, ParamPlan and Disaggregate walks gather per-chiplet
// strides from here into dense per-point buffers refreshed one row per
// Gray step. The slices are owned by the table and must not be written.
type Cols struct {
	// Stride is the row length (the candidate node count).
	Stride int
	// MfgKg, DesignKg, NREKg, AreaMM2 mirror the DieCell fields MfgKg,
	// DesignKgAmortized, NREKg and AreaMM2 (the operational term's
	// monolith input); DieUSD mirrors Table.DieUSD.
	MfgKg, DesignKg, NREKg, AreaMM2, DieUSD []float64
	// NREUSD is the per-node single row, indexed by node column alone.
	NREUSD []float64
}

// Row returns column col's contiguous stride for chiplet row i.
func (c *Cols) Row(col []float64, i int) []float64 {
	return col[i*c.Stride : (i+1)*c.Stride]
}

// Cols returns the table's struct-of-arrays column view.
func (t *Table) Cols() *Cols { return &t.cols }

// FoldAoS reduces the hot metric terms of the point selected by digits
// (digits[i] = node column of chiplet row i) straight off the Cells
// rows — the array-of-structs layout the compiled walks used before the
// column view existed. Kept as the parity oracle and micro-benchmark
// baseline for FoldCols; the reduction order is chiplet-major, exactly
// the order every compiled walk sums in.
func (t *Table) FoldAoS(digits []int) (mfgKg, desKg, nreKg, diesUSD, nreUSD float64) {
	for i, d := range digits {
		cell := &t.Cells[i][d]
		mfgKg += cell.MfgKg
		desKg += cell.DesignKgAmortized
		nreKg += cell.NREKg
		diesUSD += t.DieUSD[i][d]
		nreUSD += t.NREUSD[d]
	}
	return
}

// FoldCols is FoldAoS off the flat column view: same terms, same
// chiplet-major order, so the result is byte-identical by construction
// (the randomized SoA parity test pins this).
func (t *Table) FoldCols(digits []int) (mfgKg, desKg, nreKg, diesUSD, nreUSD float64) {
	c := &t.cols
	for i, d := range digits {
		k := i*c.Stride + d
		mfgKg += c.MfgKg[k]
		desKg += c.DesignKg[k]
		nreKg += c.NREKg[k]
		diesUSD += c.DieUSD[k]
		nreUSD += c.NREUSD[d]
	}
	return
}

// LayoutBytes reports the resident bytes of the two table layouts: the
// array-of-structs view (DieCell rows plus the DieUSD rows) and the
// struct-of-arrays columns. Surfaced by ecodse -progress next to the
// plan statistics.
func (t *Table) LayoutBytes() (aosBytes, soaBytes int) {
	cells := len(t.Cells) * len(t.Nodes)
	const dieCellBytes = int(unsafe.Sizeof(core.DieCell{}))
	aosBytes = cells*dieCellBytes + cells*8 + len(t.NREUSD)*8
	soaBytes = 5*cells*8 + len(t.cols.NREUSD)*8
	return
}

// BuildTable validates the base system and precomputes the dense
// per-(chiplet, node) table for evaluating it under every candidate
// node. Every node-independent computation and every per-(chiplet, node)
// sub-model call runs exactly once; errors any point of a sweep would
// hit (invalid base description, unsupported candidate node, sub-model
// domain violations, missing cost table entries) surface here.
func BuildTable(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (*Table, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("kernel: no candidate nodes")
	}
	if err := base.Validate(db); err != nil {
		return nil, err
	}
	for _, nm := range nodes {
		if !db.Has(nm) {
			return nil, fmt.Errorf("kernel: candidate node %dnm is not in the technology database", nm)
		}
	}
	nc := len(base.Chiplets)
	t := &Table{
		Base:     base,
		DB:       db,
		Nodes:    append([]int(nil), nodes...),
		Monolith: base.Monolithic || nc == 1,
		HasOp:    base.Operation != nil,
		NREUSD:   make([]float64, len(nodes)),
	}

	vol := base.Volume()
	rows := nc
	archName := base.Packaging.Arch.String()
	if t.Monolith {
		rows = 1
		archName = "monolithic"
	}
	t.Cells = make([][]core.DieCell, rows)
	t.DieUSD = make([][]float64, rows)
	// The five hot columns share one backing array: they are read
	// together, stride for stride, by every per-point fold.
	colBuf := make([]float64, 5*rows*len(nodes))
	t.cols = Cols{
		Stride:   len(nodes),
		MfgKg:    colBuf[0*rows*len(nodes) : 1*rows*len(nodes)],
		DesignKg: colBuf[1*rows*len(nodes) : 2*rows*len(nodes)],
		NREKg:    colBuf[2*rows*len(nodes) : 3*rows*len(nodes)],
		AreaMM2:  colBuf[3*rows*len(nodes) : 4*rows*len(nodes)],
		DieUSD:   colBuf[4*rows*len(nodes) : 5*rows*len(nodes)],
		NREUSD:   t.NREUSD,
	}
	for i := 0; i < rows; i++ {
		t.Cells[i] = make([]core.DieCell, len(nodes))
		t.DieUSD[i] = make([]float64, len(nodes))
		for j, nm := range nodes {
			var cell core.DieCell
			var err error
			if t.Monolith {
				cell, err = base.MonolithCell(db, nm, nil)
			} else {
				cell, err = base.CellFor(db, base.Chiplets[i], nm, nil)
			}
			if err != nil {
				return nil, err
			}
			t.Cells[i][j] = cell
			usd, err := cost.DieUSD(cell.Node, cell.AreaMM2, cp)
			if err != nil {
				return nil, err
			}
			t.DieUSD[i][j] = usd
			k := i*len(nodes) + j
			t.cols.MfgKg[k] = cell.MfgKg
			t.cols.DesignKg[k] = cell.DesignKgAmortized
			t.cols.NREKg[k] = cell.NREKg
			t.cols.AreaMM2[k] = cell.AreaMM2
			t.cols.DieUSD[k] = usd
		}
	}
	for j, nm := range nodes {
		usd, err := cost.NREUSDPerPart(db.MustGet(nm), vol, cp)
		if err != nil {
			return nil, err
		}
		t.NREUSD[j] = usd
	}
	if !t.Monolith {
		t.CommShare = make([]float64, len(nodes))
		for j, nm := range nodes {
			share, err := base.CommDesignShareKg(db, nm, nc, nil)
			if err != nil {
				return nil, err
			}
			t.CommShare[j] = share
		}
		t.Names = make([]string, nc)
		for i, c := range base.Chiplets {
			t.Names[i] = c.Name
		}
	}
	// rows is the die count of every point: nc chiplets, or one merged
	// die for monolith tables — exactly what assembly charges per.
	asm, err := cost.NewAssembler(archName, rows, cp)
	if err != nil {
		return nil, err
	}
	t.Asm = asm
	return t, nil
}

// NewScratch builds a per-worker sweep arena sized for this table.
func (t *Table) NewScratch() (*Scratch, error) {
	if t.Monolith {
		return NewSweepScratch(nil, 1)
	}
	return NewSweepScratch(&t.Base.Packaging, len(t.Base.Chiplets))
}

package experiments

import (
	"sort"
	"strconv"
	"strings"
	"testing"

	"ecochip/internal/tech"
)

func db() *tech.DB { return tech.Default() }

// Every paper figure must have a registered runner; extensions come on
// top of the 26 figure experiments.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig3b", "fig6a", "fig6b",
		"fig7a", "fig7b", "fig7c", "fig7d",
		"fig8a", "fig8b", "fig9", "fig10",
		"fig11a", "fig11b", "fig11c", "fig11d",
		"fig12a", "fig12b", "fig12c", "fig12d",
		"fig13", "fig14", "fig15a", "fig15b", "tbl1",
		"ext-tornado", "ext-pareto", "ext-noc", "ext-nre", "ext-validation", "ext-uncertainty",
	}
	got := IDs()
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// Extension shapes: the tornado is sorted by swing; the Pareto front is
// non-empty and contains the (7,14,10) carbon optimum; NoC per-flit
// energy grows with endpoints; NRE amortizes linearly.
func TestExtensionShapes(t *testing.T) {
	tor := mustRun(t, "ext-tornado")
	swings := tor["swing_kg"]
	for i := 1; i < len(swings); i++ {
		if swings[i] > swings[i-1] {
			t.Errorf("tornado not sorted by swing: %v", swings)
		}
	}

	par, err := Run("ext-pareto", db())
	if err != nil {
		t.Fatal(err)
	}
	foundOptimum := false
	for _, row := range par.Rows {
		if row[0] == "[7 14 10]" {
			foundOptimum = true
		}
	}
	if !foundOptimum {
		t.Error("the (7,14,10) carbon optimum must be on the Pareto front")
	}

	nocT := mustRun(t, "ext-noc")
	perFlit := nocT["energy_per_flit_nj"]
	// Within each node block of 4 endpoint counts, energy grows.
	for b := 0; b+4 <= len(perFlit); b += 4 {
		for i := 1; i < 4; i++ {
			if perFlit[b+i] <= perFlit[b+i-1] {
				t.Errorf("per-flit energy should grow with endpoints in block %d: %v", b/4, perFlit[b:b+4])
			}
		}
	}

	nre := mustRun(t, "ext-nre")
	at10k, at1m := nre["per_part_at_10k"], nre["per_part_at_1m"]
	for i := range at10k {
		if at1m[i] >= at10k[i] {
			t.Errorf("row %d: 1M-part NRE should be far below 10k-part", i)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", db()); err == nil {
		t.Error("unknown experiment should fail")
	}
}

// Every experiment must run cleanly and produce a non-empty table whose
// rows match the header width.
func TestAllExperimentsRun(t *testing.T) {
	tables, err := RunAll(db())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Fatalf("RunAll returned %d tables, want %d", len(tables), len(IDs()))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", tbl.Title)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Headers) {
				t.Errorf("%s: ragged row %v", tbl.Title, row)
			}
		}
		if tbl.Note == "" {
			t.Errorf("%s: missing note", tbl.Title)
		}
	}
}

func mustRun(t *testing.T, id string) map[string][]float64 {
	t.Helper()
	tbl, err := Run(id, db())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := map[string][]float64{}
	for _, h := range tbl.Headers {
		if vals, err := tbl.Column(h); err == nil {
			out[h] = vals
		}
	}
	out["__rows"] = []float64{float64(len(tbl.Rows))}
	return out
}

// Fig. 2(a): CFP grows superlinearly with area.
func TestFig2aShape(t *testing.T) {
	cols := mustRun(t, "fig2a")
	kg := cols["cmfg_kg"]
	area := cols["area_mm2"]
	if len(kg) != 20 {
		t.Fatalf("want 20 sweep points, got %d", len(kg))
	}
	// Last/first CFP ratio must exceed the area ratio (superlinear).
	if kg[len(kg)-1]/kg[0] <= area[len(area)-1]/area[0] {
		t.Errorf("CFP growth %.1fx should exceed area growth %.1fx",
			kg[len(kg)-1]/kg[0], area[len(area)-1]/area[0])
	}
}

// Fig. 2(b): the 4-chiplet GA102 beats the monolith at every node.
func TestFig2bShape(t *testing.T) {
	cols := mustRun(t, "fig2b")
	for i, ratio := range cols["chiplet_over_mono"] {
		if ratio >= 1 {
			t.Errorf("row %d: chiplet/mono ratio %.2f should be < 1", i, ratio)
		}
	}
}

// Fig. 3(b): modeling wastage raises CFP, and the monolith wastes more
// (its share of periphery waste is larger).
func TestFig3bShape(t *testing.T) {
	cols := mustRun(t, "fig3b")
	with, without := cols["with_wastage_kg"], cols["without_wastage_kg"]
	share := cols["wastage_share"]
	for i := range with {
		if with[i] <= without[i] {
			t.Errorf("row %d: with-wastage %.1f should exceed without %.1f", i, with[i], without[i])
		}
	}
	if share[1] >= share[0] {
		t.Errorf("chiplet wastage share %.3f should be below monolith %.3f", share[1], share[0])
	}
}

// Fig. 6: defect density falls with mature nodes; total CFP rises with D0.
func TestFig6Shapes(t *testing.T) {
	a := mustRun(t, "fig6a")
	d0 := a["d0_per_cm2"]
	for i := 1; i < len(d0); i++ {
		if d0[i] >= d0[i-1] {
			t.Errorf("defect density should fall with node age: %v", d0)
		}
	}
	b := mustRun(t, "fig6b")
	kg := b["ctot_kg"]
	for i := 1; i < len(kg); i++ {
		if kg[i] <= kg[i-1] {
			t.Errorf("total CFP should rise with defect density: %v", kg)
		}
	}
}

// Fig. 7(a): the minimum C_mfg+C_HI tuple is (7,14,10); (10,10,10)
// exceeds the monolith.
func TestFig7aShape(t *testing.T) {
	tbl, err := Run("fig7a", db())
	if err != nil {
		t.Fatal(err)
	}
	total, err := tbl.Column("cmfg_plus_chi_kg")
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for i, row := range tbl.Rows {
		byLabel[row[0]] = total[i]
	}
	best := "(7,14,10)"
	for label, v := range byLabel {
		if label != best && v < byLabel[best] {
			t.Errorf("tuple %s (%.1f kg) beats the expected minimum %s (%.1f kg)",
				label, v, best, byLabel[best])
		}
	}
	if byLabel["(10,10,10)"] <= byLabel["(7,7,7)-mono"] {
		t.Errorf("(10,10,10) %.1f should exceed the monolith %.1f",
			byLabel["(10,10,10)"], byLabel["(7,7,7)-mono"])
	}
}

// Fig. 7(b): older-node designs are cheaper to design.
func TestFig7bShape(t *testing.T) {
	tbl, err := Run("fig7b", db())
	if err != nil {
		t.Fatal(err)
	}
	total, err := tbl.Column("total_kg")
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for i, row := range tbl.Rows {
		byLabel[row[0]] = total[i]
	}
	if byLabel["(14,14,14)"] >= byLabel["(7,7,7)"] {
		t.Error("all-14nm design carbon should be below all-7nm")
	}
}

// Fig. 7(c): ACT underestimates everywhere.
func TestFig7cShape(t *testing.T) {
	cols := mustRun(t, "fig7c")
	for i, gap := range cols["act_underestimate_kg"] {
		if gap <= 0 {
			t.Errorf("row %d: ACT should underestimate (gap %.2f)", i, gap)
		}
	}
}

// Fig. 7(d): GPU operational carbon dominates (embodied share ~20%).
func TestFig7dShape(t *testing.T) {
	cols := mustRun(t, "fig7d")
	for i, share := range cols["emb_share"] {
		if share < 0.05 || share > 0.45 {
			t.Errorf("row %d: embodied share %.2f outside GPU-plausible (0.05, 0.45)", i, share)
		}
	}
}

// Fig. 8: HI beats monolith for both EMR and A15; A15 embodied share ~80%.
func TestFig8Shapes(t *testing.T) {
	a := mustRun(t, "fig8a")
	if a["ctot_kg"][1] >= a["ctot_kg"][0] {
		t.Error("EMR 2-chiplet C_tot should beat the monolith")
	}
	b := mustRun(t, "fig8b")
	if b["ctot_kg"][1] >= b["ctot_kg"][0] {
		t.Error("A15 3-chiplet C_tot should beat the monolith")
	}
	for i, share := range b["emb_share"] {
		if share < 0.6 || share > 0.95 {
			t.Errorf("A15 row %d: embodied share %.2f should be ~0.8", i, share)
		}
	}
}

// Fig. 9: EMIB wins at Nc=2, RDL wins at Nc=8, interposers sit above RDL.
func TestFig9Shape(t *testing.T) {
	tbl, err := Run("fig9", db())
	if err != nil {
		t.Fatal(err)
	}
	chi := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := tbl.Column("chi_kg")
		if err != nil {
			t.Fatal(err)
		}
		_ = v
		key := row[0] + "/" + row[1]
		var x float64
		if _, err := sscan(row[4], &x); err != nil {
			t.Fatal(err)
		}
		chi[key] = x
	}
	if !(chi["EMIB/2"] < chi["RDL/2"]) {
		t.Errorf("EMIB should win at Nc=2: EMIB %.2f vs RDL %.2f", chi["EMIB/2"], chi["RDL/2"])
	}
	if !(chi["RDL/8"] < chi["EMIB/8"]) {
		t.Errorf("RDL should win at Nc=8: RDL %.2f vs EMIB %.2f", chi["RDL/8"], chi["EMIB/8"])
	}
	for _, nc := range []string{"2", "4", "6", "8"} {
		if !(chi["passive-interposer/"+nc] > chi["RDL/"+nc]) {
			t.Errorf("passive interposer should exceed RDL at Nc=%s", nc)
		}
		if !(chi["active-interposer/"+nc] > chi["passive-interposer/"+nc]) {
			t.Errorf("active interposer should exceed passive at Nc=%s", nc)
		}
	}
	// 3D CFP falls with tiers.
	if !(chi["3D/4"] < chi["3D/3"] && chi["3D/3"] < chi["3D/2"]) {
		t.Errorf("3D C_HI should fall with tiers: %v %v %v", chi["3D/2"], chi["3D/3"], chi["3D/4"])
	}
}

// Fig. 10: C_mfg monotone down; C_HI grows across the sweep.
func TestFig10Shape(t *testing.T) {
	cols := mustRun(t, "fig10")
	mfg := cols["cmfg_kg"]
	for i := 1; i < len(mfg); i++ {
		if mfg[i] >= mfg[i-1] {
			t.Errorf("C_mfg should fall with Nc: %v", mfg)
		}
	}
	hi := cols["chi_kg"]
	if hi[len(hi)-1] <= hi[0] {
		t.Errorf("C_HI should grow across the sweep: %v", hi)
	}
}

// Fig. 11: monotone parameter responses.
func TestFig11Shapes(t *testing.T) {
	up := func(id, col string) {
		cols := mustRun(t, id)
		v := cols[col]
		for i := 1; i < len(v); i++ {
			if v[i] <= v[i-1] {
				t.Errorf("%s: %s should increase: %v", id, col, v)
			}
		}
	}
	down := func(id, col string) {
		cols := mustRun(t, id)
		v := cols[col]
		for i := 1; i < len(v); i++ {
			if v[i] >= v[i-1] {
				t.Errorf("%s: %s should decrease: %v", id, col, v)
			}
		}
	}
	up("fig11a", "chi_kg")   // more RDL layers -> more carbon
	down("fig11b", "chi_kg") // longer bridge range -> fewer bridges
	down("fig11c", "chi_kg") // rows run 22nm -> 65nm; older node -> less carbon
	down("fig11d", "chi_kg") // larger TSV pitch -> fewer TSVs
}

// Fig. 12: design carbon ~ 1/ratio; lifetime raises C_op.
func TestFig12Shapes(t *testing.T) {
	a := mustRun(t, "fig12a")
	cdes := a["cdes_kg"]
	for i := 1; i < len(cdes); i++ {
		if cdes[i] >= cdes[i-1] {
			t.Errorf("design carbon should fall with reuse ratio: %v", cdes)
		}
	}
	for _, id := range []string{"fig12b", "fig12c", "fig12d"} {
		cols := mustRun(t, id)
		cop := cols["cop_kg"]
		// Within each ratio block of 5 lifetimes, C_op rises.
		for b := 0; b+5 <= len(cop); b += 5 {
			for i := 1; i < 5; i++ {
				if cop[b+i] <= cop[b+i-1] {
					t.Errorf("%s: C_op should rise with lifetime in block %d: %v", id, b/5, cop[b:b+5])
				}
			}
		}
	}
}

// Fig. 13: latency falls with tiers but C_tot rises within each series.
func TestFig13Shape(t *testing.T) {
	cols := mustRun(t, "fig13")
	lat, ctot := cols["latency_ms"], cols["ctot_kg"]
	if len(lat) != 8 {
		t.Fatalf("want 8 design points, got %d", len(lat))
	}
	for _, base := range []int{0, 4} { // two series of 4 tiers
		for i := 1; i < 4; i++ {
			if lat[base+i] >= lat[base+i-1] {
				t.Errorf("latency should fall with tiers in series at %d: %v", base, lat[base:base+4])
			}
			if ctot[base+i] <= ctot[base+i-1] {
				t.Errorf("C_tot should rise with tiers in series at %d: %v", base, ctot[base:base+4])
			}
		}
	}
}

// Fig. 14: normalized products are 1 for the monolith row.
func TestFig14Shape(t *testing.T) {
	cols := mustRun(t, "fig14")
	if cols["carbon_power_norm"][0] != 1 || cols["carbon_area_norm"][0] != 1 {
		t.Error("monolith row should normalize to 1")
	}
	// Older-node tuples occupy more area.
	area := cols["area_mm2"]
	if area[len(area)-1] <= area[0] {
		t.Errorf("(14,14,14) area %.0f should exceed monolith %.0f", area[len(area)-1], area[0])
	}
}

// Fig. 15: cost trend mirrors carbon; assembly cost grows with Nc while
// die cost falls.
func TestFig15Shapes(t *testing.T) {
	a, err := Run("fig15a", db())
	if err != nil {
		t.Fatal(err)
	}
	total, err := a.Column("total_usd")
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]float64{}
	for i, row := range a.Rows {
		byLabel[row[0]] = total[i]
	}
	if byLabel["(7,14,10)"] >= byLabel["(7,7,7)"] {
		t.Error("mixed-node tuple should cost less than all-7nm chiplets")
	}

	b := mustRun(t, "fig15b")
	dies, asm := b["dies_usd"], b["assembly_usd"]
	for i := 1; i < len(dies); i++ {
		if dies[i] >= dies[i-1] {
			t.Errorf("die cost should fall with Nc: %v", dies)
		}
	}
	if asm[len(asm)-1] <= asm[0] {
		t.Errorf("assembly cost should grow with Nc: %v", asm)
	}
}

func TestTableIRuns(t *testing.T) {
	tbl, err := Run("tbl1", db())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(db().Sizes()) {
		t.Errorf("Table I should have one row per node")
	}
}

// sscan parses one float cell (keeps the Fig. 9 test readable).
func sscan(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}

package core

import (
	"math"
	"testing"

	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/opcarbon"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

func db() *tech.DB { return tech.Default() }

// threeChiplet builds a small GA102-like 3-chiplet system.
func threeChiplet(digital, memory, analog int) *System {
	ref := db().MustGet(7)
	return &System{
		Name: "test3",
		Chiplets: []Chiplet{
			BlockFromArea("digital", tech.Logic, 500, ref, digital),
			BlockFromArea("memory", tech.Memory, 80, ref, memory),
			BlockFromArea("analog", tech.Analog, 48, ref, analog),
		},
		Packaging: pkgcarbon.DefaultParams(pkgcarbon.RDLFanout),
		Mfg:       mfg.DefaultParams(),
		Design:    descarbon.DefaultParams(),
	}
}

func monolith(node int) *System {
	s := threeChiplet(node, node, node)
	s.Monolithic = true
	return s
}

func TestBlockFromArea(t *testing.T) {
	ref := db().MustGet(7)
	c := BlockFromArea("digital", tech.Logic, 500, ref, 7)
	// Round trip: 500 mm^2 at the same node.
	if got := ref.Area(tech.Logic, c.Transistors); math.Abs(got-500) > 1e-9 {
		t.Errorf("round-trip area = %g, want 500", got)
	}
	if c.NodeNm != 7 || c.Name != "digital" {
		t.Errorf("unexpected chiplet %+v", c)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []func(*System){
		func(s *System) { s.Chiplets = nil },
		func(s *System) { s.Chiplets[0].Name = "" },
		func(s *System) { s.Chiplets[0].Transistors = 0 },
		func(s *System) { s.Chiplets[0].NodeNm = 3 },
		func(s *System) { s.Chiplets[0].ManufacturedParts = -1 },
		func(s *System) { s.SystemVolume = -1 },
		func(s *System) { s.Mfg.CarbonIntensity = 9 },
		func(s *System) { s.Design.PowerW = 0 },
		func(s *System) { s.Packaging.RDLLayers = 99 },
		func(s *System) { s.Operation = &opcarbon.Spec{} },
	}
	for i, mutate := range bad {
		s := threeChiplet(7, 10, 14)
		mutate(s)
		if _, err := s.Evaluate(db()); err == nil {
			t.Errorf("mutation %d should fail Evaluate", i)
		}
	}
	// Monolithic node mixing.
	s := threeChiplet(7, 10, 14)
	s.Monolithic = true
	if _, err := s.Evaluate(db()); err == nil {
		t.Error("monolith with mixed nodes should fail")
	}
}

func TestMonolithHasNoHITerm(t *testing.T) {
	rep, err := monolith(7).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HIKg != 0 || rep.Packaging != nil {
		t.Errorf("monolith must have zero HI carbon, got %g", rep.HIKg)
	}
	if len(rep.Chiplets) != 1 {
		t.Errorf("monolith should report one die, got %d", len(rep.Chiplets))
	}
	if math.Abs(rep.Chiplets[0].AreaMM2-628) > 1e-6 {
		t.Errorf("monolith area = %g, want 628", rep.Chiplets[0].AreaMM2)
	}
}

func TestReportAdditivity(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	s.Operation = &opcarbon.Spec{
		DutyCycle: 0.2, LifetimeYears: 2, CarbonIntensity: 0.7, AnnualEnergyKWh: 228,
	}
	rep, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.EmbodiedKg()-(rep.MfgKg+rep.DesignKg+rep.HIKg)) > 1e-9 {
		t.Error("C_emb must equal C_mfg + C_des + C_HI")
	}
	if math.Abs(rep.TotalKg()-(rep.EmbodiedKg()+rep.OperationalKg)) > 1e-9 {
		t.Error("C_tot must equal C_emb + C_op")
	}
	var sumMfg float64
	for _, c := range rep.Chiplets {
		sumMfg += c.MfgKg
	}
	if math.Abs(sumMfg-rep.MfgKg) > 1e-9 {
		t.Error("system C_mfg must equal the per-chiplet sum")
	}
	if rep.OperationalKg <= 0 {
		t.Error("operational carbon should be positive with a spec")
	}
}

// Section V-A headline: the HI system with mixed nodes (7,14,10) has
// lower embodied carbon than the 7nm monolith, and the best tuple is
// (7,14,10) rather than all-advanced or all-old.
func TestMixAndMatchBeatsMonolith(t *testing.T) {
	mono, err := monolith(7).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := threeChiplet(7, 14, 10).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if mixed.EmbodiedKg() >= mono.EmbodiedKg() {
		t.Errorf("HI (7,14,10) C_emb %.1f should beat monolith %.1f",
			mixed.EmbodiedKg(), mono.EmbodiedKg())
	}
	// (10,10,10) moves the digital block to a larger-area node: worse
	// than the monolith (the paper's Fig. 7a observation).
	all10, err := threeChiplet(10, 10, 10).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if all10.MfgKg+all10.HIKg <= mono.MfgKg {
		t.Errorf("(10,10,10) C_mfg+C_HI %.1f should exceed monolith C_mfg %.1f",
			all10.MfgKg+all10.HIKg, mono.MfgKg)
	}
}

// Fig. 7(c): ACT underestimates C_emb because it omits design carbon,
// wastage and real package assembly.
func TestACTUnderestimates(t *testing.T) {
	for _, s := range []*System{monolith(7), threeChiplet(7, 14, 10), threeChiplet(7, 7, 7)} {
		rep, err := s.Evaluate(db())
		if err != nil {
			t.Fatal(err)
		}
		actKg, err := s.ACTEmbodiedKg(db())
		if err != nil {
			t.Fatal(err)
		}
		if actKg >= rep.EmbodiedKg() {
			t.Errorf("%s: ACT %.1f should be below ECO-CHIP %.1f", s.Name, actKg, rep.EmbodiedKg())
		}
	}
}

func TestReusedChipletSkipsDesignCarbon(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	fresh, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	s.Chiplets[1].Reused = true
	s.Chiplets[2].Reused = true
	reused, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if reused.DesignKg >= fresh.DesignKg {
		t.Errorf("reusing chiplets should cut design carbon: %.2f vs %.2f",
			reused.DesignKg, fresh.DesignKg)
	}
	if reused.MfgKg != fresh.MfgKg {
		t.Error("reuse must not change manufacturing carbon")
	}
	if reused.Chiplets[1].DesignKgAmortized != 0 {
		t.Error("reused chiplet should carry zero design carbon")
	}
}

func TestVolumeAmortizesDesign(t *testing.T) {
	lowVol := threeChiplet(7, 14, 10)
	lowVol.SystemVolume = 1_000
	for i := range lowVol.Chiplets {
		lowVol.Chiplets[i].ManufacturedParts = 1_000
	}
	highVol := threeChiplet(7, 14, 10)
	highVol.SystemVolume = 10_000_000
	for i := range highVol.Chiplets {
		highVol.Chiplets[i].ManufacturedParts = 10_000_000
	}
	lo, err := lowVol.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	hi, err := highVol.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if hi.DesignKg >= lo.DesignKg {
		t.Errorf("10M-part design carbon %.3f should be far below 1k-part %.3f",
			hi.DesignKg, lo.DesignKg)
	}
	if math.Abs(hi.MfgKg-lo.MfgKg) > 1e-9 {
		t.Error("volume must not change manufacturing carbon")
	}
}

func TestWithNodes(t *testing.T) {
	s := threeChiplet(7, 7, 7)
	s2, err := s.WithNodes(7, 14, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Chiplets[1].NodeNm != 14 || s2.Chiplets[2].NodeNm != 10 {
		t.Error("WithNodes did not retarget")
	}
	if s.Chiplets[1].NodeNm != 7 {
		t.Error("WithNodes must not mutate the original")
	}
	if _, err := s.WithNodes(7, 14); err == nil {
		t.Error("wrong node count should fail")
	}
}

func TestRouterPowerFeedsOperational(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	s.Packaging = pkgcarbon.DefaultParams(pkgcarbon.PassiveInterposer)
	s.Operation = &opcarbon.Spec{
		DutyCycle: 0.2, LifetimeYears: 2, CarbonIntensity: 0.7, AnnualEnergyKWh: 228,
	}
	withNoC, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if withNoC.RouterPowerW <= 0 {
		t.Fatal("passive interposer should report router power")
	}
	rdl := threeChiplet(7, 14, 10)
	rdl.Operation = s.Operation
	plain, err := rdl.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if withNoC.OperationalKg <= plain.OperationalKg {
		t.Errorf("NoC power should raise operational carbon: %.2f vs %.2f",
			withNoC.OperationalKg, plain.OperationalKg)
	}
}

func TestSingleChipletActsAsMonolith(t *testing.T) {
	ref := db().MustGet(7)
	s := &System{
		Name:     "solo",
		Chiplets: []Chiplet{BlockFromArea("die", tech.Logic, 100, ref, 7)},
		Mfg:      mfg.DefaultParams(),
		Design:   descarbon.DefaultParams(),
	}
	rep, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HIKg != 0 {
		t.Error("single-chiplet system should have no packaging carbon")
	}
}

func TestCostUSDIntegration(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	b, err := s.CostUSD(db(), defaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if b.DiesUSD <= 0 || b.AssemblyUSD <= 0 || b.NREUSD <= 0 {
		t.Errorf("cost components should be positive: %+v", b)
	}
	// Monolith: cheaper assembly but pricier silicon.
	mono, err := monolith(7).CostUSD(db(), defaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if mono.AssemblyUSD >= b.AssemblyUSD {
		t.Errorf("monolithic assembly $%.2f should be below HI assembly $%.2f",
			mono.AssemblyUSD, b.AssemblyUSD)
	}
	if mono.DiesUSD <= b.DiesUSD {
		t.Errorf("monolithic die cost $%.2f should exceed HI die cost $%.2f",
			mono.DiesUSD, b.DiesUSD)
	}
}

// Package uncertainty propagates input-parameter uncertainty through the
// ECO-CHIP carbon model. Section VII of the paper stresses that the tool
// "can generate numbers as accurate as the accuracy of the input
// parameters" — defect densities, design times and energy intensities are
// published only as ranges. This package runs a deterministic (seeded)
// Monte Carlo over those ranges and reports the resulting C_tot / C_emb
// distribution, so a result can be quoted with honest error bars instead
// of a single point.
//
// Sampling runs on a compiled parameter plan (kernel.ParamPlan): the
// base system is tabulated once, each worker perturbs a private sandbox
// copy of the tech database per sample (no per-sample clone or
// re-validation), and only the sub-models the sampled parameters reach —
// die manufacturing, design carbon, the packaging communication cells —
// are recomputed; the floorplan and package carbon are served from the
// tabulation. Every sample draws from its own seed-derived RNG stream,
// so the distribution is bit-identical at any worker count and to the
// per-evaluation reference path (RunReference), which the randomized
// parity test enforces.
package uncertainty

import (
	"context"
	"fmt"
	"sort"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/kernel"
	"ecochip/internal/tech"
)

// Spread is the relative half-width applied to each sampled parameter
// (uniform distribution, clamped to Table I bounds).
type Spread struct {
	// DefectDensity, EPA, FabIntensity, DesignTime are relative
	// half-widths in [0, 0.5].
	DefectDensity float64
	EPA           float64
	FabIntensity  float64
	DesignTime    float64
}

// DefaultSpread reflects the coarse granularity of public sustainability
// data: +/-20% on defect density and EPA, +/-15% on energy intensity,
// +/-30% on design effort.
func DefaultSpread() Spread {
	return Spread{DefectDensity: 0.20, EPA: 0.20, FabIntensity: 0.15, DesignTime: 0.30}
}

// Validate bounds the spreads.
func (s Spread) Validate() error {
	for name, v := range map[string]float64{
		"defect density": s.DefectDensity, "EPA": s.EPA,
		"fab intensity": s.FabIntensity, "design time": s.DesignTime,
	} {
		if v < 0 || v > 0.5 {
			return fmt.Errorf("uncertainty: %s spread %g outside [0, 0.5]", name, v)
		}
	}
	return nil
}

// Distribution summarizes the sampled carbon values.
type Distribution struct {
	// Samples is the number of Monte Carlo trials.
	Samples int
	// MeanKg and the percentile cuts of the sampled metric.
	MeanKg, P5Kg, P50Kg, P95Kg float64
	// MinKg and MaxKg bound the samples.
	MinKg, MaxKg float64
}

// RelativeSpread is (P95-P5)/P50: the two-sided relative uncertainty.
func (d Distribution) RelativeSpread() float64 {
	if d.P50Kg == 0 {
		return 0
	}
	return (d.P95Kg - d.P5Kg) / d.P50Kg
}

// sampleStream is sample i's private random stream: a splitmix64
// sequence seeded from the run seed and the sample index. Each Monte
// Carlo trial owns an independent, index-addressed stream, so the
// sampled values do not depend on which worker draws them or in what
// order — the whole run is bit-reproducible at any parallelism. A
// sample makes at most four uniform draws; a dedicated splitmix64 walk
// costs a handful of integer ops per draw, where seeding a math/rand
// source per sample means filling its 607-word lagged-Fibonacci state —
// which profiled as the dominant cost of the entire compiled analysis.
type sampleStream struct{ state uint64 }

func newSampleStream(seed int64, i int) sampleStream {
	// Finalize (seed, i) into the stream's base state. Seeding with the
	// raw counter seed + γ·(i+1) would put adjacent samples on
	// overlapping arithmetic progressions of the splitmix64 counter —
	// sample i's draw k would equal sample i+1's draw k-1 bit for bit —
	// so the base state must be scattered through the finalizer first;
	// after that, distinct samples' short walks collide only with
	// ~2^-62 probability.
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return sampleStream{state: z ^ (z >> 31)}
}

func (s *sampleStream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1) with 53 random bits (the
// same mantissa width math/rand's Float64 carries).
func (s *sampleStream) float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// draw scales a parameter by a uniform factor in [1-rel, 1+rel); the
// draw order (defect density, EPA, fab intensity, design time) is part
// of the bit-reproducibility contract and must match on every
// evaluation path.
func (s *sampleStream) draw(rel float64) float64 {
	if rel == 0 {
		return 1
	}
	return 1 + rel*(2*s.float64()-1)
}

// Run samples the system's embodied carbon n times with parameters drawn
// uniformly within the spread (seeded: identical inputs give identical
// distributions).
func Run(base *core.System, db *tech.DB, spread Spread, n int, seed int64) (Distribution, error) {
	return RunCtx(context.Background(), base, db, spread, n, seed)
}

// RunCtx is Run with cancellation and engine options. It runs on a
// compiled parameter plan and is bit-identical to RunReference at any
// worker count.
func RunCtx(ctx context.Context, base *core.System, db *tech.DB, spread Spread, n int, seed int64, opts ...engine.Option) (Distribution, error) {
	d, _, err := RunPlanned(ctx, base, db, spread, n, seed, opts...)
	return d, err
}

// mcDirty is the dirty set of every Monte Carlo sample: the sampled
// parameters reach die manufacturing (defect density, EPA, fab
// intensity), design carbon (design compute power) and the packaging
// communication cells (per-node CFPA) — but never the chiplet areas, the
// floorplan, the package carbon or the amortization volumes.
const mcDirty = kernel.DirtyNodes | kernel.DirtyMfg | kernel.DirtyDesign

// RunPlanned is RunCtx also returning the compiled parameter plan the
// sampling ran on, so callers can surface plan statistics.
func RunPlanned(ctx context.Context, base *core.System, db *tech.DB, spread Spread, n int, seed int64, opts ...engine.Option) (Distribution, *kernel.ParamPlan, error) {
	if err := checkRun(base, db, spread, n); err != nil {
		return Distribution{}, nil, err
	}
	plan, err := kernel.CompileParams(base, db)
	if err != nil {
		return Distribution{}, nil, err
	}
	samples, err := engine.RunScratch(ctx, n,
		func(*core.Hooks) (*kernel.Scratch, error) { return plan.NewScratch() },
		func(_ context.Context, i int, sc *kernel.Scratch) (float64, error) {
			rng := newSampleStream(seed, i)
			d0Scale := rng.draw(spread.DefectDensity)
			epaScale := rng.draw(spread.EPA)
			dbi := sc.PerturbNodes(func(node *tech.Node) {
				node.DefectDensity = tech.Clamp(node.DefectDensity*d0Scale, 0.07, 0.3)
				node.EPA = tech.Clamp(node.EPA*epaScale, 0.8, 3.5)
			})
			s := *base
			s.Mfg.CarbonIntensity = tech.Clamp(s.Mfg.CarbonIntensity*rng.draw(spread.FabIntensity), 0.030, 0.700)
			s.Design.PowerW = s.Design.PowerW * rng.draw(spread.DesignTime)
			t, err := plan.Eval(sc, &s, dbi, mcDirty)
			if err != nil {
				return 0, err
			}
			return t.EmbodiedKg(), nil
		}, opts...)
	if err != nil {
		return Distribution{}, nil, err
	}
	return summarize(samples), plan, nil
}

// RunReference is the uncompiled Monte Carlo: every sample clones the
// technology database, re-validates the perturbed system and runs a full
// EvaluateWith through the engine's memo cache. It is the oracle the
// compiled path is tested against and the baseline its speedup is
// measured against.
func RunReference(ctx context.Context, base *core.System, db *tech.DB, spread Spread, n int, seed int64, opts ...engine.Option) (Distribution, error) {
	if err := checkRun(base, db, spread, n); err != nil {
		return Distribution{}, err
	}
	samples, err := engine.Run(ctx, n, func(_ context.Context, i int, h *core.Hooks) (float64, error) {
		rng := newSampleStream(seed, i)
		d0Scale := rng.draw(spread.DefectDensity)
		epaScale := rng.draw(spread.EPA)
		dbi, err := db.Clone(func(node *tech.Node) {
			node.DefectDensity = tech.Clamp(node.DefectDensity*d0Scale, 0.07, 0.3)
			node.EPA = tech.Clamp(node.EPA*epaScale, 0.8, 3.5)
		})
		if err != nil {
			return 0, err
		}
		s := *base
		s.Mfg.CarbonIntensity = tech.Clamp(s.Mfg.CarbonIntensity*rng.draw(spread.FabIntensity), 0.030, 0.700)
		s.Design.PowerW = s.Design.PowerW * rng.draw(spread.DesignTime)
		rep, err := s.EvaluateWith(dbi, h)
		if err != nil {
			return 0, err
		}
		return rep.EmbodiedKg(), nil
	}, opts...)
	if err != nil {
		return Distribution{}, err
	}
	return summarize(samples), nil
}

// checkRun validates the shared run preconditions in the order the
// historical implementation checked them, so both evaluation paths
// surface identical errors.
func checkRun(base *core.System, db *tech.DB, spread Spread, n int) error {
	if n < 10 {
		return fmt.Errorf("uncertainty: need at least 10 samples, got %d", n)
	}
	if err := spread.Validate(); err != nil {
		return err
	}
	return base.Validate(db)
}

// summarize reduces the sorted samples to the reported distribution
// (shared by both evaluation paths so the reduction cannot diverge).
func summarize(samples []float64) Distribution {
	sort.Float64s(samples)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	n := len(samples)
	pct := func(p float64) float64 {
		idx := int(p * float64(n-1))
		return samples[idx]
	}
	return Distribution{
		Samples: n,
		MeanKg:  sum / float64(n),
		P5Kg:    pct(0.05),
		P50Kg:   pct(0.50),
		P95Kg:   pct(0.95),
		MinKg:   samples[0],
		MaxKg:   samples[n-1],
	}
}

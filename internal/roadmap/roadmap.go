// Package roadmap models chiplet reuse across product generations — the
// core "reuse" lever of the ECO-CHIP paper's introduction: "the reuse of
// chiplets across multiple designs, even spanning multiple generations
// of ICs, can substantially amortize the embodied CFP just as it
// amortizes the dollar cost."
//
// A Roadmap is a sequence of product generations, each shipping a volume
// of systems built from chiplets; a chiplet either carries over from a
// previous generation (paying no new design or mask carbon) or is a new
// design. Evaluate produces the cumulative embodied carbon of the whole
// roadmap and the savings relative to redesigning everything every
// generation.
package roadmap

import (
	"context"
	"fmt"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/tech"
)

// Generation is one product generation.
type Generation struct {
	// Name labels the generation ("gen1", "2026-flagship", ...).
	Name string
	// System is the product's chiplet description. Chiplet names are
	// identity: a chiplet whose name appeared in an earlier generation
	// with the same node and transistor budget is treated as carried
	// over.
	System *core.System
	// Volume is the number of systems shipped this generation; 0 uses
	// the system's own volume.
	Volume int
}

// GenerationReport is the carbon of one generation within the roadmap.
type GenerationReport struct {
	Name string
	// PerPartKg is C_emb per shipped part with cross-generation reuse.
	PerPartKg float64
	// NaivePerPartKg is C_emb per part if every chiplet were redesigned
	// this generation.
	NaivePerPartKg float64
	// CarriedOver lists the chiplet names reused from earlier
	// generations.
	CarriedOver []string
	// FleetKg is PerPartKg * volume.
	FleetKg float64
}

// Report is the whole-roadmap result.
type Report struct {
	Generations []GenerationReport
}

// TotalFleetKg is the cumulative embodied carbon of every part shipped
// across the roadmap.
func (r *Report) TotalFleetKg() float64 {
	var total float64
	for _, g := range r.Generations {
		total += g.FleetKg
	}
	return total
}

// NaiveFleetKg is the cumulative carbon without cross-generation reuse.
func (r *Report) NaiveFleetKg() float64 {
	var total float64
	for i, g := range r.Generations {
		vol := g.FleetKg / g.PerPartKg // recover volume
		_ = i
		total += g.NaivePerPartKg * vol
	}
	return total
}

// SavingFraction is 1 - reused/naive over the whole fleet.
func (r *Report) SavingFraction() float64 {
	naive := r.NaiveFleetKg()
	if naive == 0 {
		return 0
	}
	return 1 - r.TotalFleetKg()/naive
}

type chipletKey struct {
	name        string
	nodeNm      int
	transistors float64
}

// Evaluate walks the generations in order, marking chiplets that carry
// over from earlier generations as reused (zero incremental design
// carbon) and accumulating fleet totals.
func Evaluate(db *tech.DB, generations []Generation) (*Report, error) {
	return EvaluateCtx(context.Background(), db, generations)
}

// EvaluateCtx is Evaluate with cancellation and engine options. The
// generation walk itself is inherently sequential (which chiplets count
// as reused depends on every earlier generation), but each generation's
// reuse-aware and naive variants evaluate concurrently, and one memo
// cache spans the whole roadmap — carried-over chiplets are exactly the
// ones whose die results repeat generation after generation.
func EvaluateCtx(ctx context.Context, db *tech.DB, generations []Generation, opts ...engine.Option) (*Report, error) {
	if len(generations) == 0 {
		return nil, fmt.Errorf("roadmap: no generations")
	}
	opts = append([]engine.Option{engine.WithCache(engine.NewCache())}, opts...)
	seen := map[chipletKey]bool{}
	rep := &Report{}
	for gi, gen := range generations {
		if gen.System == nil {
			return nil, fmt.Errorf("roadmap: generation %d (%s) has no system", gi, gen.Name)
		}
		vol := gen.Volume
		if vol == 0 {
			vol = gen.System.SystemVolume
		}
		if vol == 0 {
			vol = core.DefaultVolume
		}

		// Reuse-aware variant: mark carried-over chiplets.
		reuseSys := *gen.System
		reuseSys.Chiplets = make([]core.Chiplet, len(gen.System.Chiplets))
		copy(reuseSys.Chiplets, gen.System.Chiplets)
		var carried []string
		for i := range reuseSys.Chiplets {
			c := &reuseSys.Chiplets[i]
			key := chipletKey{c.Name, c.NodeNm, c.Transistors}
			if seen[key] {
				c.Reused = true
				carried = append(carried, c.Name)
			}
		}

		// Naive variant: everything redesigned.
		naiveSys := *gen.System
		naiveSys.Chiplets = make([]core.Chiplet, len(gen.System.Chiplets))
		copy(naiveSys.Chiplets, gen.System.Chiplets)
		for i := range naiveSys.Chiplets {
			naiveSys.Chiplets[i].Reused = false
		}

		reports, err := engine.EvaluateBatch(ctx, db, []*core.System{&reuseSys, &naiveSys}, opts...)
		if err != nil {
			return nil, fmt.Errorf("roadmap: generation %s: %w", gen.Name, err)
		}
		reuseRep, naiveRep := reports[0], reports[1]

		for i := range gen.System.Chiplets {
			c := gen.System.Chiplets[i]
			seen[chipletKey{c.Name, c.NodeNm, c.Transistors}] = true
		}

		rep.Generations = append(rep.Generations, GenerationReport{
			Name:           gen.Name,
			PerPartKg:      reuseRep.EmbodiedKg(),
			NaivePerPartKg: naiveRep.EmbodiedKg(),
			CarriedOver:    carried,
			FleetKg:        reuseRep.EmbodiedKg() * float64(vol),
		})
	}
	return rep, nil
}

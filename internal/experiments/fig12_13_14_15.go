package experiments

import (
	"fmt"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/report"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func init() {
	register("fig12a", Fig12a)
	register("fig12b", Fig12b)
	register("fig12c", Fig12c)
	register("fig12d", Fig12d)
	register("fig13", Fig13)
	register("fig14", Fig14)
	register("fig15a", Fig15a)
	register("fig15b", Fig15b)
}

// reuseRatios is the N_Mi / N_S sweep of Fig. 12 with N_Mi fixed at
// 100,000: a ratio of 10 means every manufactured chiplet is reused
// across 10 distinct systems.
var reuseRatios = []int{1, 2, 5, 10, 20, 50, 100}

// withRatio retargets a system to the reuse ratio: the system volume N_S
// stays at the default 100,000 while each chiplet is manufactured
// N_Mi = ratio * N_S times — i.e. the chiplet design is reused across
// `ratio` distinct systems, amortizing its design carbon further
// (Section V-C).
func withRatio(s *core.System, ratio int) {
	for i := range s.Chiplets {
		s.Chiplets[i].ManufacturedParts = ratio * core.DefaultVolume
	}
	s.SystemVolume = core.DefaultVolume
}

// Fig12a sweeps the reuse ratio for the EMR 2-chiplet testcase in 7 nm
// and reports the amortized design carbon (Fig. 12(a)).
func Fig12a(db *tech.DB) (*report.Table, error) {
	t := report.New("fig12a", "EMR design CFP vs N_Mi/N_S reuse ratio (7nm, N_Mi=100k)",
		"ratio", "cdes_kg")
	for _, ratio := range reuseRatios {
		s := testcases.EMR(db, 7, false)
		withRatio(s, ratio)
		rep, err := s.Evaluate(db)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(ratio), report.F(rep.DesignKg))
	}
	return t, nil
}

// fig12Lifetime renders C_tot across lifetimes and reuse ratios for one
// testcase builder (Figs. 12(b)-(d)).
func fig12Lifetime(id, note string, db *tech.DB, build func() *core.System) (*report.Table, error) {
	t := report.New(id, note, "ratio", "lifetime_yr", "cemb_kg", "cop_kg", "ctot_kg")
	for _, ratio := range []int{1, 10, 100} {
		for lifetime := 1.0; lifetime <= 5.0; lifetime++ {
			s := build()
			withRatio(s, ratio)
			s.Operation.LifetimeYears = lifetime
			rep, err := s.Evaluate(db)
			if err != nil {
				return nil, err
			}
			t.AddRow(report.I(ratio), fmt.Sprintf("%.0f", lifetime),
				report.F(rep.EmbodiedKg()), report.F(rep.OperationalKg), report.F(rep.TotalKg()))
		}
	}
	return t, nil
}

// Fig12b is the GA102 lifetime/ratio sweep (Fig. 12(b)).
func Fig12b(db *tech.DB) (*report.Table, error) {
	return fig12Lifetime("fig12b", "GA102 C_tot vs reuse ratio and lifetime (RDL fanout)",
		db, func() *core.System { return testcases.GA102(db, 7, 14, 10, false) })
}

// Fig12c is the A15 lifetime/ratio sweep (Fig. 12(c)).
func Fig12c(db *tech.DB) (*report.Table, error) {
	return fig12Lifetime("fig12c", "A15 C_tot vs reuse ratio and lifetime (RDL fanout)",
		db, func() *core.System { return testcases.A15(db, 7, 14, 10, false) })
}

// Fig12d is the EMR lifetime/ratio sweep (Fig. 12(d)).
func Fig12d(db *tech.DB) (*report.Table, error) {
	return fig12Lifetime("fig12d", "EMR C_tot vs reuse ratio and lifetime (EMIB, 7nm)",
		db, func() *core.System { return testcases.EMR(db, 7, false) })
}

// Fig13 evaluates the AR/VR accelerator design points: carbon-delay,
// carbon-power and carbon-area products over a 2-year lifetime
// (Fig. 13(a)-(c)).
func Fig13(db *tech.DB) (*report.Table, error) {
	t := report.New("fig13", "AR/VR accelerator carbon-delay/power/area products (2-year lifetime)",
		"config", "latency_ms", "power_w", "area_mm2", "cemb_kg", "ctot_kg",
		"carbon_delay", "carbon_power", "carbon_area")
	for _, cfg := range testcases.ARVRConfigs() {
		s, err := testcases.ARVR(db, cfg)
		if err != nil {
			return nil, err
		}
		rep, err := s.Evaluate(db)
		if err != nil {
			return nil, err
		}
		perf := testcases.ARVRPerformance(cfg)
		area := rep.Packaging.PackageAreaMM2 // 2D footprint of the stack
		ctot := rep.TotalKg()
		t.AddRow(cfg.Name(), report.F(perf.LatencyMS), report.F(perf.PowerW), report.F(area),
			report.F(rep.EmbodiedKg()), report.F(ctot),
			report.F(ctot*perf.LatencyMS), report.F(ctot*perf.PowerW), report.F(ctot*area))
	}
	return t, nil
}

// Fig14 reports operational power x C_tot and area x C_tot for the
// GA102 3-chiplet RDL system across node tuples, normalized to the
// monolith (Fig. 14(a)-(b)).
func Fig14(db *tech.DB) (*report.Table, error) {
	t := report.New("fig14", "GA102 carbon-power and carbon-area products per node tuple, normalized to monolith",
		"config", "power_kwh_yr", "area_mm2", "ctot_kg", "carbon_power_norm", "carbon_area_norm")
	var basePower, baseArea, baseTot float64
	for i, nt := range fig7Tuples {
		s := ga102ForTuple(db, nt)
		rep, err := s.Evaluate(db)
		if err != nil {
			return nil, err
		}
		power, err := s.Operation.AnnualEnergyKWhTotal(rep.RouterPowerW)
		if err != nil {
			return nil, err
		}
		area := rep.Chiplets[0].AreaMM2
		if rep.Packaging != nil {
			area = rep.Packaging.PackageAreaMM2
		}
		ctot := rep.TotalKg()
		if i == 0 {
			basePower, baseArea, baseTot = power, area, ctot
		}
		t.AddRow(nt.label(), report.F(power), report.F(area), report.F(ctot),
			report.F((ctot*power)/(baseTot*basePower)), report.F((ctot*area)/(baseTot*baseArea)))
	}
	return t, nil
}

// Fig15a prices the GA102 3-chiplet system per node tuple with the
// third-party-style dollar-cost model (Fig. 15(a)).
func Fig15a(db *tech.DB) (*report.Table, error) {
	t := report.New("fig15a", "GA102 dollar cost per node tuple",
		"config", "dies_usd", "assembly_usd", "nre_usd", "total_usd")
	cp := cost.DefaultParams()
	for _, nt := range fig7Tuples {
		s := ga102ForTuple(db, nt)
		b, err := s.CostUSD(db, cp)
		if err != nil {
			return nil, err
		}
		t.AddRow(nt.label(), report.F(b.DiesUSD), report.F(b.AssemblyUSD),
			report.F(b.NREUSD), report.F(b.TotalUSD()))
	}
	return t, nil
}

// Fig15b prices the GA102 as its digital block splits into N_c chiplets
// (Fig. 15(b)).
func Fig15b(db *tech.DB) (*report.Table, error) {
	t := report.New("fig15b", "GA102 dollar cost vs digital chiplet count (RDL)",
		"nc_digital", "dies_usd", "assembly_usd", "total_usd")
	cp := cost.DefaultParams()
	for _, nc := range []int{1, 2, 3, 4, 6, 8} {
		s, err := testcases.GA102Split(db, nc, pkgcarbon.RDLFanout)
		if err != nil {
			return nil, err
		}
		b, err := s.CostUSD(db, cp)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(nc), report.F(b.DiesUSD), report.F(b.AssemblyUSD), report.F(b.TotalUSD()))
	}
	return t, nil
}

package kernel

import (
	"math/rand"
	"testing"

	"ecochip/internal/cost"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/testcases"
)

// The MetricFold pair measures the tentpole layout change in isolation:
// the same per-point metric reduction off the array-of-structs Cells
// rows (FoldAoS, the old walk's memory shape) versus the flat
// struct-of-arrays columns (FoldCols). Both run the identical additions
// in the identical order — the SoA side only touches fewer, contiguous
// bytes — so the pair quantifies pure layout, not math. CI publishes
// both in the BENCH_<sha>.json artifact and gates the family against
// regressions.

// benchTable builds a wide table (8 chiplets × 5 nodes) so the fold has
// enough rows to show its memory behavior, plus a pseudo-random digit
// schedule touching the whole point space.
func benchTable(b *testing.B) (*Table, [][]int) {
	b.Helper()
	d := db()
	base, err := testcases.GA102DigitalOnly(d, 8, pkgcarbon.RDLFanout)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := BuildTable(base, d, []int{7, 10, 14, 22, 28}, cost.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	digits := make([][]int, 256)
	for k := range digits {
		row := make([]int, len(tbl.Cells))
		for i := range row {
			row[i] = rng.Intn(len(tbl.Nodes))
		}
		digits[k] = row
	}
	return tbl, digits
}

func BenchmarkMetricFoldAoS(b *testing.B) {
	tbl, digits := benchTable(b)
	var sink float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		mfgKg, desKg, nreKg, diesUSD, nreUSD := tbl.FoldAoS(digits[n%len(digits)])
		sink += mfgKg + desKg + nreKg + diesUSD + nreUSD
	}
	benchSink = sink
}

func BenchmarkMetricFoldSoA(b *testing.B) {
	tbl, digits := benchTable(b)
	var sink float64
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		mfgKg, desKg, nreKg, diesUSD, nreUSD := tbl.FoldCols(digits[n%len(digits)])
		sink += mfgKg + desKg + nreKg + diesUSD + nreUSD
	}
	benchSink = sink
}

// benchSink defeats dead-code elimination of the fold results.
var benchSink float64

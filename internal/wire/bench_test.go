package wire

import (
	"math/rand"
	"testing"

	"ecochip/internal/explore"
	"ecochip/internal/shard"
)

// benchResult is the steady-state frame shape: one 16-point block of a
// 3-chiplet sweep (the BenchmarkShardLoopback geometry).
func benchResult() shard.BlockResult {
	rng := rand.New(rand.NewSource(6))
	res := shard.BlockResult{Seq: 3, Block: 5}
	for i := 0; i < 16; i++ {
		res.Slots = append(res.Slots, 80+i)
		res.Points = append(res.Points, explore.Point{
			Nodes:          []int{7, 14, 10},
			EmbodiedKg:     rng.NormFloat64() * 10,
			TotalKg:        rng.NormFloat64() * 100,
			CostUSD:        rng.Float64() * 500,
			PackageAreaMM2: rng.Float64() * 800,
		})
	}
	return res
}

// BenchmarkWireEncodeBlock measures encoding one block-result frame
// payload into a reused buffer — the replica's per-block wire cost.
func BenchmarkWireEncodeBlock(b *testing.B) {
	res := benchResult()
	buf := make([]byte, 0, 4<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendBlockResult(buf[:0], &res)
	}
	if len(buf) == 0 {
		b.Fatal("empty encode")
	}
}

// BenchmarkWireDecodeBlock measures decoding one block-result frame
// into a reused destination — the coordinator's per-block wire cost.
func BenchmarkWireDecodeBlock(b *testing.B) {
	res := benchResult()
	buf := AppendBlockResult(nil, &res)
	var dst shard.BlockResult
	if err := DecodeBlockResult(buf, &dst); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeBlockResult(buf, &dst); err != nil {
			b.Fatal(err)
		}
	}
}

// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive benchmark runs as machine-readable
// artifacts (BENCH_<sha>.json) and the performance trajectory of the
// sweep hot path can be tracked per PR:
//
//	go test -run '^$' -bench 'NodeSweep' -benchmem -count=3 . | benchjson > BENCH_abc123.json
//
// Repeated -count runs of the same benchmark are kept as separate
// entries; downstream tooling picks its own aggregation.
//
// The compare subcommand is that downstream tooling for CI's regression
// gate: it diffs two converted artifacts and fails when any benchmark of
// the selected family regressed beyond the threshold:
//
//	benchjson compare -threshold 0.20 -family NodeSweep BENCH_base.json BENCH_head.json
//
// Repeated -count entries are aggregated by minimum ns/op (the standard
// noise floor for shared CI runners), and a family benchmark present in
// the base artifact but missing from the head fails the gate — a deleted
// benchmark must not read as a passed one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Runs is the iteration count the timing was averaged over.
	Runs int64 `json:"runs"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		code, err := runCompare(os.Args[2:], os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		os.Exit(code)
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare implements the compare subcommand: exit code 0 when no
// family benchmark regressed beyond the threshold, 1 when one did (or a
// family benchmark disappeared), and an error for usage/parse problems.
func runCompare(args []string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.20, "maximum tolerated relative ns/op regression (0.20 = +20%)")
	family := fs.String("family", "", "regexp selecting the gated benchmark family (default: all)")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("usage: benchjson compare [-threshold 0.20] [-family NodeSweep] base.json head.json")
	}
	var famRE *regexp.Regexp
	if *family != "" {
		re, err := regexp.Compile(*family)
		if err != nil {
			return 0, fmt.Errorf("bad -family: %w", err)
		}
		famRE = re
	}
	base, err := loadReport(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	head, err := loadReport(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	return compare(w, base, head, famRE, *threshold), nil
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// benchKey identifies one logical benchmark across artifacts.
type benchKey struct {
	Name  string
	Procs int
}

// minNs aggregates repeated -count entries to their minimum ns/op.
func minNs(rep *Report) map[benchKey]float64 {
	m := make(map[benchKey]float64)
	for _, b := range rep.Benchmarks {
		k := benchKey{b.Name, b.Procs}
		if v, ok := m[k]; !ok || b.NsPerOp < v {
			m[k] = b.NsPerOp
		}
	}
	return m
}

// compare prints a per-benchmark delta table and returns the gate's exit
// code. Benchmarks new in head pass (there is no baseline to regress
// from); family benchmarks missing from head fail the gate.
func compare(w io.Writer, base, head *Report, family *regexp.Regexp, threshold float64) int {
	baseNs, headNs := minNs(base), minNs(head)
	keys := make([]benchKey, 0, len(baseNs))
	for k := range baseNs {
		if family == nil || family.MatchString(k.Name) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Name != keys[j].Name {
			return keys[i].Name < keys[j].Name
		}
		return keys[i].Procs < keys[j].Procs
	})

	code := 0
	fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	for _, k := range keys {
		b := baseNs[k]
		h, ok := headNs[k]
		if !ok {
			fmt.Fprintf(w, "%-40s %14.0f %14s %8s  MISSING from head\n", k.Name, b, "-", "-")
			code = 1
			continue
		}
		delta := (h - b) / b
		verdict := ""
		if delta > threshold {
			verdict = fmt.Sprintf("  REGRESSION (> %+.0f%%)", threshold*100)
			code = 1
		}
		fmt.Fprintf(w, "%-40s %14.0f %14.0f %+7.1f%%%s\n", k.Name, b, h, delta*100, verdict)
	}
	if len(keys) == 0 {
		// An empty gate is a broken gate: a failed or mis-filtered base
		// run must not read as "no regressions".
		fmt.Fprintln(w, "no base benchmarks matched the family; failing the gate (a vacuous comparison proves nothing)")
		return 1
	}
	return code
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   125   987654 ns/op   12345 B/op   123 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// A bench line always carries "<runs> <value> ns/op" right after the
	// name; anything else (e.g. a -v log line starting with "Benchmark")
	// is skipped.
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	name, procs := splitProcs(fields[0])
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || fields[3] != "ns/op" {
		return Result{}, false
	}
	res := Result{Name: name, Procs: procs, Runs: runs, NsPerOp: ns}
	// Optional -benchmem pairs: "<v> B/op" and "<v> allocs/op".
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		}
	}
	return res, true
}

// splitProcs splits the -P GOMAXPROCS suffix off a benchmark name.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p < 1 {
		return name, 1
	}
	return name[:i], p
}

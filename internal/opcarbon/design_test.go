package opcarbon

import (
	"testing"
)

func TestDesignElectrical(t *testing.T) {
	d := DesignElectrical{
		Transistors: 10e9, NodeNm: 7, Vdd: 0.7, FreqHz: 1.5e9, Activity: 0.15,
	}
	e, err := d.Electrical()
	if err != nil {
		t.Fatal(err)
	}
	p := e.PowerW()
	// A 10B-transistor 7nm design at 1.5 GHz should land in the tens to
	// hundreds of watts.
	if p < 5 || p > 500 {
		t.Errorf("derived power %g W outside plausible range", p)
	}
	// Dynamic power must scale down on an older node at the same Vdd?
	// No: older nodes have larger C per transistor AND larger Vdd, so
	// the same netlist burns more.
	d65 := d
	d65.NodeNm = 65
	d65.Vdd = 1.2
	e65, err := d65.Electrical()
	if err != nil {
		t.Fatal(err)
	}
	if e65.PowerW() <= p {
		t.Errorf("65nm port (%g W) should burn more than 7nm (%g W)", e65.PowerW(), p)
	}
}

func TestDesignElectricalErrors(t *testing.T) {
	bad := []DesignElectrical{
		{Transistors: 0, NodeNm: 7, Vdd: 0.7, FreqHz: 1e9, Activity: 0.2},
		{Transistors: 1e9, NodeNm: 0, Vdd: 0.7, FreqHz: 1e9, Activity: 0.2},
		{Transistors: 1e9, NodeNm: 7, Vdd: 0.1, FreqHz: 1e9, Activity: 0.2}, // Vdd out of range
		{Transistors: 1e9, NodeNm: 7, Vdd: 0.7, FreqHz: 1e9, Activity: 2},
	}
	for i, d := range bad {
		if _, err := d.Electrical(); err == nil {
			t.Errorf("design %d should fail", i)
		}
	}
}

func TestDesignElectricalIntoSpec(t *testing.T) {
	d := DesignElectrical{Transistors: 1e9, NodeNm: 14, Vdd: 0.8, FreqHz: 1e9, Activity: 0.2}
	e, err := d.Electrical()
	if err != nil {
		t.Fatal(err)
	}
	s := Spec{DutyCycle: 0.1, LifetimeYears: 3, CarbonIntensity: 0.3, Elec: &e}
	kg, err := s.LifetimeKg(0)
	if err != nil {
		t.Fatal(err)
	}
	if kg <= 0 {
		t.Error("design-derived spec should produce positive carbon")
	}
}

package floorplan

import (
	"fmt"
	"math"
	"sort"
)

// This file adds classic slicing-floorplan shape curves: when chiplet
// aspect ratios are flexible (soft macros before die-size freeze), each
// subtree carries a Pareto set of candidate (width, height) realizations
// and the parent picks combinations that minimize its own bounding box.
// PlanFlexible is strictly better (never worse) than Plan's fixed-shape
// layout in package area, at the cost of more work per node. It is an
// opt-in capability; the paper's experiments use the fixed-shape Plan.

// DefaultAspects are the candidate width/height ratios a flexible block
// may take.
var DefaultAspects = []float64{0.5, 2.0 / 3.0, 1, 1.5, 2}

// maxShapesPerNode caps the Pareto set carried per subtree to bound the
// combination growth.
const maxShapesPerNode = 10

type shape struct {
	w, h       float64
	placements []Placement
}

// PlanFlexible floorplans the blocks allowing each block without an
// explicit AspectRatio to take any of the candidate aspects. Blocks with
// AspectRatio > 0 keep it fixed. aspects nil selects DefaultAspects.
func PlanFlexible(blocks []Block, spacingMM float64, aspects []float64) (*Result, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks to place")
	}
	if spacingMM == 0 {
		spacingMM = DefaultSpacingMM
	}
	if spacingMM < 0.1 || spacingMM > 1 {
		return nil, fmt.Errorf("floorplan: spacing %g mm outside Table I range [0.1, 1]", spacingMM)
	}
	if aspects == nil {
		aspects = DefaultAspects
	}
	for _, ar := range aspects {
		if ar <= 0 {
			return nil, fmt.Errorf("floorplan: aspect ratio %g must be positive", ar)
		}
	}
	total := 0.0
	for _, b := range blocks {
		if b.AreaMM2 <= 0 {
			return nil, fmt.Errorf("floorplan: block %q has non-positive area %g", b.Name, b.AreaMM2)
		}
		total += b.AreaMM2
	}

	sorted := make([]Block, len(blocks))
	copy(sorted, blocks)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AreaMM2 > sorted[j].AreaMM2 })
	root := buildTree(sorted)

	shapes := layoutShapes(root, spacingMM, aspects)
	best := shapes[0]
	for _, s := range shapes[1:] {
		if s.w*s.h < best.w*best.h {
			best = s
		}
	}
	res := &Result{
		WidthMM:        best.w,
		HeightMM:       best.h,
		Placements:     best.placements,
		ChipletAreaMM2: total,
	}
	res.Adjacencies = findAdjacencies(best.placements, spacingMM)
	return res, nil
}

func layoutShapes(n *node, spacing float64, aspects []float64) []shape {
	if n.block != nil {
		b := n.block
		if b.AspectRatio > 0 {
			w, h := b.dims()
			return []shape{{w: w, h: h, placements: []Placement{{Name: b.Name, Width: w, Height: h}}}}
		}
		var out []shape
		for _, ar := range aspects {
			h := math.Sqrt(b.AreaMM2 / ar)
			w := ar * h
			out = append(out, shape{w: w, h: h, placements: []Placement{{Name: b.Name, Width: w, Height: h}}})
		}
		return prune(out)
	}
	left := layoutShapes(n.left, spacing, aspects)
	right := layoutShapes(n.right, spacing, aspects)
	var out []shape
	for _, l := range left {
		for _, r := range right {
			out = append(out, combineH(l, r, spacing), combineV(l, r, spacing))
		}
	}
	return prune(out)
}

func combineH(l, r shape, spacing float64) shape {
	out := shape{w: l.w + spacing + r.w, h: math.Max(l.h, r.h)}
	out.placements = append(out.placements, l.placements...)
	for _, p := range r.placements {
		p.X += l.w + spacing
		out.placements = append(out.placements, p)
	}
	return out
}

func combineV(l, r shape, spacing float64) shape {
	out := shape{w: math.Max(l.w, r.w), h: l.h + spacing + r.h}
	out.placements = append(out.placements, l.placements...)
	for _, p := range r.placements {
		p.Y += l.h + spacing
		out.placements = append(out.placements, p)
	}
	return out
}

// prune keeps the Pareto-minimal (w, h) shapes (no other shape is
// narrower and shorter), capped at maxShapesPerNode by area.
func prune(shapes []shape) []shape {
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].w != shapes[j].w {
			return shapes[i].w < shapes[j].w
		}
		return shapes[i].h < shapes[j].h
	})
	var out []shape
	bestH := math.Inf(1)
	for _, s := range shapes {
		if s.h < bestH-1e-12 {
			out = append(out, s)
			bestH = s.h
		}
	}
	if len(out) > maxShapesPerNode {
		sort.Slice(out, func(i, j int) bool { return out[i].w*out[i].h < out[j].w*out[j].h })
		out = out[:maxShapesPerNode]
		sort.Slice(out, func(i, j int) bool { return out[i].w < out[j].w })
	}
	return out
}

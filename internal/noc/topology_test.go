package noc

import (
	"math"
	"testing"
	"testing/quick"

	"ecochip/internal/tech"
)

func mesh(t *testing.T, n int) *Topology {
	t.Helper()
	m, err := NewMesh(n, 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshErrors(t *testing.T) {
	if _, err := NewMesh(0, 1, DefaultConfig()); err == nil {
		t.Error("zero endpoints should fail")
	}
	if _, err := NewMesh(4, 0, DefaultConfig()); err == nil {
		t.Error("zero link length should fail")
	}
	bad := DefaultConfig()
	bad.Ports = 0
	if _, err := NewMesh(4, 1, bad); err == nil {
		t.Error("bad config should fail")
	}
}

func TestMeshDimensions(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {2, 1}, 3: {2, 2}, 4: {2, 2},
		5: {3, 2}, 8: {3, 3}, 9: {3, 3}, 16: {4, 4},
	}
	for n, want := range cases {
		m := mesh(t, n)
		if m.Cols != want[0] || m.Rows != want[1] {
			t.Errorf("NewMesh(%d): %dx%d, want %dx%d", n, m.Cols, m.Rows, want[0], want[1])
		}
		if m.Cols*m.Rows < n {
			t.Errorf("NewMesh(%d): grid %dx%d too small", n, m.Cols, m.Rows)
		}
	}
}

func TestLinksHandCount(t *testing.T) {
	// 2x2 full mesh: 4 links. 3 endpoints in a 2x2 grid: nodes 0,1,2:
	// links 0-1 (east), 0-2 (north) = 2.
	if got := mesh(t, 4).Links(); got != 4 {
		t.Errorf("Links(4) = %d, want 4", got)
	}
	if got := mesh(t, 3).Links(); got != 2 {
		t.Errorf("Links(3) = %d, want 2", got)
	}
	if got := mesh(t, 1).Links(); got != 0 {
		t.Errorf("Links(1) = %d, want 0", got)
	}
	// 3x3 full mesh: 12 links.
	if got := mesh(t, 9).Links(); got != 12 {
		t.Errorf("Links(9) = %d, want 12", got)
	}
}

func TestAverageHops(t *testing.T) {
	// 2x1 mesh: the only pair is 1 hop apart.
	if got := mesh(t, 2).AverageHops(); got != 1 {
		t.Errorf("AverageHops(2) = %g, want 1", got)
	}
	// Single router: no traffic.
	if got := mesh(t, 1).AverageHops(); got != 0 {
		t.Errorf("AverageHops(1) = %g, want 0", got)
	}
	// 2x2 mesh: pairs at distance 1 (8 ordered) and 2 (4 ordered):
	// (8*1 + 4*2)/12 = 4/3.
	if got := mesh(t, 4).AverageHops(); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("AverageHops(4) = %g, want 4/3", got)
	}
}

// Property: average hops grows with mesh size.
func TestAverageHopsGrows(t *testing.T) {
	prev := 0.0
	for _, n := range []int{2, 4, 9, 16, 25} {
		h := mesh(t, n).AverageHops()
		if h <= prev {
			t.Errorf("AverageHops(%d) = %g should exceed %g", n, h, prev)
		}
		prev = h
	}
}

func TestTotalRouterArea(t *testing.T) {
	n7 := tech.Default().MustGet(7)
	m := mesh(t, 4)
	total, err := m.TotalRouterAreaMM2(n7)
	if err != nil {
		t.Fatal(err)
	}
	single, _ := AreaMM2(DefaultConfig(), n7)
	if math.Abs(total-4*single) > 1e-12 {
		t.Errorf("TotalRouterAreaMM2 = %g, want %g", total, 4*single)
	}
}

func TestTotalPowerIncludesLinks(t *testing.T) {
	n7 := tech.Default().MustGet(7)
	pp := DefaultPowerParams()
	m := mesh(t, 4)
	total, err := m.TotalPowerW(n7, pp)
	if err != nil {
		t.Fatal(err)
	}
	router, _ := PowerW(DefaultConfig(), n7, pp)
	if total <= 4*router {
		t.Errorf("total power %g should exceed router-only %g (links)", total, 4*router)
	}
	// Longer links burn more power.
	far, err := NewMesh(4, 10.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	farPower, err := far.TotalPowerW(n7, pp)
	if err != nil {
		t.Fatal(err)
	}
	if farPower <= total {
		t.Errorf("10mm links (%g W) should out-burn 1mm links (%g W)", farPower, total)
	}
}

func TestEnergyPerFlit(t *testing.T) {
	n7 := tech.Default().MustGet(7)
	pp := DefaultPowerParams()
	small := mesh(t, 4)
	large := mesh(t, 16)
	es, err := small.EnergyPerFlitJ(n7, pp)
	if err != nil {
		t.Fatal(err)
	}
	el, err := large.EnergyPerFlitJ(n7, pp)
	if err != nil {
		t.Fatal(err)
	}
	if es <= 0 || el <= es {
		t.Errorf("energy per flit should be positive and grow with mesh size: %g vs %g", es, el)
	}
	// Magnitude: a 512-bit flit hop should cost picojoules-to-nanojoules.
	if es < 1e-12 || es > 1e-8 {
		t.Errorf("energy per flit %g J outside plausible range", es)
	}
	// Single-node network still moves flits locally (one hop minimum).
	solo := mesh(t, 1)
	e1, err := solo.EnergyPerFlitJ(n7, pp)
	if err != nil {
		t.Fatal(err)
	}
	if e1 <= 0 {
		t.Error("single-router energy per flit should be positive")
	}
}

func TestBreakdownSumsToTransistors(t *testing.T) {
	f := func(fw, p, vc, d uint8) bool {
		c := Config{
			FlitWidthBits:    int(fw%64)*8 + 64,
			Ports:            int(p%14) + 2,
			VirtualChannels:  int(vc%15) + 1,
			BufferDepthFlits: int(d%63) + 1,
		}
		b, err := Breakdown(c)
		if err != nil {
			return false
		}
		tr, err := Transistors(c)
		if err != nil {
			return false
		}
		return math.Abs(b.Total()-tr) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakdownErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.FlitWidthBits = 0
	if _, err := Breakdown(bad); err == nil {
		t.Error("invalid config should fail")
	}
}

// Buffers dominate a deep-buffered router; crossbar dominates a shallow
// wide-port one. The breakdown should reflect microarchitectural intent.
func TestBreakdownProportions(t *testing.T) {
	deep := Config{FlitWidthBits: 512, Ports: 5, VirtualChannels: 8, BufferDepthFlits: 16}
	b, err := Breakdown(deep)
	if err != nil {
		t.Fatal(err)
	}
	if b.Buffers <= b.Crossbar {
		t.Error("deep-buffered router should be buffer-dominated")
	}
	shallow := Config{FlitWidthBits: 512, Ports: 8, VirtualChannels: 1, BufferDepthFlits: 1}
	b2, err := Breakdown(shallow)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Crossbar <= b2.Buffers {
		t.Error("shallow wide router should be crossbar-dominated")
	}
}

func TestTopologyErrorPropagation(t *testing.T) {
	n7 := tech.Default().MustGet(7)
	m := mesh(t, 4)
	m.Config.Ports = 0
	if _, err := m.TotalRouterAreaMM2(n7); err == nil {
		t.Error("corrupted config should fail area")
	}
	if _, err := m.TotalPowerW(n7, DefaultPowerParams()); err == nil {
		t.Error("corrupted config should fail power")
	}
	if _, err := m.EnergyPerFlitJ(n7, DefaultPowerParams()); err == nil {
		t.Error("corrupted config should fail energy")
	}
}

package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"ecochip/internal/shard"
	"ecochip/internal/shard/netx"
	"ecochip/internal/tech"
)

// startReplica runs an in-process netx replica server on an ephemeral
// port, returning its address and a stop func that drains it.
func startReplica(t *testing.T) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- netx.ListenAndServe(ctx, "127.0.0.1:0", shard.NewCatalog(), tech.Default(),
			netx.Options{DrainTimeout: 5 * time.Second}, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("replica server: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("replica server never came up")
	}
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("replica server: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("replica server did not drain")
		}
	}
	return addr, stop
}

// The TCP-sharded sweep path (-shard-connect against in-process
// replica daemons, pipelined leases) must print the exact table of the
// in-process engine path, and -progress must surface both the shard
// protocol counters and the wire counters.
func TestRunSweepConnectedMatchesEngine(t *testing.T) {
	dir := exampleDir(t)
	var plain strings.Builder
	if err := run(dir, cfgFor("sweep"), &plain, nil); err != nil {
		t.Fatal(err)
	}

	addr1, stop1 := startReplica(t)
	defer stop1()
	addr2, stop2 := startReplica(t)
	defer stop2()

	cfg := cfgFor("sweep")
	cfg.shardConnect = addr1 + "," + addr2
	cfg.shardPipeline = 2
	cfg.progress = true
	var out, stats strings.Builder
	if err := run(dir, cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	if out.String() != plain.String() {
		t.Errorf("connected and engine sweeps diverge:\n%s\nvs\n%s", out.String(), plain.String())
	}
	if !strings.Contains(stats.String(), "shard:") || !strings.Contains(stats.String(), "leases granted") {
		t.Errorf("connected progress run missing shard statistics:\n%s", stats.String())
	}
	if !strings.Contains(stats.String(), "wire:") || !strings.Contains(stats.String(), "dials") {
		t.Errorf("connected progress run missing wire statistics:\n%s", stats.String())
	}
}

// The flag conflicts around -shard-connect must be rejected up front.
func TestRunSweepConnectedFlagConflicts(t *testing.T) {
	dir := exampleDir(t)

	cfg := cfgFor("sweep")
	cfg.shardConnect = "127.0.0.1:1"
	cfg.uncompiled = true
	if err := run(dir, cfg, nil, nil); err == nil || !strings.Contains(err.Error(), "-shard-connect") {
		t.Errorf("-shard-connect -uncompiled: err = %v, want the flag conflict", err)
	}

	cfg = cfgFor("sweep")
	cfg.shardConnect = "127.0.0.1:1"
	cfg.shardReplicas = 2
	if err := run(dir, cfg, nil, nil); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("-shard-connect -shard-replicas: err = %v, want the flag conflict", err)
	}

	cfg = cfgFor("sweep")
	cfg.shardConnect = "127.0.0.1:1"
	cfg.shardFaults = "dup=0.5"
	if err := run(dir, cfg, nil, nil); err == nil || !strings.Contains(err.Error(), "-shard-faults") {
		t.Errorf("-shard-connect -shard-faults: err = %v, want the flag conflict", err)
	}

	cfg = cfgFor("sweep")
	cfg.shardConnect = " , "
	if err := run(dir, cfg, nil, nil); err == nil || !strings.Contains(err.Error(), "no replica addresses") {
		t.Errorf("empty -shard-connect: err = %v, want the empty-list error", err)
	}
}

// A dead replica address must not break the sweep: the coordinator
// falls back to the local walk and the table stays identical.
func TestRunSweepConnectedDeadReplicaFallsBack(t *testing.T) {
	dir := exampleDir(t)
	var plain strings.Builder
	if err := run(dir, cfgFor("sweep"), &plain, nil); err != nil {
		t.Fatal(err)
	}
	cfg := cfgFor("sweep")
	cfg.shardConnect = "127.0.0.1:1" // reserved port: connection refused
	var out, stats strings.Builder
	if err := run(dir, cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	if out.String() != plain.String() {
		t.Errorf("fallback sweep diverges from engine path:\n%s\nvs\n%s", out.String(), plain.String())
	}
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ecochip/internal/explore"
	"ecochip/internal/shard"
)

// Handler exposes a Server over HTTP/JSON:
//
//	POST /v1/sweep        SweepRequest        -> SweepResponse
//	POST /v1/whatif       WhatIfRequest       -> WhatIfResponse
//	POST /v1/disaggregate DisaggregateRequest -> DisaggregateResponse
//	POST /v1/sweep/stream SweepRequest        -> NDJSON StreamLine per
//	                      front snapshot, then one terminal line with
//	                      Result set
//	GET  /v1/stats                            -> Stats
//
// Request validation failures are 400s with an {"error": ...} body;
// everything downstream of a valid request is a 500. A request shed by
// the per-family admission gates is a 429 with a Retry-After header
// (whole seconds). Handlers are
// concurrency-safe (the server's caches single-flight compiles), so the
// default one-goroutine-per-connection http.Server drive is the
// intended concurrent serving mode.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Sweep(r.Context(), &req)
		reply(w, resp, err)
	})
	mux.HandleFunc("POST /v1/whatif", func(w http.ResponseWriter, r *http.Request) {
		var req WhatIfRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.WhatIf(r.Context(), &req)
		reply(w, resp, err)
	})
	mux.HandleFunc("POST /v1/disaggregate", func(w http.ResponseWriter, r *http.Request) {
		var req DisaggregateRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := s.Disaggregate(r.Context(), &req)
		reply(w, resp, err)
	})
	mux.HandleFunc("POST /v1/sweep/stream", func(w http.ResponseWriter, r *http.Request) {
		var req SweepRequest
		if !decode(w, r, &req) {
			return
		}
		streamFront(w, r, s, &req)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	return mux
}

// StreamLine is one NDJSON line of a streamed front: snapshots carry
// Snapshot, the terminal line carries Result (exactly one of the two is
// set; an Error line aborts the stream).
type StreamLine struct {
	Snapshot *Snapshot      `json:"snapshot,omitempty"`
	Result   *SweepResponse `json:"result,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// Snapshot is the wire shape of a shard.FrontSnapshot.
type Snapshot struct {
	Front       []explore.Point `json:"front"`
	BlocksDone  int             `json:"blocksDone"`
	TotalBlocks int             `json:"totalBlocks"`
}

func streamFront(w http.ResponseWriter, r *http.Request, s *Server, req *SweepRequest) {
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	var wrote bool
	emit := func(line StreamLine) error {
		wrote = true
		if err := enc.Encode(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	resp, err := s.StreamFront(r.Context(), req, func(snap shard.FrontSnapshot) error {
		return emit(StreamLine{Snapshot: &Snapshot{
			Front:       snap.Front,
			BlocksDone:  snap.BlocksDone,
			TotalBlocks: snap.TotalBlocks,
		}})
	})
	if err != nil {
		if !wrote {
			// Nothing streamed yet: fail the request properly.
			writeError(w, err)
			return
		}
		emit(StreamLine{Error: err.Error()})
		return
	}
	emit(StreamLine{Result: resp})
}

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

func reply[T any](w http.ResponseWriter, resp *T, err error) {
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeError maps a server error to its HTTP shape: a shed request
// becomes 429 with a Retry-After hint, everything else stays the 400
// contract.
func writeError(w http.ResponseWriter, err error) {
	var oe *OverloadError
	if errors.As(err, &oe) {
		secs := int(oe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

package opcarbon

import (
	"math"
	"testing"
)

func validProfile() Profile {
	return Profile{Phases: []Phase{
		{Name: "active", ShareOfYear: 0.10, PowerW: 20},
		{Name: "idle", ShareOfYear: 0.30, PowerW: 2},
		{Name: "sleep", ShareOfYear: 0.60, PowerW: 0.1},
	}}
}

func TestProfileValidate(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{},
		{Phases: []Phase{{Name: "", ShareOfYear: 0.5, PowerW: 1}}},
		{Phases: []Phase{{Name: "a", ShareOfYear: 0, PowerW: 1}}},
		{Phases: []Phase{{Name: "a", ShareOfYear: 0.5, PowerW: -1}}},
		{Phases: []Phase{{Name: "a", ShareOfYear: 0.7, PowerW: 1}, {Name: "b", ShareOfYear: 0.7, PowerW: 1}}},
		{Phases: []Phase{{Name: "a", ShareOfYear: 0.3, PowerW: 1}, {Name: "a", ShareOfYear: 0.3, PowerW: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should fail validation", i)
		}
	}
}

func TestProfileAnnualKWh(t *testing.T) {
	p := validProfile()
	want := (20*0.10 + 2*0.30 + 0.1*0.60) * HoursPerYear / 1000
	if got := p.AnnualKWh(); math.Abs(got-want) > 1e-9 {
		t.Errorf("AnnualKWh = %g, want %g", got, want)
	}
}

func TestActiveShare(t *testing.T) {
	if got := validProfile().ActiveShare(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ActiveShare = %g, want 1.0", got)
	}
}

func TestSpecFromProfile(t *testing.T) {
	spec, err := SpecFromProfile(validProfile(), 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	kg, err := spec.LifetimeKg(0)
	if err != nil {
		t.Fatal(err)
	}
	want := validProfile().AnnualKWh() * 0.3 * 3
	if math.Abs(kg-want) > 1e-9 {
		t.Errorf("LifetimeKg = %g, want %g", kg, want)
	}
	// Router overheads scale by the covered share.
	withNoC, err := spec.AnnualEnergyKWhTotal(5)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := 5 * spec.DutyCycle * HoursPerYear / 1000
	if math.Abs(withNoC-spec.AnnualEnergyKWh-wantDelta) > 1e-9 {
		t.Errorf("overhead delta = %g, want %g", withNoC-spec.AnnualEnergyKWh, wantDelta)
	}
}

func TestSpecFromProfileErrors(t *testing.T) {
	if _, err := SpecFromProfile(Profile{}, 2, 0.3); err != nil {
		// expected: invalid profile
	} else {
		t.Error("empty profile should fail")
	}
	if _, err := SpecFromProfile(validProfile(), 0, 0.3); err == nil {
		t.Error("zero lifetime should fail")
	}
	if _, err := SpecFromProfile(validProfile(), 2, 9); err == nil {
		t.Error("out-of-range intensity should fail")
	}
}

// An always-idle device burns less than an always-active one with the
// same hardware.
func TestProfileOrdering(t *testing.T) {
	mostlyIdle := Profile{Phases: []Phase{
		{Name: "active", ShareOfYear: 0.05, PowerW: 20},
		{Name: "idle", ShareOfYear: 0.95, PowerW: 1},
	}}
	mostlyActive := Profile{Phases: []Phase{
		{Name: "active", ShareOfYear: 0.95, PowerW: 20},
		{Name: "idle", ShareOfYear: 0.05, PowerW: 1},
	}}
	if mostlyIdle.AnnualKWh() >= mostlyActive.AnnualKWh() {
		t.Error("mostly-idle profile should burn less energy")
	}
}

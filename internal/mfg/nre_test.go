package mfg

import (
	"math"
	"testing"

	"ecochip/internal/tech"
)

func TestMaskCountTrend(t *testing.T) {
	db := tech.Default()
	sizes := db.Sizes()
	for i := 1; i < len(sizes); i++ {
		newer := MaskCount(db.MustGet(sizes[i-1]))
		older := MaskCount(db.MustGet(sizes[i]))
		if older > newer {
			t.Errorf("mask count at %dnm (%d) should not exceed %dnm (%d)",
				sizes[i], older, sizes[i-1], newer)
		}
	}
	if MaskCount(db.MustGet(7)) != 80 || MaskCount(db.MustGet(65)) != 30 {
		t.Error("mask count anchors mismatch")
	}
}

func TestMaskSetKgKnownValue(t *testing.T) {
	// 80 masks * (500 kWh * 0.7 kg/kWh + 20 kg) = 80 * 370 = 29600 kg.
	got, err := MaskSetKg(tech.Default().MustGet(7), DefaultNREParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-29600) > 1e-9 {
		t.Errorf("MaskSetKg(7nm) = %g, want 29600", got)
	}
}

func TestAmortizedNRE(t *testing.T) {
	n := tech.Default().MustGet(7)
	per, err := AmortizedNREKg(n, 100_000, DefaultNREParams())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(per-0.296) > 1e-9 {
		t.Errorf("AmortizedNREKg = %g, want 0.296", per)
	}
	if _, err := AmortizedNREKg(n, 0, DefaultNREParams()); err == nil {
		t.Error("zero parts should fail")
	}
}

func TestNREParamsValidate(t *testing.T) {
	bad := []NREParams{
		{EnergyPerMaskKWh: 0, MaterialKgPerMask: 20, CarbonIntensity: 0.7},
		{EnergyPerMaskKWh: 500, MaterialKgPerMask: -1, CarbonIntensity: 0.7},
		{EnergyPerMaskKWh: 500, MaterialKgPerMask: 20, CarbonIntensity: 5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %d should fail", i)
		}
		if _, err := MaskSetKg(tech.Default().MustGet(7), p); err == nil {
			t.Errorf("MaskSetKg with params %d should fail", i)
		}
	}
}

// Older nodes have cheaper mask sets — part of the reuse/mix-and-match
// advantage.
func TestOlderNodesCheaperMasks(t *testing.T) {
	db := tech.Default()
	m7, _ := MaskSetKg(db.MustGet(7), DefaultNREParams())
	m65, _ := MaskSetKg(db.MustGet(65), DefaultNREParams())
	if m65 >= m7 {
		t.Errorf("65nm mask set (%g) should cost less carbon than 7nm (%g)", m65, m7)
	}
}

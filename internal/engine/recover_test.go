package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ecochip/internal/core"
)

// A panicking point task must surface as a *PanicError naming the point,
// not crash the process, at every worker count (serial inline path and
// pooled goroutines alike).
func TestRunRecoversTaskPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), 16, func(_ context.Context, i int, _ *core.Hooks) (int, error) {
			if i == 7 {
				panic("poisoned point")
			}
			return i, nil
		}, WithWorkers(workers))
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Value != "poisoned point" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 || !strings.Contains(pe.Error(), "poisoned point") {
			t.Errorf("workers=%d: error missing stack/value: %s", workers, pe.Error())
		}
	}
}

// A panicking block fn must surface as a *PanicError naming the block
// range — the shape a shard replica walking a leased range depends on.
func TestRunBlocksRecoversBlockPanic(t *testing.T) {
	for _, workers := range []int{1, 3} {
		err := RunBlocks(context.Background(), 30, func(_ context.Context, lo, hi int, tick func()) error {
			for k := lo; k < hi; k++ {
				if k == 13 {
					panic("poisoned block")
				}
				tick()
			}
			return nil
		}, WithWorkers(workers))
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Lo > 13 || pe.Hi <= 13 {
			t.Errorf("workers=%d: block range [%d,%d) does not contain the panicking point", workers, pe.Lo, pe.Hi)
		}
		if !strings.Contains(pe.Error(), "poisoned block") {
			t.Errorf("workers=%d: error missing value: %s", workers, pe.Error())
		}
	}
}

// A panicking scratch constructor poisons the run like a scratch error,
// not the process.
func TestRunScratchRecoversConstructorPanic(t *testing.T) {
	_, err := RunScratch(context.Background(), 4,
		func(*core.Hooks) (int, error) { panic("bad scratch") },
		func(_ context.Context, i int, _ int) (int, error) { return i, nil },
		WithWorkers(2))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
}

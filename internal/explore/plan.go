package explore

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/engine"
	"ecochip/internal/kernel"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// This file implements compiled sweep plans: the "compile once, stream
// cheap per-point deltas" evaluation of a full-factorial node sweep.
//
// The heavy lifting lives in internal/kernel: kernel.BuildTable
// precomputes the dense nc × len(nodes) table of per-(chiplet, node)
// invariants — area, manufacturing result, design carbon, NRE share, die
// dollar cost — so the hot loop replaces per-point cloning,
// re-validation, mutex-guarded memo lookups and sub-model calls with
// array indexing, and kernel.Scratch carries each worker's reusable
// arena (packaging estimator, chiplet descriptors, operational-term
// memo). This file owns the sweep-specific parts: combinations are
// enumerated in mixed-radix reflected Gray-code order, so successive
// points differ in exactly one chiplet — each step refreshes only the
// changed chiplet's scratch state — and the result is addressed by the
// point's mixed-radix output slot so the point order is identical to the
// historical recursive walk.
//
// One deliberate deviation from a textbook incremental evaluator: the
// per-point metric totals are NOT maintained as running sums patched by
// "new − old" deltas. Floating-point addition is not associative, so a
// patched running sum drifts from the in-order sum the uncompiled path
// computes, and the contract here is bit-identical output (guarded by
// the randomized equivalence test). Instead each point re-reduces its
// nc table cells in chiplet order — an O(nc) handful of adds that is
// noise next to the per-point floorplan — which preserves exact float
// parity while the Gray walk keeps every other per-point cost flat.

// ErrNoFastPath reports that a system cannot be compiled into a dense
// sweep plan and callers should fall back to the per-point reference
// path. Today this only covers multi-chiplet monolithic bases, whose
// sweeps are degenerate (every mixed-node combination fails validation).
var ErrNoFastPath = errors.New("explore: system has no compiled fast path")

// SweepStats counts the work a compiled plan performed; the CLI surfaces
// it under -progress next to the engine cache statistics.
type SweepStats struct {
	// Points is the number of design points evaluated from the table.
	Points uint64
	// BlockInits is the number of Gray walks started (one per worker
	// block): points whose full scratch state was built from scratch.
	BlockInits uint64
	// GraySteps is the number of incremental single-chiplet steps; all
	// other scratch state was reused from the previous point.
	GraySteps uint64
	// TableCells is the size of the precomputed die table.
	TableCells int
}

// CompiledPlan is a compiled node sweep: the dense per-(chiplet, node)
// invariant table plus everything point evaluation needs. Compile it
// once, run it any number of times; a plan is immutable after Compile
// and safe for concurrent use.
type CompiledPlan struct {
	tbl *kernel.Table

	nodes []int
	nc    int // chiplets in the base system
	r     int // candidate nodes (the mixed radix)

	combos int
	weight []int // weight[i] = r^(nc-1-i): chiplet 0 is the most significant digit

	// monolith selects the single-die evaluation path (single-chiplet or
	// monolithic bases): no packaging, no communication fabric.
	monolith bool

	points, blockInits, graySteps atomic.Uint64
}

// Compile builds the sweep plan for evaluating base under every
// combination of the candidate nodes. It performs every node-independent
// computation and every per-(chiplet, node) sub-model call exactly once
// (see kernel.BuildTable); errors any point of the sweep would hit
// (invalid base description, unsupported candidate node, sub-model
// domain violations, missing cost table entries) surface here instead of
// mid-sweep.
func Compile(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (*CompiledPlan, error) {
	// BuildTable owns the shared preconditions (non-empty node list,
	// system validation, node membership); Compile adds only the
	// sweep-specific ones.
	nc := len(base.Chiplets)
	combos, err := comboCount(len(nodes), nc)
	if err != nil {
		return nil, err
	}
	if base.Monolithic && nc > 1 {
		return nil, ErrNoFastPath
	}
	tbl, err := kernel.BuildTable(base, db, nodes, cp)
	if err != nil {
		return nil, err
	}

	p := &CompiledPlan{
		tbl:      tbl,
		nodes:    tbl.Nodes,
		nc:       nc,
		r:        len(nodes),
		combos:   combos,
		monolith: tbl.Monolith,
	}
	p.weight = make([]int, nc)
	w := 1
	for i := nc - 1; i >= 0; i-- {
		p.weight[i] = w
		w *= p.r
	}
	return p, nil
}

// Combos returns the number of design points the plan enumerates.
func (p *CompiledPlan) Combos() int { return p.combos }

// Nodes returns the candidate node list the plan was compiled for.
func (p *CompiledPlan) Nodes() []int { return append([]int(nil), p.nodes...) }

// Stats snapshots the plan's work counters (cumulative across runs).
func (p *CompiledPlan) Stats() SweepStats {
	return SweepStats{
		Points:     p.points.Load(),
		BlockInits: p.blockInits.Load(),
		GraySteps:  p.graySteps.Load(),
		TableCells: len(p.tbl.Cells) * p.r,
	}
}

// Run evaluates every point of the plan with default engine options.
func (p *CompiledPlan) Run() ([]Point, error) {
	return p.RunCtx(context.Background())
}

// RunCtx evaluates every point of the plan: workers walk contiguous
// Gray-code blocks of the combination sequence and write each point into
// its mixed-radix slot, so the output order (and every float in it) is
// identical to NodeSweepReference at any worker count.
func (p *CompiledPlan) RunCtx(ctx context.Context, opts ...engine.Option) ([]Point, error) {
	results := make([]Point, p.combos)
	err := engine.RunBlocks(ctx, p.combos, func(ctx context.Context, lo, hi int, tick func()) error {
		return p.walkBlock(ctx, lo, hi, func(idx int, pt *Point) error {
			cp := *pt
			cp.Nodes = append([]int(nil), pt.Nodes...)
			results[idx] = cp
			return nil
		}, tick)
	}, opts...)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Walk evaluates every point of the plan and streams each to visit
// without materializing a result slice — the batch shape of
// million-point serving scenarios, where the caller folds points into a
// running reduction (a Pareto front, a histogram, a wire encoder) as
// they are produced. visit is called concurrently from the worker
// goroutines (one walker per contiguous Gray-code block); within a block
// calls arrive in walk order, and idx is the point's mixed-radix output
// slot — its index in the RunCtx result slice. The *Point (including its
// Nodes slice) is owned by the walker and reused after visit returns:
// copy what must be retained. A visit error cancels the walk.
func (p *CompiledPlan) Walk(ctx context.Context, visit func(idx int, pt *Point) error, opts ...engine.Option) error {
	return engine.RunBlocks(ctx, p.combos, func(ctx context.Context, lo, hi int, tick func()) error {
		return p.walkBlock(ctx, lo, hi, visit, tick)
	}, opts...)
}

// ParetoFrontCtx runs the plan and reduces the sweep to its Pareto front
// under the given objectives, returning the front and the total number
// of evaluated points. The reduction is folded into the sweep walk: each
// worker block maintains its own skyline front over the points it
// streams (storing objective values and output slots, not points), the
// block fronts are merged at the barrier, and only then are the
// surviving points materialized — front-only callers never allocate the
// full point slice. The returned front is identical to
// ParetoFront(RunCtx(...), objectives...).
func (p *CompiledPlan) ParetoFrontCtx(ctx context.Context, objectives []Metric, opts ...engine.Option) ([]Point, int, error) {
	if len(objectives) == 0 {
		panic("explore: ParetoFront needs at least one objective")
	}
	var mu sync.Mutex
	var merged []frontEntry
	err := engine.RunBlocks(ctx, p.combos, func(ctx context.Context, lo, hi int, tick func()) error {
		local := newBlockFront(len(objectives))
		err := p.walkBlock(ctx, lo, hi, func(idx int, pt *Point) error {
			local.add(idx, pt, objectives)
			return nil
		}, tick)
		if err != nil {
			return err
		}
		mu.Lock()
		merged = append(merged, local.entries...)
		mu.Unlock()
		return nil
	}, opts...)
	if err != nil {
		return nil, 0, err
	}
	// Globally dominated survivors of one block are eliminated by the
	// final ParetoFront pass; restoring output-slot order first makes the
	// pass see candidates exactly as the materializing path would, so
	// ties and duplicates resolve identically.
	sort.Slice(merged, func(a, b int) bool { return merged[a].idx < merged[b].idx })
	points := make([]Point, len(merged))
	for i, e := range merged {
		points[i] = e.pt
		points[i].Nodes = p.nodesFor(e.idx)
	}
	return ParetoFront(points, objectives...), p.combos, nil
}

// frontEntry is one block-front survivor: the point's scalar fields plus
// its output slot, from which the Nodes slice is reconstructed only if
// the point survives the final merge.
type frontEntry struct {
	idx int
	pt  Point // Nodes nil until materialized
}

// blockFront is one worker block's incremental skyline: the mutually
// non-dominated subset of the points streamed so far. Objective values
// are computed once per point and stored in a flat arena, so membership
// checks are branch-light float compares and the only growth is the
// entry/value slices themselves — no per-point allocations.
type blockFront struct {
	k       int
	entries []frontEntry
	objs    []float64 // len(entries)*k objective values
	vals    []float64 // candidate scratch, len k
}

func newBlockFront(k int) *blockFront {
	return &blockFront{k: k, vals: make([]float64, k)}
}

// add folds one point into the front: rejected if any member dominates
// it, otherwise inserted after evicting the members it dominates. Equal
// points do not dominate each other (matching ParetoFront), so exact
// duplicates coexist. The front invariant (mutual non-dominance) makes
// the two outcomes exclusive, so a single pass suffices.
func (f *blockFront) add(idx int, pt *Point, objectives []Metric) {
	vals := f.vals
	for j, m := range objectives {
		vals[j] = m(*pt)
	}
	for e := 0; e < len(f.entries); {
		ov := f.objs[e*f.k : (e+1)*f.k]
		memberBetter, candidateBetter := false, false
		for j := 0; j < f.k; j++ {
			switch {
			case ov[j] < vals[j]:
				memberBetter = true
			case ov[j] > vals[j]:
				candidateBetter = true
			}
		}
		if memberBetter && !candidateBetter {
			return // dominated by a member
		}
		if candidateBetter && !memberBetter {
			// Candidate dominates the member: swap-delete (order is
			// restored by the merge sort).
			last := len(f.entries) - 1
			f.entries[e] = f.entries[last]
			f.entries = f.entries[:last]
			copy(f.objs[e*f.k:(e+1)*f.k], f.objs[last*f.k:(last+1)*f.k])
			f.objs = f.objs[:last*f.k]
			continue
		}
		e++
	}
	cp := *pt
	cp.Nodes = nil
	f.entries = append(f.entries, frontEntry{idx: idx, pt: cp})
	f.objs = append(f.objs, vals...)
}

// nodesFor decodes an output slot back into its per-chiplet node
// assignment, sharing the standard mixed-radix decode with the
// reference path so the two can never order nodes differently.
func (p *CompiledPlan) nodesFor(idx int) []int {
	return combo(idx, p.nodes, p.nc)
}

// blockScratch is one worker's reusable per-point state: the Gray-code
// digit buffers, the reusable output point, and the kernel arena
// (packaging estimator, chiplet descriptors, operational-term memo).
type blockScratch struct {
	digits []int // current Gray digits (indices into plan.nodes)
	next   []int // decode buffer for the following index
	picked []int // reusable Point.Nodes buffer
	pt     Point
	sc     *kernel.Scratch
}

// walkBlock walks the Gray-code segment [lo, hi) of the combination
// sequence, streaming each evaluated point (and its output slot) to
// visit from a block-local scratch.
func (p *CompiledPlan) walkBlock(ctx context.Context, lo, hi int, visit func(idx int, pt *Point) error, tick func()) error {
	ksc, err := p.tbl.NewScratch()
	if err != nil {
		return err
	}
	sc := &blockScratch{
		digits: make([]int, p.nc),
		next:   make([]int, p.nc),
		picked: make([]int, p.nc),
		sc:     ksc,
	}

	p.grayDigits(lo, sc.digits)
	pkgCh := ksc.Chiplets()
	out := 0
	for i, d := range sc.digits {
		out += d * p.weight[i]
		if !p.monolith {
			cell := &p.tbl.Cells[i][d]
			pkgCh[i] = pkgcarbon.Chiplet{Name: p.tbl.Names[i], AreaMM2: cell.AreaMM2, Node: cell.Node}
		}
	}
	p.blockInits.Add(1)
	steps := uint64(0)

	for k := lo; k < hi; k++ {
		if k > lo {
			// Successive Gray codes differ in exactly one digit: refresh
			// only that chiplet's scratch state and output weight.
			p.grayDigits(k, sc.next)
			for i := range sc.next {
				if d := sc.next[i]; d != sc.digits[i] {
					out += (d - sc.digits[i]) * p.weight[i]
					sc.digits[i] = d
					if !p.monolith {
						cell := &p.tbl.Cells[i][d]
						pkgCh[i].AreaMM2, pkgCh[i].Node = cell.AreaMM2, cell.Node
					}
					break
				}
			}
			steps++
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := p.evalInto(sc, &sc.pt); err != nil {
			return err
		}
		if err := visit(out, &sc.pt); err != nil {
			return err
		}
		tick()
	}
	p.graySteps.Add(steps)
	p.points.Add(uint64(hi - lo))
	return nil
}

// evalInto assembles one design point from the table into out.
// Per-chiplet contributions are reduced in chiplet order (see the file
// comment on why the totals are not running sums), whole-package terms
// come from the scratch estimator, and out.Nodes aliases the scratch's
// reusable buffer — callers that retain the point must copy it.
func (p *CompiledPlan) evalInto(sc *blockScratch, out *Point) error {
	t := p.tbl
	var mfgKg, desKg, nreKg, diesUSD, nreUSD float64
	for i, d := range sc.digits {
		cell := &t.Cells[i][d]
		mfgKg += cell.MfgKg
		desKg += cell.DesignKgAmortized
		nreKg += cell.NREKg
		diesUSD += t.DieUSD[i][d]
		nreUSD += t.NREUSD[d]
	}

	var hiKg, area, powerW float64
	assemblyYield := 1.0
	if p.monolith {
		area = t.Cells[0][sc.digits[0]].AreaMM2
	} else {
		pkg, err := sc.sc.EstimatePackage()
		if err != nil {
			return err
		}
		desKg += t.CommShare[sc.digits[0]]
		hiKg = pkg.TotalKg()
		area = pkg.PackageAreaMM2
		assemblyYield = pkg.AssemblyYield
		powerW = pkg.RouterTotalPowerW
	}

	var opKg float64
	if t.HasOp {
		v, err := sc.sc.OperationKg(t.Base.Operation, powerW)
		if err != nil {
			return err
		}
		opKg = v
	}

	asmUSD, err := t.Asm.USD(area, assemblyYield)
	if err != nil {
		return err
	}

	for i, d := range sc.digits {
		sc.picked[i] = p.nodes[d]
	}
	embodied := mfgKg + desKg + hiKg + nreKg
	*out = Point{
		Nodes:          sc.picked,
		EmbodiedKg:     embodied,
		TotalKg:        embodied + opKg,
		CostUSD:        diesUSD + asmUSD + nreUSD,
		PackageAreaMM2: area,
	}
	return nil
}

// grayDigits writes the reflected mixed-radix Gray code of sequence
// index k into digits (most significant digit first, uniform radix r).
// Digit i runs its 0..r-1 sweep forward or reflected depending on the
// parity of the standard mixed-radix value of the digits above it, which
// makes consecutive codes differ in exactly one digit by ±1 while the
// map from k to codes stays a bijection onto the full factorial space.
func (p *CompiledPlan) grayDigits(k int, digits []int) {
	b := 0 // standard value of the more significant digits (parity is what matters)
	for i := 0; i < p.nc; i++ {
		a := k / p.weight[i] % p.r
		if b%2 == 0 {
			digits[i] = a
		} else {
			digits[i] = p.r - 1 - a
		}
		b = b*p.r + a
	}
}

package core

import (
	"math"
	"testing"
)

// The cell seam must reproduce the per-chiplet slice of an evaluation
// exactly: summing cells in chiplet order gives the report's MfgKg, and
// each cell matches its ChipletReport row bit for bit.
func TestCellsReassembleReport(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	s.IncludeNRE = true
	s.Chiplets[2].Reused = true
	rep, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}

	var mfgKg, desKg, nreKg float64
	for i, c := range s.Chiplets {
		cell, err := s.CellFor(db(), c, c.NodeNm, nil)
		if err != nil {
			t.Fatal(err)
		}
		row := rep.Chiplets[i]
		if math.Float64bits(cell.AreaMM2) != math.Float64bits(row.AreaMM2) ||
			math.Float64bits(cell.Yield) != math.Float64bits(row.Yield) ||
			math.Float64bits(cell.MfgKg) != math.Float64bits(row.MfgKg) ||
			math.Float64bits(cell.WastageKg) != math.Float64bits(row.WastageKg) ||
			math.Float64bits(cell.DesignKgTotal) != math.Float64bits(row.DesignKgTotal) ||
			math.Float64bits(cell.DesignKgAmortized) != math.Float64bits(row.DesignKgAmortized) {
			t.Errorf("cell %d does not match report row:\ncell %+v\nrow  %+v", i, cell, row)
		}
		mfgKg += cell.MfgKg
		desKg += cell.DesignKgAmortized
		nreKg += cell.NREKg
	}
	if math.Float64bits(mfgKg) != math.Float64bits(rep.MfgKg) {
		t.Errorf("cell MfgKg sum %v != report %v", mfgKg, rep.MfgKg)
	}
	if math.Float64bits(nreKg) != math.Float64bits(rep.NREKg) {
		t.Errorf("cell NREKg sum %v != report %v", nreKg, rep.NREKg)
	}
	// DesignKg additionally carries the communication-fabric share.
	share, err := s.CommDesignShareKg(db(), s.Chiplets[0].NodeNm, len(s.Chiplets), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := desKg + share; math.Float64bits(got) != math.Float64bits(rep.DesignKg) {
		t.Errorf("cell DesignKg sum + comm share %v != report %v", got, rep.DesignKg)
	}
}

// A reused chiplet's cell must carry zero design and NRE carbon.
func TestCellForReused(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	s.IncludeNRE = true
	s.Chiplets[0].Reused = true
	cell, err := s.CellFor(db(), s.Chiplets[0], 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cell.DesignKgTotal != 0 || cell.DesignKgAmortized != 0 || cell.NREKg != 0 {
		t.Errorf("reused cell carries design/NRE carbon: %+v", cell)
	}
	if cell.MfgKg <= 0 {
		t.Errorf("reused cell must still pay manufacturing carbon: %+v", cell)
	}
}

// MonolithCell must match the monolith report.
func TestMonolithCellMatchesEvaluate(t *testing.T) {
	s := monolith(7)
	s.IncludeNRE = true
	rep, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	cell, err := s.MonolithCell(db(), 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(cell.MfgKg) != math.Float64bits(rep.MfgKg) ||
		math.Float64bits(cell.DesignKgAmortized) != math.Float64bits(rep.DesignKg) ||
		math.Float64bits(cell.NREKg) != math.Float64bits(rep.NREKg) ||
		math.Float64bits(cell.AreaMM2) != math.Float64bits(rep.Chiplets[0].AreaMM2) {
		t.Errorf("monolith cell does not match report:\ncell %+v\nrep  %+v", cell, rep)
	}
}

func TestVolumeAccessor(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	if s.Volume() != DefaultVolume {
		t.Errorf("Volume() = %d, want default %d", s.Volume(), DefaultVolume)
	}
	s.SystemVolume = 42
	if s.Volume() != 42 {
		t.Errorf("Volume() = %d, want 42", s.Volume())
	}
}

package experiments

import (
	"fmt"

	"ecochip/internal/pkgcarbon"
	"ecochip/internal/report"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func init() {
	register("fig9", Fig9)
	register("fig10", Fig10)
	register("fig11a", Fig11a)
	register("fig11b", Fig11b)
	register("fig11c", Fig11c)
	register("fig11d", Fig11d)
}

// Fig9 evaluates the HI overheads (C_HI split into package and routing)
// of the five packaging architectures for the GA102's 500 mm^2 digital
// block split into N_c chiplets. 3D sweeps 2-4 tiers; the 2D
// architectures sweep N_c in {2, 4, 6, 8} (Fig. 9).
func Fig9(db *tech.DB) (*report.Table, error) {
	t := report.New("fig9", "C_HI per packaging architecture, 500mm^2 GA102 digital block split into Nc chiplets",
		"arch", "nc", "package_kg", "routing_kg", "chi_kg")
	for _, arch := range pkgcarbon.Architectures {
		counts := []int{2, 4, 6, 8}
		if arch == pkgcarbon.ThreeD {
			counts = []int{2, 3, 4}
		}
		for _, nc := range counts {
			s, err := testcases.GA102DigitalOnly(db, nc, arch)
			if err != nil {
				return nil, err
			}
			rep, err := s.Evaluate(db)
			if err != nil {
				return nil, err
			}
			p := rep.Packaging
			t.AddRow(arch.String(), report.I(nc), report.F(p.PackageKg), report.F(p.RoutingKg), report.F(p.TotalKg()))
		}
	}
	return t, nil
}

// Fig10 reports C_mfg and C_HI for the full GA102 as the digital block is
// split into N_c chiplets (memory at 10 nm, analog at 14 nm; Fig. 10).
func Fig10(db *tech.DB) (*report.Table, error) {
	t := report.New("fig10", "GA102 C_mfg vs C_HI as digital block splits into Nc chiplets (RDL)",
		"nc_digital", "total_chiplets", "cmfg_kg", "chi_kg", "sum_kg")
	for _, nc := range []int{1, 2, 3, 4, 6, 8} {
		s, err := testcases.GA102Split(db, nc, pkgcarbon.RDLFanout)
		if err != nil {
			return nil, err
		}
		rep, err := s.Evaluate(db)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(nc), report.I(len(s.Chiplets)), report.F(rep.MfgKg),
			report.F(rep.HIKg), report.F(rep.MfgKg+rep.HIKg))
	}
	return t, nil
}

// a15HI evaluates the A15 3-chiplet testcase under the given packaging
// parameters and returns C_HI.
func a15HI(db *tech.DB, mutate func(*pkgcarbon.Params)) (float64, error) {
	s := testcases.A15(db, 7, 14, 10, false)
	mutate(&s.Packaging)
	rep, err := s.Evaluate(db)
	if err != nil {
		return 0, err
	}
	return rep.HIKg, nil
}

// Fig11a sweeps the RDL layer count for the A15 RDL-fanout package
// (Fig. 11(a)).
func Fig11a(db *tech.DB) (*report.Table, error) {
	t := report.New("fig11a", "A15 C_HI vs RDL layer count",
		"l_rdl", "chi_kg")
	for l := 4; l <= 9; l++ {
		hi, err := a15HI(db, func(p *pkgcarbon.Params) {
			*p = pkgcarbon.DefaultParams(pkgcarbon.RDLFanout)
			p.RDLLayers = l
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(l), report.F(hi))
	}
	return t, nil
}

// Fig11b sweeps the EMIB bridge range for the A15 silicon-bridge package
// (Fig. 11(b)).
func Fig11b(db *tech.DB) (*report.Table, error) {
	t := report.New("fig11b", "A15 C_HI vs EMIB bridge range",
		"range_mm", "chi_kg")
	for _, r := range []float64{0.5, 1, 2, 4} {
		hi, err := a15HI(db, func(p *pkgcarbon.Params) {
			*p = pkgcarbon.DefaultParams(pkgcarbon.SiliconBridge)
			p.BridgeRangeMM = r
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", r), report.F(hi))
	}
	return t, nil
}

// Fig11c sweeps the active-interposer technology node for the A15
// (Fig. 11(c)).
func Fig11c(db *tech.DB) (*report.Table, error) {
	t := report.New("fig11c", "A15 C_HI vs active-interposer node",
		"interposer_nm", "chi_kg")
	for _, nm := range []int{22, 28, 40, 65} {
		node := db.MustGet(nm)
		hi, err := a15HI(db, func(p *pkgcarbon.Params) {
			*p = pkgcarbon.DefaultParams(pkgcarbon.ActiveInterposer)
			p.PackagingNode = node
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(nm), report.F(hi))
	}
	return t, nil
}

// Fig11d sweeps the TSV pitch for a 3D-stacked A15 (Fig. 11(d)).
func Fig11d(db *tech.DB) (*report.Table, error) {
	t := report.New("fig11d", "A15 C_HI vs TSV pitch (3D stacking)",
		"pitch_um", "chi_kg")
	for _, pitch := range []float64{10, 20, 30, 45} {
		hi, err := a15HI(db, func(p *pkgcarbon.Params) {
			*p = pkgcarbon.DefaultParams(pkgcarbon.ThreeD)
			p.Bond = pkgcarbon.TSV
			p.BondPitchUM = pitch
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.0f", pitch), report.F(hi))
	}
	return t, nil
}

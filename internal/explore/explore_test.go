package explore

import (
	"context"
	"fmt"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/engine"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func db() *tech.DB { return tech.Default() }

func sweep(t *testing.T) []Point {
	t.Helper()
	base := testcases.GA102(db(), 7, 14, 10, false)
	points, err := NodeSweep(base, db(), []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestNodeSweepEnumerates(t *testing.T) {
	points := sweep(t)
	if len(points) != 27 {
		t.Fatalf("3 nodes ^ 3 chiplets should give 27 points, got %d", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.Label()] {
			t.Errorf("duplicate point %s", p.Label())
		}
		seen[p.Label()] = true
		if p.EmbodiedKg <= 0 || p.TotalKg <= p.EmbodiedKg || p.CostUSD <= 0 || p.PackageAreaMM2 <= 0 {
			t.Errorf("implausible point %+v", p)
		}
	}
}

func TestNodeSweepErrors(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	if _, err := NodeSweep(base, db(), nil, cost.DefaultParams()); err == nil {
		t.Error("empty node list should fail")
	}
	// Blow the combination cap: 7 nodes ^ 10 chiplets.
	big, err := testcases.GA102Split(db(), 8, base.Packaging.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NodeSweep(big, db(), db().Sizes(), cost.DefaultParams()); err == nil {
		t.Error("combination explosion should fail, not truncate")
	}
	// Invalid node propagates.
	if _, err := NodeSweep(base, db(), []int{7, 3}, cost.DefaultParams()); err == nil {
		t.Error("unsupported node should fail")
	}
}

// The paper's Section V-A result must fall out of the sweep: the best
// embodied-carbon point is (7,14,10).
func TestBestMatchesPaper(t *testing.T) {
	points := sweep(t)
	best := Best(points, ByEmbodied)
	if best.Label() != "[7 14 10]" {
		t.Errorf("best embodied point = %s, want [7 14 10]", best.Label())
	}
}

func TestBestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Best on empty set should panic")
		}
	}()
	Best(nil, ByEmbodied)
}

func TestParetoFrontProperties(t *testing.T) {
	points := sweep(t)
	front := ParetoFront(points, ByEmbodied, ByCost)
	if len(front) == 0 || len(front) > len(points) {
		t.Fatalf("front size %d implausible", len(front))
	}
	// No point in the front is dominated by any sweep point.
	for _, p := range front {
		for _, q := range points {
			if q.Label() == p.Label() {
				continue
			}
			if q.EmbodiedKg <= p.EmbodiedKg && q.CostUSD <= p.CostUSD &&
				(q.EmbodiedKg < p.EmbodiedKg || q.CostUSD < p.CostUSD) {
				t.Errorf("front point %s is dominated by %s", p.Label(), q.Label())
			}
		}
	}
	// Front is sorted by the first objective.
	for i := 1; i < len(front); i++ {
		if front[i].EmbodiedKg < front[i-1].EmbodiedKg {
			t.Error("front not sorted by first objective")
		}
	}
	// Both single-objective optima are on the front.
	bestEmb := Best(points, ByEmbodied)
	bestCost := Best(points, ByCost)
	var foundEmb, foundCost bool
	for _, p := range front {
		if p.Label() == bestEmb.Label() {
			foundEmb = true
		}
		if p.Label() == bestCost.Label() {
			foundCost = true
		}
	}
	if !foundEmb || !foundCost {
		t.Error("single-objective optima must be on the Pareto front")
	}
}

func TestParetoSingleObjective(t *testing.T) {
	points := sweep(t)
	front := ParetoFront(points, ByTotal)
	// With one objective the front is exactly the set of minima.
	best := Best(points, ByTotal)
	for _, p := range front {
		if p.TotalKg != best.TotalKg {
			t.Errorf("single-objective front contains non-minimal point %s", p.Label())
		}
	}
}

func TestParetoPanicsWithoutObjectives(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ParetoFront without objectives should panic")
		}
	}()
	ParetoFront(sweep(t))
}

func TestByAreaMetric(t *testing.T) {
	points := sweep(t)
	best := Best(points, ByArea)
	// All-advanced nodes minimize area.
	if best.Label() != "[7 7 7]" {
		t.Errorf("smallest-area point = %s, want [7 7 7]", best.Label())
	}
}

// nodeSweepSerialReference is the pre-engine implementation: a recursive
// walk evaluating one point at a time on one goroutine, pricing cost with
// a second evaluation. It is the byte-identity oracle for the engine path.
func nodeSweepSerialReference(base *core.System, d *tech.DB, nodes []int, cp cost.Params) ([]Point, error) {
	nc := len(base.Chiplets)
	var points []Point
	assign := make([]int, nc)
	var walk func(int) error
	walk = func(i int) error {
		if i == nc {
			picked := make([]int, nc)
			copy(picked, assign)
			s, err := base.WithNodes(picked...)
			if err != nil {
				return err
			}
			rep, err := s.Evaluate(d)
			if err != nil {
				return err
			}
			c, err := s.CostUSD(d, cp)
			if err != nil {
				return err
			}
			area := rep.Chiplets[0].AreaMM2
			if rep.Packaging != nil {
				area = rep.Packaging.PackageAreaMM2
			}
			points = append(points, Point{
				Nodes:          picked,
				EmbodiedKg:     rep.EmbodiedKg(),
				TotalKg:        rep.TotalKg(),
				CostUSD:        c.TotalUSD(),
				PackageAreaMM2: area,
			})
			return nil
		}
		for _, nm := range nodes {
			assign[i] = nm
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return nil, err
	}
	return points, nil
}

// The engine-backed sweep must return byte-identical points — same
// order, same floats — to the historical serial walk, at any worker
// count.
func TestNodeSweepMatchesSerialReference(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	nodes := []int{7, 10, 14, 22}
	cp := cost.DefaultParams()
	want, err := nodeSweepSerialReference(base, d, nodes, cp)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := NodeSweepCtx(context.Background(), base, d, nodes, cp, engine.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Label() != want[i].Label() ||
				got[i].EmbodiedKg != want[i].EmbodiedKg ||
				got[i].TotalKg != want[i].TotalKg ||
				got[i].CostUSD != want[i].CostUSD ||
				got[i].PackageAreaMM2 != want[i].PackageAreaMM2 {
				t.Fatalf("workers=%d: point %d differs\nwant %+v\ngot  %+v", workers, i, want[i], got[i])
			}
		}
	}
}

func TestComboStreaming(t *testing.T) {
	// Decode order must be the recursive-walk order: chiplet 0 outermost.
	nodes := []int{7, 10}
	want := [][]int{{7, 7}, {7, 10}, {10, 7}, {10, 10}}
	for i, w := range want {
		got := combo(i, nodes, 2)
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Errorf("combo(%d) = %v, want %v", i, got, w)
		}
	}
	if n, err := comboCount(10, 6); err != nil || n != 1_000_000 {
		t.Errorf("comboCount(10, 6) = %d, %v; want exactly the 1M cap", n, err)
	}
	if _, err := comboCount(10, 7); err == nil {
		t.Error("comboCount beyond the cap must error")
	}
	// 7 nodes over 6 chiplets (117,649 combos) exceeded the old 100k cap
	// and must now be admissible.
	if n, err := comboCount(7, 6); err != nil || n != 117_649 {
		t.Errorf("comboCount(7, 6) = %d, %v; want 117649 admissible", n, err)
	}
}

// generalScan is the O(n^2) dominance filter, kept as the oracle for the
// two-objective skyline path.
func generalScan(points []Point, objectives ...Metric) map[string]bool {
	kept := map[string]bool{}
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dominates(q, p, objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept[fmt.Sprintf("%s|%g|%g", p.Label(), objectives[0](p), objectives[1](p))] = true
		}
	}
	return kept
}

func TestSkylineMatchesGeneralScan(t *testing.T) {
	points := sweep(t)
	// Add adversarial shapes: exact duplicates, equal-x ties and an
	// equal-y tie chain.
	points = append(points, points[0], points[3])
	points = append(points,
		Point{Nodes: []int{901}, EmbodiedKg: points[1].EmbodiedKg, CostUSD: points[1].CostUSD / 2},
		Point{Nodes: []int{902}, EmbodiedKg: points[1].EmbodiedKg, CostUSD: points[1].CostUSD / 2},
		Point{Nodes: []int{903}, EmbodiedKg: points[1].EmbodiedKg * 2, CostUSD: points[1].CostUSD / 2},
	)
	front := ParetoFront(points, ByEmbodied, ByCost)
	want := generalScan(points, ByEmbodied, ByCost)
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	got := map[string]bool{}
	for i, p := range front {
		got[fmt.Sprintf("%s|%g|%g", p.Label(), p.EmbodiedKg, p.CostUSD)] = true
		if i > 0 && front[i].EmbodiedKg < front[i-1].EmbodiedKg {
			t.Error("skyline front not sorted by first objective")
		}
	}
	if len(got) != len(want) {
		t.Fatalf("skyline kept %d distinct points, general scan kept %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("general-scan survivor %s missing from skyline front", k)
		}
	}
	if ParetoFront(nil, ByEmbodied, ByCost) != nil {
		t.Error("empty input should give empty front")
	}
}

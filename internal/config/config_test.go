package config

import (
	"os"
	"path/filepath"
	"testing"

	"ecochip/internal/tech"
)

func db() *tech.DB { return tech.Default() }

func TestExampleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteExampleDir(dir); err != nil {
		t.Fatal(err)
	}
	s, nodes, err := LoadSystem(dir, db())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "example-3chiplet" {
		t.Errorf("system name = %q", s.Name)
	}
	if len(s.Chiplets) != 3 {
		t.Fatalf("want 3 chiplets, got %d", len(s.Chiplets))
	}
	if s.Chiplets[1].NodeNm != 14 {
		t.Errorf("memory node = %d, want 14", s.Chiplets[1].NodeNm)
	}
	if len(nodes) != 3 || nodes[0] != 7 {
		t.Errorf("node list = %v, want [7 10 14]", nodes)
	}
	if s.SystemVolume != 100000 {
		t.Errorf("system volume = %d", s.SystemVolume)
	}
	if s.Operation == nil || s.Operation.AnnualEnergyKWh != 228 {
		t.Error("operational spec not loaded")
	}
	rep, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalKg() <= 0 {
		t.Error("loaded system should evaluate to positive carbon")
	}
}

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestMissingArchitecture(t *testing.T) {
	if _, _, err := LoadSystem(t.TempDir(), db()); err == nil {
		t.Error("missing architecture.json should fail")
	}
}

func TestRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "architecture.json", `{"system_name":"x","bogus_field":1,"chiplets":[]}`)
	if _, _, err := LoadSystem(dir, db()); err == nil {
		t.Error("unknown JSON fields should fail (DisallowUnknownFields)")
	}
}

func TestChipletValidation(t *testing.T) {
	cases := map[string]string{
		"no chiplets": `{"system_name":"x","packaging":"RDL","chiplets":[]}`,
		"both area and transistors": `{"packaging":"RDL","chiplets":[
			{"name":"a","type":"logic","area_mm2":10,"transistors":1e9,"node_nm":7},
			{"name":"b","type":"logic","area_mm2":10,"node_nm":7}]}`,
		"neither area nor transistors": `{"packaging":"RDL","chiplets":[
			{"name":"a","type":"logic","node_nm":7},
			{"name":"b","type":"logic","area_mm2":10,"node_nm":7}]}`,
		"bad type": `{"packaging":"RDL","chiplets":[
			{"name":"a","type":"fpga","area_mm2":10,"node_nm":7},
			{"name":"b","type":"logic","area_mm2":10,"node_nm":7}]}`,
		"bad node": `{"packaging":"RDL","chiplets":[
			{"name":"a","type":"logic","area_mm2":10,"node_nm":3},
			{"name":"b","type":"logic","area_mm2":10,"node_nm":7}]}`,
		"bad packaging": `{"packaging":"wirebond","chiplets":[
			{"name":"a","type":"logic","area_mm2":10,"node_nm":7},
			{"name":"b","type":"logic","area_mm2":10,"node_nm":7}]}`,
	}
	for name, arch := range cases {
		dir := t.TempDir()
		write(t, dir, "architecture.json", arch)
		if _, _, err := LoadSystem(dir, db()); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

func TestTransistorSpecifiedChiplet(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "architecture.json", `{"packaging":"EMIB","chiplets":[
		{"name":"a","type":"logic","transistors":1e10,"node_nm":7},
		{"name":"b","type":"logic","transistors":1e10,"node_nm":7}]}`)
	s, _, err := LoadSystem(dir, db())
	if err != nil {
		t.Fatal(err)
	}
	if s.Chiplets[0].Transistors != 1e10 {
		t.Error("transistor count should pass through")
	}
	if s.Name != filepath.Base(dir) {
		t.Errorf("default system name should be the directory name, got %q", s.Name)
	}
}

func TestMonolithicSkipsPackaging(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "architecture.json", `{"monolithic":true,"chiplets":[
		{"name":"a","type":"logic","area_mm2":100,"node_nm":7}]}`)
	s, _, err := LoadSystem(dir, db())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Monolithic {
		t.Error("monolithic flag lost")
	}
}

func TestPackageOverrides(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "architecture.json", `{"packaging":"3D","chiplets":[
		{"name":"a","type":"logic","area_mm2":100,"node_nm":7},
		{"name":"b","type":"memory","area_mm2":50,"node_nm":7}]}`)
	write(t, dir, "packageC.json", `{"bond":"tsv","bond_pitch_um":20,"packaging_node_nm":40,"noc_flit_width_bits":256}`)
	s, _, err := LoadSystem(dir, db())
	if err != nil {
		t.Fatal(err)
	}
	if s.Packaging.BondPitchUM != 20 || s.Packaging.PackagingNode.Nm != 40 {
		t.Errorf("package overrides not applied: %+v", s.Packaging)
	}
	if s.Packaging.Router.FlitWidthBits != 256 {
		t.Error("flit width override not applied")
	}
}

func TestBadPackageOverrides(t *testing.T) {
	base := `{"packaging":"RDL","chiplets":[
		{"name":"a","type":"logic","area_mm2":100,"node_nm":7},
		{"name":"b","type":"logic","area_mm2":50,"node_nm":7}]}`
	for name, pkg := range map[string]string{
		"bad bond": `{"bond":"glue"}`,
		"bad node": `{"packaging_node_nm":13}`,
	} {
		dir := t.TempDir()
		write(t, dir, "architecture.json", base)
		write(t, dir, "packageC.json", pkg)
		if _, _, err := LoadSystem(dir, db()); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

func TestOperationalVariants(t *testing.T) {
	base := `{"monolithic":true,"chiplets":[{"name":"a","type":"logic","area_mm2":100,"node_nm":7}]}`
	battery := `{"duty_cycle":0.2,"lifetime_years":2,"carbon_intensity_kg_per_kwh":0.3,
		"battery":{"capacity_wh":12.7,"charges_per_year":300,"charger_efficiency":0.85}}`
	electrical := `{"duty_cycle":0.1,"lifetime_years":3,"carbon_intensity_kg_per_kwh":0.5,
		"electrical":{"vdd_v":0.8,"leakage_a":0.5,"activity":0.2,"capacitance_f":1e-9,"frequency_hz":1e9}}`
	for name, op := range map[string]string{"battery": battery, "electrical": electrical} {
		dir := t.TempDir()
		write(t, dir, "architecture.json", base)
		write(t, dir, "operationalC.json", op)
		s, _, err := LoadSystem(dir, db())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep, err := s.Evaluate(db())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.OperationalKg <= 0 {
			t.Errorf("%s: operational carbon should be positive", name)
		}
	}
}

func TestOperationalProfile(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "architecture.json", `{"monolithic":true,"chiplets":[
		{"name":"a","type":"logic","area_mm2":100,"node_nm":7}]}`)
	write(t, dir, "operationalC.json", `{"lifetime_years":5,"carbon_intensity_kg_per_kwh":0.45,
		"profile":[{"name":"busy","share_of_year":0.3,"power_w":200},
		           {"name":"idle","share_of_year":0.6,"power_w":50}]}`)
	s, _, err := LoadSystem(dir, db())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OperationalKg <= 0 {
		t.Error("profile spec should yield operational carbon")
	}
	// Profile plus another source must fail.
	write(t, dir, "operationalC.json", `{"duty_cycle":0.2,"lifetime_years":5,
		"carbon_intensity_kg_per_kwh":0.45,"annual_energy_kwh":100,
		"profile":[{"name":"busy","share_of_year":0.3,"power_w":200}]}`)
	if _, _, err := LoadSystem(dir, db()); err == nil {
		t.Error("profile plus direct energy should fail")
	}
	// Broken profile must fail.
	write(t, dir, "operationalC.json", `{"lifetime_years":5,"carbon_intensity_kg_per_kwh":0.45,
		"profile":[{"name":"busy","share_of_year":1.3,"power_w":200}]}`)
	if _, _, err := LoadSystem(dir, db()); err == nil {
		t.Error("profile with share > 1 should fail")
	}
}

func TestMfgOverrides(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "architecture.json", `{"monolithic":true,"chiplets":[
		{"name":"a","type":"logic","area_mm2":100,"node_nm":7}]}`)
	write(t, dir, "mfgC.json", `{"carbon_intensity_kg_per_kwh":0.03,"wafer_diameter_mm":300,"exclude_wastage":true}`)
	s, _, err := LoadSystem(dir, db())
	if err != nil {
		t.Fatal(err)
	}
	if s.Mfg.CarbonIntensity != 0.03 || s.Mfg.Wafer.DiameterMM != 300 || s.Mfg.IncludeWastage {
		t.Errorf("mfg overrides not applied: %+v", s.Mfg)
	}
}

func TestEnergySourceByName(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "architecture.json", `{"monolithic":true,"chiplets":[
		{"name":"a","type":"logic","area_mm2":100,"node_nm":7}]}`)
	write(t, dir, "mfgC.json", `{"energy_source":"solar"}`)
	s, _, err := LoadSystem(dir, db())
	if err != nil {
		t.Fatal(err)
	}
	if s.Mfg.CarbonIntensity != 0.048 {
		t.Errorf("solar fab intensity = %g, want 0.048", s.Mfg.CarbonIntensity)
	}
	write(t, dir, "mfgC.json", `{"energy_source":"fusion"}`)
	if _, _, err := LoadSystem(dir, db()); err == nil {
		t.Error("unknown energy source should fail")
	}
	write(t, dir, "mfgC.json", `{"energy_source":"coal","carbon_intensity_kg_per_kwh":0.5}`)
	if _, _, err := LoadSystem(dir, db()); err == nil {
		t.Error("setting both intensity and source should fail")
	}
}

func TestNodeListParsing(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "architecture.json", `{"monolithic":true,"chiplets":[
		{"name":"a","type":"logic","area_mm2":100,"node_nm":7}]}`)
	write(t, dir, "node_list.txt", "# comment\n7\n14nm\n\n65\n")
	_, nodes, err := LoadSystem(dir, db())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[1] != 14 {
		t.Errorf("nodes = %v, want [7 14 65]", nodes)
	}
	write(t, dir, "node_list.txt", "banana\n")
	if _, _, err := LoadSystem(dir, db()); err == nil {
		t.Error("bad node list should fail")
	}
	write(t, dir, "node_list.txt", "3\n")
	if _, _, err := LoadSystem(dir, db()); err == nil {
		t.Error("unsupported node should fail")
	}
}

package kernel

import "testing"

// The per-point package memo must count its traffic — and in particular
// the recomputes forced by direct-mapped slot collisions, the signal an
// eviction policy would be justified by.
func TestPkgMemoStatsCountsHitsMissesCollisions(t *testing.T) {
	sc := &Scratch{}
	span := uint64(1) << (pkgPointSlotBits + 2) // force the hashed, collision-prone regime

	// Cold lookup on an unsized table: a miss, not a collision.
	if _, ok := sc.LoadPackagePoint(1, span); ok {
		t.Fatal("hit on an empty memo")
	}
	sc.StorePackagePoint(1, span, PkgPoint{HIKg: 1})
	if _, ok := sc.LoadPackagePoint(1, span); !ok {
		t.Fatal("miss on a stored point")
	}

	// Find an index that hashes to point 1's slot and evict it, then
	// observe the collision recompute when point 1 is looked up again.
	slot := pkgPointSlot(1, span)
	other := uint64(2)
	for ; pkgPointSlot(other, span) != slot; other++ {
	}
	if _, ok := sc.LoadPackagePoint(other, span); ok {
		t.Fatal("hit for a colliding index that was never stored")
	}
	sc.StorePackagePoint(other, span, PkgPoint{HIKg: 2})
	if _, ok := sc.LoadPackagePoint(1, span); ok {
		t.Fatal("hit for point 1 after its slot was evicted")
	}

	s := sc.PkgMemoStats()
	if s.Hits != 1 {
		t.Errorf("Hits = %d, want 1", s.Hits)
	}
	if s.Misses != 3 {
		t.Errorf("Misses = %d, want 3", s.Misses)
	}
	// The occupied-slot lookups: `other` before its store, and point 1
	// after the eviction.
	if s.Collisions != 2 {
		t.Errorf("Collisions = %d, want 2", s.Collisions)
	}
	// One empty slot claimed (point 1); `other`'s store overwrote it.
	if s.Fills != 1 {
		t.Errorf("Fills = %d, want 1", s.Fills)
	}
	if s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions)
	}
	if occ, cap := sc.PkgMemoOccupancy(); occ != 1 || cap != 1<<pkgPointSlotBits {
		t.Errorf("occupancy = %d/%d, want 1/%d", occ, cap, 1<<pkgPointSlotBits)
	}
	if d := sc.PkgMemoStats().Delta(s); d != (PkgMemoStats{}) {
		t.Errorf("Delta against the latest snapshot = %+v, want zero", d)
	}
}

// Re-storing the same point must not inflate the fill or eviction
// counters, and occupancy must track live entries, not store traffic.
func TestPkgMemoOccupancyIdentitySpan(t *testing.T) {
	sc := &Scratch{}
	span := uint64(16)
	for idx := uint64(0); idx < span; idx++ {
		sc.StorePackagePoint(idx, span, PkgPoint{})
		sc.StorePackagePoint(idx, span, PkgPoint{}) // overwrite in place
	}
	if occ, cap := sc.PkgMemoOccupancy(); occ != int(span) || cap != int(span) {
		t.Errorf("occupancy = %d/%d, want %d/%d", occ, cap, span, span)
	}
	s := sc.PkgMemoStats()
	if s.Fills != span {
		t.Errorf("Fills = %d, want %d", s.Fills, span)
	}
	if s.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0: same-key overwrites evict nothing", s.Evictions)
	}
	// A span change rebuilds the table: occupancy resets, counters keep
	// accumulating monotonically.
	sc.StorePackagePoint(0, span*2, PkgPoint{})
	if occ, cap := sc.PkgMemoOccupancy(); occ != 1 || cap != int(span*2) {
		t.Errorf("occupancy after resize = %d/%d, want 1/%d", occ, cap, span*2)
	}
	if got := sc.PkgMemoStats().Fills; got != span+1 {
		t.Errorf("Fills after resize = %d, want %d", got, span+1)
	}
}

// Identity-mapped spans (the common small-sweep case) can never collide:
// every miss must be a cold slot.
func TestPkgMemoStatsNoCollisionsWithinSlotCapacity(t *testing.T) {
	sc := &Scratch{}
	span := uint64(64)
	for idx := uint64(0); idx < span; idx++ {
		sc.LoadPackagePoint(idx, span)
		sc.StorePackagePoint(idx, span, PkgPoint{})
	}
	for idx := uint64(0); idx < span; idx++ {
		if _, ok := sc.LoadPackagePoint(idx, span); !ok {
			t.Fatalf("miss for stored point %d", idx)
		}
	}
	s := sc.PkgMemoStats()
	if s.Collisions != 0 {
		t.Errorf("Collisions = %d, want 0 for an identity-mapped span", s.Collisions)
	}
	if s.Hits != span || s.Misses != span {
		t.Errorf("Hits/Misses = %d/%d, want %d/%d", s.Hits, s.Misses, span, span)
	}
}

// Quickstart: estimate the carbon footprint of a custom 3-chiplet system
// and compare it against its monolithic equivalent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ecochip"
	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/opcarbon"
)

func main() {
	db := ecochip.DefaultDB()
	ref := db.MustGet(7) // areas below were measured at 7nm

	// A hypothetical edge SoC: 120 mm^2 of logic, 40 mm^2 of SRAM,
	// 25 mm^2 of analog/IO, disaggregated with technology mix-and-match
	// (logic stays at 7nm; memory and analog move to mature nodes).
	chiplets := []ecochip.Chiplet{
		ecochip.BlockFromArea("npu", ecochip.Logic, 120, ref, 7),
		ecochip.BlockFromArea("sram", ecochip.Memory, 40, ref, 14),
		ecochip.BlockFromArea("io", ecochip.Analog, 25, ref, 10),
	}

	operation := &opcarbon.Spec{
		DutyCycle:       0.15,
		LifetimeYears:   3,
		CarbonIntensity: 0.300,
		Battery:         &opcarbon.Battery{CapacityWh: 18, ChargesPerYear: 300, ChargerEfficiency: 0.85},
	}

	hi := &ecochip.System{
		Name:      "edge-soc-3chiplet",
		Chiplets:  chiplets,
		Packaging: ecochip.DefaultPackaging(ecochip.RDLFanout),
		Mfg:       mfg.DefaultParams(),
		Design:    descarbon.DefaultParams(),
		Operation: operation,
	}

	// The monolithic baseline: same blocks, single 7nm die.
	mono := &ecochip.System{
		Name: "edge-soc-monolith",
		Chiplets: []ecochip.Chiplet{
			ecochip.BlockFromArea("npu", ecochip.Logic, 120, ref, 7),
			ecochip.BlockFromArea("sram", ecochip.Memory, 40, ref, 7),
			ecochip.BlockFromArea("io", ecochip.Analog, 25, ref, 7),
		},
		Monolithic: true,
		Mfg:        mfg.DefaultParams(),
		Design:     descarbon.DefaultParams(),
		Operation:  operation,
	}

	for _, s := range []*ecochip.System{mono, hi} {
		rep, err := s.Evaluate(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s C_mfg=%7.2f  C_des=%6.2f  C_HI=%6.2f  C_emb=%7.2f  C_op=%6.2f  C_tot=%7.2f kg CO2e\n",
			s.Name, rep.MfgKg, rep.DesignKg, rep.HIKg, rep.EmbodiedKg(), rep.OperationalKg, rep.TotalKg())
		for _, c := range rep.Chiplets {
			fmt.Printf("    %-8s %6.1f mm^2 @%2dnm  yield %.3f  %6.2f kg\n",
				c.Name, c.AreaMM2, c.NodeNm, c.Yield, c.MfgKg)
		}
	}

	hiRep, _ := hi.Evaluate(db)
	monoRep, _ := mono.Evaluate(db)
	fmt.Printf("\nembodied-carbon saving from disaggregation: %.1f%%\n",
		100*(1-hiRep.EmbodiedKg()/monoRep.EmbodiedKg()))
}

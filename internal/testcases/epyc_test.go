package testcases

import (
	"testing"
)

func TestEPYCErrors(t *testing.T) {
	for _, bad := range []int{0, 9, -1} {
		if _, err := EPYC(db(), bad); err == nil {
			t.Errorf("EPYC(%d) should fail", bad)
		}
		if _, err := EPYCMonolith(db(), bad); err == nil {
			t.Errorf("EPYCMonolith(%d) should fail", bad)
		}
	}
}

func TestEPYCStructure(t *testing.T) {
	s, err := EPYC(db(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Chiplets) != 9 {
		t.Fatalf("8-CCD EPYC should have 9 chiplets, got %d", len(s.Chiplets))
	}
	for i := 0; i < 8; i++ {
		if !s.Chiplets[i].Reused {
			t.Errorf("CCD %d should be a reused design", i)
		}
	}
	if s.Chiplets[8].Name != "iod" || s.Chiplets[8].NodeNm != 14 {
		t.Errorf("last chiplet should be the 14nm IOD, got %+v", s.Chiplets[8])
	}
}

// The chiplet EPYC must trounce the monolithic equivalent: the 1000 mm^2
// monolith yields terribly, and the IO block balloons no area at 7 nm
// (analog barely scales) but burns advanced-node carbon per area.
func TestEPYCBeatsMonolith(t *testing.T) {
	hi, err := EPYC(db(), 8)
	if err != nil {
		t.Fatal(err)
	}
	hiRep, err := hi.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	mono, err := EPYCMonolith(db(), 8)
	if err != nil {
		t.Fatal(err)
	}
	monoRep, err := mono.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if hiRep.EmbodiedKg() >= monoRep.EmbodiedKg() {
		t.Errorf("EPYC HI C_emb %.1f should beat monolith %.1f",
			hiRep.EmbodiedKg(), monoRep.EmbodiedKg())
	}
	// The saving should be large for this workload — well above GA102's.
	saving := 1 - hiRep.EmbodiedKg()/monoRep.EmbodiedKg()
	if saving < 0.3 {
		t.Errorf("EPYC saving %.0f%% should exceed 30%% (huge monolith, reused CCDs)", saving*100)
	}
}

// More CCDs raise carbon roughly linearly but the per-CCD cost is flat:
// the SKU ladder shares one design.
func TestEPYCSKULadder(t *testing.T) {
	prev := 0.0
	for _, ccds := range []int{2, 4, 8} {
		s, err := EPYC(db(), ccds)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Evaluate(db())
		if err != nil {
			t.Fatal(err)
		}
		if rep.EmbodiedKg() <= prev {
			t.Errorf("%d-CCD SKU should out-emit the smaller SKU", ccds)
		}
		prev = rep.EmbodiedKg()
		// CCD design carbon is zero (reused); only the IOD and fabric
		// carry design carbon.
		for i := 0; i < ccds; i++ {
			if rep.Chiplets[i].DesignKgAmortized != 0 {
				t.Errorf("CCD %d should carry no design carbon", i)
			}
		}
	}
}

func TestEPYCOperationalProfile(t *testing.T) {
	s, err := EPYC(db(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OperationalKg <= 0 {
		t.Fatal("server should carry operational carbon")
	}
	// 5 years of a mostly-busy server dominates embodied carbon.
	if rep.OperationalKg <= rep.EmbodiedKg() {
		t.Errorf("server C_op %.1f should dominate C_emb %.1f",
			rep.OperationalKg, rep.EmbodiedKg())
	}
}

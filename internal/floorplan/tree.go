package floorplan

import (
	"fmt"
	"math"
)

// This file is the retained-mode incremental planner. A Tree caches the
// outcome of one fixed-shape plan — the sorted order, the recursive
// area-balanced partition and every subtree's composed dimensions,
// orientation and sibling shift — so that re-planning after a small
// area change costs a cheap O(n) topology guard plus a relayout of the
// dirty leaf-to-root path instead of a full sort + partition + layout +
// adjacency scan.
//
// The contract is bit-identity with Scratch.Plan on the same blocks, by
// construction:
//
//   - The guard proves the sorted permutation and every partition
//     decision are unchanged, so the slicing topology (and with it the
//     leaf order) is exactly what a fresh plan would rebuild.
//   - A leaf's final coordinates in layoutSeg are a fold of its
//     ancestors' right-subtree shifts, applied leaf-to-root, each shift
//     being the single addition (lw + spacing) or (lh + spacing). The
//     tree caches exactly those shift values per node and replays the
//     fold per leaf, so every coordinate is produced by the same float
//     additions in the same order as the from-scratch layout.
//   - The adjacency rescan re-runs facing() only for pairs where a
//     rectangle moved; facing is pure per pair, so unmoved pairs keep
//     verdicts a full scan would reproduce, and the shared final sort
//     restores the full-scan output order (block names must be unique
//     for that order to be well defined — the same caveat the full
//     scan's sort carries).
//
// Any guard failure falls back to a full rebuild, which is the
// from-scratch algorithm itself, so no input can make the incremental
// path diverge: it can only decline.
//
// When the block SET changes — the Disaggregate candidate shape of "k
// survivors removed, m merged dies inserted" — the name-keyed diff
// (planDiff) takes over: leaves are keyed by block name, the new tree is
// constructed by the from-scratch recursion, and any segment that is
// exactly a retained subtree of clean survivors is spliced in by
// copying its node structs. Spliced segments hold the identical ordered
// block list the retained recursion partitioned, so the copy reproduces
// what the recursion would recompute — bit-identity again holds by
// construction, and a segment that matches nothing simply runs the
// from-scratch math.

// TreeStats counts the work a retained tree performed across Plan and
// Update calls. The counters separate plans where reuse was impossible
// by contract (Rebuilds: the first plan, spacing or adjacency-mode
// changes) from plans where reuse was attempted and declined (Fallbacks,
// DiffFallbacks), so reuse-rate reporting is not deflated by plans the
// tree never had a chance to serve incrementally.
type TreeStats struct {
	// Rebuilds counts deliberate full from-scratch builds: the first
	// plan and any plan whose spacing or adjacency mode changed, where
	// no retained state could apply by contract.
	Rebuilds uint64
	// FastPath counts same-shape plans served by an incremental relayout
	// of the dirty paths with the retained topology.
	FastPath uint64
	// DiffFastPath counts shape-changed plans (blocks removed, inserted
	// or renamed) served by the name-keyed diff: the tree is rebuilt by
	// the from-scratch recursion, but segments matching a retained
	// subtree of clean surviving blocks are spliced in instead of
	// recomputed.
	DiffFastPath uint64
	// Fallbacks counts same-shape incremental attempts that hit a
	// sort-order or partition flip and rebuilt from scratch instead.
	Fallbacks uint64
	// DiffFallbacks counts shape-changed plans the name-keyed diff
	// declined (no retained block survives by name), which rebuilt from
	// scratch.
	DiffFallbacks uint64
	// Unchanged counts plans served entirely from the retained result
	// (no area differed).
	Unchanged uint64
	// RelayoutNodeSum is the total number of tree nodes recomposed by
	// fast-path plans; RelayoutNodeSum / FastPath is the mean relayout
	// depth.
	RelayoutNodeSum uint64
	// Splices is the total number of retained subtrees grafted by
	// name-keyed diff plans.
	Splices uint64
}

// MeanRelayoutDepth is the mean number of recomposed tree nodes per
// fast-path plan.
func (s TreeStats) MeanRelayoutDepth() float64 {
	if s.FastPath == 0 {
		return 0
	}
	return float64(s.RelayoutNodeSum) / float64(s.FastPath)
}

// Add folds another counter snapshot into s (for aggregating per-worker
// trees).
func (s *TreeStats) Add(o TreeStats) {
	s.Rebuilds += o.Rebuilds
	s.FastPath += o.FastPath
	s.DiffFastPath += o.DiffFastPath
	s.Fallbacks += o.Fallbacks
	s.DiffFallbacks += o.DiffFallbacks
	s.Unchanged += o.Unchanged
	s.RelayoutNodeSum += o.RelayoutNodeSum
	s.Splices += o.Splices
}

// Plans returns the total number of Plan/Update calls the counters cover.
func (s TreeStats) Plans() uint64 {
	return s.FastPath + s.DiffFastPath + s.Unchanged + s.Fallbacks + s.DiffFallbacks + s.Rebuilds
}

// ReuseRate returns the fraction of reuse-eligible plans (every plan
// except the deliberate Rebuilds, which could never reuse retained
// state) that were served incrementally. This is the accurate hit rate:
// counting first builds and spacing/mode changes in the denominator
// would conflate "the guard declined" with "reuse was never possible".
func (s TreeStats) ReuseRate() float64 {
	eligible := s.FastPath + s.DiffFastPath + s.Unchanged + s.Fallbacks + s.DiffFallbacks
	if eligible == 0 {
		return 0
	}
	return float64(s.FastPath+s.DiffFastPath+s.Unchanged) / float64(eligible)
}

// String renders the one-line summary CLIs print under -progress (the
// single source of the format, so surfaces cannot drift).
func (s TreeStats) String() string {
	return fmt.Sprintf("incremental floorplan: %d fast-path / %d diff (%d splices) / %d unchanged / %d+%d fallbacks / %d rebuilds (%.1f%% reuse), mean relayout depth %.1f",
		s.FastPath, s.DiffFastPath, s.Splices, s.Unchanged, s.Fallbacks, s.DiffFallbacks, s.Rebuilds,
		100*s.ReuseRate(), s.MeanRelayoutDepth())
}

// Delta returns the counter increments since prev, an earlier snapshot
// of the same tree — how pooled scratches fold per-run work into an
// aggregate without double counting their history.
func (s TreeStats) Delta(prev TreeStats) TreeStats {
	return TreeStats{
		Rebuilds:        s.Rebuilds - prev.Rebuilds,
		FastPath:        s.FastPath - prev.FastPath,
		DiffFastPath:    s.DiffFastPath - prev.DiffFastPath,
		Fallbacks:       s.Fallbacks - prev.Fallbacks,
		DiffFallbacks:   s.DiffFallbacks - prev.DiffFallbacks,
		Unchanged:       s.Unchanged - prev.Unchanged,
		RelayoutNodeSum: s.RelayoutNodeSum - prev.RelayoutNodeSum,
		Splices:         s.Splices - prev.Splices,
	}
}

// tnode is one slicing-tree node. Leaves hold a single block; internal
// nodes compose their two children either side by side (horiz) or
// stacked, separated by the spacing constraint. Placements are not
// stored per node: a leaf's coordinates are replayed from the shift
// chain on demand.
type tnode struct {
	parent, left, right int // node indices; left/right are -1 for leaves
	lo, hi              int // leaf-order segment [lo, hi) of the subtree
	w, h                float64
	horiz               bool    // orientation of the chosen composition
	shift               float64 // lw+spacing (horiz) or lh+spacing (vert), applied to the right subtree
}

// Tree is a retained-mode incremental floorplanner. The zero value is
// ready to use: the first Plan call builds the retained state, and
// subsequent Plan or Update calls reuse every part of it the new areas
// leave valid. A Tree is NOT safe for concurrent use, and the Result it
// returns (including Placements and Adjacencies) is owned by the Tree
// and overwritten by the next call.
type Tree struct {
	spacing  float64
	needAdj  bool
	dimsOnly bool
	built    bool

	blocks []Block // caller order, current areas
	sorted []Block // sorted (pre-partition) order
	srcIdx []int   // sorted position -> caller index
	posOf  []int   // caller index -> sorted position

	// nodes[:nused] is the slicing tree; slots are recycled across
	// rebuilds.
	nodes   []tnode
	nused   int
	root    int
	leafOf  []int       // sorted position -> leaf node index
	leafPos []int       // sorted position -> leaf-order position
	areas   []float64   // current areas in sorted order (flat guard-loop copy)
	place   []Placement // final placements in leaf order (the replayed fold)
	path    []int       // dirty root-to-leaf path of the last update
	changed []int       // sorted positions whose area changed this round

	// Scratch buffers of the partition walks (build and guard share
	// them; both consume a buffer fully before recursing or descending,
	// the layoutSeg discipline).
	walkOrder []int // members as sorted positions, partitioned in place
	walkTmp   []int
	walkToA   []bool

	// Name-keyed diff state: the previous-generation node array the diff
	// grafts from, and the matching scratch buffers.
	nodesPrev   []tnode // double buffer: last generation's slicing tree
	matchOld    []int   // new caller index -> retained leaf-order pos, -1 if none
	matchNew    []int   // old caller index -> new caller index, -1 if none
	diffOldLeaf []int   // new sorted pos -> retained leaf-order pos, -1 if none
	survBuf     []int   // merge-repair scratch: clean survivors in old sorted order
	freshBuf    []int   // merge-repair scratch: inserted/dirty blocks by area

	// Adjacency state (needAdj mode only): the final placements of the
	// previous plan, per-leaf moved flags, and the pairwise verdict
	// cache indexed i*n+j in leaf order (i < j).
	prevPlace []Placement
	moved     []bool
	pairOK    []bool
	pairVal   []Adjacency
	adj       []Adjacency

	res   Result
	stats TreeStats
}

// Stats snapshots the tree's work counters.
func (t *Tree) Stats() TreeStats { return t.stats }

// Plan floorplans the blocks, reusing the retained tree when only block
// areas changed since the previous call (the dirty-path relayout) or
// when blocks were removed, inserted or renamed but some survive by
// name (the name-keyed diff, which splices the surviving subtrees). It
// is bit-identical to Scratch.Plan on every input.
func (t *Tree) Plan(blocks []Block, spacingMM float64) (*Result, error) {
	return t.plan(blocks, spacingMM, true, false)
}

// PlanNoAdjacencies is Plan skipping the adjacency scan (the returned
// Result has nil Adjacencies), mirroring Scratch.PlanNoAdjacencies.
func (t *Tree) PlanNoAdjacencies(blocks []Block, spacingMM float64) (*Result, error) {
	return t.plan(blocks, spacingMM, false, false)
}

// PlanDims is PlanNoAdjacencies skipping the placement replay too: the
// returned Result carries only the bounding box (WidthMM, HeightMM) and
// ChipletAreaMM2 — nil Placements, nil Adjacencies. The bounding box is
// composed by the identical float operations, so it is bit-identical to
// Plan's. Packaging models that consume only the package area (every
// architecture except silicon bridges) run on this mode: the placement
// fold and its per-leaf bookkeeping are the bulk of a retained plan's
// cost once the topology is reused.
func (t *Tree) PlanDims(blocks []Block, spacingMM float64) (*Result, error) {
	return t.plan(blocks, spacingMM, false, true)
}

func (t *Tree) plan(blocks []Block, spacingMM float64, needAdj, dimsOnly bool) (*Result, error) {
	if spacingMM == 0 {
		spacingMM = DefaultSpacingMM
	}
	total, err := validateBlocks(blocks, spacingMM)
	if err != nil {
		return nil, err
	}
	if !t.built || t.spacing != spacingMM || t.needAdj != needAdj || t.dimsOnly != dimsOnly {
		t.stats.Rebuilds++
		t.rebuild(blocks, spacingMM, needAdj, dimsOnly, total)
		return &t.res, nil
	}
	if !t.sameShape(blocks) {
		// The block set itself changed (removed, inserted or renamed
		// blocks): the name-keyed diff splices surviving subtrees; when
		// it declines, the rebuild is the from-scratch algorithm.
		if t.planDiff(blocks, total) {
			return &t.res, nil
		}
		t.stats.DiffFallbacks++
		t.rebuild(blocks, spacingMM, needAdj, dimsOnly, total)
		return &t.res, nil
	}
	t.changed = t.changed[:0]
	for i, b := range blocks {
		if t.blocks[i].AreaMM2 != b.AreaMM2 {
			t.blocks[i].AreaMM2 = b.AreaMM2
			sp := t.posOf[i]
			t.sorted[sp].AreaMM2 = b.AreaMM2
			t.areas[sp] = b.AreaMM2
			t.changed = append(t.changed, sp)
		}
	}
	if len(t.changed) == 0 {
		t.stats.Unchanged++
		return &t.res, nil
	}
	if t.update(total) {
		return &t.res, nil
	}
	t.stats.Fallbacks++
	t.rebuild(t.blocks, spacingMM, needAdj, dimsOnly, total)
	return &t.res, nil
}

// Update re-plans after a single block's area change — the Gray-step
// shape of a compiled sweep walk. blockIdx indexes the caller-order
// block list of the last Plan call. It verifies the retained topology
// still holds (falling back to a full rebuild when the new area flips
// the sorted order or a partition decision) and otherwise relayouts
// only the dirty leaf-to-root path.
func (t *Tree) Update(blockIdx int, areaMM2 float64) (*Result, error) {
	if !t.built {
		return nil, fmt.Errorf("floorplan: Tree.Update before Plan")
	}
	if blockIdx < 0 || blockIdx >= len(t.blocks) {
		return nil, fmt.Errorf("floorplan: Tree.Update block index %d outside [0, %d)", blockIdx, len(t.blocks))
	}
	if areaMM2 <= 0 {
		b := t.blocks[blockIdx]
		b.AreaMM2 = areaMM2
		return nil, errBlockArea(b)
	}
	if t.blocks[blockIdx].AreaMM2 == areaMM2 {
		t.stats.Unchanged++
		return &t.res, nil
	}
	t.blocks[blockIdx].AreaMM2 = areaMM2
	sp := t.posOf[blockIdx]
	t.sorted[sp].AreaMM2 = areaMM2
	t.areas[sp] = areaMM2
	// Re-sum the total in caller order: patching it by the area delta
	// would not carry the bits of the fresh in-order sum.
	total := 0.0
	for i := range t.blocks {
		total += t.blocks[i].AreaMM2
	}
	if t.updateOne(sp, total) {
		return &t.res, nil
	}
	t.stats.Fallbacks++
	t.rebuild(t.blocks, t.spacing, t.needAdj, t.dimsOnly, total)
	return &t.res, nil
}

// sameShape reports whether blocks matches the retained set in
// everything but areas.
func (t *Tree) sameShape(blocks []Block) bool {
	if len(blocks) != len(t.blocks) {
		return false
	}
	for i, b := range blocks {
		if b.Name != t.blocks[i].Name || b.AspectRatio != t.blocks[i].AspectRatio {
			return false
		}
	}
	return true
}

// sortedOrderOK reports whether the retained permutation is still what
// the stable sort by decreasing area would produce at positions
// [lo, hi): ties must order by ascending caller index.
func (t *Tree) sortedOrderOK(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.sorted)-1 {
		hi = len(t.sorted) - 1
	}
	for k := lo; k < hi; k++ {
		a, b := t.areas[k], t.areas[k+1]
		if a < b || (a == b && t.srcIdx[k] > t.srcIdx[k+1]) {
			return false
		}
	}
	return true
}

// updateOne is the single-changed-block incremental re-plan: an O(1)
// sorted-order check around the changed position, one partition-guard
// descent along the dirty root-to-leaf path, a bottom-up recompose of
// that path, and the placement replay. Returns false on any flip.
func (t *Tree) updateOne(sp int, total float64) bool {
	if !t.sortedOrderOK(sp-1, sp+1) {
		return false
	}
	if t.needAdj {
		t.prevPlace = append(t.prevPlace[:0], t.place...)
	}
	n := len(t.sorted)
	members := t.walkOrder[:n]
	for i := range members {
		members[i] = i
	}
	dirtyLeaf := t.leafOf[sp]
	dirtyPos := t.leafPos[sp]
	t.path = t.path[:0]
	ni := t.root
	for t.nodes[ni].left >= 0 {
		nd := &t.nodes[ni]
		split := t.nodes[nd.left].hi
		inLeft := dirtyPos < split
		var areaA, areaB float64
		keep := t.walkTmp[:0]
		for _, m := range members {
			goesA := areaA <= areaB
			mLeft := t.leafPos[m] < split
			if goesA != mLeft {
				return false
			}
			if goesA {
				areaA += t.areas[m]
			} else {
				areaB += t.areas[m]
			}
			if mLeft == inLeft {
				keep = append(keep, m)
			}
		}
		t.walkTmp, t.walkOrder = t.walkOrder, t.walkTmp
		members = keep
		t.path = append(t.path, ni)
		if inLeft {
			ni = nd.left
		} else {
			ni = nd.right
		}
	}
	// The guard passed: refresh the leaf dims and recompose the path
	// bottom-up.
	b := &t.sorted[sp]
	w, h := b.dims()
	leaf := &t.nodes[dirtyLeaf]
	leaf.w, leaf.h = w, h
	for i := len(t.path) - 1; i >= 0; i-- {
		t.compose(t.path[i])
	}
	t.stats.FastPath++
	t.stats.RelayoutNodeSum += uint64(len(t.path))
	t.finishResult(total)
	return true
}

// update is the general multi-change incremental re-plan used by the
// Plan diff: a full sorted-order check and a recursive guard walk over
// the union of dirty paths.
func (t *Tree) update(total float64) bool {
	if !t.sortedOrderOK(0, len(t.sorted)-1) {
		return false
	}
	if t.needAdj {
		t.prevPlace = append(t.prevPlace[:0], t.place...)
	}
	order := t.walkOrder[:len(t.sorted)]
	for i := range order {
		order[i] = i
	}
	relayouts := 0
	if !t.incrementalNode(t.root, order, &relayouts) {
		return false
	}
	t.stats.FastPath++
	t.stats.RelayoutNodeSum += uint64(relayouts)
	t.finishResult(total)
	return true
}

// incrementalNode verifies node ni's cached partition over seg — the
// subtree's members as sorted positions in ascending order, which IS
// the pre-partition order (every partition is stable, so each node
// receives its members in the globally sorted order) — recurses into
// dirty children, and recomposes the node. It returns false on any
// partition flip.
func (t *Tree) incrementalNode(ni int, seg []int, relayouts *int) bool {
	nd := &t.nodes[ni]
	if nd.left < 0 {
		b := &t.sorted[seg[0]]
		nd.w, nd.h = b.dims()
		return true
	}
	split := t.nodes[nd.left].hi
	na := 0
	var areaA, areaB float64
	toA := t.walkToA[:len(seg)]
	for i, sp := range seg {
		goesA := areaA <= areaB
		if goesA != (t.leafPos[sp] < split) {
			return false
		}
		toA[i] = goesA
		if goesA {
			areaA += t.areas[sp]
			na++
		} else {
			areaB += t.areas[sp]
		}
	}
	// Stable in-place partition of seg (the layoutSeg trick), so the
	// children see their members in ascending sorted order too.
	tmp := t.walkTmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, sp := range tmp {
		if toA[i] {
			seg[ia] = sp
			ia++
		} else {
			seg[ib] = sp
			ib++
		}
	}
	if t.rangeDirty(nd.lo, split) && !t.incrementalNode(nd.left, seg[:na], relayouts) {
		return false
	}
	if t.rangeDirty(split, nd.hi) && !t.incrementalNode(nd.right, seg[na:], relayouts) {
		return false
	}
	t.compose(ni)
	*relayouts++
	return true
}

// rangeDirty reports whether any changed block's leaf-order position
// falls in [lo, hi).
func (t *Tree) rangeDirty(lo, hi int) bool {
	for _, sp := range t.changed {
		if p := t.leafPos[sp]; p >= lo && p < hi {
			return true
		}
	}
	return false
}

// compose recomputes an internal node's dimensions, orientation and
// shift from its children — the exact float expressions of layoutSeg's
// composition step, in the same order.
func (t *Tree) compose(ni int) {
	nd := &t.nodes[ni]
	l, r := &t.nodes[nd.left], &t.nodes[nd.right]
	lw, lh := l.w, l.h
	rw, rh := r.w, r.h
	hw := lw + t.spacing + rw
	// Inline max: dims are positive reals (validated areas), so the
	// branch picks the same bits math.Max would without its NaN/±0
	// prologue.
	hh := lh
	if rh > hh {
		hh = rh
	}
	vw := lw
	if rw > vw {
		vw = rw
	}
	vh := lh + t.spacing + rh
	if hw*hh <= vw*vh {
		nd.horiz = true
		nd.shift = lw + t.spacing
		nd.w, nd.h = hw, hh
	} else {
		nd.horiz = false
		nd.shift = lh + t.spacing
		nd.w, nd.h = vw, vh
	}
}

// replayPlacements derives every leaf's final placement by folding its
// ancestors' shifts in leaf-to-root order — the exact addition sequence
// the in-place layout applies as its recursion unwinds. Names are
// pre-filled at rebuild (the leaf order is fixed until then), so the
// hot path writes only the four coordinate fields.
func (t *Tree) replayPlacements() {
	for sp := range t.sorted {
		li := t.leafOf[sp]
		nd := &t.nodes[li]
		x, y := 0.0, 0.0
		cur := li
		for a := nd.parent; a >= 0; a = t.nodes[a].parent {
			pa := &t.nodes[a]
			if pa.right == cur {
				if pa.horiz {
					x += pa.shift
				} else {
					y += pa.shift
				}
			}
			cur = a
		}
		pl := &t.place[t.leafPos[sp]]
		pl.X, pl.Y, pl.Width, pl.Height = x, y, nd.w, nd.h
	}
}

// allocNode takes the next recycled tree-node slot.
func (t *Tree) allocNode(parent int) int {
	if t.nused == len(t.nodes) {
		t.nodes = append(t.nodes, tnode{})
	}
	ni := t.nused
	t.nused++
	t.nodes[ni] = tnode{parent: parent, left: -1, right: -1}
	return ni
}

// rebuild runs the from-scratch algorithm and repopulates every retained
// cache. blocks may alias t.blocks (the fallback path).
func (t *Tree) rebuild(blocks []Block, spacing float64, needAdj, dimsOnly bool, total float64) {
	n := len(blocks)
	t.spacing, t.needAdj, t.dimsOnly = spacing, needAdj, dimsOnly
	if len(t.blocks) != n || &t.blocks[0] != &blocks[0] {
		t.blocks = append(t.blocks[:0], blocks...)
	}
	t.sizeBuffers(n)
	t.resort(n)

	t.nused = 0
	order := t.walkOrder[:n]
	for i := range order {
		order[i] = i
	}
	nextLeaf := 0
	t.root = t.build(order, -1, &nextLeaf)
	t.fillLeafMeta()

	if needAdj {
		t.sizeAdj(n)
		moved := t.moved[:n]
		for i := range moved {
			moved[i] = true // every pair rescans on a rebuild
		}
		// A stale snapshot must not mark rebuilt leaves unmoved: the
		// leaf order may have changed, so the pair cache is void.
		t.prevPlace = t.prevPlace[:0]
	}
	t.built = true
	t.res = Result{}
	if !t.dimsOnly {
		t.res.Placements = t.place
	}
	t.finishResult(total)
}

// sizeBuffers grows the retained per-block buffers to n and re-slices
// the length-dependent ones.
func (t *Tree) sizeBuffers(n int) {
	if cap(t.srcIdx) < n {
		t.srcIdx = make([]int, n)
		t.posOf = make([]int, n)
		t.leafOf = make([]int, n)
		t.leafPos = make([]int, n)
		t.areas = make([]float64, n)
		t.place = make([]Placement, n)
		t.walkOrder = make([]int, n)
		t.walkTmp = make([]int, n)
		t.walkToA = make([]bool, n)
	}
	// A slicing tree over n leaves holds exactly 2n-1 nodes; presizing
	// both generations spares allocNode the append-doubling churn.
	if cap(t.nodes) < 2*n-1 {
		t.nodes = append(make([]tnode, 0, 2*n-1), t.nodes...)
	}
	if cap(t.nodesPrev) < 2*n-1 {
		t.nodesPrev = append(make([]tnode, 0, 2*n-1), t.nodesPrev...)
	}
	t.place = t.place[:n]
	t.leafPos = t.leafPos[:n]
	t.areas = t.areas[:n]
}

// resort derives the sorted permutation of t.blocks[:n]: the stable
// insertion sort by decreasing area of sortBlocksByArea carrying the
// caller index, so the permutation is the one Scratch.Plan produces.
func (t *Tree) resort(n int) {
	src := t.srcIdx[:n]
	for i := range src {
		src[i] = i
	}
	t.sorted = append(t.sorted[:0], t.blocks...)
	sorted := t.sorted
	for i := 1; i < n; i++ {
		b, s := sorted[i], src[i]
		j := i - 1
		for j >= 0 && sorted[j].AreaMM2 < b.AreaMM2 {
			sorted[j+1], src[j+1] = sorted[j], src[j]
			j--
		}
		sorted[j+1], src[j+1] = b, s
	}
	posOf := t.posOf[:n]
	for pos, i := range src {
		posOf[i] = pos
	}
	for pos := range sorted {
		t.areas[pos] = sorted[pos].AreaMM2
	}
}

// fillLeafMeta derives the sorted-pos -> leaf-order map from the built
// tree and pre-fills the placement names in leaf order (dims-only
// plans keep just the map — they never materialize placements).
func (t *Tree) fillLeafMeta() {
	if t.dimsOnly {
		for sp := range t.sorted {
			t.leafPos[sp] = t.nodes[t.leafOf[sp]].lo
		}
		return
	}
	for sp := range t.sorted {
		pos := t.nodes[t.leafOf[sp]].lo
		t.leafPos[sp] = pos
		t.place[pos].Name = t.sorted[sp].Name
	}
}

// sizeAdj grows the adjacency pair cache to n leaves.
func (t *Tree) sizeAdj(n int) {
	if cap(t.pairOK) < n*n {
		t.pairOK = make([]bool, n*n)
		t.pairVal = make([]Adjacency, n*n)
	}
	if cap(t.moved) < n {
		t.moved = make([]bool, n)
	}
}

// build constructs the subtree over seg (members as sorted positions in
// pre-partition order; permuted in place exactly like layoutSeg) and
// returns its node index. Leaf-order positions are assigned in DFS
// order, matching the in-place permutation of the fused layout.
func (t *Tree) build(seg []int, parent int, nextLeaf *int) int {
	ni := t.allocNode(parent)
	if len(seg) == 1 {
		sp := seg[0]
		lo := *nextLeaf
		*nextLeaf = lo + 1
		b := &t.sorted[sp]
		w, h := b.dims()
		nd := &t.nodes[ni]
		nd.lo, nd.hi = lo, lo+1
		nd.w, nd.h = w, h
		t.leafOf[sp] = ni
		return ni
	}
	na := 0
	var areaA, areaB float64
	toA := t.walkToA[:len(seg)]
	for i, sp := range seg {
		if areaA <= areaB {
			toA[i] = true
			areaA += t.sorted[sp].AreaMM2
			na++
		} else {
			toA[i] = false
			areaB += t.sorted[sp].AreaMM2
		}
	}
	tmp := t.walkTmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, sp := range tmp {
		if toA[i] {
			seg[ia] = sp
			ia++
		} else {
			seg[ib] = sp
			ib++
		}
	}
	left := t.build(seg[:na], ni, nextLeaf)
	right := t.build(seg[na:], ni, nextLeaf)
	nd := &t.nodes[ni] // re-take: t.nodes may have grown
	nd.left, nd.right = left, right
	nd.lo, nd.hi = t.nodes[left].lo, t.nodes[right].hi
	t.compose(ni)
	return ni
}

// planDiff serves a shape-changed Plan through the name-keyed diff. The
// new tree is constructed by the from-scratch recursion — fresh stable
// sort, fresh area-balanced partition decisions — but any segment whose
// members are all clean survivors of the retained plan (same name, area
// and aspect ratio) occupying, in order, a contiguous retained leaf
// interval that is exactly a retained subtree is grafted: the subtree's
// node structs (leaf dims, orientations, shifts) are copied instead of
// recomputed. A grafted segment holds the identical ordered block list
// the retained recursion partitioned, so re-running the recursion would
// reproduce the copied values float for float — the result is
// bit-identical to a full rebuild by construction, with no speculative
// guard to fall back from. planDiff declines (returning false with the
// tree untouched) only when no retained block survives by name.
//
// Matching is an ordered two-pointer scan, not a map: the shapes this
// diff serves (Disaggregate candidates, merge deltas) preserve the
// survivors' relative caller order, and for the handful of blocks a
// package holds, bounded string compares beat map hashing. A survivor
// the scan misses (a caller-order permutation, a duplicate name) just
// matches fewer leaves — fewer grafts, never a wrong plan, because a
// graft's correctness rests on the verified (area, aspect) equality of
// its members, not on how they were found.
func (t *Tree) planDiff(blocks []Block, total float64) bool {
	n := len(blocks)
	if cap(t.matchOld) < n {
		t.matchOld = make([]int, n)
		t.diffOldLeaf = make([]int, n)
		t.survBuf = make([]int, n)
		t.freshBuf = make([]int, n)
	}
	if cap(t.matchNew) < len(t.blocks) {
		t.matchNew = make([]int, len(t.blocks))
	}
	matchOld := t.matchOld[:n]
	matchNew := t.matchNew[:len(t.blocks)]
	for j := range matchNew {
		matchNew[j] = -1
	}
	survivors := 0
	old := t.blocks
	oc := 0 // old cursor: survivors match in caller order
	for i := range blocks {
		matchOld[i] = -1
		b := &blocks[i]
		for j := oc; j < len(old); j++ {
			if old[j].Name == b.Name {
				if old[j].AreaMM2 == b.AreaMM2 && old[j].AspectRatio == b.AspectRatio {
					matchOld[i] = t.leafPos[t.posOf[j]]
					matchNew[j] = i
					survivors++
				}
				oc = j + 1
				break
			}
		}
	}
	if survivors == 0 {
		return false
	}
	t.stats.DiffFastPath++
	t.rebuildDiff(blocks, total)
	return true
}

// rebuildDiff is the diff-plan body: the rebuild scaffolding with the
// node array double-buffered (grafts read the previous generation) and
// the build recursion replaced by the grafting buildDiff. matchOld must
// already hold the per-new-caller-index retained leaf positions.
func (t *Tree) rebuildDiff(blocks []Block, total float64) {
	n := len(blocks)
	if t.needAdj {
		// With an unchanged leaf count the moved-rectangle detection can
		// keep verdicts of pairs whose placements (and names) survive; a
		// changed count shifts the pair indexing, voiding the cache.
		if n == len(t.place) {
			t.prevPlace = append(t.prevPlace[:0], t.place...)
		} else {
			t.prevPlace = t.prevPlace[:0]
		}
	}
	prevRoot := t.root
	t.nodes, t.nodesPrev = t.nodesPrev, t.nodes

	// Merge-repair the sorted permutation instead of re-sorting: clean
	// survivors read off the retained order are already sorted among
	// themselves (their areas are unchanged and the ordered matcher
	// preserves their relative caller order, so ties keep breaking the
	// same way), and only the inserted/dirty blocks need a fresh sort.
	// The merge comparator is the stable sort's total order (area
	// descending, caller index ascending), so the merged permutation is
	// exactly the one resort would produce.
	surv := t.survBuf[:0]
	for sp := 0; sp < len(t.blocks); sp++ {
		if i := t.matchNew[t.srcIdx[sp]]; i >= 0 {
			surv = append(surv, i)
		}
	}
	fresh := t.freshBuf[:0]
	for i := range blocks {
		if t.matchOld[i] < 0 {
			fresh = append(fresh, i)
		}
	}
	// Stable insertion sort of the fresh blocks by decreasing area
	// (collected in caller order, so ties keep ascending caller index).
	for i := 1; i < len(fresh); i++ {
		f := fresh[i]
		a := blocks[f].AreaMM2
		j := i - 1
		for j >= 0 && blocks[fresh[j]].AreaMM2 < a {
			fresh[j+1] = fresh[j]
			j--
		}
		fresh[j+1] = f
	}

	t.blocks = append(t.blocks[:0], blocks...)
	t.sizeBuffers(n)
	t.sorted = t.sorted[:0]
	src := t.srcIdx[:n]
	si, fi := 0, 0
	for k := 0; k < n; k++ {
		var pick int
		switch {
		case si == len(surv):
			pick = fresh[fi]
			fi++
		case fi == len(fresh):
			pick = surv[si]
			si++
		default:
			s, f := surv[si], fresh[fi]
			sa, fa := t.blocks[s].AreaMM2, t.blocks[f].AreaMM2
			if sa > fa || (sa == fa && s < f) {
				pick = s
				si++
			} else {
				pick = f
				fi++
			}
		}
		t.sorted = append(t.sorted, t.blocks[pick])
		src[k] = pick
	}
	posOf := t.posOf[:n]
	for pos, i := range src {
		posOf[i] = pos
	}
	for pos := range t.sorted {
		t.areas[pos] = t.sorted[pos].AreaMM2
	}
	diffOldLeaf := t.diffOldLeaf[:n]
	for pos, i := range src {
		diffOldLeaf[pos] = t.matchOld[i]
	}

	t.nused = 0
	order := t.walkOrder[:n]
	for i := range order {
		order[i] = i
	}
	nextLeaf := 0
	t.root = t.buildDiff(order, -1, &nextLeaf, prevRoot)
	t.fillLeafMeta()

	if t.needAdj {
		t.sizeAdj(n)
		if len(t.prevPlace) != n {
			moved := t.moved[:n]
			for i := range moved {
				moved[i] = true
			}
		}
	}
	t.res = Result{}
	if !t.dimsOnly {
		t.res.Placements = t.place
	}
	t.finishResult(total)
}

// buildDiff is build with subtree grafting: before partitioning a
// segment it checks whether the members are clean survivors covering, in
// order, exactly one retained subtree's leaf interval, and copies that
// subtree instead of recursing. Non-grafted segments run the exact
// from-scratch partition/compose math on the new areas.
func (t *Tree) buildDiff(seg []int, parent int, nextLeaf *int, prevRoot int) int {
	// Endpoint check first: segments holding a removed/inserted/dirty
	// block or a split retained interval almost always fail at the ends,
	// so the O(len) middle scan runs only on near-matches.
	if first := t.diffOldLeaf[seg[0]]; first >= 0 && t.diffOldLeaf[seg[len(seg)-1]] == first+len(seg)-1 {
		contiguous := true
		for k := 1; k < len(seg)-1; k++ {
			if t.diffOldLeaf[seg[k]] != first+k {
				contiguous = false
				break
			}
		}
		if contiguous {
			if oi := nodeSpanning(t.nodesPrev, prevRoot, first, first+len(seg)); oi >= 0 {
				base := *nextLeaf
				ni := t.graft(oi, parent, first, base, seg)
				*nextLeaf = base + len(seg)
				t.stats.Splices++
				return ni
			}
		}
	}
	ni := t.allocNode(parent)
	if len(seg) == 1 {
		sp := seg[0]
		lo := *nextLeaf
		*nextLeaf = lo + 1
		b := &t.sorted[sp]
		w, h := b.dims()
		nd := &t.nodes[ni]
		nd.lo, nd.hi = lo, lo+1
		nd.w, nd.h = w, h
		t.leafOf[sp] = ni
		return ni
	}
	na := 0
	var areaA, areaB float64
	toA := t.walkToA[:len(seg)]
	for i, sp := range seg {
		if areaA <= areaB {
			toA[i] = true
			areaA += t.sorted[sp].AreaMM2
			na++
		} else {
			toA[i] = false
			areaB += t.sorted[sp].AreaMM2
		}
	}
	tmp := t.walkTmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, sp := range tmp {
		if toA[i] {
			seg[ia] = sp
			ia++
		} else {
			seg[ib] = sp
			ib++
		}
	}
	left := t.buildDiff(seg[:na], ni, nextLeaf, prevRoot)
	right := t.buildDiff(seg[na:], ni, nextLeaf, prevRoot)
	nd := &t.nodes[ni] // re-take: t.nodes may have grown
	nd.left, nd.right = left, right
	nd.lo, nd.hi = t.nodes[left].lo, t.nodes[right].hi
	t.compose(ni)
	return ni
}

// nodeSpanning descends a slicing tree from ni for a node whose leaf
// segment is exactly [lo, hi), or -1. The intervals form a laminar
// binary family, so the descent is O(depth).
func nodeSpanning(nodes []tnode, ni, lo, hi int) int {
	for {
		nd := &nodes[ni]
		if nd.lo == lo && nd.hi == hi {
			return ni
		}
		if nd.left < 0 {
			return -1
		}
		split := nodes[nd.left].hi
		switch {
		case hi <= split:
			ni = nd.left
		case lo >= split:
			ni = nd.right
		default:
			return -1
		}
	}
}

// ForkDims evaluates the bounding box a Plan of the retained block set
// with the blocks at caller indices r1 and r2 removed and extra
// appended would produce — the merge-candidate shape of a Disaggregate
// greedy step — WITHOUT disturbing the retained plan. Every candidate
// of a step can fork against the same pinned base tree: the evaluation
// is a pure fold that derives the candidate's sorted order from the
// retained permutation, recomputes the partition decisions with the
// candidate's areas, reads surviving leaf dimensions off the pinned
// leaves (no sqrt), and returns a whole pinned subtree's composed
// dimensions in O(1) wherever a segment is exactly a retained subtree
// of survivors. Non-grafted segments run the exact from-scratch
// partition and composition float math, so the returned box is
// bit-identical to a from-scratch plan of the candidate, and nothing is
// written back — the next fork sees the same base.
//
// It counts toward DiffFastPath and Splices like committed diff plans
// (it is the same remove/insert diff, minus the commit).
func (t *Tree) ForkDims(r1, r2 int, extra Block) (wMM, hMM, totalMM2 float64, err error) {
	if !t.built {
		return 0, 0, 0, fmt.Errorf("floorplan: Tree.ForkDims before Plan")
	}
	n := len(t.blocks)
	if r1 > r2 {
		r1, r2 = r2, r1
	}
	if r1 < 0 || r2 >= n || r1 == r2 {
		return 0, 0, 0, fmt.Errorf("floorplan: Tree.ForkDims removed indices (%d, %d) invalid for %d blocks", r1, r2, n)
	}
	if extra.AreaMM2 <= 0 {
		return 0, 0, 0, errBlockArea(extra)
	}
	// The candidate's block-area total, in its caller order (survivors
	// first, extra appended) — the exact bits of the from-scratch sum.
	total := 0.0
	for i := range t.blocks {
		if i != r1 && i != r2 {
			total += t.blocks[i].AreaMM2
		}
	}
	total += extra.AreaMM2
	ew, eh := extra.dims()
	if n == 2 {
		return ew, eh, total, nil
	}
	// The candidate's sorted order: the retained permutation minus the
	// removed blocks, with extra — the highest caller index, so it sorts
	// after every surviving block of equal or larger area — merge-
	// inserted before the first survivor of strictly smaller area.
	// Entries are retained sorted positions; n is the extra's sentinel.
	rp1, rp2 := t.posOf[r1], t.posOf[r2]
	order := t.walkOrder[:0]
	inserted := false
	for sp := 0; sp < n; sp++ {
		if sp == rp1 || sp == rp2 {
			continue
		}
		if !inserted && t.areas[sp] < extra.AreaMM2 {
			order = append(order, n)
			inserted = true
		}
		order = append(order, sp)
	}
	if !inserted {
		order = append(order, n)
	}
	t.stats.DiffFastPath++
	w, h := t.forkSeg(order, extra.AreaMM2, ew, eh)
	return w, h, total, nil
}

// forkSeg is ForkDims' recursive fold over seg (candidate members in
// candidate-sorted order, permuted in place like layoutSeg): the
// from-scratch partition and composition math over the candidate areas,
// with pinned leaf dims for survivors and whole pinned subtrees grafted
// in O(1).
func (t *Tree) forkSeg(seg []int, eArea, eW, eH float64) (w, h float64) {
	sentinel := len(t.blocks)
	if len(seg) == 1 {
		if seg[0] == sentinel {
			return eW, eH
		}
		nd := &t.nodes[t.leafOf[seg[0]]]
		return nd.w, nd.h
	}
	// Graft check (endpoints first): all members survivors occupying a
	// contiguous pinned leaf interval that is exactly a pinned subtree.
	if f := seg[0]; f != sentinel {
		last := seg[len(seg)-1]
		first := t.leafPos[f]
		if last != sentinel && t.leafPos[last] == first+len(seg)-1 {
			ok := true
			for k := 1; k < len(seg)-1; k++ {
				e := seg[k]
				if e == sentinel || t.leafPos[e] != first+k {
					ok = false
					break
				}
			}
			if ok {
				if ni := nodeSpanning(t.nodes, t.root, first, first+len(seg)); ni >= 0 {
					t.stats.Splices++
					nd := &t.nodes[ni]
					return nd.w, nd.h
				}
			}
		}
	}
	na := 0
	var areaA, areaB float64
	toA := t.walkToA[:len(seg)]
	for i, e := range seg {
		a := eArea
		if e != sentinel {
			a = t.areas[e]
		}
		if areaA <= areaB {
			toA[i] = true
			areaA += a
			na++
		} else {
			toA[i] = false
			areaB += a
		}
	}
	tmp := t.walkTmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, e := range tmp {
		if toA[i] {
			seg[ia] = e
			ia++
		} else {
			seg[ib] = e
			ib++
		}
	}
	lw, lh := t.forkSeg(seg[:na], eArea, eW, eH)
	rw, rh := t.forkSeg(seg[na:], eArea, eW, eH)
	// The exact composition expressions of compose/layoutSeg.
	hw := lw + t.spacing + rw
	hh := lh
	if rh > hh {
		hh = rh
	}
	vw := lw
	if rw > vw {
		vw = rw
	}
	vh := lh + t.spacing + rh
	if hw*hh <= vw*vh {
		return hw, hh
	}
	return vw, vh
}

// graft clones the previous-generation subtree oi into the new node
// array, translating its leaf interval from oldLo to base. seg maps the
// subtree's leaves (in leaf order) back to their new sorted positions so
// leafOf stays consistent.
func (t *Tree) graft(oi, parent, oldLo, base int, seg []int) int {
	ni := t.allocNode(parent)
	od := t.nodesPrev[oi]
	nd := &t.nodes[ni]
	nd.w, nd.h, nd.horiz, nd.shift = od.w, od.h, od.horiz, od.shift
	nd.lo, nd.hi = od.lo-oldLo+base, od.hi-oldLo+base
	if od.left < 0 {
		t.leafOf[seg[od.lo-oldLo]] = ni
		return ni
	}
	left := t.graft(od.left, ni, oldLo, base, seg)
	right := t.graft(od.right, ni, oldLo, base, seg)
	nd = &t.nodes[ni] // re-take: t.nodes may have grown
	nd.left, nd.right = left, right
	return ni
}

// finishResult replays the placements, refreshes the Result's scalars
// in place (the Placements header is wired at rebuild) and, in
// adjacency mode, rescans the pairs involving moved rectangles.
func (t *Tree) finishResult(total float64) {
	if !t.dimsOnly {
		t.replayPlacements()
	}
	root := &t.nodes[t.root]
	t.res.WidthMM = root.w
	t.res.HeightMM = root.h
	t.res.ChipletAreaMM2 = total
	if !t.needAdj {
		return
	}
	n := len(t.place)
	moved := t.moved[:n]
	if len(t.prevPlace) == n {
		for i, p := range t.place {
			q := t.prevPlace[i]
			// The name comparison matters after a name-keyed diff: a new
			// block can land on an old block's exact rectangle, and the
			// cached pair verdicts carry names.
			moved[i] = p.Name != q.Name ||
				math.Float64bits(p.X) != math.Float64bits(q.X) ||
				math.Float64bits(p.Y) != math.Float64bits(q.Y) ||
				math.Float64bits(p.Width) != math.Float64bits(q.Width) ||
				math.Float64bits(p.Height) != math.Float64bits(q.Height)
		}
		t.prevPlace = t.prevPlace[:0]
	}
	const eps = 1e-9
	maxGap := t.spacing + eps
	t.adj = t.adj[:0]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx := i*n + j
			if moved[i] || moved[j] {
				t.pairVal[idx], t.pairOK[idx] = facing(t.place[i], t.place[j], maxGap)
			}
			if t.pairOK[idx] {
				t.adj = append(t.adj, t.pairVal[idx])
			}
		}
	}
	t.adj = sortAdjacencies(t.adj)
	t.res.Adjacencies = t.adj
}

package mfg

import (
	"math"
	"testing"
	"testing/quick"

	"ecochip/internal/tech"
	"ecochip/internal/wafer"
	"ecochip/internal/yieldmodel"
)

func n7() *tech.Node { return tech.Default().MustGet(7) }

func TestDieKnownValue(t *testing.T) {
	// Hand computation for a 100 mm^2 (1 cm^2) logic die at 7nm with
	// wastage disabled:
	//   raw = eta_eq*Csrc*EPA + gas + material
	//       = 1.0*0.7*3.5 + 0.40 + 0.5 = 3.35 kg/cm^2
	//   Y   = (1 + 1*0.2/3)^-3
	//   C   = 3.35 / Y * 1 cm^2
	p := DefaultParams()
	p.IncludeWastage = false
	res, err := Die(n7(), tech.Logic, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	wantY := math.Pow(1+0.2/3, -3)
	if math.Abs(res.Yield-wantY) > 1e-12 {
		t.Errorf("yield = %g, want %g", res.Yield, wantY)
	}
	want := 3.35 / wantY
	if math.Abs(res.TotalKg()-want) > 1e-9 {
		t.Errorf("TotalKg = %g, want %g", res.TotalKg(), want)
	}
	if res.WastageKg != 0 {
		t.Errorf("wastage disabled but WastageKg = %g", res.WastageKg)
	}
}

func TestDieWastageTerm(t *testing.T) {
	p := DefaultParams()
	res, err := Die(n7(), tech.Logic, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.WastageKg <= 0 {
		t.Fatal("wastage term should be positive")
	}
	// The wastage term is raw (unyielded) carbon on the wasted area.
	wasted, err := p.Wafer.WastedAreaPerDie(100)
	if err != nil {
		t.Fatal(err)
	}
	raw := 1.0*0.7*3.5 + 0.40 + 0.5
	want := raw * wasted / 100
	if math.Abs(res.WastageKg-want) > 1e-9 {
		t.Errorf("WastageKg = %g, want %g", res.WastageKg, want)
	}
	if res.DiesPerWafer != p.Wafer.DiesPerWafer(100) {
		t.Errorf("DiesPerWafer = %d, want %d", res.DiesPerWafer, p.Wafer.DiesPerWafer(100))
	}
}

func TestDieErrors(t *testing.T) {
	p := DefaultParams()
	if _, err := Die(n7(), tech.Logic, 0, p); err == nil {
		t.Error("zero area should fail")
	}
	bad := p
	bad.CarbonIntensity = 5
	if _, err := Die(n7(), tech.Logic, 100, bad); err == nil {
		t.Error("out-of-range carbon intensity should fail")
	}
	bad = p
	bad.Alpha = 0
	if _, err := Die(n7(), tech.Logic, 100, bad); err == nil {
		t.Error("zero alpha should fail")
	}
	bad = p
	bad.DefectDensityOverride = 0.9
	if _, err := Die(n7(), tech.Logic, 100, bad); err == nil {
		t.Error("out-of-range defect override should fail")
	}
	bad = p
	bad.Wafer = wafer.Wafer{DiameterMM: 10}
	if _, err := Die(n7(), tech.Logic, 100, bad); err == nil {
		t.Error("invalid wafer should fail")
	}
	// Die larger than the wafer's usable region.
	small := p
	small.Wafer = wafer.Wafer{DiameterMM: 25}
	if _, err := Die(n7(), tech.Logic, 2500, small); err == nil {
		t.Error("oversized die should fail when wastage is modeled")
	}
}

func TestDefectDensityOverride(t *testing.T) {
	p := DefaultParams()
	p.IncludeWastage = false
	p.DefectDensityOverride = 0.3
	res, err := Die(n7(), tech.Logic, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	want := yieldmodel.Die(100, 0.3)
	if math.Abs(res.Yield-want) > 1e-12 {
		t.Errorf("yield with override = %g, want %g", res.Yield, want)
	}
}

// Fig. 2(a): manufacturing CFP grows super-linearly with area because of
// yield loss.
func TestCFPSuperlinearInArea(t *testing.T) {
	p := DefaultParams()
	p.IncludeWastage = false
	n := tech.Default().MustGet(10)
	c100, err := Die(n, tech.Logic, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	c200, err := Die(n, tech.Logic, 200, p)
	if err != nil {
		t.Fatal(err)
	}
	if c200.TotalKg() <= 2*c100.TotalKg() {
		t.Errorf("CFP(200mm^2)=%g should exceed 2*CFP(100mm^2)=%g (yield superlinearity)",
			c200.TotalKg(), 2*c100.TotalKg())
	}
}

// Renewable fabs have strictly lower manufacturing carbon than coal fabs.
func TestEnergySourceMatters(t *testing.T) {
	coal, renewable := DefaultParams(), DefaultParams()
	renewable.CarbonIntensity = IntensityRenewable
	rc, err := Die(n7(), tech.Logic, 100, coal)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Die(n7(), tech.Logic, 100, renewable)
	if err != nil {
		t.Fatal(err)
	}
	if rr.TotalKg() >= rc.TotalKg() {
		t.Errorf("renewable CFP %g should be below coal CFP %g", rr.TotalKg(), rc.TotalKg())
	}
	// Gas and material terms remain, so the ratio is bounded away from
	// the intensity ratio alone.
	if rr.TotalKg() < rc.TotalKg()*IntensityRenewable/IntensityCoal {
		t.Error("non-energy CFP terms should survive a renewable grid")
	}
}

// Property: manufacturing carbon is positive and monotone increasing in
// area for all nodes and design types.
func TestMonotoneInArea(t *testing.T) {
	p := DefaultParams()
	db := tech.Default()
	f := func(a uint16, nodeIdx, dt uint8) bool {
		sizes := db.Sizes()
		n := db.MustGet(sizes[int(nodeIdx)%len(sizes)])
		d := tech.DesignTypes[int(dt)%len(tech.DesignTypes)]
		area := float64(a%600) + 1
		r1, err1 := Die(n, d, area, p)
		r2, err2 := Die(n, d, area+10, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.TotalKg() > 0 && r2.TotalKg() > r1.TotalKg()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// CFPA (per-area carbon) must be lower for older nodes at equal area: they
// have lower EPA, lower defects, lower equipment derate (Section II-A(2)).
func TestOlderNodesCheaperPerArea(t *testing.T) {
	p := DefaultParams()
	p.IncludeWastage = false
	db := tech.Default()
	sizes := db.Sizes()
	for i := 1; i < len(sizes); i++ {
		newer, err := Die(db.MustGet(sizes[i-1]), tech.Logic, 100, p)
		if err != nil {
			t.Fatal(err)
		}
		older, err := Die(db.MustGet(sizes[i]), tech.Logic, 100, p)
		if err != nil {
			t.Fatal(err)
		}
		if older.CFPAKgPerCM2 >= newer.CFPAKgPerCM2 {
			t.Errorf("CFPA at %dnm (%g) should be below %dnm (%g)",
				sizes[i], older.CFPAKgPerCM2, sizes[i-1], newer.CFPAKgPerCM2)
		}
	}
}

// But the same *transistor budget* in an older node may cost more because
// the area balloons: the tradeoff ECO-CHIP exists to navigate. Verify the
// crossover exists for logic: 65nm logic die carbon for a large block
// exceeds the 7nm version.
func TestNodeAreaTradeoffForLogic(t *testing.T) {
	p := DefaultParams()
	p.IncludeWastage = false
	db := tech.Default()
	const transistors = 10e9
	new7, err := DieForTransistors(db.MustGet(7), tech.Logic, transistors, p)
	if err != nil {
		t.Fatal(err)
	}
	old65, err := DieForTransistors(db.MustGet(65), tech.Logic, transistors, p)
	if err != nil {
		t.Fatal(err)
	}
	if old65.TotalKg() <= new7.TotalKg() {
		t.Errorf("10B logic transistors at 65nm (%g kg) should out-emit 7nm (%g kg): area blow-up dominates",
			old65.TotalKg(), new7.TotalKg())
	}
	// Analog barely scales, so moving analog to an older node should be
	// roughly area-neutral and carbon-cheaper.
	newA, err := DieForTransistors(db.MustGet(7), tech.Analog, 1e9, p)
	if err != nil {
		t.Fatal(err)
	}
	oldA, err := DieForTransistors(db.MustGet(14), tech.Analog, 1e9, p)
	if err != nil {
		t.Fatal(err)
	}
	if oldA.TotalKg() >= newA.TotalKg() {
		t.Errorf("analog at 14nm (%g kg) should be cheaper than 7nm (%g kg)",
			oldA.TotalKg(), newA.TotalKg())
	}
}

func TestWastageIncreasesWithDieSize(t *testing.T) {
	p := DefaultParams()
	n := n7()
	small, err := Die(n, tech.Logic, 50, p)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Die(n, tech.Logic, 500, p)
	if err != nil {
		t.Fatal(err)
	}
	if large.WastedAreaMM2 <= small.WastedAreaMM2 {
		t.Errorf("per-die wasted area for 500mm^2 (%g) should exceed 50mm^2 (%g)",
			large.WastedAreaMM2, small.WastedAreaMM2)
	}
}

func TestValidateAcceptsPresets(t *testing.T) {
	for _, ci := range []float64{IntensityCoal, IntensityGas, IntensityWorldGrid, IntensityRenewable} {
		p := DefaultParams()
		p.CarbonIntensity = ci
		if err := p.Validate(); err != nil {
			t.Errorf("intensity preset %g rejected: %v", ci, err)
		}
	}
}

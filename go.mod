module ecochip

go 1.24

package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/descarbon"
	"ecochip/internal/engine"
	"ecochip/internal/kernel"
	"ecochip/internal/mfg"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// --- Gray-code enumeration properties ---------------------------------

func newGrayScratch(nc int) *blockScratch {
	return &blockScratch{digits: make([]int, nc), std: make([]int, nc), par: make([]int, nc)}
}

func TestGrayOdometerProperties(t *testing.T) {
	for _, tc := range []struct{ nc, r int }{
		{1, 2}, {1, 5}, {2, 3}, {3, 2}, {3, 5}, {4, 3}, {5, 2},
	} {
		p := &CompiledPlan{nc: tc.nc, r: tc.r}
		p.weight = make([]int, tc.nc)
		w := 1
		for i := tc.nc - 1; i >= 0; i-- {
			p.weight[i] = w
			w *= tc.r
		}
		combos := w

		seen := make(map[int]bool, combos)
		prev := make([]int, tc.nc)
		sc := newGrayScratch(tc.nc)
		ref := newGrayScratch(tc.nc)
		p.grayInit(0, sc)
		for k := 0; k < combos; k++ {
			if k > 0 {
				j, old, d := p.grayStep(sc)
				// The reported change must be the only change, by ±1.
				if j < 0 || j >= tc.nc || old != prev[j] || d != sc.digits[j] {
					t.Fatalf("nc=%d r=%d k=%d: bogus step report (%d, %d, %d)", tc.nc, tc.r, k, j, old, d)
				}
				if diff := d - old; diff != 1 && diff != -1 {
					t.Fatalf("nc=%d r=%d k=%d: digit %d stepped by %d", tc.nc, tc.r, k, j, diff)
				}
				for i := range sc.digits {
					if i != j && sc.digits[i] != prev[i] {
						t.Fatalf("nc=%d r=%d k=%d: unreported change at digit %d: %v -> %v", tc.nc, tc.r, k, i, prev, sc.digits)
					}
				}
			}
			// The odometer must agree with a fresh decode at every k —
			// digits, standard digits and parities alike (a mid-sequence
			// block start initializes with grayInit, so the two must be
			// interchangeable at any index).
			p.grayInit(k, ref)
			idx := 0
			for i, d := range sc.digits {
				if d < 0 || d >= tc.r {
					t.Fatalf("nc=%d r=%d k=%d: digit %d out of range: %v", tc.nc, tc.r, k, i, sc.digits)
				}
				if d != ref.digits[i] || sc.std[i] != ref.std[i] || sc.par[i] != ref.par[i] {
					t.Fatalf("nc=%d r=%d k=%d: odometer diverges from decode:\nstep %v / %v / %v\ninit %v / %v / %v",
						tc.nc, tc.r, k, sc.digits, sc.std, sc.par, ref.digits, ref.std, ref.par)
				}
				idx += d * p.weight[i]
			}
			// Bijection onto the full factorial space.
			if seen[idx] {
				t.Fatalf("nc=%d r=%d k=%d: index %d visited twice", tc.nc, tc.r, k, idx)
			}
			seen[idx] = true
			copy(prev, sc.digits)
		}
		if len(seen) != combos {
			t.Fatalf("nc=%d r=%d: visited %d of %d combos", tc.nc, tc.r, len(seen), combos)
		}
	}
}

// --- randomized compiled-vs-reference byte identity -------------------

// randomSystem and randomNodeSet delegate to the shared generator in
// internal/testcases so every compiled-path equivalence suite draws from
// the same feature space.
func randomSystem(rng *rand.Rand, db *tech.DB) *core.System { return testcases.Random(rng, db) }

func randomNodeSet(rng *rand.Rand) []int { return testcases.RandomNodes(rng) }

func pointsBitIdentical(a, b Point) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return math.Float64bits(a.EmbodiedKg) == math.Float64bits(b.EmbodiedKg) &&
		math.Float64bits(a.TotalKg) == math.Float64bits(b.TotalKg) &&
		math.Float64bits(a.CostUSD) == math.Float64bits(b.CostUSD) &&
		math.Float64bits(a.PackageAreaMM2) == math.Float64bits(b.PackageAreaMM2)
}

// The compiled/incremental sweep must be byte-identical — same order,
// same float bits — to the per-point EvaluateWith path across random
// systems, node sets, packaging archetypes and NRE/reuse flags, at any
// worker count.
func TestCompiledSweepMatchesReferenceRandomized(t *testing.T) {
	d := db()
	cp := cost.DefaultParams()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20240731))

	evaluated := 0
	for trial := 0; trial < 40; trial++ {
		base := randomSystem(rng, d)
		nodes := randomNodeSet(rng)
		label := fmt.Sprintf("trial %d (arch %v, %d chiplets, nodes %v, nre=%v)",
			trial, base.Packaging.Arch, len(base.Chiplets), nodes, base.IncludeNRE)

		want, refErr := NodeSweepReference(ctx, base, d, nodes, cp, engine.WithWorkers(2))
		for _, workers := range []int{1, 3} {
			got, err := NodeSweepCtx(ctx, base, d, nodes, cp, engine.WithWorkers(workers))
			if refErr != nil {
				if err == nil {
					t.Fatalf("%s: reference failed (%v) but compiled sweep succeeded", label, refErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: compiled sweep failed: %v", label, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
			}
			for i := range want {
				if !pointsBitIdentical(got[i], want[i]) {
					t.Fatalf("%s: workers=%d point %d differs\nwant %+v\ngot  %+v", label, workers, i, want[i], got[i])
				}
			}
		}
		if refErr == nil {
			evaluated++
		}
	}
	if evaluated < 20 {
		t.Fatalf("only %d of 40 random trials evaluated cleanly; generator too error-prone", evaluated)
	}
}

// --- randomized SoA-vs-AoS layout parity ------------------------------

// The table's struct-of-arrays column view must carry the exact bits of
// the kept Cells rows: across random systems, node sets, packaging
// archetypes and NRE/reuse flags, every point's column fold (FoldCols)
// is byte-identical to the Cells-based fold (FoldAoS), and the compiled
// sweep built on the columns stays byte-identical to NodeSweepReference.
func TestSoAColumnsMatchAoSRandomized(t *testing.T) {
	d := db()
	cp := cost.DefaultParams()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20260808))

	evaluated := 0
	for trial := 0; trial < 30; trial++ {
		base := randomSystem(rng, d)
		nodes := randomNodeSet(rng)
		label := fmt.Sprintf("trial %d (arch %v, %d chiplets, nodes %v, nre=%v)",
			trial, base.Packaging.Arch, len(base.Chiplets), nodes, base.IncludeNRE)

		tbl, err := kernel.BuildTable(base, d, nodes, cp)
		if err != nil {
			// The compiled-vs-reference suite pins error parity; here we
			// only care about tables that build.
			continue
		}
		evaluated++

		rows := len(tbl.Cells)
		digits := make([]int, rows)
		check := func() {
			am, ad, an, au, anre := tbl.FoldAoS(digits)
			cm, cd, cn, cu, cnre := tbl.FoldCols(digits)
			if math.Float64bits(am) != math.Float64bits(cm) ||
				math.Float64bits(ad) != math.Float64bits(cd) ||
				math.Float64bits(an) != math.Float64bits(cn) ||
				math.Float64bits(au) != math.Float64bits(cu) ||
				math.Float64bits(anre) != math.Float64bits(cnre) {
				t.Fatalf("%s: digits %v: column fold diverges from Cells fold\nAoS %v %v %v %v %v\nSoA %v %v %v %v %v",
					label, digits, am, ad, an, au, anre, cm, cd, cn, cu, cnre)
			}
		}
		// The two extreme corners plus a random sample of the point space.
		check()
		for i := range digits {
			digits[i] = len(nodes) - 1
		}
		check()
		for s := 0; s < 100; s++ {
			for i := range digits {
				digits[i] = rng.Intn(len(nodes))
			}
			check()
		}

		want, refErr := NodeSweepReference(ctx, base, d, nodes, cp)
		got, err := NodeSweepCtx(ctx, base, d, nodes, cp)
		if refErr != nil {
			if err == nil {
				t.Fatalf("%s: reference failed (%v) but compiled sweep succeeded", label, refErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: compiled sweep failed: %v", label, err)
		}
		for i := range want {
			if !pointsBitIdentical(got[i], want[i]) {
				t.Fatalf("%s: point %d differs from reference\nwant %+v\ngot  %+v", label, i, want[i], got[i])
			}
		}
	}
	if evaluated < 15 {
		t.Fatalf("only %d of 30 random trials built tables; generator too error-prone", evaluated)
	}
}

// Reused chiplets must survive the compiled path with zero design and
// NRE shares, exactly like the reference.
func TestCompiledSweepAllReused(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	for i := range base.Chiplets {
		base.Chiplets[i].Reused = true
	}
	base.IncludeNRE = true
	nodes := []int{7, 14}
	want, err := NodeSweepReference(context.Background(), base, d, nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := NodeSweepCtx(context.Background(), base, d, nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !pointsBitIdentical(got[i], want[i]) {
			t.Fatalf("point %d differs\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
}

// A single-chiplet system sweeps down the monolith path of the plan.
func TestCompiledSweepSingleChiplet(t *testing.T) {
	d := db()
	ref := d.MustGet(7)
	base := &core.System{
		Name:     "uni",
		Chiplets: []core.Chiplet{core.BlockFromArea("die", tech.Logic, 120, ref, 7)},
		Mfg:      mfg.DefaultParams(),
		Design:   descarbon.DefaultParams(),
	}
	nodes := []int{7, 10, 14, 22}
	want, err := NodeSweepReference(context.Background(), base, d, nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := NodeSweepCtx(context.Background(), base, d, nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(nodes) {
		t.Fatalf("%d points, want %d", len(got), len(nodes))
	}
	for i := range want {
		if !pointsBitIdentical(got[i], want[i]) {
			t.Fatalf("point %d differs\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
}

// Multi-chiplet monolithic bases have no fast path; NodeSweepCtx must
// fall back to the reference and still produce its exact output.
func TestCompiledSweepMonolithicFallback(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 7, 7, true)
	if _, err := Compile(base, d, []int{7}, cost.DefaultParams()); !errors.Is(err, ErrNoFastPath) {
		t.Fatalf("Compile(monolithic) = %v, want ErrNoFastPath", err)
	}
	want, err := NodeSweepReference(context.Background(), base, d, []int{7}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := NodeSweepCtx(context.Background(), base, d, []int{7}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !pointsBitIdentical(got[0], want[0]) {
		t.Fatalf("fallback output differs: %+v vs %+v", got, want)
	}
}

func TestCompileErrors(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	cp := cost.DefaultParams()
	if _, err := Compile(base, d, nil, cp); err == nil {
		t.Error("empty node list should fail")
	}
	if _, err := Compile(base, d, []int{7, 3}, cp); err == nil {
		t.Error("unsupported candidate node should fail")
	}
	bad := *base
	bad.SystemVolume = -1
	if _, err := Compile(&bad, d, []int{7}, cp); err == nil {
		t.Error("invalid base system should fail at compile time")
	}
}

func TestPlanStatsAndReuse(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := Compile(base, d, []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Combos() != 27 {
		t.Fatalf("Combos() = %d, want 27", plan.Combos())
	}
	first, err := plan.RunCtx(context.Background(), engine.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Stats()
	if s.Points != 27 {
		t.Errorf("Stats().Points = %d, want 27", s.Points)
	}
	if s.BlockInits+s.GraySteps != 27 {
		t.Errorf("block inits (%d) + gray steps (%d) should cover all 27 points", s.BlockInits, s.GraySteps)
	}
	if s.TableCells != 9 {
		t.Errorf("TableCells = %d, want 3 chiplets x 3 nodes = 9", s.TableCells)
	}
	// A plan is reusable: a second run returns identical points.
	second, err := plan.RunCtx(context.Background(), engine.WithWorkers(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if !pointsBitIdentical(first[i], second[i]) {
			t.Fatalf("rerun point %d differs", i)
		}
	}
}

func TestPlanParetoFrontCtx(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := Compile(base, d, []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	front, total, err := plan.ParetoFrontCtx(context.Background(), []Metric{ByEmbodied, ByCost})
	if err != nil {
		t.Fatal(err)
	}
	if total != 27 {
		t.Fatalf("total = %d, want 27", total)
	}
	points, err := plan.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := ParetoFront(points, ByEmbodied, ByCost)
	if len(front) != len(want) {
		t.Fatalf("front size %d, want %d", len(front), len(want))
	}
	for i := range want {
		if !pointsBitIdentical(front[i], want[i]) {
			t.Fatalf("front point %d differs", i)
		}
	}
}

// The compiled path must respect cancellation.
func TestPlanRunCtxCancelled(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := Compile(base, d, []int{7, 10, 14, 22, 28}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := plan.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}

// --- Disaggregate equivalence -----------------------------------------

// The compiled step plan must reproduce the greedy trajectory of the
// evaluate-per-candidate search (the exported DisaggregateReference
// oracle) bit for bit, including the group bookkeeping.
func TestDisaggregateMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		sys  *core.System
	}{
		{"tiny-blocks", fineGrained(6, 2)},
		{"mid-blocks", fineGrained(4, 30)},
		{"coarse", fineGrained(2, 120)},
	} {
		want, err := DisaggregateReference(context.Background(), tc.sys, db())
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		plan, err := Disaggregate(tc.sys, db())
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		comparePlanToReference(t, tc.name, plan, want)
	}
}

// comparePlanToReference asserts a compiled plan reproduces the
// reference trajectory: bit-exact carbon, identical merge count, result
// chiplets and groups.
func comparePlanToReference(t *testing.T, label string, plan, want *Plan) {
	t.Helper()
	if plan.Steps != want.Steps {
		t.Errorf("%s: %d steps, want %d", label, plan.Steps, want.Steps)
	}
	if math.Float64bits(plan.EmbodiedKg) != math.Float64bits(want.EmbodiedKg) {
		t.Errorf("%s: embodied %v, want %v (bit-exact)", label, plan.EmbodiedKg, want.EmbodiedKg)
	}
	if math.Float64bits(plan.InitialKg) != math.Float64bits(want.InitialKg) {
		t.Errorf("%s: initial %v, want %v (bit-exact)", label, plan.InitialKg, want.InitialKg)
	}
	if len(plan.System.Chiplets) != len(want.System.Chiplets) {
		t.Fatalf("%s: %d result chiplets, want %d", label, len(plan.System.Chiplets), len(want.System.Chiplets))
	}
	for i := range want.System.Chiplets {
		if plan.System.Chiplets[i].Name != want.System.Chiplets[i].Name ||
			plan.System.Chiplets[i].NodeNm != want.System.Chiplets[i].NodeNm {
			t.Errorf("%s: chiplet %d = %+v, want %+v", label, i, plan.System.Chiplets[i], want.System.Chiplets[i])
		}
	}
	if len(plan.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups, want %d", label, len(plan.Groups), len(want.Groups))
	}
	for i := range want.Groups {
		if fmt.Sprint(plan.Groups[i]) != fmt.Sprint(want.Groups[i]) {
			t.Errorf("%s: group %d = %v, want %v", label, i, plan.Groups[i], want.Groups[i])
		}
	}
}

// Randomized Disaggregate equivalence: random fine-grained systems
// across packaging architectures, block mixes and sizes must reproduce
// the reference trajectory at any worker count, and the compiled plan's
// stats must show the step-spanning state actually engaged.
func TestDisaggregateMatchesReferenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	d := db()
	archs := []pkgcarbon.Architecture{
		pkgcarbon.RDLFanout, pkgcarbon.SiliconBridge, pkgcarbon.PassiveInterposer,
		pkgcarbon.ActiveInterposer, pkgcarbon.ThreeD,
	}
	evaluated := 0
	for trial := 0; trial < 10; trial++ {
		ref := d.MustGet(7)
		n := 3 + rng.Intn(5)
		var chiplets []core.Chiplet
		for i := 0; i < n; i++ {
			c := core.BlockFromArea(fmt.Sprintf("blk%c", 'a'+i), tech.Logic, 2+rng.Float64()*40, ref, 7)
			if rng.Intn(5) == 0 {
				c.Reused = true
			}
			chiplets = append(chiplets, c)
		}
		chiplets = append(chiplets, core.BlockFromArea("mem", tech.Memory, 30+rng.Float64()*60, ref, 14))
		base := &core.System{
			Name:      fmt.Sprintf("rand%d", trial),
			Chiplets:  chiplets,
			Packaging: pkgcarbon.DefaultParams(archs[trial%len(archs)]),
			Mfg:       mfg.DefaultParams(),
			Design:    descarbon.DefaultParams(),
		}
		// Flexible shape curves take the non-fork candidate path (full
		// estimates through the retained FlexTree); cover it too.
		if trial%3 == 0 {
			base.Packaging.FlexibleFloorplan = true
		}
		want, refErr := DisaggregateReference(context.Background(), base, d)
		for _, workers := range []int{1, 3} {
			plan, err := DisaggregateCtx(context.Background(), base, d, engine.WithWorkers(workers))
			if refErr != nil {
				if err == nil {
					t.Fatalf("trial %d: reference failed (%v) but compiled search succeeded", trial, refErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			comparePlanToReference(t, fmt.Sprintf("trial %d workers=%d", trial, workers), plan, want)
			if plan.Steps > 0 && plan.Stats.Candidates == 0 {
				t.Errorf("trial %d: no candidates counted: %+v", trial, plan.Stats)
			}
		}
		if refErr == nil {
			evaluated++
		}
	}
	if evaluated < 6 {
		t.Fatalf("only %d of 10 random trials evaluated cleanly", evaluated)
	}
}

// The step-spanning scratch pool and the name-keyed floorplan diff must
// actually engage on a many-block search: pooled-scratch reuses across
// steps, diff-served candidate floorplans, and a diff hit rate above
// one half.
func TestDisaggregateStepSpanningStats(t *testing.T) {
	plan, err := Disaggregate(fineGrained(6, 2), db())
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Stats
	if s.Steps == 0 || s.Candidates == 0 {
		t.Fatalf("expected a multi-step search: %+v", s)
	}
	if s.ScratchReuses == 0 {
		t.Errorf("worker scratches were not pooled across steps: %+v", s)
	}
	if s.MergedCellHits == 0 {
		t.Errorf("merged-cell memo never hit across steps: %+v", s)
	}
	fp := s.Floorplan
	if fp.DiffFastPath == 0 || fp.Splices == 0 {
		t.Errorf("candidate floorplans were not served by the name-keyed diff: %+v", fp)
	}
	if rate := fp.ReuseRate(); rate < 0.5 {
		t.Errorf("floorplan reuse rate %.2f below 0.5: %+v", rate, fp)
	}
}

// --- Walk: streaming visitor ------------------------------------------

// Walk must stream every point of the sweep exactly once, with the same
// slot addressing and float bits as the materializing RunCtx path.
func TestWalkStreamsAllPoints(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := Compile(base, d, []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got := make([]Point, plan.Combos())
		seen := make([]bool, plan.Combos())
		var mu sync.Mutex
		err = plan.Walk(context.Background(), func(idx int, pt *Point) error {
			cp := *pt
			cp.Nodes = append([]int(nil), pt.Nodes...)
			mu.Lock()
			defer mu.Unlock()
			if seen[idx] {
				return fmt.Errorf("slot %d visited twice", idx)
			}
			seen[idx] = true
			got[idx] = cp
			return nil
		}, engine.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !seen[i] {
				t.Fatalf("workers=%d: slot %d never visited", workers, i)
			}
			if !pointsBitIdentical(got[i], want[i]) {
				t.Fatalf("workers=%d: point %d differs\nwant %+v\ngot  %+v", workers, i, want[i], got[i])
			}
		}
	}
}

// A visit error must cancel the walk and surface to the caller.
func TestWalkVisitError(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := Compile(base, d, []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	err = plan.Walk(context.Background(), func(idx int, pt *Point) error {
		if idx == 5 {
			return sentinel
		}
		return nil
	}, engine.WithWorkers(1))
	if !errors.Is(err, sentinel) {
		t.Fatalf("Walk error = %v, want the visitor's sentinel", err)
	}
}

// Walk's result allocations must scale with the block count, not the
// point count: the visited *Point (including Nodes) is scratch-owned, so
// a full 125-point sweep stays within a fixed per-block scratch budget.
func TestWalkAllocationsPerBlock(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := Compile(base, d, []int{7, 10, 14, 22, 28}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Combos() != 125 {
		t.Fatalf("combos = %d, want 125", plan.Combos())
	}
	ctx := context.Background()
	count := 0
	allocs := testing.AllocsPerRun(5, func() {
		count = 0
		if err := plan.Walk(ctx, func(int, *Point) error { count++; return nil }, engine.WithWorkers(1)); err != nil {
			t.Fatal(err)
		}
	})
	if count != 125 {
		t.Fatalf("visited %d points, want 125", count)
	}
	// One single-block walk costs a handful of scratch allocations
	// (digit buffers, estimator, floorplan arena); 125 retained points
	// would cost at least 125.
	if allocs > 60 {
		t.Errorf("Walk allocated %.0f times for a 125-point sweep; result allocations must be O(blocks), not O(points)", allocs)
	}
}

// --- ParetoFrontCtx: folded skyline reduction -------------------------

// The fold must return byte-identical fronts to the materializing
// ParetoFront(RunCtx(...)) path across random systems, node sets, worker
// counts and objective mixes — including a quantized objective that
// forces exact ties and duplicates.
func TestParetoFrontCtxMatchesMaterializedRandomized(t *testing.T) {
	d := db()
	cp := cost.DefaultParams()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20260728))
	quantCost := func(p Point) float64 { return math.Floor(p.CostUSD/50) * 50 }
	objectiveSets := [][]Metric{
		{ByEmbodied, ByCost},
		{ByTotal, ByArea},
		{quantCost, ByEmbodied},
		{ByEmbodied, ByCost, ByArea},
	}

	evaluated := 0
	for trial := 0; trial < 25; trial++ {
		base := testcases.Random(rng, d)
		nodes := testcases.RandomNodes(rng)
		objectives := objectiveSets[trial%len(objectiveSets)]
		plan, err := Compile(base, d, nodes, cp)
		if err != nil {
			continue
		}
		points, err := plan.RunCtx(ctx)
		if err != nil {
			continue
		}
		want := ParetoFront(points, objectives...)
		for _, workers := range []int{1, 3} {
			got, total, err := plan.ParetoFrontCtx(ctx, objectives, engine.WithWorkers(workers))
			if err != nil {
				t.Fatalf("trial %d: fold failed: %v", trial, err)
			}
			if total != len(points) {
				t.Fatalf("trial %d: total = %d, want %d", trial, total, len(points))
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d workers=%d: front size %d, want %d", trial, workers, len(got), len(want))
			}
			for i := range want {
				if !pointsBitIdentical(got[i], want[i]) {
					t.Fatalf("trial %d workers=%d front point %d differs\nwant %+v\ngot  %+v",
						trial, workers, i, want[i], got[i])
				}
			}
		}
		evaluated++
	}
	if evaluated < 15 {
		t.Fatalf("only %d of 25 random trials evaluated cleanly", evaluated)
	}
}

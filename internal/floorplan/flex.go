package floorplan

import (
	"fmt"
	"math"
)

// This file is the retained-mode incremental planner for flexible
// (shape-curve) floorplans — PlanFlexible's counterpart to tree.go. A
// FlexTree caches the sorted permutation, the recursive area-balanced
// partition topology and every subtree's pruned Pareto shape set, so a
// re-plan after a small area change re-derives only the dirty
// leaf-to-root path's shape sets instead of the whole curve.
//
// The contract is bit-identity with PlanFlexible on the same blocks, by
// construction:
//
//   - The topology guard proves the sorted permutation and every
//     partition decision are unchanged (the same guard tree.go runs:
//     partitions depend on areas alone, which fixed-shape and flexible
//     plans share), so the slicing topology is exactly what a fresh
//     plan would rebuild.
//   - A subtree's shape set is a pure function of its leaf blocks and
//     the spacing: clean subtrees keep their retained sets — the very
//     values a fresh recursion would recompute — and dirty nodes re-run
//     the exact combine/prune sequence of layoutShapes, enumerating the
//     retained child sets in their stored order. prune's unstable sort
//     is deterministic for a fixed input order, and the input order is
//     reproduced, so ties and duplicate (w, h) realizations resolve
//     exactly as from scratch — the Pareto pruning is preserved, not
//     approximated.
//   - The root's best-shape pick and the adjacency scan run the
//     from-scratch code on the resulting placements.
//
// Any guard failure falls back to a full rebuild, which is the
// from-scratch algorithm itself, so no input can make the incremental
// path diverge: it can only decline.

// fnode is one retained shape-curve node: the slicing-tree links plus
// the subtree's pruned Pareto set of (width, height) realizations.
type fnode struct {
	parent, left, right int // node indices; left/right are -1 for leaves
	lo, hi              int // leaf-order segment [lo, hi) of the subtree
	shapes              []shape
}

// FlexTree is a retained-mode incremental flexible floorplanner. The
// zero value is ready to use. A FlexTree is NOT safe for concurrent
// use, and the Result it returns (including Placements and Adjacencies)
// is owned by the tree and overwritten by the next call.
type FlexTree struct {
	spacing float64
	aspects []float64
	built   bool

	blocks []Block // caller order, current areas
	sorted []Block // sorted (pre-partition) order
	srcIdx []int   // sorted position -> caller index
	posOf  []int   // caller index -> sorted position

	nodes   []fnode
	nused   int
	root    int
	leafOf  []int     // sorted position -> leaf node index
	leafPos []int     // sorted position -> leaf-order position
	areas   []float64 // current areas in sorted order
	changed []int     // sorted positions whose area changed this round

	walkOrder []int
	walkTmp   []int
	walkToA   []bool
	combBuf   []shape // combine's pre-prune candidate buffer, reused across nodes

	adj   []Adjacency
	res   Result
	stats TreeStats
}

// Stats snapshots the tree's work counters.
func (ft *FlexTree) Stats() TreeStats { return ft.stats }

// Plan floorplans the blocks with flexible aspect ratios, reusing the
// retained topology and every clean subtree's shape set when only block
// areas changed since the previous call. It is bit-identical to
// PlanFlexible on every input.
func (ft *FlexTree) Plan(blocks []Block, spacingMM float64, aspects []float64) (*Result, error) {
	// The validation replicates PlanFlexible's checks in its exact
	// order, so the retained and from-scratch paths surface identical
	// errors.
	if len(blocks) == 0 {
		return nil, errNoBlocks()
	}
	if spacingMM == 0 {
		spacingMM = DefaultSpacingMM
	}
	if spacingMM < 0.1 || spacingMM > 1 {
		return nil, errSpacing(spacingMM)
	}
	if aspects == nil {
		aspects = DefaultAspects
	}
	for _, ar := range aspects {
		if ar <= 0 {
			return nil, fmt.Errorf("floorplan: aspect ratio %g must be positive", ar)
		}
	}
	total := 0.0
	for _, b := range blocks {
		if b.AreaMM2 <= 0 {
			return nil, errBlockArea(b)
		}
		total += b.AreaMM2
	}

	if !ft.built || ft.spacing != spacingMM || !sameAspects(ft.aspects, aspects) || !ft.sameShape(blocks) {
		ft.stats.Rebuilds++
		ft.rebuild(blocks, spacingMM, aspects, total)
		return &ft.res, nil
	}
	ft.changed = ft.changed[:0]
	for i, b := range blocks {
		if ft.blocks[i].AreaMM2 != b.AreaMM2 {
			ft.blocks[i].AreaMM2 = b.AreaMM2
			sp := ft.posOf[i]
			ft.sorted[sp].AreaMM2 = b.AreaMM2
			ft.areas[sp] = b.AreaMM2
			ft.changed = append(ft.changed, sp)
		}
	}
	if len(ft.changed) == 0 {
		ft.stats.Unchanged++
		return &ft.res, nil
	}
	if ft.update(total) {
		return &ft.res, nil
	}
	ft.stats.Fallbacks++
	ft.rebuild(ft.blocks, spacingMM, aspects, total)
	return &ft.res, nil
}

// Update re-plans after a single block's area change — the Gray-step
// shape of a compiled sweep walk over a flexible-floorplan system.
// blockIdx indexes the caller-order block list of the last Plan call.
func (ft *FlexTree) Update(blockIdx int, areaMM2 float64) (*Result, error) {
	if !ft.built {
		return nil, fmt.Errorf("floorplan: FlexTree.Update before Plan")
	}
	if blockIdx < 0 || blockIdx >= len(ft.blocks) {
		return nil, fmt.Errorf("floorplan: FlexTree.Update block index %d outside [0, %d)", blockIdx, len(ft.blocks))
	}
	if areaMM2 <= 0 {
		b := ft.blocks[blockIdx]
		b.AreaMM2 = areaMM2
		return nil, errBlockArea(b)
	}
	if ft.blocks[blockIdx].AreaMM2 == areaMM2 {
		ft.stats.Unchanged++
		return &ft.res, nil
	}
	ft.blocks[blockIdx].AreaMM2 = areaMM2
	sp := ft.posOf[blockIdx]
	ft.sorted[sp].AreaMM2 = areaMM2
	ft.areas[sp] = areaMM2
	// Re-sum the total in caller order: patching it by the area delta
	// would not carry the bits of the fresh in-order sum.
	total := 0.0
	for i := range ft.blocks {
		total += ft.blocks[i].AreaMM2
	}
	ft.changed = append(ft.changed[:0], sp)
	if ft.update(total) {
		return &ft.res, nil
	}
	ft.stats.Fallbacks++
	ft.rebuild(ft.blocks, ft.spacing, ft.aspects, total)
	return &ft.res, nil
}

func sameAspects(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameShape reports whether blocks matches the retained set in
// everything but areas.
func (ft *FlexTree) sameShape(blocks []Block) bool {
	if len(blocks) != len(ft.blocks) {
		return false
	}
	for i, b := range blocks {
		if b.Name != ft.blocks[i].Name || b.AspectRatio != ft.blocks[i].AspectRatio {
			return false
		}
	}
	return true
}

// sortedOrderOK reports whether the retained permutation is still what
// the stable sort by decreasing area would produce.
func (ft *FlexTree) sortedOrderOK() bool {
	for k := 0; k < len(ft.sorted)-1; k++ {
		a, b := ft.areas[k], ft.areas[k+1]
		if a < b || (a == b && ft.srcIdx[k] > ft.srcIdx[k+1]) {
			return false
		}
	}
	return true
}

// rangeDirty reports whether any changed block's leaf-order position
// falls in [lo, hi).
func (ft *FlexTree) rangeDirty(lo, hi int) bool {
	for _, sp := range ft.changed {
		if p := ft.leafPos[sp]; p >= lo && p < hi {
			return true
		}
	}
	return false
}

// update is the incremental re-plan: the sorted-order check, a guard
// walk over the dirty paths that re-derives only their shape sets, and
// the root pick. Returns false on any flip.
func (ft *FlexTree) update(total float64) bool {
	if !ft.sortedOrderOK() {
		return false
	}
	order := ft.walkOrder[:len(ft.sorted)]
	for i := range order {
		order[i] = i
	}
	relayouts := 0
	if !ft.incNode(ft.root, order, &relayouts) {
		return false
	}
	ft.stats.FastPath++
	ft.stats.RelayoutNodeSum += uint64(relayouts)
	ft.finish(total)
	return true
}

// incNode verifies node ni's cached partition over seg and re-derives
// the shape sets of dirty subtrees, combining with the retained sibling
// sets. It returns false on any partition flip.
func (ft *FlexTree) incNode(ni int, seg []int, relayouts *int) bool {
	nd := &ft.nodes[ni]
	if nd.left < 0 {
		ft.leafShapes(ni, seg[0])
		*relayouts++
		return true
	}
	split := ft.nodes[nd.left].hi
	na := 0
	var areaA, areaB float64
	toA := ft.walkToA[:len(seg)]
	for i, sp := range seg {
		goesA := areaA <= areaB
		if goesA != (ft.leafPos[sp] < split) {
			return false
		}
		toA[i] = goesA
		if goesA {
			areaA += ft.areas[sp]
			na++
		} else {
			areaB += ft.areas[sp]
		}
	}
	tmp := ft.walkTmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, sp := range tmp {
		if toA[i] {
			seg[ia] = sp
			ia++
		} else {
			seg[ib] = sp
			ib++
		}
	}
	if ft.rangeDirty(nd.lo, split) && !ft.incNode(nd.left, seg[:na], relayouts) {
		return false
	}
	if ft.rangeDirty(split, nd.hi) && !ft.incNode(nd.right, seg[na:], relayouts) {
		return false
	}
	ft.combine(ni)
	*relayouts++
	return true
}

// allocNode takes the next recycled tree-node slot.
func (ft *FlexTree) allocNode(parent int) int {
	if ft.nused == len(ft.nodes) {
		ft.nodes = append(ft.nodes, fnode{})
	}
	ni := ft.nused
	ft.nused++
	ft.nodes[ni] = fnode{parent: parent, left: -1, right: -1}
	return ni
}

// rebuild runs the from-scratch algorithm and repopulates every
// retained cache. blocks may alias ft.blocks (the fallback path).
func (ft *FlexTree) rebuild(blocks []Block, spacing float64, aspects []float64, total float64) {
	n := len(blocks)
	ft.spacing = spacing
	if len(aspects) == 0 {
		ft.aspects = ft.aspects[:0]
	} else if len(ft.aspects) != len(aspects) || &ft.aspects[0] != &aspects[0] {
		ft.aspects = append(ft.aspects[:0], aspects...)
	}
	if len(ft.blocks) != n || &ft.blocks[0] != &blocks[0] {
		ft.blocks = append(ft.blocks[:0], blocks...)
	}
	if cap(ft.srcIdx) < n {
		ft.srcIdx = make([]int, n)
		ft.posOf = make([]int, n)
		ft.leafOf = make([]int, n)
		ft.leafPos = make([]int, n)
		ft.areas = make([]float64, n)
		ft.walkOrder = make([]int, n)
		ft.walkTmp = make([]int, n)
		ft.walkToA = make([]bool, n)
	}
	ft.leafPos = ft.leafPos[:n]
	ft.areas = ft.areas[:n]
	// Stable sort by decreasing area — the same permutation
	// PlanFlexible's sort.SliceStable produces.
	src := ft.srcIdx[:n]
	for i := range src {
		src[i] = i
	}
	ft.sorted = append(ft.sorted[:0], ft.blocks...)
	sorted := ft.sorted
	for i := 1; i < n; i++ {
		b, s := sorted[i], src[i]
		j := i - 1
		for j >= 0 && sorted[j].AreaMM2 < b.AreaMM2 {
			sorted[j+1], src[j+1] = sorted[j], src[j]
			j--
		}
		sorted[j+1], src[j+1] = b, s
	}
	posOf := ft.posOf[:n]
	for pos, i := range src {
		posOf[i] = pos
	}
	for pos := range sorted {
		ft.areas[pos] = sorted[pos].AreaMM2
	}

	ft.nused = 0
	order := ft.walkOrder[:n]
	for i := range order {
		order[i] = i
	}
	nextLeaf := 0
	ft.root = ft.build(order, -1, &nextLeaf)
	for sp := range sorted {
		ft.leafPos[sp] = ft.nodes[ft.leafOf[sp]].lo
	}
	ft.built = true
	ft.finish(total)
}

// build constructs the subtree over seg (members as sorted positions in
// pre-partition order, permuted in place) and derives its shape set.
func (ft *FlexTree) build(seg []int, parent int, nextLeaf *int) int {
	ni := ft.allocNode(parent)
	if len(seg) == 1 {
		sp := seg[0]
		lo := *nextLeaf
		*nextLeaf = lo + 1
		nd := &ft.nodes[ni]
		nd.lo, nd.hi = lo, lo+1
		ft.leafOf[sp] = ni
		ft.leafShapes(ni, sp)
		return ni
	}
	na := 0
	var areaA, areaB float64
	toA := ft.walkToA[:len(seg)]
	for i, sp := range seg {
		if areaA <= areaB {
			toA[i] = true
			areaA += ft.sorted[sp].AreaMM2
			na++
		} else {
			toA[i] = false
			areaB += ft.sorted[sp].AreaMM2
		}
	}
	tmp := ft.walkTmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, sp := range tmp {
		if toA[i] {
			seg[ia] = sp
			ia++
		} else {
			seg[ib] = sp
			ib++
		}
	}
	left := ft.build(seg[:na], ni, nextLeaf)
	right := ft.build(seg[na:], ni, nextLeaf)
	nd := &ft.nodes[ni] // re-take: ft.nodes may have grown
	nd.left, nd.right = left, right
	nd.lo, nd.hi = ft.nodes[left].lo, ft.nodes[right].hi
	ft.combine(ni)
	return ni
}

// leafShapes derives a leaf's shape set — the exact realizations (and
// order) of layoutShapes' leaf case.
func (ft *FlexTree) leafShapes(ni, sp int) {
	b := &ft.sorted[sp]
	if b.AspectRatio > 0 {
		w, h := b.dims()
		ft.nodes[ni].shapes = []shape{{w: w, h: h, placements: []Placement{{Name: b.Name, Width: w, Height: h}}}}
		return
	}
	var out []shape
	for _, ar := range ft.aspects {
		h := math.Sqrt(b.AreaMM2 / ar)
		w := ar * h
		out = append(out, shape{w: w, h: h, placements: []Placement{{Name: b.Name, Width: w, Height: h}}})
	}
	ft.nodes[ni].shapes = prune(out)
}

// combine re-derives an internal node's shape set from its children —
// the exact enumeration order of layoutShapes' internal case, so
// prune's tie resolution cannot diverge from the from-scratch plan. The
// pre-prune candidate buffer is tree-owned scratch (prune reads it and
// returns a fresh Pareto slice, so retaining it is safe); only the
// combined shapes' placement slices are allocated per call, as from
// scratch.
func (ft *FlexTree) combine(ni int) {
	nd := &ft.nodes[ni]
	left := ft.nodes[nd.left].shapes
	right := ft.nodes[nd.right].shapes
	out := ft.combBuf[:0]
	for _, l := range left {
		for _, r := range right {
			out = append(out, combineH(l, r, ft.spacing), combineV(l, r, ft.spacing))
		}
	}
	nd.shapes = prune(out)
	ft.combBuf = out[:0]
}

// finish picks the minimal-area root realization and refreshes the
// Result — the from-scratch selection and adjacency scan.
func (ft *FlexTree) finish(total float64) {
	shapes := ft.nodes[ft.root].shapes
	best := shapes[0]
	for _, s := range shapes[1:] {
		if s.w*s.h < best.w*best.h {
			best = s
		}
	}
	ft.res = Result{
		WidthMM:        best.w,
		HeightMM:       best.h,
		Placements:     best.placements,
		ChipletAreaMM2: total,
	}
	ft.adj = appendAdjacencies(ft.adj[:0], best.placements, ft.spacing)
	ft.res.Adjacencies = ft.adj
}

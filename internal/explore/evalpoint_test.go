package explore

import (
	"context"
	"math"
	"testing"

	"ecochip/internal/cost"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// EvalPoint must invert the Gray code exactly: for every output slot of
// a full run, evaluating that slot's node assignment returns the same
// float bits. The second pass re-asks every point so the pooled scratch
// serves the package term from the per-point memo — the serving-layer
// warm path — and must stay bit-identical.
func TestEvalPointMatchesRunSlots(t *testing.T) {
	d := tech.Default()
	base := testcases.GA102(d, 7, 14, 10, false)
	nodes := []int{7, 10, 14}
	plan, err := Compile(base, d, nodes, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for idx, want := range ref {
			got, err := plan.EvalPoint(context.Background(), want.Nodes)
			if err != nil {
				t.Fatalf("pass %d slot %d: %v", pass, idx, err)
			}
			for i, nm := range want.Nodes {
				if got.Nodes[i] != nm {
					t.Fatalf("pass %d slot %d: nodes %v, want %v", pass, idx, got.Nodes, want.Nodes)
				}
			}
			for _, c := range []struct {
				name      string
				got, want float64
			}{
				{"EmbodiedKg", got.EmbodiedKg, want.EmbodiedKg},
				{"TotalKg", got.TotalKg, want.TotalKg},
				{"CostUSD", got.CostUSD, want.CostUSD},
				{"PackageAreaMM2", got.PackageAreaMM2, want.PackageAreaMM2},
			} {
				if math.Float64bits(c.got) != math.Float64bits(c.want) {
					t.Fatalf("pass %d slot %d: %s = %v, want %v (bit-exact)", pass, idx, c.name, c.got, c.want)
				}
			}
		}
	}
	// The memo must actually be carrying the second pass.
	if s := plan.Stats(); s.PkgMemo.Hits == 0 {
		t.Errorf("no package-memo hits across repeated EvalPoint calls: %+v", s.PkgMemo)
	}
}

func TestEvalPointErrors(t *testing.T) {
	d := tech.Default()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := Compile(base, d, []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.EvalPoint(context.Background(), []int{7, 10}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := plan.EvalPoint(context.Background(), []int{7, 10, 5}); err == nil {
		t.Error("node outside the candidate set accepted")
	}
}

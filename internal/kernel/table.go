package kernel

import (
	"fmt"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/tech"
)

// Table is the dense per-(chiplet, node) invariant table of a compiled
// node sweep: every sub-result that depends only on which node one
// chiplet sits in — area, manufacturing carbon, design carbon, NRE
// share, die dollar cost — plus the single-row per-node invariants (NRE
// dollar cost, communication design share) and the fixed assembly
// pricer. BuildTable computes each entry through the same core seam
// (CellFor / MonolithCell) that System.Evaluate uses, so a point
// assembled from the table carries the exact float bits of a one-off
// evaluation. A Table is immutable after BuildTable and safe for
// concurrent use.
type Table struct {
	// Base and DB are the compiled system and database.
	Base *core.System
	DB   *tech.DB
	// Nodes is the candidate node list (the column order of every row).
	Nodes []int
	// Monolith selects the single-die evaluation path (single-chiplet or
	// monolithic bases): no packaging, no communication fabric.
	Monolith bool
	// HasOp reports whether the base carries an operating spec.
	HasOp bool

	// Cells and DieUSD are indexed [chiplet][node]; monolith tables hold
	// one row of merged-die cells. NREUSD and CommShare depend only on
	// the node (and, for CommShare, the fixed chiplet count), so they are
	// single rows; CommShare is nil for monolith tables.
	Cells     [][]core.DieCell
	DieUSD    [][]float64
	NREUSD    []float64
	CommShare []float64

	// Names are the chiplet names for packaging descriptors (nil for
	// monolith tables).
	Names []string
	// Asm prices assembly for the fixed (architecture, die count) pair.
	Asm cost.Assembler
}

// BuildTable validates the base system and precomputes the dense
// per-(chiplet, node) table for evaluating it under every candidate
// node. Every node-independent computation and every per-(chiplet, node)
// sub-model call runs exactly once; errors any point of a sweep would
// hit (invalid base description, unsupported candidate node, sub-model
// domain violations, missing cost table entries) surface here.
func BuildTable(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (*Table, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("kernel: no candidate nodes")
	}
	if err := base.Validate(db); err != nil {
		return nil, err
	}
	for _, nm := range nodes {
		if !db.Has(nm) {
			return nil, fmt.Errorf("kernel: candidate node %dnm is not in the technology database", nm)
		}
	}
	nc := len(base.Chiplets)
	t := &Table{
		Base:     base,
		DB:       db,
		Nodes:    append([]int(nil), nodes...),
		Monolith: base.Monolithic || nc == 1,
		HasOp:    base.Operation != nil,
		NREUSD:   make([]float64, len(nodes)),
	}

	vol := base.Volume()
	rows := nc
	archName := base.Packaging.Arch.String()
	if t.Monolith {
		rows = 1
		archName = "monolithic"
	}
	t.Cells = make([][]core.DieCell, rows)
	t.DieUSD = make([][]float64, rows)
	for i := 0; i < rows; i++ {
		t.Cells[i] = make([]core.DieCell, len(nodes))
		t.DieUSD[i] = make([]float64, len(nodes))
		for j, nm := range nodes {
			var cell core.DieCell
			var err error
			if t.Monolith {
				cell, err = base.MonolithCell(db, nm, nil)
			} else {
				cell, err = base.CellFor(db, base.Chiplets[i], nm, nil)
			}
			if err != nil {
				return nil, err
			}
			t.Cells[i][j] = cell
			usd, err := cost.DieUSD(cell.Node, cell.AreaMM2, cp)
			if err != nil {
				return nil, err
			}
			t.DieUSD[i][j] = usd
		}
	}
	for j, nm := range nodes {
		usd, err := cost.NREUSDPerPart(db.MustGet(nm), vol, cp)
		if err != nil {
			return nil, err
		}
		t.NREUSD[j] = usd
	}
	if !t.Monolith {
		t.CommShare = make([]float64, len(nodes))
		for j, nm := range nodes {
			share, err := base.CommDesignShareKg(db, nm, nc, nil)
			if err != nil {
				return nil, err
			}
			t.CommShare[j] = share
		}
		t.Names = make([]string, nc)
		for i, c := range base.Chiplets {
			t.Names[i] = c.Name
		}
	}
	// rows is the die count of every point: nc chiplets, or one merged
	// die for monolith tables — exactly what assembly charges per.
	asm, err := cost.NewAssembler(archName, rows, cp)
	if err != nil {
		return nil, err
	}
	t.Asm = asm
	return t, nil
}

// NewScratch builds a per-worker sweep arena sized for this table.
func (t *Table) NewScratch() (*Scratch, error) {
	if t.Monolith {
		return NewSweepScratch(nil, 1)
	}
	return NewSweepScratch(&t.Base.Packaging, len(t.Base.Chiplets))
}

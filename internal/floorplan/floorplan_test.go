package floorplan

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func blocksOf(areas ...float64) []Block {
	bs := make([]Block, len(areas))
	for i, a := range areas {
		bs[i] = Block{Name: fmt.Sprintf("c%d", i), AreaMM2: a}
	}
	return bs
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(nil, 0.5); err == nil {
		t.Error("empty block list should fail")
	}
	if _, err := Plan(blocksOf(0), 0.5); err == nil {
		t.Error("zero-area block should fail")
	}
	if _, err := Plan(blocksOf(100), 5); err == nil {
		t.Error("spacing outside Table I range should fail")
	}
	if _, err := Plan(blocksOf(100), 0.05); err == nil {
		t.Error("spacing below Table I range should fail")
	}
}

func TestSingleBlock(t *testing.T) {
	res, err := Plan(blocksOf(100), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AreaMM2()-100) > 1e-9 {
		t.Errorf("single square block package area = %g, want 100", res.AreaMM2())
	}
	if res.WhitespaceMM2() > 1e-9 {
		t.Errorf("single block whitespace = %g, want 0", res.WhitespaceMM2())
	}
	if len(res.Adjacencies) != 0 {
		t.Errorf("single block should have no adjacencies, got %d", len(res.Adjacencies))
	}
}

func TestTwoEqualBlocks(t *testing.T) {
	res, err := Plan(blocksOf(100, 100), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Two 10x10 squares side by side with 0.5mm gap: 20.5 x 10.
	if math.Abs(res.AreaMM2()-205) > 1e-9 {
		t.Errorf("package area = %g, want 205", res.AreaMM2())
	}
	if math.Abs(res.WhitespaceMM2()-5) > 1e-9 {
		t.Errorf("whitespace = %g, want 5 (the spacing strip)", res.WhitespaceMM2())
	}
	if len(res.Adjacencies) != 1 {
		t.Fatalf("want 1 adjacency, got %d: %+v", len(res.Adjacencies), res.Adjacencies)
	}
	if math.Abs(res.Adjacencies[0].OverlapMM-10) > 1e-9 {
		t.Errorf("overlap = %g, want 10", res.Adjacencies[0].OverlapMM)
	}
}

func TestDefaultSpacing(t *testing.T) {
	res, err := Plan(blocksOf(100, 100), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := (10 + DefaultSpacingMM + 10) * 10
	if math.Abs(res.AreaMM2()-want) > 1e-9 {
		t.Errorf("package area with default spacing = %g, want %g", res.AreaMM2(), want)
	}
}

func TestAspectRatio(t *testing.T) {
	res, err := Plan([]Block{{Name: "wide", AreaMM2: 100, AspectRatio: 4}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Placements[0]
	if math.Abs(p.Width-20) > 1e-9 || math.Abs(p.Height-5) > 1e-9 {
		t.Errorf("4:1 block dims = %gx%g, want 20x5", p.Width, p.Height)
	}
}

func TestPlacementsDoNotOverlap(t *testing.T) {
	res, err := Plan(blocksOf(400, 150, 150, 80, 60, 30), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(res.Placements); i++ {
		for j := i + 1; j < len(res.Placements); j++ {
			a, b := res.Placements[i], res.Placements[j]
			overlapX := math.Min(a.X+a.Width, b.X+b.Width) - math.Max(a.X, b.X)
			overlapY := math.Min(a.Y+a.Height, b.Y+b.Height) - math.Max(a.Y, b.Y)
			if overlapX > 1e-9 && overlapY > 1e-9 {
				t.Errorf("placements %s and %s overlap", a.Name, b.Name)
			}
		}
	}
}

func TestPlacementsInsideBoundingBox(t *testing.T) {
	res, err := Plan(blocksOf(500, 80, 48, 30, 20), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Placements {
		if p.X < -1e-9 || p.Y < -1e-9 ||
			p.X+p.Width > res.WidthMM+1e-9 || p.Y+p.Height > res.HeightMM+1e-9 {
			t.Errorf("placement %s (%g,%g %gx%g) escapes package %gx%g",
				p.Name, p.X, p.Y, p.Width, p.Height, res.WidthMM, res.HeightMM)
		}
	}
}

func TestAllBlocksPlaced(t *testing.T) {
	blocks := blocksOf(100, 90, 80, 70, 60, 50, 40)
	res, err := Plan(blocks, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != len(blocks) {
		t.Fatalf("placed %d of %d blocks", len(res.Placements), len(blocks))
	}
	seen := map[string]bool{}
	for _, p := range res.Placements {
		seen[p.Name] = true
	}
	for _, b := range blocks {
		if !seen[b.Name] {
			t.Errorf("block %s missing from placements", b.Name)
		}
	}
}

// Property: package area >= sum of chiplet areas, whitespace fraction in
// [0, 1), for arbitrary block sets.
func TestPackageAreaProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		blocks := make([]Block, len(raw))
		for i, r := range raw {
			blocks[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: float64(r%500) + 1}
		}
		res, err := Plan(blocks, 0.5)
		if err != nil {
			return false
		}
		wf := res.WhitespaceFraction()
		return res.AreaMM2() >= res.ChipletAreaMM2-1e-9 && wf >= -1e-12 && wf < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The slicing floorplan should stay reasonably compact: for equal-sized
// squares the whitespace fraction must stay below 35%.
func TestWhitespaceBoundedForEqualSquares(t *testing.T) {
	for n := 2; n <= 16; n++ {
		areas := make([]float64, n)
		for i := range areas {
			areas[i] = 100
		}
		res, err := Plan(blocksOf(areas...), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if wf := res.WhitespaceFraction(); wf > 0.35 {
			t.Errorf("n=%d: whitespace fraction %.2f exceeds 0.35", n, wf)
		}
	}
}

// Every multi-chiplet floorplan must expose at least one adjacency, and
// n placed chiplets form a connected arrangement needing >= n-1 pairwise
// interfaces is not guaranteed by slicing; we check >= 1 and overlap > 0.
func TestAdjacenciesExist(t *testing.T) {
	for n := 2; n <= 10; n++ {
		areas := make([]float64, n)
		for i := range areas {
			areas[i] = float64(50 + 10*i)
		}
		res, err := Plan(blocksOf(areas...), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Adjacencies) == 0 {
			t.Errorf("n=%d: no adjacencies found", n)
		}
		for _, a := range res.Adjacencies {
			if a.OverlapMM <= 0 {
				t.Errorf("n=%d: adjacency %s-%s has non-positive overlap", n, a.A, a.B)
			}
			if a.A == a.B {
				t.Errorf("self adjacency %s", a.A)
			}
		}
	}
}

// Determinism: same input, same floorplan.
func TestPlanDeterministic(t *testing.T) {
	blocks := blocksOf(500, 80, 48)
	r1, err1 := Plan(blocks, 0.5)
	r2, err2 := Plan(blocks, 0.5)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.AreaMM2() != r2.AreaMM2() || len(r1.Adjacencies) != len(r2.Adjacencies) {
		t.Error("Plan is not deterministic")
	}
}

// More chiplets for the same total area should grow the package area
// (more spacing strips), never shrink it below the total silicon.
func TestMoreChipletsMorePackage(t *testing.T) {
	const total = 500.0
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8} {
		areas := make([]float64, n)
		for i := range areas {
			areas[i] = total / float64(n)
		}
		res, err := Plan(blocksOf(areas...), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ws := res.WhitespaceMM2()
		if ws < prev-1e-9 {
			t.Errorf("whitespace with %d chiplets (%.2f) below previous (%.2f)", n, ws, prev)
		}
		prev = ws
	}
}

// Package experiments contains one runner per figure of the ECO-CHIP
// paper's evaluation (Sections V and VI). Each runner regenerates the
// figure's underlying data series as a report.Table, exactly like the
// artifact scripts (fig7.py, fig9.py, ...) of the released tool print the
// raw data behind each plot.
//
// The Registry maps experiment ids ("fig2a", "fig7c", ...) to runners so
// the ecoexp CLI and the benchmark harness can enumerate them.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/report"
	"ecochip/internal/tech"
)

// Runner regenerates one figure's data.
type Runner func(db *tech.DB) (*report.Table, error)

var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns all experiment ids in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, db *tech.DB) (*report.Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(db)
}

// RunAll executes every registered experiment and returns the tables in
// id order.
func RunAll(db *tech.DB) ([]*report.Table, error) {
	return RunAllCtx(context.Background(), db)
}

// RunAllCtx is RunAll with cancellation and engine options. The figure
// runners are independent of each other (each builds its own systems
// against the shared read-only database), so they fan out across the
// batch engine while the output order stays the sorted id order. The
// options and cancellation apply to this fan-out across figures — a
// cancelled context stops figures that have not started; figures
// already running manage their own inner evaluation engines and run to
// completion.
func RunAllCtx(ctx context.Context, db *tech.DB, opts ...engine.Option) ([]*report.Table, error) {
	ids := IDs()
	return engine.Run(ctx, len(ids), func(_ context.Context, i int, _ *core.Hooks) (*report.Table, error) {
		t, err := Run(ids[i], db)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", ids[i], err)
		}
		return t, nil
	}, opts...)
}

// evaluateAll batch-evaluates a slice of systems with the shared memo
// cache — the common inner loop of the per-figure tuple sweeps.
func evaluateAll(db *tech.DB, systems []*core.System) ([]*core.Report, error) {
	return engine.EvaluateBatch(context.Background(), db, systems)
}

// nodeTuples is the technology-combination sweep of Fig. 7: the first
// entry is the 7 nm monolith, the rest are (digital, memory, analog)
// chiplet node assignments.
type nodeTuple struct {
	digital, memory, analog int
	monolithic              bool
}

func (nt nodeTuple) label() string {
	if nt.monolithic {
		return fmt.Sprintf("(%d,%d,%d)-mono", nt.digital, nt.memory, nt.analog)
	}
	return fmt.Sprintf("(%d,%d,%d)", nt.digital, nt.memory, nt.analog)
}

var fig7Tuples = []nodeTuple{
	{7, 7, 7, true},
	{7, 7, 7, false},
	{7, 10, 10, false},
	{7, 10, 14, false},
	{7, 14, 10, false},
	{7, 14, 14, false},
	{10, 10, 10, false},
	{10, 14, 14, false},
	{14, 14, 14, false},
}

package ecochip

// Facade coverage of the batch-evaluation engine: the exported
// EvaluateBatch / *Ctx workflows must behave exactly like their serial
// counterparts while exposing the engine's knobs (workers, shared
// cache, progress).

import (
	"context"
	"sync"
	"testing"
)

func TestFacadeEvaluateBatch(t *testing.T) {
	db := DefaultDB()
	systems := []*System{
		GA102(db, 7, 14, 10, false),
		GA102(db, 7, 7, 7, true),
		A15(db, 7, 14, 10, false),
		EMR(db, 10, false),
	}
	cache := NewEvalCache()
	var mu sync.Mutex
	calls := 0
	reports, err := EvaluateBatch(context.Background(), db, systems,
		WithWorkers(2), WithCache(cache), WithProgress(func(done, total int) {
			mu.Lock()
			calls++
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(systems) {
		t.Fatalf("got %d reports for %d systems", len(reports), len(systems))
	}
	for i, s := range systems {
		want, err := s.Evaluate(db)
		if err != nil {
			t.Fatal(err)
		}
		if reports[i].TotalKg() != want.TotalKg() || reports[i].EmbodiedKg() != want.EmbodiedKg() {
			t.Errorf("system %d: batch report differs from serial Evaluate", i)
		}
	}
	if calls != len(systems) {
		t.Errorf("progress callback ran %d times, want %d", calls, len(systems))
	}
	if stats := cache.Stats(); stats.DieMisses == 0 {
		t.Error("shared cache saw no die computations")
	}
}

func TestFacadeNodeSweepCtxMatchesNodeSweep(t *testing.T) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	nodes := []int{7, 10, 14}
	cp := DefaultCostParams()
	serial, err := NodeSweep(base, db, nodes, cp)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NodeSweepCtx(context.Background(), base, db, nodes, cp, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Label() != parallel[i].Label() || serial[i].EmbodiedKg != parallel[i].EmbodiedKg ||
			serial[i].CostUSD != parallel[i].CostUSD {
			t.Errorf("point %d differs between serial and parallel sweep", i)
		}
	}
}

func TestFacadeUncertaintyCtxReproducible(t *testing.T) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	d1, err := UncertaintyCtx(context.Background(), base, db, 100, 7, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := UncertaintyCtx(context.Background(), base, db, 100, 7, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("fixed-seed Monte Carlo must not depend on worker count")
	}
	// The plain facade entry point remains seeded and must agree with the
	// engine path.
	d3, err := Uncertainty(base, db, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Error("Uncertainty and UncertaintyCtx diverge for the same seed")
	}
}

func TestFacadeTornadoCtx(t *testing.T) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	serial, err := Tornado(base, db, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := TornadoCtx(context.Background(), base, db, 0.25, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("factor counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("factor %d differs: serial %+v parallel %+v", i, serial[i], parallel[i])
		}
	}
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ecochip/internal/core"
)

func TestRunScratchPerWorkerState(t *testing.T) {
	type scratch struct{ id int }
	var created atomic.Int32
	n := 64
	owners := make([]*scratch, n)
	_, err := RunScratch(context.Background(), n,
		func(h *core.Hooks) (*scratch, error) {
			return &scratch{id: int(created.Add(1))}, nil
		},
		func(_ context.Context, i int, sc *scratch) (int, error) {
			owners[i] = sc
			return i, nil
		},
		WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := created.Load(); got < 1 || got > 4 {
		t.Errorf("created %d scratches for 4 workers", got)
	}
	for i, sc := range owners {
		if sc == nil {
			t.Fatalf("point %d saw no scratch", i)
		}
	}
}

func TestRunScratchInitError(t *testing.T) {
	boom := errors.New("scratch init failed")
	_, err := RunScratch(context.Background(), 8,
		func(h *core.Hooks) (int, error) { return 0, boom },
		func(_ context.Context, i int, _ int) (int, error) { return i, nil },
		WithWorkers(2))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the scratch init error", err)
	}
}

func TestRunBlocksCoversRange(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		n := 23
		seen := make([]atomic.Int32, n)
		err := RunBlocks(context.Background(), n, func(_ context.Context, lo, hi int, tick func()) error {
			if lo > hi || lo < 0 || hi > n {
				return fmt.Errorf("bad block [%d, %d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
				tick()
			}
			return nil
		}, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestRunBlocksProgress(t *testing.T) {
	var mu sync.Mutex
	var last int
	calls := 0
	err := RunBlocks(context.Background(), 17, func(_ context.Context, lo, hi int, tick func()) error {
		for i := lo; i < hi; i++ {
			tick()
		}
		return nil
	}, WithWorkers(4), WithProgress(func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if done != last+1 || total != 17 {
			t.Errorf("progress (%d, %d) after %d", done, total, last)
		}
		last = done
		calls++
	}))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 17 {
		t.Errorf("progress called %d times, want 17", calls)
	}
}

func TestRunBlocksErrorWins(t *testing.T) {
	boom := errors.New("block failed")
	err := RunBlocks(context.Background(), 40, func(ctx context.Context, lo, hi int, tick func()) error {
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return err // must not mask the real failure
			}
			if i == 11 {
				return boom
			}
			tick()
		}
		return nil
	}, WithWorkers(4))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the block error", err)
	}
}

func TestRunBlocksParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := RunBlocks(ctx, 10, func(ctx context.Context, lo, hi int, tick func()) error {
		return ctx.Err()
	}, WithWorkers(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunBlocksZero(t *testing.T) {
	if err := RunBlocks(context.Background(), 0, func(_ context.Context, lo, hi int, tick func()) error {
		return errors.New("must not run")
	}); err != nil {
		t.Fatal(err)
	}
}

// Package mfg implements the per-chiplet manufacturing-carbon model of
// Section III-C of the ECO-CHIP paper (Eqs. (5) and (6)):
//
//	C_mfg,i = CFPA * A_die(d, p)  +  CFPA_Si * A_wasted
//	CFPA    = (eta_eq * C_mfg,src * EPA(p) + C_gas + C_material) / Y(d, p)
//
// CFPA is the carbon footprint per unit area of a *good* die: the fab
// energy (derated by process-equipment efficiency eta_eq and converted to
// carbon by the fab's energy-source intensity), direct greenhouse-gas
// emissions and material sourcing, all divided by yield because every
// failed die's emissions are borne by the good ones. The second term
// charges each die its amortized share of the silicon wasted around the
// wafer periphery (Eqs. (7)-(8), package wafer); the wasted area is fully
// processed but never divided by yield since no good die is expected from
// it.
package mfg

import (
	"fmt"

	"ecochip/internal/tech"
	"ecochip/internal/wafer"
	"ecochip/internal/yieldmodel"
)

// Carbon-intensity presets in kg CO2/kWh (Table I: 30 - 700 g CO2/kWh).
const (
	// IntensityCoal is the paper's default fab energy source
	// (700 g CO2/kWh).
	IntensityCoal = 0.700
	// IntensityGas is a natural-gas-dominated grid.
	IntensityGas = 0.450
	// IntensityWorldGrid approximates the world-average grid mix.
	IntensityWorldGrid = 0.300
	// IntensityRenewable is a wind/solar-dominated supply (30 g CO2/kWh).
	IntensityRenewable = 0.030
)

// Params bundles the fab-level knobs of the manufacturing model.
type Params struct {
	// CarbonIntensity is C_mfg,src in kg CO2/kWh.
	CarbonIntensity float64
	// Wafer is the manufacturing wafer geometry.
	Wafer wafer.Wafer
	// Alpha is the yield-clustering parameter (Table I: 3).
	Alpha float64
	// IncludeWastage toggles the wafer-periphery term; Fig. 3(b)
	// compares CFP with and without it.
	IncludeWastage bool
	// DefectDensityOverride, when positive, replaces the node's defect
	// density (used by the Fig. 6(b) sensitivity sweep).
	DefectDensityOverride float64
}

// DefaultParams returns the paper's experimental setup: coal-powered fab
// (700 g CO2/kWh), 450 mm wafer, alpha = 3, wastage modeled.
func DefaultParams() Params {
	return Params{
		CarbonIntensity: IntensityCoal,
		Wafer:           wafer.Default(),
		Alpha:           yieldmodel.DefaultAlpha,
		IncludeWastage:  true,
	}
}

// Validate checks the Table I ranges.
func (p Params) Validate() error {
	if p.CarbonIntensity < 0.030 || p.CarbonIntensity > 0.700 {
		return fmt.Errorf("mfg: carbon intensity %g kg/kWh outside Table I range [0.030, 0.700]", p.CarbonIntensity)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("mfg: alpha must be positive, got %g", p.Alpha)
	}
	if p.DefectDensityOverride != 0 && (p.DefectDensityOverride < 0.07 || p.DefectDensityOverride > 0.3) {
		return fmt.Errorf("mfg: defect density override %g outside Table I range [0.07, 0.3]", p.DefectDensityOverride)
	}
	return p.Wafer.Validate()
}

// Result is the manufacturing-carbon breakdown of one die.
type Result struct {
	// AreaMM2 is the die area.
	AreaMM2 float64
	// Yield is Y(d, p) from the negative-binomial model.
	Yield float64
	// DiesPerWafer is DPW from Eq. (7).
	DiesPerWafer int
	// WastedAreaMM2 is the amortized periphery waste per die, Eq. (8).
	WastedAreaMM2 float64
	// CFPAKgPerCM2 is the carbon footprint per cm^2 of good die.
	CFPAKgPerCM2 float64
	// DieKg is the CFPA * area term in kg CO2.
	DieKg float64
	// WastageKg is the periphery term in kg CO2.
	WastageKg float64
}

// TotalKg is the total manufacturing carbon of the die in kg CO2.
func (r Result) TotalKg() float64 { return r.DieKg + r.WastageKg }

// Die computes the manufacturing carbon of a die of the given area and
// design type in the given node.
func Die(n *tech.Node, d tech.DesignType, areaMM2 float64, p Params) (Result, error) {
	if areaMM2 <= 0 {
		return Result{}, fmt.Errorf("mfg: die area must be positive, got %g", areaMM2)
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	d0 := n.DefectDensity
	if p.DefectDensityOverride > 0 {
		d0 = p.DefectDensityOverride
	}
	y := yieldmodel.DieAlpha(areaMM2, d0, p.Alpha)

	// Raw (unyielded) carbon per cm^2 of processed wafer.
	rawKgPerCM2 := n.EquipEfficiency*p.CarbonIntensity*n.EPA + n.GasCFP + n.MaterialCFP
	cfpa := rawKgPerCM2 / y

	res := Result{
		AreaMM2:      areaMM2,
		Yield:        y,
		CFPAKgPerCM2: cfpa,
		DieKg:        cfpa * areaMM2 / 100,
	}
	if p.IncludeWastage {
		wasted, err := p.Wafer.WastedAreaPerDie(areaMM2)
		if err != nil {
			return Result{}, err
		}
		res.DiesPerWafer = p.Wafer.DiesPerWafer(areaMM2)
		res.WastedAreaMM2 = wasted
		res.WastageKg = rawKgPerCM2 * wasted / 100
	}
	return res, nil
}

// DieForTransistors is Die with the area derived from the node's
// area-scaling model for the given transistor count.
func DieForTransistors(n *tech.Node, d tech.DesignType, transistors float64, p Params) (Result, error) {
	return Die(n, d, n.Area(d, transistors), p)
}

package shard

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"ecochip/internal/explore"
)

// Streamed fronts must tighten monotonically (a point leaves a snapshot
// only because a later block dominated it) and the final snapshot must
// be bit-identical to the barrier ParetoFront.
func TestParetoFrontStreamMonotoneAndParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	plan, cat, key := testSweep(t, rng)
	objectives := []Objective{ObjEmbodied, ObjCost}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		t.Fatal(err)
	}
	want, wantTotal, err := plan.ParetoFrontCtx(context.Background(), ms)
	if err != nil {
		t.Fatal(err)
	}

	co := NewCoordinator(plan, key, []Transport{NewReplica(cat), NewReplica(cat)}, fastCfg())
	var snaps []FrontSnapshot
	got, gotTotal, err := co.ParetoFrontStream(context.Background(), objectives, func(s FrontSnapshot) error {
		snaps = append(snaps, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotTotal != wantTotal {
		t.Errorf("total = %d, want %d", gotTotal, wantTotal)
	}
	assertSamePoints(t, want, got, "streamed front (return)")

	if len(snaps) == 0 {
		t.Fatal("no snapshots emitted")
	}
	final := snaps[len(snaps)-1]
	if final.BlocksDone != final.TotalBlocks {
		t.Fatalf("final snapshot at %d/%d blocks", final.BlocksDone, final.TotalBlocks)
	}
	assertSamePoints(t, want, final.Front, "streamed front (final snapshot)")

	dominated := func(p explore.Point, front []explore.Point) bool {
		pv := []float64{ms[0](p), ms[1](p)}
		for _, q := range front {
			qv := []float64{ms[0](q), ms[1](q)}
			if (qv[0] < pv[0] || qv[1] < pv[1]) && qv[0] <= pv[0] && qv[1] <= pv[1] {
				return true
			}
		}
		return false
	}
	prevDone := -1
	for i, s := range snaps {
		if s.BlocksDone <= prevDone {
			t.Fatalf("snapshot %d: BlocksDone %d did not advance past %d", i, s.BlocksDone, prevDone)
		}
		prevDone = s.BlocksDone
		if i == 0 {
			continue
		}
		// Every point of the previous snapshot either survives into this
		// one or is dominated by one of its points.
		next := s.Front
		for _, p := range snaps[i-1].Front {
			ok := false
			for _, q := range next {
				if samePoint(p, q) {
					ok = true
					break
				}
			}
			if !ok && !dominated(p, next) {
				t.Fatalf("snapshot %d: point %+v vanished without a dominator", i, p)
			}
		}
	}
}

// An emit error must cancel the run and surface unchanged.
func TestParetoFrontStreamEmitError(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	plan, cat, key := testSweep(t, rng)
	boom := errors.New("client went away")
	co := NewCoordinator(plan, key, []Transport{NewReplica(cat)}, fastCfg())
	_, _, err := co.ParetoFrontStream(context.Background(), []Objective{ObjEmbodied, ObjCost},
		func(FrontSnapshot) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
}

// The stream path must survive the chaos transports exactly like the
// barrier path: whatever the fault pattern, the final front is exact.
func TestParetoFrontStreamUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	plan, cat, key := testSweep(t, rng)
	objectives := []Objective{ObjEmbodied, ObjTotal}
	ms, err := ObjectiveMetrics(objectives)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := plan.ParetoFrontCtx(context.Background(), ms)
	if err != nil {
		t.Fatal(err)
	}
	spec := FaultSpec{Drop: 0.2, Dup: 0.2, Err: 0.2, Seed: 5}
	transports := []Transport{
		Fault(NewReplica(cat), spec),
		Fault(NewReplica(cat), spec),
		NewReplica(cat),
	}
	cfg := fastCfg()
	co := NewCoordinator(plan, key, transports, cfg)
	got, _, err := co.ParetoFrontStream(context.Background(), objectives, func(FrontSnapshot) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "streamed front under faults")
}

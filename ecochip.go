// Package ecochip is the public facade of the ECO-CHIP carbon estimator
// for chiplet-based (heterogeneously integrated) VLSI systems, a Go
// implementation of "ECO-CHIP: Estimation of Carbon Footprint of
// Chiplet-based Architectures for Sustainable VLSI" (HPCA 2024).
//
// A System describes a monolithic SoC or a multi-chiplet package;
// Evaluate returns the total carbon footprint decomposed per Eq. (1)-(2)
// of the paper:
//
//	C_tot = C_emb + lifetime * C_op
//	C_emb = C_mfg + C_des + C_HI
//
// Quick start:
//
//	db := ecochip.DefaultDB()
//	sys := ecochip.GA102(db, 7, 14, 10, false) // digital 7nm, memory 14nm, analog 10nm
//	rep, err := sys.Evaluate(db)
//	fmt.Println(rep.EmbodiedKg(), rep.TotalKg())
//
// The subpackages under internal/ hold the individual models (technology
// database, yield, wafer geometry, floorplanning, packaging, NoC, design
// and operational carbon, ACT baseline, dollar cost); this package
// re-exports the surface a downstream user needs.
package ecochip

import (
	"context"
	"net/http"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/descarbon"
	"ecochip/internal/engine"
	"ecochip/internal/experiments"
	"ecochip/internal/explore"
	"ecochip/internal/floorplan"
	"ecochip/internal/kernel"
	"ecochip/internal/lru"
	"ecochip/internal/mfg"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/report"
	"ecochip/internal/roadmap"
	"ecochip/internal/sensitivity"
	"ecochip/internal/serve"
	"ecochip/internal/shard"
	"ecochip/internal/shard/health"
	"ecochip/internal/shard/netx"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
	"ecochip/internal/uncertainty"
)

// Core model types.
type (
	// System is a monolithic or chiplet-based design point.
	System = core.System
	// Chiplet is one block of a System.
	Chiplet = core.Chiplet
	// Report is the carbon breakdown produced by System.Evaluate.
	Report = core.Report
	// ChipletReport is the per-die slice of a Report.
	ChipletReport = core.ChipletReport
	// TechDB is the technology-node parameter database.
	TechDB = tech.DB
	// Node is one technology node's parameters.
	Node = tech.Node
	// DesignType classifies a block as logic, memory or analog.
	DesignType = tech.DesignType
	// PackagingParams configures the HI packaging model.
	PackagingParams = pkgcarbon.Params
	// Architecture selects the packaging technology.
	Architecture = pkgcarbon.Architecture
	// CostBreakdown is the dollar-cost result.
	CostBreakdown = cost.Breakdown
	// Table is the tabular result of an experiment run.
	Table = report.Table
)

// Design-type constants.
const (
	Logic  = tech.Logic
	Memory = tech.Memory
	Analog = tech.Analog
)

// Packaging architectures.
const (
	RDLFanout         = pkgcarbon.RDLFanout
	SiliconBridge     = pkgcarbon.SiliconBridge
	PassiveInterposer = pkgcarbon.PassiveInterposer
	ActiveInterposer  = pkgcarbon.ActiveInterposer
	ThreeD            = pkgcarbon.ThreeD
)

// DefaultDB returns the built-in technology database calibrated to the
// Table I parameter ranges of the paper.
func DefaultDB() *TechDB { return tech.Default() }

// DefaultPackaging returns the paper's packaging defaults for an
// architecture (65 nm packaging node, coal-powered fab, EMIB-spec
// bridges, 512-bit NoC).
func DefaultPackaging(arch Architecture) PackagingParams { return pkgcarbon.DefaultParams(arch) }

// DefaultCostParams returns the dollar-cost model defaults.
func DefaultCostParams() cost.Params { return cost.DefaultParams() }

// DefaultMfgParams returns the manufacturing-model defaults (Table I).
func DefaultMfgParams() mfg.Params { return mfg.DefaultParams() }

// DefaultDesignParams returns the design-carbon model defaults.
func DefaultDesignParams() descarbon.Params { return descarbon.DefaultParams() }

// BlockFromArea builds a Chiplet from a die-area measurement at a
// reference node (the form teardown data arrives in).
func BlockFromArea(name string, t DesignType, areaMM2 float64, ref *Node, targetNm int) Chiplet {
	return core.BlockFromArea(name, t, areaMM2, ref, targetNm)
}

// Built-in industry testcases (Section IV of the paper).
var (
	// GA102 builds the NVIDIA GA102 GPU as a 3-chiplet system (or the
	// monolithic baseline).
	GA102 = testcases.GA102
	// A15 builds the Apple A15 mobile SoC.
	A15 = testcases.A15
	// EMR builds the Intel Emerald Rapids 2-chiplet EMIB CPU.
	EMR = testcases.EMR
	// ARVR builds the 3D-stacked AR/VR accelerator of Fig. 13.
	ARVR = testcases.ARVR
	// GA102Split builds the GA102 with its digital block split into nc
	// chiplets (the Figs. 9/10/15b workload).
	GA102Split = testcases.GA102Split
)

// Experiments reproduces a figure of the paper's evaluation by id
// ("fig2a" ... "fig15b", "tbl1", plus "ext-*" extensions);
// ExperimentIDs lists the known ids.
func Experiments(id string, db *TechDB) (*Table, error) { return experiments.Run(id, db) }

// ExperimentIDs lists every reproducible figure id.
func ExperimentIDs() []string { return experiments.IDs() }

// Design-space exploration and analysis (Section VI workflows).
type (
	// DesignPoint is one evaluated candidate in a design-space sweep.
	DesignPoint = explore.Point
	// DisaggregationPlan is the result of the greedy block-grouping
	// optimizer.
	DisaggregationPlan = explore.Plan
	// SensitivityResult is one factor of a tornado analysis.
	SensitivityResult = sensitivity.Result
	// Generation is one product generation in a reuse roadmap.
	Generation = roadmap.Generation
	// RoadmapReport is a multi-generation reuse evaluation.
	RoadmapReport = roadmap.Report
)

// NodeSweep evaluates every node combination of a system (carbon + cost).
func NodeSweep(base *System, db *TechDB, nodes []int, cp cost.Params) ([]DesignPoint, error) {
	return explore.NodeSweep(base, db, nodes, cp)
}

// SweepMetric extracts one minimized objective from a design point.
type SweepMetric = explore.Metric

// Standard sweep objectives.
var (
	// SweepByEmbodied minimizes embodied carbon.
	SweepByEmbodied = explore.ByEmbodied
	// SweepByTotal minimizes total (lifetime) carbon.
	SweepByTotal = explore.ByTotal
	// SweepByCost minimizes dollar cost.
	SweepByCost = explore.ByCost
	// SweepByArea minimizes package footprint.
	SweepByArea = explore.ByArea
)

// ParetoFront filters design points to the non-dominated set.
func ParetoFront(points []DesignPoint, objectives ...SweepMetric) []DesignPoint {
	return explore.ParetoFront(points, objectives...)
}

// DisaggregationStats counts the work of one compiled Disaggregate
// search: greedy steps and candidate evaluations, merged-die cell memo
// traffic, pooled-scratch reuse and the folded incremental-floorplan
// counters (whose diff fields report the name-keyed remove/insert diff
// serving the candidates). Returned in DisaggregationPlan.Stats; its
// String is the summary ecodse prints under -progress.
type DisaggregationStats = explore.DisaggregateStats

// Disaggregate runs the greedy block-to-chiplet grouping optimizer. The
// search runs end-to-end on retained state: merged-die cells are
// memoized per group pair across greedy steps, worker scratches (with
// their packaging estimators and retained floorplan trees) are pooled
// across the whole search, and each candidate's floorplan is a
// name-keyed remove/insert fork of the step's pinned base tree. The
// trajectory is bit-identical to DisaggregateReference.
func Disaggregate(base *System, db *TechDB) (*DisaggregationPlan, error) {
	return explore.Disaggregate(base, db)
}

// DisaggregateCtx is Disaggregate with cancellation and engine options.
func DisaggregateCtx(ctx context.Context, base *System, db *TechDB, opts ...EngineOption) (*DisaggregationPlan, error) {
	return explore.DisaggregateCtx(ctx, base, db, opts...)
}

// DisaggregateReference is the uncompiled evaluate-per-candidate greedy
// search: the oracle and baseline the compiled search is tested and
// benchmarked against.
func DisaggregateReference(ctx context.Context, base *System, db *TechDB) (*DisaggregationPlan, error) {
	return explore.DisaggregateReference(ctx, base, db)
}

// Tornado runs a one-at-a-time sensitivity analysis at +/- rel.
func Tornado(base *System, db *TechDB, rel float64) ([]SensitivityResult, error) {
	return sensitivity.Tornado(base, db, rel)
}

// EvaluateRoadmap scores a multi-generation product roadmap with
// cross-generation chiplet reuse.
func EvaluateRoadmap(db *TechDB, generations []Generation) (*RoadmapReport, error) {
	return roadmap.Evaluate(db, generations)
}

// EPYC builds the 8-CCD-class server testcase (AMD-style chiplet CPU).
var EPYC = testcases.EPYC

// EPYCMonolith builds its hypothetical monolithic counterpart.
var EPYCMonolith = testcases.EPYCMonolith

// CarbonDistribution summarizes a Monte Carlo uncertainty run.
type CarbonDistribution = uncertainty.Distribution

// Uncertainty propagates Table I input uncertainty through the model:
// n seeded Monte Carlo samples of the system's embodied carbon.
func Uncertainty(base *System, db *TechDB, n int, seed int64) (CarbonDistribution, error) {
	return uncertainty.Run(base, db, uncertainty.DefaultSpread(), n, seed)
}

// Batch-evaluation engine (the parallel backend under every Section VI
// workflow; see internal/engine).
type (
	// EngineOption configures a batch evaluation: worker count, shared
	// memo cache, progress callback.
	EngineOption = engine.Option
	// EvalCache is the concurrency-safe memo cache of per-die sub-model
	// results; share one across batches with WithCache.
	EvalCache = engine.Cache
	// EvalCacheStats reports cache hit counters.
	EvalCacheStats = engine.Stats
	// EvalHooks is the sub-model interception seam of a System
	// evaluation (see System.EvaluateWith).
	EvalHooks = core.Hooks
)

// Engine options.
var (
	// WithWorkers sets the worker count (0 = GOMAXPROCS, 1 = serial).
	WithWorkers = engine.WithWorkers
	// WithCache shares a memo cache across batch calls.
	WithCache = engine.WithCache
	// WithoutCache disables memoization (the uncached reference path).
	WithoutCache = engine.WithoutCache
	// WithProgress registers a (done, total) progress callback.
	WithProgress = engine.WithProgress
)

// NewEvalCache returns an empty sub-model memo cache.
func NewEvalCache() *EvalCache { return engine.NewCache() }

// EvaluateBatch evaluates many systems against the database across a
// worker pool with a shared memo cache. results[i] corresponds to
// systems[i] and is byte-identical to systems[i].Evaluate(db) — the
// parallelism and caching never change a float.
func EvaluateBatch(ctx context.Context, db *TechDB, systems []*System, opts ...EngineOption) ([]*Report, error) {
	return engine.EvaluateBatch(ctx, db, systems, opts...)
}

// NodeSweepCtx is NodeSweep with cancellation and engine options. It
// compiles the sweep into a dense per-(chiplet, node) table first (see
// CompileNodeSweep); systems without a compiled fast path fall back to
// NodeSweepReference. Both paths return bit-identical points.
func NodeSweepCtx(ctx context.Context, base *System, db *TechDB, nodes []int, cp cost.Params, opts ...EngineOption) ([]DesignPoint, error) {
	return explore.NodeSweepCtx(ctx, base, db, nodes, cp, opts...)
}

// Compiled sweep plans (the near-zero-allocation sweep hot path).
type (
	// SweepPlan is a compiled node sweep: the base system validated
	// once and every per-(chiplet, node) invariant — area, die
	// manufacturing result, design carbon, NRE share, die dollar cost —
	// precomputed into a dense table. Run it any number of times; it is
	// immutable and safe for concurrent use.
	SweepPlan = explore.CompiledPlan
	// SweepPlanStats counts the work a compiled plan performed,
	// including the incremental-floorplan reuse counters in its
	// Floorplan field.
	SweepPlanStats = explore.SweepStats
	// FloorplanTreeStats counts the work of a retained incremental
	// floorplan tree: fast-path relayouts vs full rebuilds, topology
	// fallbacks, and the mean relayout depth.
	FloorplanTreeStats = floorplan.TreeStats
)

// ErrNoSweepFastPath reports that a system cannot be compiled into a
// dense sweep plan (multi-chiplet monolithic bases); use
// NodeSweepReference instead.
var ErrNoSweepFastPath = explore.ErrNoFastPath

// CompileNodeSweep builds the compiled sweep plan for evaluating base
// under every combination of the candidate nodes. Compile once, then
// plan.RunCtx per run, plan.Walk to stream points without materializing
// the result slice, or plan.ParetoFrontCtx for a front folded into the
// sweep walk (front-only callers never allocate the full point slice).
func CompileNodeSweep(base *System, db *TechDB, nodes []int, cp cost.Params) (*SweepPlan, error) {
	return explore.Compile(base, db, nodes, cp)
}

// NodeSweepReference is the uncompiled per-point sweep (clone, validate,
// memo-cached sub-models for every point): the oracle and baseline the
// compiled plan is tested and benchmarked against.
func NodeSweepReference(ctx context.Context, base *System, db *TechDB, nodes []int, cp cost.Params, opts ...EngineOption) ([]DesignPoint, error) {
	return explore.NodeSweepReference(ctx, base, db, nodes, cp, opts...)
}

// Fault-tolerant distributed sweep sharding (see internal/shard): a
// coordinator hands out leased block ranges of a compiled plan to
// stateless replicas that compile the plan locally from its content key
// and stream per-block results back; lost, late, duplicated or crashed
// work is re-leased and deduplicated, and the output stays bit-identical
// to the single-process plan.
type (
	// ShardCoordinator drives one compiled plan across replica
	// transports under the lease protocol (NewShardCoordinator).
	ShardCoordinator = shard.Coordinator
	// ShardConfig tunes block size, lease span and timeout, retry
	// backoff and the fallback policy; the zero value has production
	// defaults.
	ShardConfig = shard.Config
	// ShardStats is a coordinator's protocol-counter snapshot (leases
	// granted/expired, blocks re-leased/deduped/local, replicas lost).
	ShardStats = shard.Stats
	// ShardPlanSource resolves plan keys to compiled plans on a replica.
	ShardPlanSource = shard.PlanSource
	// ShardCatalog is the in-process ShardPlanSource: sweeps registered
	// under their derived key, compiled lazily per replica.
	ShardCatalog = shard.Catalog
	// ShardReplica executes leases against locally compiled plans; it is
	// also the in-process loopback ShardTransport.
	ShardReplica = shard.Replica
	// ShardTransport carries leases to one replica endpoint and streams
	// its per-block results back.
	ShardTransport = shard.Transport
	// ShardFaultSpec is a seeded fault schedule for ShardFault (drops,
	// duplicates, transient errors, crashes, delivery delays).
	ShardFaultSpec = shard.FaultSpec
	// ShardObjective names a sweep metric in wire-encodable form for
	// front-mode leases.
	ShardObjective = shard.Objective
	// ShardExhaustedError reports total replica loss under
	// ShardConfig.DisableFallback.
	ShardExhaustedError = shard.ExhaustedError
)

// Front-mode shard objectives (wire-encodable SweepMetric names).
const (
	// ShardByEmbodied minimizes embodied carbon (SweepByEmbodied).
	ShardByEmbodied = shard.ObjEmbodied
	// ShardByTotal minimizes total lifetime carbon (SweepByTotal).
	ShardByTotal = shard.ObjTotal
	// ShardByCost minimizes dollar cost (SweepByCost).
	ShardByCost = shard.ObjCost
	// ShardByArea minimizes package footprint (SweepByArea).
	ShardByArea = shard.ObjArea
)

// SweepPlanKey derives the content key of a sweep: a stable hash of the
// base system, candidate nodes, cost parameters and the technology
// database records they reach. Coordinator and replicas derive the same
// key from the same inputs, which is how replicas compile plans locally
// instead of receiving them over the wire.
func SweepPlanKey(base *System, db *TechDB, nodes []int, cp cost.Params) (string, error) {
	return explore.PlanKey(base, db, nodes, cp)
}

// NewShardCatalog returns an empty in-process plan catalog.
func NewShardCatalog() *ShardCatalog { return shard.NewCatalog() }

// NewShardReplica builds a replica over a plan source; the returned
// value is also the loopback transport for that replica.
func NewShardReplica(source ShardPlanSource) *ShardReplica { return shard.NewReplica(source) }

// NewShardCoordinator builds a coordinator for a compiled plan
// (identified by its SweepPlanKey) over the given replica transports.
// An empty transport list is legal: every run degrades to the local
// single-process walk.
func NewShardCoordinator(plan *SweepPlan, key string, transports []ShardTransport, cfg ShardConfig) *ShardCoordinator {
	return shard.NewCoordinator(plan, key, transports, cfg)
}

// ShardFault wraps a transport with a seeded fault schedule — the
// chaos-testing harness of the shard layer.
func ShardFault(inner ShardTransport, spec ShardFaultSpec) ShardTransport {
	return shard.Fault(inner, spec)
}

// The shard network transport: the lease protocol over persistent TCP
// connections in a binary frame format, with leases multiplexed (and
// pipelined) per connection and plans resolved from content keys on
// the replica side.
type (
	// ShardTransportCounters is the wire-level counter snapshot of a
	// networked transport; ShardStats.Wire folds these across a
	// coordinator's counted transports.
	ShardTransportCounters = shard.TransportCounters
	// ShardNetOptions tunes timeouts and frame limits on both ends of
	// the network transport; the zero value is usable.
	ShardNetOptions = netx.Options
	// ShardNetRegistry holds the shippable content of registered
	// sweeps, keyed by plan content key (NewShardNetRegistry).
	ShardNetRegistry = netx.Registry
	// ShardNetClient is a ShardTransport over one persistent TCP
	// connection to a replica server (DialShardTransport); passing the
	// same client to the coordinator several times pipelines that many
	// leases over the one socket.
	ShardNetClient = netx.Client
	// ShardNetServer is the replica daemon: it compiles plans from
	// shipped sweep content and executes leases for remote
	// coordinators (NewShardNetServer, ListenAndServeShard).
	ShardNetServer = netx.Server
)

// NewShardNetRegistry returns an empty sweep-content registry.
func NewShardNetRegistry() *ShardNetRegistry { return netx.NewRegistry() }

// DialShardTransport returns a lazily connecting network transport for
// one replica address.
func DialShardTransport(addr string, reg *ShardNetRegistry, opts ShardNetOptions) *ShardNetClient {
	return netx.DialTransport(addr, reg, opts)
}

// NewShardNetServer builds a replica server over a catalog and the
// tech database new registrations compile against.
func NewShardNetServer(cat *ShardCatalog, db *TechDB, opts ShardNetOptions) *ShardNetServer {
	return netx.NewServer(cat, db, opts)
}

// ListenAndServeShard binds addr and serves replica leases until ctx
// is cancelled, then drains gracefully. ready, when non-nil, receives
// the bound address once listening.
func ListenAndServeShard(ctx context.Context, addr string, cat *ShardCatalog, db *TechDB, opts ShardNetOptions, ready func(addr string)) error {
	return netx.ListenAndServe(ctx, addr, cat, db, opts, ready)
}

// ParseShardFaultSpec parses the textual fault-schedule syntax, e.g.
// "drop=0.1,dup=0.05,err=0.05,crash-after=7,delay=2ms,slow=40ms,flap=4,seed=42".
func ParseShardFaultSpec(s string) (ShardFaultSpec, error) { return shard.ParseFaultSpec(s) }

// The replica health fabric (see internal/shard/health): every
// transport is scored by a circuit breaker (consecutive failures plus a
// windowed error rate) and a lease-latency EWMA. Quarantined replicas
// receive single half-open probes on a doubling schedule instead of
// leases; straggling leases are speculatively re-leased to healthy
// replicas once their age passes an adaptive threshold (hedging —
// first-write-wins dedup keeps it bit-exact); draining replicas are
// skipped. ShardConfig.Health tunes the breaker, HedgeFactor/HedgeMin
// the hedging.
type (
	// ShardHealthConfig tunes a replica's circuit breaker and probe
	// schedule (ShardConfig.Health; the zero value derives defaults
	// from the retry policy).
	ShardHealthConfig = health.Config
	// ShardHealthState is a position in the replica health state
	// machine: Healthy, Degraded, Quarantined, HalfOpen.
	ShardHealthState = health.State
	// ShardHealthCounters snapshots one replica's breaker activity
	// (trips, probes, closes).
	ShardHealthCounters = health.Counters
	// ShardDrainingTransport is the optional transport interface that
	// reports a replica's graceful drain; the coordinator stops leasing
	// to draining replicas.
	ShardDrainingTransport = shard.DrainingTransport
)

// ErrShardAuthFailed is the typed rejection of a coordinator whose
// auth token a replica refused (ecoreplica -auth-token).
var ErrShardAuthFailed = shard.ErrAuthFailed

// TornadoCtx is Tornado with cancellation and engine options. It runs on
// a compiled parameter plan (see ParamPlan) and is bit-identical to
// TornadoReference.
func TornadoCtx(ctx context.Context, base *System, db *TechDB, rel float64, opts ...EngineOption) ([]SensitivityResult, error) {
	return sensitivity.TornadoCtx(ctx, base, db, rel, opts...)
}

// TornadoReference is the uncompiled tornado (a full memo-cached
// evaluation per perturbed point): the oracle and baseline the compiled
// path is tested and benchmarked against.
func TornadoReference(ctx context.Context, base *System, db *TechDB, rel float64, opts ...EngineOption) ([]SensitivityResult, error) {
	return sensitivity.TornadoReference(ctx, base, db, rel, opts...)
}

// UncertaintyCtx is Uncertainty with cancellation and engine options;
// the fixed-seed distribution is bit-identical at any worker count. It
// runs on a compiled parameter plan and is bit-identical to
// UncertaintyReference.
func UncertaintyCtx(ctx context.Context, base *System, db *TechDB, n int, seed int64, opts ...EngineOption) (CarbonDistribution, error) {
	return uncertainty.RunCtx(ctx, base, db, uncertainty.DefaultSpread(), n, seed, opts...)
}

// UncertaintyReference is the uncompiled Monte Carlo (per-sample
// database clone and full memo-cached evaluation): the oracle and
// baseline the compiled path is tested and benchmarked against.
func UncertaintyReference(ctx context.Context, base *System, db *TechDB, n int, seed int64, opts ...EngineOption) (CarbonDistribution, error) {
	return uncertainty.RunReference(ctx, base, db, uncertainty.DefaultSpread(), n, seed, opts...)
}

// Compiled parameter plans (the kernel under sensitivity/uncertainty;
// see internal/kernel for the full evaluation-kernel architecture).
type (
	// ParamPlan is a compiled parameter-perturbation plan: the base
	// system validated and tabulated once, perturbed evaluations
	// recomputing only the sub-models their dirty set invalidates.
	// Compile once with CompileParamPlan, evaluate any number of times;
	// a plan is immutable and safe for concurrent use.
	ParamPlan = kernel.ParamPlan
	// ParamPlanStats counts the work a parameter plan performed
	// (table hits vs recomputes, packaging re-estimates).
	ParamPlanStats = kernel.ParamStats
	// ParamScratch is one worker's reusable evaluation arena for a
	// parameter plan (build with ParamPlan.NewScratch; not safe for
	// concurrent use).
	ParamScratch = kernel.Scratch
	// ParamDirty flags the parameter groups a perturbed evaluation
	// touched (the fourth argument of ParamPlan.Eval).
	ParamDirty = kernel.Dirty
	// ParamTotals is one evaluated point's carbon/cost terms, as
	// returned by ParamPlan.Eval and ParamPlan.Walk (bit-identical to
	// the corresponding Report terms of a direct evaluation).
	ParamTotals = kernel.Totals
)

// ParamDirty flags (see kernel.Dirty for the recompute semantics).
const (
	// ParamDirtyNodes marks a perturbed technology database.
	ParamDirtyNodes = kernel.DirtyNodes
	// ParamDirtyMfg marks a changed System.Mfg.
	ParamDirtyMfg = kernel.DirtyMfg
	// ParamDirtyDesign marks a changed System.Design.
	ParamDirtyDesign = kernel.DirtyDesign
	// ParamDirtyPackaging marks a changed System.Packaging; when the
	// floorplan-shaping inputs (spacing, flexible shapes) are untouched
	// the evaluation reuses the base point's floorplan.
	ParamDirtyPackaging = kernel.DirtyPackaging
	// ParamDirtyAreas marks changed chiplet areas (transistor budgets or
	// node density tables): every per-chiplet sub-model and the whole
	// packaging estimate, floorplan included, recompute.
	ParamDirtyAreas = kernel.DirtyAreas
	// ParamDirtyOperation marks a changed (possibly in-place mutated)
	// System.Operation.
	ParamDirtyOperation = kernel.DirtyOperation
	// ParamDirtyVolume marks changed amortization volumes.
	ParamDirtyVolume = kernel.DirtyVolume
)

// CompileParamPlan builds the compiled parameter-perturbation plan of a
// base (system, database) pair — the shared fast path under TornadoCtx
// and UncertaintyCtx, exposed for servers that evaluate many what-if
// perturbations of one design. Batch studies should drive the plan
// through ParamPlan.Walk, which owns the per-worker scratch reuse and
// the tabulated column folds; ParamPlan.Eval is the single-point seam
// underneath it.
func CompileParamPlan(base *System, db *TechDB) (*ParamPlan, error) {
	return kernel.CompileParams(base, db)
}

// Serving layer (the ecoserve surface).
type (
	// CarbonServer answers concurrent what-if requests (node swaps,
	// area/volume perturbations, disaggregation searches, sweep fronts)
	// off content-keyed compiled-plan caches with single-flight
	// compilation. Warm answers are bit-identical to a cold
	// compile-and-run. Build with NewCarbonServer; expose over HTTP with
	// ServeHandler.
	CarbonServer = serve.Server
	// ServeConfig tunes a CarbonServer (plan-cache bound, engine
	// workers, stream replica fan-out); the zero value has production
	// defaults.
	ServeConfig = serve.Config
	// ServeStats snapshots a server's three plan caches (sweep,
	// parameter, disaggregation).
	ServeStats = serve.Stats
	// ServeSweepRequest asks for a node sweep (or its Pareto front) of
	// one system.
	ServeSweepRequest = serve.SweepRequest
	// ServeWhatIfRequest poses one what-if question: a node swap served
	// off the warm sweep plan, or an area/volume perturbation served off
	// the warm parameter plan.
	ServeWhatIfRequest = serve.WhatIfRequest
	// ServeDisaggregateRequest asks for the greedy disaggregation of a
	// system.
	ServeDisaggregateRequest = serve.DisaggregateRequest
	// PlanCacheStats counts one plan cache's hits, misses, coalesced
	// waits, builds and capacity evictions.
	PlanCacheStats = lru.Stats
	// ShardFrontSnapshot is one emission of a streamed Pareto front: the
	// front over every block folded so far, with run progress.
	ShardFrontSnapshot = shard.FrontSnapshot
	// DisaggregationSearch is a retained greedy disaggregation search:
	// compiled once per (system, db) with CompileDisaggregation, Run any
	// number of times — warm runs revisit the memoized candidate tables
	// and return bit-identical plans at a fraction of the cold cost.
	DisaggregationSearch = explore.DisaggregateSearch
)

// NewCarbonServer builds a what-if server over one technology database
// version. The database fixes every plan key, so a db upgrade is a new
// server whose keys all differ.
func NewCarbonServer(db *TechDB, cfg ServeConfig) *CarbonServer { return serve.NewServer(db, cfg) }

// ServeHandler exposes a CarbonServer over HTTP/JSON (POST /v1/sweep,
// /v1/whatif, /v1/disaggregate, /v1/sweep/stream NDJSON; GET /v1/stats).
func ServeHandler(s *CarbonServer) http.Handler { return serve.Handler(s) }

// NewShardCatalogCap returns an in-process plan catalog holding at most
// capacity compiled plans resident (capacity <= 0 means unbounded);
// evicted keys recompile on demand, bit-identically, from their
// registered constructors.
func NewShardCatalogCap(capacity int) *ShardCatalog { return shard.NewCatalogCap(capacity) }

// ParamPlanKey derives the content key of a parameter plan: a stable
// hash of the base system and the technology database. It is the cache
// identity CarbonServer uses for perturbation what-ifs.
func ParamPlanKey(base *System, db *TechDB) (string, error) { return explore.ParamKey(base, db) }

// DisaggregationKey derives the content key of a disaggregation search
// over (base, db) — the cache identity CarbonServer uses for
// disaggregation requests.
func DisaggregationKey(base *System, db *TechDB) (string, error) {
	return explore.DisaggregateKey(base, db)
}

// CompileDisaggregation builds the retained disaggregation search of a
// block-level system description. The search is safe for concurrent Run
// calls (runs serialize internally) and every run returns the same
// bits.
func CompileDisaggregation(base *System, db *TechDB) (*DisaggregationSearch, error) {
	return explore.CompileDisaggregate(base, db)
}

// Command ecochip is the ECO-CHIP carbon simulator CLI, mirroring the
// released tool's entry point:
//
//	ecochip --design_dir testcases/GA102
//
// It loads the JSON design description from the directory, prints the
// per-chiplet and per-source carbon breakdown, and — when the directory
// contains a node_list.txt — sweeps every technology-node combination
// across the chiplets and prints the design space sorted by embodied
// carbon.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ecochip/internal/config"
	"ecochip/internal/core"
	"ecochip/internal/report"
	"ecochip/internal/tech"
)

func main() {
	designDir := flag.String("design_dir", "", "directory with architecture.json etc. (required)")
	writeExample := flag.String("write_example", "", "write an example design directory to this path and exit")
	maxCombos := flag.Int("max_combos", 1000, "cap on node combinations explored")
	topN := flag.Int("top", 10, "show the N best combinations")
	flag.Parse()

	if *writeExample != "" {
		if err := config.WriteExampleDir(*writeExample); err != nil {
			fatal(err)
		}
		fmt.Printf("example design written to %s\n", *writeExample)
		return
	}
	if *designDir == "" {
		fmt.Fprintln(os.Stderr, "usage: ecochip --design_dir <dir> [--top N]")
		os.Exit(2)
	}

	if err := run(*designDir, *maxCombos, *topN, os.Stdout); err != nil {
		fatal(err)
	}
}

// run loads a design directory, prints its breakdown and, when a node
// list is present, the design-space sweep.
func run(designDir string, maxCombos, topN int, w io.Writer) error {
	db := tech.Default()
	system, nodes, err := config.LoadSystem(designDir, db)
	if err != nil {
		return err
	}
	rep, err := system.Evaluate(db)
	if err != nil {
		return err
	}
	if err := printBreakdown(w, rep); err != nil {
		return err
	}
	if len(nodes) > 0 && !system.Monolithic && len(system.Chiplets) > 1 {
		return explore(w, system, db, nodes, maxCombos, topN)
	}
	return nil
}

func printBreakdown(w io.Writer, rep *core.Report) error {
	t := report.New("per-chiplet breakdown: "+rep.System, "",
		"chiplet", "type", "node_nm", "area_mm2", "yield", "cmfg_kg", "cdes_amortized_kg")
	for _, c := range rep.Chiplets {
		t.AddRow(c.Name, c.Type.String(), report.I(c.NodeNm), report.F(c.AreaMM2),
			report.F(c.Yield), report.F(c.MfgKg), report.F(c.DesignKgAmortized))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}

	s := report.New("carbon summary (kg CO2e)", "",
		"cmfg", "cdes", "chi", "cemb", "cop_lifetime", "ctot")
	s.AddRow(report.F(rep.MfgKg), report.F(rep.DesignKg), report.F(rep.HIKg),
		report.F(rep.EmbodiedKg()), report.F(rep.OperationalKg), report.F(rep.TotalKg()))
	return s.Fprint(w)
}

// explore sweeps every node combination over the chiplets (bounded by
// maxCombos) and prints the best designs by embodied carbon.
func explore(w io.Writer, base *core.System, db *tech.DB, nodes []int, maxCombos, topN int) error {
	type result struct {
		label string
		emb   float64
		tot   float64
	}
	nc := len(base.Chiplets)
	combos := 1
	for i := 0; i < nc; i++ {
		combos *= len(nodes)
		if combos > maxCombos {
			return fmt.Errorf("ecochip: %d^%d node combinations exceed --max_combos=%d",
				len(nodes), nc, maxCombos)
		}
	}
	assign := make([]int, nc)
	var results []result
	var walk func(int) error
	walk = func(i int) error {
		if i == nc {
			picked := make([]int, nc)
			copy(picked, assign)
			s, err := base.WithNodes(picked...)
			if err != nil {
				return err
			}
			rep, err := s.Evaluate(db)
			if err != nil {
				return err
			}
			results = append(results, result{fmt.Sprint(picked), rep.EmbodiedKg(), rep.TotalKg()})
			return nil
		}
		for _, nm := range nodes {
			assign[i] = nm
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return err
	}
	sort.Slice(results, func(i, j int) bool { return results[i].emb < results[j].emb })
	if topN > len(results) {
		topN = len(results)
	}
	t := report.New(fmt.Sprintf("best %d of %d node combinations (by C_emb)", topN, len(results)), "",
		"nodes", "cemb_kg", "ctot_kg")
	for _, r := range results[:topN] {
		t.AddRow(r.label, report.F(r.emb), report.F(r.tot))
	}
	return t.Fprint(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecochip:", err)
	os.Exit(1)
}

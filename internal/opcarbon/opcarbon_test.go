package opcarbon

import (
	"math"
	"testing"
	"testing/quick"
)

func directSpec() Spec {
	return Spec{
		DutyCycle:       0.2,
		LifetimeYears:   2,
		CarbonIntensity: 0.700,
		AnnualEnergyKWh: 228, // the paper's GA102 E_use
	}
}

func TestDirectEnergy(t *testing.T) {
	s := directSpec()
	e, err := s.AnnualEnergyKWhTotal(0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 228 {
		t.Errorf("AnnualEnergyKWhTotal = %g, want 228", e)
	}
	kg, err := s.LifetimeKg(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 228 * 0.7 * 2
	if math.Abs(kg-want) > 1e-9 {
		t.Errorf("LifetimeKg = %g, want %g", kg, want)
	}
}

func TestElectricalModel(t *testing.T) {
	// Eq. (14): P = V*Ileak + alpha*C*V^2*f
	//             = 0.8*2 + 0.2*1e-9*0.64*2e9 = 1.6 + 0.256 = 1.856 W
	e := Electrical{Vdd: 0.8, LeakA: 2, Activity: 0.2, CapF: 1e-9, FreqHz: 2e9}
	if got, want := e.PowerW(), 0.8*2+0.2*1e-9*0.8*0.8*2e9; math.Abs(got-want) > 1e-12 {
		t.Errorf("PowerW = %g, want %g", got, want)
	}
	s := Spec{DutyCycle: 0.1, LifetimeYears: 3, CarbonIntensity: 0.3, Elec: &e}
	kwh, err := s.AnnualEnergyKWhTotal(0)
	if err != nil {
		t.Fatal(err)
	}
	want := e.PowerW() * 0.1 * HoursPerYear / 1000
	if math.Abs(kwh-want) > 1e-9 {
		t.Errorf("annual energy = %g, want %g", kwh, want)
	}
}

func TestBatteryModel(t *testing.T) {
	// 12.7 Wh battery charged daily at 85% efficiency.
	b := Battery{CapacityWh: 12.7, ChargesPerYear: 365, ChargerEfficiency: 0.85}
	want := 12.7 * 365 / 0.85 / 1000
	if got := b.AnnualKWh(); math.Abs(got-want) > 1e-12 {
		t.Errorf("AnnualKWh = %g, want %g", got, want)
	}
	// Zero efficiency defaults to 1.
	b2 := Battery{CapacityWh: 10, ChargesPerYear: 100}
	if got := b2.AnnualKWh(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("AnnualKWh with default efficiency = %g, want 1", got)
	}
	s := Spec{DutyCycle: 0.15, LifetimeYears: 2, CarbonIntensity: 0.5, Battery: &b}
	if _, err := s.AnnualKg(0); err != nil {
		t.Fatal(err)
	}
}

func TestExtraPower(t *testing.T) {
	s := directSpec()
	base, err := s.AnnualEnergyKWhTotal(0)
	if err != nil {
		t.Fatal(err)
	}
	withNoC, err := s.AnnualEnergyKWhTotal(10)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := 10 * 0.2 * HoursPerYear / 1000
	if math.Abs(withNoC-base-wantDelta) > 1e-9 {
		t.Errorf("router overhead delta = %g, want %g", withNoC-base, wantDelta)
	}
	if _, err := s.AnnualEnergyKWhTotal(-1); err == nil {
		t.Error("negative extra power should fail")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Spec{
		{},
		{DutyCycle: 2, LifetimeYears: 2, CarbonIntensity: 0.7, AnnualEnergyKWh: 1},
		{DutyCycle: 0.1, LifetimeYears: 0, CarbonIntensity: 0.7, AnnualEnergyKWh: 1},
		{DutyCycle: 0.1, LifetimeYears: 2, CarbonIntensity: 5, AnnualEnergyKWh: 1},
		// Two energy sources.
		{DutyCycle: 0.1, LifetimeYears: 2, CarbonIntensity: 0.7, AnnualEnergyKWh: 1,
			Battery: &Battery{CapacityWh: 1, ChargesPerYear: 1}},
		// Electrical without duty cycle.
		{LifetimeYears: 2, CarbonIntensity: 0.7,
			Elec: &Electrical{Vdd: 0.8, Activity: 0.5}},
		// Bad Vdd.
		{DutyCycle: 0.1, LifetimeYears: 2, CarbonIntensity: 0.7,
			Elec: &Electrical{Vdd: 3, Activity: 0.5}},
		// Bad battery.
		{DutyCycle: 0.1, LifetimeYears: 2, CarbonIntensity: 0.7,
			Battery: &Battery{CapacityWh: 0, ChargesPerYear: 1}},
		{DutyCycle: 0.1, LifetimeYears: 2, CarbonIntensity: 0.7,
			Battery: &Battery{CapacityWh: 1, ChargesPerYear: 1, ChargerEfficiency: 2}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation: %+v", i, s)
		}
	}
}

func TestElectricalValidate(t *testing.T) {
	good := Electrical{Vdd: 1.0, LeakA: 0.1, Activity: 0.3, CapF: 1e-9, FreqHz: 1e9}
	if err := good.Validate(); err != nil {
		t.Errorf("valid electrical rejected: %v", err)
	}
	bad := []Electrical{
		{Vdd: 0.5, Activity: 0.3},
		{Vdd: 1.0, LeakA: -1, Activity: 0.3},
		{Vdd: 1.0, Activity: 1.5},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("electrical %d should fail", i)
		}
	}
}

// Property: lifetime carbon is linear in lifetime and carbon intensity.
func TestLifetimeLinear(t *testing.T) {
	f := func(years, ci uint8) bool {
		y := float64(years%10) + 1
		c := 0.05 + float64(ci%60)/100
		s1 := Spec{DutyCycle: 0.1, LifetimeYears: y, CarbonIntensity: c, AnnualEnergyKWh: 100}
		s2 := s1
		s2.LifetimeYears = 2 * y
		k1, err1 := s1.LifetimeKg(0)
		k2, err2 := s2.LifetimeKg(0)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(k2-2*k1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package floorplan

import (
	"fmt"
	"math"
)

// This file is the retained-mode incremental planner. A Tree caches the
// outcome of one fixed-shape plan — the sorted order, the recursive
// area-balanced partition and every subtree's composed dimensions,
// orientation and sibling shift — so that re-planning after a small
// area change costs a cheap O(n) topology guard plus a relayout of the
// dirty leaf-to-root path instead of a full sort + partition + layout +
// adjacency scan.
//
// The contract is bit-identity with Scratch.Plan on the same blocks, by
// construction:
//
//   - The guard proves the sorted permutation and every partition
//     decision are unchanged, so the slicing topology (and with it the
//     leaf order) is exactly what a fresh plan would rebuild.
//   - A leaf's final coordinates in layoutSeg are a fold of its
//     ancestors' right-subtree shifts, applied leaf-to-root, each shift
//     being the single addition (lw + spacing) or (lh + spacing). The
//     tree caches exactly those shift values per node and replays the
//     fold per leaf, so every coordinate is produced by the same float
//     additions in the same order as the from-scratch layout.
//   - The adjacency rescan re-runs facing() only for pairs where a
//     rectangle moved; facing is pure per pair, so unmoved pairs keep
//     verdicts a full scan would reproduce, and the shared final sort
//     restores the full-scan output order (block names must be unique
//     for that order to be well defined — the same caveat the full
//     scan's sort carries).
//
// Any guard failure falls back to a full rebuild, which is the
// from-scratch algorithm itself, so no input can make the incremental
// path diverge: it can only decline.

// TreeStats counts the work a retained tree performed across Plan and
// Update calls.
type TreeStats struct {
	// Rebuilds counts full from-scratch builds: the first plan and any
	// plan whose shape (count, names, aspect ratios, spacing, adjacency
	// mode) changed.
	Rebuilds uint64
	// FastPath counts plans served by an incremental relayout of the
	// dirty paths with the retained topology.
	FastPath uint64
	// Fallbacks counts incremental attempts that hit a sort-order or
	// partition flip and rebuilt from scratch instead.
	Fallbacks uint64
	// Unchanged counts plans served entirely from the retained result
	// (no area differed).
	Unchanged uint64
	// RelayoutNodeSum is the total number of tree nodes recomposed by
	// fast-path plans; RelayoutNodeSum / FastPath is the mean relayout
	// depth.
	RelayoutNodeSum uint64
}

// MeanRelayoutDepth is the mean number of recomposed tree nodes per
// fast-path plan.
func (s TreeStats) MeanRelayoutDepth() float64 {
	if s.FastPath == 0 {
		return 0
	}
	return float64(s.RelayoutNodeSum) / float64(s.FastPath)
}

// Add folds another counter snapshot into s (for aggregating per-worker
// trees).
func (s *TreeStats) Add(o TreeStats) {
	s.Rebuilds += o.Rebuilds
	s.FastPath += o.FastPath
	s.Fallbacks += o.Fallbacks
	s.Unchanged += o.Unchanged
	s.RelayoutNodeSum += o.RelayoutNodeSum
}

// String renders the one-line summary CLIs print under -progress (the
// single source of the format, so surfaces cannot drift).
func (s TreeStats) String() string {
	plans := s.FastPath + s.Unchanged + s.Fallbacks + s.Rebuilds
	hitRate := 0.0
	if plans > 0 {
		hitRate = 100 * float64(s.FastPath+s.Unchanged) / float64(plans)
	}
	return fmt.Sprintf("incremental floorplan: %d fast-path / %d unchanged / %d fallbacks / %d rebuilds (%.1f%% reuse), mean relayout depth %.1f",
		s.FastPath, s.Unchanged, s.Fallbacks, s.Rebuilds, hitRate, s.MeanRelayoutDepth())
}

// Delta returns the counter increments since prev, an earlier snapshot
// of the same tree — how pooled scratches fold per-run work into an
// aggregate without double counting their history.
func (s TreeStats) Delta(prev TreeStats) TreeStats {
	return TreeStats{
		Rebuilds:        s.Rebuilds - prev.Rebuilds,
		FastPath:        s.FastPath - prev.FastPath,
		Fallbacks:       s.Fallbacks - prev.Fallbacks,
		Unchanged:       s.Unchanged - prev.Unchanged,
		RelayoutNodeSum: s.RelayoutNodeSum - prev.RelayoutNodeSum,
	}
}

// tnode is one slicing-tree node. Leaves hold a single block; internal
// nodes compose their two children either side by side (horiz) or
// stacked, separated by the spacing constraint. Placements are not
// stored per node: a leaf's coordinates are replayed from the shift
// chain on demand.
type tnode struct {
	parent, left, right int // node indices; left/right are -1 for leaves
	lo, hi              int // leaf-order segment [lo, hi) of the subtree
	w, h                float64
	horiz               bool    // orientation of the chosen composition
	shift               float64 // lw+spacing (horiz) or lh+spacing (vert), applied to the right subtree
}

// Tree is a retained-mode incremental floorplanner. The zero value is
// ready to use: the first Plan call builds the retained state, and
// subsequent Plan or Update calls reuse every part of it the new areas
// leave valid. A Tree is NOT safe for concurrent use, and the Result it
// returns (including Placements and Adjacencies) is owned by the Tree
// and overwritten by the next call.
type Tree struct {
	spacing float64
	needAdj bool
	built   bool

	blocks []Block // caller order, current areas
	sorted []Block // sorted (pre-partition) order
	srcIdx []int   // sorted position -> caller index
	posOf  []int   // caller index -> sorted position

	// nodes[:nused] is the slicing tree; slots are recycled across
	// rebuilds.
	nodes   []tnode
	nused   int
	root    int
	leafOf  []int       // sorted position -> leaf node index
	leafPos []int       // sorted position -> leaf-order position
	areas   []float64   // current areas in sorted order (flat guard-loop copy)
	place   []Placement // final placements in leaf order (the replayed fold)
	path    []int       // dirty root-to-leaf path of the last update
	changed []int       // sorted positions whose area changed this round

	// Scratch buffers of the partition walks (build and guard share
	// them; both consume a buffer fully before recursing or descending,
	// the layoutSeg discipline).
	walkOrder []int // members as sorted positions, partitioned in place
	walkTmp   []int
	walkToA   []bool

	// Adjacency state (needAdj mode only): the final placements of the
	// previous plan, per-leaf moved flags, and the pairwise verdict
	// cache indexed i*n+j in leaf order (i < j).
	prevPlace []Placement
	moved     []bool
	pairOK    []bool
	pairVal   []Adjacency
	adj       []Adjacency

	res   Result
	stats TreeStats
}

// Stats snapshots the tree's work counters.
func (t *Tree) Stats() TreeStats { return t.stats }

// Plan floorplans the blocks, reusing the retained tree when only block
// areas changed since the previous call (same count, names, aspect
// ratios, spacing). It is bit-identical to Scratch.Plan on every input.
func (t *Tree) Plan(blocks []Block, spacingMM float64) (*Result, error) {
	return t.plan(blocks, spacingMM, true)
}

// PlanNoAdjacencies is Plan skipping the adjacency scan (the returned
// Result has nil Adjacencies), mirroring Scratch.PlanNoAdjacencies.
func (t *Tree) PlanNoAdjacencies(blocks []Block, spacingMM float64) (*Result, error) {
	return t.plan(blocks, spacingMM, false)
}

func (t *Tree) plan(blocks []Block, spacingMM float64, needAdj bool) (*Result, error) {
	if spacingMM == 0 {
		spacingMM = DefaultSpacingMM
	}
	total, err := validateBlocks(blocks, spacingMM)
	if err != nil {
		return nil, err
	}
	if !t.built || t.spacing != spacingMM || t.needAdj != needAdj || !t.sameShape(blocks) {
		t.stats.Rebuilds++
		t.rebuild(blocks, spacingMM, needAdj, total)
		return &t.res, nil
	}
	t.changed = t.changed[:0]
	for i, b := range blocks {
		if t.blocks[i].AreaMM2 != b.AreaMM2 {
			t.blocks[i].AreaMM2 = b.AreaMM2
			sp := t.posOf[i]
			t.sorted[sp].AreaMM2 = b.AreaMM2
			t.areas[sp] = b.AreaMM2
			t.changed = append(t.changed, sp)
		}
	}
	if len(t.changed) == 0 {
		t.stats.Unchanged++
		return &t.res, nil
	}
	if t.update(total) {
		return &t.res, nil
	}
	t.stats.Fallbacks++
	t.rebuild(t.blocks, spacingMM, needAdj, total)
	return &t.res, nil
}

// Update re-plans after a single block's area change — the Gray-step
// shape of a compiled sweep walk. blockIdx indexes the caller-order
// block list of the last Plan call. It verifies the retained topology
// still holds (falling back to a full rebuild when the new area flips
// the sorted order or a partition decision) and otherwise relayouts
// only the dirty leaf-to-root path.
func (t *Tree) Update(blockIdx int, areaMM2 float64) (*Result, error) {
	if !t.built {
		return nil, fmt.Errorf("floorplan: Tree.Update before Plan")
	}
	if blockIdx < 0 || blockIdx >= len(t.blocks) {
		return nil, fmt.Errorf("floorplan: Tree.Update block index %d outside [0, %d)", blockIdx, len(t.blocks))
	}
	if areaMM2 <= 0 {
		b := t.blocks[blockIdx]
		b.AreaMM2 = areaMM2
		return nil, errBlockArea(b)
	}
	if t.blocks[blockIdx].AreaMM2 == areaMM2 {
		t.stats.Unchanged++
		return &t.res, nil
	}
	t.blocks[blockIdx].AreaMM2 = areaMM2
	sp := t.posOf[blockIdx]
	t.sorted[sp].AreaMM2 = areaMM2
	t.areas[sp] = areaMM2
	// Re-sum the total in caller order: patching it by the area delta
	// would not carry the bits of the fresh in-order sum.
	total := 0.0
	for i := range t.blocks {
		total += t.blocks[i].AreaMM2
	}
	if t.updateOne(sp, total) {
		return &t.res, nil
	}
	t.stats.Fallbacks++
	t.rebuild(t.blocks, t.spacing, t.needAdj, total)
	return &t.res, nil
}

// sameShape reports whether blocks matches the retained set in
// everything but areas.
func (t *Tree) sameShape(blocks []Block) bool {
	if len(blocks) != len(t.blocks) {
		return false
	}
	for i, b := range blocks {
		if b.Name != t.blocks[i].Name || b.AspectRatio != t.blocks[i].AspectRatio {
			return false
		}
	}
	return true
}

// sortedOrderOK reports whether the retained permutation is still what
// the stable sort by decreasing area would produce at positions
// [lo, hi): ties must order by ascending caller index.
func (t *Tree) sortedOrderOK(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.sorted)-1 {
		hi = len(t.sorted) - 1
	}
	for k := lo; k < hi; k++ {
		a, b := t.areas[k], t.areas[k+1]
		if a < b || (a == b && t.srcIdx[k] > t.srcIdx[k+1]) {
			return false
		}
	}
	return true
}

// updateOne is the single-changed-block incremental re-plan: an O(1)
// sorted-order check around the changed position, one partition-guard
// descent along the dirty root-to-leaf path, a bottom-up recompose of
// that path, and the placement replay. Returns false on any flip.
func (t *Tree) updateOne(sp int, total float64) bool {
	if !t.sortedOrderOK(sp-1, sp+1) {
		return false
	}
	if t.needAdj {
		t.prevPlace = append(t.prevPlace[:0], t.place...)
	}
	n := len(t.sorted)
	members := t.walkOrder[:n]
	for i := range members {
		members[i] = i
	}
	dirtyLeaf := t.leafOf[sp]
	dirtyPos := t.leafPos[sp]
	t.path = t.path[:0]
	ni := t.root
	for t.nodes[ni].left >= 0 {
		nd := &t.nodes[ni]
		split := t.nodes[nd.left].hi
		inLeft := dirtyPos < split
		var areaA, areaB float64
		keep := t.walkTmp[:0]
		for _, m := range members {
			goesA := areaA <= areaB
			mLeft := t.leafPos[m] < split
			if goesA != mLeft {
				return false
			}
			if goesA {
				areaA += t.areas[m]
			} else {
				areaB += t.areas[m]
			}
			if mLeft == inLeft {
				keep = append(keep, m)
			}
		}
		t.walkTmp, t.walkOrder = t.walkOrder, t.walkTmp
		members = keep
		t.path = append(t.path, ni)
		if inLeft {
			ni = nd.left
		} else {
			ni = nd.right
		}
	}
	// The guard passed: refresh the leaf dims and recompose the path
	// bottom-up.
	b := &t.sorted[sp]
	w, h := b.dims()
	leaf := &t.nodes[dirtyLeaf]
	leaf.w, leaf.h = w, h
	for i := len(t.path) - 1; i >= 0; i-- {
		t.compose(t.path[i])
	}
	t.stats.FastPath++
	t.stats.RelayoutNodeSum += uint64(len(t.path))
	t.finishResult(total)
	return true
}

// update is the general multi-change incremental re-plan used by the
// Plan diff: a full sorted-order check and a recursive guard walk over
// the union of dirty paths.
func (t *Tree) update(total float64) bool {
	if !t.sortedOrderOK(0, len(t.sorted)-1) {
		return false
	}
	if t.needAdj {
		t.prevPlace = append(t.prevPlace[:0], t.place...)
	}
	order := t.walkOrder[:len(t.sorted)]
	for i := range order {
		order[i] = i
	}
	relayouts := 0
	if !t.incrementalNode(t.root, order, &relayouts) {
		return false
	}
	t.stats.FastPath++
	t.stats.RelayoutNodeSum += uint64(relayouts)
	t.finishResult(total)
	return true
}

// incrementalNode verifies node ni's cached partition over seg — the
// subtree's members as sorted positions in ascending order, which IS
// the pre-partition order (every partition is stable, so each node
// receives its members in the globally sorted order) — recurses into
// dirty children, and recomposes the node. It returns false on any
// partition flip.
func (t *Tree) incrementalNode(ni int, seg []int, relayouts *int) bool {
	nd := &t.nodes[ni]
	if nd.left < 0 {
		b := &t.sorted[seg[0]]
		nd.w, nd.h = b.dims()
		return true
	}
	split := t.nodes[nd.left].hi
	na := 0
	var areaA, areaB float64
	toA := t.walkToA[:len(seg)]
	for i, sp := range seg {
		goesA := areaA <= areaB
		if goesA != (t.leafPos[sp] < split) {
			return false
		}
		toA[i] = goesA
		if goesA {
			areaA += t.areas[sp]
			na++
		} else {
			areaB += t.areas[sp]
		}
	}
	// Stable in-place partition of seg (the layoutSeg trick), so the
	// children see their members in ascending sorted order too.
	tmp := t.walkTmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, sp := range tmp {
		if toA[i] {
			seg[ia] = sp
			ia++
		} else {
			seg[ib] = sp
			ib++
		}
	}
	if t.rangeDirty(nd.lo, split) && !t.incrementalNode(nd.left, seg[:na], relayouts) {
		return false
	}
	if t.rangeDirty(split, nd.hi) && !t.incrementalNode(nd.right, seg[na:], relayouts) {
		return false
	}
	t.compose(ni)
	*relayouts++
	return true
}

// rangeDirty reports whether any changed block's leaf-order position
// falls in [lo, hi).
func (t *Tree) rangeDirty(lo, hi int) bool {
	for _, sp := range t.changed {
		if p := t.leafPos[sp]; p >= lo && p < hi {
			return true
		}
	}
	return false
}

// compose recomputes an internal node's dimensions, orientation and
// shift from its children — the exact float expressions of layoutSeg's
// composition step, in the same order.
func (t *Tree) compose(ni int) {
	nd := &t.nodes[ni]
	l, r := &t.nodes[nd.left], &t.nodes[nd.right]
	lw, lh := l.w, l.h
	rw, rh := r.w, r.h
	hw := lw + t.spacing + rw
	// Inline max: dims are positive reals (validated areas), so the
	// branch picks the same bits math.Max would without its NaN/±0
	// prologue.
	hh := lh
	if rh > hh {
		hh = rh
	}
	vw := lw
	if rw > vw {
		vw = rw
	}
	vh := lh + t.spacing + rh
	if hw*hh <= vw*vh {
		nd.horiz = true
		nd.shift = lw + t.spacing
		nd.w, nd.h = hw, hh
	} else {
		nd.horiz = false
		nd.shift = lh + t.spacing
		nd.w, nd.h = vw, vh
	}
}

// replayPlacements derives every leaf's final placement by folding its
// ancestors' shifts in leaf-to-root order — the exact addition sequence
// the in-place layout applies as its recursion unwinds. Names are
// pre-filled at rebuild (the leaf order is fixed until then), so the
// hot path writes only the four coordinate fields.
func (t *Tree) replayPlacements() {
	for sp := range t.sorted {
		li := t.leafOf[sp]
		nd := &t.nodes[li]
		x, y := 0.0, 0.0
		cur := li
		for a := nd.parent; a >= 0; a = t.nodes[a].parent {
			pa := &t.nodes[a]
			if pa.right == cur {
				if pa.horiz {
					x += pa.shift
				} else {
					y += pa.shift
				}
			}
			cur = a
		}
		pl := &t.place[t.leafPos[sp]]
		pl.X, pl.Y, pl.Width, pl.Height = x, y, nd.w, nd.h
	}
}

// allocNode takes the next recycled tree-node slot.
func (t *Tree) allocNode(parent int) int {
	if t.nused == len(t.nodes) {
		t.nodes = append(t.nodes, tnode{})
	}
	ni := t.nused
	t.nused++
	t.nodes[ni] = tnode{parent: parent, left: -1, right: -1}
	return ni
}

// rebuild runs the from-scratch algorithm and repopulates every retained
// cache. blocks may alias t.blocks (the fallback path).
func (t *Tree) rebuild(blocks []Block, spacing float64, needAdj bool, total float64) {
	n := len(blocks)
	t.spacing, t.needAdj = spacing, needAdj
	if len(t.blocks) != n || &t.blocks[0] != &blocks[0] {
		t.blocks = append(t.blocks[:0], blocks...)
	}
	if cap(t.srcIdx) < n {
		t.srcIdx = make([]int, n)
		t.posOf = make([]int, n)
		t.leafOf = make([]int, n)
		t.leafPos = make([]int, n)
		t.areas = make([]float64, n)
		t.place = make([]Placement, n)
		t.walkOrder = make([]int, n)
		t.walkTmp = make([]int, n)
		t.walkToA = make([]bool, n)
	}
	t.place = t.place[:n]
	t.leafPos = t.leafPos[:n]
	t.areas = t.areas[:n]
	// Stable sort by decreasing area: the insertion sort of
	// sortBlocksByArea carrying the caller index, so the permutation is
	// the one Scratch.Plan produces.
	src := t.srcIdx[:n]
	for i := range src {
		src[i] = i
	}
	t.sorted = append(t.sorted[:0], t.blocks...)
	sorted := t.sorted
	for i := 1; i < n; i++ {
		b, s := sorted[i], src[i]
		j := i - 1
		for j >= 0 && sorted[j].AreaMM2 < b.AreaMM2 {
			sorted[j+1], src[j+1] = sorted[j], src[j]
			j--
		}
		sorted[j+1], src[j+1] = b, s
	}
	posOf := t.posOf[:n]
	for pos, i := range src {
		posOf[i] = pos
	}
	for pos := range sorted {
		t.areas[pos] = sorted[pos].AreaMM2
	}

	t.nused = 0
	order := t.walkOrder[:n]
	for i := range order {
		order[i] = i
	}
	nextLeaf := 0
	t.root = t.build(order, -1, &nextLeaf)
	for sp := range sorted {
		pos := t.nodes[t.leafOf[sp]].lo
		t.leafPos[sp] = pos
		t.place[pos].Name = sorted[sp].Name
	}

	if needAdj {
		if cap(t.pairOK) < n*n {
			t.pairOK = make([]bool, n*n)
			t.pairVal = make([]Adjacency, n*n)
		}
		if cap(t.moved) < n {
			t.moved = make([]bool, n)
		}
		moved := t.moved[:n]
		for i := range moved {
			moved[i] = true // every pair rescans on a rebuild
		}
		// A stale snapshot must not mark rebuilt leaves unmoved: the
		// leaf order may have changed, so the pair cache is void.
		t.prevPlace = t.prevPlace[:0]
	}
	t.built = true
	t.res = Result{Placements: t.place}
	t.finishResult(total)
}

// build constructs the subtree over seg (members as sorted positions in
// pre-partition order; permuted in place exactly like layoutSeg) and
// returns its node index. Leaf-order positions are assigned in DFS
// order, matching the in-place permutation of the fused layout.
func (t *Tree) build(seg []int, parent int, nextLeaf *int) int {
	ni := t.allocNode(parent)
	if len(seg) == 1 {
		sp := seg[0]
		lo := *nextLeaf
		*nextLeaf = lo + 1
		b := &t.sorted[sp]
		w, h := b.dims()
		nd := &t.nodes[ni]
		nd.lo, nd.hi = lo, lo+1
		nd.w, nd.h = w, h
		t.leafOf[sp] = ni
		return ni
	}
	na := 0
	var areaA, areaB float64
	toA := t.walkToA[:len(seg)]
	for i, sp := range seg {
		if areaA <= areaB {
			toA[i] = true
			areaA += t.sorted[sp].AreaMM2
			na++
		} else {
			toA[i] = false
			areaB += t.sorted[sp].AreaMM2
		}
	}
	tmp := t.walkTmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, sp := range tmp {
		if toA[i] {
			seg[ia] = sp
			ia++
		} else {
			seg[ib] = sp
			ib++
		}
	}
	left := t.build(seg[:na], ni, nextLeaf)
	right := t.build(seg[na:], ni, nextLeaf)
	nd := &t.nodes[ni] // re-take: t.nodes may have grown
	nd.left, nd.right = left, right
	nd.lo, nd.hi = t.nodes[left].lo, t.nodes[right].hi
	t.compose(ni)
	return ni
}

// finishResult replays the placements, refreshes the Result's scalars
// in place (the Placements header is wired at rebuild) and, in
// adjacency mode, rescans the pairs involving moved rectangles.
func (t *Tree) finishResult(total float64) {
	t.replayPlacements()
	root := &t.nodes[t.root]
	t.res.WidthMM = root.w
	t.res.HeightMM = root.h
	t.res.ChipletAreaMM2 = total
	if !t.needAdj {
		return
	}
	n := len(t.place)
	moved := t.moved[:n]
	if len(t.prevPlace) == n {
		for i, p := range t.place {
			q := t.prevPlace[i]
			moved[i] = math.Float64bits(p.X) != math.Float64bits(q.X) ||
				math.Float64bits(p.Y) != math.Float64bits(q.Y) ||
				math.Float64bits(p.Width) != math.Float64bits(q.Width) ||
				math.Float64bits(p.Height) != math.Float64bits(q.Height)
		}
		t.prevPlace = t.prevPlace[:0]
	}
	const eps = 1e-9
	maxGap := t.spacing + eps
	t.adj = t.adj[:0]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx := i*n + j
			if moved[i] || moved[j] {
				t.pairVal[idx], t.pairOK[idx] = facing(t.place[i], t.place[j], maxGap)
			}
			if t.pairOK[idx] {
				t.adj = append(t.adj, t.pairVal[idx])
			}
		}
	}
	t.adj = sortAdjacencies(t.adj)
	t.res.Adjacencies = t.adj
}

package floorplan

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// resultsBitIdentical compares two plans field by field at float-bit
// granularity (the incremental planner's contract).
func resultsBitIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if math.Float64bits(want.WidthMM) != math.Float64bits(got.WidthMM) ||
		math.Float64bits(want.HeightMM) != math.Float64bits(got.HeightMM) ||
		math.Float64bits(want.ChipletAreaMM2) != math.Float64bits(got.ChipletAreaMM2) {
		t.Fatalf("%s: bounding box / total differ:\nwant %+v\ngot  %+v", label, want, got)
	}
	if !placementsEqual(want.Placements, got.Placements) {
		t.Fatalf("%s: placements differ\nwant %+v\ngot  %+v", label, want.Placements, got.Placements)
	}
	if len(want.Adjacencies) != len(got.Adjacencies) {
		t.Fatalf("%s: adjacency counts differ: %d vs %d\nwant %+v\ngot  %+v",
			label, len(want.Adjacencies), len(got.Adjacencies), want.Adjacencies, got.Adjacencies)
	}
	for i := range want.Adjacencies {
		if want.Adjacencies[i].A != got.Adjacencies[i].A ||
			want.Adjacencies[i].B != got.Adjacencies[i].B ||
			math.Float64bits(want.Adjacencies[i].OverlapMM) != math.Float64bits(got.Adjacencies[i].OverlapMM) {
			t.Fatalf("%s: adjacency %d differs: %+v vs %+v", label, i, want.Adjacencies[i], got.Adjacencies[i])
		}
	}
}

// One retained Tree fed arbitrary block sets through Plan must stay bit
// identical to the from-scratch planner, whatever mix of rebuilds and
// incremental updates it takes internally.
func TestTreePlanMatchesScratchPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var tr Tree
	var sc Scratch
	for trial := 0; trial < 300; trial++ {
		var blocks []Block
		if trial%3 == 0 || trial == 0 {
			blocks = randBlocks(rng)
		} else {
			// Mostly reuse the previous shape with a few areas nudged, so
			// the incremental path actually runs.
			blocks = append([]Block(nil), tr.blocks...)
			for i := range blocks {
				if rng.Intn(2) == 0 {
					blocks[i].AreaMM2 = 1 + rng.Float64()*200
				}
			}
		}
		want, err := sc.Plan(blocks, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.Plan(blocks, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, fmt.Sprintf("trial %d", trial), want, got)
	}
	s := tr.Stats()
	if s.FastPath == 0 {
		t.Errorf("randomized plan sequence never took the fast path: %+v", s)
	}
	if s.Rebuilds == 0 {
		t.Errorf("randomized plan sequence never rebuilt: %+v", s)
	}
}

// Update must match a from-scratch plan after every single-area step of
// a random walk, including steps that change nothing.
func TestTreeUpdateMatchesScratchPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sc Scratch
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(8)
		blocks := make([]Block, n)
		for i := range blocks {
			blocks[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: 1 + rng.Float64()*300}
			if rng.Intn(3) == 0 {
				blocks[i].AspectRatio = 0.5 + rng.Float64()
			}
		}
		var tr Tree
		if _, err := tr.Plan(blocks, 0.5); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 60; step++ {
			idx := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				blocks[idx].AreaMM2 = 1 + rng.Float64()*300 // anything goes
			case 1:
				blocks[idx].AreaMM2 *= 1 + 0.01*rng.Float64() // tiny nudge: usually keeps topology
			case 2:
				// re-assert the current value: a no-op update
			default:
				blocks[idx].AreaMM2 = blocks[(idx+1)%n].AreaMM2 // force an area tie
			}
			want, err := sc.Plan(blocks, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tr.Update(idx, blocks[idx].AreaMM2)
			if err != nil {
				t.Fatal(err)
			}
			resultsBitIdentical(t, fmt.Sprintf("round %d step %d", round, step), want, got)
		}
	}
}

// Adversarial single-area perturbation sequences: each step is designed
// to flip the sorted order or an area-balanced partition decision, so
// the guard must detect the topology change and take the full-replan
// fallback — and the fallback must still be bit-identical.
func TestTreeUpdateForcedFallbacks(t *testing.T) {
	blocks := []Block{
		{Name: "a", AreaMM2: 400},
		{Name: "b", AreaMM2: 200},
		{Name: "c", AreaMM2: 100},
		{Name: "d", AreaMM2: 50},
		{Name: "e", AreaMM2: 25},
	}
	var tr Tree
	var sc Scratch
	if _, err := tr.Plan(blocks, 0.5); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		idx  int
		area float64
		why  string
	}{
		{4, 1000, "smallest becomes largest: sort-order flip"},
		{0, 10, "former largest collapses: sort-order flip"},
		{1, 960, "near-largest: partition balance flips"},
		{3, 999.5, "tie-adjacent insertion"},
		{2, 1000, "exact tie with the largest (stability check)"},
		{4, 0.001, "vanishingly small"},
		{0, 500, "recover mid-range"},
	}
	for i, st := range steps {
		blocks[st.idx].AreaMM2 = st.area
		want, err := sc.Plan(blocks, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tr.Update(st.idx, st.area)
		if err != nil {
			t.Fatalf("step %d (%s): %v", i, st.why, err)
		}
		resultsBitIdentical(t, fmt.Sprintf("step %d (%s)", i, st.why), want, got)
	}
	if s := tr.Stats(); s.Fallbacks == 0 {
		t.Errorf("adversarial sequence never exercised the full-replan fallback: %+v", s)
	}
}

// The no-adjacency mode must mirror PlanNoAdjacencies across updates.
func TestTreeNoAdjacenciesMode(t *testing.T) {
	blocks := []Block{{Name: "a", AreaMM2: 100}, {Name: "b", AreaMM2: 60}, {Name: "c", AreaMM2: 30}}
	var tr Tree
	var sc Scratch
	got, err := tr.PlanNoAdjacencies(blocks, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Adjacencies != nil {
		t.Error("no-adjacency plan should not compute adjacencies")
	}
	blocks[1].AreaMM2 = 70
	got, err = tr.Update(1, 70)
	if err != nil {
		t.Fatal(err)
	}
	if got.Adjacencies != nil {
		t.Error("no-adjacency update should not compute adjacencies")
	}
	want, err := sc.PlanNoAdjacencies(blocks, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "no-adjacency update", want, got)
}

// Spacing changes must rebuild; block-set and aspect changes route
// through the name-keyed diff (and still match) — never serving a stale
// topology either way.
func TestTreeRebuildOnShapeChange(t *testing.T) {
	var tr Tree
	var sc Scratch
	a := []Block{{Name: "a", AreaMM2: 100}, {Name: "b", AreaMM2: 60}}
	if _, err := tr.Plan(a, 0.5); err != nil {
		t.Fatal(err)
	}
	// Different spacing.
	want, _ := sc.Plan(a, 0.8)
	got, err := tr.Plan(a, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "spacing change", want, got)
	// Different block count.
	b := []Block{{Name: "a", AreaMM2: 100}, {Name: "b", AreaMM2: 60}, {Name: "c", AreaMM2: 10}}
	want, _ = sc.Plan(b, 0.8)
	got, err = tr.Plan(b, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "count change", want, got)
	// Different aspect ratio at equal areas.
	c := []Block{{Name: "a", AreaMM2: 100, AspectRatio: 2}, {Name: "b", AreaMM2: 60}, {Name: "c", AreaMM2: 10}}
	want, _ = sc.Plan(c, 0.8)
	got, err = tr.Plan(c, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "aspect change", want, got)
	s := tr.Stats()
	if s.Rebuilds != 2 {
		t.Errorf("initial plan + spacing change should rebuild twice: %+v", s)
	}
	if s.DiffFastPath != 2 {
		t.Errorf("count and aspect changes should serve through the name-keyed diff: %+v", s)
	}
	if s.Splices == 0 {
		t.Errorf("the count-change diff should splice surviving subtrees: %+v", s)
	}
}

func TestTreeUpdateErrors(t *testing.T) {
	var tr Tree
	if _, err := tr.Update(0, 10); err == nil {
		t.Error("Update before Plan should fail")
	}
	if _, err := tr.Plan([]Block{{Name: "a", AreaMM2: 10}, {Name: "b", AreaMM2: 5}}, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Update(2, 10); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := tr.Update(-1, 10); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := tr.Update(0, -3); err == nil {
		t.Error("non-positive area should fail")
	}
	if _, err := tr.Plan(nil, 0.5); err == nil {
		t.Error("empty block list should fail")
	}
	if _, err := tr.Plan([]Block{{Name: "a", AreaMM2: 10}}, 7); err == nil {
		t.Error("out-of-range spacing should fail")
	}
	// The tree must survive rejected inputs: the retained state still
	// serves the last good plan.
	res, err := tr.Update(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 2 {
		t.Errorf("retained state corrupted after rejected inputs: %+v", res)
	}
}

// Sanity-check the counters: a same-area update is Unchanged, a
// topology-preserving one is FastPath with a positive relayout depth,
// and a flip is a Fallback.
func TestTreeStatsCounters(t *testing.T) {
	blocks := []Block{
		{Name: "a", AreaMM2: 400}, {Name: "b", AreaMM2: 200},
		{Name: "c", AreaMM2: 100}, {Name: "d", AreaMM2: 50},
	}
	var tr Tree
	if _, err := tr.Plan(blocks, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Update(3, 50); err != nil { // same area
		t.Fatal(err)
	}
	if _, err := tr.Update(3, 51); err != nil { // tiny nudge, topology intact
		t.Fatal(err)
	}
	if _, err := tr.Update(3, 5000); err != nil { // sort flip
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Rebuilds != 1 || s.Unchanged != 1 || s.FastPath != 1 || s.Fallbacks != 1 {
		t.Errorf("unexpected counters: %+v", s)
	}
	if s.MeanRelayoutDepth() <= 0 {
		t.Errorf("fast-path update should have recomposed nodes: %+v", s)
	}
}

package kernel

import (
	"context"
	"fmt"
	"sync/atomic"

	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/engine"
	"ecochip/internal/floorplan"
	"ecochip/internal/mfg"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// This file implements compiled parameter plans: the "tabulate the base
// point once, re-evaluate perturbations by recomputing only what they
// touched" backend of the tornado sensitivity and Monte Carlo
// uncertainty analyses.
//
// Both analyses evaluate one fixed system under small parameter
// perturbations — a cloned tech database with scaled defect density, a
// scaled design-effort knob, a different lifetime. The uncompiled path
// pays a full evaluation per perturbation: clone, re-validate,
// re-floorplan, re-run every sub-model (the engine memo cache cannot
// help across Monte Carlo samples, whose cloned *tech.Node keys never
// repeat). But each perturbation leaves most sub-model inputs untouched:
//
//   - chiplet areas read only the node density table, which no supported
//     perturbation touches, so areas — and therefore the floorplan and
//     all package carbon — are invariant under node/mfg/design/volume
//     perturbations;
//   - mfg.Die reads the node's fab parameters and System.Mfg;
//   - descarbon.ChipletKg reads only the node's EDA productivity and
//     System.Design;
//   - the packaging communication cells read the chiplets' node fab
//     parameters; the rest of C_HI reads areas and System.Packaging;
//   - amortizations are cheap divisions, recomputed unconditionally.
//
// A Dirty set names the parameter groups a perturbation touched, and
// Eval recomputes exactly the sub-models those groups feed, serving
// everything else from the base tabulation through the core.Hooks seam —
// the same seam the engine memo cache uses, so the assembly order (and
// every float bit) of the result is the uncompiled path's by
// construction. The randomized equivalence tests in internal/sensitivity
// and internal/uncertainty guard the dirty-set mapping itself: if a new
// sub-model dependency ever violates an invariance assumed here, those
// tests break before any analysis result can drift.

// Dirty flags name the parameter groups one perturbed evaluation
// touched relative to the plan's base point. An empty set re-derives the
// base point entirely from the tabulation.
type Dirty uint8

const (
	// DirtyNodes marks perturbed per-node FAB parameters (defect
	// density, EPA, gas/material CFP, equipment efficiency),
	// invalidating die manufacturing results and the packaging
	// communication cells. It does NOT cover a node's EDAProductivity,
	// which only the design-carbon model reads (a perturbation touching
	// it must also set DirtyDesign), nor a node's Density table, which
	// moves chiplet areas and needs DirtyAreas.
	DirtyNodes Dirty = 1 << iota
	// DirtyMfg marks a changed System.Mfg (fab carbon intensity, wafer,
	// alpha), invalidating die manufacturing results.
	DirtyMfg
	// DirtyDesign marks a changed System.Design (iterations, design
	// power, ...), invalidating per-chiplet design carbon and the
	// communication-fabric design share.
	DirtyDesign
	// DirtyPackaging marks a changed System.Packaging, invalidating the
	// packaging model's parameters but NOT the chiplet areas: when the
	// floorplan-shaping inputs (SpacingMM, FlexibleFloorplan) are
	// untouched, the evaluation reuses the base point's floorplan and
	// re-runs only the carbon model on top of it; a perturbation that
	// moves those inputs is detected by comparison with the base and
	// re-floorplans automatically.
	DirtyPackaging
	// DirtyAreas marks changed chiplet areas — a perturbed transistor
	// budget or node density table. It invalidates every per-chiplet
	// sub-model (die manufacturing, design carbon) and the whole C_HI
	// estimate including the floorplan.
	DirtyAreas
	// DirtyOperation marks a changed System.Operation. It invalidates
	// the scratch's operational-term memo, which otherwise trusts spec
	// pointer identity — required when a caller mutates one Spec in
	// place between evaluations (perturbers that allocate a fresh Spec
	// per evaluation, like the tornado factors, miss the memo anyway).
	DirtyOperation
	// DirtyVolume marks changed amortization volumes (SystemVolume,
	// ManufacturedParts). The per-chiplet sub-model walk recomputes
	// amortizations unconditionally — they are single divisions — but
	// the flag gates the tabulated-cell column fold (see cellDirty),
	// which serves amortized fields: a volume perturbation must set it.
	DirtyVolume
)

// cellDirty names the parameter groups that invalidate some field of a
// tabulated die cell. A dirty set disjoint from it lets Eval fold the
// base cells' metric columns directly instead of re-walking CellFor
// per chiplet.
const cellDirty = DirtyNodes | DirtyMfg | DirtyDesign | DirtyAreas | DirtyVolume

// ParamStats counts the work a parameter plan performed; CLIs surface it
// under -progress next to the engine cache statistics.
type ParamStats struct {
	// Evals is the number of perturbed points evaluated.
	Evals uint64
	// DieRecomputes / DieTableHits split mfg.Die calls into recomputed
	// (dirty) and served-from-table.
	DieRecomputes, DieTableHits uint64
	// DesignRecomputes / DesignTableHits split descarbon.ChipletKg calls.
	DesignRecomputes, DesignTableHits uint64
	// PackageEstimates counts full packaging re-estimates (floorplan and
	// all); FloorplanReuses counts packaging-dirty re-estimates served
	// on the base point's retained floorplan; RoutingRefreshes counts
	// communication-only refreshes over the tabulated package carbon.
	PackageEstimates, FloorplanReuses, RoutingRefreshes uint64
}

// String renders the stats as the one-line summary CLIs print under
// -progress (the single source of the format, so surfaces cannot drift).
func (s ParamStats) String() string {
	return fmt.Sprintf("param plan: %d evals; die %d recomputed / %d from table, design %d recomputed / %d from table, %d package re-estimates, %d floorplan reuses, %d routing refreshes",
		s.Evals, s.DieRecomputes, s.DieTableHits, s.DesignRecomputes, s.DesignTableHits, s.PackageEstimates, s.FloorplanReuses, s.RoutingRefreshes)
}

// ParamPlan is a compiled parameter-perturbation plan: the base system
// validated once and every expensive pure sub-result of its evaluation —
// per-chiplet manufacturing results and design carbon, the packaging
// estimate, the communication-fabric design carbon — tabulated for reuse
// across perturbed evaluations. A plan is immutable after CompileParams
// and safe for concurrent use; per-worker mutable state lives in the
// Scratch.
type ParamPlan struct {
	base     *core.System
	db       *tech.DB
	nc       int
	monolith bool

	// The base tabulation, served through the Hooks seam when a
	// perturbation's dirty set leaves the sub-model's inputs untouched.
	die    []mfg.Result // per chiplet (monolith: one merged row)
	des    []float64    // descarbon.ChipletKg per chiplet
	commKg float64      // ChipletKg of the communication fabric
	pkg    pkgSnapshot
	// fp is the base point's floorplan (nil for monoliths and 3D
	// stacks): packaging-dirty evaluations whose geometry inputs match
	// the base re-run the carbon model on top of it instead of
	// re-floorplanning. The Result is plan-owned and read-only.
	fp *floorplan.Result

	// cellMfg..cellNode are the struct-of-arrays columns of the base
	// point's die cells, and commShare the base communication design
	// share, captured by CompileParams. An evaluation whose dirty set is
	// disjoint from cellDirty folds these columns in chiplet order — the
	// same additions, in the same order, over the exact bits a clean
	// CellFor walk would reproduce — instead of re-walking the
	// per-chiplet sub-model seam.
	cellMfg, cellDes, cellNre, cellArea []float64
	cellNode                            []*tech.Node
	commShare                           float64

	evals                                    atomic.Uint64
	dieCalls, dieHits                        atomic.Uint64
	desCalls, desHits                        atomic.Uint64
	pkgEstimates, fpReuses, routingRefreshes atomic.Uint64
}

// pkgSnapshot is the tabulated base packaging result: every field of the
// estimate a perturbed evaluation may serve without re-floorplanning.
type pkgSnapshot struct {
	packageKg     float64
	hiKg          float64 // PackageKg + RoutingKg, summed once
	areaMM2       float64
	assemblyYield float64
	routerPowerW  float64
}

// capture returns hooks that compute sub-models directly while recording
// each result into the plan's base tabulation at *row.
func (p *ParamPlan) capture(row *int) *core.Hooks {
	return &core.Hooks{
		Die: func(n *tech.Node, d tech.DesignType, areaMM2 float64, mp mfg.Params) (mfg.Result, error) {
			m, err := mfg.Die(n, d, areaMM2, mp)
			if err == nil {
				p.die[*row] = m
			}
			return m, err
		},
		ChipletKg: func(gates float64, n *tech.Node, dp descarbon.Params) (float64, error) {
			kg, err := descarbon.ChipletKg(gates, n, dp)
			if err != nil {
				return 0, err
			}
			if *row == commRow {
				p.commKg = kg
			} else {
				p.des[*row] = kg
			}
			return kg, nil
		},
	}
}

// CompileParams validates the base (system, database) pair once and
// tabulates every expensive pure sub-result of its evaluation. Errors a
// base evaluation would hit surface here.
func CompileParams(base *core.System, db *tech.DB) (*ParamPlan, error) {
	if err := base.Validate(db); err != nil {
		return nil, err
	}
	nc := len(base.Chiplets)
	p := &ParamPlan{base: base, db: db, nc: nc, monolith: base.Monolithic || nc == 1}
	rows := nc
	if p.monolith {
		rows = 1
	}
	p.die = make([]mfg.Result, rows)
	p.des = make([]float64, rows)
	cellCols := make([]float64, 4*rows)
	p.cellMfg = cellCols[0*rows : 1*rows]
	p.cellDes = cellCols[1*rows : 2*rows]
	p.cellNre = cellCols[2*rows : 3*rows]
	p.cellArea = cellCols[3*rows : 4*rows]
	p.cellNode = make([]*tech.Node, rows)

	row := 0
	rec := p.capture(&row)
	if p.monolith {
		cell, err := base.MonolithCell(db, base.Chiplets[0].NodeNm, rec)
		if err != nil {
			return nil, err
		}
		p.captureCell(0, &cell)
		return p, nil
	}
	chiplets := make([]pkgcarbon.Chiplet, nc)
	for i := range base.Chiplets {
		row = i
		cell, err := base.CellFor(db, base.Chiplets[i], base.Chiplets[i].NodeNm, rec)
		if err != nil {
			return nil, err
		}
		p.captureCell(i, &cell)
		chiplets[i] = pkgcarbon.Chiplet{Name: base.Chiplets[i].Name, AreaMM2: cell.AreaMM2, Node: cell.Node}
	}
	pkg, err := pkgcarbon.Estimate(chiplets, base.Packaging)
	if err != nil {
		return nil, err
	}
	p.fp = pkg.Floorplan // package-level Estimate allocates fresh: safe to retain
	p.pkg = pkgSnapshot{
		packageKg:     pkg.PackageKg,
		hiKg:          pkg.TotalKg(),
		areaMM2:       pkg.PackageAreaMM2,
		assemblyYield: pkg.AssemblyYield,
		routerPowerW:  pkg.RouterTotalPowerW,
	}
	row = commRow
	share, err := base.CommDesignShareKg(db, base.Chiplets[0].NodeNm, nc, rec)
	if err != nil {
		return nil, err
	}
	p.commShare = share
	return p, nil
}

// captureCell records one base die cell's hot fields into the plan's
// metric columns.
func (p *ParamPlan) captureCell(i int, cell *core.DieCell) {
	p.cellMfg[i] = cell.MfgKg
	p.cellDes[i] = cell.DesignKgAmortized
	p.cellNre[i] = cell.NREKg
	p.cellArea[i] = cell.AreaMM2
	p.cellNode[i] = cell.Node
}

// Base returns the compiled base system.
func (p *ParamPlan) Base() *core.System { return p.base }

// DB returns the compiled base database.
func (p *ParamPlan) DB() *tech.DB { return p.db }

// Stats snapshots the plan's work counters (cumulative across runs).
func (p *ParamPlan) Stats() ParamStats {
	return ParamStats{
		Evals:            p.evals.Load(),
		DieRecomputes:    p.dieCalls.Load(),
		DieTableHits:     p.dieHits.Load(),
		DesignRecomputes: p.desCalls.Load(),
		DesignTableHits:  p.desHits.Load(),
		PackageEstimates: p.pkgEstimates.Load(),
		FloorplanReuses:  p.fpReuses.Load(),
		RoutingRefreshes: p.routingRefreshes.Load(),
	}
}

// NewScratch builds a per-worker arena for evaluating this plan.
func (p *ParamPlan) NewScratch() (*Scratch, error) {
	sc := &Scratch{db: p.db}
	sc.hooks.init(p)
	if !p.monolith {
		sc.pkgCh = make([]pkgcarbon.Chiplet, p.nc)
	}
	return sc, nil
}

// commRow is the hooks row of the communication-fabric design carbon.
const commRow = -1

// paramHooks serves the plan's base tabulation through the core.Hooks
// seam, recomputing a sub-model only when the current evaluation's dirty
// set invalidates it. row tracks which chiplet (or commRow) the enclosing
// CellFor / CommDesignShareKg call is evaluating.
type paramHooks struct {
	plan               *ParamPlan
	row                int
	dieDirty, desDirty bool
	h                  core.Hooks
}

func (ph *paramHooks) init(plan *ParamPlan) {
	ph.plan = plan
	ph.h = core.Hooks{Die: ph.die, ChipletKg: ph.chipletKg}
}

func (ph *paramHooks) die(n *tech.Node, d tech.DesignType, areaMM2 float64, p mfg.Params) (mfg.Result, error) {
	if ph.dieDirty {
		ph.plan.dieCalls.Add(1)
		return mfg.Die(n, d, areaMM2, p)
	}
	ph.plan.dieHits.Add(1)
	return ph.plan.die[ph.row], nil
}

func (ph *paramHooks) chipletKg(gates float64, n *tech.Node, p descarbon.Params) (float64, error) {
	if ph.desDirty {
		ph.plan.desCalls.Add(1)
		return descarbon.ChipletKg(gates, n, p)
	}
	ph.plan.desHits.Add(1)
	if ph.row == commRow {
		return ph.plan.commKg, nil
	}
	return ph.plan.des[ph.row], nil
}

// Walk evaluates n perturbed points against the plan through the batch
// engine, returning their Totals indexed by point. apply builds point
// k's perturbed (system, database, dirty) triple — for untouched groups
// it returns the base values, and dirty declares what it touched, with
// Eval's contract — using the worker's scratch for any per-evaluation
// buffers (PerturbNodes). Each worker drives a private scratch across
// every point it evaluates, so custom perturbation studies inherit the
// plan's scratch reuse and tabulated column folds without driving
// engine.RunScratch themselves; the tornado and Monte Carlo analyses
// run on this same runner.
func (p *ParamPlan) Walk(ctx context.Context, n int, apply func(k int, sc *Scratch) (*core.System, *tech.DB, Dirty, error), opts ...engine.Option) ([]Totals, error) {
	return engine.RunScratch(ctx, n,
		func(*core.Hooks) (*Scratch, error) { return p.NewScratch() },
		func(_ context.Context, k int, sc *Scratch) (Totals, error) {
			s, db, dirty, err := apply(k, sc)
			if err != nil {
				return Totals{}, err
			}
			return p.Eval(sc, s, db, dirty)
		}, opts...)
}

// Eval evaluates one perturbed (system, database) pair against the plan:
// s and db are the perturbed descriptors (for untouched groups, pass the
// base values), and dirty names the parameter groups the perturbation
// touched. The result carries the exact float bits of
// s.EvaluateWith(db, nil) — sub-models whose inputs the dirty set leaves
// untouched are served from the base tabulation, everything else is
// recomputed through the same code paths the direct evaluation runs.
// The contract is only as good as the dirty declaration: an under-declared
// set (see the flag docs for which node fields belong to which group)
// silently serves stale sub-results, so new perturbation kinds need a
// parity test against the direct evaluation, like the ones guarding the
// tornado factors and Monte Carlo sampling.
func (p *ParamPlan) Eval(sc *Scratch, s *core.System, db *tech.DB, dirty Dirty) (Totals, error) {
	if err := s.Validate(db); err != nil {
		return Totals{}, err
	}
	p.evals.Add(1)
	ph := &sc.hooks
	ph.dieDirty = dirty&(DirtyNodes|DirtyMfg|DirtyAreas) != 0
	ph.desDirty = dirty&(DirtyDesign|DirtyAreas) != 0

	// An evaluation that touches no cell input folds the tabulated cell
	// columns directly: the clean CellFor walk would reproduce the base
	// cells bit for bit (every sub-model it runs is served from the
	// table, and the assembly arithmetic sees base inputs), so the fold
	// is the same additions in the same chiplet order over the same
	// bits. The table-hit counters advance exactly as the hook-served
	// walk would advance them.
	clean := dirty&cellDirty == 0

	var t Totals
	t.AssemblyYield = 1
	if p.monolith {
		if clean {
			p.dieHits.Add(1)
			p.desHits.Add(1)
			t.MfgKg = p.cellMfg[0]
			t.DesignKg = p.cellDes[0]
			t.NREKg = p.cellNre[0]
			t.PackageAreaMM2 = p.cellArea[0]
		} else {
			ph.row = 0
			cell, err := s.MonolithCell(db, s.Chiplets[0].NodeNm, &ph.h)
			if err != nil {
				return Totals{}, err
			}
			t.MfgKg = cell.MfgKg
			t.DesignKg = cell.DesignKgAmortized
			t.NREKg = cell.NREKg
			t.PackageAreaMM2 = cell.AreaMM2
		}
	} else {
		if clean {
			p.dieHits.Add(uint64(p.nc))
			p.desHits.Add(uint64(p.nc) + 1)
			cellDes := p.cellDes[:len(p.cellMfg)]
			cellNre := p.cellNre[:len(p.cellMfg)]
			for i, m := range p.cellMfg {
				t.MfgKg += m
				t.DesignKg += cellDes[i]
				t.NREKg += cellNre[i]
			}
			if dirty&DirtyPackaging != 0 {
				// The only clean branch below that reads the descriptor
				// buffer; areas and nodes are the tabulated base ones.
				for i := range s.Chiplets {
					sc.pkgCh[i] = pkgcarbon.Chiplet{Name: s.Chiplets[i].Name, AreaMM2: p.cellArea[i], Node: p.cellNode[i]}
				}
			}
		} else {
			for i := range s.Chiplets {
				ph.row = i
				cell, err := s.CellFor(db, s.Chiplets[i], s.Chiplets[i].NodeNm, &ph.h)
				if err != nil {
					return Totals{}, err
				}
				t.MfgKg += cell.MfgKg
				t.DesignKg += cell.DesignKgAmortized
				t.NREKg += cell.NREKg
				sc.pkgCh[i] = pkgcarbon.Chiplet{Name: s.Chiplets[i].Name, AreaMM2: cell.AreaMM2, Node: cell.Node}
			}
		}
		switch {
		case dirty&(DirtyAreas|DirtyPackaging) != 0:
			// The packaging estimate must re-run. With areas intact and
			// the geometry inputs (spacing, flexible shapes) matching
			// the base, the base floorplan is still exactly what a
			// fresh plan would produce, so only the carbon model re-runs
			// on top of it; area or geometry perturbations re-floorplan
			// fully, like the uncompiled path does.
			reuseFP := dirty&DirtyAreas == 0 && p.fp != nil &&
				s.Packaging.SpacingMM == p.base.Packaging.SpacingMM &&
				s.Packaging.FlexibleFloorplan == p.base.Packaging.FlexibleFloorplan
			var pkg *pkgcarbon.Result
			var err error
			if reuseFP {
				p.fpReuses.Add(1)
				pkg, err = pkgcarbon.EstimateOnFloorplan(sc.pkgCh, s.Packaging, p.fp)
			} else {
				p.pkgEstimates.Add(1)
				pkg, err = pkgcarbon.Estimate(sc.pkgCh, s.Packaging)
			}
			if err != nil {
				return Totals{}, err
			}
			t.HIKg = pkg.TotalKg()
			t.PackageAreaMM2 = pkg.PackageAreaMM2
			t.AssemblyYield = pkg.AssemblyYield
			t.RouterPowerW = pkg.RouterTotalPowerW
		case dirty&DirtyNodes != 0:
			// Only node parameters changed: areas — and with them the
			// floorplan, package carbon and assembly yield — are intact;
			// refresh just the node-dependent communication cells.
			p.routingRefreshes.Add(1)
			r, err := pkgcarbon.EstimateRouting(sc.pkgCh, s.Packaging)
			if err != nil {
				return Totals{}, err
			}
			t.HIKg = p.pkg.packageKg + r.RoutingKg
			t.PackageAreaMM2 = p.pkg.areaMM2
			t.AssemblyYield = p.pkg.assemblyYield
			t.RouterPowerW = r.RouterTotalPowerW
		default:
			t.HIKg = p.pkg.hiKg
			t.PackageAreaMM2 = p.pkg.areaMM2
			t.AssemblyYield = p.pkg.assemblyYield
			t.RouterPowerW = p.pkg.routerPowerW
		}
		if clean {
			t.DesignKg += p.commShare
		} else {
			ph.row = commRow
			share, err := s.CommDesignShareKg(db, s.Chiplets[0].NodeNm, len(s.Chiplets), &ph.h)
			if err != nil {
				return Totals{}, err
			}
			t.DesignKg += share
		}
	}
	if s.Operation != nil {
		if dirty&DirtyOperation != 0 {
			// The caller may have mutated the spec in place; pointer
			// identity no longer proves the memo is current.
			sc.opValid = false
		}
		op, err := sc.OperationKg(s.Operation, t.RouterPowerW)
		if err != nil {
			return Totals{}, err
		}
		t.OperationalKg = op
	}
	return t, nil
}

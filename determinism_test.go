package ecochip

import (
	"testing"
)

// The entire experiment stack must be deterministic: two back-to-back
// runs of every experiment must render byte-identical tables. This
// guards against map-iteration order, uninitialized state and unseeded
// randomness leaking into results.
func TestWholeStackDeterminism(t *testing.T) {
	db := DefaultDB()
	for _, id := range ExperimentIDs() {
		t1, err := Experiments(id, db)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		t2, err := Experiments(id, db)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if t1.String() != t2.String() {
			t.Errorf("%s: output differs between runs", id)
		}
	}
}

// Evaluations must be side-effect free: evaluating one system twice and
// interleaving other work gives identical reports.
func TestEvaluationPurity(t *testing.T) {
	db := DefaultDB()
	s := GA102(db, 7, 14, 10, false)
	r1, err := s.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave other evaluations.
	if _, err := A15(db, 7, 14, 10, false).Evaluate(db); err != nil {
		t.Fatal(err)
	}
	if _, err := Tornado(EMR(db, 10, false), db, 0.2); err != nil {
		t.Fatal(err)
	}
	r2, err := s.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalKg() != r2.TotalKg() || r1.EmbodiedKg() != r2.EmbodiedKg() {
		t.Error("evaluation is not pure: interleaved work changed the result")
	}
}

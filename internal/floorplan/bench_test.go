package floorplan

import (
	"fmt"
	"testing"
)

func benchBlocks(n int) []Block {
	blocks := make([]Block, n)
	for i := range blocks {
		blocks[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: float64(20 + 13*i%200)}
	}
	return blocks
}

func BenchmarkPlan8(b *testing.B) {
	blocks := benchBlocks(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(blocks, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlan32(b *testing.B) {
	blocks := benchBlocks(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(blocks, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanFlexible8(b *testing.B) {
	blocks := benchBlocks(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanFlexible(blocks, 0.5, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTreeUpdate measures the retained-tree single-area fast path: the
// per-Gray-step floorplan cost of a compiled sweep. Perturbing the
// globally smallest block keeps the topology provably stable — it is
// last in every partition sequence, so every decision depends only on
// the unchanged predecessors — and the benchmark asserts no rebuild
// sneaked in.
func benchTreeUpdate(b *testing.B, n int) {
	b.Helper()
	blocks := benchBlocks(n)
	smallest := 0
	for i, blk := range blocks {
		if blk.AreaMM2 < blocks[smallest].AreaMM2 {
			smallest = i
		}
	}
	var tr Tree
	if _, err := tr.PlanNoAdjacencies(blocks, 0.5); err != nil {
		b.Fatal(err)
	}
	base := blocks[smallest].AreaMM2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Update(smallest, base-float64(i&1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := tr.Stats(); s.Fallbacks > 0 {
		b.Fatalf("update benchmark fell back to rebuilds: %+v", s)
	}
}

func BenchmarkTreeUpdate8(b *testing.B)  { benchTreeUpdate(b, 8) }
func BenchmarkTreeUpdate32(b *testing.B) { benchTreeUpdate(b, 32) }

// benchTreeDiff measures the name-keyed remove/insert diff on the
// Disaggregate candidate shape — two survivors removed, one merged die
// appended — alternating between two candidate sets so every plan is a
// shape change. The baseline is the same alternation through a Scratch
// (the from-scratch planner the diff replaces).
func benchTreeDiff(b *testing.B, n int, scratch bool) {
	b.Helper()
	base := benchBlocks(n)
	cands := make([][]Block, 2)
	for c := range cands {
		i, j := c, c+2 // two distinct overlapping pairs
		cand := make([]Block, 0, n-1)
		for k, blk := range base {
			if k != i && k != j {
				cand = append(cand, blk)
			}
		}
		cands[c] = append(cand, Block{
			Name:    base[i].Name + "+" + base[j].Name,
			AreaMM2: base[i].AreaMM2 + base[j].AreaMM2,
		})
	}
	var tr Tree
	var sc Scratch
	if _, err := tr.PlanNoAdjacencies(base, 0.5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if scratch {
			_, err = sc.PlanNoAdjacencies(cands[i&1], 0.5)
		} else {
			_, err = tr.PlanNoAdjacencies(cands[i&1], 0.5)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !scratch {
		if s := tr.Stats(); s.DiffFastPath == 0 || s.Splices == 0 {
			b.Fatalf("diff benchmark never spliced: %+v", s)
		}
	}
}

// BenchmarkFlexTreeUpdate8 measures the retained shape-curve tree's
// single-area update — the per-Gray-step floorplan cost of a compiled
// sweep over a flexible-floorplan system — against BenchmarkPlanFlexible8,
// the from-scratch cost it replaces.
func BenchmarkFlexTreeUpdate8(b *testing.B) {
	blocks := benchBlocks(8)
	smallest := 0
	for i, blk := range blocks {
		if blk.AreaMM2 < blocks[smallest].AreaMM2 {
			smallest = i
		}
	}
	var ft FlexTree
	if _, err := ft.Plan(blocks, 0.5, nil); err != nil {
		b.Fatal(err)
	}
	base := blocks[smallest].AreaMM2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ft.Update(smallest, base-float64(i&1)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := ft.Stats(); s.Fallbacks > 0 {
		b.Fatalf("flex update benchmark fell back to rebuilds: %+v", s)
	}
}

func BenchmarkTreeDiff9(b *testing.B)         { benchTreeDiff(b, 9, false) }
func BenchmarkTreeDiffScratch9(b *testing.B)  { benchTreeDiff(b, 9, true) }
func BenchmarkTreeDiff24(b *testing.B)        { benchTreeDiff(b, 24, false) }
func BenchmarkTreeDiffScratch24(b *testing.B) { benchTreeDiff(b, 24, true) }

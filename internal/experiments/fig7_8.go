package experiments

import (
	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/report"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func init() {
	register("fig7a", Fig7a)
	register("fig7b", Fig7b)
	register("fig7c", Fig7c)
	register("fig7d", Fig7d)
	register("fig8a", Fig8a)
	register("fig8b", Fig8b)
}

func ga102ForTuple(db *tech.DB, nt nodeTuple) *core.System {
	return testcases.GA102(db, nt.digital, nt.memory, nt.analog, nt.monolithic)
}

// fig7Systems builds the tuple-sweep systems in figure order.
func fig7Systems(db *tech.DB) []*core.System {
	systems := make([]*core.System, len(fig7Tuples))
	for i, nt := range fig7Tuples {
		systems[i] = ga102ForTuple(db, nt)
	}
	return systems
}

// Fig7a reports C_mfg and C_HI of the GA102 3-chiplet system with RDL
// fanout for each technology-node tuple (Fig. 7(a)).
func Fig7a(db *tech.DB) (*report.Table, error) {
	t := report.New("fig7a", "GA102 manufacturing + HI CFP per (digital,memory,analog) node tuple",
		"config", "cmfg_kg", "chi_kg", "cmfg_plus_chi_kg")
	reports, err := evaluateAll(db, fig7Systems(db))
	if err != nil {
		return nil, err
	}
	for i, nt := range fig7Tuples {
		rep := reports[i]
		t.AddRow(nt.label(), report.F(rep.MfgKg), report.F(rep.HIKg), report.F(rep.MfgKg+rep.HIKg))
	}
	return t, nil
}

// Fig7b reports the design carbon of a single SP&R iteration for each
// chiplet of each tuple (Fig. 7(b)).
func Fig7b(db *tech.DB) (*report.Table, error) {
	t := report.New("fig7b", "GA102 design CFP of one SP&R pass per node tuple",
		"config", "digital_kg", "memory_kg", "analog_kg", "total_kg")
	p := descarbon.DefaultParams()
	for _, nt := range fig7Tuples {
		s := ga102ForTuple(db, nt)
		var cells []string
		var total float64
		for _, c := range s.Chiplets {
			gates := descarbon.GatesFromTransistors(c.Transistors)
			kg, err := descarbon.SinglePassKg(gates, db.MustGet(c.NodeNm), p)
			if err != nil {
				return nil, err
			}
			cells = append(cells, report.F(kg))
			total += kg
		}
		t.AddRow(nt.label(), cells[0], cells[1], cells[2], report.F(total))
	}
	return t, nil
}

// Fig7c reports embodied CFP per tuple (N_des = 100, N_S = 100,000)
// against the ACT baseline (Fig. 7(c)).
func Fig7c(db *tech.DB) (*report.Table, error) {
	t := report.New("fig7c", "GA102 embodied CFP per tuple vs ACT baseline",
		"config", "cemb_kg", "act_kg", "act_underestimate_kg")
	systems := fig7Systems(db)
	reports, err := evaluateAll(db, systems)
	if err != nil {
		return nil, err
	}
	for i, nt := range fig7Tuples {
		rep := reports[i]
		actKg, err := systems[i].ACTEmbodiedKg(db)
		if err != nil {
			return nil, err
		}
		t.AddRow(nt.label(), report.F(rep.EmbodiedKg()), report.F(actKg), report.F(rep.EmbodiedKg()-actKg))
	}
	return t, nil
}

// Fig7d reports total CFP split into embodied and operational per tuple
// over the GPU's 2-year lifetime (Fig. 7(d)).
func Fig7d(db *tech.DB) (*report.Table, error) {
	t := report.New("fig7d", "GA102 total CFP split per tuple, 2-year lifetime",
		"config", "cemb_kg", "cop_kg", "ctot_kg", "emb_share")
	reports, err := evaluateAll(db, fig7Systems(db))
	if err != nil {
		return nil, err
	}
	for i, nt := range fig7Tuples {
		rep := reports[i]
		t.AddRow(nt.label(), report.F(rep.EmbodiedKg()), report.F(rep.OperationalKg),
			report.F(rep.TotalKg()), report.F(rep.EmbodiedKg()/rep.TotalKg()))
	}
	return t, nil
}

// fig8Row renders one system's total-CFP split.
func fig8Row(t *report.Table, label string, rep *core.Report) {
	t.AddRow(label, report.F(rep.EmbodiedKg()), report.F(rep.OperationalKg),
		report.F(rep.TotalKg()), report.F(rep.EmbodiedKg()/rep.TotalKg()))
}

// Fig8a compares the EMR 2-chiplet EMIB system against its monolithic
// counterpart (Fig. 8(a)).
func Fig8a(db *tech.DB) (*report.Table, error) {
	t := report.New("fig8a", "EMR total CFP vs monolithic counterpart (EMIB, 5-year lifetime)",
		"config", "cemb_kg", "cop_kg", "ctot_kg", "emb_share")
	mono, err := testcases.EMR(db, 10, true).Evaluate(db)
	if err != nil {
		return nil, err
	}
	hi, err := testcases.EMR(db, 10, false).Evaluate(db)
	if err != nil {
		return nil, err
	}
	fig8Row(t, "EMR-monolith", mono)
	fig8Row(t, "EMR-2chiplet", hi)
	return t, nil
}

// Fig8b compares the A15 3-chiplet RDL system against its monolithic
// counterpart (Fig. 8(b)); the embodied share should sit near 80%.
func Fig8b(db *tech.DB) (*report.Table, error) {
	t := report.New("fig8b", "A15 total CFP vs monolithic counterpart (RDL fanout, 2-year lifetime)",
		"config", "cemb_kg", "cop_kg", "ctot_kg", "emb_share")
	mono, err := testcases.A15(db, 7, 7, 7, true).Evaluate(db)
	if err != nil {
		return nil, err
	}
	hi, err := testcases.A15(db, 7, 14, 10, false).Evaluate(db)
	if err != nil {
		return nil, err
	}
	fig8Row(t, "A15-monolith", mono)
	fig8Row(t, "A15-3chiplet", hi)
	return t, nil
}

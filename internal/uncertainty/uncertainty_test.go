package uncertainty

import (
	"context"
	"testing"

	"ecochip/internal/engine"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func db() *tech.DB { return tech.Default() }

func TestRunErrors(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	if _, err := Run(base, db(), DefaultSpread(), 5, 1); err == nil {
		t.Error("too few samples should fail")
	}
	bad := DefaultSpread()
	bad.EPA = 0.9
	if _, err := Run(base, db(), bad, 100, 1); err == nil {
		t.Error("excessive spread should fail")
	}
	broken := testcases.GA102(db(), 7, 14, 10, false)
	broken.Chiplets[0].Transistors = 0
	if _, err := Run(broken, db(), DefaultSpread(), 100, 1); err == nil {
		t.Error("invalid system should fail")
	}
}

func TestDistributionShape(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	d, err := Run(base, db(), DefaultSpread(), 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples != 200 {
		t.Errorf("Samples = %d, want 200", d.Samples)
	}
	if !(d.MinKg <= d.P5Kg && d.P5Kg <= d.P50Kg && d.P50Kg <= d.P95Kg && d.P95Kg <= d.MaxKg) {
		t.Errorf("percentiles out of order: %+v", d)
	}
	if d.MeanKg <= 0 {
		t.Error("mean must be positive")
	}
	// The point estimate must fall inside the sampled range.
	rep, err := base.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	point := rep.EmbodiedKg()
	if point < d.MinKg || point > d.MaxKg {
		t.Errorf("point estimate %.1f outside sampled range [%.1f, %.1f]", point, d.MinKg, d.MaxKg)
	}
	// With ±20% input spreads the output spread should be noticeable
	// but bounded.
	rs := d.RelativeSpread()
	if rs <= 0.01 || rs > 1 {
		t.Errorf("relative spread %.3f implausible", rs)
	}
}

func TestDeterministicSeed(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	d1, err := Run(base, db(), DefaultSpread(), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Run(base, db(), DefaultSpread(), 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("same seed must reproduce the distribution exactly")
	}
	d3, err := Run(base, db(), DefaultSpread(), 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d3 {
		t.Error("different seeds should differ")
	}
}

func TestZeroSpreadCollapses(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	d, err := Run(base, db(), Spread{}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxKg-d.MinKg > 1e-9 {
		t.Errorf("zero spread should collapse the distribution, got range %g", d.MaxKg-d.MinKg)
	}
	rep, _ := base.Evaluate(db())
	if diff := d.P50Kg - rep.EmbodiedKg(); diff > 1e-9 || diff < -1e-9 {
		t.Error("zero-spread median should equal the point estimate")
	}
}

// The base system and shared DB must not be mutated.
func TestRunDoesNotMutate(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	beforeCI := base.Mfg.CarbonIntensity
	beforePower := base.Design.PowerW
	if _, err := Run(base, db(), DefaultSpread(), 50, 3); err != nil {
		t.Fatal(err)
	}
	if base.Mfg.CarbonIntensity != beforeCI || base.Design.PowerW != beforePower {
		t.Error("Run mutated the base system")
	}
	if db().MustGet(7).EPA != 3.5 {
		t.Error("Run mutated the shared tech database")
	}
}

// The fixed-seed distribution must be bit-identical at any worker count:
// every sample owns a seed-derived RNG stream, so scheduling cannot leak
// into the draws.
func TestWorkerCountInvariance(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	var ref Distribution
	for i, workers := range []int{1, 2, 5, 16} {
		d, err := RunCtx(context.Background(), base, db(), DefaultSpread(), 120, 99,
			engine.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = d
		} else if d != ref {
			t.Fatalf("workers=%d changed the distribution:\nref %+v\ngot %+v", workers, ref, d)
		}
	}
}

// Per-sample streams must be pairwise disjoint across every draw a
// sample can make, not just their first draws: a run of n samples draws
// up to 4n uniforms and all of them must be distinct values. (This
// catches the overlapping-counter construction where sample i's draw k
// equals sample i+1's draw k-1 because adjacent base states sit one
// stream stride apart.)
func TestSampleStreamsDisjoint(t *testing.T) {
	const samples, draws = 1000, 4
	seen := make(map[uint64][2]int, samples*draws)
	for i := 0; i < samples; i++ {
		rng := newSampleStream(2024, i)
		for k := 0; k < draws; k++ {
			v := rng.next()
			if prev, dup := seen[v]; dup {
				t.Fatalf("sample %d draw %d collides with sample %d draw %d", i, k, prev[0], prev[1])
			}
			seen[v] = [2]int{i, k}
		}
	}
	a, b := newSampleStream(1, 0), newSampleStream(2, 0)
	if a.next() == b.next() {
		t.Error("different run seeds must give different streams")
	}
}

// Draws must be uniform in [0, 1): a coarse histogram over many draws
// catches a broken mixing or scaling constant.
func TestSampleStreamUniform(t *testing.T) {
	const draws, bins = 100_000, 10
	var hist [bins]int
	rng := newSampleStream(7, 0)
	for i := 0; i < draws; i++ {
		v := rng.float64()
		if v < 0 || v >= 1 {
			t.Fatalf("draw %g outside [0, 1)", v)
		}
		hist[int(v*bins)]++
	}
	for b, n := range hist {
		if n < draws/bins*8/10 || n > draws/bins*12/10 {
			t.Fatalf("bin %d holds %d of %d draws; stream is not plausibly uniform", b, n, draws)
		}
	}
}

package pkgcarbon

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ecochip/internal/tech"
)

// randChiplets builds a random chiplet set over the default node DB.
func randChiplets(rng *rand.Rand, db *tech.DB) []Chiplet {
	sizes := db.Sizes()
	n := 1 + rng.Intn(5)
	out := make([]Chiplet, n)
	for i := range out {
		out[i] = Chiplet{
			Name:    fmt.Sprintf("c%d", i),
			AreaMM2: 5 + rng.Float64()*300,
			Node:    db.MustGet(sizes[rng.Intn(len(sizes))]),
		}
	}
	return out
}

func resultsBitIdentical(a, b *Result) bool {
	return a.Arch == b.Arch &&
		math.Float64bits(a.PackageAreaMM2) == math.Float64bits(b.PackageAreaMM2) &&
		math.Float64bits(a.WhitespaceMM2) == math.Float64bits(b.WhitespaceMM2) &&
		a.NumBridges == b.NumBridges &&
		math.Float64bits(a.NumBonds) == math.Float64bits(b.NumBonds) &&
		math.Float64bits(a.AssemblyYield) == math.Float64bits(b.AssemblyYield) &&
		math.Float64bits(a.PackageKg) == math.Float64bits(b.PackageKg) &&
		math.Float64bits(a.RoutingKg) == math.Float64bits(b.RoutingKg) &&
		math.Float64bits(a.RouterAreaPerChipletMM2) == math.Float64bits(b.RouterAreaPerChipletMM2) &&
		math.Float64bits(a.RouterTotalPowerW) == math.Float64bits(b.RouterTotalPowerW)
}

// The scratch-backed Estimator must reproduce Estimate bit for bit for
// every architecture, including across repeated reuse of one scratch.
func TestEstimatorMatchesEstimate(t *testing.T) {
	db := tech.Default()
	rng := rand.New(rand.NewSource(7))
	for _, arch := range Architectures {
		p := DefaultParams(arch)
		est, err := NewEstimator(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			chiplets := randChiplets(rng, db)
			want, wantErr := Estimate(chiplets, p)
			got, gotErr := est.Estimate(chiplets)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%v trial %d: error mismatch: %v vs %v", arch, trial, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !resultsBitIdentical(want, got) {
				t.Fatalf("%v trial %d: results differ\nwant %+v\ngot  %+v", arch, trial, want, got)
			}
		}
	}
}

func TestNewEstimatorValidates(t *testing.T) {
	p := DefaultParams(RDLFanout)
	p.RDLLayers = 99
	if _, err := NewEstimator(p); err == nil {
		t.Error("invalid params should fail at construction")
	}
}

func TestEstimatorResultIsReused(t *testing.T) {
	db := tech.Default()
	p := DefaultParams(RDLFanout)
	est, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := est.Estimate([]Chiplet{{Name: "a", AreaMM2: 100, Node: db.MustGet(7)}, {Name: "b", AreaMM2: 50, Node: db.MustGet(14)}})
	if err != nil {
		t.Fatal(err)
	}
	first := *a
	b, err := est.Estimate([]Chiplet{{Name: "a", AreaMM2: 10, Node: db.MustGet(7)}, {Name: "b", AreaMM2: 5, Node: db.MustGet(14)}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("estimator should return its scratch Result on every call")
	}
	if math.Float64bits(first.PackageKg) == math.Float64bits(b.PackageKg) {
		t.Error("second call should have overwritten the scratch result")
	}
}

// EstimateRouting must reproduce the communication fields of a full
// Estimate bit-for-bit for every architecture — it is the seam compiled
// parameter plans use to refresh the node-dependent slice of a tabulated
// packaging result.
func TestEstimateRoutingMatchesEstimate(t *testing.T) {
	db := tech.Default()
	chiplets := []Chiplet{
		{Name: "a", AreaMM2: 120, Node: db.MustGet(7)},
		{Name: "b", AreaMM2: 60, Node: db.MustGet(14)},
		{Name: "c", AreaMM2: 30, Node: db.MustGet(10)},
	}
	for _, arch := range Architectures {
		p := DefaultParams(arch)
		full, err := Estimate(chiplets, p)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		r, err := EstimateRouting(chiplets, p)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if math.Float64bits(r.RoutingKg) != math.Float64bits(full.RoutingKg) ||
			math.Float64bits(r.RouterAreaPerChipletMM2) != math.Float64bits(full.RouterAreaPerChipletMM2) ||
			math.Float64bits(r.RouterTotalPowerW) != math.Float64bits(full.RouterTotalPowerW) {
			t.Errorf("%v: routing slice diverges from full estimate:\nfull %+v\ngot  %+v", arch, full, r)
		}
	}
	if _, err := EstimateRouting(nil, DefaultParams(RDLFanout)); err == nil {
		t.Error("empty chiplet set should fail")
	}
}

package floorplan

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestPlanFlexibleErrors(t *testing.T) {
	if _, err := PlanFlexible(nil, 0.5, nil); err == nil {
		t.Error("empty block list should fail")
	}
	if _, err := PlanFlexible(blocksOf(0), 0.5, nil); err == nil {
		t.Error("zero-area block should fail")
	}
	if _, err := PlanFlexible(blocksOf(100), 5, nil); err == nil {
		t.Error("bad spacing should fail")
	}
	if _, err := PlanFlexible(blocksOf(100, 100), 0.5, []float64{-1}); err == nil {
		t.Error("negative aspect should fail")
	}
}

// Flexible planning must never produce a larger package than the
// fixed-shape planner for the same blocks.
func TestFlexibleNeverWorse(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		blocks := make([]Block, len(raw))
		for i, r := range raw {
			blocks[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: float64(r%400) + 1}
		}
		fixed, err1 := Plan(blocks, 0.5)
		flex, err2 := PlanFlexible(blocks, 0.5, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return flex.AreaMM2() <= fixed.AreaMM2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A mismatched pair (one large, one small) benefits from aspect freedom:
// the small block stretches along the large one's edge.
func TestFlexibleBeatsFixedOnMismatch(t *testing.T) {
	blocks := blocksOf(400, 50)
	fixed, err := Plan(blocks, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	flex, err := PlanFlexible(blocks, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if flex.WhitespaceMM2() >= fixed.WhitespaceMM2() {
		t.Errorf("flexible whitespace %.1f should beat fixed %.1f",
			flex.WhitespaceMM2(), fixed.WhitespaceMM2())
	}
}

func TestFlexiblePlacementsValid(t *testing.T) {
	blocks := blocksOf(300, 120, 80, 40, 25)
	res, err := PlanFlexible(blocks, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != len(blocks) {
		t.Fatalf("placed %d of %d blocks", len(res.Placements), len(blocks))
	}
	for _, p := range res.Placements {
		if p.X < -1e-9 || p.Y < -1e-9 ||
			p.X+p.Width > res.WidthMM+1e-9 || p.Y+p.Height > res.HeightMM+1e-9 {
			t.Errorf("placement %s escapes the package", p.Name)
		}
	}
	// Areas preserved under aspect changes.
	for _, p := range res.Placements {
		want := map[string]float64{"c0": 300, "c1": 120, "c2": 80, "c3": 40, "c4": 25}[p.Name]
		if math.Abs(p.Width*p.Height-want) > 1e-6 {
			t.Errorf("block %s area %.2f, want %.2f", p.Name, p.Width*p.Height, want)
		}
	}
	// No overlaps.
	for i := 0; i < len(res.Placements); i++ {
		for j := i + 1; j < len(res.Placements); j++ {
			a, b := res.Placements[i], res.Placements[j]
			ox := math.Min(a.X+a.Width, b.X+b.Width) - math.Max(a.X, b.X)
			oy := math.Min(a.Y+a.Height, b.Y+b.Height) - math.Max(a.Y, b.Y)
			if ox > 1e-9 && oy > 1e-9 {
				t.Errorf("placements %s and %s overlap", a.Name, b.Name)
			}
		}
	}
}

func TestFixedAspectRespected(t *testing.T) {
	blocks := []Block{
		{Name: "hard", AreaMM2: 100, AspectRatio: 4}, // hard macro: 20x5
		{Name: "soft", AreaMM2: 100},
	}
	res, err := PlanFlexible(blocks, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Placements {
		if p.Name == "hard" {
			if math.Abs(p.Width-20) > 1e-9 || math.Abs(p.Height-5) > 1e-9 {
				t.Errorf("hard macro reshaped to %gx%g", p.Width, p.Height)
			}
		}
	}
}

func TestPruneKeepsParetoOnly(t *testing.T) {
	shapes := []shape{
		{w: 10, h: 10}, {w: 20, h: 5}, {w: 5, h: 20},
		{w: 12, h: 12}, // dominated by 10x10
	}
	out := prune(shapes)
	for _, s := range out {
		if s.w == 12 && s.h == 12 {
			t.Error("dominated shape survived pruning")
		}
	}
	if len(out) != 3 {
		t.Errorf("want 3 Pareto shapes, got %d", len(out))
	}
}

func TestFlexibleDeterministic(t *testing.T) {
	blocks := blocksOf(200, 100, 50)
	r1, err := PlanFlexible(blocks, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PlanFlexible(blocks, 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AreaMM2() != r2.AreaMM2() {
		t.Error("PlanFlexible is not deterministic")
	}
}

package netx

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/shard"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// testOpts keeps transport timing test-friendly while staying generous
// enough for -race on one core.
func testOpts() Options {
	return Options{Slack: 5 * time.Second, DialTimeout: 2 * time.Second, DrainTimeout: 5 * time.Second}
}

// fastCfg mirrors the shard package's test config.
func fastCfg() shard.Config {
	return shard.Config{BlockSize: 16, LeaseBlocks: 3, LeaseTimeout: 5 * time.Second,
		RetryBackoff: time.Millisecond, BackoffMax: 4 * time.Millisecond, MaxRetries: 2, Seed: 1}
}

// testSweep builds one randomized fast-path sweep: the coordinator-side
// compiled plan plus the registry entry a client needs to ship it.
func testSweep(t *testing.T, rng *rand.Rand) (*explore.CompiledPlan, *Registry, string, func() *shard.Catalog) {
	t.Helper()
	db := tech.Default()
	cp := cost.DefaultParams()
	for {
		sys := testcases.Random(rng, db)
		nodes := testcases.RandomNodes(rng)
		cat := shard.NewCatalog()
		key, err := cat.RegisterSweep(sys, db, nodes, cp)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := cat.Plan(key)
		if errors.Is(err, explore.ErrNoFastPath) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry()
		rkey, err := reg.AddSweep(sys, db, nodes, cp)
		if err != nil {
			t.Fatal(err)
		}
		if rkey != key {
			t.Fatalf("registry key %s != catalog key %s", rkey, key)
		}
		// Each replica server compiles from shipped content into its
		// own fresh catalog — the deployment shape.
		newCat := func() *shard.Catalog { return shard.NewCatalog() }
		return plan, reg, key, newCat
	}
}

func samePoint(a, b explore.Point) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	return math.Float64bits(a.EmbodiedKg) == math.Float64bits(b.EmbodiedKg) &&
		math.Float64bits(a.TotalKg) == math.Float64bits(b.TotalKg) &&
		math.Float64bits(a.CostUSD) == math.Float64bits(b.CostUSD) &&
		math.Float64bits(a.PackageAreaMM2) == math.Float64bits(b.PackageAreaMM2)
}

func assertSamePoints(t *testing.T, want, got []explore.Point, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d points, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !samePoint(want[i], got[i]) {
			t.Fatalf("%s: point %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// startServer spins a replica server on an ephemeral port and returns
// its address plus a shutdown func that drains and waits for Serve.
func startServer(t *testing.T, cat *shard.Catalog, opts Options) (string, *Server, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cat, tech.Default(), opts)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after cancel")
		}
	}
	return ln.Addr().String(), srv, stop
}

// The healthy socket path: three replica servers, each compiling the
// plan from shipped content, must reassemble the exact local walk.
func TestTCPSweepParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plan, reg, key, newCat := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var transports []shard.Transport
	var clients []*Client
	for i := 0; i < 3; i++ {
		addr, _, stop := startServer(t, newCat(), testOpts())
		defer stop()
		cl := DialTransport(addr, reg, testOpts())
		defer cl.Close()
		clients = append(clients, cl)
		transports = append(transports, cl)
	}
	co := shard.NewCoordinator(plan, key, transports, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "tcp sweep")

	st := co.Stats()
	if st.Wire.IsZero() {
		t.Fatal("coordinator stats carry no wire counters")
	}
	if st.Wire.Dials == 0 || st.Wire.FramesIn == 0 || st.Wire.BytesIn == 0 {
		t.Fatalf("implausible wire counters: %+v", st.Wire)
	}
	if st.BlocksLocal != 0 || st.Fallbacks != 0 {
		t.Fatalf("healthy tcp sweep fell back locally: %+v", st)
	}
	// Stats.Wire must be exactly the fold of the distinct clients'
	// counters (a tiny sweep may leave some clients idle — lazy dial).
	var sum shard.TransportCounters
	for _, cl := range clients {
		c := cl.TransportCounters()
		sum.Dials += c.Dials
		sum.Reconnects += c.Reconnects
		sum.FramesOut += c.FramesOut
		sum.FramesIn += c.FramesIn
		sum.BytesOut += c.BytesOut
		sum.BytesIn += c.BytesIn
		if c.MaxPipeline > sum.MaxPipeline {
			sum.MaxPipeline = c.MaxPipeline
		}
	}
	if st.Wire != sum {
		t.Fatalf("stats wire %+v != client fold %+v", st.Wire, sum)
	}
	if !strings.Contains(st.String(), "wire:") {
		t.Fatalf("Stats.String misses wire line:\n%s", st)
	}
}

// Pareto front over sockets must match the local front, including the
// dominated-count bookkeeping.
func TestTCPFrontParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	plan, reg, key, newCat := testSweep(t, rng)
	objs := []shard.Objective{shard.ObjTotal, shard.ObjCost}
	wantCo := shard.NewCoordinator(plan, key, []shard.Transport{}, fastCfg())
	want, wantDom, err := wantCo.ParetoFront(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}

	addr, _, stop := startServer(t, newCat(), testOpts())
	defer stop()
	cl := DialTransport(addr, reg, testOpts())
	defer cl.Close()
	co := shard.NewCoordinator(plan, key, []shard.Transport{cl, cl}, fastCfg())
	got, dom, err := co.ParetoFront(context.Background(), objs)
	if err != nil {
		t.Fatal(err)
	}
	if dom != wantDom {
		t.Fatalf("dominated count %d, want %d", dom, wantDom)
	}
	assertSamePoints(t, want, got, "tcp front")
}

// One *Client handed to the coordinator several times must multiplex
// the lease slots over a single connection. Driven deterministically:
// lease A parks in its emit callback while lease B runs start to
// finish on the same socket.
func TestTCPPipelineOverOneSocket(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	plan, reg, key, newCat := testSweep(t, rng)
	for plan.Combos() < 2 { // need at least two blocks to pipeline
		plan, reg, key, newCat = testSweep(t, rng)
	}
	addr, _, stop := startServer(t, newCat(), testOpts())
	defer stop()
	cl := DialTransport(addr, reg, testOpts())
	defer cl.Close()

	blockSize := 16
	points := plan.Combos()
	if points < 2*blockSize {
		blockSize = 1 // tiny sweep: one point per block still gives ≥2 blocks
	}
	mkLease := func(seq uint64, lo, hi int) shard.Lease {
		return shard.Lease{Key: key, Seq: seq, Blocks: shard.BlockRange{Lo: lo, Hi: hi},
			BlockSize: blockSize, PlanPoints: points, Mode: shard.ModePoints,
			Deadline: time.Now().Add(30 * time.Second)}
	}

	started := make(chan struct{})
	release := make(chan struct{})
	aDone := make(chan error, 1)
	go func() {
		first := true
		aDone <- cl.Execute(context.Background(), mkLease(1, 0, 2), func(res shard.BlockResult) error {
			if first {
				first = false
				close(started)
				<-release
			}
			return nil
		})
	}()

	select {
	case <-started:
	case err := <-aDone:
		t.Fatalf("lease A finished before emitting: %v", err)
	}
	// Lease A is mid-flight (parked in emit); run lease B to completion
	// over the same connection.
	var got []shard.BlockResult
	err := cl.Execute(context.Background(), mkLease(2, 0, 1), func(res shard.BlockResult) error {
		got = append(got, res)
		return nil
	})
	if err != nil {
		t.Fatalf("pipelined lease B: %v", err)
	}
	if len(got) != 1 || got[0].Block != 0 {
		t.Fatalf("lease B results: %+v", got)
	}
	close(release)
	if err := <-aDone; err != nil {
		t.Fatalf("lease A: %v", err)
	}

	c := cl.TransportCounters()
	if c.Dials != 1 {
		t.Fatalf("pipelining used %d connections, want 1", c.Dials)
	}
	if c.MaxPipeline < 2 {
		t.Fatalf("max pipeline %d, want >= 2", c.MaxPipeline)
	}
}

// Typed errors must survive the wire: a lease for a plan the registry
// cannot describe, and a lease whose geometry disagrees with the
// replica's compiled plan.
func TestTCPTypedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	plan, reg, key, newCat := testSweep(t, rng)
	addr, _, stop := startServer(t, newCat(), testOpts())
	defer stop()
	cl := DialTransport(addr, reg, testOpts())
	defer cl.Close()

	lease := shard.Lease{Key: "no-such-plan", Seq: 1, Blocks: shard.BlockRange{Lo: 0, Hi: 1},
		BlockSize: 16, PlanPoints: 16, Mode: shard.ModePoints, Deadline: time.Now().Add(5 * time.Second)}
	err := cl.Execute(context.Background(), lease, func(shard.BlockResult) error { return nil })
	if !errors.Is(err, shard.ErrPlanUnknown) {
		t.Fatalf("unknown plan over tcp: %v, want ErrPlanUnknown", err)
	}

	bad := shard.Lease{Key: key, Seq: 2, Blocks: shard.BlockRange{Lo: 0, Hi: 1},
		BlockSize: 16, PlanPoints: plan.Combos() + 1, Mode: shard.ModePoints,
		Deadline: time.Now().Add(5 * time.Second)}
	err = cl.Execute(context.Background(), bad, func(shard.BlockResult) error { return nil })
	if !errors.Is(err, shard.ErrLeaseMismatch) {
		t.Fatalf("mismatched lease over tcp: %v, want ErrLeaseMismatch", err)
	}
}

// killProxy forwards TCP traffic to a backend and hard-kills selected
// connections (RST via SetLinger(0)) once the server→client byte count
// passes a per-connection budget. It keeps accepting, so clients can
// reconnect — the socket-level fault injector for chaos tests.
type killProxy struct {
	t       *testing.T
	ln      net.Listener
	backend string
	// budget returns the server→client byte budget for the n-th
	// accepted connection (counting from 0); <0 means never kill.
	budget func(n int) int64

	kills atomic.Uint64
	conns atomic.Uint64
	wg    sync.WaitGroup
}

func newKillProxy(t *testing.T, backend string, budget func(n int) int64) *killProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killProxy{t: t, ln: ln, backend: backend, budget: budget}
	go p.acceptLoop()
	t.Cleanup(func() {
		ln.Close()
		p.wg.Wait()
	})
	return p
}

func (p *killProxy) Addr() string { return p.ln.Addr().String() }

func (p *killProxy) acceptLoop() {
	for {
		cc, err := p.ln.Accept()
		if err != nil {
			return
		}
		n := int(p.conns.Add(1)) - 1
		p.wg.Add(1)
		go p.pipe(cc, p.budget(n))
	}
}

// pipe shuttles bytes both ways until either side closes or the
// server→client budget is exhausted, at which point both sockets die
// with an RST — mid-frame, the nastiest spot.
func (p *killProxy) pipe(cc net.Conn, budget int64) {
	defer p.wg.Done()
	sc, err := net.Dial("tcp", p.backend)
	if err != nil {
		cc.Close()
		return
	}
	kill := func() {
		p.kills.Add(1)
		if tc, ok := cc.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		if tc, ok := sc.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		cc.Close()
		sc.Close()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // client → server: never budgeted
		defer wg.Done()
		buf := make([]byte, 4<<10)
		for {
			n, err := cc.Read(buf)
			if n > 0 {
				if _, werr := sc.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		sc.Close()
	}()
	go func() { // server → client: killed past the budget
		defer wg.Done()
		var sent int64
		buf := make([]byte, 512)
		for {
			n, err := sc.Read(buf)
			if n > 0 {
				if budget >= 0 && sent+int64(n) > budget {
					over := sent + int64(n) - budget
					cc.Write(buf[:int64(n)-over]) // deliver a torn prefix
					kill()
					return
				}
				sent += int64(n)
				if _, werr := cc.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		cc.Close()
	}()
	wg.Wait()
}

// A replica dropping mid-lease must cost only a reconnect: the client
// redials, the coordinator re-leases, and the result stays
// bit-identical. The proxy tears down the first connection right after
// the handshake+registration bytes, so the kill lands mid-lease.
func TestTCPReconnectMidLease(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	plan, reg, key, newCat := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	addr, _, stop := startServer(t, newCat(), testOpts())
	defer stop()
	proxy := newKillProxy(t, addr, func(n int) int64 {
		if n == 0 {
			return 160 // past hello+registered echo, inside the first result stream
		}
		return -1
	})
	cl := DialTransport(proxy.Addr(), reg, testOpts())
	defer cl.Close()

	co := shard.NewCoordinator(plan, key, []shard.Transport{cl}, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "reconnect sweep")
	if proxy.kills.Load() == 0 {
		t.Fatal("proxy never killed a connection; test exercised nothing")
	}
	c := cl.TransportCounters()
	if c.Reconnects == 0 {
		t.Fatalf("no reconnects recorded: %+v", c)
	}
	st := co.Stats()
	if st.ReplicaFailures == 0 {
		t.Fatalf("coordinator saw no replica failure: %+v", st)
	}
}

// A replica that dies on every connection must get retired while a
// surviving replica carries the sweep — over real sockets, with the
// retry/backoff path in between.
func TestTCPSurvivorTakesOver(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	plan, reg, key, newCat := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	deadAddr, _, stopDead := startServer(t, newCat(), testOpts())
	defer stopDead()
	proxy := newKillProxy(t, deadAddr, func(int) int64 { return 48 }) // every conn dies early
	liveAddr, _, stopLive := startServer(t, newCat(), testOpts())
	defer stopLive()

	dead := DialTransport(proxy.Addr(), reg, testOpts())
	defer dead.Close()
	live := DialTransport(liveAddr, reg, testOpts())
	defer live.Close()

	cfg := fastCfg()
	cfg.DisableFallback = true // the survivor, not the local walk, must finish
	co := shard.NewCoordinator(plan, key, []shard.Transport{dead, live}, cfg)
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "survivor sweep")
	st := co.Stats()
	if st.ReplicaFailures == 0 {
		t.Fatalf("no replica failures recorded: %+v", st)
	}
	if st.Fallbacks != 0 || st.BlocksLocal != 0 {
		t.Fatalf("local fallback fired with a live survivor: %+v", st)
	}
	if proxy.kills.Load() == 0 {
		t.Fatal("proxy never killed a connection")
	}
}

// chaosBudgets drives the socket-level chaos suite: seeded random
// byte budgets, some connections spared, some killed at hostile
// offsets (tiny budgets tear frames mid-header).
func chaosBudgets(seed int64) func(n int) int64 {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func(n int) int64 {
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(2) == 0 {
			return -1
		}
		return int64(16 + rng.Intn(4096))
	}
}

// Socket-level chaos parity: two replicas behind connection-killing
// proxies plus one healthy replica; whatever the kill schedule, the
// sweep must stay Float64bits-identical to the local walk.
func TestTCPChaosParity(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		plan, reg, key, newCat := testSweep(t, rng)
		want, err := plan.RunCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}

		var transports []shard.Transport
		var kills []*killProxy
		for i := 0; i < 2; i++ {
			addr, _, stop := startServer(t, newCat(), testOpts())
			defer stop()
			proxy := newKillProxy(t, addr, chaosBudgets(int64(1000*trial+i)))
			kills = append(kills, proxy)
			cl := DialTransport(proxy.Addr(), reg, testOpts())
			defer cl.Close()
			transports = append(transports, cl)
		}
		liveAddr, _, stopLive := startServer(t, newCat(), testOpts())
		defer stopLive()
		live := DialTransport(liveAddr, reg, testOpts())
		defer live.Close()
		transports = append(transports, live)

		cfg := fastCfg()
		cfg.Seed = int64(trial + 1)
		co := shard.NewCoordinator(plan, key, transports, cfg)
		got, err := co.Sweep(context.Background())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSamePoints(t, want, got, "chaos sweep")
		_ = kills
	}
}

// Graceful drain: after ctx cancel the server must refuse new leases
// on established connections with the shutting-down code, finish
// in-flight work, and return from Serve.
func TestServerDrainRefusesNewLeases(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	plan, reg, key, newCat := testSweep(t, rng)

	addr, srv, stop := startServer(t, newCat(), testOpts())
	cl := DialTransport(addr, reg, testOpts())
	defer cl.Close()

	// Establish the connection and registration with one healthy sweep.
	co := shard.NewCoordinator(plan, key, []shard.Transport{cl}, fastCfg())
	if _, err := co.Sweep(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Flip the server into draining (white-box: the Serve ctx path sets
	// the same flag) and lease again over the still-open connection.
	srv.mu.Lock()
	srv.draining = true
	srv.mu.Unlock()
	lease := shard.Lease{Key: key, Seq: 99, Blocks: shard.BlockRange{Lo: 0, Hi: 1},
		BlockSize: 16, PlanPoints: plan.Combos(), Mode: shard.ModePoints,
		Deadline: time.Now().Add(5 * time.Second)}
	err := cl.Execute(context.Background(), lease, func(shard.BlockResult) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("lease during drain: %v, want draining refusal", err)
	}

	srv.mu.Lock()
	srv.draining = false
	srv.mu.Unlock()
	stop() // real drain: Serve must return cleanly
}

// A server that was never started must surface as a transient dial
// error, which the coordinator absorbs via fallback.
func TestTCPDialFailureFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	plan, reg, key, _ := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Grab a port and close it again: nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	cl := DialTransport(deadAddr, reg, testOpts())
	defer cl.Close()
	co := shard.NewCoordinator(plan, key, []shard.Transport{cl}, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "dead replica sweep")
	st := co.Stats()
	if st.Fallbacks == 0 {
		t.Fatalf("expected local fallback: %+v", st)
	}
}

// Auth: a server with a shared secret must reject a tokenless client
// with the typed auth error (distinct from db-skew) and accept a
// matching one bit-identically.
func TestTCPAuthToken(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	plan, reg, key, newCat := testSweep(t, rng)
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	srvOpts := testOpts()
	srvOpts.AuthToken = "hunter2"
	addr, _, stop := startServer(t, newCat(), srvOpts)
	defer stop()

	badOpts := testOpts()
	badOpts.AuthToken = "wrong"
	bad := DialTransport(addr, reg, badOpts)
	defer bad.Close()
	lease := shard.Lease{Key: key, Seq: 1, Blocks: shard.BlockRange{Lo: 0, Hi: 1},
		BlockSize: 16, PlanPoints: plan.Combos(), Mode: shard.ModePoints,
		Deadline: time.Now().Add(5 * time.Second)}
	err = bad.Execute(context.Background(), lease, func(shard.BlockResult) error { return nil })
	if !errors.Is(err, shard.ErrAuthFailed) {
		t.Fatalf("wrong token: %v, want ErrAuthFailed", err)
	}
	if errors.Is(err, shard.ErrPlanUnknown) {
		t.Fatalf("auth failure must stay distinct from plan-unknown: %v", err)
	}

	goodOpts := testOpts()
	goodOpts.AuthToken = "hunter2"
	good := DialTransport(addr, reg, goodOpts)
	defer good.Close()
	co := shard.NewCoordinator(plan, key, []shard.Transport{good}, fastCfg())
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "authed sweep")
}

// A coordinator holding one bad-token and one good-token client must
// retire the rejected transport (auth does not heal mid-run) and let
// the authenticated one finish — no local fallback.
func TestTCPAuthFailureRetiresTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	plan, reg, key, newCat := testSweep(t, rng)
	for plan.Combos() < 16 {
		plan, reg, key, newCat = testSweep(t, rng)
	}
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	srvOpts := testOpts()
	srvOpts.AuthToken = "s3cret"
	addr, _, stop := startServer(t, newCat(), srvOpts)
	defer stop()

	badOpts := testOpts() // no token at all
	bad := DialTransport(addr, reg, badOpts)
	defer bad.Close()
	goodOpts := testOpts()
	goodOpts.AuthToken = "s3cret"
	good := DialTransport(addr, reg, goodOpts)
	defer good.Close()

	cfg := fastCfg()
	cfg.DisableFallback = true
	cfg.BlockSize = 2
	cfg.LeaseBlocks = 1
	co := shard.NewCoordinator(plan, key, []shard.Transport{bad, good}, cfg)
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "auth-mixed sweep")
	st := co.Stats()
	if st.ReplicasLost != 1 {
		t.Fatalf("stats = %+v, want exactly the rejected transport retired", st)
	}
}

// Liveness pongs carry the drain flag, and the client folds it into
// Draining() — including via the idle probe loop, with no lease
// traffic at all.
func TestTCPPingDraining(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	_, reg, _, newCat := testSweep(t, rng)
	addr, srv, stop := startServer(t, newCat(), testOpts())
	defer stop()

	opts := testOpts()
	opts.IdleProbe = 10 * time.Millisecond
	cl := DialTransport(addr, reg, opts)
	defer cl.Close()

	cc, err := cl.ensure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if cl.Draining() {
		t.Fatal("fresh server reported draining")
	}

	// Flip the server into drain (white-box, same flag the Serve ctx
	// path sets) and let the idle probe loop discover it.
	srv.mu.Lock()
	srv.draining = true
	srv.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for !cl.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("idle probes never surfaced the drain flag")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A redial is a fresh replica: the flag must clear.
	srv.mu.Lock()
	srv.draining = false
	srv.mu.Unlock()
	cc.fail(fmt.Errorf("test: force redial"))
	if _, err := cl.ensure(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cl.Draining() {
		t.Fatal("draining flag survived a reconnect")
	}
}

// Reconnect backoff under a flapping path: the first connection dies
// mid-lease, the next dials are cut during the handshake, and only
// then does the path heal. The pipelined client must redial through
// the flap (Reconnects advances), resolve every lease, leak no pends,
// and keep the output bit-identical.
func TestTCPReconnectBackoffFlappingListener(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	plan, reg, key, newCat := testSweep(t, rng)
	for plan.Combos() < 32 {
		plan, reg, key, newCat = testSweep(t, rng)
	}
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	addr, _, stop := startServer(t, newCat(), testOpts())
	defer stop()
	proxy := newKillProxy(t, addr, func(n int) int64 {
		switch n {
		case 0:
			return 160 // survive the handshake, die inside the first lease
		case 1, 2:
			return 0 // the flap: cut before the hello reply arrives
		default:
			return -1 // healed
		}
	})
	cl := DialTransport(proxy.Addr(), reg, testOpts())
	defer cl.Close()

	// The same client twice: both lease slots pipeline on one socket and
	// both must survive the flap.
	cfg := fastCfg()
	cfg.BlockSize = 4
	cfg.LeaseBlocks = 1
	co := shard.NewCoordinator(plan, key, []shard.Transport{cl, cl}, cfg)
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "flap sweep")
	if proxy.kills.Load() < 3 {
		t.Fatalf("proxy killed %d connections, want the whole flap schedule", proxy.kills.Load())
	}
	c := cl.TransportCounters()
	if c.Reconnects == 0 {
		t.Fatalf("no reconnects recorded through the flap: %+v", c)
	}
	// No pend leaks: with every lease resolved, the routing table of the
	// surviving connection must be empty.
	cl.mu.Lock()
	cc := cl.cc
	cl.mu.Unlock()
	if cc != nil {
		cc.mu.Lock()
		n := len(cc.pending)
		cc.mu.Unlock()
		if n != 0 {
			t.Fatalf("%d pends leaked after the sweep", n)
		}
	}
}

// The TCP health-fabric chaos trial: a straggling replica and a
// flapping replica behind real sockets. The sweep must stay
// Float64bits-identical while hedges rescue the straggler's spans and
// the flapper's breaker walks through a full open -> half-open ->
// close cycle.
func TestTCPChaosStragglerFlap(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	plan, reg, key, newCat := testSweep(t, rng)
	for plan.Combos() < 24 {
		plan, reg, key, newCat = testSweep(t, rng)
	}
	want, err := plan.RunCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	mk := func() *Client {
		addr, _, stop := startServer(t, newCat(), testOpts())
		t.Cleanup(stop)
		cl := DialTransport(addr, reg, testOpts())
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	steady := shard.Fault(mk(), shard.FaultSpec{Seed: 1, Delay: 2 * time.Millisecond})
	straggler := shard.Fault(mk(), shard.FaultSpec{Seed: 2, Slow: 10 * time.Second})
	flappy := shard.Fault(mk(), shard.FaultSpec{Seed: 3, FlapEvery: 4})

	cfg := fastCfg()
	cfg.BlockSize = 1
	cfg.LeaseBlocks = 1
	cfg.LeaseTimeout = 30 * time.Second
	cfg.HedgeMin = 5 * time.Millisecond
	cfg.Health.TripAfter = 3
	cfg.Health.MinSamples = 1000
	cfg.Health.ProbeAfter = 2 * time.Millisecond
	cfg.Health.ProbeAfterMax = 4 * time.Millisecond
	cfg.Health.MaxProbes = 100
	co := shard.NewCoordinator(plan, key, []shard.Transport{steady, straggler, flappy}, cfg)
	got, err := co.Sweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertSamePoints(t, want, got, "tcp health-fabric sweep")
	st := co.Stats()
	if st.HedgesFired == 0 || st.HedgesWon == 0 {
		t.Errorf("stats = %+v, want hedges fired and won over tcp", st)
	}
	if st.BreakerTrips == 0 || st.BreakerProbes == 0 || st.BreakerCloses == 0 {
		t.Errorf("stats = %+v, want a full breaker cycle over tcp", st)
	}
	if st.LeasesExpired != 0 {
		t.Errorf("stats = %+v, want rescue via hedging, not expiry", st)
	}
	if st.Fallbacks != 0 {
		t.Errorf("stats = %+v, want no local fallback", st)
	}
}

package testcases

import (
	"strings"
	"testing"

	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

func db() *tech.DB { return tech.Default() }

func TestGA102Shapes(t *testing.T) {
	mono, err := GA102(db(), 7, 7, 7, true).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := GA102(db(), 7, 14, 10, false).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	// Section V-A(5)(c): GA102 C_emb drops up to ~30% vs the monolith.
	saving := 1 - mixed.EmbodiedKg()/mono.EmbodiedKg()
	if saving < 0.05 || saving > 0.5 {
		t.Errorf("GA102 HI embodied saving = %.0f%%, want a real saving in (5%%, 50%%)", saving*100)
	}
	// Fig. 7(d): for the GPU, operational carbon dominates (~80/20).
	opShare := mono.OperationalKg / mono.TotalKg()
	if opShare < 0.6 || opShare > 0.95 {
		t.Errorf("GA102 operational share = %.2f, want ~0.8", opShare)
	}
	// HI total still beats the monolith over the 2-year lifetime.
	if mixed.TotalKg() >= mono.TotalKg() {
		t.Errorf("GA102 HI C_tot %.1f should beat monolith %.1f", mixed.TotalKg(), mono.TotalKg())
	}
}

func TestGA102MonolithArea(t *testing.T) {
	rep, err := GA102(db(), 7, 7, 7, true).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if a := rep.Chiplets[0].AreaMM2; a < 620 || a > 640 {
		t.Errorf("GA102 monolith area = %.1f mm^2, want ~628", a)
	}
}

func TestGA102Split(t *testing.T) {
	if _, err := GA102Split(db(), 0, pkgcarbon.RDLFanout); err == nil {
		t.Error("zero split should fail")
	}
	s, err := GA102Split(db(), 4, pkgcarbon.RDLFanout)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Chiplets) != 6 {
		t.Fatalf("4-way digital split should give 6 chiplets, got %d", len(s.Chiplets))
	}
	rep, err := s.Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if rep.HIKg <= 0 {
		t.Error("split system must carry HI carbon")
	}
}

// Fig. 10: C_mfg falls monotonically as the digital block is split
// further, while C_HI grows across the sweep. C_HI is allowed small local
// dips (the slicing floorplanner occasionally packs a particular chiplet
// count with less whitespace) but the endpoints must order.
func TestGA102SplitTrend(t *testing.T) {
	his := map[int]float64{}
	var prevMfg float64
	for i, nc := range []int{1, 2, 4, 8} {
		s, err := GA102Split(db(), nc, pkgcarbon.RDLFanout)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Evaluate(db())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rep.MfgKg >= prevMfg {
			t.Errorf("C_mfg at nc=%d (%.1f) should fall below %.1f", nc, rep.MfgKg, prevMfg)
		}
		prevMfg = rep.MfgKg
		his[nc] = rep.HIKg
	}
	if !(his[8] > his[2] && his[2] > his[1]) {
		t.Errorf("C_HI should grow across the split sweep: %v", his)
	}
}

func TestGA102DigitalOnly(t *testing.T) {
	if _, err := GA102DigitalOnly(db(), 0, pkgcarbon.RDLFanout); err == nil {
		t.Error("zero chiplets should fail")
	}
	for _, arch := range pkgcarbon.Architectures {
		s, err := GA102DigitalOnly(db(), 4, arch)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Evaluate(db())
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if rep.HIKg <= 0 {
			t.Errorf("%v: C_HI should be positive", arch)
		}
	}
}

func TestA15EmbodiedDominates(t *testing.T) {
	mono, err := A15(db(), 7, 7, 7, true).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8(b) / Section VII: ~80% embodied, ~20% operational for the
	// mobile SoC.
	share := mono.EmbodiedKg() / mono.TotalKg()
	if share < 0.6 || share > 0.9 {
		t.Errorf("A15 embodied share = %.2f, want ~0.8", share)
	}
	mixed, err := A15(db(), 7, 14, 10, false).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if mixed.EmbodiedKg() >= mono.EmbodiedKg() {
		t.Errorf("A15 HI C_emb %.2f should beat monolith %.2f", mixed.EmbodiedKg(), mono.EmbodiedKg())
	}
	// Section V-A(5)(c): smaller SoCs benefit less than GA102.
	a15Saving := 1 - mixed.EmbodiedKg()/mono.EmbodiedKg()
	gaMono, _ := GA102(db(), 7, 7, 7, true).Evaluate(db())
	gaMixed, _ := GA102(db(), 7, 14, 10, false).Evaluate(db())
	gaSaving := 1 - gaMixed.EmbodiedKg()/gaMono.EmbodiedKg()
	if a15Saving >= gaSaving {
		t.Errorf("A15 saving %.2f should be below GA102 saving %.2f (larger SoCs benefit more)",
			a15Saving, gaSaving)
	}
}

func TestEMRShapes(t *testing.T) {
	hi, err := EMR(db(), 10, false).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	mono, err := EMR(db(), 10, true).Evaluate(db())
	if err != nil {
		t.Fatal(err)
	}
	if hi.MfgKg >= mono.MfgKg {
		t.Errorf("EMR 2-chiplet C_mfg %.1f should beat the %0.f mm^2 monolith %.1f",
			hi.MfgKg, 2*EMRChipletMM2, mono.MfgKg)
	}
	if hi.Packaging == nil || hi.Packaging.NumBridges == 0 {
		t.Error("EMR should use silicon bridges")
	}
	// Server CPU: operational carbon dominates over 5 years.
	if hi.OperationalKg <= hi.EmbodiedKg() {
		t.Errorf("EMR operational %.1f should dominate embodied %.1f", hi.OperationalKg, hi.EmbodiedKg())
	}
}

func TestARVRConfigNames(t *testing.T) {
	cases := map[string]ARVRConfig{
		"2D-1K-2MB":  {Series1K, 1},
		"3D-1K-4MB":  {Series1K, 2},
		"3D-1K-8MB":  {Series1K, 4},
		"2D-2K-4MB":  {Series2K, 1},
		"3D-2K-16MB": {Series2K, 4},
	}
	for want, cfg := range cases {
		if got := cfg.Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", cfg, got, want)
		}
	}
	if len(ARVRConfigs()) != 8 {
		t.Errorf("ARVRConfigs should enumerate 8 points, got %d", len(ARVRConfigs()))
	}
}

func TestARVRPerformanceTrends(t *testing.T) {
	for _, series := range []ARVRSeries{Series1K, Series2K} {
		var prev Performance
		for tiers := 1; tiers <= 4; tiers++ {
			p := ARVRPerformance(ARVRConfig{series, tiers})
			if tiers > 1 {
				if p.LatencyMS >= prev.LatencyMS {
					t.Errorf("%s tiers=%d: latency %.2f should fall below %.2f",
						series, tiers, p.LatencyMS, prev.LatencyMS)
				}
				if p.PowerW >= prev.PowerW {
					t.Errorf("%s tiers=%d: power %.2f should fall below %.2f",
						series, tiers, p.PowerW, prev.PowerW)
				}
			}
			prev = p
		}
	}
}

// Fig. 13: embodied carbon rises with tiers (more silicon), even though
// delay and power improve.
func TestARVREmbodiedRisesWithTiers(t *testing.T) {
	var prev float64
	for tiers := 1; tiers <= 4; tiers++ {
		s, err := ARVR(db(), ARVRConfig{Series1K, tiers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Evaluate(db())
		if err != nil {
			t.Fatal(err)
		}
		if tiers > 1 && rep.EmbodiedKg() <= prev {
			t.Errorf("tiers=%d: C_emb %.3f should exceed %d-tier %.3f",
				tiers, rep.EmbodiedKg(), tiers-1, prev)
		}
		prev = rep.EmbodiedKg()
	}
}

func TestARVRErrors(t *testing.T) {
	if _, err := ARVR(db(), ARVRConfig{Series1K, 0}); err == nil {
		t.Error("zero tiers should fail")
	}
	if _, err := ARVR(db(), ARVRConfig{Series1K, 5}); err == nil {
		t.Error("five tiers should fail")
	}
}

func TestSystemNames(t *testing.T) {
	if name := GA102(db(), 7, 14, 10, false).Name; !strings.Contains(name, "7,14,10") {
		t.Errorf("GA102 name %q should carry the node tuple", name)
	}
	if name := EMR(db(), 10, true).Name; !strings.Contains(name, "monolith") {
		t.Errorf("EMR monolith name %q should say so", name)
	}
}

func TestOperationSpecsAreCopies(t *testing.T) {
	a := A15(db(), 7, 7, 7, false)
	b := A15(db(), 7, 7, 7, false)
	a.Operation.LifetimeYears = 10
	if b.Operation.LifetimeYears == 10 {
		t.Error("systems must not share operation specs")
	}
	a.Operation.Battery.CapacityWh = 99
	if b.Operation.Battery.CapacityWh == 99 {
		t.Error("systems must not share battery specs")
	}
}

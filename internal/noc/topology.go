package noc

import (
	"fmt"
	"math"

	"ecochip/internal/tech"
)

// Topology models the network-on-interposer connecting the chiplets of a
// 2.5D system (Stow et al. [42]): routers sit at a regular 2D-mesh grid,
// one per chiplet, with links sized to the inter-chiplet spacing. It
// provides the aggregate area/power/energy numbers ECO-CHIP's
// communication overheads build on, plus traffic-dependent estimates for
// design-space exploration beyond the paper's fixed operating point.
type Topology struct {
	// Routers is the router count (one per chiplet endpoint).
	Routers int
	// Cols and Rows are the mesh dimensions.
	Cols, Rows int
	// LinkLengthMM is the per-hop link length (chiplet pitch).
	LinkLengthMM float64
	// Config is the per-router microarchitecture.
	Config Config
}

// NewMesh builds the smallest near-square 2D mesh with at least n
// endpoints, with the given link length in mm.
func NewMesh(n int, linkLengthMM float64, c Config) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("noc: mesh needs at least one endpoint, got %d", n)
	}
	if linkLengthMM <= 0 {
		return nil, fmt.Errorf("noc: link length must be positive, got %g", linkLengthMM)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	rows := (n + cols - 1) / cols
	return &Topology{Routers: n, Cols: cols, Rows: rows, LinkLengthMM: linkLengthMM, Config: c}, nil
}

// Links returns the number of bidirectional mesh links actually present
// for the (possibly partial) last row.
func (t *Topology) Links() int {
	links := 0
	for i := 0; i < t.Routers; i++ {
		col, row := i%t.Cols, i/t.Cols
		if col+1 < t.Cols && i+1 < t.Routers && (i+1)/t.Cols == row {
			links++ // east neighbour
		}
		if row+1 < t.Rows && i+t.Cols < t.Routers {
			links++ // north neighbour
		}
	}
	return links
}

// AverageHops returns the mean Manhattan router-to-router hop count over
// all ordered endpoint pairs (the uniform-random traffic assumption).
func (t *Topology) AverageHops() float64 {
	if t.Routers < 2 {
		return 0
	}
	var total float64
	var pairs int
	for a := 0; a < t.Routers; a++ {
		for b := 0; b < t.Routers; b++ {
			if a == b {
				continue
			}
			ax, ay := a%t.Cols, a/t.Cols
			bx, by := b%t.Cols, b/t.Cols
			total += math.Abs(float64(ax-bx)) + math.Abs(float64(ay-by))
			pairs++
		}
	}
	return total / float64(pairs)
}

// TotalRouterAreaMM2 returns the silicon area of all routers in the
// given node.
func (t *Topology) TotalRouterAreaMM2(n *tech.Node) (float64, error) {
	a, err := AreaMM2(t.Config, n)
	if err != nil {
		return 0, err
	}
	return a * float64(t.Routers), nil
}

// TotalPowerW returns the aggregate router power plus link power. Link
// dynamic power scales with wire capacitance (per-mm) at the operating
// voltage and frequency.
func (t *Topology) TotalPowerW(n *tech.Node, pp PowerParams) (float64, error) {
	router, err := PowerW(t.Config, n, pp)
	if err != nil {
		return 0, err
	}
	link := linkPowerW(t.Config, n, pp, t.LinkLengthMM)
	return router*float64(t.Routers) + link*float64(t.Links()), nil
}

// wireCapFPerMM is the interposer wire capacitance per mm (≈0.2 pF/mm).
const wireCapFPerMM = 0.2e-12

// linkPowerW is the dynamic power of one flit-wide link of the given
// length: alpha * C_wire * V^2 * f per wire.
func linkPowerW(c Config, n *tech.Node, pp PowerParams, lengthMM float64) float64 {
	capPerWire := wireCapFPerMM * lengthMM
	return pp.Activity * capPerWire * n.Vdd * n.Vdd * pp.FrequencyHz * float64(c.FlitWidthBits)
}

// EnergyPerFlitJ returns the average energy to move one flit across the
// network under uniform traffic: per-hop router energy (power/flit-rate)
// plus per-hop link energy, times the average hop count.
func (t *Topology) EnergyPerFlitJ(n *tech.Node, pp PowerParams) (float64, error) {
	routerW, err := PowerW(t.Config, n, pp)
	if err != nil {
		return 0, err
	}
	// At full injection each router forwards one flit per cycle.
	flitRate := pp.FrequencyHz
	routerJ := routerW / flitRate
	linkJ := linkPowerW(t.Config, n, pp, t.LinkLengthMM) / flitRate
	hops := t.AverageHops()
	if hops == 0 {
		hops = 1
	}
	return (routerJ + linkJ) * hops, nil
}

// ComponentBreakdown reports the transistor share of each router
// component — the per-component accounting ORION 3.0 exposes.
type ComponentBreakdown struct {
	Buffers, Crossbar, Allocators, Links float64
}

// Breakdown returns the per-component transistor counts of one router.
func Breakdown(c Config) (ComponentBreakdown, error) {
	if err := c.Validate(); err != nil {
		return ComponentBreakdown{}, err
	}
	p := float64(c.Ports)
	vc := float64(c.VirtualChannels)
	depth := float64(c.BufferDepthFlits)
	flit := float64(c.FlitWidthBits)
	return ComponentBreakdown{
		Buffers:    p * vc * depth * flit * transistorsPerBufferBit,
		Crossbar:   p * p * flit * transistorsPerXbarBit,
		Allocators: (p*p*vc*vc + p*p) * transistorsPerArbPair,
		Links:      p * flit * transistorsPerLinkBit,
	}, nil
}

// Total sums the breakdown; it equals Transistors for the same config.
func (b ComponentBreakdown) Total() float64 {
	return b.Buffers + b.Crossbar + b.Allocators + b.Links
}

package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/explore"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

// Hammering one key from many goroutines must coalesce into exactly one
// compile, with every caller receiving the same bits.
func TestServeSingleFlightHammer(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	srv := NewServer(db, Config{})
	req := &WhatIfRequest{
		System: sys,
		Nodes:  ga102Nodes,
		Swap:   map[string]int{sys.Chiplets[0].Name: 10},
	}

	const callers = 24
	points := make([]*explore.Point, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := srv.WhatIf(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			points[i] = resp.Point
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if points[i] == nil || !samePoint(*points[0], *points[i]) {
			t.Fatalf("caller %d diverged: %+v vs %+v", i, points[i], points[0])
		}
	}
	s := srv.Stats().Sweeps
	if s.Builds != 1 {
		t.Fatalf("Builds = %d, want 1 (single-flight)", s.Builds)
	}
	if s.Hits+s.Coalesced != callers-1 {
		t.Fatalf("stats = %+v, want %d hits+coalesced", s, callers-1)
	}
}

// distinctSystems builds n GA102 variants whose plan keys all differ
// (the memory spec nudges the content hash) plus per-variant reference
// sweep bits.
func distinctSystems(t *testing.T, db *tech.DB, n int) ([]*core.System, [][]explore.Point) {
	t.Helper()
	systems := make([]*core.System, n)
	refs := make([][]explore.Point, n)
	for i := 0; i < n; i++ {
		sys := ga102(t, db)
		sys.Chiplets = append([]core.Chiplet(nil), sys.Chiplets...)
		sys.Chiplets[0].Transistors *= 1 + 0.01*float64(i)
		sys.Name = fmt.Sprintf("ga102-v%d", i)
		systems[i] = sys
		plan, err := explore.Compile(sys, db, ga102Nodes, cost.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		pts, err := plan.RunCtx(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = pts
	}
	return systems, refs
}

// Concurrent requests for distinct keys must each compile once and stay
// bit-identical to their own cold reference.
func TestServeDistinctKeysConcurrent(t *testing.T) {
	db := tech.Default()
	const nkeys = 4
	systems, refs := distinctSystems(t, db, nkeys)
	srv := NewServer(db, Config{})

	const perKey = 6
	var wg sync.WaitGroup
	for k := 0; k < nkeys; k++ {
		for j := 0; j < perKey; j++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				resp, err := srv.Sweep(context.Background(), &SweepRequest{System: systems[k], Nodes: ga102Nodes})
				if err != nil {
					t.Error(err)
					return
				}
				assertSamePoints(t, refs[k], resp.Points, fmt.Sprintf("key %d", k))
			}(k)
		}
	}
	wg.Wait()
	if s := srv.Stats().Sweeps; s.Builds != nkeys {
		t.Fatalf("Builds = %d, want %d (one per key)", s.Builds, nkeys)
	}
}

// Under a cache two sizes too small, concurrent load forces evictions
// and recompiles; every response must still carry its reference bits.
func TestServeEvictionUnderLoad(t *testing.T) {
	db := tech.Default()
	const nkeys = 4
	systems, refs := distinctSystems(t, db, nkeys)
	srv := NewServer(db, Config{PlanCacheSize: 2})

	const workers = 8
	const iters = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % nkeys
				resp, err := srv.Sweep(context.Background(), &SweepRequest{System: systems[k], Nodes: ga102Nodes})
				if err != nil {
					t.Error(err)
					return
				}
				assertSamePoints(t, refs[k], resp.Points, fmt.Sprintf("worker %d iter %d key %d", w, i, k))
			}
		}(w)
	}
	wg.Wait()
	s := srv.Stats().Sweeps
	if s.Evictions == 0 {
		t.Fatalf("stats = %+v, want capacity evictions under load", s)
	}
	if got := srv.sweeps.Len(); got > 2 {
		t.Fatalf("resident plans = %d, want <= 2", got)
	}
}

// Mixed families (sweep, param, disaggregate) hammered concurrently on
// one server must stay consistent — the three caches are independent.
func TestServeMixedFamiliesConcurrent(t *testing.T) {
	db := tech.Default()
	sys := ga102(t, db)
	epyc, err := testcases.EPYC(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	refPlan, err := explore.DisaggregateCtx(context.Background(), epyc, db)
	if err != nil {
		t.Fatal(err)
	}
	refPerturb := applyPerturb(sys, nil, 2)
	refRep, err := refPerturb.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(db, Config{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			resp, err := srv.WhatIf(context.Background(), &WhatIfRequest{System: sys, VolumeScale: 2})
			if err != nil {
				t.Error(err)
				return
			}
			assertTotalsMatchReport(t, refRep, resp.Totals, "perturb")
		}()
		go func() {
			defer wg.Done()
			resp, err := srv.Disaggregate(context.Background(), &DisaggregateRequest{System: epyc})
			if err != nil {
				t.Error(err)
				return
			}
			if resp.EmbodiedKg != refPlan.EmbodiedKg || resp.Steps != refPlan.Steps {
				t.Errorf("disaggregate diverged: %+v", resp)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := srv.Sweep(context.Background(), &SweepRequest{System: sys, Nodes: ga102Nodes}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := srv.Stats()
	if st.Sweeps.Builds != 1 || st.Params.Builds != 1 || st.Disaggregates.Builds != 1 {
		t.Fatalf("stats = %+v, want one build per family", st)
	}
}

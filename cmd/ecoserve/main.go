// Command ecoserve is the long-lived what-if server: an HTTP/JSON
// front end over content-keyed compiled-plan caches.
//
//	ecoserve -addr 127.0.0.1:8080
//
// Endpoints (all bodies JSON):
//
//	POST /v1/sweep         node sweep (or its Pareto front with
//	                       "objectives") of the posted system
//	POST /v1/whatif        one what-if: a node swap answered off the
//	                       warm sweep plan, or an area/volume
//	                       perturbation answered off the warm
//	                       parameter plan
//	POST /v1/disaggregate  greedy disaggregation of the posted system
//	POST /v1/sweep/stream  front mode as NDJSON: one line per
//	                       tightening front snapshot, then the result
//	GET  /v1/stats         plan-cache counters
//
// The first request for a (system, db-version) shape compiles its plan
// — once, however many clients race for it — and every later request
// with the same content hash runs warm, bit-identical to the cold
// path. -plan-cache bounds the resident plans per family; evicted
// shapes recompile on demand.
//
// Each request family admits at most -max-inflight concurrent requests;
// arrivals past the bound queue for -queue-timeout, then are shed with
// a 429 and a Retry-After header, so a thundering herd degrades into
// bounded latency plus explicit backpressure instead of memory growth.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecochip/internal/serve"
	"ecochip/internal/tech"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	planCache := flag.Int("plan-cache", 0, "resident compiled plans per family (0 = default 64, negative = unbounded)")
	workers := flag.Int("workers", 0, "evaluation workers per request (0 = all CPUs)")
	streamReplicas := flag.Int("stream-replicas", 0, "loopback shard replicas per streamed front run (0 = default 2)")
	streamBlock := flag.Int("stream-block", 0, "points per streamed front block (0 = protocol default)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent requests admitted per family before shedding with 429 (0 = default 64, negative = unbounded)")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long an over-bound request may queue for a slot before shedding (0 = default 100ms)")
	flag.Parse()

	cfg := serve.Config{
		PlanCacheSize:   *planCache,
		Workers:         *workers,
		StreamReplicas:  *streamReplicas,
		StreamBlockSize: *streamBlock,
		MaxInflight:     *maxInflight,
		QueueTimeout:    *queueTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, cfg, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ecoserve:", err)
		os.Exit(1)
	}
}

// run binds addr, announces the bound address on out (and via ready,
// when non-nil), and serves until ctx is cancelled — then shuts down
// gracefully. Split from main so tests drive the full binary path
// in-process on a loopback port.
func run(ctx context.Context, addr string, cfg serve.Config, out io.Writer, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	fmt.Fprintf(out, "ecoserve listening on http://%s\n", bound)
	if ready != nil {
		ready(bound)
	}

	srv := serve.NewServer(tech.Default(), cfg)
	hs := &http.Server{Handler: serve.Handler(srv)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	case err := <-errc:
		return err
	}
}

package pkgcarbon

import (
	"math"
	"testing"

	"ecochip/internal/tech"
)

func chipletsOf(node int, areas ...float64) []Chiplet {
	n := tech.Default().MustGet(node)
	cs := make([]Chiplet, len(areas))
	for i, a := range areas {
		cs[i] = Chiplet{Name: name(i), AreaMM2: a, Node: n}
	}
	return cs
}

func name(i int) string { return string(rune('a' + i)) }

func TestParseArchitecture(t *testing.T) {
	cases := map[string]Architecture{
		"RDL": RDLFanout, "fanout": RDLFanout,
		"EMIB": SiliconBridge, "bridge": SiliconBridge,
		"passive": PassiveInterposer, "active": ActiveInterposer,
		"3D": ThreeD, "stacked": ThreeD,
	}
	for s, want := range cases {
		got, err := ParseArchitecture(s)
		if err != nil || got != want {
			t.Errorf("ParseArchitecture(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseArchitecture("wirebond"); err == nil {
		t.Error("unknown architecture should fail")
	}
}

func TestArchitectureStrings(t *testing.T) {
	for _, a := range Architectures {
		if s := a.String(); s == "" || s[0] == 'A' && len(s) > 12 {
			t.Errorf("architecture %d has suspicious name %q", int(a), s)
		}
	}
	for _, b := range []BondType{TSV, Microbump, HybridBond} {
		if b.String() == "" {
			t.Errorf("bond type %d has empty name", int(b))
		}
	}
}

func TestDefaultParamsValid(t *testing.T) {
	for _, a := range Architectures {
		p := DefaultParams(a)
		if a == ThreeD {
			// Hybrid default pitch check handled separately.
			p.Bond = Microbump
		}
		if err := p.Validate(); err != nil {
			t.Errorf("DefaultParams(%v) invalid: %v", a, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		f    func(*Params)
	}{
		{"nil node", func(p *Params) { p.PackagingNode = nil }},
		{"node too new", func(p *Params) { p.PackagingNode = tech.Default().MustGet(7) }},
		{"bad intensity", func(p *Params) { p.CarbonIntensity = 2 }},
		{"RDL layers low", func(p *Params) { p.RDLLayers = 1 }},
		{"RDL layers high", func(p *Params) { p.RDLLayers = 15 }},
		{"bridge layers", func(p *Params) { p.BridgeLayers = 7 }},
		{"bridge range", func(p *Params) { p.BridgeRangeMM = 0 }},
		{"embed energy", func(p *Params) { p.BridgeEmbedEnergyKWh = -1 }},
		{"interposer layers", func(p *Params) { p.InterposerBEOLLayers = 0 }},
		{"TSV pitch", func(p *Params) { p.Bond = TSV; p.BondPitchUM = 100 }},
		{"hybrid pitch", func(p *Params) { p.Bond = HybridBond; p.BondPitchUM = 20 }},
		{"router", func(p *Params) { p.Router.Ports = 0 }},
	}
	for _, m := range mutations {
		p := DefaultParams(RDLFanout)
		m.f(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("Validate should reject %s", m.name)
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	p := DefaultParams(RDLFanout)
	if _, err := Estimate(nil, p); err == nil {
		t.Error("empty chiplet list should fail")
	}
	if _, err := Estimate([]Chiplet{{Name: "x", AreaMM2: 0, Node: tech.Default().MustGet(7)}}, p); err == nil {
		t.Error("zero-area chiplet should fail")
	}
	if _, err := Estimate([]Chiplet{{Name: "x", AreaMM2: 100}}, p); err == nil {
		t.Error("nil chiplet node should fail")
	}
	bad := p
	bad.RDLLayers = 0
	if _, err := Estimate(chipletsOf(7, 100, 100), bad); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestRDLLinearInLayers(t *testing.T) {
	// Fig. 11(a): C_HI grows linearly with L_RDL at fixed yield... the
	// yield also compounds per layer, so growth is superlinear but
	// monotone. Verify monotone and roughly linear over Table I range.
	chips := chipletsOf(7, 250, 250)
	prev := 0.0
	for l := 3; l <= 9; l++ {
		p := DefaultParams(RDLFanout)
		p.RDLLayers = l
		res, err := Estimate(chips, p)
		if err != nil {
			t.Fatal(err)
		}
		if res.PackageKg <= prev {
			t.Errorf("C_RDL with %d layers (%g) should exceed %d layers (%g)", l, res.PackageKg, l-1, prev)
		}
		prev = res.PackageKg
	}
}

func TestBridgeCountFromOverlap(t *testing.T) {
	// Two 250 mm^2 square chiplets share a ~15.81 mm edge; with a 2 mm
	// bridge range that needs ceil(15.81/2) = 8 bridges.
	p := DefaultParams(SiliconBridge)
	res, err := Estimate(chipletsOf(7, 250, 250), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBridges != 8 {
		t.Errorf("NumBridges = %d, want 8", res.NumBridges)
	}
	// Doubling the range halves the bridge count (Fig. 11b trend).
	p.BridgeRangeMM = 4
	res2, err := Estimate(chipletsOf(7, 250, 250), p)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumBridges != 4 {
		t.Errorf("NumBridges at 4mm range = %d, want 4", res2.NumBridges)
	}
	if res2.PackageKg >= res.PackageKg {
		t.Errorf("larger bridge range should lower C_HI: %g vs %g", res2.PackageKg, res.PackageKg)
	}
}

// Fig. 9 headline shape: for a 500 mm^2 logic block in 7nm split into N_c
// chiplets, EMIB has the least C_HI at N_c=2 and RDL wins by N_c=8;
// interposer architectures sit above both.
func TestFig9Crossover(t *testing.T) {
	hi := func(arch Architecture, nc int) float64 {
		areas := make([]float64, nc)
		for i := range areas {
			areas[i] = 500 / float64(nc)
		}
		res, err := Estimate(chipletsOf(7, areas...), DefaultParams(arch))
		if err != nil {
			t.Fatalf("%v nc=%d: %v", arch, nc, err)
		}
		return res.TotalKg()
	}
	// N_c = 2: EMIB strictly cheapest among 2D architectures.
	if !(hi(SiliconBridge, 2) < hi(RDLFanout, 2)) {
		t.Errorf("EMIB at Nc=2 (%g) should beat RDL (%g)", hi(SiliconBridge, 2), hi(RDLFanout, 2))
	}
	// N_c = 8: RDL cheapest.
	if !(hi(RDLFanout, 8) < hi(SiliconBridge, 8)) {
		t.Errorf("RDL at Nc=8 (%g) should beat EMIB (%g)", hi(RDLFanout, 8), hi(SiliconBridge, 8))
	}
	// Interposers above RDL at every N_c.
	for _, nc := range []int{2, 4, 6, 8} {
		if !(hi(PassiveInterposer, nc) > hi(RDLFanout, nc)) {
			t.Errorf("passive interposer at Nc=%d should exceed RDL", nc)
		}
		if !(hi(ActiveInterposer, nc) > hi(PassiveInterposer, nc)) {
			t.Errorf("active interposer at Nc=%d should exceed passive", nc)
		}
	}
}

// Fig. 9: 3D stack C_HI falls as the same logic is split across more
// tiers (smaller footprint means fewer bonds, despite worse assembly
// yield).
func Test3DTierTrend(t *testing.T) {
	prev := math.Inf(1)
	for _, tiers := range []int{2, 3, 4} {
		areas := make([]float64, tiers)
		for i := range areas {
			areas[i] = 500 / float64(tiers)
		}
		res, err := Estimate(chipletsOf(7, areas...), DefaultParams(ThreeD))
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalKg() >= prev {
			t.Errorf("3D C_HI with %d tiers (%g) should be below %d tiers (%g)", tiers, res.TotalKg(), tiers-1, prev)
		}
		prev = res.TotalKg()
	}
}

// Fig. 11(d): larger TSV pitch means fewer TSVs and better yield, hence
// lower C_HI.
func TestTSVPitchTrend(t *testing.T) {
	prev := math.Inf(1)
	for _, pitch := range []float64{10, 20, 30, 45} {
		p := DefaultParams(ThreeD)
		p.Bond = TSV
		p.BondPitchUM = pitch
		res, err := Estimate(chipletsOf(7, 100, 100), p)
		if err != nil {
			t.Fatal(err)
		}
		if res.PackageKg >= prev {
			t.Errorf("3D C_HI at pitch %g (%g) should be below previous (%g)", pitch, res.PackageKg, prev)
		}
		prev = res.PackageKg
	}
}

// Fig. 11(c): older interposer nodes have lower EPA, hence lower C_HI.
func TestInterposerNodeTrend(t *testing.T) {
	prev := 0.0
	for _, nm := range []int{65, 40, 28, 22} {
		p := DefaultParams(ActiveInterposer)
		p.PackagingNode = tech.Default().MustGet(nm)
		res, err := Estimate(chipletsOf(7, 60, 40, 20), p)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && res.TotalKg() <= prev {
			t.Errorf("active interposer at %dnm (%g) should exceed older node (%g)", nm, res.TotalKg(), prev)
		}
		prev = res.TotalKg()
	}
}

// Passive interposers host routers in the chiplets (advanced node, small
// area); active interposers host them in the packaging node (older,
// larger). The paper notes active-interposer routing overheads exceed
// passive ones.
func TestRoutingOverheadActiveVsPassive(t *testing.T) {
	chips := chipletsOf(7, 100, 100, 100)
	pas, err := Estimate(chips, DefaultParams(PassiveInterposer))
	if err != nil {
		t.Fatal(err)
	}
	act, err := Estimate(chips, DefaultParams(ActiveInterposer))
	if err != nil {
		t.Fatal(err)
	}
	if pas.RouterAreaPerChipletMM2 <= 0 {
		t.Error("passive interposer should add router area to chiplets")
	}
	if act.RouterAreaPerChipletMM2 != 0 {
		t.Error("active interposer routers live in the interposer, not chiplets")
	}
	if act.RoutingKg <= pas.RoutingKg {
		t.Errorf("active routing carbon (%g) should exceed passive (%g): 65nm routers are larger",
			act.RoutingKg, pas.RoutingKg)
	}
	if pas.RouterTotalPowerW <= 0 || act.RouterTotalPowerW <= 0 {
		t.Error("interposer NoCs must report positive router power")
	}
}

// PHY overheads for RDL/EMIB must be small compared to interposer
// routing ("small additional areas when compared to the chiplets").
func TestPHYOverheadSmall(t *testing.T) {
	chips := chipletsOf(7, 200, 200)
	rdl, err := Estimate(chips, DefaultParams(RDLFanout))
	if err != nil {
		t.Fatal(err)
	}
	if rdl.RoutingKg <= 0 {
		t.Error("RDL should carry a PHY routing term")
	}
	if rdl.RoutingKg > 0.2*rdl.PackageKg {
		t.Errorf("PHY carbon (%g) should be small vs package carbon (%g)", rdl.RoutingKg, rdl.PackageKg)
	}
	if rdl.RouterTotalPowerW != 0 {
		t.Error("RDL PHY power is folded into system power, not reported as router power")
	}
}

func TestAssemblyYieldInRange(t *testing.T) {
	for _, arch := range Architectures {
		res, err := Estimate(chipletsOf(7, 120, 80, 60), DefaultParams(arch))
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if res.AssemblyYield <= 0 || res.AssemblyYield > 1 {
			t.Errorf("%v: assembly yield %g outside (0, 1]", arch, res.AssemblyYield)
		}
		if res.TotalKg() <= 0 {
			t.Errorf("%v: total C_HI %g should be positive", arch, res.TotalKg())
		}
	}
}

// 2.5D interposers carry escape TSVs to the substrate (Fig. 4c).
func TestInterposerHasEscapeTSVs(t *testing.T) {
	for _, arch := range []Architecture{PassiveInterposer, ActiveInterposer} {
		res, err := Estimate(chipletsOf(7, 100, 80), DefaultParams(arch))
		if err != nil {
			t.Fatal(err)
		}
		if res.NumBonds <= 0 {
			t.Errorf("%v: interposer should report escape TSVs", arch)
		}
		// TSV count follows the package area at the escape pitch.
		pitchMM := 45.0 / 1000
		want := res.PackageAreaMM2 / (pitchMM * pitchMM)
		if res.NumBonds != want {
			t.Errorf("%v: TSVs = %g, want %g", arch, res.NumBonds, want)
		}
	}
	// RDL and EMIB have no TSVs.
	res, err := Estimate(chipletsOf(7, 100, 80), DefaultParams(RDLFanout))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBonds != 0 {
		t.Error("RDL fanout should not report TSVs")
	}
}

func Test3DFootprintIsMaxTier(t *testing.T) {
	res, err := Estimate(chipletsOf(7, 120, 80, 60), DefaultParams(ThreeD))
	if err != nil {
		t.Fatal(err)
	}
	if res.PackageAreaMM2 != 120 {
		t.Errorf("3D footprint = %g, want 120 (largest tier)", res.PackageAreaMM2)
	}
	if res.Floorplan != nil {
		t.Error("3D stacks do not carry a 2D floorplan")
	}
	if res.NumBonds <= 0 {
		t.Error("3D stack must report bond count")
	}
}

func TestHybridBondsCheaperThanBumps(t *testing.T) {
	chips := chipletsOf(7, 100, 100)
	bump := DefaultParams(ThreeD)
	hybrid := DefaultParams(ThreeD)
	hybrid.Bond = HybridBond
	hybrid.BondPitchUM = 5
	rb, err := Estimate(chips, bump)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Estimate(chips, hybrid)
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid bonds are ~50x denser but ~40x cheaper per bond; the
	// denser grid should still cost more carbon in total than bumps
	// at minimum pitch.
	if rh.NumBonds <= rb.NumBonds {
		t.Error("hybrid bonding should yield more bonds at finer pitch")
	}
	if rh.TotalKg() <= 0 {
		t.Error("hybrid bond carbon must be positive")
	}
}

func TestEnergyPerBondOverride(t *testing.T) {
	p := DefaultParams(ThreeD)
	p.EnergyPerBondKWh = 10 * EnergyPerBumpKWh
	base, err := Estimate(chipletsOf(7, 100, 100), DefaultParams(ThreeD))
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := Estimate(chipletsOf(7, 100, 100), p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(boosted.PackageKg/base.PackageKg-10) > 1e-9 {
		t.Errorf("energy override should scale package carbon 10x, got %g", boosted.PackageKg/base.PackageKg)
	}
}

// Flexible floorplanning can only shrink the package, hence the RDL
// carbon.
func TestFlexibleFloorplanHelps(t *testing.T) {
	chips := chipletsOf(7, 400, 50, 30)
	fixed, err := Estimate(chips, DefaultParams(RDLFanout))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams(RDLFanout)
	p.FlexibleFloorplan = true
	flex, err := Estimate(chips, p)
	if err != nil {
		t.Fatal(err)
	}
	if flex.PackageAreaMM2 > fixed.PackageAreaMM2+1e-9 {
		t.Errorf("flexible package area %.1f should not exceed fixed %.1f",
			flex.PackageAreaMM2, fixed.PackageAreaMM2)
	}
	if flex.PackageKg > fixed.PackageKg+1e-9 {
		t.Errorf("flexible package carbon %.3f should not exceed fixed %.3f",
			flex.PackageKg, fixed.PackageKg)
	}
}

func TestWhitespaceReported(t *testing.T) {
	res, err := Estimate(chipletsOf(7, 100, 80, 60), DefaultParams(RDLFanout))
	if err != nil {
		t.Fatal(err)
	}
	if res.WhitespaceMM2 <= 0 {
		t.Error("multi-chiplet package must carry whitespace")
	}
	if res.PackageAreaMM2 <= 240 {
		t.Errorf("package area %g should exceed total chiplet area 240", res.PackageAreaMM2)
	}
}

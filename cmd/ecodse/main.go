// Command ecodse runs the Section VI design-space-exploration workflows
// on a JSON design directory:
//
//	ecodse --design_dir testcases/GA102 --mode sweep    # node sweep + Pareto front
//	ecodse --design_dir testcases/GA102 --mode tornado  # sensitivity analysis
//	ecodse --design_dir testcases/GA102 --mode group    # block-grouping optimizer
//	ecodse --design_dir testcases/GA102 --mode mc       # Monte Carlo uncertainty
//
// The sweep mode needs a node_list.txt in the design directory. Sweeps
// run on a compiled plan (precomputed die tables + Gray-code walk), the
// tornado/mc analyses run on a compiled parameter plan (base point
// tabulated once, perturbations recomputing only their dirty
// sub-models), and the group mode runs the greedy disaggregation search
// on step-spanning retained state (memoized merged-die cells, pooled
// scratches, floorplan forks against each step's pinned base), unless
// -uncompiled forces the per-evaluation reference path. -cpuprofile /
// -memprofile write pprof profiles of the run, and -progress reports
// compiled-plan or memo-cache statistics after the result.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ecochip/internal/config"
	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/engine"
	"ecochip/internal/explore"
	"ecochip/internal/kernel"
	"ecochip/internal/report"
	"ecochip/internal/sensitivity"
	"ecochip/internal/shard"
	"ecochip/internal/shard/netx"
	"ecochip/internal/tech"
	"ecochip/internal/uncertainty"
)

func main() {
	designDir := flag.String("design_dir", "", "directory with architecture.json etc. (required)")
	mode := flag.String("mode", "sweep", "sweep | tornado | group | mc")
	rel := flag.Float64("rel", 0.25, "tornado: relative perturbation")
	samples := flag.Int("samples", 500, "mc: Monte Carlo sample count")
	seed := flag.Int64("seed", 2024, "mc: random seed")
	parallel := flag.Int("parallel", 0, "evaluation workers (0 = all CPUs, 1 = serial)")
	progress := flag.Bool("progress", false, "print sweep progress and evaluation statistics to stderr")
	uncompiled := flag.Bool("uncompiled", false, "sweep/tornado/mc/group: force the per-evaluation reference path instead of the compiled plan")
	shardReplicas := flag.Int("shard-replicas", 0, "sweep: run the compiled plan through N loopback shard replicas under the lease protocol (0 = in-process engine)")
	shardFaults := flag.String("shard-faults", "", "sweep: fault schedule injected into every shard replica, e.g. drop=0.1,dup=0.05,err=0.05,crash-after=7,delay=2ms,seed=42")
	shardConnect := flag.String("shard-connect", "", "sweep: comma-separated ecoreplica addresses (host:port,...) to shard the compiled plan across over TCP")
	shardPipeline := flag.Int("shard-pipeline", 1, "sweep: leases kept in flight per -shard-connect replica connection")
	authToken := flag.String("auth-token", "", "sweep: shared secret presented to -shard-connect replicas at registration")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if *designDir == "" {
		fmt.Fprintln(os.Stderr, "usage: ecodse --design_dir <dir> --mode sweep|tornado|group|mc")
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecodse:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ecodse:", err)
			os.Exit(1)
		}
	}

	cfg := runConfig{
		mode:       *mode,
		rel:        *rel,
		samples:    *samples,
		seed:       *seed,
		workers:    *parallel,
		progress:   *progress,
		uncompiled: *uncompiled,

		shardReplicas: *shardReplicas,
		shardFaults:   *shardFaults,
		shardConnect:  *shardConnect,
		shardPipeline: *shardPipeline,
		authToken:     *authToken,
	}
	err := run(*designDir, cfg, os.Stdout, os.Stderr)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if perr := writeHeapProfile(*memprofile); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecodse:", err)
		os.Exit(1)
	}
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	return pprof.WriteHeapProfile(f)
}

// runConfig bundles the CLI knobs of one invocation.
type runConfig struct {
	mode       string
	rel        float64
	samples    int
	seed       int64
	workers    int
	progress   bool
	uncompiled bool

	// shardReplicas > 0 routes the sweep through the fault-tolerant
	// shard coordinator over that many loopback replicas; shardFaults
	// optionally injects a seeded fault schedule into each of them.
	shardReplicas int
	shardFaults   string
	// shardConnect routes the sweep over TCP to remote ecoreplica
	// daemons instead; shardPipeline is the number of lease slots per
	// connection (in-flight leases multiplexed over one socket).
	shardConnect  string
	shardPipeline int
	// authToken is the shared secret -shard-connect replicas require at
	// registration (ecoreplica -auth-token).
	authToken string
}

func run(designDir string, cfg runConfig, w, statsW io.Writer) error {
	db := tech.Default()
	system, nodes, err := config.LoadSystem(designDir, db)
	if err != nil {
		return err
	}

	// The cache is created here (not inside the engine) so its hit
	// statistics can be reported after the run.
	cache := engine.NewCache()
	opts := []engine.Option{engine.WithWorkers(cfg.workers), engine.WithCache(cache)}
	if cfg.progress {
		opts = append(opts, engine.WithProgress(func(done, total int) {
			if done%1000 == 0 || done == total {
				fmt.Fprintf(statsW, "\r%d/%d points", done, total)
				if done == total {
					fmt.Fprintln(statsW)
				}
			}
		}))
	}

	ctx := context.Background()
	switch cfg.mode {
	case "sweep":
		return runSweep(ctx, w, statsW, system, db, nodes, cfg, cache, opts)
	case "tornado":
		return runTornado(ctx, w, statsW, system, db, cfg, cache, opts)
	case "mc":
		return runMC(ctx, w, statsW, system, db, cfg, cache, opts)
	case "group":
		return runGroup(ctx, w, statsW, system, db, cfg, opts)
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
}

func runSweep(ctx context.Context, w, statsW io.Writer, system *core.System, db *tech.DB, nodes []int, cfg runConfig, cache *engine.Cache, opts []engine.Option) error {
	if len(nodes) == 0 {
		return fmt.Errorf("sweep mode needs node_list.txt in the design directory")
	}
	cp := cost.DefaultParams()

	var points []explore.Point
	var plan *explore.CompiledPlan
	var co *shard.Coordinator
	var err error
	switch {
	case cfg.shardConnect != "":
		if cfg.uncompiled {
			return fmt.Errorf("-shard-connect runs the compiled plan; drop -uncompiled")
		}
		if cfg.shardReplicas > 0 {
			return fmt.Errorf("-shard-connect and -shard-replicas are mutually exclusive")
		}
		if cfg.shardFaults != "" {
			return fmt.Errorf("-shard-faults injects loopback faults; it does not apply to -shard-connect")
		}
		points, plan, co, err = runConnectedSweep(ctx, statsW, system, db, nodes, cp, cfg)
	case cfg.shardReplicas > 0:
		if cfg.uncompiled {
			return fmt.Errorf("-shard-replicas runs the compiled plan; drop -uncompiled")
		}
		points, plan, co, err = runShardedSweep(ctx, statsW, system, db, nodes, cp, cfg)
	case cfg.uncompiled:
		points, err = explore.NodeSweepReference(ctx, system, db, nodes, cp, opts...)
	default:
		points, plan, err = explore.NodeSweepPlanned(ctx, system, db, nodes, cp, opts...)
	}
	if err != nil {
		return err
	}

	front := explore.ParetoFront(points, explore.ByEmbodied, explore.ByCost)
	t := report.New(fmt.Sprintf("carbon-cost Pareto front (%d of %d candidates)", len(front), len(points)), "",
		"nodes", "cemb_kg", "ctot_kg", "cost_usd", "area_mm2")
	for _, p := range front {
		t.AddRow(p.Label(), report.F(p.EmbodiedKg), report.F(p.TotalKg), report.F(p.CostUSD), report.F(p.PackageAreaMM2))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	if cfg.progress {
		if plan != nil {
			s := plan.Stats()
			fmt.Fprintf(statsW, "compiled plan: %d points from %d table cells, %d gray steps, %d block inits\n",
				s.Points, s.TableCells, s.GraySteps, s.BlockInits)
			fmt.Fprintf(statsW, "table layout: %d B resident as columns (%d B as struct rows), %d column folds\n",
				s.TableSoABytes, s.TableAoSBytes, s.ColumnFolds)
			fmt.Fprintf(statsW, "point memo: %d hits, %d misses (%d collision recomputes), %d fills, %d forced evictions\n",
				s.PkgMemo.Hits, s.PkgMemo.Misses, s.PkgMemo.Collisions, s.PkgMemo.Fills, s.PkgMemo.Evictions)
			if fp := s.Floorplan; fp.Plans() > 0 {
				fmt.Fprintln(statsW, fp)
			}
			if co != nil {
				fmt.Fprintln(statsW, co.Stats())
			}
		} else {
			printCacheStats(statsW, cache)
		}
	}
	return nil
}

// runShardedSweep routes the compiled sweep through the fault-tolerant
// shard coordinator: the sweep is registered in an in-process catalog
// under its content key, cfg.shardReplicas loopback replicas compile it
// from that key and execute leased block ranges (each wrapped in the
// -shard-faults schedule, re-seeded per replica), and the coordinator
// reassembles the exact mixed-radix point order.
func runShardedSweep(ctx context.Context, statsW io.Writer, system *core.System, db *tech.DB, nodes []int, cp cost.Params, cfg runConfig) ([]explore.Point, *explore.CompiledPlan, *shard.Coordinator, error) {
	spec, err := shard.ParseFaultSpec(cfg.shardFaults)
	if err != nil {
		return nil, nil, nil, err
	}
	cat := shard.NewCatalog()
	key, err := cat.RegisterSweep(system, db, nodes, cp)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, err := cat.Plan(key)
	if err != nil {
		return nil, nil, nil, err
	}
	transports := make([]shard.Transport, cfg.shardReplicas)
	for i := range transports {
		var t shard.Transport = shard.NewReplica(cat)
		if cfg.shardFaults != "" {
			s := spec
			s.Seed += int64(i)
			t = shard.Fault(t, s)
		}
		transports[i] = t
	}
	sc := shard.Config{Seed: cfg.seed}
	if statsW != nil {
		sc.Logf = func(format string, args ...any) { fmt.Fprintf(statsW, format+"\n", args...) }
	}
	co := shard.NewCoordinator(plan, key, transports, sc)
	points, err := co.Sweep(ctx)
	return points, plan, co, err
}

// runConnectedSweep shards the compiled sweep across remote ecoreplica
// daemons over TCP: the sweep registers in a local catalog (the
// fallback path and the plan the points reassemble into) and in a
// netx registry whose content each connection ships once, replicas
// re-derive the content key from their own tech db, and leased block
// ranges stream back as binary frames. shardPipeline > 1 hands each
// client to the coordinator that many times, keeping that many leases
// in flight per socket.
func runConnectedSweep(ctx context.Context, statsW io.Writer, system *core.System, db *tech.DB, nodes []int, cp cost.Params, cfg runConfig) ([]explore.Point, *explore.CompiledPlan, *shard.Coordinator, error) {
	addrs := strings.Split(cfg.shardConnect, ",")
	pipeline := cfg.shardPipeline
	if pipeline < 1 {
		pipeline = 1
	}
	cat := shard.NewCatalog()
	key, err := cat.RegisterSweep(system, db, nodes, cp)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, err := cat.Plan(key)
	if err != nil {
		return nil, nil, nil, err
	}
	reg := netx.NewRegistry()
	if _, err := reg.AddSweep(system, db, nodes, cp); err != nil {
		return nil, nil, nil, err
	}
	var transports []shard.Transport
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		cl := netx.DialTransport(addr, reg, netx.Options{AuthToken: cfg.authToken})
		defer cl.Close()
		for i := 0; i < pipeline; i++ {
			transports = append(transports, cl)
		}
	}
	if len(transports) == 0 {
		return nil, nil, nil, fmt.Errorf("-shard-connect: no replica addresses in %q", cfg.shardConnect)
	}
	sc := shard.Config{Seed: cfg.seed}
	if statsW != nil {
		sc.Logf = func(format string, args ...any) { fmt.Fprintf(statsW, format+"\n", args...) }
	}
	co := shard.NewCoordinator(plan, key, transports, sc)
	points, err := co.Sweep(ctx)
	return points, plan, co, err
}

func printCacheStats(w io.Writer, cache *engine.Cache) {
	s := cache.Stats()
	fmt.Fprintf(w, "memo cache: %d die hits / %d misses, %d design hits / %d misses (%.1f%% hit rate)\n",
		s.DieHits, s.DieMisses, s.DesignHits, s.DesignMisses, 100*s.HitRate())
}

func printParamStats(w io.Writer, plan *kernel.ParamPlan) {
	fmt.Fprintln(w, plan.Stats())
}

func runTornado(ctx context.Context, w, statsW io.Writer, system *core.System, db *tech.DB, cfg runConfig, cache *engine.Cache, opts []engine.Option) error {
	var results []sensitivity.Result
	var plan *kernel.ParamPlan
	var err error
	if cfg.uncompiled {
		results, err = sensitivity.TornadoReference(ctx, system, db, cfg.rel, opts...)
	} else {
		results, plan, err = sensitivity.TornadoPlanned(ctx, system, db, cfg.rel, opts...)
	}
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("sensitivity tornado (+/-%.0f%%)", cfg.rel*100), "",
		"factor", "low_kg", "base_kg", "high_kg", "swing_kg")
	for _, r := range results {
		t.AddRow(r.Factor, report.F(r.LowKg), report.F(r.BaseKg), report.F(r.HighKg), report.F(r.Swing()))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	if cfg.progress {
		if plan != nil {
			printParamStats(statsW, plan)
		} else {
			printCacheStats(statsW, cache)
		}
	}
	return nil
}

func runGroup(ctx context.Context, w, statsW io.Writer, system *core.System, db *tech.DB, cfg runConfig, opts []engine.Option) error {
	var plan *explore.Plan
	var err error
	if cfg.uncompiled {
		plan, err = explore.DisaggregateReference(ctx, system, db)
	} else {
		plan, err = explore.DisaggregateCtx(ctx, system, db, opts...)
	}
	if err != nil {
		return err
	}
	t := report.New("block grouping plan", "", "group", "blocks")
	for i, g := range plan.Groups {
		t.AddRow(fmt.Sprintf("chiplet%d", i), fmt.Sprint(g))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "embodied carbon: %.2f kg (from %.2f kg, %d merges)\n",
		plan.EmbodiedKg, plan.InitialKg, plan.Steps); err != nil {
		return err
	}
	if cfg.progress {
		if cfg.uncompiled {
			// The reference search evaluates every candidate directly —
			// no memo cache, no compiled plan — so there are no
			// statistics to report (and printing the run cache's zeros
			// would suggest it was active).
			fmt.Fprintln(statsW, "reference path: evaluate-per-candidate, no plan statistics")
		} else {
			fmt.Fprintln(statsW, plan.Stats)
		}
	}
	return nil
}

func runMC(ctx context.Context, w, statsW io.Writer, system *core.System, db *tech.DB, cfg runConfig, cache *engine.Cache, opts []engine.Option) error {
	var d uncertainty.Distribution
	var plan *kernel.ParamPlan
	var err error
	if cfg.uncompiled {
		d, err = uncertainty.RunReference(ctx, system, db, uncertainty.DefaultSpread(), cfg.samples, cfg.seed, opts...)
	} else {
		d, plan, err = uncertainty.RunPlanned(ctx, system, db, uncertainty.DefaultSpread(), cfg.samples, cfg.seed, opts...)
	}
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("embodied-carbon uncertainty (%d samples, seed %d)", cfg.samples, cfg.seed), "",
		"p5_kg", "p50_kg", "mean_kg", "p95_kg", "relative_spread")
	t.AddRow(report.F(d.P5Kg), report.F(d.P50Kg), report.F(d.MeanKg), report.F(d.P95Kg), report.F(d.RelativeSpread()))
	if err := t.Fprint(w); err != nil {
		return err
	}
	if cfg.progress {
		if plan != nil {
			printParamStats(statsW, plan)
		} else {
			printCacheStats(statsW, cache)
		}
	}
	return nil
}

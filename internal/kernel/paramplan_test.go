package kernel

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"ecochip/internal/core"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func db() *tech.DB { return tech.Default() }

// A clean Eval (empty dirty set) must re-derive the base point from the
// tabulation with the exact float bits of a direct evaluation, across
// random systems covering monolith and every packaging archetype.
func TestParamPlanBaseEvalBitIdentical(t *testing.T) {
	d := db()
	rng := rand.New(rand.NewSource(7))
	evaluated := 0
	for trial := 0; trial < 25; trial++ {
		base := testcases.Random(rng, d)
		rep, refErr := base.Evaluate(d)
		plan, err := CompileParams(base, d)
		if refErr != nil {
			if err == nil {
				// Compile tabulates the base evaluation, so it must
				// surface the same failures.
				t.Fatalf("trial %d: Evaluate failed (%v) but CompileParams succeeded", trial, refErr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: CompileParams: %v", trial, err)
		}
		sc, err := plan.NewScratch()
		if err != nil {
			t.Fatal(err)
		}
		tot, err := plan.Eval(sc, base, d, 0)
		if err != nil {
			t.Fatalf("trial %d: Eval: %v", trial, err)
		}
		if math.Float64bits(tot.EmbodiedKg()) != math.Float64bits(rep.EmbodiedKg()) ||
			math.Float64bits(tot.TotalKg()) != math.Float64bits(rep.TotalKg()) ||
			math.Float64bits(tot.MfgKg) != math.Float64bits(rep.MfgKg) ||
			math.Float64bits(tot.DesignKg) != math.Float64bits(rep.DesignKg) ||
			math.Float64bits(tot.HIKg) != math.Float64bits(rep.HIKg) ||
			math.Float64bits(tot.NREKg) != math.Float64bits(rep.NREKg) ||
			math.Float64bits(tot.OperationalKg) != math.Float64bits(rep.OperationalKg) {
			t.Fatalf("trial %d (%d chiplets, arch %v): base totals differ\nreport %+v\ntotals %+v",
				trial, len(base.Chiplets), base.Packaging.Arch, rep, tot)
		}
		evaluated++
	}
	if evaluated < 15 {
		t.Fatalf("only %d of 25 random trials evaluated cleanly", evaluated)
	}
}

// The dirty set controls exactly which sub-models recompute: a clean
// eval serves everything from the table, a node-dirty eval re-runs die
// manufacturing and refreshes routing but never re-floorplans, and a
// packaging-dirty eval runs the full package model.
func TestParamPlanStatsTrackDirtySets(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := CompileParams(base, d)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := plan.NewScratch()
	if err != nil {
		t.Fatal(err)
	}
	nc := uint64(len(base.Chiplets))

	if _, err := plan.Eval(sc, base, d, 0); err != nil {
		t.Fatal(err)
	}
	s := plan.Stats()
	if s.Evals != 1 || s.DieRecomputes != 0 || s.DesignRecomputes != 0 || s.PackageEstimates != 0 || s.RoutingRefreshes != 0 {
		t.Fatalf("clean eval should be all table hits: %+v", s)
	}
	if s.DieTableHits != nc {
		t.Fatalf("clean eval made %d die table hits, want %d", s.DieTableHits, nc)
	}

	dirtyDB, err := d.Clone(func(n *tech.Node) { n.DefectDensity = tech.Clamp(n.DefectDensity*1.1, 0.07, 0.3) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Eval(sc, base, dirtyDB, DirtyNodes); err != nil {
		t.Fatal(err)
	}
	s = plan.Stats()
	if s.DieRecomputes != nc || s.RoutingRefreshes != 1 || s.PackageEstimates != 0 {
		t.Fatalf("node-dirty eval should recompute %d dies and refresh routing without a package estimate: %+v", nc, s)
	}
	if s.DesignRecomputes != 0 {
		t.Fatalf("node-dirty eval must not recompute design carbon: %+v", s)
	}

	pkgSys := *base
	pkgSys.Packaging.CarbonIntensity = 0.5
	if _, err := plan.Eval(sc, &pkgSys, d, DirtyPackaging); err != nil {
		t.Fatal(err)
	}
	if s = plan.Stats(); s.FloorplanReuses != 1 || s.PackageEstimates != 0 {
		t.Fatalf("packaging-dirty eval with untouched geometry should reuse the base floorplan: %+v", s)
	}

	// A packaging perturbation that moves a floorplan-shaping input
	// cannot reuse the base geometry: it must re-floorplan fully.
	spacingSys := *base
	spacingSys.Packaging.SpacingMM = 0.8
	if _, err := plan.Eval(sc, &spacingSys, d, DirtyPackaging); err != nil {
		t.Fatal(err)
	}
	if s = plan.Stats(); s.PackageEstimates != 1 || s.FloorplanReuses != 1 {
		t.Fatalf("geometry-dirty eval should run one full package estimate: %+v", s)
	}

	// An area-dirty eval recomputes every per-chiplet sub-model and the
	// whole package estimate.
	areaSys := *base
	chiplets := make([]core.Chiplet, len(base.Chiplets))
	copy(chiplets, base.Chiplets)
	chiplets[0].Transistors *= 1.25
	areaSys.Chiplets = chiplets
	before := plan.Stats()
	if _, err := plan.Eval(sc, &areaSys, d, DirtyAreas); err != nil {
		t.Fatal(err)
	}
	s = plan.Stats()
	if s.PackageEstimates != before.PackageEstimates+1 {
		t.Fatalf("area-dirty eval should run a full package estimate: %+v", s)
	}
	if s.DieRecomputes != before.DieRecomputes+nc || s.DesignRecomputes <= before.DesignRecomputes {
		t.Fatalf("area-dirty eval should recompute per-chiplet sub-models: %+v", s)
	}
}

// A DirtyAreas evaluation must carry the exact float bits of the direct
// evaluation of the perturbed system — areas move the floorplan, the
// package carbon, die manufacturing and design carbon all at once.
func TestParamPlanDirtyAreasParity(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := CompileParams(base, d)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := plan.NewScratch()
	if err != nil {
		t.Fatal(err)
	}
	for _, scale := range []float64{0.5, 0.9, 1.1, 2.0, 10.0} {
		s := *base
		chiplets := make([]core.Chiplet, len(base.Chiplets))
		copy(chiplets, base.Chiplets)
		for i := range chiplets {
			chiplets[i].Transistors *= scale
		}
		s.Chiplets = chiplets
		rep, err := s.Evaluate(d)
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		tot, err := plan.Eval(sc, &s, d, DirtyAreas)
		if err != nil {
			t.Fatalf("scale %g: Eval: %v", scale, err)
		}
		if math.Float64bits(tot.EmbodiedKg()) != math.Float64bits(rep.EmbodiedKg()) ||
			math.Float64bits(tot.TotalKg()) != math.Float64bits(rep.TotalKg()) {
			t.Fatalf("scale %g: area-dirty eval diverges from direct evaluation:\nreport %+v\ntotals %+v", scale, rep, tot)
		}
	}
}

// A geometry-moving packaging perturbation (spacing) must also match the
// direct evaluation bit for bit through the re-floorplan path.
func TestParamPlanGeometryDirtyParity(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := CompileParams(base, d)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := plan.NewScratch()
	if err != nil {
		t.Fatal(err)
	}
	for _, spacing := range []float64{0.1, 0.3, 0.8, 1.0} {
		s := *base
		s.Packaging.SpacingMM = spacing
		rep, err := s.Evaluate(d)
		if err != nil {
			t.Fatalf("spacing %g: %v", spacing, err)
		}
		tot, err := plan.Eval(sc, &s, d, DirtyPackaging)
		if err != nil {
			t.Fatalf("spacing %g: Eval: %v", spacing, err)
		}
		if math.Float64bits(tot.EmbodiedKg()) != math.Float64bits(rep.EmbodiedKg()) ||
			math.Float64bits(tot.TotalKg()) != math.Float64bits(rep.TotalKg()) {
			t.Fatalf("spacing %g: geometry-dirty eval diverges:\nreport %+v\ntotals %+v", spacing, rep, tot)
		}
	}
}

// PerturbNodes must hand back base-valued nodes on every call, so a
// sample's perturbation can never leak into the next sample's draw.
func TestScratchPerturbNodesResets(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := CompileParams(base, d)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := plan.NewScratch()
	if err != nil {
		t.Fatal(err)
	}
	want := d.MustGet(7).DefectDensity
	first := sc.PerturbNodes(func(n *tech.Node) { n.DefectDensity = 0.3 })
	if got := first.MustGet(7).DefectDensity; got != 0.3 {
		t.Fatalf("mutation not applied: %g", got)
	}
	second := sc.PerturbNodes(func(n *tech.Node) { n.DefectDensity = n.DefectDensity * 1.0 })
	if got := second.MustGet(7).DefectDensity; got != want {
		t.Fatalf("sandbox did not reset: %g, want %g", got, want)
	}
	if d.MustGet(7).DefectDensity != want {
		t.Fatal("sandbox perturbation leaked into the source database")
	}
}

// Walk must hand every point the exact Totals a direct Eval on the same
// perturbation produces, in point order, and surface apply errors.
func TestParamPlanWalkMatchesEval(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	plan, err := CompileParams(base, d)
	if err != nil {
		t.Fatal(err)
	}
	scales := []float64{0.5, 0.8, 1.0, 1.25, 2.0}
	perturb := func(scale float64) *core.System {
		s := *base
		s.Mfg.CarbonIntensity = tech.Clamp(base.Mfg.CarbonIntensity*scale, 0.030, 0.700)
		return &s
	}
	got, err := plan.Walk(context.Background(), len(scales),
		func(k int, _ *Scratch) (*core.System, *tech.DB, Dirty, error) {
			return perturb(scales[k]), d, DirtyMfg, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := plan.NewScratch()
	if err != nil {
		t.Fatal(err)
	}
	for k, scale := range scales {
		want, err := plan.Eval(sc, perturb(scale), d, DirtyMfg)
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		if math.Float64bits(got[k].TotalKg()) != math.Float64bits(want.TotalKg()) ||
			math.Float64bits(got[k].EmbodiedKg()) != math.Float64bits(want.EmbodiedKg()) {
			t.Fatalf("scale %g: Walk totals diverge from Eval:\nwalk %+v\neval %+v", scale, got[k], want)
		}
	}

	wantErr := errors.New("bad point")
	if _, err := plan.Walk(context.Background(), 3,
		func(k int, _ *Scratch) (*core.System, *tech.DB, Dirty, error) {
			if k == 1 {
				return nil, nil, 0, wantErr
			}
			return base, d, 0, nil
		}); !errors.Is(err, wantErr) {
		t.Fatalf("Walk swallowed the apply error: %v", err)
	}
}

// DirtyOperation must invalidate the operational-term memo: a caller
// that mutates one Spec in place between evaluations (pointer identity
// unchanged) must not be served the previous spec's result.
func TestDirtyOperationDropsInPlaceSpecMemo(t *testing.T) {
	d := db()
	base := testcases.GA102(d, 7, 14, 10, false)
	if base.Operation == nil {
		t.Fatal("testcase lost its operating spec")
	}
	plan, err := CompileParams(base, d)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := plan.NewScratch()
	if err != nil {
		t.Fatal(err)
	}
	first, err := plan.Eval(sc, base, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	base.Operation.LifetimeYears *= 2
	defer func() { base.Operation.LifetimeYears /= 2 }()
	second, err := plan.Eval(sc, base, d, DirtyOperation)
	if err != nil {
		t.Fatal(err)
	}
	if second.OperationalKg == first.OperationalKg {
		t.Fatalf("in-place spec mutation served from the memo: %g both times", first.OperationalKg)
	}
	if want := 2 * first.OperationalKg; second.OperationalKg != want {
		t.Fatalf("doubled lifetime: OperationalKg = %g, want %g", second.OperationalKg, want)
	}
}

// Command ecoreplica is the shard replica daemon: a stateless worker
// that executes leased block ranges of compiled sweeps for remote
// coordinators (ecodse -shard-connect) over the binary frame protocol.
//
//	ecoreplica -listen :9444
//
// Coordinators ship each sweep's content (system, node list, cost
// parameters) once per connection; the replica compiles the plan
// locally against its own tech database and echoes the derived content
// key, so a coordinator/replica database skew surfaces as a typed key
// mismatch instead of silently divergent results. Compiled plans stay
// resident in a catalog bounded by -plans (LRU eviction; evicted plans
// recompile on the next lease).
//
// SIGINT/SIGTERM shut the daemon down gracefully: it stops accepting,
// refuses new leases, answers liveness pings with the draining flag,
// finishes streaming the in-flight ones (bounded by -drain /
// -drain-timeout, abandoned leases logged), and exits. -auth-token
// sets a shared secret every coordinator must present at registration.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ecochip/internal/shard"
	"ecochip/internal/shard/netx"
	"ecochip/internal/tech"
)

func main() {
	addr := flag.String("listen", "127.0.0.1:9444", "listen address (host:port; port 0 picks a free port)")
	plans := flag.Int("plans", 0, "resident compiled plans (0 = unbounded, else LRU-evicted)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight leases")
	flag.DurationVar(drain, "drain-timeout", *drain, "alias for -drain")
	token := flag.String("auth-token", "", "shared secret coordinators must present to register (empty = no auth)")
	verbose := flag.Bool("verbose", false, "log transport events to stderr")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *plans, *drain, *token, *verbose, os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ecoreplica:", err)
		os.Exit(1)
	}
}

// run is the testable core of main: serve until ctx is cancelled, then
// drain and return. ready, when non-nil, receives the bound address
// once listening (port 0 resolution for tests).
func run(ctx context.Context, addr string, plans int, drain time.Duration, token string, verbose bool, out io.Writer, ready func(addr string)) error {
	opts := netx.Options{DrainTimeout: drain, AuthToken: token}
	if verbose {
		opts.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	} else {
		// Abandoned leases are operator-actionable (work was lost at
		// shutdown), so they surface even without -verbose.
		opts.Logf = func(format string, args ...any) {
			if strings.Contains(format, "abandoning lease") {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			}
		}
	}
	cat := shard.NewCatalogCap(plans)
	announce := func(bound string) {
		fmt.Fprintf(out, "ecoreplica listening on %s\n", bound)
		if ready != nil {
			ready(bound)
		}
	}
	if err := netx.ListenAndServe(ctx, addr, cat, tech.Default(), opts, announce); err != nil {
		return err
	}
	fmt.Fprintln(out, "ecoreplica: drained, exiting")
	return nil
}

package floorplan

import (
	"fmt"
	"math/rand"
	"testing"
)

// One retained FlexTree fed arbitrary area walks must stay bit-identical
// to the from-scratch PlanFlexible, whatever mix of rebuilds and
// dirty-path recomputes it takes — including the Pareto-set pruning,
// whose tie resolution the retained path must reproduce exactly.
func TestFlexTreePlanMatchesPlanFlexible(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	var ft FlexTree
	for trial := 0; trial < 200; trial++ {
		var blocks []Block
		if trial%4 == 0 {
			blocks = randBlocks(rng)
			// A mix of fixed and flexible aspects: flexible blocks carry
			// the shape curve, fixed ones a single realization.
			for i := range blocks {
				if rng.Intn(2) == 0 {
					blocks[i].AspectRatio = 0
				}
			}
		} else {
			blocks = append([]Block(nil), ft.blocks...)
			for i := range blocks {
				if rng.Intn(2) == 0 {
					blocks[i].AreaMM2 = 1 + rng.Float64()*200
				}
			}
			// Force exact area ties now and then: the stable sort and the
			// prune epsilon must resolve them identically on both paths.
			if len(blocks) > 1 && rng.Intn(3) == 0 {
				blocks[0].AreaMM2 = blocks[1].AreaMM2
			}
		}
		want, err := PlanFlexible(blocks, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ft.Plan(blocks, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, fmt.Sprintf("trial %d", trial), want, got)
	}
	s := ft.Stats()
	if s.FastPath == 0 {
		t.Errorf("randomized flexible sequence never took the fast path: %+v", s)
	}
	if s.Rebuilds == 0 {
		t.Errorf("randomized flexible sequence never rebuilt: %+v", s)
	}
}

// Update must match PlanFlexible after every single-area step of a
// random walk, including adversarial steps that flip the sorted order
// or a partition decision (the fallback path).
func TestFlexTreeUpdateMatchesPlanFlexible(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 10; round++ {
		n := 1 + rng.Intn(6)
		blocks := make([]Block, n)
		for i := range blocks {
			blocks[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: 1 + rng.Float64()*300}
			if rng.Intn(3) == 0 {
				blocks[i].AspectRatio = 0.5 + rng.Float64()
			}
		}
		var ft FlexTree
		if _, err := ft.Plan(blocks, 0.5, nil); err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 40; step++ {
			idx := rng.Intn(n)
			switch rng.Intn(4) {
			case 0:
				blocks[idx].AreaMM2 = 1 + rng.Float64()*300 // anything goes
			case 1:
				blocks[idx].AreaMM2 *= 1 + 0.01*rng.Float64() // usually keeps topology
			case 2:
				// no-op update
			default:
				blocks[idx].AreaMM2 = blocks[(idx+1)%n].AreaMM2 // force a tie
			}
			want, err := PlanFlexible(blocks, 0.5, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ft.Update(idx, blocks[idx].AreaMM2)
			if err != nil {
				t.Fatal(err)
			}
			resultsBitIdentical(t, fmt.Sprintf("round %d step %d", round, step), want, got)
		}
	}
}

// Spacing, aspect-list or block-set changes must rebuild (and still
// match), never serve stale shape sets.
func TestFlexTreeRebuildOnShapeChange(t *testing.T) {
	var ft FlexTree
	a := []Block{{Name: "a", AreaMM2: 100}, {Name: "b", AreaMM2: 60}}
	if _, err := ft.Plan(a, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		label   string
		blocks  []Block
		spacing float64
		aspects []float64
	}{
		{"spacing", a, 0.8, nil},
		{"aspects", a, 0.8, []float64{0.5, 1, 2}},
		{"block set", []Block{{Name: "a", AreaMM2: 100}, {Name: "c", AreaMM2: 30}}, 0.8, []float64{0.5, 1, 2}},
		{"fixed aspect", []Block{{Name: "a", AreaMM2: 100, AspectRatio: 2}, {Name: "c", AreaMM2: 30}}, 0.8, []float64{0.5, 1, 2}},
	}
	for _, tc := range cases {
		want, err := PlanFlexible(tc.blocks, tc.spacing, tc.aspects)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ft.Plan(tc.blocks, tc.spacing, tc.aspects)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, tc.label, want, got)
	}
	if s := ft.Stats(); s.Rebuilds != 5 {
		t.Errorf("every shape change should rebuild: %+v", s)
	}
}

func TestFlexTreeErrors(t *testing.T) {
	var ft FlexTree
	if _, err := ft.Update(0, 10); err == nil {
		t.Error("Update before Plan should fail")
	}
	if _, err := ft.Plan(nil, 0.5, nil); err == nil {
		t.Error("empty block list should fail")
	}
	if _, err := ft.Plan([]Block{{Name: "a", AreaMM2: 10}}, 7, nil); err == nil {
		t.Error("out-of-range spacing should fail")
	}
	if _, err := ft.Plan([]Block{{Name: "a", AreaMM2: 10}}, 0.5, []float64{-1}); err == nil {
		t.Error("negative aspect should fail")
	}
	if _, err := ft.Plan([]Block{{Name: "a", AreaMM2: -10}}, 0.5, nil); err == nil {
		t.Error("non-positive area should fail")
	}
	if _, err := ft.Plan([]Block{{Name: "a", AreaMM2: 10}, {Name: "b", AreaMM2: 5}}, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ft.Update(2, 10); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := ft.Update(-1, 10); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := ft.Update(0, -3); err == nil {
		t.Error("non-positive area should fail")
	}
	// The tree must survive rejected inputs.
	res, err := ft.Update(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placements) != 2 {
		t.Errorf("retained state corrupted after rejected inputs: %+v", res)
	}
}

package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"ecochip/internal/explore"
	"ecochip/internal/shard"
)

// FuzzWireRoundTrip attacks the codec from both sides with one input:
//
//   - the raw bytes are decoded as every payload kind and as a frame
//     stream — decode must return an error or a value, never panic,
//     whatever the truncation or corruption;
//   - the bytes also seed a structured lease + block result (including
//     a max-size payload shape when the input asks for it), which must
//     encode → decode → re-encode byte-exactly.
func FuzzWireRoundTrip(f *testing.F) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 8; i++ {
		l := randLease(rng)
		f.Add(AppendLease(nil, &l))
		r := randResult(rng)
		f.Add(AppendBlockResult(nil, &r))
	}
	f.Add([]byte{})
	f.Add(AppendUvarint(nil, MaxFrame+1))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// Multiplied-counts block result: the point count and the first
	// point's node count each pass the per-element remaining-bytes
	// check, but their product used to size the node arena — a shape
	// that provoked giant allocations before the arena hint was
	// bounded by the remaining payload.
	evil := AppendUvarint(nil, 1)                          // seq
	evil = AppendUvarint(evil, 0)                          // block
	evil = AppendUvarint(evil, 1<<10)                      // 1024 points declared
	evil = append(evil, bytes.Repeat([]byte{1}, 1<<10)...) // their slots
	evil = AppendUvarint(evil, 1<<15)                      // first point claims 32768 nodes
	evil = append(evil, bytes.Repeat([]byte{1}, 40<<10)...)
	f.Add(evil)

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Hostile decode: all payload kinds over the raw bytes.
		var l shard.Lease
		if err := DecodeLease(data, &l); err == nil {
			if !bytes.Equal(AppendLease(nil, &l), data) {
				// Decoded cleanly but re-encodes differently: legal only
				// when the input used non-minimal varints; the re-encode
				// must still decode to the same value.
				var l2 shard.Lease
				p := AppendLease(nil, &l)
				if err := DecodeLease(p, &l2); err != nil || !leasesEqual(&l, &l2) {
					t.Fatalf("canonical re-encode of decoded lease broke: %v", err)
				}
			}
		}
		var br shard.BlockResult
		if err := DecodeBlockResult(data, &br); err == nil {
			p := AppendBlockResult(nil, &br)
			var br2 shard.BlockResult
			if err := DecodeBlockResult(p, &br2); err != nil || !resultsEqual(&br, &br2) {
				t.Fatalf("canonical re-encode of decoded result broke: %v", err)
			}
		}
		_, _ = DecodeRegistration(data)
		_, _, _ = DecodeError(data)
		_, _ = DecodeString(data)
		_, _ = DecodeUvarint(data)
		r := NewReader(bytes.NewReader(data), 1<<16)
		for {
			if _, _, _, err := r.ReadFrame(); err != nil {
				break
			}
		}

		// 2. Structured round trip seeded from the input bytes.
		seed := int64(binary.LittleEndian.Uint64(append(append([]byte{}, data...), 0, 0, 0, 0, 0, 0, 0, 0)[:8]))
		srng := rand.New(rand.NewSource(seed))
		lease := randLease(srng)
		lp := AppendLease(nil, &lease)
		var lback shard.Lease
		if err := DecodeLease(lp, &lback); err != nil {
			t.Fatalf("structured lease decode: %v", err)
		}
		if !bytes.Equal(AppendLease(nil, &lback), lp) {
			t.Fatal("structured lease re-encode differs")
		}
		res := randResult(srng)
		if len(data) > 0 && data[0]%7 == 0 {
			// Max-size shape: one block result at the full-block point
			// count with wide node vectors.
			res = bigResult(srng)
		}
		rp := AppendBlockResult(nil, &res)
		var rback shard.BlockResult
		if err := DecodeBlockResult(rp, &rback); err != nil {
			t.Fatalf("structured result decode: %v", err)
		}
		if !bytes.Equal(AppendBlockResult(nil, &rback), rp) {
			t.Fatal("structured result re-encode differs")
		}
	})
}

// bigResult builds a 512-point, 16-node-wide block result — the
// largest shape the default protocol configuration ships per frame.
func bigResult(rng *rand.Rand) shard.BlockResult {
	res := shard.BlockResult{Seq: rng.Uint64() >> 1, Block: rng.Intn(1 << 10)}
	for i := 0; i < 512; i++ {
		res.Slots = append(res.Slots, i*3)
		pt := explore.Point{
			EmbodiedKg:     rng.NormFloat64(),
			TotalKg:        math.Copysign(rng.NormFloat64(), -1),
			CostUSD:        rng.Float64() * 1e6,
			PackageAreaMM2: rng.Float64() * 1e4,
		}
		for j := 0; j < 16; j++ {
			pt.Nodes = append(pt.Nodes, rng.Intn(180))
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

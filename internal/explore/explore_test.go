package explore

import (
	"testing"

	"ecochip/internal/cost"
	"ecochip/internal/tech"
	"ecochip/internal/testcases"
)

func db() *tech.DB { return tech.Default() }

func sweep(t *testing.T) []Point {
	t.Helper()
	base := testcases.GA102(db(), 7, 14, 10, false)
	points, err := NodeSweep(base, db(), []int{7, 10, 14}, cost.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return points
}

func TestNodeSweepEnumerates(t *testing.T) {
	points := sweep(t)
	if len(points) != 27 {
		t.Fatalf("3 nodes ^ 3 chiplets should give 27 points, got %d", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.Label] {
			t.Errorf("duplicate point %s", p.Label)
		}
		seen[p.Label] = true
		if p.EmbodiedKg <= 0 || p.TotalKg <= p.EmbodiedKg || p.CostUSD <= 0 || p.PackageAreaMM2 <= 0 {
			t.Errorf("implausible point %+v", p)
		}
	}
}

func TestNodeSweepErrors(t *testing.T) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	if _, err := NodeSweep(base, db(), nil, cost.DefaultParams()); err == nil {
		t.Error("empty node list should fail")
	}
	// Blow the combination cap: 7 nodes ^ 10 chiplets.
	big, err := testcases.GA102Split(db(), 8, base.Packaging.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NodeSweep(big, db(), db().Sizes(), cost.DefaultParams()); err == nil {
		t.Error("combination explosion should fail, not truncate")
	}
	// Invalid node propagates.
	if _, err := NodeSweep(base, db(), []int{7, 3}, cost.DefaultParams()); err == nil {
		t.Error("unsupported node should fail")
	}
}

// The paper's Section V-A result must fall out of the sweep: the best
// embodied-carbon point is (7,14,10).
func TestBestMatchesPaper(t *testing.T) {
	points := sweep(t)
	best := Best(points, ByEmbodied)
	if best.Label != "[7 14 10]" {
		t.Errorf("best embodied point = %s, want [7 14 10]", best.Label)
	}
}

func TestBestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Best on empty set should panic")
		}
	}()
	Best(nil, ByEmbodied)
}

func TestParetoFrontProperties(t *testing.T) {
	points := sweep(t)
	front := ParetoFront(points, ByEmbodied, ByCost)
	if len(front) == 0 || len(front) > len(points) {
		t.Fatalf("front size %d implausible", len(front))
	}
	// No point in the front is dominated by any sweep point.
	for _, p := range front {
		for _, q := range points {
			if q.Label == p.Label {
				continue
			}
			if q.EmbodiedKg <= p.EmbodiedKg && q.CostUSD <= p.CostUSD &&
				(q.EmbodiedKg < p.EmbodiedKg || q.CostUSD < p.CostUSD) {
				t.Errorf("front point %s is dominated by %s", p.Label, q.Label)
			}
		}
	}
	// Front is sorted by the first objective.
	for i := 1; i < len(front); i++ {
		if front[i].EmbodiedKg < front[i-1].EmbodiedKg {
			t.Error("front not sorted by first objective")
		}
	}
	// Both single-objective optima are on the front.
	bestEmb := Best(points, ByEmbodied)
	bestCost := Best(points, ByCost)
	var foundEmb, foundCost bool
	for _, p := range front {
		if p.Label == bestEmb.Label {
			foundEmb = true
		}
		if p.Label == bestCost.Label {
			foundCost = true
		}
	}
	if !foundEmb || !foundCost {
		t.Error("single-objective optima must be on the Pareto front")
	}
}

func TestParetoSingleObjective(t *testing.T) {
	points := sweep(t)
	front := ParetoFront(points, ByTotal)
	// With one objective the front is exactly the set of minima.
	best := Best(points, ByTotal)
	for _, p := range front {
		if p.TotalKg != best.TotalKg {
			t.Errorf("single-objective front contains non-minimal point %s", p.Label)
		}
	}
}

func TestParetoPanicsWithoutObjectives(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ParetoFront without objectives should panic")
		}
	}()
	ParetoFront(sweep(t))
}

func TestByAreaMetric(t *testing.T) {
	points := sweep(t)
	best := Best(points, ByArea)
	// All-advanced nodes minimize area.
	if best.Label != "[7 7 7]" {
		t.Errorf("smallest-area point = %s, want [7 7 7]", best.Label)
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ecochip/internal/config"
)

// epycDir writes an EPYC-style design directory: eight CCD-class logic
// dies (not reused, so the grouping optimizer may merge them) around a
// large IO die on an RDL substrate — the many-chiplet regime the
// disaggregate plan statistics are about.
func epycDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	arch := config.ArchitectureFile{
		SystemName:      "epyc-like",
		Packaging:       "RDL",
		ReferenceNodeNm: 7,
	}
	for i := 0; i < 8; i++ {
		arch.Chiplets = append(arch.Chiplets, config.ChipletJSON{
			Name: fmt.Sprintf("ccd%d", i), Type: "logic", AreaMM2: 74, NodeNm: 7,
		})
	}
	arch.Chiplets = append(arch.Chiplets, config.ChipletJSON{
		Name: "iod", Type: "analog", AreaMM2: 416, NodeNm: 14,
	})
	data, err := json.MarshalIndent(arch, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "architecture.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// The group -progress output must surface the disaggregate plan
// statistics, and the name-keyed floorplan diff must serve more than
// half the eligible plans on the EPYC-scale testcase.
func TestRunGroupProgressDisaggregateStats(t *testing.T) {
	cfg := cfgFor("group")
	cfg.progress = true
	var out, stats strings.Builder
	if err := run(epycDir(t), cfg, &out, &stats); err != nil {
		t.Fatal(err)
	}
	s := stats.String()
	if !strings.Contains(s, "disaggregate plan:") {
		t.Fatalf("group progress run missing disaggregate plan statistics:\n%s", s)
	}
	if !strings.Contains(s, "pooled-scratch reuses") {
		t.Fatalf("group progress run missing pooled-scratch counter:\n%s", s)
	}
	if !strings.Contains(s, "incremental floorplan:") {
		t.Fatalf("group progress run missing floorplan diff statistics:\n%s", s)
	}
	m := regexp.MustCompile(`\(([0-9.]+)% reuse\)`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no reuse rate in stats output:\n%s", s)
	}
	rate, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 50 {
		t.Errorf("name-keyed diff hit rate %.1f%% not above 50%%:\n%s", rate, s)
	}
}

// The compiled and reference group paths must print identical plans,
// and -uncompiled under -progress reports cache statistics instead.
func TestRunGroupUncompiledMatchesCompiled(t *testing.T) {
	dir := epycDir(t)
	var compiled, reference strings.Builder
	if err := run(dir, cfgFor("group"), &compiled, nil); err != nil {
		t.Fatal(err)
	}
	cfg := cfgFor("group")
	cfg.uncompiled = true
	cfg.progress = true
	var stats strings.Builder
	if err := run(dir, cfg, &reference, &stats); err != nil {
		t.Fatal(err)
	}
	if compiled.String() != reference.String() {
		t.Errorf("compiled and uncompiled group outputs diverge:\n%s\nvs\n%s", compiled.String(), reference.String())
	}
	if !strings.Contains(stats.String(), "reference path:") {
		t.Errorf("uncompiled group progress run should say the reference path has no plan statistics:\n%s", stats.String())
	}
	if strings.Contains(stats.String(), "memo cache:") {
		t.Errorf("uncompiled group progress run must not print a cache the reference never touches:\n%s", stats.String())
	}
}

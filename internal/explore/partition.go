package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// This file implements the grouping half of SoC-to-chiplet
// disaggregation (Section VI): given a system described at fine block
// granularity, decide which blocks should share a die. Merging blocks
// saves packaging overhead and amortizes per-die waste, but grows die
// area (hurting yield) and forces every member onto the most advanced
// node in the group. The optimizer runs a deterministic greedy merge:
// starting from the fully disaggregated system, it repeatedly applies
// the pairwise merge that lowers embodied carbon the most, stopping when
// no merge helps.

// Plan is the result of a disaggregation search.
type Plan struct {
	// System is the optimized system (chiplets are merged groups).
	System *core.System
	// Groups maps each result chiplet to the names of the original
	// blocks it absorbed.
	Groups [][]string
	// EmbodiedKg is the optimized embodied carbon.
	EmbodiedKg float64
	// InitialKg is the fully disaggregated starting point's carbon.
	InitialKg float64
	// Steps is the number of merges applied.
	Steps int
}

// mergeable reports whether two chiplets may share a die: same scaling
// type (a die is floorplanned per class here) and neither is a reused
// hard IP (merging would forfeit its pre-designed status).
func mergeable(a, b core.Chiplet) bool {
	return a.Type == b.Type && !a.Reused && !b.Reused
}

// merge combines two chiplets: transistor budgets add, the group settles
// on the most advanced (smallest) node so every member can be built.
func merge(a, b core.Chiplet) core.Chiplet {
	node := a.NodeNm
	if b.NodeNm < node {
		node = b.NodeNm
	}
	parts := a.ManufacturedParts
	if b.ManufacturedParts < parts || parts == 0 {
		parts = b.ManufacturedParts
	}
	return core.Chiplet{
		Name:              a.Name + "+" + b.Name,
		Type:              a.Type,
		Transistors:       a.Transistors + b.Transistors,
		NodeNm:            node,
		ManufacturedParts: parts,
	}
}

// Disaggregate runs the greedy merge search on the system's blocks and
// returns the best grouping found.
func Disaggregate(base *core.System, db *tech.DB) (*Plan, error) {
	return DisaggregateCtx(context.Background(), base, db)
}

// mergeCandidate is one (i, j) pairwise merge considered in a greedy
// step, with its evaluated embodied carbon.
type mergeCandidate struct {
	i, j int
	kg   float64
}

// candScratch is one worker's reusable state for candidate evaluation:
// the run's memo hooks, a packaging estimator (floorplan scratch +
// validated params) and the packaging descriptor buffer.
type candScratch struct {
	h     *core.Hooks
	est   *pkgcarbon.Estimator
	pkgCh []pkgcarbon.Chiplet
}

// DisaggregateCtx is Disaggregate with cancellation and engine options.
// Each greedy step evaluates all O(n^2) candidate merges through the
// batch engine; one memo cache is shared across all steps because
// successive steps re-price mostly unchanged die sets.
//
// Candidates are evaluated on the DieCell compile seam rather than
// through full System evaluations: the cells of the n unchanged chiplets
// are computed once per step, so each candidate pays only for its merged
// die, an in-order reduction of the cell table, and a scratch-backed
// packaging estimate — no clone, no re-validation, no report
// allocation. The greedy trajectory is bit-identical to the evaluate-
// per-candidate implementation because both reduce the same cells in
// the same order (guarded by the equivalence test).
func DisaggregateCtx(ctx context.Context, base *core.System, db *tech.DB, opts ...engine.Option) (*Plan, error) {
	if err := base.Validate(db); err != nil {
		return nil, err
	}
	if base.Monolithic {
		return nil, fmt.Errorf("explore: disaggregation needs a chiplet-form system, not a monolith")
	}
	// Share one cache across every step unless the caller provided their
	// own engine configuration. The same cache backs the per-step cell
	// tables so steps re-price mostly warm dies.
	cache := engine.NewCache()
	hooks := cache.Hooks()
	opts = append([]engine.Option{engine.WithCache(cache)}, opts...)

	current := cloneSystem(base)
	groups := make([][]string, len(current.Chiplets))
	for i, c := range current.Chiplets {
		groups[i] = []string{c.Name}
	}
	currentKg, err := embodied(current, db)
	if err != nil {
		return nil, err
	}
	initialKg := currentKg

	steps := 0
	for len(current.Chiplets) > 1 {
		var pairs []mergeCandidate
		for i := 0; i < len(current.Chiplets); i++ {
			for j := i + 1; j < len(current.Chiplets); j++ {
				if mergeable(current.Chiplets[i], current.Chiplets[j]) {
					pairs = append(pairs, mergeCandidate{i: i, j: j})
				}
			}
		}
		// The unchanged-chiplet cells of this step, shared by every
		// candidate.
		stepCells := make([]core.DieCell, len(current.Chiplets))
		for i, c := range current.Chiplets {
			cell, err := current.CellFor(db, c, c.NodeNm, hooks)
			if err != nil {
				return nil, err
			}
			stepCells[i] = cell
		}
		newScratch := func(h *core.Hooks) (*candScratch, error) {
			est, err := pkgcarbon.NewEstimator(current.Packaging)
			if err != nil {
				return nil, err
			}
			return &candScratch{h: h, est: est, pkgCh: make([]pkgcarbon.Chiplet, 0, len(current.Chiplets))}, nil
		}
		evaluated, err := engine.RunScratch(ctx, len(pairs), newScratch, func(_ context.Context, k int, sc *candScratch) (mergeCandidate, error) {
			c := pairs[k]
			kg, err := evalMergeCandidate(current, db, stepCells, c.i, c.j, sc)
			if err != nil {
				return mergeCandidate{}, err
			}
			c.kg = kg
			return c, nil
		}, opts...)
		if err != nil {
			return nil, err
		}
		// The pick is a serial scan in (i, j) order, so parallel
		// candidate evaluation reproduces the serial search exactly:
		// only a strictly lower carbon displaces the incumbent.
		bestKg := currentKg
		bestI, bestJ := -1, -1
		for _, c := range evaluated {
			if c.kg < bestKg {
				bestKg, bestI, bestJ = c.kg, c.i, c.j
			}
		}
		if bestI < 0 {
			break // no merge improves
		}
		mergedGroup := append(append([]string{}, groups[bestI]...), groups[bestJ]...)
		var nextGroups [][]string
		for k := range groups {
			if k != bestI && k != bestJ {
				nextGroups = append(nextGroups, groups[k])
			}
		}
		groups = append(nextGroups, mergedGroup)
		current, currentKg = applyMerge(current, bestI, bestJ), bestKg
		steps++
	}

	for _, g := range groups {
		sort.Strings(g)
	}
	sort.Slice(groups, func(i, j int) bool {
		return strings.Join(groups[i], ",") < strings.Join(groups[j], ",")
	})
	return &Plan{
		System:     current,
		Groups:     groups,
		EmbodiedKg: currentKg,
		InitialKg:  initialKg,
		Steps:      steps,
	}, nil
}

// evalMergeCandidate returns the embodied carbon of s with chiplets i
// and j merged (i < j), without materializing the candidate system. The
// candidate's chiplet order is that of applyMerge — survivors in order,
// the merged die last — and the reduction follows evaluateHI's
// accumulation order exactly, so the result is bit-identical to
// applyMerge(s, i, j).EvaluateWith(db, h).EmbodiedKg().
func evalMergeCandidate(s *core.System, db *tech.DB, stepCells []core.DieCell, i, j int, sc *candScratch) (float64, error) {
	if len(s.Chiplets) == 2 {
		// The final merge collapses to a single die, which evaluates
		// down the monolith path; take the reference route for it.
		rep, err := applyMerge(s, i, j).EvaluateWith(db, sc.h)
		if err != nil {
			return 0, err
		}
		return rep.EmbodiedKg(), nil
	}
	merged := merge(s.Chiplets[i], s.Chiplets[j])
	mergedCell, err := s.CellFor(db, merged, merged.NodeNm, sc.h)
	if err != nil {
		return 0, err
	}

	var mfgKg, desKg, nreKg float64
	sc.pkgCh = sc.pkgCh[:0]
	firstNodeNm := -1
	for k, cell := range stepCells {
		if k == i || k == j {
			continue
		}
		mfgKg += cell.MfgKg
		desKg += cell.DesignKgAmortized
		nreKg += cell.NREKg
		sc.pkgCh = append(sc.pkgCh, pkgcarbon.Chiplet{Name: s.Chiplets[k].Name, AreaMM2: cell.AreaMM2, Node: cell.Node})
		if firstNodeNm < 0 {
			firstNodeNm = s.Chiplets[k].NodeNm
		}
	}
	mfgKg += mergedCell.MfgKg
	desKg += mergedCell.DesignKgAmortized
	nreKg += mergedCell.NREKg
	sc.pkgCh = append(sc.pkgCh, pkgcarbon.Chiplet{Name: merged.Name, AreaMM2: mergedCell.AreaMM2, Node: mergedCell.Node})

	pkg, err := sc.est.Estimate(sc.pkgCh)
	if err != nil {
		return 0, err
	}
	share, err := s.CommDesignShareKg(db, firstNodeNm, len(sc.pkgCh), sc.h)
	if err != nil {
		return 0, err
	}
	desKg += share
	return mfgKg + desKg + pkg.TotalKg() + nreKg, nil
}

// applyMerge returns a copy of s with chiplets i and j merged (i < j).
// The merged chiplet is appended so group bookkeeping can mirror the
// move.
func applyMerge(s *core.System, i, j int) *core.System {
	out := cloneSystem(s)
	merged := merge(out.Chiplets[i], out.Chiplets[j])
	var chiplets []core.Chiplet
	for k, c := range out.Chiplets {
		if k != i && k != j {
			chiplets = append(chiplets, c)
		}
	}
	out.Chiplets = append(chiplets, merged)
	return out
}

func cloneSystem(s *core.System) *core.System {
	out := *s
	out.Chiplets = make([]core.Chiplet, len(s.Chiplets))
	copy(out.Chiplets, s.Chiplets)
	return &out
}

func embodied(s *core.System, db *tech.DB) (float64, error) {
	rep, err := s.Evaluate(db)
	if err != nil {
		return 0, err
	}
	return rep.EmbodiedKg(), nil
}

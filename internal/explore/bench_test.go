package explore

import (
	"context"
	"testing"

	"ecochip/internal/cost"
	"ecochip/internal/testcases"
)

func BenchmarkNodeSweep27(b *testing.B) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	cp := cost.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NodeSweep(base, db(), []int{7, 10, 14}, cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNodeSweepReference27 is the same sweep on the uncompiled
// per-point path (the PR 1 engine baseline).
func BenchmarkNodeSweepReference27(b *testing.B) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	cp := cost.DefaultParams()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NodeSweepReference(ctx, base, db(), []int{7, 10, 14}, cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile isolates the one-time plan construction cost the
// compiled sweep amortizes over its points.
func BenchmarkCompile(b *testing.B) {
	base := testcases.GA102(db(), 7, 14, 10, false)
	cp := cost.DefaultParams()
	d := db()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(base, d, []int{7, 10, 14, 22, 28}, cp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisaggregate8Blocks(b *testing.B) {
	base := fineGrained(6, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Disaggregate(base, db()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisaggregate10Blocks is the EPYC-scale (10-die) greedy
// search: 8 mergeable logic slivers plus memory and analog, a multi-step
// trajectory that exercises the step-spanning compiled state (merged-
// cell memo, pooled scratches, pinned-base floorplan forks).
func BenchmarkDisaggregate10Blocks(b *testing.B) {
	base := fineGrained(8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Disaggregate(base, db()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisaggregateReference is the evaluate-per-candidate oracle on
// the same 10-die search — the bit-identity baseline, not the pre-PR
// path (which already evaluated candidates on the cell-table seam).
func BenchmarkDisaggregateReference(b *testing.B) {
	base := fineGrained(8, 3)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DisaggregateReference(ctx, base, db()); err != nil {
			b.Fatal(err)
		}
	}
}

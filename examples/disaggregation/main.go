// Disaggregation explorer: the Section VI workflow. Given the GA102 SoC,
// sweep (a) technology-node assignments per chiplet and (b) the number of
// digital chiplets, and report carbon alongside dollar cost so an
// architect can pick a design point on both axes.
//
//	go run ./examples/disaggregation
package main

import (
	"fmt"
	"log"

	"ecochip"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/testcases"
)

func main() {
	db := ecochip.DefaultDB()
	costParams := ecochip.DefaultCostParams()

	fmt.Println("== node mix-and-match for the 3-chiplet GA102 (digital, memory, analog) ==")
	fmt.Printf("%-14s %12s %12s %12s\n", "nodes", "C_emb (kg)", "C_tot (kg)", "cost ($)")
	nodes := []int{7, 10, 14}
	for _, d := range nodes {
		for _, m := range nodes {
			for _, a := range nodes {
				s := ecochip.GA102(db, d, m, a, false)
				rep, err := s.Evaluate(db)
				if err != nil {
					log.Fatal(err)
				}
				c, err := s.CostUSD(db, costParams)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("(%2d,%2d,%2d)     %12.1f %12.1f %12.0f\n",
					d, m, a, rep.EmbodiedKg(), rep.TotalKg(), c.TotalUSD())
			}
		}
	}

	mono, err := ecochip.GA102(db, 7, 7, 7, true).Evaluate(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monolith(7nm)  %12.1f %12.1f\n\n", mono.EmbodiedKg(), mono.TotalKg())

	fmt.Println("== digital-block split count (RDL fanout) ==")
	fmt.Printf("%-4s %12s %12s %12s %12s\n", "Nc", "C_mfg (kg)", "C_HI (kg)", "sum (kg)", "cost ($)")
	for _, nc := range []int{1, 2, 3, 4, 6, 8} {
		s, err := testcases.GA102Split(db, nc, pkgcarbon.RDLFanout)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := s.Evaluate(db)
		if err != nil {
			log.Fatal(err)
		}
		c, err := s.CostUSD(db, costParams)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %12.1f %12.2f %12.1f %12.0f\n",
			nc, rep.MfgKg, rep.HIKg, rep.MfgKg+rep.HIKg, c.TotalUSD())
	}
}

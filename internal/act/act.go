// Package act re-implements the baseline architectural carbon model of
// ACT (Gupta et al., ISCA 2022), which ECO-CHIP compares against in
// Section V-A and Fig. 7(c).
//
// ACT models manufacturing carbon as a per-area footprint divided by die
// yield, and adds a *fixed* package-assembly carbon of 150 g CO2 per
// system regardless of package size, architecture or assembly yield. It
// models neither design carbon nor wafer-periphery wastage nor
// equipment-efficiency derating — precisely the gaps the paper
// demonstrates cause ACT to underestimate HI-system carbon by ~20% of
// C_emb.
package act

import (
	"fmt"

	"ecochip/internal/tech"
	"ecochip/internal/yieldmodel"
)

// FixedPackageKg is ACT's constant package-assembly carbon (150 g CO2).
const FixedPackageKg = 0.150

// Params configures the ACT baseline.
type Params struct {
	// CarbonIntensity is the fab energy carbon intensity in kg CO2/kWh.
	CarbonIntensity float64
	// Alpha is the yield clustering parameter.
	Alpha float64
}

// DefaultParams matches the ECO-CHIP comparison setup (coal fab).
func DefaultParams() Params {
	return Params{CarbonIntensity: 0.700, Alpha: yieldmodel.DefaultAlpha}
}

// Validate enforces ranges.
func (p Params) Validate() error {
	if p.CarbonIntensity < 0.030 || p.CarbonIntensity > 0.700 {
		return fmt.Errorf("act: carbon intensity %g outside [0.030, 0.700]", p.CarbonIntensity)
	}
	if p.Alpha <= 0 {
		return fmt.Errorf("act: alpha must be positive, got %g", p.Alpha)
	}
	return nil
}

// Die is one die in the ACT system description.
type Die struct {
	AreaMM2 float64
	Node    *tech.Node
}

// DieKg returns ACT's manufacturing carbon of a single die: the full
// per-area fab footprint (energy, gases, materials — *without* the
// equipment-efficiency derate ECO-CHIP applies) divided by yield.
func DieKg(d Die, p Params) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if d.AreaMM2 <= 0 {
		return 0, fmt.Errorf("act: die area must be positive, got %g", d.AreaMM2)
	}
	if d.Node == nil {
		return 0, fmt.Errorf("act: die node is required")
	}
	y := yieldmodel.DieAlpha(d.AreaMM2, d.Node.DefectDensity, p.Alpha)
	cfpa := (p.CarbonIntensity*d.Node.EPA + d.Node.GasCFP + d.Node.MaterialCFP) / y
	return cfpa * d.AreaMM2 / 100, nil
}

// SystemKg returns ACT's embodied carbon of a multi-die system: the sum
// of per-die manufacturing carbon plus one fixed package constant. ACT
// has no design-carbon term.
func SystemKg(dies []Die, p Params) (float64, error) {
	if len(dies) == 0 {
		return 0, fmt.Errorf("act: no dies")
	}
	var total float64
	for _, d := range dies {
		kg, err := DieKg(d, p)
		if err != nil {
			return 0, err
		}
		total += kg
	}
	return total + FixedPackageKg, nil
}

package floorplan

import (
	"math"
	"sort"
)

// This file is the allocation-free core of the fixed-shape floorplanner.
// Plan and Scratch.Plan share it: the recursive bi-partition and the
// bottom-up layout are fused into one in-place recursion over a sorted
// block segment, writing placements into a preallocated slice instead of
// appending per subtree. The float arithmetic — partition decisions,
// orientation choice, coordinate shifts — is performed in exactly the
// order of the historical buildTree+layout pair, so results are
// bit-identical; only the storage strategy differs.

// Scratch holds the reusable buffers of repeated floorplanning calls —
// the per-point hot loop of a compiled design-space sweep plans a fresh
// area tuple for every candidate, and the buffers dominate its
// allocation profile. A Scratch is NOT safe for concurrent use; give
// each worker its own.
//
// The Result returned by Scratch.Plan (including its Placements and
// Adjacencies slices) is owned by the Scratch and overwritten by the
// next call.
type Scratch struct {
	sorted []Block
	tmp    []Block
	toA    []bool
	place  []Placement
	adj    []Adjacency
	res    Result
}

// Plan is exactly floorplan.Plan with scratch-backed storage. See the
// Scratch doc comment for the result-ownership caveat.
func (s *Scratch) Plan(blocks []Block, spacingMM float64) (*Result, error) {
	return s.plan(blocks, spacingMM, true)
}

// PlanNoAdjacencies is Plan skipping the pairwise adjacency scan; the
// returned Result has nil Adjacencies. Packaging models that only need
// the bounding box (every architecture except silicon bridges) use it to
// keep the per-point cost flat in the chiplet count.
func (s *Scratch) PlanNoAdjacencies(blocks []Block, spacingMM float64) (*Result, error) {
	return s.plan(blocks, spacingMM, false)
}

func (s *Scratch) plan(blocks []Block, spacingMM float64, needAdjacencies bool) (*Result, error) {
	if spacingMM == 0 {
		spacingMM = DefaultSpacingMM
	}
	total, err := validateBlocks(blocks, spacingMM)
	if err != nil {
		return nil, err
	}

	n := len(blocks)
	if cap(s.sorted) < n {
		s.sorted = make([]Block, n)
		s.tmp = make([]Block, n)
		s.toA = make([]bool, n)
		s.place = make([]Placement, n)
	}
	sorted := s.sorted[:n]
	copy(sorted, blocks)
	sortBlocksByArea(sorted)

	place := s.place[:n]
	w, h := s.layoutSeg(sorted, place, spacingMM)

	s.res = Result{
		WidthMM:        w,
		HeightMM:       h,
		Placements:     place,
		ChipletAreaMM2: total,
	}
	if needAdjacencies {
		s.adj = appendAdjacencies(s.adj[:0], place, spacingMM)
		s.res.Adjacencies = s.adj
	}
	return &s.res, nil
}

// validateBlocks runs the shared Plan input checks and returns the total
// chiplet area.
func validateBlocks(blocks []Block, spacingMM float64) (float64, error) {
	if len(blocks) == 0 {
		return 0, errNoBlocks()
	}
	if spacingMM < 0.1 || spacingMM > 1 {
		return 0, errSpacing(spacingMM)
	}
	total := 0.0
	for _, b := range blocks {
		if b.AreaMM2 <= 0 {
			return 0, errBlockArea(b)
		}
		total += b.AreaMM2
	}
	return total, nil
}

// sortBlocksByArea stably sorts blocks by decreasing area with an
// insertion sort: stability makes the permutation identical to the
// historical sort.SliceStable call, and for the handful of chiplets a
// package holds it avoids sort's closure and reflection overhead.
func sortBlocksByArea(blocks []Block) {
	for i := 1; i < len(blocks); i++ {
		b := blocks[i]
		j := i - 1
		for j >= 0 && blocks[j].AreaMM2 < b.AreaMM2 {
			blocks[j+1] = blocks[j]
			j--
		}
		blocks[j+1] = b
	}
}

// layoutSeg fuses the area-balanced bi-partition (buildTree) and the
// bottom-up layout into one recursion over seg, writing the subtree's
// placements into place (same length). seg is permuted in place; the
// partition step is stable, matching the append order of the historical
// recursive build.
func (s *Scratch) layoutSeg(seg []Block, place []Placement, spacing float64) (w, h float64) {
	if len(seg) == 1 {
		w, h = seg[0].dims()
		place[0] = Placement{Name: seg[0].Name, Width: w, Height: h}
		return w, h
	}

	// Stable partition: block k goes to A iff A's running area does not
	// exceed B's at the time of assignment (the buildTree rule).
	na := 0
	var areaA, areaB float64
	toA := s.toA[:len(seg)]
	for i, b := range seg {
		if areaA <= areaB {
			toA[i] = true
			areaA += b.AreaMM2
			na++
		} else {
			toA[i] = false
			areaB += b.AreaMM2
		}
	}
	tmp := s.tmp[:len(seg)]
	copy(tmp, seg)
	ia, ib := 0, na
	for i, b := range tmp {
		if toA[i] {
			seg[ia] = b
			ia++
		} else {
			seg[ib] = b
			ib++
		}
	}

	lw, lh := s.layoutSeg(seg[:na], place[:na], spacing)
	rw, rh := s.layoutSeg(seg[na:], place[na:], spacing)

	// Horizontal composition: children side by side along x.
	hw := lw + spacing + rw
	hh := math.Max(lh, rh)
	// Vertical composition: children stacked along y.
	vw := math.Max(lw, rw)
	vh := lh + spacing + rh

	right := place[na:]
	if hw*hh <= vw*vh {
		for i := range right {
			right[i].X += lw + spacing
		}
		return hw, hh
	}
	for i := range right {
		right[i].Y += lh + spacing
	}
	return vw, vh
}

// appendAdjacencies is findAdjacencies writing into a reusable buffer.
func appendAdjacencies(out []Adjacency, ps []Placement, spacing float64) []Adjacency {
	const eps = 1e-9
	maxGap := spacing + eps
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			if adj, ok := facing(ps[i], ps[j], maxGap); ok {
				out = append(out, adj)
			}
		}
	}
	return sortAdjacencies(out)
}

// sortAdjacencies orders an adjacency list by (A, B) name — the single
// comparator shared by the full scan and the Tree's restricted rescan,
// so the two paths cannot order their (identical) pair sets differently.
func sortAdjacencies(out []Adjacency) []Adjacency {
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

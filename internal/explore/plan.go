package explore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ecochip/internal/core"
	"ecochip/internal/cost"
	"ecochip/internal/engine"
	"ecochip/internal/floorplan"
	"ecochip/internal/kernel"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
)

// This file implements compiled sweep plans: the "compile once, stream
// cheap per-point deltas" evaluation of a full-factorial node sweep.
//
// The heavy lifting lives in internal/kernel: kernel.BuildTable
// precomputes the dense nc × len(nodes) table of per-(chiplet, node)
// invariants — area, manufacturing result, design carbon, NRE share, die
// dollar cost — so the hot loop replaces per-point cloning,
// re-validation, mutex-guarded memo lookups and sub-model calls with
// array indexing, and kernel.Scratch carries each worker's reusable
// arena (packaging estimator, chiplet descriptors, operational-term
// memo). This file owns the sweep-specific parts: combinations are
// enumerated in mixed-radix reflected Gray-code order, so successive
// points differ in exactly one chiplet — each step refreshes only the
// changed chiplet's scratch state — and the result is addressed by the
// point's mixed-radix output slot so the point order is identical to the
// historical recursive walk.
//
// One deliberate deviation from a textbook incremental evaluator: the
// per-point metric totals are NOT maintained as running sums patched by
// "new − old" deltas. Floating-point addition is not associative, so a
// patched running sum drifts from the in-order sum the uncompiled path
// computes, and the contract here is bit-identical output (guarded by
// the randomized equivalence test). Instead each point re-reduces its
// nc table cells in chiplet order — an O(nc) handful of adds that is
// noise next to the per-point floorplan — which preserves exact float
// parity while the Gray walk keeps every other per-point cost flat.

// ErrNoFastPath reports that a system cannot be compiled into a dense
// sweep plan and callers should fall back to the per-point reference
// path. Today this only covers multi-chiplet monolithic bases, whose
// sweeps are degenerate (every mixed-node combination fails validation).
var ErrNoFastPath = errors.New("explore: system has no compiled fast path")

// SweepStats counts the work a compiled plan performed; the CLI surfaces
// it under -progress next to the engine cache statistics.
type SweepStats struct {
	// Points is the number of design points evaluated from the table.
	Points uint64
	// BlockInits is the number of Gray walks started (one per worker
	// block): points whose full scratch state was built from scratch.
	BlockInits uint64
	// GraySteps is the number of incremental single-chiplet steps; all
	// other scratch state was reused from the previous point.
	GraySteps uint64
	// ColumnFolds is the number of per-point metric folds served from
	// the table's struct-of-arrays columns (every compiled point).
	ColumnFolds uint64
	// TableCells is the size of the precomputed die table.
	TableCells int
	// TableAoSBytes and TableSoABytes are the resident bytes of the
	// table's array-of-structs view (DieCell rows plus dollar rows) and
	// of the flat struct-of-arrays columns the folds actually read.
	TableAoSBytes, TableSoABytes int
	// Floorplan aggregates the per-worker incremental-floorplan
	// counters: how many packaging estimates were served by a retained-
	// tree fast path versus a full rebuild, and the mean relayout depth.
	Floorplan floorplan.TreeStats
	// PkgMemo aggregates the per-worker point-memo counters; its
	// Collisions field counts the recomputes forced by the memo's
	// direct-mapped slot table (the observable an eviction policy would
	// be justified by).
	PkgMemo kernel.PkgMemoStats
}

// CompiledPlan is a compiled node sweep: the dense per-(chiplet, node)
// invariant table plus everything point evaluation needs. Compile it
// once, run it any number of times; a plan is immutable after Compile
// and safe for concurrent use.
type CompiledPlan struct {
	tbl *kernel.Table

	nodes []int
	nc    int // chiplets in the base system
	r     int // candidate nodes (the mixed radix)

	combos int
	weight []int // weight[i] = r^(nc-1-i): chiplet 0 is the most significant digit

	// monolith selects the single-die evaluation path (single-chiplet or
	// monolithic bases): no packaging, no communication fabric.
	monolith bool

	// scratches pools per-worker evaluation arenas across runs of this
	// plan, so retained state — the estimator's floorplan tree, its
	// communication cells and package-term memo — survives from one
	// request to the next. A re-walk of the same block then starts on a
	// warm tree (often the Unchanged fast path) instead of rebuilding
	// it. Safe because the plan is immutable and every retained cache
	// verifies or is keyed by its exact inputs.
	scratches sync.Pool

	points, blockInits, graySteps atomic.Uint64
	// Folded floorplan.TreeStats and point-memo counters of the
	// per-block estimator scratches.
	fpMu     sync.Mutex
	fpTotals floorplan.TreeStats
	pmTotals kernel.PkgMemoStats
}

// Compile builds the sweep plan for evaluating base under every
// combination of the candidate nodes. It performs every node-independent
// computation and every per-(chiplet, node) sub-model call exactly once
// (see kernel.BuildTable); errors any point of the sweep would hit
// (invalid base description, unsupported candidate node, sub-model
// domain violations, missing cost table entries) surface here instead of
// mid-sweep.
func Compile(base *core.System, db *tech.DB, nodes []int, cp cost.Params) (*CompiledPlan, error) {
	// BuildTable owns the shared preconditions (non-empty node list,
	// system validation, node membership); Compile adds only the
	// sweep-specific ones.
	nc := len(base.Chiplets)
	combos, err := comboCount(len(nodes), nc)
	if err != nil {
		return nil, err
	}
	if base.Monolithic && nc > 1 {
		return nil, ErrNoFastPath
	}
	tbl, err := kernel.BuildTable(base, db, nodes, cp)
	if err != nil {
		return nil, err
	}

	p := &CompiledPlan{
		tbl:      tbl,
		nodes:    tbl.Nodes,
		nc:       nc,
		r:        len(nodes),
		combos:   combos,
		monolith: tbl.Monolith,
	}
	p.weight = make([]int, nc)
	w := 1
	for i := nc - 1; i >= 0; i-- {
		p.weight[i] = w
		w *= p.r
	}
	return p, nil
}

// Combos returns the number of design points the plan enumerates.
func (p *CompiledPlan) Combos() int { return p.combos }

// Nodes returns the candidate node list the plan was compiled for.
func (p *CompiledPlan) Nodes() []int { return append([]int(nil), p.nodes...) }

// Stats snapshots the plan's work counters (cumulative across runs).
func (p *CompiledPlan) Stats() SweepStats {
	p.fpMu.Lock()
	fp := p.fpTotals
	pm := p.pmTotals
	p.fpMu.Unlock()
	aos, soa := p.tbl.LayoutBytes()
	pts := p.points.Load()
	return SweepStats{
		Points:     pts,
		BlockInits: p.blockInits.Load(),
		GraySteps:  p.graySteps.Load(),
		// Every compiled point reduces through the SoA row buffers, so
		// the fold count is the point count by construction.
		ColumnFolds:   pts,
		TableCells:    len(p.tbl.Cells) * p.r,
		TableAoSBytes: aos,
		TableSoABytes: soa,
		Floorplan:     fp,
		PkgMemo:       pm,
	}
}

// Run evaluates every point of the plan with default engine options.
func (p *CompiledPlan) Run() ([]Point, error) {
	return p.RunCtx(context.Background())
}

// RunCtx evaluates every point of the plan: workers walk contiguous
// Gray-code blocks of the combination sequence and write each point into
// its mixed-radix slot, so the output order (and every float in it) is
// identical to NodeSweepReference at any worker count.
func (p *CompiledPlan) RunCtx(ctx context.Context, opts ...engine.Option) ([]Point, error) {
	results := make([]Point, p.combos)
	err := engine.RunBlocks(ctx, p.combos, func(ctx context.Context, lo, hi int, tick func()) error {
		return p.walkBlock(ctx, lo, hi, func(idx int, pt *Point) error {
			cp := *pt
			cp.Nodes = append([]int(nil), pt.Nodes...)
			results[idx] = cp
			return nil
		}, tick)
	}, opts...)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Walk evaluates every point of the plan and streams each to visit
// without materializing a result slice — the batch shape of
// million-point serving scenarios, where the caller folds points into a
// running reduction (a Pareto front, a histogram, a wire encoder) as
// they are produced. visit is called concurrently from the worker
// goroutines (one walker per contiguous Gray-code block); within a block
// calls arrive in walk order, and idx is the point's mixed-radix output
// slot — its index in the RunCtx result slice. The *Point (including its
// Nodes slice) is owned by the walker and reused after visit returns:
// copy what must be retained. A visit error cancels the walk.
func (p *CompiledPlan) Walk(ctx context.Context, visit func(idx int, pt *Point) error, opts ...engine.Option) error {
	return engine.RunBlocks(ctx, p.combos, func(ctx context.Context, lo, hi int, tick func()) error {
		return p.walkBlock(ctx, lo, hi, visit, tick)
	}, opts...)
}

// WalkRange walks the contiguous sequence segment [lo, hi) of the
// plan's Gray-code combination order serially on the calling goroutine,
// streaming each point to visit exactly as Walk does (idx is the
// point's mixed-radix output slot — NOT its sequence position; a
// contiguous sequence segment covers a scattered but deterministic set
// of output slots). It is the resumable unit of a sharded sweep: any
// party that compiled the same plan can walk any segment and the
// streamed points are bit-identical to the corresponding points of a
// full Walk, so segments can be computed remotely, retried after
// failures and reassembled in any order. The *Point is reused after
// visit returns; copy what must be retained.
func (p *CompiledPlan) WalkRange(ctx context.Context, lo, hi int, visit func(idx int, pt *Point) error) error {
	if lo < 0 || hi > p.combos || lo > hi {
		return fmt.Errorf("explore: WalkRange [%d,%d) outside the %d-point plan", lo, hi, p.combos)
	}
	if lo == hi {
		return ctx.Err()
	}
	return p.walkBlock(ctx, lo, hi, visit, func() {})
}

// ParetoFrontCtx runs the plan and reduces the sweep to its Pareto front
// under the given objectives, returning the front and the total number
// of evaluated points. The reduction is folded into the sweep walk: each
// worker block maintains its own skyline front over the points it
// streams (storing objective values and output slots, not points), the
// block fronts are merged at the barrier, and only then are the
// surviving points materialized — front-only callers never allocate the
// full point slice. The returned front is identical to
// ParetoFront(RunCtx(...), objectives...).
func (p *CompiledPlan) ParetoFrontCtx(ctx context.Context, objectives []Metric, opts ...engine.Option) ([]Point, int, error) {
	if len(objectives) == 0 {
		panic("explore: ParetoFront needs at least one objective")
	}
	var mu sync.Mutex
	var merged []frontEntry
	err := engine.RunBlocks(ctx, p.combos, func(ctx context.Context, lo, hi int, tick func()) error {
		local := newBlockFront(len(objectives))
		err := p.walkBlock(ctx, lo, hi, func(idx int, pt *Point) error {
			local.add(idx, pt, objectives)
			return nil
		}, tick)
		if err != nil {
			return err
		}
		mu.Lock()
		merged = append(merged, local.entries...)
		mu.Unlock()
		return nil
	}, opts...)
	if err != nil {
		return nil, 0, err
	}
	// Globally dominated survivors of one block are eliminated by the
	// final ParetoFront pass; restoring output-slot order first makes the
	// pass see candidates exactly as the materializing path would, so
	// ties and duplicates resolve identically.
	sort.Slice(merged, func(a, b int) bool { return merged[a].idx < merged[b].idx })
	points := make([]Point, len(merged))
	for i, e := range merged {
		points[i] = e.pt
		points[i].Nodes = p.nodesFor(e.idx)
	}
	return ParetoFront(points, objectives...), p.combos, nil
}

// frontEntry is one block-front survivor: the point's scalar fields plus
// its output slot, from which the Nodes slice is reconstructed only if
// the point survives the final merge.
type frontEntry struct {
	idx int
	pt  Point // Nodes nil until materialized
}

// blockFront is one worker block's incremental skyline: the mutually
// non-dominated subset of the points streamed so far. Objective values
// are computed once per point and stored in a flat arena, so membership
// checks are branch-light float compares and the only growth is the
// entry/value slices themselves — no per-point allocations.
type blockFront struct {
	k       int
	entries []frontEntry
	objs    []float64 // len(entries)*k objective values
	vals    []float64 // candidate scratch, len k
}

func newBlockFront(k int) *blockFront {
	return &blockFront{k: k, vals: make([]float64, k)}
}

// add folds one point into the front: rejected if any member dominates
// it, otherwise inserted after evicting the members it dominates. Equal
// points do not dominate each other (matching ParetoFront), so exact
// duplicates coexist. The front invariant (mutual non-dominance) makes
// the two outcomes exclusive, so a single pass suffices.
func (f *blockFront) add(idx int, pt *Point, objectives []Metric) {
	vals := f.vals
	for j, m := range objectives {
		vals[j] = m(*pt)
	}
	for e := 0; e < len(f.entries); {
		ov := f.objs[e*f.k : (e+1)*f.k]
		memberBetter, candidateBetter := false, false
		for j := 0; j < f.k; j++ {
			switch {
			case ov[j] < vals[j]:
				memberBetter = true
			case ov[j] > vals[j]:
				candidateBetter = true
			}
		}
		if memberBetter && !candidateBetter {
			return // dominated by a member
		}
		if candidateBetter && !memberBetter {
			// Candidate dominates the member: swap-delete (order is
			// restored by the merge sort).
			last := len(f.entries) - 1
			f.entries[e] = f.entries[last]
			f.entries = f.entries[:last]
			copy(f.objs[e*f.k:(e+1)*f.k], f.objs[last*f.k:(last+1)*f.k])
			f.objs = f.objs[:last*f.k]
			continue
		}
		e++
	}
	cp := *pt
	cp.Nodes = nil
	f.entries = append(f.entries, frontEntry{idx: idx, pt: cp})
	f.objs = append(f.objs, vals...)
}

// nodesFor decodes an output slot back into its per-chiplet node
// assignment, sharing the standard mixed-radix decode with the
// reference path so the two can never order nodes differently.
func (p *CompiledPlan) nodesFor(idx int) []int {
	return combo(idx, p.nodes, p.nc)
}

// blockScratch is one worker's reusable per-point state: the Gray-code
// odometer buffers, the reusable output point, and the kernel arena
// (packaging estimator with its retained floorplan tree, chiplet
// descriptors, operational-term memo). Scratches are pooled on the plan
// and survive across runs; folded records the floorplan counters
// already folded into the plan totals, so each release folds only the
// increment.
type blockScratch struct {
	digits []int // current Gray digits (indices into plan.nodes)
	std    []int // standard mixed-radix digits of the current index
	par    []int // parity of the standard value of the digits above i
	picked []int // reusable Point.Nodes buffer
	// rows is the current point's per-chiplet metric entries, gathered
	// from the table's SoA columns: five dense nc-length slices packed
	// in one backing array (mfg, design, NRE kg, die USD, NRE USD). A
	// block init fills every row; a Gray step refreshes only the changed
	// chiplet's five entries, and evalInto reduces the slices
	// sequentially in chiplet order — the same additions in the same
	// order as the old Cells walk, over memory that is contiguous
	// instead of strided through 8-field structs.
	rows                           []float64
	rowMfg, rowDes, rowNre, rowUSD []float64
	rowNREUSD                      []float64
	pt                             Point
	sc                             *kernel.Scratch
	// estValid reports that the kernel scratch's packaging estimator ran
	// on the previous point of the current walk, so a Gray step may take
	// the single-changed-chiplet delta path. Serving a point from the
	// per-point package memo skips the estimator and clears the flag:
	// the next miss must re-run the full estimate because the retained
	// floorplan no longer tracks the walk.
	estValid bool
	folded   floorplan.TreeStats
	// memoFolded is the point-memo snapshot already folded into the
	// plan totals (the PkgMemoStats twin of folded).
	memoFolded kernel.PkgMemoStats
}

// refreshRow regathers chiplet row i's five metric entries for node
// digit d from the table columns.
func (sc *blockScratch) refreshRow(c *kernel.Cols, i, d int) {
	k := i*c.Stride + d
	sc.rowMfg[i] = c.MfgKg[k]
	sc.rowDes[i] = c.DesignKg[k]
	sc.rowNre[i] = c.NREKg[k]
	sc.rowUSD[i] = c.DieUSD[k]
	sc.rowNREUSD[i] = c.NREUSD[d]
}

// getScratch takes a pooled worker scratch or builds a fresh one.
func (p *CompiledPlan) getScratch() (*blockScratch, error) {
	if v := p.scratches.Get(); v != nil {
		return v.(*blockScratch), nil
	}
	ksc, err := p.tbl.NewScratch()
	if err != nil {
		return nil, err
	}
	rows := make([]float64, 5*p.nc)
	return &blockScratch{
		digits:    make([]int, p.nc),
		std:       make([]int, p.nc),
		par:       make([]int, p.nc),
		picked:    make([]int, p.nc),
		rows:      rows,
		rowMfg:    rows[0*p.nc : 1*p.nc],
		rowDes:    rows[1*p.nc : 2*p.nc],
		rowNre:    rows[2*p.nc : 3*p.nc],
		rowUSD:    rows[3*p.nc : 4*p.nc],
		rowNREUSD: rows[4*p.nc : 5*p.nc],
		sc:        ksc,
	}, nil
}

// putScratch folds the scratch's new floorplan and point-memo work into
// the plan totals and returns it to the pool.
func (p *CompiledPlan) putScratch(sc *blockScratch) {
	if !p.monolith {
		cur := sc.sc.FloorplanStats()
		mem := sc.sc.PkgMemoStats()
		p.fpMu.Lock()
		p.fpTotals.Add(cur.Delta(sc.folded))
		p.pmTotals.Add(mem.Delta(sc.memoFolded))
		p.fpMu.Unlock()
		sc.folded, sc.memoFolded = cur, mem
	}
	p.scratches.Put(sc)
}

// walkBlock walks the Gray-code segment [lo, hi) of the combination
// sequence, streaming each evaluated point (and its output slot) to
// visit from a block-local scratch. Each Gray step names the single
// changed chiplet, and the packaging estimate for the point runs
// through the kernel scratch's delta path: the retained floorplan tree
// relayouts only that chiplet's dirty path instead of re-planning.
func (p *CompiledPlan) walkBlock(ctx context.Context, lo, hi int, visit func(idx int, pt *Point) error, tick func()) error {
	sc, err := p.getScratch()
	if err != nil {
		return err
	}
	defer p.putScratch(sc)

	p.grayInit(lo, sc)
	pkgCh := sc.sc.Chiplets()
	cols := p.tbl.Cols()
	out := 0
	for i, d := range sc.digits {
		out += d * p.weight[i]
		sc.refreshRow(cols, i, d)
		if !p.monolith {
			pkgCh[i] = pkgcarbon.Chiplet{Name: p.tbl.Names[i], AreaMM2: cols.AreaMM2[i*cols.Stride+d], Node: p.tbl.Cells[i][d].Node}
		}
	}
	p.blockInits.Add(1)
	steps := uint64(0)

	for k := lo; k < hi; k++ {
		// The first point of a block builds its full scratch state.
		changed := -1
		if k > lo {
			// Successive Gray codes differ in exactly one digit: refresh
			// only that chiplet's scratch state and output weight.
			j, old, d := p.grayStep(sc)
			out += (d - old) * p.weight[j]
			sc.refreshRow(cols, j, d)
			if !p.monolith {
				pkgCh[j].AreaMM2, pkgCh[j].Node = cols.AreaMM2[j*cols.Stride+d], p.tbl.Cells[j][d].Node
			}
			changed = j
			steps++
		}
		// Cancellation is polled every 64 points: a context check per
		// point was measurable against the delta-path evaluation cost.
		if (k-lo)&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := p.evalInto(sc, &sc.pt, changed, out); err != nil {
			return err
		}
		if err := visit(out, &sc.pt); err != nil {
			return err
		}
		tick()
	}
	p.graySteps.Add(steps)
	p.points.Add(uint64(hi - lo))
	return nil
}

// evalInto assembles one design point from the scratch's gathered row
// buffers into out. Per-chiplet contributions are reduced in chiplet
// order (see the file comment on why the totals are not running sums) as
// a sequential fold over the five dense row slices — the walk already
// gathered the current digits' entries from the table's SoA columns, so
// the fold's additions are the Cells walk's additions in the Cells
// walk's order, bit for bit. Whole-package terms come from the scratch
// estimator — through its single-changed-chiplet delta path when changed
// names the Gray step's chiplet (changed < 0 runs the full estimate) —
// and out.Nodes aliases the scratch's reusable buffer: callers that
// retain the point must copy it. pointIdx is the point's standard
// mixed-radix index, the key of the scratch's per-point package memo: a
// pooled scratch that has estimated this exact point on an earlier walk
// serves the package quadruple straight from the memo (the estimate is
// pure in the digit vector, so the served bits are the estimator's own
// prior output).
func (p *CompiledPlan) evalInto(sc *blockScratch, out *Point, changed, pointIdx int) error {
	t := p.tbl
	var mfgKg, desKg, nreKg, diesUSD, nreUSD float64
	rowDes := sc.rowDes[:len(sc.rowMfg)]
	rowNre := sc.rowNre[:len(sc.rowMfg)]
	rowUSD := sc.rowUSD[:len(sc.rowMfg)]
	rowNREUSD := sc.rowNREUSD[:len(sc.rowMfg)]
	for i, m := range sc.rowMfg {
		mfgKg += m
		desKg += rowDes[i]
		nreKg += rowNre[i]
		diesUSD += rowUSD[i]
		nreUSD += rowNREUSD[i]
	}

	var hiKg, area, powerW float64
	assemblyYield := 1.0
	if p.monolith {
		area = t.Cols().AreaMM2[sc.digits[0]]
	} else if v, ok := sc.sc.LoadPackagePoint(uint64(pointIdx), uint64(p.combos)); ok {
		hiKg, area, assemblyYield, powerW = v.HIKg, v.AreaMM2, v.AssemblyYield, v.RouterPowerW
		desKg += t.CommShare[sc.digits[0]]
		sc.estValid = false
	} else {
		var pkg *pkgcarbon.Result
		var err error
		if changed >= 0 && sc.estValid {
			pkg, err = sc.sc.EstimatePackageDelta(changed)
		} else {
			pkg, err = sc.sc.EstimatePackage()
		}
		if err != nil {
			return err
		}
		sc.estValid = true
		desKg += t.CommShare[sc.digits[0]]
		hiKg = pkg.TotalKg()
		area = pkg.PackageAreaMM2
		assemblyYield = pkg.AssemblyYield
		powerW = pkg.RouterTotalPowerW
		sc.sc.StorePackagePoint(uint64(pointIdx), uint64(p.combos),
			kernel.PkgPoint{HIKg: hiKg, AreaMM2: area, AssemblyYield: assemblyYield, RouterPowerW: powerW})
	}

	var opKg float64
	if t.HasOp {
		v, err := sc.sc.OperationKg(t.Base.Operation, powerW)
		if err != nil {
			return err
		}
		opKg = v
	}

	asmUSD, err := t.Asm.USD(area, assemblyYield)
	if err != nil {
		return err
	}

	for i, d := range sc.digits {
		sc.picked[i] = p.nodes[d]
	}
	embodied := mfgKg + desKg + hiKg + nreKg
	*out = Point{
		Nodes:          sc.picked,
		EmbodiedKg:     embodied,
		TotalKg:        embodied + opKg,
		CostUSD:        diesUSD + asmUSD + nreUSD,
		PackageAreaMM2: area,
	}
	return nil
}

// grayInit seeds the scratch's odometer at sequence index k: the
// standard mixed-radix digits (most significant first, uniform radix
// r), the parity of the standard value above each digit, and the
// reflected Gray digits. Digit i runs its 0..r-1 sweep forward or
// reflected depending on that parity, which makes consecutive codes
// differ in exactly one digit by ±1 while the map from k to codes stays
// a bijection onto the full factorial space.
func (p *CompiledPlan) grayInit(k int, sc *blockScratch) {
	b := 0 // standard value of the more significant digits (parity is what matters)
	for i := 0; i < p.nc; i++ {
		a := k / p.weight[i] % p.r
		sc.std[i] = a
		sc.par[i] = b & 1
		if b&1 == 0 {
			sc.digits[i] = a
		} else {
			sc.digits[i] = p.r - 1 - a
		}
		b = b*p.r + a
	}
}

// EvalPoint evaluates the single design point with the given
// per-chiplet node assignment (nodes[i] is chiplet i's node in nm; every
// entry must come from the plan's candidate set). It is the what-if
// primitive of the serving layer: a node-swap request against a warm
// plan inverts the Gray code to the point's sequence index and walks
// that one-point range, so the returned point carries the exact float
// bits of the same point in a full RunCtx — and a warm scratch serves
// the package term straight from the per-point memo, skipping the
// estimator entirely on repeat requests.
func (p *CompiledPlan) EvalPoint(ctx context.Context, nodes []int) (Point, error) {
	if len(nodes) != p.nc {
		return Point{}, fmt.Errorf("explore: EvalPoint got %d nodes for a %d-chiplet plan", len(nodes), p.nc)
	}
	// Invert grayInit: recover each chiplet's Gray digit (its index in
	// the candidate list), un-reflect it by the running parity into the
	// standard digit, and accumulate the sequence index.
	k, b := 0, 0
	for i, nm := range nodes {
		d := -1
		for j, cand := range p.nodes {
			if cand == nm {
				d = j
				break
			}
		}
		if d < 0 {
			return Point{}, fmt.Errorf("explore: EvalPoint node %dnm for chiplet %d is outside the plan's candidate set %v", nm, i, p.nodes)
		}
		a := d
		if b&1 == 1 {
			a = p.r - 1 - d
		}
		k += a * p.weight[i]
		b = b*p.r + a
	}
	var out Point
	err := p.WalkRange(ctx, k, k+1, func(idx int, pt *Point) error {
		out = *pt
		out.Nodes = append([]int(nil), pt.Nodes...)
		return nil
	})
	if err != nil {
		return Point{}, err
	}
	return out, nil
}

// grayStep advances the odometer one sequence index and returns the
// single changed Gray digit (its position, old and new value). The
// standard digits carry like a counter; the changed Gray position is
// where the carry chain ends, and only the parities below it need a
// refresh — amortized O(1) work per step, against the O(nc) div/mod
// decode of re-deriving the code from the index.
func (p *CompiledPlan) grayStep(sc *blockScratch) (j, old, d int) {
	j = p.nc - 1
	for sc.std[j] == p.r-1 {
		sc.std[j] = 0
		j--
	}
	sc.std[j]++
	// Digits above j are untouched, so par[0..j] stand; the zeroed
	// trailing digits' parities refresh from j+1 down. Their Gray
	// digits do not change (the reflection flips in step with the
	// parity — the Gray property), so only position j is reported.
	rodd := p.r & 1
	for i := j + 1; i < p.nc; i++ {
		sc.par[i] = (sc.par[i-1] & rodd) ^ (sc.std[i-1] & 1)
	}
	old = sc.digits[j]
	if sc.par[j] == 0 {
		d = sc.std[j]
	} else {
		d = p.r - 1 - sc.std[j]
	}
	sc.digits[j] = d
	return j, old, d
}

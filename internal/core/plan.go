package core

import (
	"fmt"

	"ecochip/internal/descarbon"
	"ecochip/internal/mfg"
	"ecochip/internal/tech"
)

// This file is the compile seam of the evaluation: the per-(chiplet,
// node) slice of an evaluation is factored into a DieCell so that batch
// engines can precompute a dense table of cells once and assemble whole
// design points from table lookups. Evaluate itself is built from the
// same cells (evaluateHI and evaluateMonolith below call CellFor and
// MonolithCell), so a compiled sweep and a one-off evaluation share
// every float operation and produce bit-identical results by
// construction. Like Hooks, the seam only exposes pure sub-computations;
// all policy (summation order, packaging, operation) stays in one place.

// DieCell bundles every evaluation invariant of one chiplet at one
// technology node: the area the node's scaling model assigns, the
// manufacturing result, the design carbon (total and amortized over the
// chiplet's volume), and the amortized mask-set NRE share (zero unless
// the system enables the NRE extension and the chiplet is not reused).
type DieCell struct {
	Node              *tech.Node
	AreaMM2           float64
	Yield             float64
	MfgKg             float64
	WastageKg         float64
	DesignKgTotal     float64
	DesignKgAmortized float64
	NREKg             float64
}

// CellFor computes the cell of one chiplet retargeted to nodeNm under
// this system's manufacturing/design/NRE configuration. The chiplet does
// not need to be a member of s.Chiplets (disaggregation probes merged
// chiplets that exist only as candidates).
func (s *System) CellFor(db *tech.DB, c Chiplet, nodeNm int, h *Hooks) (DieCell, error) {
	node := db.MustGet(nodeNm)
	areaMM2 := node.Area(c.Type, c.Transistors)
	m, err := h.die(node, c.Type, areaMM2, s.Mfg)
	if err != nil {
		return DieCell{}, fmt.Errorf("core: chiplet %q: %w", c.Name, err)
	}
	cell := DieCell{
		Node:      node,
		AreaMM2:   areaMM2,
		Yield:     m.Yield,
		MfgKg:     m.TotalKg(),
		WastageKg: m.WastageKg,
	}
	if c.Reused {
		return cell, nil
	}
	gates := descarbon.GatesFromTransistors(c.Transistors)
	desTotal, err := h.chipletKg(gates, node, s.Design)
	if err != nil {
		return DieCell{}, err
	}
	parts := c.ManufacturedParts
	if parts == 0 {
		parts = DefaultVolume
	}
	desAmort, err := descarbon.AmortizedKg(desTotal, parts)
	if err != nil {
		return DieCell{}, err
	}
	cell.DesignKgTotal = desTotal
	cell.DesignKgAmortized = desAmort
	if s.IncludeNRE {
		nre, err := mfg.AmortizedNREKg(node, parts, s.nreParams())
		if err != nil {
			return DieCell{}, err
		}
		cell.NREKg = nre
	}
	return cell, nil
}

// MonolithCell computes the merged-die cell of the whole system at
// nodeNm: block areas are summed (each block at its own density), yield
// applies to the merged area, design carbon covers the non-reused gates
// and amortizes over the system volume.
func (s *System) MonolithCell(db *tech.DB, nodeNm int, h *Hooks) (DieCell, error) {
	node := db.MustGet(nodeNm)
	var areaMM2, gates float64
	for _, c := range s.Chiplets {
		areaMM2 += node.Area(c.Type, c.Transistors)
		if !c.Reused {
			gates += descarbon.GatesFromTransistors(c.Transistors)
		}
	}
	m, err := h.die(node, tech.Logic, areaMM2, s.Mfg)
	if err != nil {
		return DieCell{}, err
	}
	desTotal, err := h.chipletKg(gates, node, s.Design)
	if err != nil {
		return DieCell{}, err
	}
	vol := s.volume()
	desAmort, err := descarbon.AmortizedKg(desTotal, vol)
	if err != nil {
		return DieCell{}, err
	}
	cell := DieCell{
		Node:              node,
		AreaMM2:           areaMM2,
		Yield:             m.Yield,
		MfgKg:             m.TotalKg(),
		WastageKg:         m.WastageKg,
		DesignKgTotal:     desTotal,
		DesignKgAmortized: desAmort,
	}
	if s.IncludeNRE {
		nre, err := mfg.AmortizedNREKg(node, vol, s.nreParams())
		if err != nil {
			return DieCell{}, err
		}
		cell.NREKg = nre
	}
	return cell, nil
}

// CommDesignShareKg returns the per-part design-carbon share of the
// inter-die communication fabric (routers / PHYs) when the fabric's host
// chiplet sits in nodeNm and the package holds chipletCount endpoints.
// The fabric is synthesized once per system design and amortizes over
// the system volume per Eq. (12).
func (s *System) CommDesignShareKg(db *tech.DB, nodeNm, chipletCount int, h *Hooks) (float64, error) {
	routerTr, err := routerTransistors(s.Packaging)
	if err != nil {
		return 0, err
	}
	gates := descarbon.GatesFromTransistors(routerTr * float64(chipletCount))
	commKg, err := h.chipletKg(gates, db.MustGet(nodeNm), s.Design)
	if err != nil {
		return 0, err
	}
	return commKg / float64(s.volume()), nil
}

// Volume returns N_S, the system manufacturing volume (DefaultVolume
// when unset) — the amortization base compiled sweep plans need.
func (s *System) Volume() int { return s.volume() }

package floorplan

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Tests of the name-keyed remove/insert diff: one retained Tree fed
// arbitrary block-set edits must stay bit-identical to the from-scratch
// planner, whatever mix of splices and fresh recursion it takes.

// mutateBlockSet applies a random remove/insert/rename/resize edit mix
// to a block set, returning the new caller-order list. nameSeq feeds
// fresh unique names for inserted blocks.
func mutateBlockSet(rng *rand.Rand, blocks []Block, nameSeq *int) []Block {
	out := append([]Block(nil), blocks...)
	// Remove up to 2 random blocks (keeping at least one).
	for k := rng.Intn(3); k > 0 && len(out) > 1; k-- {
		i := rng.Intn(len(out))
		out = append(out[:i], out[i+1:]...)
	}
	// Insert up to 2 fresh blocks at random positions.
	for k := rng.Intn(3); k > 0 && len(out) < 10; k-- {
		*nameSeq++
		b := Block{Name: fmt.Sprintf("n%d", *nameSeq), AreaMM2: 1 + rng.Float64()*200}
		if rng.Intn(4) == 0 {
			b.AspectRatio = 0.5 + rng.Float64()
		}
		i := rng.Intn(len(out) + 1)
		out = append(out[:i], append([]Block{b}, out[i:]...)...)
	}
	// Occasionally resize a survivor (a dirty leaf the diff cannot graft)
	// or force an area tie (the stable-sort tiebreak path).
	if len(out) > 0 && rng.Intn(2) == 0 {
		i := rng.Intn(len(out))
		if rng.Intn(3) == 0 && len(out) > 1 {
			out[i].AreaMM2 = out[(i+1)%len(out)].AreaMM2
		} else {
			out[i].AreaMM2 = 1 + rng.Float64()*200
		}
	}
	// Occasionally permute the caller order (same names, new positions).
	if rng.Intn(4) == 0 {
		rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	}
	return out
}

// Randomized parity: remove/insert sequences against the from-scratch
// planner, in both adjacency modes.
func TestTreeDiffMatchesScratchPlanRandomized(t *testing.T) {
	for _, needAdj := range []bool{true, false} {
		rng := rand.New(rand.NewSource(20260726))
		var tr Tree
		var sc Scratch
		nameSeq := 0
		blocks := randBlocks(rng)
		for trial := 0; trial < 400; trial++ {
			blocks = mutateBlockSet(rng, blocks, &nameSeq)
			var want, got *Result
			var errW, errG error
			if needAdj {
				want, errW = sc.Plan(blocks, 0.5)
				got, errG = tr.Plan(blocks, 0.5)
			} else {
				want, errW = sc.PlanNoAdjacencies(blocks, 0.5)
				got, errG = tr.PlanNoAdjacencies(blocks, 0.5)
			}
			if errW != nil || errG != nil {
				t.Fatalf("adj=%v trial %d: unexpected errors %v / %v", needAdj, trial, errW, errG)
			}
			resultsBitIdentical(t, fmt.Sprintf("adj=%v trial %d", needAdj, trial), want, got)
		}
		s := tr.Stats()
		if s.DiffFastPath == 0 {
			t.Errorf("adj=%v: randomized edit sequence never took the diff path: %+v", needAdj, s)
		}
		if s.Splices == 0 {
			t.Errorf("adj=%v: diff plans never spliced a retained subtree: %+v", needAdj, s)
		}
	}
}

// The Disaggregate candidate shape: every greedy candidate removes two
// survivors and appends their merged die. Each candidate plan must be
// bit-identical to a from-scratch plan and almost all must be served by
// the diff with splices.
func TestTreeDiffDisaggregateShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([]Block, 9)
	for i := range base {
		base[i] = Block{Name: fmt.Sprintf("blk%d", i), AreaMM2: 5 + rng.Float64()*120}
	}
	var tr Tree
	var sc Scratch
	if _, err := tr.PlanNoAdjacencies(base, 0.5); err != nil {
		t.Fatal(err)
	}
	plans := 0
	for i := 0; i < len(base); i++ {
		for j := i + 1; j < len(base); j++ {
			cand := make([]Block, 0, len(base)-1)
			for k, b := range base {
				if k != i && k != j {
					cand = append(cand, b)
				}
			}
			cand = append(cand, Block{
				Name:    base[i].Name + "+" + base[j].Name,
				AreaMM2: base[i].AreaMM2 + base[j].AreaMM2,
			})
			want, err := sc.PlanNoAdjacencies(cand, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tr.PlanNoAdjacencies(cand, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			resultsBitIdentical(t, fmt.Sprintf("candidate (%d,%d)", i, j), want, got)
			plans++
		}
	}
	s := tr.Stats()
	if s.DiffFastPath != uint64(plans) {
		t.Errorf("all %d candidate plans should be served by the diff: %+v", plans, s)
	}
	if s.Splices == 0 {
		t.Errorf("candidate plans should splice surviving subtrees: %+v", s)
	}
	if rate := s.ReuseRate(); rate < 0.5 {
		t.Errorf("candidate reuse rate %.2f below 0.5: %+v", rate, s)
	}
}

// ForkDims must reproduce the from-scratch bounding box of every merge
// candidate bit for bit, for every removed pair over random bases —
// without disturbing the retained plan (the base must still serve
// Unchanged after the forks).
func TestTreeForkDimsMatchesScratchPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	var sc Scratch
	for round := 0; round < 30; round++ {
		n := 2 + rng.Intn(8)
		base := make([]Block, n)
		for i := range base {
			base[i] = Block{Name: fmt.Sprintf("b%d", i), AreaMM2: 1 + rng.Float64()*200}
		}
		if n > 2 && rng.Intn(2) == 0 {
			base[n-1].AreaMM2 = base[0].AreaMM2 // exact tie
		}
		var tr Tree
		if _, err := tr.PlanDims(base, 0.5); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				merged := Block{
					Name:    base[i].Name + "+" + base[j].Name,
					AreaMM2: base[i].AreaMM2 + base[j].AreaMM2,
				}
				if rng.Intn(3) == 0 {
					merged.AreaMM2 = base[i].AreaMM2 // force sort ties with a survivor
				}
				cand := make([]Block, 0, n-1)
				for k, b := range base {
					if k != i && k != j {
						cand = append(cand, b)
					}
				}
				cand = append(cand, merged)
				want, err := sc.Plan(cand, 0.5)
				if err != nil {
					t.Fatal(err)
				}
				w, h, total, err := tr.ForkDims(i, j, merged)
				if err != nil {
					t.Fatal(err)
				}
				if math.Float64bits(w) != math.Float64bits(want.WidthMM) ||
					math.Float64bits(h) != math.Float64bits(want.HeightMM) ||
					math.Float64bits(total) != math.Float64bits(want.ChipletAreaMM2) {
					t.Fatalf("round %d fork (%d,%d): got %g x %g (%g), want %g x %g (%g)",
						round, i, j, w, h, total, want.WidthMM, want.HeightMM, want.ChipletAreaMM2)
				}
			}
		}
		// The retained base must be untouched by the forks.
		before := tr.Stats().Unchanged
		if _, err := tr.PlanDims(base, 0.5); err != nil {
			t.Fatal(err)
		}
		if got := tr.Stats().Unchanged; got != before+1 {
			t.Fatalf("round %d: forks disturbed the retained base: %+v", round, tr.Stats())
		}
	}
}

func TestTreeForkDimsErrors(t *testing.T) {
	var tr Tree
	if _, _, _, err := tr.ForkDims(0, 1, Block{Name: "x", AreaMM2: 5}); err == nil {
		t.Error("fork before Plan should fail")
	}
	base := []Block{{Name: "a", AreaMM2: 10}, {Name: "b", AreaMM2: 5}, {Name: "c", AreaMM2: 2}}
	if _, err := tr.PlanDims(base, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tr.ForkDims(0, 3, Block{Name: "x", AreaMM2: 5}); err == nil {
		t.Error("out-of-range removed index should fail")
	}
	if _, _, _, err := tr.ForkDims(1, 1, Block{Name: "x", AreaMM2: 5}); err == nil {
		t.Error("equal removed indices should fail")
	}
	if _, _, _, err := tr.ForkDims(0, 1, Block{Name: "x", AreaMM2: -5}); err == nil {
		t.Error("non-positive extra area should fail")
	}
}

// Adversarial shape changes the diff must decline (and still match): a
// fully disjoint name set, survivors that all changed area, and
// ambiguous (duplicate) retained names.
func TestTreeDiffForcedFallbacks(t *testing.T) {
	var tr Tree
	var sc Scratch
	a := []Block{{Name: "a", AreaMM2: 100}, {Name: "b", AreaMM2: 60}, {Name: "c", AreaMM2: 30}}
	if _, err := tr.Plan(a, 0.5); err != nil {
		t.Fatal(err)
	}

	// Disjoint names: no survivor, diff declines.
	b := []Block{{Name: "x", AreaMM2: 80}, {Name: "y", AreaMM2: 40}}
	want, _ := sc.Plan(b, 0.5)
	got, err := tr.Plan(b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "disjoint names", want, got)
	if s := tr.Stats(); s.DiffFallbacks != 1 {
		t.Errorf("disjoint name set should count a diff fallback: %+v", s)
	}

	// Same names but every area changed: no clean survivor.
	c := []Block{{Name: "x", AreaMM2: 70}, {Name: "y", AreaMM2: 50}, {Name: "z", AreaMM2: 20}}
	want, _ = sc.Plan(c, 0.5)
	if got, err = tr.Plan(c, 0.5); err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "all areas changed", want, got)
	if s := tr.Stats(); s.DiffFallbacks != 2 {
		t.Errorf("all-dirty survivor set should count a diff fallback: %+v", s)
	}

	// Duplicate names: the ordered matcher pairs them first-come — the
	// plan must stay bit-identical either way (a graft's correctness
	// rests on area/aspect equality, not the name).
	d := []Block{{Name: "d", AreaMM2: 90}, {Name: "d", AreaMM2: 45}}
	want, _ = sc.Plan(d, 0.5)
	if got, err = tr.Plan(d, 0.5); err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "duplicate names", want, got)
	e := []Block{{Name: "d", AreaMM2: 90}, {Name: "d", AreaMM2: 45}, {Name: "e", AreaMM2: 10}}
	want, _ = sc.Plan(e, 0.5)
	if got, err = tr.Plan(e, 0.5); err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "after duplicate names", want, got)

	// A clean survivor set after the adversarial run serves via the diff.
	f := []Block{{Name: "f", AreaMM2: 90}, {Name: "g", AreaMM2: 45}, {Name: "h", AreaMM2: 10}}
	if _, err = tr.Plan(f, 0.5); err != nil {
		t.Fatal(err)
	}
	before := tr.Stats().DiffFastPath
	g := append(f[:2:2], Block{Name: "i", AreaMM2: 25})
	want, _ = sc.Plan(g, 0.5)
	if got, err = tr.Plan(g, 0.5); err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "recovered diff", want, got)
	if s := tr.Stats(); s.DiffFastPath != before+1 {
		t.Errorf("clean survivors should serve through the diff: %+v", s)
	}
}

// An inserted block that lands on a removed block's exact rectangle must
// still refresh the adjacency names (the moved-leaf detection keys on
// names as well as coordinates).
func TestTreeDiffAdjacencyRenamedRectangle(t *testing.T) {
	var tr Tree
	var sc Scratch
	a := []Block{{Name: "a", AreaMM2: 100}, {Name: "b", AreaMM2: 60}, {Name: "c", AreaMM2: 30}}
	if _, err := tr.Plan(a, 0.5); err != nil {
		t.Fatal(err)
	}
	// Same geometry, one renamed block: placements identical except the
	// name, so a coordinate-only moved check would serve stale verdicts.
	b := []Block{{Name: "a", AreaMM2: 100}, {Name: "renamed", AreaMM2: 60}, {Name: "c", AreaMM2: 30}}
	want, err := sc.Plan(b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Plan(b, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "renamed rectangle", want, got)
	for _, adj := range got.Adjacencies {
		if adj.A == "b" || adj.B == "b" {
			t.Fatalf("stale adjacency name after rename: %+v", got.Adjacencies)
		}
	}
}

// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive benchmark runs as machine-readable
// artifacts (BENCH_<sha>.json) and the performance trajectory of the
// sweep hot path can be tracked per PR:
//
//	go test -run '^$' -bench 'NodeSweep' -benchmem -count=3 . | benchjson > BENCH_abc123.json
//
// Repeated -count runs of the same benchmark are kept as separate
// entries; downstream tooling picks its own aggregation.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Runs is the iteration count the timing was averaged over.
	Runs int64 `json:"runs"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	return rep, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   125   987654 ns/op   12345 B/op   123 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// A bench line always carries "<runs> <value> ns/op" right after the
	// name; anything else (e.g. a -v log line starting with "Benchmark")
	// is skipped.
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	name, procs := splitProcs(fields[0])
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || fields[3] != "ns/op" {
		return Result{}, false
	}
	res := Result{Name: name, Procs: procs, Runs: runs, NsPerOp: ns}
	// Optional -benchmem pairs: "<v> B/op" and "<v> allocs/op".
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = &v
		case "allocs/op":
			res.AllocsPerOp = &v
		}
	}
	return res, true
}

// splitProcs splits the -P GOMAXPROCS suffix off a benchmark name.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p < 1 {
		return name, 1
	}
	return name[:i], p
}

package core

import (
	"testing"

	"ecochip/internal/cost"
)

func defaultCostParams() cost.Params { return cost.DefaultParams() }

func TestACTEmbodiedErrors(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	s.Chiplets[0].Transistors = 0
	if _, err := s.ACTEmbodiedKg(db()); err == nil {
		t.Error("invalid system should fail ACT comparison")
	}
}

func TestCostUSDErrors(t *testing.T) {
	s := threeChiplet(7, 14, 10)
	s.Chiplets[0].Transistors = 0
	if _, err := s.CostUSD(db(), defaultCostParams()); err == nil {
		t.Error("invalid system should fail cost estimation")
	}
}

// The dollar-cost trend must mirror the carbon trend across node tuples
// (Fig. 15a vs Fig. 7): the mixed tuple beats the all-advanced tuple.
func TestCostTrendMirrorsCarbon(t *testing.T) {
	mixed, err := threeChiplet(7, 14, 10).CostUSD(db(), defaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	allAdvanced, err := threeChiplet(7, 7, 7).CostUSD(db(), defaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if mixed.DiesUSD >= allAdvanced.DiesUSD {
		t.Errorf("mixed-node die cost $%.2f should beat all-7nm $%.2f",
			mixed.DiesUSD, allAdvanced.DiesUSD)
	}
}

// Package sensitivity performs one-at-a-time (tornado) sensitivity
// analysis of a system's total carbon with respect to the key model
// inputs — the generalization of the paper's Fig. 6(b) defect-density
// study. Each factor is scaled down and up by a relative amount (with
// Table I clamping) while everything else is held at its base value, and
// the swing in C_tot ranks the factors.
//
// Evaluation runs on a compiled parameter plan (kernel.ParamPlan): the
// base point is tabulated once, and each factor-side evaluation
// recomputes only the sub-models its declared dirty set invalidates —
// the defect-density sides re-run die manufacturing and the packaging
// communication cells but reuse the design carbon and floorplan, the
// lifetime sides touch nothing but the operational term, and so on. The
// results are bit-identical to the per-evaluation reference path
// (TornadoReference), which the randomized parity test enforces.
package sensitivity

import (
	"context"
	"fmt"
	"sort"

	"ecochip/internal/core"
	"ecochip/internal/engine"
	"ecochip/internal/kernel"
	"ecochip/internal/tech"
)

// Result is the C_tot response of one factor.
type Result struct {
	// Factor names the perturbed input.
	Factor string
	// BaseKg, LowKg, HighKg are C_tot at the base, scaled-down and
	// scaled-up factor values.
	BaseKg, LowKg, HighKg float64
}

// Swing is the absolute C_tot range the factor commands.
func (r Result) Swing() float64 {
	lo, hi := r.LowKg, r.HighKg
	if lo > hi {
		lo, hi = hi, lo
	}
	return hi - lo
}

// factor applies a scale (e.g. 0.8 or 1.2) to one input of a
// (system, db) pair, returning the perturbed pair. dirty declares which
// parameter groups apply touches, so the compiled plan recomputes
// exactly the sub-models the perturbation can reach (the randomized
// parity test against the reference path guards the declaration).
type factor struct {
	name  string
	dirty kernel.Dirty
	apply func(s core.System, db *tech.DB, scale float64) (*core.System, *tech.DB, error)
}

func factors() []factor {
	return []factor{
		{"defect density D0", kernel.DirtyNodes, func(s core.System, db *tech.DB, scale float64) (*core.System, *tech.DB, error) {
			db2, err := db.Clone(func(n *tech.Node) {
				n.DefectDensity = tech.Clamp(n.DefectDensity*scale, 0.07, 0.3)
			})
			return &s, db2, err
		}},
		{"manufacturing energy EPA", kernel.DirtyNodes, func(s core.System, db *tech.DB, scale float64) (*core.System, *tech.DB, error) {
			db2, err := db.Clone(func(n *tech.Node) {
				n.EPA = tech.Clamp(n.EPA*scale, 0.8, 3.5)
			})
			return &s, db2, err
		}},
		{"fab carbon intensity", kernel.DirtyMfg | kernel.DirtyPackaging, func(s core.System, db *tech.DB, scale float64) (*core.System, *tech.DB, error) {
			s.Mfg.CarbonIntensity = tech.Clamp(s.Mfg.CarbonIntensity*scale, 0.030, 0.700)
			s.Packaging.CarbonIntensity = tech.Clamp(s.Packaging.CarbonIntensity*scale, 0.030, 0.700)
			return &s, db, nil
		}},
		{"design iterations N_des", kernel.DirtyDesign, func(s core.System, db *tech.DB, scale float64) (*core.System, *tech.DB, error) {
			iters := int(float64(s.Design.Iterations)*scale + 0.5)
			if iters < 1 {
				iters = 1
			}
			s.Design.Iterations = iters
			return &s, db, nil
		}},
		{"use-phase carbon intensity", kernel.DirtyOperation, func(s core.System, db *tech.DB, scale float64) (*core.System, *tech.DB, error) {
			if s.Operation == nil {
				return &s, db, nil
			}
			op := *s.Operation
			op.CarbonIntensity = tech.Clamp(op.CarbonIntensity*scale, 0.030, 0.700)
			s.Operation = &op
			return &s, db, nil
		}},
		{"lifetime", kernel.DirtyOperation, func(s core.System, db *tech.DB, scale float64) (*core.System, *tech.DB, error) {
			if s.Operation == nil {
				return &s, db, nil
			}
			op := *s.Operation
			op.LifetimeYears = op.LifetimeYears * scale
			s.Operation = &op
			return &s, db, nil
		}},
		{"manufacturing volume", kernel.DirtyVolume, func(s core.System, db *tech.DB, scale float64) (*core.System, *tech.DB, error) {
			vol := s.SystemVolume
			if vol == 0 {
				vol = core.DefaultVolume
			}
			scaled := int(float64(vol) * scale)
			if scaled < 1 {
				scaled = 1
			}
			s.SystemVolume = scaled
			chiplets := make([]core.Chiplet, len(s.Chiplets))
			copy(chiplets, s.Chiplets)
			for i := range chiplets {
				parts := chiplets[i].ManufacturedParts
				if parts == 0 {
					parts = core.DefaultVolume
				}
				p := int(float64(parts) * scale)
				if p < 1 {
					p = 1
				}
				chiplets[i].ManufacturedParts = p
			}
			s.Chiplets = chiplets
			return &s, db, nil
		}},
	}
}

// Tornado perturbs each factor by ±rel (e.g. 0.25 for ±25%) and returns
// the results sorted by descending swing.
func Tornado(base *core.System, db *tech.DB, rel float64) ([]Result, error) {
	return TornadoCtx(context.Background(), base, db, rel)
}

// TornadoCtx is Tornado with cancellation and engine options. It runs on
// a compiled parameter plan and is bit-identical to TornadoReference.
func TornadoCtx(ctx context.Context, base *core.System, db *tech.DB, rel float64, opts ...engine.Option) ([]Result, error) {
	results, _, err := TornadoPlanned(ctx, base, db, rel, opts...)
	return results, err
}

// TornadoPlanned is TornadoCtx also returning the compiled parameter
// plan the analysis ran on, so callers can surface plan statistics.
func TornadoPlanned(ctx context.Context, base *core.System, db *tech.DB, rel float64, opts ...engine.Option) ([]Result, *kernel.ParamPlan, error) {
	if rel <= 0 || rel >= 1 {
		return nil, nil, fmt.Errorf("sensitivity: relative perturbation %g outside (0, 1)", rel)
	}
	plan, err := kernel.CompileParams(base, db)
	if err != nil {
		return nil, nil, err
	}
	fs := factors()
	// Task 0 is the base point; tasks 1+2k and 2+2k are factor k's low
	// and high perturbations. The fan-out runs on the plan's own batch
	// runner, which owns the per-worker scratch reuse.
	totals, err := plan.Walk(ctx, 1+2*len(fs),
		func(i int, _ *kernel.Scratch) (*core.System, *tech.DB, kernel.Dirty, error) {
			if i == 0 {
				return base, db, 0, nil
			}
			f := fs[(i-1)/2]
			scale := 1 - rel
			side := "low"
			if (i-1)%2 == 1 {
				scale = 1 + rel
				side = "high"
			}
			s, db2, err := f.apply(*base, db, scale)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("sensitivity: factor %q %s: %w", f.name, side, err)
			}
			return s, db2, f.dirty, nil
		}, opts...)
	if err != nil {
		return nil, nil, err
	}
	kgs := make([]float64, len(totals))
	for i, t := range totals {
		kgs[i] = t.TotalKg()
	}
	return assemble(fs, kgs), plan, nil
}

// TornadoReference is the uncompiled tornado: the base point and both
// perturbed points of every factor (2F+1 evaluations) fan out across the
// batch engine, each as a full EvaluateWith through the engine's memo
// cache. It is the oracle the compiled path is tested against and the
// baseline its speedup is measured against.
func TornadoReference(ctx context.Context, base *core.System, db *tech.DB, rel float64, opts ...engine.Option) ([]Result, error) {
	if rel <= 0 || rel >= 1 {
		return nil, fmt.Errorf("sensitivity: relative perturbation %g outside (0, 1)", rel)
	}
	fs := factors()
	kgs, err := engine.Run(ctx, 1+2*len(fs), func(_ context.Context, i int, h *core.Hooks) (float64, error) {
		if i == 0 {
			rep, err := base.EvaluateWith(db, h)
			if err != nil {
				return 0, err
			}
			return rep.TotalKg(), nil
		}
		f := fs[(i-1)/2]
		scale := 1 - rel
		side := "low"
		if (i-1)%2 == 1 {
			scale = 1 + rel
			side = "high"
		}
		kg, err := evalScaled(base, db, f, scale, h)
		if err != nil {
			return 0, fmt.Errorf("sensitivity: factor %q %s: %w", f.name, side, err)
		}
		return kg, nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	return assemble(fs, kgs), nil
}

// assemble pairs the task results back into per-factor rows sorted by
// descending swing (shared by both evaluation paths so the output shape
// cannot diverge).
func assemble(fs []factor, kgs []float64) []Result {
	baseKg := kgs[0]
	results := make([]Result, len(fs))
	for k, f := range fs {
		results[k] = Result{Factor: f.name, BaseKg: baseKg, LowKg: kgs[1+2*k], HighKg: kgs[2+2*k]}
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].Swing() > results[j].Swing() })
	return results
}

func evalScaled(base *core.System, db *tech.DB, f factor, scale float64, h *core.Hooks) (float64, error) {
	s, db2, err := f.apply(*base, db, scale)
	if err != nil {
		return 0, err
	}
	rep, err := s.EvaluateWith(db2, h)
	if err != nil {
		return 0, err
	}
	return rep.TotalKg(), nil
}

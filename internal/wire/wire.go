// Package wire is the binary frame format of the shard network
// transport: the compact, allocation-free encoding that carries the
// lease protocol (shard.Lease grants, shard.BlockResult streams, plan
// registrations) over a socket.
//
// Design rules, in order:
//
//   - Bit-identity by construction. Every float crosses the wire as the
//     8 fixed little-endian bytes of math.Float64bits, so a decoded
//     point carries the exact bits the replica computed — the shard
//     layer's Float64bits parity contract survives the network hop
//     without any "close enough" parsing.
//   - Cheap frames. Varint headers and varint integer fields keep the
//     common frame (one 16-point block result) in the hundreds of
//     bytes; encode appends into a caller-owned buffer and decode reads
//     in place, reusing the destination's slice capacity, so the steady
//     state allocates nothing per frame (an alloc-bound test pins
//     this). sync.Pool-backed scratch buffers (GetBuffer/PutBuffer)
//     let concurrent lease goroutines encode without contending on a
//     shared buffer.
//   - Hostile input is survivable. Decode never panics: every read is
//     bounds-checked, declared element counts are validated against the
//     remaining payload before allocation, and frame lengths are capped
//     (MaxFrame), so a truncated, corrupt or adversarial peer produces
//     a typed error, not a crash or an OOM (the fuzz suite holds this
//     line).
//
// A frame is
//
//	uvarint(len(body)) || body
//	body := msgType(1 byte) || uvarint(leaseID) || payload
//
// where leaseID scopes result/done/error/cancel frames to the lease
// (or register exchange) they answer. Payload layouts live beside
// their Append/Decode pairs below.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"ecochip/internal/explore"
	"ecochip/internal/shard"
)

// ProtoVersion is the handshake version; both ends of a connection
// must agree (MsgHello exchange) before any lease traffic. Version 2
// added ping/pong liveness frames and the auth token field of the
// register payload.
const ProtoVersion = 2

// MaxFrame caps a frame's body length. A peer announcing a longer
// frame is corrupt or hostile; the connection is torn down instead of
// allocating the claim. 64 MiB comfortably covers the largest legal
// block result (a full-point block of a MaxCombinations plan).
const MaxFrame = 64 << 20

// Msg is the frame type tag.
type Msg byte

const (
	// MsgHello opens a connection: payload is uvarint(ProtoVersion).
	// Client sends first; server echoes (its own version) as the ack.
	MsgHello Msg = 1 + iota
	// MsgRegister ships a plan's content (Registration) so the replica
	// can compile it locally and derive the content key itself.
	MsgRegister
	// MsgRegistered acks a register: payload is the replica's locally
	// derived key string — the client checks it against its own, so
	// db-version skew surfaces as a typed error, not silent divergence.
	MsgRegistered
	// MsgLease grants a block span (shard.Lease payload).
	MsgLease
	// MsgBlockResult streams one completed block (shard.BlockResult).
	MsgBlockResult
	// MsgLeaseDone reports a lease's span fully emitted (no payload).
	MsgLeaseDone
	// MsgLeaseError fails a lease: payload is code byte + message.
	MsgLeaseError
	// MsgCancel asks the replica to stop a lease (no payload); sent on
	// coordinator-side expiry so the replica stops burning cycles.
	MsgCancel
	// MsgPing probes a connection's liveness (no payload); clients send
	// it on idle connections so a silently dead peer is detected before
	// the next lease pays for the discovery.
	MsgPing
	// MsgPong answers a ping: payload is a uvarint flag word
	// (PongDraining marks a replica in graceful drain, so the
	// coordinator stops leasing to it before the first refusal).
	MsgPong
)

// Pong flag bits.
const (
	// PongDraining marks the replica as draining: it answers pings and
	// finishes in-flight leases but refuses new ones.
	PongDraining uint64 = 1 << 0
)

// ErrCode classifies a MsgLeaseError so typed shard errors survive the
// wire.
type ErrCode byte

const (
	// CodeGeneric is any unclassified replica-side failure (transient).
	CodeGeneric ErrCode = iota
	// CodePlanUnknown maps shard.ErrPlanUnknown.
	CodePlanUnknown
	// CodeLeaseMismatch maps shard.ErrLeaseMismatch.
	CodeLeaseMismatch
	// CodeReplicaDown maps shard.ErrReplicaDown.
	CodeReplicaDown
	// CodeShuttingDown reports a draining replica that refuses new
	// leases; the coordinator treats it as transient and re-leases
	// elsewhere.
	CodeShuttingDown
	// CodeAuthFailed reports a register frame whose auth token the
	// replica rejected — a configuration failure distinct from db skew
	// (which surfaces as a key mismatch on a successful register).
	CodeAuthFailed
)

// ErrTruncated reports a payload that ended before its declared
// content.
var ErrTruncated = errors.New("wire: truncated payload")

// ErrCorrupt reports a structurally invalid payload (bad counts,
// overflowing varints, impossible lengths).
var ErrCorrupt = errors.New("wire: corrupt payload")

// Registration is the content of one sweep plan, shipped once per
// (connection, plan) so a remote replica can compile locally: the
// canonical JSON of the system and cost parameters plus the candidate
// node list. The replica derives the plan key from this content and
// its own tech database — the key is never trusted off the wire, so
// two parties that agree on a key agree on the compiled bits.
type Registration struct {
	// Key is the sender's derived plan key (advisory; the receiver
	// re-derives and echoes its own).
	Key string
	// System is the JSON encoding of the core.System.
	System []byte
	// Nodes is the candidate node list.
	Nodes []int
	// Cost is the JSON encoding of the cost.Params.
	Cost []byte
	// Token is the shared-secret credential of the replica port (empty
	// when the deployment runs unauthenticated). It is connection
	// metadata, not plan content: the key derivation never sees it.
	Token string
}

// --- append-side primitives -------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// --- decode-side primitives -------------------------------------------------

// dec is a bounds-checked cursor over one payload. All reads return an
// error instead of panicking on truncation or corruption.
type dec struct {
	p   []byte
	off int
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.p[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: overlong varint", ErrCorrupt)
	}
	d.off += n
	return v, nil
}

// length reads a count/length field and validates it against the
// remaining payload assuming each element occupies at least minBytes —
// the guard that keeps a corrupt header from provoking a giant
// allocation.
func (d *dec) length(minBytes int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.p)-d.off)/uint64(minBytes) {
		return 0, fmt.Errorf("%w: %d elements declared with %d bytes left", ErrCorrupt, v, len(d.p)-d.off)
	}
	return int(v), nil
}

func (d *dec) intField() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64/2 {
		return 0, fmt.Errorf("%w: integer field %d out of range", ErrCorrupt, v)
	}
	return int(v), nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.p[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: overlong varint", ErrCorrupt)
	}
	d.off += n
	return v, nil
}

func (d *dec) byte() (byte, error) {
	if d.off >= len(d.p) {
		return 0, ErrTruncated
	}
	b := d.p[d.off]
	d.off++
	return b, nil
}

func (d *dec) float() (float64, error) {
	if d.off+8 > len(d.p) {
		return 0, ErrTruncated
	}
	bits := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	return math.Float64frombits(bits), nil
}

func (d *dec) stringField() (string, error) {
	n, err := d.length(1)
	if err != nil {
		return "", err
	}
	s := string(d.p[d.off : d.off+n])
	d.off += n
	return s, nil
}

// stringView returns the raw bytes of a string field, valid only while
// the payload buffer is.
func (d *dec) stringView() ([]byte, error) {
	n, err := d.length(1)
	if err != nil {
		return nil, err
	}
	b := d.p[d.off : d.off+n]
	d.off += n
	return b, nil
}

// bytesField returns a copy (payload buffers are reused across frames).
func (d *dec) bytesField() ([]byte, error) {
	n, err := d.length(1)
	if err != nil {
		return nil, err
	}
	b := append([]byte(nil), d.p[d.off:d.off+n]...)
	d.off += n
	return b, nil
}

func (d *dec) finish() error {
	if d.off != len(d.p) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.p)-d.off)
	}
	return nil
}

// --- Lease ------------------------------------------------------------------

// AppendLease appends the lease payload:
//
//	key(string) seq lo span blockSize planPoints mode(1) nobj obj... deadline(varint unixnano)
func AppendLease(dst []byte, l *shard.Lease) []byte {
	dst = appendString(dst, l.Key)
	dst = appendUvarint(dst, l.Seq)
	dst = appendUvarint(dst, uint64(l.Blocks.Lo))
	dst = appendUvarint(dst, uint64(l.Blocks.Len()))
	dst = appendUvarint(dst, uint64(l.BlockSize))
	dst = appendUvarint(dst, uint64(l.PlanPoints))
	dst = append(dst, byte(l.Mode))
	dst = appendUvarint(dst, uint64(len(l.Objectives)))
	for _, o := range l.Objectives {
		dst = append(dst, byte(o))
	}
	var ns int64
	if !l.Deadline.IsZero() {
		ns = l.Deadline.UnixNano()
	}
	dst = binary.AppendVarint(dst, ns)
	return dst
}

// DecodeLease parses a lease payload into l, reusing l.Objectives'
// capacity. The deadline round-trips at nanosecond resolution (zero
// stays zero); monotonic clock readings do not cross the wire, which
// is correct — the deadline is advisory on the replica side.
func DecodeLease(p []byte, l *shard.Lease) error {
	d := dec{p: p}
	key, err := d.stringView()
	if err != nil {
		return err
	}
	// A connection re-decodes the same plan key lease after lease;
	// keeping the retained string when the bytes match makes the steady
	// state allocation-free (the == comparison does not materialize a
	// string).
	if string(key) != l.Key {
		l.Key = string(key)
	}
	if l.Seq, err = d.uvarint(); err != nil {
		return err
	}
	lo, err := d.intField()
	if err != nil {
		return err
	}
	span, err := d.intField()
	if err != nil {
		return err
	}
	l.Blocks = shard.BlockRange{Lo: lo, Hi: lo + span}
	if l.BlockSize, err = d.intField(); err != nil {
		return err
	}
	if l.PlanPoints, err = d.intField(); err != nil {
		return err
	}
	mode, err := d.byte()
	if err != nil {
		return err
	}
	l.Mode = shard.Mode(mode)
	nobj, err := d.length(1)
	if err != nil {
		return err
	}
	if cap(l.Objectives) >= nobj {
		l.Objectives = l.Objectives[:nobj]
	} else {
		l.Objectives = make([]shard.Objective, nobj)
	}
	for i := 0; i < nobj; i++ {
		b, err := d.byte()
		if err != nil {
			return err
		}
		l.Objectives[i] = shard.Objective(b)
	}
	ns, err := d.varint()
	if err != nil {
		return err
	}
	l.Deadline = unixNano(ns)
	return d.finish()
}

// --- BlockResult ------------------------------------------------------------

// AppendBlockResult appends the block-result payload:
//
//	seq block n slots[n] points[n]
//	point := nnodes nodes... EmbodiedKg TotalKg CostUSD PackageAreaMM2 (4×8B Float64bits LE)
func AppendBlockResult(dst []byte, r *shard.BlockResult) []byte {
	dst = appendUvarint(dst, r.Seq)
	dst = appendUvarint(dst, uint64(r.Block))
	dst = appendUvarint(dst, uint64(len(r.Slots)))
	for _, s := range r.Slots {
		dst = appendUvarint(dst, uint64(s))
	}
	for i := range r.Points {
		pt := &r.Points[i]
		dst = appendUvarint(dst, uint64(len(pt.Nodes)))
		for _, n := range pt.Nodes {
			dst = appendUvarint(dst, uint64(n))
		}
		dst = appendFloat(dst, pt.EmbodiedKg)
		dst = appendFloat(dst, pt.TotalKg)
		dst = appendFloat(dst, pt.CostUSD)
		dst = appendFloat(dst, pt.PackageAreaMM2)
	}
	return dst
}

// minPointBytes is the least a legal encoded point occupies: one
// nodes-count byte plus the four fixed floats.
const minPointBytes = 1 + 4*8

// DecodeBlockResult parses a block-result payload into r, reusing the
// capacity of r.Slots, r.Points and each point's Nodes slice — decode
// into the same destination every frame and the steady state allocates
// nothing. Callers that hand the result's slices to an owner (the
// coordinator sink keeps them) must decode into a fresh destination
// instead; the ownership trade is theirs to make.
func DecodeBlockResult(p []byte, r *shard.BlockResult) error {
	d := dec{p: p}
	var err error
	if r.Seq, err = d.uvarint(); err != nil {
		return err
	}
	if r.Block, err = d.intField(); err != nil {
		return err
	}
	n, err := d.length(1 + minPointBytes)
	if err != nil {
		return err
	}
	if cap(r.Slots) >= n {
		r.Slots = r.Slots[:n]
	} else {
		r.Slots = make([]int, n)
	}
	for i := 0; i < n; i++ {
		if r.Slots[i], err = d.intField(); err != nil {
			return err
		}
	}
	if cap(r.Points) >= n {
		r.Points = r.Points[:n]
	} else {
		r.Points = make([]explore.Point, n)
	}
	// Node slices that cannot reuse their destination's capacity are
	// carved from one shared arena (full slice expressions, so later
	// growth of one slice cannot clobber its neighbor): a fresh-decode
	// block costs one allocation for all its node lists, not one per
	// point.
	var arena []int
	for i := 0; i < n; i++ {
		pt := &r.Points[i]
		nn, err := d.length(1)
		if err != nil {
			return err
		}
		if cap(pt.Nodes) >= nn {
			pt.Nodes = pt.Nodes[:nn]
		} else {
			if len(arena)+nn > cap(arena) {
				// The capacity hint nn*(n-i) assumes every remaining
				// point is this large — but both counts came off the
				// wire, so bound the hint by the bytes actually left in
				// the payload (each encoded node occupies ≥1 byte). A
				// corrupt or hostile frame can then cost at most one
				// frame-sized allocation, never a multiplied-counts OOM.
				hint := len(d.p) - d.off
				if est := nn * (n - i); est >= nn && est < hint {
					hint = est
				}
				arena = make([]int, 0, hint)
			}
			pt.Nodes = arena[len(arena) : len(arena)+nn : len(arena)+nn]
			arena = arena[:len(arena)+nn]
		}
		for j := 0; j < nn; j++ {
			if pt.Nodes[j], err = d.intField(); err != nil {
				return err
			}
		}
		if pt.EmbodiedKg, err = d.float(); err != nil {
			return err
		}
		if pt.TotalKg, err = d.float(); err != nil {
			return err
		}
		if pt.CostUSD, err = d.float(); err != nil {
			return err
		}
		if pt.PackageAreaMM2, err = d.float(); err != nil {
			return err
		}
	}
	return d.finish()
}

// --- Registration -----------------------------------------------------------

// AppendRegistration appends the register payload:
//
//	key(string) system(bytes) ncount nodes... cost(bytes) token(string)
func AppendRegistration(dst []byte, reg *Registration) []byte {
	dst = appendString(dst, reg.Key)
	dst = appendBytes(dst, reg.System)
	dst = appendUvarint(dst, uint64(len(reg.Nodes)))
	for _, n := range reg.Nodes {
		dst = appendUvarint(dst, uint64(n))
	}
	dst = appendBytes(dst, reg.Cost)
	dst = appendString(dst, reg.Token)
	return dst
}

// DecodeRegistration parses a register payload. The JSON blobs are
// copied out of the frame buffer (registration is a cold path; the
// catalog retains them past the frame's lifetime).
func DecodeRegistration(p []byte) (Registration, error) {
	d := dec{p: p}
	var reg Registration
	var err error
	if reg.Key, err = d.stringField(); err != nil {
		return Registration{}, err
	}
	if reg.System, err = d.bytesField(); err != nil {
		return Registration{}, err
	}
	n, err := d.length(1)
	if err != nil {
		return Registration{}, err
	}
	reg.Nodes = make([]int, n)
	for i := 0; i < n; i++ {
		if reg.Nodes[i], err = d.intField(); err != nil {
			return Registration{}, err
		}
	}
	if reg.Cost, err = d.bytesField(); err != nil {
		return Registration{}, err
	}
	if reg.Token, err = d.stringField(); err != nil {
		return Registration{}, err
	}
	if err := d.finish(); err != nil {
		return Registration{}, err
	}
	return reg, nil
}

// --- small payloads ---------------------------------------------------------

// AppendError appends a lease-error payload: code byte + message.
func AppendError(dst []byte, code ErrCode, msg string) []byte {
	dst = append(dst, byte(code))
	return appendString(dst, msg)
}

// DecodeError parses a lease-error payload.
func DecodeError(p []byte) (ErrCode, string, error) {
	d := dec{p: p}
	c, err := d.byte()
	if err != nil {
		return 0, "", err
	}
	msg, err := d.stringField()
	if err != nil {
		return 0, "", err
	}
	return ErrCode(c), msg, d.finish()
}

// AppendString / DecodeString carry bare-string payloads
// (MsgRegistered's echoed key).
func AppendString(dst []byte, s string) []byte { return appendString(dst, s) }

// DecodeString parses a bare-string payload.
func DecodeString(p []byte) (string, error) {
	d := dec{p: p}
	s, err := d.stringField()
	if err != nil {
		return "", err
	}
	return s, d.finish()
}

// AppendPong appends a pong payload: the uvarint flag word (see
// PongDraining). A ping carries no payload at all.
func AppendPong(dst []byte, flags uint64) []byte { return appendUvarint(dst, flags) }

// DecodePong parses a pong payload back into its flag word.
func DecodePong(p []byte) (uint64, error) { return DecodeUvarint(p) }

// AppendUvarint / DecodeUvarint carry bare-integer payloads
// (MsgHello's version).
func AppendUvarint(dst []byte, v uint64) []byte { return appendUvarint(dst, v) }

// DecodeUvarint parses a bare-uvarint payload.
func DecodeUvarint(p []byte) (uint64, error) {
	d := dec{p: p}
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return v, d.finish()
}

// --- pooled scratch buffers -------------------------------------------------

// bufPool recycles encode scratch across lease goroutines. Buffers
// that ballooned past the retention cap are dropped instead of pinned.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4<<10); return &b }}

// maxPooledBuf caps the capacity a returned buffer may retain.
const maxPooledBuf = 1 << 20

// GetBuffer leases a zero-length scratch buffer from the pool.
func GetBuffer() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuffer returns a scratch buffer to the pool.
func PutBuffer(b *[]byte) {
	if cap(*b) > maxPooledBuf {
		return
	}
	bufPool.Put(b)
}

// unixNano converts a wire nanosecond stamp back to a time; zero stays
// the zero time.
func unixNano(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

package ecochip

// Facade coverage of compiled sweep plans: CompileNodeSweep /
// SweepPlan.RunCtx must agree bit for bit with NodeSweepReference, and
// NodeSweepCtx must route through the compiled path transparently.

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestFacadeCompiledSweepMatchesReference(t *testing.T) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	nodes := []int{7, 10, 14}
	cp := DefaultCostParams()

	want, err := NodeSweepReference(context.Background(), base, db, nodes, cp)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileNodeSweep(base, db, nodes, cp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.RunCtx(context.Background(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label() != want[i].Label() ||
			math.Float64bits(got[i].EmbodiedKg) != math.Float64bits(want[i].EmbodiedKg) ||
			math.Float64bits(got[i].TotalKg) != math.Float64bits(want[i].TotalKg) ||
			math.Float64bits(got[i].CostUSD) != math.Float64bits(want[i].CostUSD) ||
			math.Float64bits(got[i].PackageAreaMM2) != math.Float64bits(want[i].PackageAreaMM2) {
			t.Fatalf("point %d differs\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
	if s := plan.Stats(); s.Points != uint64(len(want)) {
		t.Errorf("plan stats report %d points, want %d", s.Points, len(want))
	}
}

func TestFacadeErrNoSweepFastPath(t *testing.T) {
	db := DefaultDB()
	mono := GA102(db, 7, 7, 7, true)
	_, err := CompileNodeSweep(mono, db, []int{7}, DefaultCostParams())
	if !errors.Is(err, ErrNoSweepFastPath) {
		t.Fatalf("CompileNodeSweep(monolith) = %v, want ErrNoSweepFastPath", err)
	}
	// The plain sweep entry point still works via the reference fallback.
	points, err := NodeSweep(mono, db, []int{7}, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("%d points, want 1", len(points))
	}
}

func TestFacadeSweepPlanParetoFront(t *testing.T) {
	db := DefaultDB()
	base := GA102(db, 7, 14, 10, false)
	nodes := []int{7, 10, 14}
	plan, err := CompileNodeSweep(base, db, nodes, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	front, total, err := plan.ParetoFrontCtx(context.Background(),
		[]SweepMetric{SweepByEmbodied, SweepByCost}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if total != 27 {
		t.Fatalf("total = %d, want 27", total)
	}
	points, err := NodeSweep(base, db, nodes, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	want := ParetoFront(points, SweepByEmbodied, SweepByCost)
	if len(front) != len(want) {
		t.Fatalf("front size %d, want %d", len(front), len(want))
	}
}

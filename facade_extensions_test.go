package ecochip

import (
	"testing"
)

func TestFacadeNodeSweepAndPareto(t *testing.T) {
	db := DefaultDB()
	points, err := NodeSweep(GA102(db, 7, 14, 10, false), db, []int{7, 14}, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("2^3 combinations expected, got %d", len(points))
	}
	front := ParetoFront(points, func(p DesignPoint) float64 { return p.EmbodiedKg },
		func(p DesignPoint) float64 { return p.CostUSD })
	if len(front) == 0 || len(front) > len(points) {
		t.Errorf("implausible front size %d", len(front))
	}
}

func TestFacadeTornado(t *testing.T) {
	db := DefaultDB()
	results, err := Tornado(A15(db, 7, 14, 10, false), db, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Error("tornado should produce factors")
	}
}

func TestFacadeEPYC(t *testing.T) {
	db := DefaultDB()
	hi, err := EPYC(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	hiRep, err := hi.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := EPYCMonolith(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	monoRep, err := mono.Evaluate(db)
	if err != nil {
		t.Fatal(err)
	}
	if hiRep.EmbodiedKg() >= monoRep.EmbodiedKg() {
		t.Error("EPYC chiplet design should beat its monolith")
	}
}

func TestFacadeRoadmap(t *testing.T) {
	db := DefaultDB()
	gen := func() *System { return A15(db, 7, 14, 10, false) }
	rep, err := EvaluateRoadmap(db, []Generation{
		{Name: "g1", System: gen()},
		{Name: "g2", System: gen()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Generations) != 2 {
		t.Fatalf("want 2 generations, got %d", len(rep.Generations))
	}
	// Identical systems: generation 2 reuses everything.
	if len(rep.Generations[1].CarriedOver) != 3 {
		t.Errorf("gen2 should carry all 3 chiplets over, got %v", rep.Generations[1].CarriedOver)
	}
}

func TestFacadeDisaggregate(t *testing.T) {
	db := DefaultDB()
	plan, err := Disaggregate(GA102(db, 7, 14, 10, false), db)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EmbodiedKg > plan.InitialKg {
		t.Error("plan must never be worse than its input")
	}
}

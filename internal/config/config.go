// Package config is the JSON front-end of the ECO-CHIP tool, mirroring
// the file layout of the released artifact: a design directory contains
//
//	architecture.json  - chiplet/system description and packaging choice
//	packageC.json      - packaging parameters (optional)
//	designC.json       - design-carbon parameters (optional)
//	operationalC.json  - operating specification (optional)
//	node_list.txt      - technology nodes for design-space exploration
//	                     (optional, one node per line)
//
// LoadSystem assembles a core.System from such a directory;
// WriteExampleDir emits a fully commented example testcase.
package config

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ecochip/internal/core"
	"ecochip/internal/descarbon"
	"ecochip/internal/energy"
	"ecochip/internal/mfg"
	"ecochip/internal/opcarbon"
	"ecochip/internal/pkgcarbon"
	"ecochip/internal/tech"
	"ecochip/internal/wafer"
)

// ArchitectureFile mirrors architecture.json.
type ArchitectureFile struct {
	// SystemName labels reports.
	SystemName string `json:"system_name"`
	// Packaging is the architecture name (RDL, EMIB, passive, active, 3D).
	Packaging string `json:"packaging"`
	// Monolithic merges all chiplets onto one die.
	Monolithic bool `json:"monolithic"`
	// ReferenceNodeNm is the node at which area_mm2 figures were
	// measured (defaults to 7).
	ReferenceNodeNm int `json:"reference_node_nm"`
	// Chiplets lists the blocks.
	Chiplets []ChipletJSON `json:"chiplets"`
}

// ChipletJSON is one block in architecture.json. Exactly one of AreaMM2
// (at the reference node) or Transistors must be set.
type ChipletJSON struct {
	Name        string  `json:"name"`
	Type        string  `json:"type"`
	AreaMM2     float64 `json:"area_mm2,omitempty"`
	Transistors float64 `json:"transistors,omitempty"`
	NodeNm      int     `json:"node_nm"`
	Parts       int     `json:"parts,omitempty"`
	Reused      bool    `json:"reused,omitempty"`
}

// PackageFile mirrors packageC.json (all fields optional; zero values
// keep the architecture defaults).
type PackageFile struct {
	PackagingNodeNm      int     `json:"packaging_node_nm,omitempty"`
	CarbonIntensity      float64 `json:"carbon_intensity_kg_per_kwh,omitempty"`
	RDLLayers            int     `json:"rdl_layers,omitempty"`
	BridgeLayers         int     `json:"bridge_layers,omitempty"`
	BridgeRangeMM        float64 `json:"bridge_range_mm,omitempty"`
	BridgeAreaMM2        float64 `json:"bridge_area_mm2,omitempty"`
	InterposerBEOLLayers int     `json:"interposer_beol_layers,omitempty"`
	Bond                 string  `json:"bond,omitempty"`
	BondPitchUM          float64 `json:"bond_pitch_um,omitempty"`
	SpacingMM            float64 `json:"chiplet_spacing_mm,omitempty"`
	FlitWidthBits        int     `json:"noc_flit_width_bits,omitempty"`
}

// DesignFile mirrors designC.json.
type DesignFile struct {
	PowerW          float64 `json:"power_w,omitempty"`
	Iterations      int     `json:"iterations,omitempty"`
	CarbonIntensity float64 `json:"carbon_intensity_kg_per_kwh,omitempty"`
	SystemVolume    int     `json:"system_volume,omitempty"`
}

// OperationalFile mirrors operationalC.json.
type OperationalFile struct {
	DutyCycle       float64 `json:"duty_cycle"`
	LifetimeYears   float64 `json:"lifetime_years"`
	CarbonIntensity float64 `json:"carbon_intensity_kg_per_kwh"`
	AnnualEnergyKWh float64 `json:"annual_energy_kwh,omitempty"`
	Battery         *struct {
		CapacityWh        float64 `json:"capacity_wh"`
		ChargesPerYear    float64 `json:"charges_per_year"`
		ChargerEfficiency float64 `json:"charger_efficiency,omitempty"`
	} `json:"battery,omitempty"`
	Electrical *struct {
		Vdd      float64 `json:"vdd_v"`
		LeakA    float64 `json:"leakage_a"`
		Activity float64 `json:"activity"`
		CapF     float64 `json:"capacitance_f"`
		FreqHz   float64 `json:"frequency_hz"`
	} `json:"electrical,omitempty"`
	// Profile is a multi-state usage profile (active/idle/sleep...);
	// mutually exclusive with the other energy sources.
	Profile []struct {
		Name        string  `json:"name"`
		ShareOfYear float64 `json:"share_of_year"`
		PowerW      float64 `json:"power_w"`
	} `json:"profile,omitempty"`
}

// MfgFile mirrors mfgC.json (optional fab context overrides). The fab
// energy source may be given numerically (carbon_intensity_kg_per_kwh)
// or by name (energy_source: "coal", "gas", "solar", "grid-taiwan", ...;
// see the internal/energy catalog).
type MfgFile struct {
	CarbonIntensity float64 `json:"carbon_intensity_kg_per_kwh,omitempty"`
	EnergySource    string  `json:"energy_source,omitempty"`
	WaferDiameterMM float64 `json:"wafer_diameter_mm,omitempty"`
	ExcludeWastage  bool    `json:"exclude_wastage,omitempty"`
}

func readJSON(path string, out any) (bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return false, fmt.Errorf("config: %s: %w", filepath.Base(path), err)
	}
	return true, nil
}

// LoadSystem reads a design directory and assembles the system plus the
// optional node-exploration list from node_list.txt.
func LoadSystem(dir string, db *tech.DB) (*core.System, []int, error) {
	var arch ArchitectureFile
	ok, err := readJSON(filepath.Join(dir, "architecture.json"), &arch)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("config: %s: architecture.json is required", dir)
	}
	if len(arch.Chiplets) == 0 {
		return nil, nil, fmt.Errorf("config: %s: no chiplets declared", dir)
	}
	refNm := arch.ReferenceNodeNm
	if refNm == 0 {
		refNm = 7
	}
	refNode, err := db.Get(refNm)
	if err != nil {
		return nil, nil, err
	}

	s := &core.System{
		Name:       arch.SystemName,
		Monolithic: arch.Monolithic,
		Mfg:        mfg.DefaultParams(),
		Design:     descarbon.DefaultParams(),
	}
	if s.Name == "" {
		s.Name = filepath.Base(dir)
	}
	for _, cj := range arch.Chiplets {
		dt, err := tech.ParseDesignType(cj.Type)
		if err != nil {
			return nil, nil, err
		}
		if (cj.AreaMM2 > 0) == (cj.Transistors > 0) {
			return nil, nil, fmt.Errorf("config: chiplet %q must set exactly one of area_mm2 or transistors", cj.Name)
		}
		c := core.Chiplet{
			Name:              cj.Name,
			Type:              dt,
			Transistors:       cj.Transistors,
			NodeNm:            cj.NodeNm,
			ManufacturedParts: cj.Parts,
			Reused:            cj.Reused,
		}
		if cj.AreaMM2 > 0 {
			c.Transistors = refNode.Transistors(dt, cj.AreaMM2)
		}
		s.Chiplets = append(s.Chiplets, c)
	}

	archKind, err := pkgcarbon.ParseArchitecture(arch.Packaging)
	if err != nil && !arch.Monolithic && len(arch.Chiplets) > 1 {
		return nil, nil, err
	}
	s.Packaging = pkgcarbon.DefaultParams(archKind)

	var pf PackageFile
	if ok, err := readJSON(filepath.Join(dir, "packageC.json"), &pf); err != nil {
		return nil, nil, err
	} else if ok {
		if err := applyPackage(&s.Packaging, pf, db); err != nil {
			return nil, nil, err
		}
	}

	var df DesignFile
	if ok, err := readJSON(filepath.Join(dir, "designC.json"), &df); err != nil {
		return nil, nil, err
	} else if ok {
		if df.PowerW > 0 {
			s.Design.PowerW = df.PowerW
		}
		if df.Iterations > 0 {
			s.Design.Iterations = df.Iterations
		}
		if df.CarbonIntensity > 0 {
			s.Design.CarbonIntensity = df.CarbonIntensity
		}
		if df.SystemVolume > 0 {
			s.SystemVolume = df.SystemVolume
		}
	}

	var mf MfgFile
	if ok, err := readJSON(filepath.Join(dir, "mfgC.json"), &mf); err != nil {
		return nil, nil, err
	} else if ok {
		if mf.CarbonIntensity > 0 && mf.EnergySource != "" {
			return nil, nil, fmt.Errorf("config: mfgC.json: set either carbon_intensity_kg_per_kwh or energy_source, not both")
		}
		if mf.CarbonIntensity > 0 {
			s.Mfg.CarbonIntensity = mf.CarbonIntensity
		}
		if mf.EnergySource != "" {
			ci, err := energy.Intensity(mf.EnergySource)
			if err != nil {
				return nil, nil, err
			}
			s.Mfg.CarbonIntensity = ci
		}
		if mf.WaferDiameterMM > 0 {
			s.Mfg.Wafer = wafer.Wafer{DiameterMM: mf.WaferDiameterMM}
		}
		s.Mfg.IncludeWastage = !mf.ExcludeWastage
	}

	var of OperationalFile
	if ok, err := readJSON(filepath.Join(dir, "operationalC.json"), &of); err != nil {
		return nil, nil, err
	} else if ok {
		spec := opcarbon.Spec{
			DutyCycle:       of.DutyCycle,
			LifetimeYears:   of.LifetimeYears,
			CarbonIntensity: of.CarbonIntensity,
			AnnualEnergyKWh: of.AnnualEnergyKWh,
		}
		if of.Battery != nil {
			spec.Battery = &opcarbon.Battery{
				CapacityWh:        of.Battery.CapacityWh,
				ChargesPerYear:    of.Battery.ChargesPerYear,
				ChargerEfficiency: of.Battery.ChargerEfficiency,
			}
		}
		if of.Electrical != nil {
			spec.Elec = &opcarbon.Electrical{
				Vdd:      of.Electrical.Vdd,
				LeakA:    of.Electrical.LeakA,
				Activity: of.Electrical.Activity,
				CapF:     of.Electrical.CapF,
				FreqHz:   of.Electrical.FreqHz,
			}
		}
		if len(of.Profile) > 0 {
			if spec.AnnualEnergyKWh > 0 || spec.Battery != nil || spec.Elec != nil {
				return nil, nil, fmt.Errorf("config: operationalC.json: profile is mutually exclusive with other energy sources")
			}
			profile := opcarbon.Profile{}
			for _, ph := range of.Profile {
				profile.Phases = append(profile.Phases, opcarbon.Phase{
					Name: ph.Name, ShareOfYear: ph.ShareOfYear, PowerW: ph.PowerW,
				})
			}
			built, err := opcarbon.SpecFromProfile(profile, of.LifetimeYears, of.CarbonIntensity)
			if err != nil {
				return nil, nil, err
			}
			spec = built
		}
		s.Operation = &spec
	}

	nodes, err := readNodeList(filepath.Join(dir, "node_list.txt"), db)
	if err != nil {
		return nil, nil, err
	}
	if err := s.Validate(db); err != nil {
		return nil, nil, err
	}
	return s, nodes, nil
}

func applyPackage(p *pkgcarbon.Params, pf PackageFile, db *tech.DB) error {
	if pf.PackagingNodeNm > 0 {
		n, err := db.Get(pf.PackagingNodeNm)
		if err != nil {
			return err
		}
		p.PackagingNode = n
	}
	if pf.CarbonIntensity > 0 {
		p.CarbonIntensity = pf.CarbonIntensity
	}
	if pf.RDLLayers > 0 {
		p.RDLLayers = pf.RDLLayers
	}
	if pf.BridgeLayers > 0 {
		p.BridgeLayers = pf.BridgeLayers
	}
	if pf.BridgeRangeMM > 0 {
		p.BridgeRangeMM = pf.BridgeRangeMM
	}
	if pf.BridgeAreaMM2 > 0 {
		p.BridgeAreaMM2 = pf.BridgeAreaMM2
	}
	if pf.InterposerBEOLLayers > 0 {
		p.InterposerBEOLLayers = pf.InterposerBEOLLayers
	}
	if pf.Bond != "" {
		switch pf.Bond {
		case "tsv", "TSV":
			p.Bond = pkgcarbon.TSV
		case "microbump":
			p.Bond = pkgcarbon.Microbump
		case "hybrid", "hybrid-bond":
			p.Bond = pkgcarbon.HybridBond
		default:
			return fmt.Errorf("config: unknown bond type %q", pf.Bond)
		}
	}
	if pf.BondPitchUM > 0 {
		p.BondPitchUM = pf.BondPitchUM
	}
	if pf.SpacingMM > 0 {
		p.SpacingMM = pf.SpacingMM
	}
	if pf.FlitWidthBits > 0 {
		p.Router.FlitWidthBits = pf.FlitWidthBits
	}
	return nil
}

// readNodeList parses node_list.txt: one node per line, '#' comments.
func readNodeList(path string, db *tech.DB) ([]int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var nodes []int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		nm, err := strconv.Atoi(strings.TrimSuffix(line, "nm"))
		if err != nil {
			return nil, fmt.Errorf("config: node_list.txt: bad line %q", line)
		}
		if !db.Has(nm) {
			return nil, fmt.Errorf("config: node_list.txt: unsupported node %dnm", nm)
		}
		nodes = append(nodes, nm)
	}
	return nodes, sc.Err()
}

// WriteExampleDir emits a complete example design directory (a GA102-like
// 3-chiplet system) that LoadSystem can read back.
func WriteExampleDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	files := map[string]any{
		"architecture.json": ArchitectureFile{
			SystemName:      "example-3chiplet",
			Packaging:       "RDL",
			ReferenceNodeNm: 7,
			Chiplets: []ChipletJSON{
				{Name: "digital", Type: "logic", AreaMM2: 500, NodeNm: 7},
				{Name: "memory", Type: "memory", AreaMM2: 80, NodeNm: 14},
				{Name: "analog", Type: "analog", AreaMM2: 48, NodeNm: 10},
			},
		},
		"packageC.json": PackageFile{
			PackagingNodeNm: 65,
			RDLLayers:       6,
		},
		"designC.json": DesignFile{
			PowerW:       10,
			Iterations:   100,
			SystemVolume: 100000,
		},
		"operationalC.json": OperationalFile{
			DutyCycle:       0.2,
			LifetimeYears:   2,
			CarbonIntensity: 0.7,
			AnnualEnergyKWh: 228,
		},
	}
	for name, v := range files {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	nodeList := "# nodes explored by the design-space sweep\n7\n10\n14\n"
	return os.WriteFile(filepath.Join(dir, "node_list.txt"), []byte(nodeList), 0o644)
}
